package bitset

import (
	"math/rand"
	"testing"
)

// naiveRuns is the obvious O(n) reference for Runs.
func naiveRuns(b *Bitset) [][2]int {
	var out [][2]int
	start := -1
	for i := 0; i < b.Len(); i++ {
		switch {
		case b.Get(i) && start < 0:
			start = i
		case !b.Get(i) && start >= 0:
			out = append(out, [2]int{start, i})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, [2]int{start, b.Len()})
	}
	return out
}

func collectRuns(b *Bitset) [][2]int {
	var out [][2]int
	b.Runs(func(start, end int) { out = append(out, [2]int{start, end}) })
	return out
}

func TestRunsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Sizes straddle word boundaries: sub-word, exact words, ragged tails.
	for _, n := range []int{0, 1, 63, 64, 65, 128, 129, 1000} {
		for trial := 0; trial < 20; trial++ {
			b := New(n)
			// Mix densities so all-zero, all-one and ragged words appear.
			p := []float64{0.02, 0.5, 0.95}[trial%3]
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					b.Set(i)
				}
			}
			got, want := collectRuns(b), naiveRuns(b)
			if len(got) != len(want) {
				t.Fatalf("n=%d trial=%d: %d runs, want %d", n, trial, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial=%d: run %d = %v, want %v", n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRunsEdgeCases(t *testing.T) {
	// Empty mask: no yields.
	if runs := collectRuns(New(200)); len(runs) != 0 {
		t.Errorf("empty bitset yielded %v", runs)
	}
	// Full mask ends at n, not at the word boundary.
	b := New(70)
	b.SetAll()
	if runs := collectRuns(b); len(runs) != 1 || runs[0] != [2]int{0, 70} {
		t.Errorf("full bitset yielded %v", runs)
	}
	// A run spanning a word boundary is one run, not two.
	b = New(128)
	for i := 60; i < 70; i++ {
		b.Set(i)
	}
	if runs := collectRuns(b); len(runs) != 1 || runs[0] != [2]int{60, 70} {
		t.Errorf("boundary-spanning run yielded %v", runs)
	}
	// Final bit set: half-open end equals Len.
	b = New(65)
	b.Set(64)
	if runs := collectRuns(b); len(runs) != 1 || runs[0] != [2]int{64, 65} {
		t.Errorf("final-bit run yielded %v", runs)
	}
}
