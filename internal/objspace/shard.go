package objspace

import (
	"fmt"

	"nowrender/internal/geom"
	"nowrender/internal/grid"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

const hugeExtent = geom.HugeExtent

// meshClipMin is the triangle count above which a mesh is clipped into a
// per-slab sub-mesh instead of being referenced whole. Small meshes are
// cheaper to replicate than to clip.
const meshClipMin = 16

// Rough per-item resident-size estimates for the accounting the
// object-space bench reports. A Triangle is three Vec3 points plus three
// normal pointers; non-mesh primitives are a shape struct plus a
// resolved-object header; grid cells cost a slice header per voxel plus
// an int32 per entry.
const (
	triBytes   = 3*24 + 3*8 + 16
	objBytes   = 160
	voxelBytes = 24
	itemBytes  = 4
)

// ShardObject is one object resident on a shard: the global object id
// (an index into the frame's resolved-object table, identical on every
// shard) and the shard-local geometry — the full shape, or a clipped
// sub-mesh for large meshes.
type ShardObject struct {
	Global int32
	RO     scene.ResolvedObject
	// Tris is the resident triangle count (0 for non-mesh shapes).
	Tris int
}

// Shard owns one slab of the partition: the geometry overlapping it and
// a sub-grid over the slab for DDA traversal. Read-only after build.
type Shard struct {
	Index  int
	Bounds vm.AABB
	Grid   *grid.Grid
	Objs   []ShardObject
	// Tris and ResidentBytes account the shard's resident scene size.
	Tris          int
	ResidentBytes uint64
}

// buildShard collects the geometry overlapping slab i and builds its
// sub-grid. Voxel counts match the slab's share of the full grid along
// the partition axis and the full counts elsewhere, so traversal density
// matches the replicated grid.
func buildShard(p *Partition, i int, objs []scene.ResolvedObject) (*Shard, error) {
	sb := p.SlabBounds(i)
	s := &Shard{Index: i, Bounds: sb}
	for gi := range objs {
		ro := &objs[gi]
		if ro.Bounds.Size().MaxComponent() >= hugeExtent {
			continue // unbounded: replicated on the frame owner
		}
		if !ro.Bounds.Overlaps(sb) {
			continue
		}
		so := ShardObject{Global: int32(gi), RO: *ro}
		if m, ok := ro.Shape.(*geom.Mesh); ok && len(m.Tris) >= meshClipMin {
			kept := make([]*geom.Triangle, 0, len(m.Tris)/2)
			for _, tr := range m.Tris {
				if tr.Bounds().Overlaps(sb) {
					kept = append(kept, tr)
				}
			}
			if len(kept) == 0 {
				continue
			}
			sub := geom.NewMesh(kept)
			so.RO.Shape = sub
			so.RO.Bounds = sub.Bounds()
			so.Tris = len(kept)
		} else if m, ok := ro.Shape.(*geom.Mesh); ok {
			so.Tris = len(m.Tris)
		}
		s.Objs = append(s.Objs, so)
		s.Tris += so.Tris
	}

	// The sub-grid covers only the slab; resolution keeps the full
	// grid's voxel density.
	counts := p.dims
	counts[p.Axis] = p.Slabs[i][1] - p.Slabs[i][0]
	g, err := grid.New(sb, counts[0], counts[1], counts[2])
	if err != nil {
		return nil, fmt.Errorf("objspace: shard %d grid: %w", i, err)
	}
	for li, so := range s.Objs {
		g.Insert(int32(li), so.RO.Bounds)
	}
	s.Grid = g

	// Resident accounting: geometry plus grid structures.
	s.ResidentBytes = uint64(g.NumVoxels()) * voxelBytes
	for idx := 0; idx < g.NumVoxels(); idx++ {
		s.ResidentBytes += uint64(len(g.Items(idx))) * itemBytes
	}
	for _, so := range s.Objs {
		if so.Tris > 0 {
			s.ResidentBytes += uint64(so.Tris) * triBytes
		} else {
			s.ResidentBytes += objBytes
		}
	}
	return s, nil
}
