package imgdiff

import (
	"math"
	"testing"

	"nowrender/internal/fb"
	vm "nowrender/internal/vecmath"
)

func TestDiffIdentical(t *testing.T) {
	a := fb.New(8, 8)
	b := fb.New(8, 8)
	m, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 0 || m.Fraction() != 0 {
		t.Errorf("identical frames diff count %d", m.Count())
	}
}

func TestDiffFindsChanges(t *testing.T) {
	a := fb.New(8, 8)
	b := a.Clone()
	b.SetRGB(3, 4, 255, 0, 0)
	b.SetRGB(7, 7, 0, 0, 1)
	m, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != 2 {
		t.Errorf("diff count = %d, want 2", m.Count())
	}
	if !m.At(3, 4) || !m.At(7, 7) || m.At(0, 0) {
		t.Error("diff mask positions wrong")
	}
}

func TestDiffDimensionMismatch(t *testing.T) {
	if _, err := Diff(fb.New(2, 2), fb.New(3, 2)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMaskCovers(t *testing.T) {
	super := NewMask(4, 4)
	sub := NewMask(4, 4)
	super.Set(1, 1, true)
	super.Set(2, 2, true)
	sub.Set(1, 1, true)
	if !super.Covers(sub) {
		t.Error("superset not detected")
	}
	if sub.Covers(super) {
		t.Error("subset claimed to cover superset")
	}
	if !super.Covers(super) {
		t.Error("mask must cover itself")
	}
}

func TestMaskCoversPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for mismatched masks")
		}
	}()
	NewMask(2, 2).Covers(NewMask(3, 3))
}

func TestMaskImage(t *testing.T) {
	m := NewMask(3, 3)
	m.Set(1, 2, true)
	img := m.Image()
	if r, g, b := img.At(1, 2); r != 255 || g != 255 || b != 255 {
		t.Error("set pixel not white")
	}
	if r, _, _ := img.At(0, 0); r != 0 {
		t.Error("unset pixel not black")
	}
}

func TestMaskFromDirty(t *testing.T) {
	region := fb.NewRect(2, 1, 5, 3) // 3x2 region
	dirty := []bool{true, false, false, false, false, true}
	m, err := MaskFromDirty(dirty, region, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !m.At(2, 1) {
		t.Error("first dirty pixel not mapped to region origin")
	}
	if !m.At(4, 2) {
		t.Error("last dirty pixel not mapped to region corner")
	}
	if m.Count() != 2 {
		t.Errorf("mask count = %d", m.Count())
	}
	if _, err := MaskFromDirty([]bool{true}, region, 8, 8); err == nil {
		t.Error("wrong dirty length accepted")
	}
}

func TestCompareStats(t *testing.T) {
	a := fb.New(2, 1)
	b := fb.New(2, 1)
	b.SetRGB(0, 0, 10, 0, 0)
	st, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Differing != 1 || st.MaxChannelDelta != 10 {
		t.Errorf("stats = %+v", st)
	}
	if st.MSE <= 0 || math.IsInf(st.PSNR, 1) {
		t.Errorf("MSE/PSNR = %v/%v", st.MSE, st.PSNR)
	}
	ident, _ := Compare(a, a.Clone())
	if !math.IsInf(ident.PSNR, 1) || ident.Differing != 0 {
		t.Errorf("identical stats = %+v", ident)
	}
}

func TestOverlay(t *testing.T) {
	a := fb.New(4, 4)
	b := a.Clone()
	b.SetRGB(2, 2, 9, 9, 9)
	out, err := Overlay(a, b, vm.V(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if r, g, bb := out.At(2, 2); r != 255 || g != 0 || bb != 255 {
		t.Error("highlight not applied")
	}
	if r, _, _ := out.At(0, 0); r != 0 {
		t.Error("unchanged pixel altered")
	}
}
