package farm

import (
	"bytes"
	"fmt"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/objspace"
	"nowrender/internal/scene"
	"nowrender/internal/trace"
)

// ObjSpacePoint is one shard count's measurement of the object-space
// partition on a real render: the forwarding traffic the shard topology
// generates, the per-shard peak resident scene size it buys, and the
// byte-identity check against the replicated reference. Serialised into
// BENCH_objspace.json by cmd/benchtab so the sharding trajectory —
// resident shrinking with shard count, forwarding growing with it — is
// recorded over time.
type ObjSpacePoint struct {
	// Shards is the slab count; 1 is the replicated baseline (no
	// partition, no forwarding — the path every other row must match
	// byte-for-byte).
	Shards int `json:"shards"`
	Frames int `json:"frames"`
	// RaysForwardedPerFrame and ForwardBytesPerFrame average the
	// shard-to-shard forwarding traffic over the sweep's frames; the
	// totals record the raw counters the averages came from. Every hop is
	// serialized through the production forwarding codec even in-process,
	// so these are honest measurements of what a distributed deployment
	// would ship.
	RaysForwardedPerFrame float64 `json:"rays_forwarded_per_frame"`
	ForwardBytesPerFrame  float64 `json:"forward_bytes_per_frame"`
	RaysForwardedTotal    uint64  `json:"rays_forwarded_total"`
	ForwardBytesTotal     uint64  `json:"forward_bytes_total"`
	// PeakResidentBytes is the largest per-shard resident scene size seen
	// across the sweep's frames (the replicated row reports the whole
	// scene); ResidentVsReplicated divides it by the replicated row's
	// figure — the memory-scaling column, which must decrease as the
	// shard count grows.
	PeakResidentBytes    uint64  `json:"peak_resident_bytes"`
	ResidentVsReplicated float64 `json:"resident_vs_replicated"`
	// MSPerFrame is wall-clock render time per frame, cluster build
	// included (the build is part of what a sharded worker pays per
	// frame).
	MSPerFrame float64 `json:"ms_per_frame"`
	// Identical records the correctness invariant: this row's pixels
	// compared byte-for-byte against the replicated render.
	Identical bool `json:"identical"`
}

// ObjSpaceSweep measures the object-space partition on a real render: it
// renders `frames` frames of sc at w x h through the replicated tracer
// once as the reference, then through a sharded cluster at each
// requested shard count (shard count 1 reports the replicated baseline
// itself), verifying byte-identity and collecting the forwarding and
// resident-size counters from the production Stats plumbing. Threads is
// the worker-pool width used for every row, so timings are comparable
// across shard counts.
func ObjSpaceSweep(sc *scene.Scene, w, h, frames int, shardCounts []int, threads int) ([]ObjSpacePoint, error) {
	if frames <= 0 || frames > sc.Frames {
		frames = sc.Frames
	}
	if threads < 1 {
		threads = 1
	}
	region := fb.NewRect(0, 0, w, h)
	topts := trace.Options{}

	// Replicated reference: pixels per frame, wall time, and the
	// whole-scene resident size under the shard builder's accounting.
	refs := make([]*fb.Framebuffer, frames)
	var refNs int64
	var refResident uint64
	for f := 0; f < frames; f++ {
		start := time.Now()
		ft, err := trace.New(sc, f, topts)
		if err != nil {
			return nil, err
		}
		img := fb.New(w, h)
		ft.RenderRegionParallelWorkers(img, region, threads, f, nil, ft.NewWorker)
		refNs += time.Since(start).Nanoseconds()
		refs[f] = img
		res, err := objspace.ReplicatedResident(sc, f, topts)
		if err != nil {
			return nil, err
		}
		if res > refResident {
			refResident = res
		}
	}

	pts := make([]ObjSpacePoint, 0, len(shardCounts))
	for _, n := range shardCounts {
		if n == 1 {
			pts = append(pts, ObjSpacePoint{
				Shards: 1, Frames: frames,
				PeakResidentBytes:    refResident,
				ResidentVsReplicated: 1,
				MSPerFrame:           float64(refNs) / float64(frames) / 1e6,
				Identical:            true,
			})
			continue
		}
		if n < 2 || n > objspace.MaxShards {
			return nil, fmt.Errorf("farm: object-space sweep shard count %d outside [2,%d]", n, objspace.MaxShards)
		}
		st := &objspace.Stats{}
		pt := ObjSpacePoint{Shards: n, Frames: frames, Identical: true}
		var ns int64
		img := fb.New(w, h)
		for f := 0; f < frames; f++ {
			start := time.Now()
			cl, err := objspace.Build(sc, f, topts, objspace.Options{Shards: n, Stats: st})
			if err != nil {
				return nil, err
			}
			cl.Tracer().RenderRegionParallelWorkers(img, region, threads, f, nil, cl.NewWorker)
			ns += time.Since(start).Nanoseconds()
			if !bytes.Equal(img.Pix, refs[f].Pix) {
				pt.Identical = false
			}
		}
		snap := st.Snapshot()
		pt.RaysForwardedTotal = snap.RaysForwarded
		pt.ForwardBytesTotal = snap.ForwardBytes
		pt.RaysForwardedPerFrame = float64(snap.RaysForwarded) / float64(frames)
		pt.ForwardBytesPerFrame = float64(snap.ForwardBytes) / float64(frames)
		pt.PeakResidentBytes = snap.PeakResidentBytes
		if refResident > 0 {
			pt.ResidentVsReplicated = float64(snap.PeakResidentBytes) / float64(refResident)
		}
		pt.MSPerFrame = float64(ns) / float64(frames) / 1e6
		pts = append(pts, pt)
	}
	return pts, nil
}
