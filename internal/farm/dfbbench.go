package farm

import (
	"fmt"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
)

// DFBPoint is one routing mode's measurement of the master's result
// ingress: what the master itself must receive per frame when every
// pixel flows through it ("master") versus when compositor sinks take
// the pixel payloads and the master sees only control acks and
// confirmations ("dfb-N"). Serialised into BENCH_dfb.json by
// cmd/benchtab -dfb.
type DFBPoint struct {
	// Mode is "master" (legacy routing) or "dfb-N" (N compositor sinks).
	Mode   string `json:"mode"`
	Sinks  int    `json:"sinks"`
	Frames int    `json:"frames"`
	W      int    `json:"w"`
	H      int    `json:"h"`
	// MasterIngressBytes is what the master received on the result path;
	// MasterIngressPerFrame is the average per frame.
	MasterIngressBytes    uint64  `json:"master_ingress_bytes"`
	MasterIngressPerFrame float64 `json:"master_ingress_per_frame"`
	// SinkIngressBytes is the pixel payload volume the sinks absorbed
	// instead of the master (zero in master mode).
	SinkIngressBytes uint64 `json:"sink_ingress_bytes"`
	// WireBytes totals result-path bytes across every hop.
	WireBytes   uint64 `json:"wire_bytes"`
	FramesAcked uint64 `json:"frames_acked"`
	// IngressRatio is master-mode ingress divided by this mode's ingress
	// (1.0 for master mode itself): the off-the-hot-path factor.
	IngressRatio float64 `json:"ingress_ratio"`
	// Identical records the determinism check: this mode's frames
	// compared byte-for-byte against the master-routed run's frames.
	Identical  bool    `json:"identical"`
	MakespanMS float64 `json:"makespan_ms"`
}

// DFBSweep renders the same animation through the legacy master-routed
// pipeline and through compositor fleets of each size in sinks, on real
// in-process workers with delta+flate wire frames, and reports the
// master's result-ingress bytes for each. Every DFB run's frames are
// verified byte-identical to the master-routed run — re-routing pixels
// must never change them.
func DFBSweep(sc *scene.Scene, w, h, frames, workers int, sinks []int) ([]DFBPoint, error) {
	if frames <= 0 || frames > sc.Frames {
		frames = sc.Frames
	}
	mk := func(dfb *DFBConfig) Config {
		return Config{
			Scene: sc, W: w, H: h, EndFrame: frames,
			Coherence: true, Workers: workers,
			// Whole-frame blocks: the paper's frame-division mode and the
			// DFB deployment shape — each result is one frame, so control
			// traffic is one ack+confirm pair per frame.
			Scheme:       partition.FrameDivision{BlockW: w, BlockH: h, Adaptive: true},
			WireDelta:    true,
			WireCompress: true,
			DFB:          dfb,
		}
	}
	point := func(mode string, n, fcount int, res *Result, start time.Time) DFBPoint {
		return DFBPoint{
			Mode: mode, Sinks: n, Frames: fcount, W: w, H: h,
			MasterIngressBytes:    res.Wire.MasterIngressBytes,
			MasterIngressPerFrame: float64(res.Wire.MasterIngressBytes) / float64(fcount),
			SinkIngressBytes:      res.Wire.SinkIngressBytes,
			WireBytes:             res.Wire.WireBytes,
			FramesAcked:           res.Wire.FramesAcked,
			MakespanMS:            float64(time.Since(start).Microseconds()) / 1e3,
		}
	}

	start := time.Now()
	base, err := RenderLocal(mk(nil))
	if err != nil {
		return nil, fmt.Errorf("farm: dfb sweep baseline: %w", err)
	}
	bp := point("master", 0, frames, base, start)
	bp.IngressRatio = 1
	bp.Identical = true
	out := []DFBPoint{bp}

	for _, n := range sinks {
		start := time.Now()
		res, err := RenderLocal(mk(&DFBConfig{Sinks: n}))
		if err != nil {
			return nil, fmt.Errorf("farm: dfb sweep %d sinks: %w", n, err)
		}
		pt := point(fmt.Sprintf("dfb-%d", n), n, frames, res, start)
		if pt.MasterIngressBytes > 0 {
			pt.IngressRatio = float64(base.Wire.MasterIngressBytes) / float64(pt.MasterIngressBytes)
		}
		pt.Identical = framesIdentical(base.Frames, res.Frames)
		out = append(out, pt)
	}
	return out, nil
}

func framesIdentical(a, b []*fb.Framebuffer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == nil || b[i] == nil || !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
