package trace

import (
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// edgeScene has a hard silhouette: a bright sphere against a black
// background.
func edgeScene() *scene.Scene {
	s := scene.New("edge")
	s.Camera = scene.Camera{Pos: vm.V(0, 0, 6), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 50}
	s.Background = material.Black
	s.Add("ball", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.White), nil)
	s.AddLight("key", vm.V(0, 0, 10), material.White)
	return s
}

func TestAdaptiveAASmoothsEdges(t *testing.T) {
	s := edgeScene()
	const w, h = 40, 40
	plain := fb.New(w, h)
	aa := fb.New(w, h)
	ftPlain, err := New(s, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ftPlain.RenderFull(plain)
	ftAA, err := New(s, 0, Options{AAThreshold: 0.1, AASamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	ftAA.RenderFull(aa)

	// Plain rendering has pure black/white pixels only (single sample);
	// AA must produce intermediate grey values on the silhouette.
	intermediates := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			r, _, _ := aa.At(x, y)
			if r > 16 && r < 200 {
				intermediates++
			}
		}
	}
	if intermediates == 0 {
		t.Error("adaptive AA produced no intermediate edge pixels")
	}
	// Images differ only near the edge: most pixels identical.
	diff := plain.DiffCount(aa)
	if diff == 0 {
		t.Error("AA changed nothing")
	}
	if diff > w*h/2 {
		t.Errorf("AA changed %d of %d pixels; adaptivity not selective", diff, w*h)
	}
}

func TestAdaptiveAASelectiveCost(t *testing.T) {
	s := edgeScene()
	const w, h = 40, 40
	ftAA, err := New(s, 0, Options{AAThreshold: 0.1, AASamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	ftAA.RenderFull(fb.New(w, h))
	aaRays := ftAA.Counters.ByKind[vm.CameraRay]

	ftFull, err := New(s, 0, Options{SamplesPerPixel: 21})
	if err != nil {
		t.Fatal(err)
	}
	ftFull.RenderFull(fb.New(w, h))
	fullRays := ftFull.Counters.ByKind[vm.CameraRay]

	// Adaptive: 5 rays/pixel base + 16 extra only at edges; uniform
	// supersampling pays 21 everywhere.
	if aaRays >= fullRays {
		t.Errorf("adaptive AA cast %d camera rays, uniform 21x cast %d", aaRays, fullRays)
	}
	if aaRays < uint64(w*h*5) {
		t.Errorf("adaptive AA cast %d rays, expected at least the 5-sample base %d", aaRays, w*h*5)
	}
}

func TestAdaptiveAADeterministic(t *testing.T) {
	s := edgeScene()
	a, b := fb.New(32, 32), fb.New(32, 32)
	ft1, _ := New(s, 0, Options{AAThreshold: 0.1})
	ft1.RenderFull(a)
	ft2, _ := New(s, 0, Options{AAThreshold: 0.1})
	ft2.RenderFull(b)
	if !a.Equal(b) {
		t.Error("adaptive AA renders differ between runs")
	}
}
