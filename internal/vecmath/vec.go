// Package vecmath provides the small linear-algebra kernel used by the
// renderer: 3-vectors, rays, 4x4 affine transforms, axis-aligned bounding
// boxes and a handful of numeric helpers. Everything is plain value types;
// nothing allocates on the hot path.
package vecmath

import (
	"fmt"
	"math"
)

// Eps is the geometric tolerance used throughout the renderer for
// self-intersection avoidance and degenerate-case tests.
const Eps = 1e-9

// ShadowEps is the offset applied along a surface normal before casting
// secondary rays, large enough to clear floating-point error on unit-scale
// scenes without visibly detaching shadows.
const ShadowEps = 1e-6

// Vec3 is a 3-component vector of float64. It doubles as a point and as an
// RGB colour triplet in the shading code.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Splat returns a vector with all three components set to s.
func Splat(s float64) Vec3 { return Vec3{s, s, s} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise product v * w (Hadamard product), the
// operation used to filter light through surface colours.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared length of v, avoiding the square root.
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Norm returns v scaled to unit length. The zero vector is returned
// unchanged so callers need not special-case degenerate normals.
func (v Vec3) Norm() Vec3 {
	l := v.Len()
	if l < Eps {
		return v
	}
	return v.Scale(1 / l)
}

// Dist returns the Euclidean distance between points v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// Lerp linearly interpolates from v to w by t in [0,1].
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Axis returns component i of v, with 0=X, 1=Y, 2=Z.
func (v Vec3) Axis(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// SetAxis returns a copy of v with component i replaced by s.
func (v Vec3) SetAxis(i int, s float64) Vec3 {
	switch i {
	case 0:
		v.X = s
	case 1:
		v.Y = s
	default:
		v.Z = s
	}
	return v
}

// MaxComponent returns the largest of the three components.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// Reflect returns the reflection of incident direction v about unit
// normal n: v - 2(v·n)n.
func (v Vec3) Reflect(n Vec3) Vec3 {
	return v.Sub(n.Scale(2 * v.Dot(n)))
}

// Refract returns the refracted direction of unit incident v crossing a
// surface with unit normal n, with eta = n1/n2 the ratio of refractive
// indices. The second return value is false on total internal reflection.
func (v Vec3) Refract(n Vec3, eta float64) (Vec3, bool) {
	cosI := -v.Dot(n)
	sin2T := eta * eta * (1 - cosI*cosI)
	if sin2T > 1 {
		return Vec3{}, false // total internal reflection
	}
	cosT := math.Sqrt(1 - sin2T)
	return v.Scale(eta).Add(n.Scale(eta*cosI - cosT)), true
}

// ApproxEq reports whether v and w differ by at most tol in every
// component.
func (v Vec3) ApproxEq(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol &&
		math.Abs(v.Y-w.Y) <= tol &&
		math.Abs(v.Z-w.Z) <= tol
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// Clamp01 clamps every component into [0,1]; used when converting shading
// results to 24-bit pixels.
func (v Vec3) Clamp01() Vec3 {
	return Vec3{clamp01(v.X), clamp01(v.Y), clamp01(v.Z)}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("<%.6g, %.6g, %.6g>", v.X, v.Y, v.Z)
}

// ONB is an orthonormal basis built around a primary direction; used for
// sampling and camera frames.
type ONB struct {
	U, V, W Vec3
}

// NewONB constructs an orthonormal basis whose W axis is the
// normalisation of w.
func NewONB(w Vec3) ONB {
	wn := w.Norm()
	a := V(1, 0, 0)
	if math.Abs(wn.X) > 0.9 {
		a = V(0, 1, 0)
	}
	v := wn.Cross(a).Norm()
	u := v.Cross(wn)
	return ONB{U: u, V: v, W: wn}
}

// Local maps basis-space coordinates (a,b,c) into world space.
func (o ONB) Local(a, b, c float64) Vec3 {
	return o.U.Scale(a).Add(o.V.Scale(b)).Add(o.W.Scale(c))
}
