package trace

import (
	"runtime"
	"sync"
	"sync/atomic"

	"nowrender/internal/fb"
	"nowrender/internal/timeline"
)

// TileW and TileH are the tile dimensions the parallel render paths cut
// regions into. Small enough to balance load across uneven scene cost,
// large enough to amortise per-tile bookkeeping.
const (
	TileW = 32
	TileH = 32
)

// RenderRegionParallel renders region into dst using up to threads
// goroutines, each with its own Worker. Output bytes are identical to
// RenderRegion for any thread count: every pixel's colour is a pure
// function of its coordinates, and each pixel is written exactly once.
//
// threads <= 0 selects runtime.NumCPU(). The default worker's observer
// (Options.Observer) is not consulted here — observers are per-Worker,
// and this path creates observer-less workers; callers that need ray
// observation with parallelism use the coherence engine's tile pool,
// which wires a collector into each worker. The default worker's
// Counters are left untouched; per-worker counts are merged and
// returned via the workers' own Counters into ft.Counters.
func (ft *FrameTracer) RenderRegionParallel(dst *fb.Framebuffer, region fb.Rect, threads int) {
	ft.RenderRegionParallelTimed(dst, region, threads, -1, nil)
}

// RenderRegionParallelTimed is RenderRegionParallel with per-tile
// timeline instrumentation: tile worker i records an OpTile span on
// tracks[i] (frame-tagged, arg = tile pixel area) for every tile it
// renders. tracks may be nil or shorter than the pool — missing tracks
// are nil, and a nil track costs a single branch per tile, which is why
// the hot path carries the instrumentation unconditionally.
func (ft *FrameTracer) RenderRegionParallelTimed(dst *fb.Framebuffer, region fb.Rect, threads, frame int, tracks []*timeline.Track) {
	ft.RenderRegionParallelWorkers(dst, region, threads, frame, tracks, ft.NewWorker)
}

// RenderRegionParallelWorkers is RenderRegionParallelTimed with the tile
// pool's worker construction delegated to newWorker — the hook through
// which the object-space cluster installs its shard-routing intersector
// on every tile worker. Per-worker ray tallies are merged into
// ft.Counters at the barrier, in worker-slot order, same as the default
// path.
func (ft *FrameTracer) RenderRegionParallelWorkers(dst *fb.Framebuffer, region fb.Rect, threads, frame int, tracks []*timeline.Track, newWorker func(RayObserver) *Worker) {
	if threads <= 0 {
		threads = runtime.NumCPU()
	}
	tiles := region.Blocks(TileW, TileH)
	if threads == 1 || len(tiles) <= 1 {
		var tr *timeline.Track
		if len(tracks) > 0 {
			tr = tracks[0]
		}
		w := newWorker(nil)
		s := tr.Begin()
		w.RenderRegion(dst, region)
		tr.EndArg(timeline.OpTile, frame, s, int64(region.Area()))
		ft.Counters.Merge(w.Counters)
		return
	}
	if threads > len(tiles) {
		threads = len(tiles)
	}

	var next int64
	var wg sync.WaitGroup
	workers := make([]*Worker, threads)
	for i := 0; i < threads; i++ {
		w := newWorker(nil)
		workers[i] = w
		var tr *timeline.Track
		if i < len(tracks) {
			tr = tracks[i]
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(atomic.AddInt64(&next, 1)) - 1
				if t >= len(tiles) {
					return
				}
				s := tr.Begin()
				w.RenderRegion(dst, tiles[t])
				tr.EndArg(timeline.OpTile, frame, s, int64(tiles[t].Area()))
			}
		}()
	}
	wg.Wait()
	// Merge ray tallies into the tracer's own counters so ft.Counters
	// reports the full render, same as the serial path.
	for _, w := range workers {
		ft.Counters.Merge(w.Counters)
	}
}
