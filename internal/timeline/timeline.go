// Package timeline is the cluster-wide event recorder behind the
// -timeline flags: a lock-cheap, bounded ring-buffer of span and instant
// events instrumenting the render core (per-frame, per-tile, coherence
// change detection), the farm master (dispatch, heartbeats, retries,
// speculation, delta apply/base-miss) and workers (recv/render/encode/
// send phases).
//
// # Concurrency and cost model
//
// A Recorder hands out Tracks; every Track is single-writer — owned by
// exactly one goroutine at a time, with ownership handed over only
// across an existing synchronisation point (the tile pool's WaitGroup
// barrier, a channel send). Appending an event is therefore a plain
// ring-buffer store: no locks, no atomics. A disabled recorder is a nil
// *Recorder (and hands out nil Tracks), and every method is a nil-check
// away from returning — the disabled path costs a single branch, which
// is what lets the per-tile hot path stay instrumented unconditionally.
//
// Records are compact (an Event is 40 bytes) and each track's ring is
// bounded, so a runaway run overwrites its own oldest events instead of
// growing without bound; Dropped counts what was lost.
//
// Worker-side tracks are shipped to the master over the wire (see the
// farm package's capWireTimeline) and merged into one cluster timeline
// with per-worker clock-offset correction (OffsetEstimator). The merged
// Timeline exports Chrome trace-event JSON loadable in Perfetto and
// feeds the cmd/nowtrace analyzer.
package timeline

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Op identifies what a span or instant event measures.
type Op uint16

const (
	// OpNone is the zero op; the analyzer ignores it.
	OpNone Op = iota
	// OpFrame spans one frame render on a worker (render phase).
	OpFrame
	// OpTile spans one tile of the intra-frame pool.
	OpTile
	// OpChangeDetect spans the coherence engine's between-frame change
	// detection (markChanges + block dilation).
	OpChangeDetect
	// OpRecv spans a worker waiting for work from the master.
	OpRecv
	// OpEncode spans frame-result encoding (delta/compress) on a worker
	// (arg>>2 = encoded message bytes, arg&3 = the chosen codec,
	// wire.Enc* — raw 0, flate 1, span 2).
	OpEncode
	// OpSend spans shipping a frame result back to the master.
	OpSend
	// OpDispatch marks the master assigning a task (arg = task id,
	// frame = the task's start frame).
	OpDispatch
	// OpResult marks the master receiving a frame result (arg = wire
	// bytes).
	OpResult
	// OpTaskDone marks the master receiving a task completion (arg =
	// task id).
	OpTaskDone
	// OpRetire marks the master retiring a worker.
	OpRetire
	// OpRequeue marks frames requeued after a loss (frame = run start,
	// arg = frames requeued).
	OpRequeue
	// OpQuarantine spans the master rendering a poisoned frame locally.
	OpQuarantine
	// OpSteal marks an adaptive subdivision (truncate sent).
	OpSteal
	// OpSpeculate marks a speculative task re-issue (arg = task id).
	OpSpeculate
	// OpPing marks a heartbeat ping sent (arg = sequence).
	OpPing
	// OpDeltaApply marks a dirty-span delta applied (arg = span count).
	OpDeltaApply
	// OpBaseMiss marks a delta discarded because its base was lost.
	OpBaseMiss
	// OpAck marks a DFB control ack: the master learning a worker shipped
	// a frame result to a compositor sink (arg = sink payload bytes).
	OpAck
	// OpSinkAssemble is a compositor sink merging one frame result into
	// its shard assembly (arg = payload bytes).
	OpSinkAssemble
	// OpSinkDeliver marks the master processing a sink's delivery
	// confirmation (arg = frame).
	OpSinkDeliver
	// OpNeedKey marks a compositor asking a worker for a fresh key-frame
	// after a base miss (arg = frame).
	OpNeedKey
	// OpEnqueue marks a job admitted to the service queue (arg = job
	// sequence number).
	OpEnqueue
	// OpAdmit marks the scheduler dispatching a queued job into a
	// concurrency slot (arg = job sequence number).
	OpAdmit
	// OpQueueWait spans a job's time on the queue, enqueue to admit —
	// what nowtrace charges to queueing rather than rendering.
	OpQueueWait
	// OpLease marks the scheduler leasing worker slots from the fleet
	// pool for a farm run (arg = slots granted).
	OpLease
	// OpCoalesce marks a frame request joining another job's in-flight
	// render instead of starting its own (arg = frame).
	OpCoalesce
	// OpDrain marks the service entering drain: admission stopped,
	// running jobs finishing.
	OpDrain
	// OpLeaseRenew marks the fleet broker renewing a replica's worker
	// lease (arg = lease id).
	OpLeaseRenew
	// OpLeaseExpire marks the fleet broker expiring a lease whose
	// replica stopped renewing, returning its units (arg = lease id).
	OpLeaseExpire
	// OpForward spans the object-space forwarding work of one frame on a
	// worker: rays that left their shard and were serialized to the next
	// shard owner (arg = rays forwarded this frame).
	OpForward
	opCount
)

var opNames = [...]string{
	OpNone:         "none",
	OpFrame:        "frame",
	OpTile:         "tile",
	OpChangeDetect: "change-detect",
	OpRecv:         "recv",
	OpEncode:       "encode",
	OpSend:         "send",
	OpDispatch:     "dispatch",
	OpResult:       "result",
	OpTaskDone:     "task-done",
	OpRetire:       "retire",
	OpRequeue:      "requeue",
	OpQuarantine:   "quarantine",
	OpSteal:        "steal",
	OpSpeculate:    "speculate",
	OpPing:         "ping",
	OpDeltaApply:   "delta-apply",
	OpBaseMiss:     "base-miss",
	OpAck:          "ack",
	OpSinkAssemble: "sink-assemble",
	OpSinkDeliver:  "sink-deliver",
	OpNeedKey:      "need-key",
	OpEnqueue:      "enqueue",
	OpAdmit:        "admit",
	OpQueueWait:    "queue-wait",
	OpLease:        "lease",
	OpCoalesce:     "coalesce",
	OpDrain:        "drain",
	OpLeaseRenew:   "lease-renew",
	OpLeaseExpire:  "lease-expire",
	OpForward:      "forward",
}

// String returns the op's stable name (also the Chrome trace event
// name; OpFromString inverts it).
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// OpFromString maps a stable op name back to its Op (OpNone when
// unknown) — the import half of the Chrome trace round trip.
func OpFromString(s string) Op {
	for o, n := range opNames {
		if n == s {
			return Op(o)
		}
	}
	return OpNone
}

// Event is one timeline record: a span when Dur > 0 (or a zero-length
// span), an instant when Dur < 0. Timestamps are nanoseconds on the
// owning recorder's clock (time since its epoch, or virtual time in the
// virtual driver); merged cluster timelines shift worker events onto
// the master's clock.
type Event struct {
	Start int64 // ns since the recorder epoch
	Dur   int64 // span duration in ns; instantDur marks an instant
	Op    Op
	Frame int32 // frame number, -1 when not frame-scoped
	Arg   int64 // op-specific argument (see the Op docs)
}

// instantDur is the Dur sentinel distinguishing instants from
// zero-length spans.
const instantDur = -1

// Instant reports whether the event is an instant rather than a span.
func (e Event) Instant() bool { return e.Dur < 0 }

// End returns the span's end timestamp (Start for instants).
func (e Event) End() int64 {
	if e.Dur > 0 {
		return e.Start + e.Dur
	}
	return e.Start
}

// DefaultTrackCap is the per-track ring capacity when New is given a
// non-positive one: enough for thousands of frames of phase spans
// while keeping a track under 256 KiB.
const DefaultTrackCap = 1 << 13

// Recorder owns the clock and the set of tracks of one process's
// timeline. A nil *Recorder is the disabled recorder: it hands out nil
// Tracks and every method returns immediately.
type Recorder struct {
	epoch    time.Time
	trackCap int

	mu     sync.Mutex
	tracks []*Track
	byName map[string]*Track
}

// New creates an enabled recorder whose clock starts now. capPerTrack
// bounds each track's ring; <= 0 selects DefaultTrackCap.
func New(capPerTrack int) *Recorder {
	if capPerTrack <= 0 {
		capPerTrack = DefaultTrackCap
	}
	return &Recorder{
		epoch:    time.Now(),
		trackCap: capPerTrack,
		byName:   make(map[string]*Track),
	}
}

// Now returns the recorder clock in nanoseconds since its epoch (0 on
// the disabled recorder).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Track returns the named track, creating it on first use. Track names
// are paths: the element before the first '/' is the group (a worker
// name, "master") the analyzer and the Chrome exporter aggregate by.
// Returns nil on the disabled recorder. Safe to call from any
// goroutine; the returned track must then be written by one goroutine
// at a time.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := &Track{rec: r, name: name, buf: make([]Event, r.trackCap)}
	r.byName[name] = t
	r.tracks = append(r.tracks, t)
	return t
}

// Track is one single-writer event ring. The zero of *Track (nil) is a
// disabled track: every method is a single branch.
type Track struct {
	rec   *Recorder
	name  string
	buf   []Event
	n     uint64 // events ever appended
	taken uint64 // low-water mark consumed by TakeNew
}

// Name returns the track's name ("" on a nil track).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Begin samples the recorder clock for a span about to be measured.
// On a nil track it returns 0 without reading the clock — the whole
// disabled span costs two branches.
func (t *Track) Begin() int64 {
	if t == nil {
		return 0
	}
	return t.rec.Now()
}

// End appends a span from start (a Begin result) to now.
func (t *Track) End(op Op, frame int, start int64) {
	if t == nil {
		return
	}
	t.append(Event{Start: start, Dur: t.rec.Now() - start, Op: op, Frame: int32(frame)})
}

// EndArg is End with an op-specific argument.
func (t *Track) EndArg(op Op, frame int, start, arg int64) {
	if t == nil {
		return
	}
	t.append(Event{Start: start, Dur: t.rec.Now() - start, Op: op, Frame: int32(frame), Arg: arg})
}

// Span appends a span with explicit timestamps — the virtual driver's
// path, where time is the cluster model's, not the wall clock's.
func (t *Track) Span(op Op, frame int, start, end, arg int64) {
	if t == nil {
		return
	}
	d := end - start
	if d < 0 {
		d = 0
	}
	t.append(Event{Start: start, Dur: d, Op: op, Frame: int32(frame), Arg: arg})
}

// Instant appends an instant event at now.
func (t *Track) Instant(op Op, frame int, arg int64) {
	if t == nil {
		return
	}
	t.append(Event{Start: t.rec.Now(), Dur: instantDur, Op: op, Frame: int32(frame), Arg: arg})
}

// InstantAt appends an instant with an explicit timestamp.
func (t *Track) InstantAt(op Op, frame int, at, arg int64) {
	if t == nil {
		return
	}
	t.append(Event{Start: at, Dur: instantDur, Op: op, Frame: int32(frame), Arg: arg})
}

func (t *Track) append(e Event) {
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
}

// events returns the surviving ring contents in append order, plus the
// dropped (overwritten) count. Callers must hold the owner's quiescence
// (see TakeNew / Snapshot).
func (t *Track) events(from uint64) ([]Event, uint64) {
	lost := uint64(0)
	if t.n > uint64(len(t.buf)) {
		oldest := t.n - uint64(len(t.buf))
		if oldest > from {
			lost = oldest - from
			from = oldest
		}
	}
	out := make([]Event, 0, t.n-from)
	for i := from; i < t.n; i++ {
		out = append(out, t.buf[i%uint64(len(t.buf))])
	}
	return out, lost
}

// TrackEvents is one track's slice of a drain or snapshot.
type TrackEvents struct {
	Track   string
	Events  []Event
	Dropped uint64
}

// TakeNew drains every track's events appended since the previous
// TakeNew, in track-creation order. The caller must be quiesced with
// respect to all track owners (the farm worker drains between frames,
// after the tile pool barrier). Nil recorder returns nil.
func (r *Recorder) TakeNew() []TrackEvents {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	tracks := make([]*Track, len(r.tracks))
	copy(tracks, r.tracks)
	r.mu.Unlock()
	var out []TrackEvents
	for _, t := range tracks {
		evs, lost := t.events(t.taken)
		t.taken = t.n
		if len(evs) == 0 && lost == 0 {
			continue
		}
		out = append(out, TrackEvents{Track: t.name, Events: evs, Dropped: lost})
	}
	return out
}

// Snapshot copies the recorder's full surviving contents into a
// Timeline (nil recorder yields an empty, non-nil Timeline). Like
// TakeNew it requires track-owner quiescence.
func (r *Recorder) Snapshot() *Timeline {
	tl := &Timeline{Meta: map[string]string{}}
	if r == nil {
		return tl
	}
	r.mu.Lock()
	tracks := make([]*Track, len(r.tracks))
	copy(tracks, r.tracks)
	r.mu.Unlock()
	for _, t := range tracks {
		evs, lost := t.events(0)
		tl.AddTrack(t.name, evs, lost)
	}
	return tl
}

// Timeline is a merged, exportable set of tracks — one process's
// snapshot, or the cluster-wide merge the master builds from its own
// recorder plus every worker's shipped, offset-corrected events.
type Timeline struct {
	// Meta carries run-level metadata (scheme, scene, resolution); the
	// Chrome exporter writes it as otherData and the analyzer reports
	// the partition scheme from it.
	Meta   map[string]string
	Tracks []TrackData
}

// TrackData is one track's events, sorted by start time.
type TrackData struct {
	// Name is the track path; Group() is its first element.
	Name    string
	Events  []Event
	Dropped uint64
}

// Group returns the track's group — the name up to the first '/'
// (a worker name or "master").
func (td *TrackData) Group() string { return GroupOf(td.Name) }

// GroupOf returns the group of a track name: the prefix up to the
// first '/', or the whole name when there is no separator.
func GroupOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// AddTrack appends a track, merging into an existing one of the same
// name (shipped worker tracks arrive in per-frame slices).
func (tl *Timeline) AddTrack(name string, events []Event, dropped uint64) {
	for i := range tl.Tracks {
		if tl.Tracks[i].Name == name {
			tl.Tracks[i].Events = append(tl.Tracks[i].Events, events...)
			tl.Tracks[i].Dropped += dropped
			return
		}
	}
	evs := make([]Event, len(events))
	copy(evs, events)
	tl.Tracks = append(tl.Tracks, TrackData{Name: name, Events: evs, Dropped: dropped})
}

// Shift adds off nanoseconds to every event of the named track group —
// the clock-offset correction mapping a worker's clock onto the
// master's.
func (tl *Timeline) Shift(group string, off int64) {
	for i := range tl.Tracks {
		if tl.Tracks[i].Group() != group {
			continue
		}
		for j := range tl.Tracks[i].Events {
			tl.Tracks[i].Events[j].Start += off
		}
	}
}

// Sort orders tracks by name and each track's events by start time
// (stable, so equal timestamps keep append order).
func (tl *Timeline) Sort() {
	sort.SliceStable(tl.Tracks, func(i, j int) bool { return tl.Tracks[i].Name < tl.Tracks[j].Name })
	for i := range tl.Tracks {
		evs := tl.Tracks[i].Events
		sort.SliceStable(evs, func(a, b int) bool { return evs[a].Start < evs[b].Start })
	}
}

// Events counts all events across tracks.
func (tl *Timeline) Events() int {
	n := 0
	for i := range tl.Tracks {
		n += len(tl.Tracks[i].Events)
	}
	return n
}

// Bounds returns the earliest start and latest end across all events
// (0, 0 when empty).
func (tl *Timeline) Bounds() (start, end int64) {
	first := true
	for i := range tl.Tracks {
		for _, e := range tl.Tracks[i].Events {
			if first || e.Start < start {
				start = e.Start
			}
			if first || e.End() > end {
				end = e.End()
			}
			first = false
		}
	}
	return start, end
}
