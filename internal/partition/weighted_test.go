package partition

import (
	"testing"
	"testing/quick"
)

func TestWeightedSequenceProportional(t *testing.T) {
	// The paper's testbed: speeds 2:1:1 over 45 frames.
	s := WeightedSequenceDivision{Speeds: []float64{2, 1, 1}, Adaptive: true}
	tasks := s.InitialTasks(240, 320, 0, 45, 3)
	if len(tasks) != 3 {
		t.Fatalf("%d tasks", len(tasks))
	}
	// Fast machine gets ~22-23 frames, slow ones ~11 each.
	if tasks[0].Frames() < 22 || tasks[0].Frames() > 23 {
		t.Errorf("fast task has %d frames, want ~22", tasks[0].Frames())
	}
	if tasks[1].Frames() < 11 || tasks[1].Frames() > 12 {
		t.Errorf("slow task has %d frames", tasks[1].Frames())
	}
	if err := ValidateTiling(tasks, 240, 320, 0, 45); err != nil {
		t.Error(err)
	}
	// Subsequences stay contiguous for coherence.
	for i := 1; i < len(tasks); i++ {
		if tasks[i].StartFrame != tasks[i-1].EndFrame {
			t.Error("subsequences not contiguous")
		}
	}
}

func TestWeightedDefaultsToUniform(t *testing.T) {
	s := WeightedSequenceDivision{}
	u := SequenceDivision{}
	a := s.InitialTasks(10, 10, 0, 12, 3)
	b := u.InitialTasks(10, 10, 0, 12, 3)
	if len(a) != len(b) {
		t.Fatalf("task counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Frames() != b[i].Frames() {
			t.Errorf("task %d: %d vs %d frames", i, a[i].Frames(), b[i].Frames())
		}
	}
}

func TestWeightedZeroAndMissingSpeeds(t *testing.T) {
	// Zero/absent speeds are treated as 1.
	s := WeightedSequenceDivision{Speeds: []float64{4, 0}}
	tasks := s.InitialTasks(8, 8, 0, 10, 3)
	if err := ValidateTiling(tasks, 8, 8, 0, 10); err != nil {
		t.Fatal(err)
	}
	// Weights 4,1,1: fast gets ~6-7 frames.
	if tasks[0].Frames() < 6 {
		t.Errorf("fast task frames = %d", tasks[0].Frames())
	}
}

func TestWeightedSubdivide(t *testing.T) {
	s := WeightedSequenceDivision{Speeds: []float64{2, 1}, Adaptive: true}
	task := s.InitialTasks(8, 8, 0, 12, 2)[0]
	keep, give, ok := s.Subdivide(task)
	if !ok || keep.Frames()+give.Frames() != task.Frames() {
		t.Errorf("subdivide: %v | %v ok=%v", keep, give, ok)
	}
	static := WeightedSequenceDivision{Speeds: []float64{2, 1}}
	if _, _, ok := static.Subdivide(task); ok {
		t.Error("static weighted scheme subdivided")
	}
}

// Property: any speed mix tiles exactly.
func TestQuickWeightedTiles(t *testing.T) {
	f := func(s0, s1, s2 uint8, frames8, workers8 uint8) bool {
		speeds := []float64{float64(s0%8) + 0.5, float64(s1%8) + 0.5, float64(s2%8) + 0.5}
		frames := int(frames8%40) + 1
		workers := int(workers8%5) + 1
		s := WeightedSequenceDivision{Speeds: speeds, Adaptive: true}
		tasks := s.InitialTasks(16, 16, 0, frames, workers)
		return ValidateTiling(tasks, 16, 16, 0, frames) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
