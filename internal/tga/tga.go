// Package tga reads and writes uncompressed 24-bit Targa images, the
// output format the paper's runs used ("240x320 resolution in targa
// format with 24-bit color"), plus binary PPM as a portable alternative.
package tga

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"nowrender/internal/fb"
)

// tgaHeader is the fixed 18-byte uncompressed-truecolor header.
func tgaHeader(w, h int) [18]byte {
	var hd [18]byte
	hd[2] = 2 // uncompressed truecolor
	hd[12] = byte(w)
	hd[13] = byte(w >> 8)
	hd[14] = byte(h)
	hd[15] = byte(h >> 8)
	hd[16] = 24   // bits per pixel
	hd[17] = 0x20 // top-left origin
	return hd
}

// Encode writes img as an uncompressed 24-bit TGA.
func Encode(w io.Writer, img *fb.Framebuffer) error {
	if img.W > 0xFFFF || img.H > 0xFFFF {
		return fmt.Errorf("tga: image %dx%d exceeds format limits", img.W, img.H)
	}
	bw := bufio.NewWriter(w)
	hd := tgaHeader(img.W, img.H)
	if _, err := bw.Write(hd[:]); err != nil {
		return err
	}
	// TGA stores BGR.
	row := make([]byte, img.W*3)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			r, g, b := img.At(x, y)
			row[x*3+0] = b
			row[x*3+1] = g
			row[x*3+2] = r
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads an uncompressed 24-bit TGA produced by Encode (top-left
// or bottom-left origin).
func Decode(r io.Reader) (*fb.Framebuffer, error) {
	br := bufio.NewReader(r)
	var hd [18]byte
	if _, err := io.ReadFull(br, hd[:]); err != nil {
		return nil, fmt.Errorf("tga: short header: %w", err)
	}
	if hd[2] != 2 {
		return nil, fmt.Errorf("tga: unsupported image type %d (want 2)", hd[2])
	}
	if hd[16] != 24 {
		return nil, fmt.Errorf("tga: unsupported depth %d (want 24)", hd[16])
	}
	idLen := int(hd[0])
	if idLen > 0 {
		if _, err := io.CopyN(io.Discard, br, int64(idLen)); err != nil {
			return nil, err
		}
	}
	w := int(hd[12]) | int(hd[13])<<8
	h := int(hd[14]) | int(hd[15])<<8
	topLeft := hd[17]&0x20 != 0
	img := fb.New(w, h)
	row := make([]byte, w*3)
	for yy := 0; yy < h; yy++ {
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, fmt.Errorf("tga: short pixel data: %w", err)
		}
		y := yy
		if !topLeft {
			y = h - 1 - yy
		}
		for x := 0; x < w; x++ {
			img.SetRGB(x, y, row[x*3+2], row[x*3+1], row[x*3+0])
		}
	}
	return img, nil
}

// WriteFile encodes img to path as TGA.
func WriteFile(path string, img *fb.Framebuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile decodes a TGA file.
func ReadFile(path string) (*fb.Framebuffer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// EncodePPM writes img as binary PPM (P6), handy for quick viewing.
func EncodePPM(w io.Writer, img *fb.Framebuffer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.W, img.H); err != nil {
		return err
	}
	if _, err := bw.Write(img.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodePPM reads a binary PPM (P6) image.
func DecodePPM(r io.Reader) (*fb.Framebuffer, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("ppm: bad header: %w", err)
	}
	if magic != "P6" || maxv != 255 {
		return nil, fmt.Errorf("ppm: unsupported format %s/%d", magic, maxv)
	}
	// Single whitespace byte after maxval.
	if _, err := br.ReadByte(); err != nil {
		return nil, err
	}
	img := fb.New(w, h)
	if _, err := io.ReadFull(br, img.Pix); err != nil {
		return nil, fmt.Errorf("ppm: short pixel data: %w", err)
	}
	return img, nil
}

// WriteFilePPM encodes img to path as PPM.
func WriteFilePPM(path string, img *fb.Framebuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePPM(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
