// Package coherence implements the paper's central contribution: the
// predictive frame-coherence algorithm of §2 (Figure 3).
//
// While a frame is rendered, every ray spawned for a pixel — camera,
// reflected, refracted and shadow rays — is walked through a voxel grid
// over object space (3D-DDA) and the pixel is registered on the pixel
// list of every voxel the ray traverses. Between frame f and f+1 the
// engine finds the voxels in which change occurs (objects moving in or
// out) and marks every pixel registered on those voxels for
// recomputation; all other pixels are copied from the previous frame.
//
// Unlike Jevans' object-based temporal coherence, granularity is a single
// pixel (an NxN block mode is provided as the Jevans-style baseline for
// the ablation benches), shadow rays participate in registration, and the
// engine is built to run on subregions so the parallel decompositions of
// §3 can each own an engine.
//
// # Concurrency
//
// The engine's public methods must be called from a single goroutine,
// but RenderFrame internally fans its region out to an intra-frame tile
// pool of Options.Threads goroutines (default runtime.NumCPU()). Each
// tile worker owns a trace.Worker plus a registration collector, so no
// lock is taken on the hot path; per-tile results — pixels, ray
// counters, voxel registrations — are merged deterministically at the
// frame barrier. Output bytes and all reported counts are identical for
// every thread count, which is what lets the farm treat Threads as a
// pure speed knob (and the service cache key ignore it).
package coherence

import (
	"fmt"
	"time"

	"nowrender/internal/bitset"
	"nowrender/internal/fb"
	"nowrender/internal/grid"
	"nowrender/internal/objspace"
	"nowrender/internal/scene"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

// Options configure an Engine.
type Options struct {
	// GridRes overrides the automatic voxel resolution when positive.
	GridRes int
	// BlockGranularity dilates the dirty mask to NxN pixel blocks,
	// emulating Jevans' block-level coherence for comparison. 0 or 1 is
	// the paper's per-pixel granularity.
	BlockGranularity int
	// SamplesPerPixel is passed through to the tracer.
	SamplesPerPixel int
	// AAThreshold and AASamples enable the tracer's adaptive
	// antialiasing; coherent re-rendering stays pixel-exact because the
	// extra samples are deterministic per pixel.
	AAThreshold float64
	AASamples   int
	// CompactEvery triggers a full compaction of stale registrations
	// every N rendered frames, bounding memory growth on long
	// animations. 0 selects the default of 16; negative disables.
	CompactEvery int
	// Threads bounds the intra-frame tile pool RenderFrame fans out to.
	// 0 selects runtime.NumCPU(); 1 renders on the calling goroutine.
	// Output is byte-identical for every value.
	Threads int
	// ObjSpaceShards, when >= 2, renders every frame through an
	// object-space partition (internal/objspace): the frame's scene is
	// split into that many spatial shards and rays are forwarded between
	// shard owners instead of intersecting a replicated grid. The
	// engine's registration lists are sharded along the same partition
	// (see markChanges). Output is byte-identical to the replicated
	// path — the partition changes who intersects a ray, never the hit.
	ObjSpaceShards int
	// ObjSpaceStats, when non-nil with ObjSpaceShards >= 2, accumulates
	// forwarding counters and resident sizes across the sequence; nil
	// lets the engine allocate its own (see Engine.ObjSpaceStats).
	ObjSpaceStats *objspace.Stats
	// DisableShadowRegistration turns off registration of shadow-ray
	// segments. This reproduces a coherence scheme without shadow
	// support: faster bookkeeping but *incorrect* images when a blocker
	// moves between a lit surface and the light. Exists only for the
	// ablation bench; leave false for correct rendering.
	DisableShadowRegistration bool
	// TimelineTrack, when non-nil, receives an OpChangeDetect span per
	// frame (arg = changed voxels); TileTracks, indexed by tile-worker
	// slot, receive OpTile spans from the intra-frame pool. Nil tracks
	// cost a single branch, so the hot path is instrumented
	// unconditionally. Instrumentation never affects output pixels.
	TimelineTrack *timeline.Track
	TileTracks    []*timeline.Track
}

// registration is one (pixel, frame) entry on a voxel's pixel list. The
// entry is valid only while the pixel has not been re-rendered since
// `frame` — re-rendering re-registers the pixel's rays, so older entries
// are lazily discarded when touched.
type registration struct {
	pixel int32
	frame int32
}

// Engine renders a region of an animation sequence exploiting frame
// coherence. It must be fed consecutive frames via RenderFrame, starting
// at the sequence's first frame. Callers drive an Engine from one
// goroutine; RenderFrame parallelises internally (see the package
// comment). Parallel farm schemes still give each worker its own engine
// over its own region or subsequence — the two levels compose.
type Engine struct {
	sc     *scene.Scene
	W, H   int
	Region fb.Rect
	start  int
	end    int // exclusive
	opts   Options

	grid        *grid.Grid
	voxelPixels [][]registration
	// pixelStamp[p] is the frame at which region-local pixel p was last
	// actually traced; registrations from older frames are stale. Tile
	// workers write disjoint entries (each pixel belongs to one tile).
	pixelStamp []int32

	prev      *fb.Framebuffer
	nextFrame int
	// dirty is the region-local dirty mask for nextFrame. Frozen while
	// tiles render; rebuilt between frames (atomically during parallel
	// change detection).
	dirty *bitset.Bitset
	// lastSpans is the span form of the mask that drove the most recent
	// RenderFrame — exactly the pixels that call traced (storage reused
	// each frame; see LastSpans).
	lastSpans []fb.Span

	// collectors are the per-tile-worker registration buffers, reused
	// across frames (index = worker slot).
	collectors []*regCollector

	// objStats accumulates object-space forwarding counters when
	// Options.ObjSpaceShards >= 2 (nil otherwise); regShard maps each
	// registration-grid voxel to the shard owning its slab, so
	// registration lists are partitioned exactly like the geometry.
	objStats *objspace.Stats
	regShard []uint8
}

// NewEngine prepares a coherence engine for frames [start, end) of the
// scene, rendering only pixels inside region of a W x H frame. The
// camera must be stationary across the range — the caller (see
// internal/anim) splits animations at camera cuts.
func NewEngine(sc *scene.Scene, w, h int, region fb.Rect, start, end int, opts Options) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if start < 0 || end > sc.Frames || start >= end {
		return nil, fmt.Errorf("coherence: bad frame range [%d,%d) for %d frames", start, end, sc.Frames)
	}
	full := fb.NewRect(0, 0, w, h)
	if region.Empty() || region.Intersect(full) != region {
		return nil, fmt.Errorf("coherence: region %v outside frame %dx%d", region, w, h)
	}
	cam0 := sc.CameraAt(start)
	for f := start + 1; f < end; f++ {
		if !sc.CameraAt(f).Equal(cam0) {
			return nil, fmt.Errorf("coherence: camera moves at frame %d; split the sequence first", f)
		}
	}

	// The registration grid must be identical for every frame of the
	// sequence, so its bounds are the union of all per-frame bounds.
	seqBounds := vm.EmptyAABB()
	for f := start; f < end; f++ {
		seqBounds = seqBounds.Union(sc.BoundsAt(f))
	}
	var nx, ny, nz int
	if opts.GridRes > 0 {
		nx, ny, nz = opts.GridRes, opts.GridRes, opts.GridRes
	} else {
		nx, ny, nz = registrationResolution(seqBounds)
	}
	g, err := grid.New(seqBounds, nx, ny, nz)
	if err != nil {
		return nil, fmt.Errorf("coherence: %w", err)
	}

	e := &Engine{
		sc: sc, W: w, H: h, Region: region,
		start: start, end: end, opts: opts,
		grid:        g,
		voxelPixels: make([][]registration, g.NumVoxels()),
		pixelStamp:  make([]int32, region.Area()),
		nextFrame:   start,
		dirty:       bitset.New(region.Area()),
	}
	for i := range e.pixelStamp {
		e.pixelStamp[i] = -1
	}
	// Everything is dirty for the first frame.
	e.dirty.SetAll()

	if opts.ObjSpaceShards != 0 {
		if opts.ObjSpaceShards < 2 || opts.ObjSpaceShards > objspace.MaxShards {
			return nil, fmt.Errorf("coherence: object-space shard count %d outside [2,%d]", opts.ObjSpaceShards, objspace.MaxShards)
		}
		e.objStats = opts.ObjSpaceStats
		if e.objStats == nil {
			e.objStats = &objspace.Stats{}
		}
		// Shard the registration lists along the same mass-balanced slab
		// scheme the tracer uses, computed once over the sequence-wide
		// registration grid (first-frame geometry picks the axis and
		// cuts). Each registration voxel — and so each pixel list —
		// belongs to exactly one shard; change detection visits them
		// shard by shard (see markChanges). Sharding changes only that
		// visiting order, never which pixels get dirtied.
		part := objspace.MakePartition(g, opts.ObjSpaceShards, sc.ResolveFrame(start))
		e.regShard = make([]uint8, g.NumVoxels())
		for idx := range e.regShard {
			ix, iy, iz := g.Coords(idx)
			v := [3]int{ix, iy, iz}[part.Axis]
			s := len(part.Slabs) - 1
			for i, slab := range part.Slabs {
				if v < slab[1] {
					s = i
					break
				}
			}
			e.regShard[idx] = uint8(s)
		}
	}
	return e, nil
}

// ObjSpaceStats returns the engine's object-space counters, or nil when
// Options.ObjSpaceShards is off.
func (e *Engine) ObjSpaceStats() *objspace.Stats { return e.objStats }

// RegistrationShard returns the shard owning registration voxel idx
// (tests inspect the partition; -1 when sharding is off).
func (e *Engine) RegistrationShard(idx int) int {
	if e.regShard == nil {
		return -1
	}
	return int(e.regShard[idx])
}

// registrationResolution picks the default registration-grid density:
// finer than the intersection-acceleration heuristic, because voxel size
// directly bounds how tightly object motion localises dirty pixels. The
// longest axis gets 32 voxels; other axes scale with extent.
func registrationResolution(bounds vm.AABB) (nx, ny, nz int) {
	const target = 32
	size := bounds.Size()
	maxExt := size.MaxComponent()
	if maxExt <= 0 {
		return 1, 1, 1
	}
	scale := func(ext float64) int {
		v := int(ext / maxExt * target)
		if v < 1 {
			return 1
		}
		return v
	}
	return scale(size.X), scale(size.Y), scale(size.Z)
}

// Grid exposes the registration grid (tests and benches inspect it).
func (e *Engine) Grid() *grid.Grid { return e.grid }

// pixelIndex maps frame coordinates to region-local index.
func (e *Engine) pixelIndex(x, y int) int32 {
	return int32((y-e.Region.Y0)*e.Region.W() + (x - e.Region.X0))
}

// pixelCoords inverts pixelIndex.
func (e *Engine) pixelCoords(p int32) (x, y int) {
	w := e.Region.W()
	return e.Region.X0 + int(p)%w, e.Region.Y0 + int(p)/w
}

// DirtyMask returns a copy of the dirty mask that will drive the next
// RenderFrame call: exactly the pixels the algorithm predicts may change
// (Figure 2(b) is rendered from this).
func (e *Engine) DirtyMask() []bool {
	return e.dirty.Bools()
}

// NextFrame returns the frame the next RenderFrame call must render.
func (e *Engine) NextFrame() int { return e.nextFrame }

// LastSpans returns the pixels traced by the most recent RenderFrame as
// maximal horizontal runs in frame coordinates — every pixel outside
// these spans is byte-identical to the previous frame, which is what
// lets a worker ship a dirty-span delta instead of the full region. The
// slice is reused by the next RenderFrame call; callers that retain it
// across frames must copy. Nil before the first frame.
func (e *Engine) LastSpans() []fb.Span { return e.lastSpans }

// appendDirtySpans converts the region-local dirty mask to frame-space
// spans, splitting runs at row boundaries.
func (e *Engine) appendDirtySpans(out []fb.Span) []fb.Span {
	w := e.Region.W()
	e.dirty.Runs(func(start, end int) {
		for start < end {
			y := start / w
			rowEnd := (y + 1) * w
			seg := end
			if seg > rowEnd {
				seg = rowEnd
			}
			out = append(out, fb.Span{
				Y:  e.Region.Y0 + y,
				X0: e.Region.X0 + start - y*w,
				X1: e.Region.X0 + seg - y*w,
			})
			start = seg
		}
	})
	return out
}

// FrameReport describes one rendered frame.
type FrameReport struct {
	Frame int
	// Rendered is the number of pixels traced; Copied the number reused
	// from the previous frame.
	Rendered, Copied int
	// DirtyNext is the number of pixels predicted to change in the next
	// frame (0 after the last frame).
	DirtyNext int
	// Registrations counts voxel-pixel registrations made this frame and
	// ChangeVoxels the voxels examined by change detection — the work
	// quantities the virtual NOW cost model charges for coherence
	// bookkeeping.
	Registrations uint64
	ChangeVoxels  int
	// Forwarded counts rays forwarded between object-space shards this
	// frame (0 when Options.ObjSpaceShards is off).
	Forwarded uint64
	Rays      stats.RayCounters
	// Overhead is the time spent on coherence bookkeeping (ray
	// registration is folded into render time; this counts change
	// detection and mask building).
	Overhead time.Duration
}

// RenderFrame renders the engine's next frame into dst (a full W x H
// framebuffer; only the engine's region is touched). Frames must be
// rendered consecutively. Dirty pixels are traced by the intra-frame
// tile pool (Options.Threads); clean pixels are copied from the
// previous frame.
func (e *Engine) RenderFrame(frame int, dst *fb.Framebuffer) (FrameReport, error) {
	if frame != e.nextFrame {
		return FrameReport{}, fmt.Errorf("coherence: frames must be consecutive: want %d, got %d", e.nextFrame, frame)
	}
	if frame >= e.end {
		return FrameReport{}, fmt.Errorf("coherence: frame %d beyond sequence end %d", frame, e.end)
	}
	if dst.W != e.W || dst.H != e.H {
		return FrameReport{}, fmt.Errorf("coherence: dst is %dx%d, want %dx%d", dst.W, dst.H, e.W, e.H)
	}

	// No Observer here: each tile worker gets its own registration
	// collector in renderTiles. With object-space shards the replicated
	// tracer is swapped for a per-frame sharded cluster; every tile
	// worker routes its rays through the same partition, so the
	// byte-identity of the sharded path carries straight through the
	// coherence machinery.
	topts := trace.Options{
		GridRes:         e.opts.GridRes,
		SamplesPerPixel: e.opts.SamplesPerPixel,
		AAThreshold:     e.opts.AAThreshold,
		AASamples:       e.opts.AASamples,
	}
	var newWorker func(trace.RayObserver) *trace.Worker
	var fwd0 uint64
	if e.opts.ObjSpaceShards >= 2 {
		cl, err := objspace.Build(e.sc, frame, topts, objspace.Options{Shards: e.opts.ObjSpaceShards, Stats: e.objStats})
		if err != nil {
			return FrameReport{}, err
		}
		newWorker = cl.NewWorker
		fwd0 = e.objStats.RaysForwarded()
	} else {
		ft, err := trace.New(e.sc, frame, topts)
		if err != nil {
			return FrameReport{}, err
		}
		newWorker = ft.NewWorker
	}

	rep := FrameReport{Frame: frame}
	fwdSpan := e.opts.TimelineTrack.Begin()
	e.renderTiles(newWorker, frame, dst, &rep)
	if e.objStats != nil {
		rep.Forwarded = e.objStats.RaysForwarded() - fwd0
		e.opts.TimelineTrack.EndArg(timeline.OpForward, frame, fwdSpan, int64(rep.Forwarded))
	}

	// Snapshot the mask that drove this frame as spans before it is
	// rebuilt for the next one — the wire protocol's delta frames ship
	// exactly these pixels.
	e.lastSpans = e.appendDirtySpans(e.lastSpans[:0])

	// Predict the dirty set for the next frame (Figure 3's final steps).
	overheadStart := time.Now()
	cdStart := e.opts.TimelineTrack.Begin()
	e.dirty.Reset()
	if frame+1 < e.end {
		rep.ChangeVoxels = e.markChanges(frame, frame+1)
		if e.opts.BlockGranularity > 1 {
			e.dilateToBlocks(e.opts.BlockGranularity)
		}
		rep.DirtyNext = e.dirty.Count()
	}
	e.opts.TimelineTrack.EndArg(timeline.OpChangeDetect, frame, cdStart, int64(rep.ChangeVoxels))
	rep.Overhead = time.Since(overheadStart)

	// Keep the frame for pixel copying.
	if e.prev == nil {
		e.prev = dst.Clone()
	} else {
		e.prev.CopyRect(dst, e.Region)
	}
	e.nextFrame++

	// Periodic compaction bounds registration memory on long sequences
	// (the paper: memory proportional to image area — stale entries must
	// not accumulate per frame).
	ce := e.opts.CompactEvery
	if ce == 0 {
		ce = 16
	}
	if ce > 0 && (e.nextFrame-e.start)%ce == 0 {
		e.Compact()
	}
	return rep, nil
}

// dilateToBlocks expands the dirty mask to n x n pixel blocks aligned to
// the region origin (the Jevans-style baseline).
func (e *Engine) dilateToBlocks(n int) {
	w, h := e.Region.W(), e.Region.H()
	bw := (w + n - 1) / n
	bh := (h + n - 1) / n
	blocks := make([]bool, bw*bh)
	for p := 0; p < e.dirty.Len(); p++ {
		if e.dirty.Get(p) {
			bx := (p % w) / n
			by := (p / w) / n
			blocks[by*bw+bx] = true
		}
	}
	for p := 0; p < e.dirty.Len(); p++ {
		bx := (p % w) / n
		by := (p / w) / n
		if blocks[by*bw+bx] {
			e.dirty.Set(p)
		}
	}
}

// RegistrationCount returns the total number of live voxel-pixel
// registrations (memory accounting; the paper notes memory requirements
// are proportional to image area).
func (e *Engine) RegistrationCount() int {
	n := 0
	for _, regs := range e.voxelPixels {
		for _, reg := range regs {
			if e.pixelStamp[reg.pixel] == reg.frame {
				n++
			}
		}
	}
	return n
}

// Compact drops all stale registrations, trimming memory between
// sequences.
func (e *Engine) Compact() {
	for i, regs := range e.voxelPixels {
		kept := regs[:0]
		for _, reg := range regs {
			if e.pixelStamp[reg.pixel] == reg.frame {
				kept = append(kept, reg)
			}
		}
		e.voxelPixels[i] = kept
	}
}

// RenderSequence is a single-processor convenience driver: it renders
// the engine's whole frame range, invoking emit for each finished frame,
// and returns aggregate run statistics (Table 1 columns (2)-(3) come
// from this path). emit may be nil.
func (e *Engine) RenderSequence(emit func(frame int, img *fb.Framebuffer, rep FrameReport) error) (stats.RunStats, error) {
	var run stats.RunStats
	startAll := time.Now()
	for f := e.start; f < e.end; f++ {
		img := fb.New(e.W, e.H)
		frameStart := time.Now()
		rep, err := e.RenderFrame(f, img)
		if err != nil {
			return run, err
		}
		fs := stats.FrameStats{
			Frame:             f,
			Rendered:          rep.Rendered,
			Copied:            rep.Copied,
			Rays:              rep.Rays,
			Elapsed:           time.Since(frameStart),
			CoherenceOverhead: rep.Overhead,
		}
		run.AddFrame(fs)
		if emit != nil {
			if err := emit(f, img, rep); err != nil {
				return run, err
			}
		}
	}
	run.Total = time.Since(startAll)
	return run, nil
}

// FullRender renders every pixel of every frame of [start, end) without
// coherence — the baseline for Table 1 columns (1) and (4)-(5). Region
// semantics match the engine's. Serial by design: it is the
// single-processor cost reference; parallel no-coherence rendering goes
// through trace.RenderRegionParallel (the farm's plain path).
func FullRender(sc *scene.Scene, w, h int, region fb.Rect, start, end int, samples int, emit func(frame int, img *fb.Framebuffer, rc stats.RayCounters) error) (stats.RunStats, error) {
	var run stats.RunStats
	startAll := time.Now()
	for f := start; f < end; f++ {
		ft, err := trace.New(sc, f, trace.Options{SamplesPerPixel: samples})
		if err != nil {
			return run, err
		}
		img := fb.New(w, h)
		frameStart := time.Now()
		ft.RenderRegion(img, region)
		fs := stats.FrameStats{
			Frame:    f,
			Rendered: region.Area(),
			Rays:     ft.Counters,
			Elapsed:  time.Since(frameStart),
		}
		run.AddFrame(fs)
		if emit != nil {
			if err := emit(f, img, ft.Counters); err != nil {
				return run, err
			}
		}
	}
	run.Total = time.Since(startAll)
	return run, nil
}
