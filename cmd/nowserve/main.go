// Command nowserve runs the long-lived render-job service: an HTTP API
// over the render farm with a priority job queue, bounded concurrency
// and a content-addressed frame cache.
//
//	nowserve -listen :8080 -max-jobs 2 -cache-mb 64 -driver virtual
//
//	# submit a job, stream progress, fetch a frame
//	curl -s -X POST localhost:8080/jobs -d '{"scene":"newton:10","w":120,"h":160}'
//	curl -N localhost:8080/jobs/job-0001/events
//	curl -s localhost:8080/jobs/job-0001/frames/0 -o frame0.tga
//	curl -s localhost:8080/metrics
//
// Multi-tenant operation: -tenants installs an allow list with
// fair-share weights, -fair schedules across tenants by weighted fair
// queuing, and -max-queued-per-tenant caps any one tenant's queue
// backlog:
//
//	nowserve -tenants alice=3,bob -fair -max-queued-per-tenant 8
//
// SIGINT/SIGTERM drain the service gracefully: admission stops (new
// submissions are rejected), queued and running jobs run to completion
// within -drain-timeout, their event streams flush, and only then does
// the HTTP server close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nowrender/internal/buildinfo"
	"nowrender/internal/cluster"
	"nowrender/internal/farm"
	"nowrender/internal/faulty"
	"nowrender/internal/fleetd"
	"nowrender/internal/msg"
	"nowrender/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		maxJobs  = flag.Int("max-jobs", 2, "max concurrently running jobs")
		queueCap = flag.Int("queue-cap", 256, "max queued jobs")
		cacheMB  = flag.Int64("cache-mb", 64, "frame cache budget in MiB (0 = default, negative = disabled)")
		cacheTTL = flag.Duration("cache-ttl", 0, "expire cached frames this long after rendering (0 = never)")
		driver   = flag.String("driver", "virtual", "default farm driver: virtual | local")
		workers  = flag.Int("workers", 0, "goroutine workers for the local driver (0 = machine count)")
		machines = flag.Int("machines", 0, "virtual NOW size (0 = the paper's 3-machine testbed)")
		threads  = flag.Int("threads", 0, "default intra-frame render threads per farm worker (0 = all cores)")

		heartbeat    = flag.Duration("heartbeat", 0, "farm master->worker ping interval for local-driver jobs (0 = off)")
		liveness     = flag.Duration("liveness", 0, "retire a farm worker silent this long (0 = 4x heartbeat)")
		stall        = flag.Duration("stall", 0, "retire a farm worker holding a task without progress this long (0 = off)")
		frameRetries = flag.Int("frame-retries", 0, "per-frame requeue budget before the master renders locally (0 = 3)")
		speculate    = flag.Bool("speculate", false, "speculatively re-issue the slowest in-flight farm task")
		jobRetries   = flag.Int("max-job-retries", 0, "cap on a job spec's retries field (0 = 5)")
		chaos        = flag.String("chaos", "", "fault-injection plan for local-driver farm runs, e.g. seed=7,drop=0.01,protect=worker00")
		wireDelta    = flag.Bool("wire-delta", false, "ship dirty-span delta frames from workers that support them")
		dfbSinks     = flag.Int("dfb", 0, "route local-driver pixels through this many in-process compositor sinks instead of the farm master (0 = off)")
		timelineOn   = flag.Bool("timeline", false, "record a per-job cluster timeline, served on GET /jobs/{id}/timeline")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
		version      = flag.Bool("version", false, "print version and exit")

		tenants      = flag.String("tenants", "", "tenant allow list with fair-share weights, e.g. alice=3,bob (empty = any tenant, weight 1)")
		fair         = flag.Bool("fair", false, "schedule across tenants by weighted fair queuing instead of priority order")
		tenantQueue  = flag.Int("max-queued-per-tenant", 0, "max queued jobs per tenant (0 = unlimited)")
		fleetCap     = flag.Int("fleet-capacity", 0, "worker slots farm runs may lease concurrently (0 = unlimited)")
		fleetBroker  = flag.String("fleet-broker", "", "nowfleetd address; lease worker slots from the shared broker instead of a private pool (multi-master mode)")
		replicaID    = flag.String("replica-id", "", "this replica's name in a multi-master deployment (default: the listen address)")
		leaseTerm    = flag.Duration("lease-term", 0, "broker lease term to request (0 = broker default); only with -fleet-broker")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for running jobs to finish on SIGTERM before they are cancelled")
	)
	var wireCompress farm.WireCompressFlag
	flag.Var(&wireCompress, "wire-compress", "frame payload compression: off, flate, span, or adaptive (per-worker choice); bare flag = flate")
	flag.Parse()
	if flag.NArg() > 0 {
		// Likely "-wire-compress span" instead of "-wire-compress=span":
		// bool-style flags don't consume a value argument, so the mode word
		// becomes a positional arg and silently stops flag parsing.
		fmt.Fprintf(os.Stderr, "nowserve: unexpected argument %q (mode-taking flags need = syntax, e.g. -wire-compress=span)\n", flag.Arg(0))
		os.Exit(2)
	}
	if *version {
		fmt.Println("nowserve", buildinfo.Version())
		return
	}
	tenantWeights, err := parseTenants(*tenants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowserve:", err)
		os.Exit(1)
	}
	policy := "priority"
	if *fair {
		policy = "fair"
	}
	cfg := service.Config{
		MaxConcurrent: *maxJobs,
		QueueCap:      *queueCap,
		CacheBytes:    *cacheMB << 20,
		CacheTTL:      *cacheTTL,
		DefaultDriver: *driver,
		Workers:       *workers,
		Threads:       *threads,
		Heartbeat:     *heartbeat,
		Liveness:      *liveness,
		StallTimeout:  *stall,
		FrameRetries:  *frameRetries,
		Speculate:     *speculate,
		MaxJobRetries: *jobRetries,
		WireDelta:     *wireDelta,
		WireCompress:  wireCompress.Mode.Flate,
		WireSpanCodec: wireCompress.Mode.Span,
		DFBSinks:      *dfbSinks,
		Timeline:      *timelineOn,

		Tenants:            tenantWeights,
		Policy:             policy,
		MaxQueuedPerTenant: *tenantQueue,
		FleetCapacity:      *fleetCap,
	}
	if *machines > 0 {
		cfg.Machines = cluster.Uniform(*machines, 1.0, 64)
	}
	plan, err := faulty.ParsePlan(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowserve:", err)
		os.Exit(1)
	}
	if plan != nil {
		cfg.FaultWrap = plan.Wrap
	}
	if *fleetBroker != "" {
		// Multi-master: this replica draws worker capacity from the shared
		// nowfleetd broker instead of its private pool. A crashed replica
		// stops renewing and its slots return to the pool for survivors.
		cfg.ReplicaID = *replicaID
		if cfg.ReplicaID == "" {
			cfg.ReplicaID = *listen
		}
		addr := *fleetBroker
		rp, err := fleetd.NewReplicaPool(fleetd.ClientConfig{
			Replica: cfg.ReplicaID,
			Dial:    func() (msg.Conn, error) { return msg.Dial(addr) },
			Term:    *leaseTerm,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "nowserve:", err)
			os.Exit(1)
		}
		defer rp.Close()
		cfg.Leaser = rp
	} else if *replicaID != "" {
		cfg.ReplicaID = *replicaID
	}
	if err := run(*listen, *driver, cfg, *pprofOn, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "nowserve:", err)
		os.Exit(1)
	}
}

// parseTenants reads "alice=3,bob,carol=2" into the service's tenant
// weight map: bare names get weight 1.
func parseTenants(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("bad -tenants entry %q", part)
		}
		weight := 1.0
		if hasWeight {
			w, err := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad -tenants weight in %q", part)
			}
			weight = w
		}
		out[name] = weight
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -tenants list %q", s)
	}
	return out, nil
}

func run(listen, driver string, cfg service.Config, pprofOn bool, drainTimeout time.Duration) error {
	svc := service.New(cfg)
	var handler http.Handler = svc.Handler()
	if pprofOn {
		// Mount the profiling endpoints on an outer mux so the service
		// handler stays unaware of them. Index serves everything under
		// /debug/pprof/ except the four special handlers.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: listen, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("nowserve %s\n", buildinfo.Version())
	fmt.Printf("nowserve listening on %s (driver=%s, max-jobs=%d)\n", listen, driver, cfg.MaxConcurrent)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Drain before closing the HTTP server: admission stops, queued and
	// running jobs finish, and their SSE streams receive terminal events
	// — so Shutdown below finds no live streams to wait out. Shutting
	// the server first would hang on open event streams while Close
	// killed the very jobs clients were watching.
	fmt.Printf("nowserve: draining (grace %s)\n", drainTimeout)
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelDrain()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Println("nowserve: drain timed out, cancelling remaining jobs")
	}
	fmt.Println("nowserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
