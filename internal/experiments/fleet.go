package experiments

import (
	"context"
	"fmt"
	"time"

	"nowrender/internal/cluster"
	"nowrender/internal/fleetd"
	"nowrender/internal/msg"
	"nowrender/internal/service"
)

// FleetPoint is one row of the multi-master control-plane sweep: the
// same job batch pushed through n nowserve replicas drawing workers
// from one shared broker-managed fleet.
type FleetPoint struct {
	Replicas int `json:"replicas"`
	Jobs     int `json:"jobs"`
	// FleetSlots is the shared worker capacity every replica count
	// contends for — held fixed so the sweep isolates the control
	// plane, not the render horsepower.
	FleetSlots int     `json:"fleet_slots"`
	WallMS     float64 `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Grants and Waits come from the broker ledger: how many leases the
	// batch took and how many acquires had to queue for a free slot.
	Grants uint64 `json:"grants"`
	Waits  uint64 `json:"waits"`
}

// FleetSweep renders the same job batch through 1, 2, ... replica
// control planes sharing one fixed-size worker fleet, reporting batch
// throughput per replica count. One replica bottlenecks on its own
// concurrency limit before the fleet saturates; added replicas lease
// the idle slots and raise jobs/sec until the fleet, not the control
// plane, is the limit.
func FleetSweep(replicaCounts []int, jobs int) ([]FleetPoint, error) {
	if jobs <= 0 {
		jobs = 6
	}
	var out []FleetPoint
	for _, n := range replicaCounts {
		pt, err := fleetScenario(n, jobs)
		if err != nil {
			return nil, fmt.Errorf("experiments: fleet x%d: %w", n, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

func fleetScenario(replicas, jobs int) (FleetPoint, error) {
	const slots = 3
	broker := fleetd.NewBroker(fleetd.BrokerConfig{
		Capacity: slots, Term: 2 * time.Second,
	})
	srv := fleetd.NewServer(broker, 0)
	defer srv.Close()
	dial := func() (msg.Conn, error) {
		a, b := msg.Pipe(64)
		if err := srv.ServeConn(b); err != nil {
			a.Close()
			return nil, err
		}
		return a, nil
	}

	// Each replica runs single-machine farm runs (two at a time), so a
	// lone replica can hold at most 2 of the 3 fleet slots: the
	// headroom extra replicas exist to claim.
	svcs := make([]*service.Service, replicas)
	for i := range svcs {
		rp, err := fleetd.NewReplicaPool(fleetd.ClientConfig{
			Replica: fmt.Sprintf("replica-%d", i), Dial: dial,
			Term: 2 * time.Second,
		})
		if err != nil {
			return FleetPoint{}, err
		}
		defer rp.Close()
		svcs[i] = service.New(service.Config{
			MaxConcurrent: 2,
			Machines:      cluster.PaperTestbed()[:1],
			Leaser:        rp,
			ReplicaID:     fmt.Sprintf("replica-%d", i),
			CacheBytes:    -1,
		})
		defer svcs[i].Close()
	}

	type handle struct {
		svc *service.Service
		id  string
	}
	start := time.Now()
	handles := make([]handle, 0, jobs)
	for i := 0; i < jobs; i++ {
		svc := svcs[i%replicas]
		st, err := svc.Submit(service.JobSpec{
			// Distinct resolutions defeat coalescing: every job renders.
			// Single-threaded renders make a fleet slot cost one core, so
			// replica-count scaling is visible in wall time on one host.
			Scene: "newton:3", W: 96 + 4*i, H: 72 + 3*i, Threads: 1,
		})
		if err != nil {
			return FleetPoint{}, err
		}
		handles = append(handles, handle{svc, st.ID})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, h := range handles {
		st, err := h.svc.Wait(ctx, h.id)
		if err != nil {
			return FleetPoint{}, err
		}
		if st.State != service.StateDone {
			return FleetPoint{}, fmt.Errorf("job %s: %s (%s)", h.id, st.State, st.Error)
		}
	}
	wall := time.Since(start)

	if err := broker.CheckInvariant(); err != nil {
		return FleetPoint{}, err
	}
	bst := broker.Stats()
	return FleetPoint{
		Replicas: replicas, Jobs: jobs, FleetSlots: slots,
		WallMS:     float64(wall.Microseconds()) / 1000,
		JobsPerSec: float64(jobs) / wall.Seconds(),
		Grants:     bst.Grants, Waits: bst.Waits,
	}, nil
}
