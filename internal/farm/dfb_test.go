package farm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nowrender/internal/compositor"
	"nowrender/internal/faulty"
	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/partition"
	"nowrender/internal/stats"
)

// dfbConfig is the canonical DFB test run: coherent delta+compressed
// wire frames shipped straight to in-process compositor sinks.
func dfbConfig(frames, sinks int) Config {
	return Config{
		Scene: farmScene(frames), W: fw, H: fh, Coherence: true, Workers: 3,
		Scheme:       partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		WireDelta:    true,
		WireCompress: true,
		DFB:          &DFBConfig{Sinks: sinks},
	}
}

// TestDFBGolden: the compositor-routed pipeline must produce the exact
// golden bytes of the legacy master-routed pipeline — re-routing pixels
// may change who holds them, never what they are.
func TestDFBGolden(t *testing.T) {
	want := readGolden(t)
	for _, sinks := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("sinks=%d", sinks), func(t *testing.T) {
			res, err := RenderLocal(dfbConfig(goldenFrames, sinks))
			if err != nil {
				t.Fatal(err)
			}
			got := hashFrames(res.Frames)
			for f := range want {
				if got[f] != want[f] {
					t.Errorf("frame %d: hash %s, golden %s", f, got[f], want[f])
				}
			}
			if res.Wire.FramesAcked == 0 {
				t.Error("no frame acks: the run never used the DFB path")
			}
			if res.Wire.SinkIngressBytes == 0 {
				t.Error("SinkIngressBytes = 0: sinks confirmed no pixel bytes")
			}
		})
	}
}

// TestDFBMasterIngress: the whole point of the subsystem — pixel bytes
// must leave the master's ingress path. The master should receive only
// small control acks while the sinks take the pixel payloads.
func TestDFBMasterIngress(t *testing.T) {
	// Large enough frames that pixel payloads dwarf the fixed-size
	// control acks — the regime the subsystem exists for. At thumbnail
	// sizes the ack overhead is comparable to a compressed tile and the
	// ratio is meaningless.
	const iw, ih = 160, 120
	base := Config{
		Scene: farmScene(4), W: iw, H: ih, Coherence: true, Workers: 3,
		Scheme:       partition.FrameDivision{BlockW: 80, BlockH: 60, Adaptive: true},
		WireDelta:    true,
		WireCompress: true,
	}
	legacy, err := RenderLocal(base)
	if err != nil {
		t.Fatal(err)
	}
	withDFB := base
	withDFB.Scene = farmScene(4)
	withDFB.DFB = &DFBConfig{Sinks: 2}
	dfb, err := RenderLocal(withDFB)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Wire.MasterIngressBytes != legacy.Wire.WireBytes {
		t.Errorf("legacy: MasterIngressBytes %d != WireBytes %d (all results route through the master)",
			legacy.Wire.MasterIngressBytes, legacy.Wire.WireBytes)
	}
	if dfb.Wire.MasterIngressBytes*4 >= legacy.Wire.MasterIngressBytes {
		t.Errorf("DFB master ingress %d not well below legacy %d",
			dfb.Wire.MasterIngressBytes, legacy.Wire.MasterIngressBytes)
	}
	if dfb.Wire.SinkIngressBytes == 0 {
		t.Error("DFB run confirmed no sink ingress")
	}
	t.Logf("master ingress: legacy %d B, dfb %d B (%.1fx); sink ingress %d B",
		legacy.Wire.MasterIngressBytes, dfb.Wire.MasterIngressBytes,
		float64(legacy.Wire.MasterIngressBytes)/float64(dfb.Wire.MasterIngressBytes),
		dfb.Wire.SinkIngressBytes)
}

// TestDFBMixedFleet: a fleet where one worker predates the DFB cap must
// still converge to golden bytes — the legacy worker's results arrive
// at the master, which relays them to the owning sink.
func TestDFBMixedFleet(t *testing.T) {
	want := readGolden(t)
	cfg := dfbConfig(goldenFrames, 2)
	cfg.WorkerOpts = func(i int) WorkerOptions {
		if i == 0 {
			return WorkerOptions{NoWireDFB: true}
		}
		return WorkerOptions{}
	}
	res, err := RenderLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := hashFrames(res.Frames)
	for f := range want {
		if got[f] != want[f] {
			t.Errorf("frame %d: hash %s, golden %s", f, got[f], want[f])
		}
	}
	// The legacy worker's pixels entered through the master, so ingress
	// sits between the pure-DFB floor and the all-legacy ceiling.
	if res.Wire.MasterIngressBytes >= res.Wire.WireBytes {
		t.Errorf("mixed fleet: master ingress %d should be below total wire bytes %d",
			res.Wire.MasterIngressBytes, res.Wire.WireBytes)
	}
	if res.Wire.FramesAcked == 0 {
		t.Error("mixed fleet: DFB workers sent no acks")
	}
}

// TestDFBOnFrameDelivery: under DFB the sinks own frame delivery — the
// caller's OnFrame must fire exactly once per frame with final pixels.
func TestDFBOnFrameDelivery(t *testing.T) {
	want := readGolden(t)
	var mu sync.Mutex
	seen := make(map[int]string)
	cfg := dfbConfig(goldenFrames, 2)
	cfg.OnFrame = func(f int, img *fb.Framebuffer) error {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[f]; dup {
			t.Errorf("frame %d delivered twice", f)
		}
		seen[f] = frameHash(img)
		return nil
	}
	if _, err := RenderLocal(cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != goldenFrames {
		t.Fatalf("OnFrame fired for %d frames, want %d", len(seen), goldenFrames)
	}
	for f, h := range seen {
		if h != want[f] {
			t.Errorf("frame %d via OnFrame: hash %s, golden %s", f, h, want[f])
		}
	}
}

// TestDFBWorkerDeathMidFrame: severing DFB workers mid-run must hand
// their unconfirmed frame ranges back to the master's retry machinery;
// the survivors re-render and the output stays byte-identical.
func TestDFBWorkerDeathMidFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	sc := farmScene(8)
	want := referenceFrames(t, sc)
	plan, err := faulty.ParsePlan("seed=11,sever=0.02,protect=worker00")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 4,
		Scheme:       partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
		WireDelta:    true,
		WireCompress: true,
		DFB:          &DFBConfig{Sinks: 2},
		Heartbeat:    20 * time.Millisecond,
		Liveness:     2 * time.Second,
		StallTimeout: 1500 * time.Millisecond,
		FrameRetries: 2,
		Speculate:    true,
		WrapConn:     plan.Wrap,
	})
	if err != nil {
		t.Fatalf("dfb chaos run failed: %v", err)
	}
	assertFramesEqual(t, "dfb-sever", res.Frames, want)
	if inj := plan.Snapshot(); inj.Severed == 0 {
		t.Skip("fault plan severed nothing; rerun covers it via other seeds")
	}
	t.Logf("absorbed %s with %d acks, %d base misses",
		res.Faults.String(), res.Wire.FramesAcked, res.Wire.DeltaBaseMisses)
}

// TestDFBChaosSoak: the full hostile-transport soak from chaos_test.go,
// with pixels routed through compositor sinks. Drops, corruption and
// severs on the control plane must not change a byte of output.
func TestDFBChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	sc := farmScene(8)
	want := referenceFrames(t, sc)
	for _, seed := range []int64{7, 101} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := fmt.Sprintf(
				"seed=%d,drop=0.03,corrupt=0.02,truncate=0.02,delay=0.05:2ms,sever=0.005,protect=worker00", seed)
			plan, err := faulty.ParsePlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RenderLocal(Config{
				Scene: sc, W: fw, H: fh, Coherence: true, Workers: 4,
				Scheme:       partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
				WireDelta:    true,
				WireCompress: true,
				DFB:          &DFBConfig{Sinks: 2},
				Heartbeat:    20 * time.Millisecond,
				Liveness:     2 * time.Second,
				StallTimeout: 1500 * time.Millisecond,
				FrameRetries: 2,
				Speculate:    true,
				WrapConn:     plan.Wrap,
			})
			if err != nil {
				t.Fatalf("dfb chaos run failed: %v", err)
			}
			assertFramesEqual(t, "dfb-chaos", res.Frames, want)
			t.Logf("injected %+v; farm absorbed %s", plan.Snapshot(), res.Faults.String())
		})
	}
}

// TestDFBSinkRestart: killing a compositor mid-run must trigger the
// master's redial-and-requeue recovery. The test owns the registry so
// it can close a sink from the outside; a later Dial on the same
// address recreates it — exactly a compositor process restart.
func TestDFBSinkRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("restart chaos skipped in -short mode")
	}
	sc := farmScene(8)
	want := referenceFrames(t, sc)

	var mu sync.Mutex
	collected := make([]*fb.Framebuffer, 8)
	reg := compositor.NewRegistry(func(i int) *compositor.Compositor {
		return compositor.New(compositor.Config{
			Name: compositor.Addr(i),
			OnFrame: func(f int, img *fb.Framebuffer) error {
				mu.Lock()
				defer mu.Unlock()
				collected[f] = img
				return nil
			},
		})
	})
	defer reg.CloseAll()

	// Kill sink 0 once, after it has confirmed at least one frame.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.After(5 * time.Second)
		for {
			select {
			case <-deadline:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if s := reg.Sink(0); s != nil && s.Stats().SinkIngressBytes > 0 {
				s.Close()
				return
			}
		}
	}()

	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 3,
		Scheme:       partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
		WireDelta:    true,
		WireCompress: true,
		DFB:          &DFBConfig{Sinks: 2, Dial: reg.Dial, Redials: 4},
		Heartbeat:    20 * time.Millisecond,
		Liveness:     2 * time.Second,
		StallTimeout: 1500 * time.Millisecond,
		FrameRetries: 2,
	})
	if err != nil {
		t.Fatalf("run with sink restart failed: %v", err)
	}
	<-killed
	// The test supplied its own Dial, so the master could not collect
	// frames; the registry's OnFrame captured them instead.
	mu.Lock()
	frames := append([]*fb.Framebuffer(nil), collected...)
	mu.Unlock()
	assertFramesEqual(t, "sink-restart", frames, want)
	if res.Wire.FramesAcked == 0 {
		t.Error("restart run recorded no acks")
	}
	// A restarted sink loses its reassembly state, so in-flight delta
	// chains break; whatever misses occurred must be attributed.
	assertBaseMissConsistent(t, res.Wire)
	t.Logf("restart absorbed: %d base misses (%v), %d requeued",
		res.Wire.DeltaBaseMisses, res.Wire.BaseMissByWorker, res.Faults.FramesRequeued)
}

// assertBaseMissConsistent: the per-worker base-miss breakdown must sum
// to the total, and never carry empty entries.
func assertBaseMissConsistent(t *testing.T, w stats.WireStats) {
	t.Helper()
	var sum uint64
	for name, n := range w.BaseMissByWorker {
		if n == 0 {
			t.Errorf("worker %s recorded a zero base-miss entry", name)
		}
		sum += n
	}
	if sum != w.DeltaBaseMisses {
		t.Errorf("BaseMissByWorker sums to %d, DeltaBaseMisses = %d", sum, w.DeltaBaseMisses)
	}
}

// TestDFBTaskRejectsUndialableSinks: a run whose sinks cannot be dialed
// must fail up front, not hang waiting for confirmations.
func TestDFBTaskRejectsUndialableSinks(t *testing.T) {
	cfg := dfbConfig(goldenFrames, 1)
	cfg.DFB.Dial = func(addr string) (msg.Conn, error) {
		return nil, fmt.Errorf("no route to %s", addr)
	}
	if _, err := RenderLocal(cfg); err == nil {
		t.Fatal("run with undialable sinks succeeded")
	}
}
