package geom

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Cone is a capped conical frustum between two end points with
// independent radii, POV-Ray's `cone { <base>, rBase, <cap>, rCap }`.
// Either radius may be zero (a true cone apex).
type Cone struct {
	Base, Cap             vm.Vec3
	BaseRadius, CapRadius float64
	// Open omits the end discs when true.
	Open bool

	axis   vm.Vec3
	height float64
}

// NewCone returns a capped conical frustum. Base and Cap must be
// distinct and radii non-negative.
func NewCone(base vm.Vec3, baseRadius float64, cap vm.Vec3, capRadius float64) *Cone {
	c := &Cone{Base: base, Cap: cap, BaseRadius: baseRadius, CapRadius: capRadius}
	d := cap.Sub(base)
	c.height = d.Len()
	c.axis = d.Scale(1 / c.height)
	return c
}

// NewOpenCone returns a frustum without end discs.
func NewOpenCone(base vm.Vec3, baseRadius float64, cap vm.Vec3, capRadius float64) *Cone {
	c := NewCone(base, baseRadius, cap, capRadius)
	c.Open = true
	return c
}

// Intersect implements Shape. The lateral surface satisfies
// |p_perp| = r(h) where h is the axial height; substituting the ray
// gives a quadratic in t.
func (c *Cone) Intersect(r vm.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: math.Inf(1)}
	found := false

	// Decompose into axial and perpendicular components relative to
	// Base.
	oc := r.Origin.Sub(c.Base)
	ocA := oc.Dot(c.axis)
	dA := r.Dir.Dot(c.axis)
	ocP := oc.Sub(c.axis.Scale(ocA))
	dP := r.Dir.Sub(c.axis.Scale(dA))

	// r(h) = r0 + k*h with k = (r1-r0)/height; surface:
	// |ocP + t dP|^2 = (r0 + k (ocA + t dA))^2.
	k := (c.CapRadius - c.BaseRadius) / c.height
	r0 := c.BaseRadius

	a := dP.Dot(dP) - k*k*dA*dA
	b := 2 * (ocP.Dot(dP) - k*dA*(r0+k*ocA))
	cc := ocP.Dot(ocP) - (r0+k*ocA)*(r0+k*ocA)
	t0, t1, n := vm.SolveQuadratic(a, b, cc)
	for i, t := range [2]float64{t0, t1} {
		if i >= n || t <= tMin || t >= tMax || t >= best.T {
			continue
		}
		h := ocA + t*dA
		if h < 0 || h > c.height {
			continue
		}
		p := r.At(t)
		axisPt := c.Base.Add(c.axis.Scale(h))
		radial := p.Sub(axisPt)
		rl := radial.Len()
		if rl < vm.Eps {
			continue // apex degenerate point
		}
		// Outward normal tilts along the axis by the slope.
		outward := radial.Scale(1 / rl).Sub(c.axis.Scale(k)).Norm()
		normal, inside := faceForward(outward, r.Dir)
		onb := vm.NewONB(c.axis)
		u := 0.5 + math.Atan2(radial.Dot(onb.V), radial.Dot(onb.U))/(2*math.Pi)
		best = Hit{T: t, Point: p, Normal: normal, Inside: inside, U: u, V: h / c.height}
		found = true
	}

	if !c.Open {
		for _, end := range [2]struct {
			center vm.Vec3
			normal vm.Vec3
			radius float64
		}{
			{c.Base, c.axis.Neg(), c.BaseRadius},
			{c.Cap, c.axis, c.CapRadius},
		} {
			if end.radius <= 0 {
				continue
			}
			denom := end.normal.Dot(r.Dir)
			if math.Abs(denom) < vm.Eps {
				continue
			}
			t := end.normal.Dot(end.center.Sub(r.Origin)) / denom
			if t <= tMin || t >= tMax || t >= best.T {
				continue
			}
			p := r.At(t)
			rel := p.Sub(end.center)
			if rel.Len2() > end.radius*end.radius {
				continue
			}
			normal, inside := faceForward(end.normal, r.Dir)
			onb := vm.NewONB(end.normal)
			best = Hit{
				T: t, Point: p, Normal: normal, Inside: inside,
				U: rel.Dot(onb.U)/end.radius*0.5 + 0.5,
				V: rel.Dot(onb.V)/end.radius*0.5 + 0.5,
			}
			found = true
		}
	}
	if !found {
		return Hit{}, false
	}
	return best, true
}

// Bounds implements Shape.
func (c *Cone) Bounds() vm.AABB {
	rMax := math.Max(c.BaseRadius, c.CapRadius)
	b := vm.EmptyAABB().Extend(c.Base).Extend(c.Cap)
	pad := vm.V(
		rMax*math.Sqrt(math.Max(0, 1-c.axis.X*c.axis.X)),
		rMax*math.Sqrt(math.Max(0, 1-c.axis.Y*c.axis.Y)),
		rMax*math.Sqrt(math.Max(0, 1-c.axis.Z*c.axis.Z)),
	)
	return vm.AABB{Min: b.Min.Sub(pad), Max: b.Max.Add(pad)}
}

// OverlapsBox implements BoxOverlapper conservatively: distance from the
// box centre to the axis segment within max radius + half diagonal.
func (c *Cone) OverlapsBox(b vm.AABB) bool {
	if !c.Bounds().Overlaps(b) {
		return false
	}
	center := b.Center()
	halfDiag := b.Size().Len() / 2
	d := distPointSegment(center, c.Base, c.Cap)
	return d <= math.Max(c.BaseRadius, c.CapRadius)+halfDiag
}
