package farm

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/partition"
	"nowrender/internal/timeline"
	vm "nowrender/internal/vecmath"
)

// TestFrameDoneTimelineRoundTrip: a frame-done message carrying a
// timeline section survives encode/decode with every field intact,
// including an instant event (Dur = -1).
func TestFrameDoneTimelineRoundTrip(t *testing.T) {
	region := fb.NewRect(0, 0, 4, 4)
	in := frameDoneMsg{
		TaskID: 3, Frame: 7, Region: region,
		Kind: frameFull, Encoding: encRaw,
		Pix:      bytes.Repeat([]byte{1, 2, 3}, region.Area()),
		Rendered: 16, ElapsedNs: 12345,
		TLNow:    999_000,
		TLTracks: []string{"w0/main", "w0/tile00"},
		TLEvents: []wireEvent{
			{Track: 0, Ev: timeline.Event{Start: 100, Dur: 50, Op: timeline.OpFrame, Frame: 7, Arg: 16}},
			{Track: 1, Ev: timeline.Event{Start: 110, Dur: 20, Op: timeline.OpTile, Frame: 7, Arg: 4}},
			{Track: 0, Ev: timeline.Event{Start: 160, Dur: -1, Op: timeline.OpBaseMiss, Frame: 7}},
		},
	}
	out, err := decodeFrameDone(encodeFrameDone(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.TLNow != in.TLNow {
		t.Errorf("TLNow = %d, want %d", out.TLNow, in.TLNow)
	}
	if len(out.TLTracks) != len(in.TLTracks) {
		t.Fatalf("TLTracks = %v, want %v", out.TLTracks, in.TLTracks)
	}
	for i, name := range in.TLTracks {
		if out.TLTracks[i] != name {
			t.Errorf("track %d = %q, want %q", i, out.TLTracks[i], name)
		}
	}
	if len(out.TLEvents) != len(in.TLEvents) {
		t.Fatalf("got %d events, want %d", len(out.TLEvents), len(in.TLEvents))
	}
	for i, we := range in.TLEvents {
		if out.TLEvents[i] != we {
			t.Errorf("event %d = %+v, want %+v", i, out.TLEvents[i], we)
		}
	}
	if !bytes.Equal(out.Pix, in.Pix) {
		t.Error("pixels corrupted by the timeline section")
	}
}

// TestFrameDoneLegacyByteIdentical: a plain raw key-frame with no
// timeline section must encode byte-for-byte as the legacy layout —
// the mixed-fleet contract that lets old masters decode new workers.
func TestFrameDoneLegacyByteIdentical(t *testing.T) {
	region := fb.NewRect(2, 1, 6, 5)
	m := frameDoneMsg{
		TaskID: 1, Frame: 4, Region: region,
		Kind: frameFull, Encoding: encRaw,
		Pix:      bytes.Repeat([]byte{9}, region.Area()*3),
		Rendered: region.Area(), Copied: 0, Regs: 42, ElapsedNs: 777,
	}
	m.Rays.ByKind[0] = 12

	legacy := msg.GetBuffer()
	defer legacy.Release()
	legacy.PackInt(int64(m.TaskID))
	legacy.PackInt(int64(m.Frame))
	legacy.PackInt(int64(m.Region.X0))
	legacy.PackInt(int64(m.Region.Y0))
	legacy.PackInt(int64(m.Region.X1))
	legacy.PackInt(int64(m.Region.Y1))
	legacy.PackBytes(m.Pix)
	legacy.PackInt(int64(m.Rendered))
	legacy.PackInt(int64(m.Copied))
	legacy.PackInt(int64(m.Regs))
	for k := 0; k < vm.NumRayKinds; k++ {
		legacy.PackInt(int64(m.Rays.ByKind[k]))
	}
	legacy.PackInt(m.ElapsedNs)

	if got, want := encodeFrameDone(m), legacy.Sealed(); !bytes.Equal(got, want) {
		t.Errorf("no-timeline encoding diverged from the legacy layout:\ngot  %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// TestPongRoundTrip covers both pong shapes the master must accept: the
// three-field stamped pong from a timeline-capable worker, and the
// two-field legacy echo (workerNs reported as 0).
func TestPongRoundTrip(t *testing.T) {
	seq, masterNs, workerNs, err := decodePong(encodePong(5, 111, 222))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 || masterNs != 111 || workerNs != 222 {
		t.Errorf("stamped pong = (%d, %d, %d), want (5, 111, 222)", seq, masterNs, workerNs)
	}

	seq, masterNs, workerNs, err = decodePong(encodePair(8, 333))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 8 || masterNs != 333 || workerNs != 0 {
		t.Errorf("legacy pong = (%d, %d, %d), want (8, 333, 0)", seq, masterNs, workerNs)
	}
}

// TestPongDataLegacyEcho: a worker that opted out of the timeline
// capability echoes ping payloads byte-identically, and a capable worker
// re-stamps them with its recorder clock.
func TestPongDataLegacyEcho(t *testing.T) {
	ping := encodePair(3, 1_000_000)

	wt := &workerTimeline{}
	if got := pongData(ping, WorkerOptions{NoWireTimeline: true}, wt); !bytes.Equal(got, ping) {
		t.Error("opted-out worker altered the ping payload")
	}

	wt.ensure(1)
	stamped := pongData(ping, WorkerOptions{}, wt)
	seq, masterNs, workerNs, err := decodePong(stamped)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || masterNs != 1_000_000 {
		t.Errorf("re-stamped pong = (%d, %d), want (3, 1000000)", seq, masterNs)
	}
	if workerNs <= 0 {
		t.Errorf("workerNs = %d, want a live recorder stamp", workerNs)
	}

	// Malformed pings are echoed, not dropped: the master only needs
	// the bytes back to count the pong as liveness.
	junk := []byte{0xde, 0xad}
	if got := pongData(junk, WorkerOptions{}, wt); !bytes.Equal(got, junk) {
		t.Error("malformed ping was not echoed verbatim")
	}
}

// TestRenderLocalTimeline drives a real local farm run with recording
// and heartbeats on and checks the merged cluster timeline: master
// events, shipped worker frame spans under the worker's own group, an
// offset entry per worker, and a lossless Chrome-trace round trip.
func TestRenderLocalTimeline(t *testing.T) {
	sc := farmScene(6)
	rec := timeline.New(0)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 2,
		Scheme:    partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
		Heartbeat: 10 * time.Millisecond,
		Timeline:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline
	if tl == nil {
		t.Fatal("Result.Timeline is nil with a recorder configured")
	}

	groups := map[string]bool{}
	frameSpans := map[string]int{}
	for _, td := range tl.Tracks {
		groups[td.Group()] = true
		for _, ev := range td.Events {
			if ev.Op == timeline.OpFrame && ev.Dur >= 0 {
				frameSpans[td.Group()]++
			}
		}
	}
	if !groups["master"] {
		t.Errorf("no master group in timeline; groups = %v", groups)
	}
	workerGroups := 0
	for g := range frameSpans {
		if g != "master" {
			workerGroups++
		}
	}
	if workerGroups == 0 {
		t.Fatalf("no worker OpFrame spans shipped; groups = %v, frame spans = %v", groups, frameSpans)
	}
	offsets := 0
	for k := range tl.Meta {
		if strings.HasPrefix(k, "offset/") {
			offsets++
		}
	}
	if offsets == 0 {
		t.Errorf("no offset metadata recorded; meta = %v", tl.Meta)
	}

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := timeline.ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Events(), tl.Events(); got != want {
		t.Errorf("Chrome round trip lost events: got %d, want %d", got, want)
	}
	if back.Meta["scheme"] != tl.Meta["scheme"] {
		t.Errorf("Chrome round trip lost meta: %q != %q", back.Meta["scheme"], tl.Meta["scheme"])
	}
}

// TestRenderLocalTimelineMixedFleet: a fleet where one worker opted out
// of the wire-timeline capability still completes, and only the capable
// worker's spans appear in the merged timeline.
func TestRenderLocalTimelineMixedFleet(t *testing.T) {
	sc := farmScene(6)
	rec := timeline.New(0)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 2,
		Scheme:     partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
		Heartbeat:  10 * time.Millisecond,
		Timeline:   rec,
		WorkerOpts: func(i int) WorkerOptions { return WorkerOptions{NoWireTimeline: i == 0} },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, td := range res.Timeline.Tracks {
		if td.Group() == "worker00" {
			t.Errorf("opted-out worker00 shipped track %q", td.Name)
		}
	}
	if len(res.Frames) != sc.Frames {
		t.Errorf("mixed fleet rendered %d frames, want %d", len(res.Frames), sc.Frames)
	}
}
