package fleetd

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nowrender/internal/fleet"
	"nowrender/internal/msg"
)

// pipeDial returns a dial function connecting in-process to the given
// server — the multi-replica harness's transport.
func pipeDial(s *Server) func() (msg.Conn, error) {
	return func() (msg.Conn, error) {
		a, b := msg.Pipe(64)
		if err := s.ServeConn(b); err != nil {
			a.Close()
			return nil, err
		}
		return a, nil
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestReplicaPoolAcquireRenewRelease: two replicas share one broker
// over the wire protocol; leases are granted disjointly, renewed in the
// background, and released on Return.
func TestReplicaPoolAcquireRenewRelease(t *testing.T) {
	b := NewBroker(BrokerConfig{Capacity: 4, Term: 60 * time.Millisecond})
	srv := NewServer(b, 10*time.Millisecond)
	defer srv.Close()

	mk := func(name string) *ReplicaPool {
		p, err := NewReplicaPool(ClientConfig{
			Replica: name, Dial: pipeDial(srv),
			Term: 60 * time.Millisecond, RenewEvery: 15 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa, pb := mk("replica-a"), mk("replica-b")
	defer pa.Close()
	defer pb.Close()

	ga, err := pa.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := pb.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ga.Granted() != 2 || gb.Granted() != 2 {
		t.Fatalf("granted %d/%d, want 2/2", ga.Granted(), gb.Granted())
	}
	// Disjoint units — the single-leaseholder invariant, visible end to
	// end through the protocol.
	seen := map[string]bool{}
	for _, u := range append(ga.(*RemoteGrant).Units(), gb.(*RemoteGrant).Units()...) {
		if seen[u] {
			t.Fatalf("unit %s granted to both replicas", u)
		}
		seen[u] = true
	}
	checkInvariant(t, b)

	// Hold across several terms: background renewal keeps both alive.
	time.Sleep(150 * time.Millisecond)
	if st := b.Stats(); st.Leased != 4 || st.Expiries != 0 {
		t.Fatalf("stats after holding = %+v (renewal failed)", st)
	}
	if st := pa.Stats(); st.Renews == 0 || st.Capacity != 4 {
		t.Fatalf("replica-view stats = %+v", st)
	}

	ga.Return()
	gb.Return()
	waitFor(t, 2*time.Second, "releases to land", func() bool {
		return b.Stats().Free == 4
	})
	checkInvariant(t, b)
}

// TestReplicaCrashFailsOverWithinOneTerm is the protocol-level failover
// half of the e2e suite: replica A dies holding the whole pool; its
// leases expire unrenewed, and a blocked replica B inherits the workers
// within roughly one lease term.
func TestReplicaCrashFailsOverWithinOneTerm(t *testing.T) {
	term := 60 * time.Millisecond
	b := NewBroker(BrokerConfig{Capacity: 2, Term: term})
	srv := NewServer(b, 10*time.Millisecond)
	defer srv.Close()

	pa, err := NewReplicaPool(ClientConfig{
		Replica: "replica-a", Dial: pipeDial(srv), Term: term,
		RenewEvery: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pa.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	pb, err := NewReplicaPool(ClientConfig{
		Replica: "replica-b", Dial: pipeDial(srv), Term: term,
		RenewEvery: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pb.Close()

	got := make(chan fleet.Grant, 1)
	go func() {
		g, err := pb.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		got <- g
	}()
	select {
	case <-got:
		t.Fatal("acquire granted while replica-a holds the pool")
	case <-time.After(30 * time.Millisecond):
	}

	// Replica A crashes: conn drops, renewals stop, leases still held.
	crash := time.Now()
	pa.Abandon()
	select {
	case g := <-got:
		elapsed := time.Since(crash)
		if g.Granted() != 2 {
			t.Fatalf("survivor granted %d slots, want 2", g.Granted())
		}
		// Within one term plus renewal/sweep slack — not, say, ever.
		if elapsed > 3*term {
			t.Fatalf("failover took %v, want about one %v term", elapsed, term)
		}
		g.Return()
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never inherited the crashed replica's workers")
	}
	checkInvariant(t, b)
	if st := b.Stats(); st.Expiries == 0 {
		t.Fatalf("stats = %+v: failover happened without expiries?", st)
	}
}

// TestBrokerRestartOrphansAndReacquires: a broker restart voids held
// leases (new epoch). The replica notices on reconnect, orphans its
// grants — in-flight runs finish on slots they already sized to — and
// fresh acquires land on the new broker.
func TestBrokerRestartOrphansAndReacquires(t *testing.T) {
	term := 60 * time.Millisecond
	b1 := NewBroker(BrokerConfig{Capacity: 2, Term: term, Epoch: 101})
	srv1 := NewServer(b1, 10*time.Millisecond)

	var target atomic.Pointer[Server]
	target.Store(srv1)
	dial := func() (msg.Conn, error) {
		a, b := msg.Pipe(64)
		if err := target.Load().ServeConn(b); err != nil {
			a.Close()
			return nil, err
		}
		return a, nil
	}

	p, err := NewReplicaPool(ClientConfig{
		Replica: "replica-a", Dial: dial, Term: term,
		RenewEvery: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	g1, err := p.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Held()) != 1 {
		t.Fatalf("held = %v, want 1 lease", p.Held())
	}

	// Broker restarts: all conns die, the ledger is gone, new epoch.
	srv1.Close()
	b2 := NewBroker(BrokerConfig{Capacity: 2, Term: term, Epoch: 202})
	srv2 := NewServer(b2, 10*time.Millisecond)
	defer srv2.Close()
	target.Store(srv2)

	// The next acquire reconnects, sees the epoch change, orphans g1,
	// and wins a fresh lease from the new ledger — proving the old one
	// no longer pins capacity.
	g2, err := p.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Granted() != 2 {
		t.Fatalf("post-restart grant = %d slots, want 2", g2.Granted())
	}
	if p.Orphaned() != 1 {
		t.Fatalf("orphaned = %d, want 1", p.Orphaned())
	}
	// Returning the orphaned grant must not disturb the new ledger.
	g1.Return()
	checkInvariant(t, b2)
	if st := b2.Stats(); st.Leased != 2 {
		t.Fatalf("new broker stats = %+v", st)
	}
	g2.Return()
}

// TestMemberSessionReregistersAfterRestart: a worker member's
// registration survives a broker restart via the redial loop.
func TestMemberSessionReregistersAfterRestart(t *testing.T) {
	b1 := NewBroker(BrokerConfig{Capacity: 0, Term: time.Second, Epoch: 1})
	srv1 := NewServer(b1, 0)

	var target atomic.Pointer[Server]
	target.Store(srv1)
	dial := func() (msg.Conn, error) {
		a, b := msg.Pipe(64)
		if err := target.Load().ServeConn(b); err != nil {
			a.Close()
			return nil, err
		}
		return a, nil
	}

	m, err := JoinFleet(dial, "ws01", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if st := b1.Stats(); st.Members["ws01"] != 3 {
		t.Fatalf("member not registered: %+v", st)
	}

	srv1.Close()
	b2 := NewBroker(BrokerConfig{Capacity: 0, Term: time.Second, Epoch: 2})
	srv2 := NewServer(b2, 0)
	defer srv2.Close()
	target.Store(srv2)

	waitFor(t, 5*time.Second, "member to re-register", func() bool {
		return b2.Stats().Members["ws01"] == 3
	})
	checkInvariant(t, b2)
}

// TestLeaseChurnSoakRace is the seeded chaos soak of the multi-master
// protocol: three replicas hammer one broker with concurrent acquires,
// renews, releases and simulated crashes (abandoned grants that must
// expire), while a checker continuously asserts the single-leaseholder
// invariant. Run under -race in CI.
func TestLeaseChurnSoakRace(t *testing.T) {
	const (
		seed     = 7
		replicas = 3
		capacity = 5
		duration = 600 * time.Millisecond
	)
	term := 40 * time.Millisecond
	b := NewBroker(BrokerConfig{Capacity: capacity, Term: term})
	srv := NewServer(b, 5*time.Millisecond)
	defer srv.Close()

	stop := make(chan struct{})
	var checkerErr atomic.Value
	var wg sync.WaitGroup

	// Invariant checker: the ledger must be consistent at every instant,
	// not just at quiescence.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := b.CheckInvariant(); err != nil {
				checkerErr.Store(err)
				return
			}
			if st := b.Stats(); st.Leased+st.Free > capacity {
				checkerErr.Store(errOverCommit{st.Leased, st.Free, capacity})
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var abandons, grants atomic.Uint64
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(r)))
			name := []string{"replica-a", "replica-b", "replica-c"}[r]
			p, err := NewReplicaPool(ClientConfig{
				Replica: name, Dial: pipeDial(srv), Term: term,
				RenewEvery: 10 * time.Millisecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer p.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
				g, err := p.Acquire(ctx, 1+rng.Intn(2))
				cancel()
				if err != nil {
					continue // pool exhausted under churn; try again
				}
				grants.Add(1)
				time.Sleep(time.Duration(rng.Intn(15)) * time.Millisecond)
				if rng.Intn(4) == 0 {
					// Simulated crash: never released, must expire.
					g.(*RemoteGrant).Abandon()
					abandons.Add(1)
				} else {
					g.Return()
				}
			}
		}(r)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if err, _ := checkerErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if grants.Load() == 0 {
		t.Fatal("soak made no progress: no grants at all")
	}
	// Abandoned leases must all have expired (or be expirable): drain
	// and verify the ledger returns to fully free.
	waitFor(t, 5*time.Second, "abandoned leases to expire", func() bool {
		b.Expire()
		st := b.Stats()
		return st.Leased == 0 && st.Free == capacity
	})
	checkInvariant(t, b)
	st := b.Stats()
	if abandons.Load() > 0 && st.Expiries == 0 {
		t.Fatalf("%d abandons but no expiries: %+v", abandons.Load(), st)
	}
	t.Logf("soak: %d grants, %d abandons, stats %+v", grants.Load(), abandons.Load(), st)
}

// errOverCommit formats the soak's capacity-accounting violation.
type errOverCommit [3]int

func (e errOverCommit) Error() string {
	return "fleetd: leased " + itoa(e[0]) + " + free " + itoa(e[1]) + " exceeds capacity " + itoa(e[2])
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
