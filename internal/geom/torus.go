package geom

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Torus is POV-Ray's `torus { R, r }`: a torus centred at the origin
// with its axis along +Y, major radius Major (ring radius) and minor
// radius Minor (tube radius). Position and orient it with a Transformed
// wrapper (the SDL's translate/rotate/scale modifiers do exactly that).
type Torus struct {
	Major, Minor float64
}

// NewTorus returns a torus. Both radii must be positive and Minor <=
// Major for a ring torus.
func NewTorus(major, minor float64) *Torus {
	return &Torus{Major: major, Minor: minor}
}

// Intersect implements Shape. The torus surface satisfies
// (|p|² + R² − r²)² = 4R²(px² + pz²); substituting the ray gives a
// quartic in t.
func (to *Torus) Intersect(ray vm.Ray, tMin, tMax float64) (Hit, bool) {
	// Quick reject against the bounding box.
	if _, hit := to.Bounds().IntersectRay(ray, tMin, tMax); !hit {
		return Hit{}, false
	}
	o, d := ray.Origin, ray.Dir
	R2 := to.Major * to.Major
	k := d.Dot(d)
	m := o.Dot(d)
	n := o.Dot(o) + R2 - to.Minor*to.Minor

	// (k t² + 2m t + n)² − 4R²((ox+t dx)² + (oz+t dz)²) = 0.
	pxz := 4 * R2 * (d.X*d.X + d.Z*d.Z)
	qxz := 8 * R2 * (o.X*d.X + o.Z*d.Z)
	rxz := 4 * R2 * (o.X*o.X + o.Z*o.Z)

	c4 := k * k
	c3 := 4 * k * m
	c2 := 4*m*m + 2*k*n - pxz
	c1 := 4*m*n - qxz
	c0 := n*n - rxz
	if c4 < vm.Eps {
		return Hit{}, false
	}
	roots := vm.SolveQuartic(c3/c4, c2/c4, c1/c4, c0/c4)
	for _, t := range roots {
		if t <= tMin || t >= tMax {
			continue
		}
		p := ray.At(t)
		// Normal: from the nearest point on the ring circle to p.
		ringLen := math.Hypot(p.X, p.Z)
		if ringLen < vm.Eps {
			continue // on the axis: degenerate
		}
		ring := vm.V(p.X/ringLen*to.Major, 0, p.Z/ringLen*to.Major)
		outward := p.Sub(ring).Norm()
		normal, inside := faceForward(outward, ray.Dir)
		u := 0.5 + math.Atan2(p.Z, p.X)/(2*math.Pi)
		v := 0.5 + math.Atan2(p.Y, ringLen-to.Major)/(2*math.Pi)
		return Hit{T: t, Point: p, Normal: normal, Inside: inside, U: u, V: v}, true
	}
	return Hit{}, false
}

// Bounds implements Shape.
func (to *Torus) Bounds() vm.AABB {
	e := to.Major + to.Minor
	return vm.NewAABB(vm.V(-e, -to.Minor, -e), vm.V(e, to.Minor, e))
}

// OverlapsBox implements BoxOverlapper conservatively: the box centre
// must be within Minor + half the box diagonal of the ring circle.
func (to *Torus) OverlapsBox(b vm.AABB) bool {
	if !to.Bounds().Overlaps(b) {
		return false
	}
	c := b.Center()
	ringLen := math.Hypot(c.X, c.Z)
	var ring vm.Vec3
	if ringLen < vm.Eps {
		ring = vm.V(to.Major, 0, 0)
	} else {
		ring = vm.V(c.X/ringLen*to.Major, 0, c.Z/ringLen*to.Major)
	}
	return c.Dist(ring) <= to.Minor+b.Size().Len()/2
}
