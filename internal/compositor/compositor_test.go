package compositor

import (
	"sync"
	"testing"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/wire"
)

const tw, th = 8, 6

// sinkHarness wires one sink to a fake master conn and N fake worker
// conns, standing in for the farm's sinkControl and sinkLinks.
type sinkHarness struct {
	t      *testing.T
	c      *Compositor
	master msg.Conn
	frames map[int]*fb.Framebuffer
	mu     sync.Mutex
}

func newSinkHarness(t *testing.T) *sinkHarness {
	t.Helper()
	h := &sinkHarness{t: t, frames: make(map[int]*fb.Framebuffer)}
	h.c = New(Config{
		Name: "sink0",
		OnFrame: func(f int, img *fb.Framebuffer) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			if _, dup := h.frames[f]; dup {
				t.Errorf("OnFrame fired twice for frame %d", f)
			}
			h.frames[f] = img.Clone()
			return nil
		},
	})
	t.Cleanup(func() { h.c.Close() })
	local, remote := msg.Pipe(64)
	if err := h.c.AddConn(remote); err != nil {
		t.Fatal(err)
	}
	h.master = local
	return h
}

func (h *sinkHarness) init(gen, start, end int) {
	h.t.Helper()
	err := h.master.Send(msg.Message{Tag: TagInit, Data: EncodeInit(Init{
		Gen: gen, W: tw, H: th, Start: start, End: end,
	})})
	if err != nil {
		h.t.Fatal(err)
	}
}

// worker dials a data conn and joins under the given name.
func (h *sinkHarness) worker(name string) msg.Conn {
	h.t.Helper()
	local, remote := msg.Pipe(64)
	if err := h.c.AddConn(remote); err != nil {
		h.t.Fatal(err)
	}
	if err := local.Send(msg.Message{Tag: TagJoin, Data: EncodeJoin(name)}); err != nil {
		h.t.Fatal(err)
	}
	return local
}

// recv pulls the next message off a conn, failing the test on timeout.
func (h *sinkHarness) recv(conn msg.Conn) msg.Message {
	h.t.Helper()
	type res struct {
		m   msg.Message
		err error
	}
	ch := make(chan res, 1)
	go func() {
		m, err := conn.Recv()
		ch <- res{m, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			h.t.Fatalf("recv: %v", r.err)
		}
		return r.m
	case <-time.After(5 * time.Second):
		h.t.Fatal("recv: timed out waiting for sink message")
		panic("unreachable")
	}
}

// testFrame builds a deterministic frame whose pixels encode (frame,x,y).
func testFrame(f int) *fb.Framebuffer {
	img := fb.New(tw, th)
	for y := 0; y < th; y++ {
		for x := 0; x < tw; x++ {
			img.SetRGB(x, y, byte(f*31+x), byte(f*17+y), byte(x^y))
		}
	}
	return img
}

// keyFrame seals a full key-frame result for the whole region.
func keyFrame(f int) []byte {
	region := fb.NewRect(0, 0, tw, th)
	return wire.EncodeFrameDone(wire.FrameDone{
		Frame: f, Region: region, Rendered: region.Area(),
		Kind: wire.KindFull, Pix: wire.ExtractRegion(testFrame(f), region),
	})
}

// deltaFrame seals a dirty-span delta carrying frame f's row 0 over the
// previous frame's pixels.
func deltaFrame(f int) []byte {
	region := fb.NewRect(0, 0, tw, th)
	spans := []fb.Span{{Y: 0, X0: 0, X1: tw}}
	img := testFrame(f)
	pix := make([]byte, 0, tw*3)
	for x := 0; x < tw; x++ {
		r, g, b := img.At(x, 0)
		pix = append(pix, r, g, b)
	}
	return wire.EncodeFrameDone(wire.FrameDone{
		Frame: f, Region: region, Rendered: tw,
		Kind: wire.KindDelta, Spans: spans, Pix: pix,
	})
}

// TestSinkAssembleAndConfirm: the happy path — a key-frame lands, the
// sink confirms delivery to the master with Complete set, and OnFrame
// observes the exact pixels.
func TestSinkAssembleAndConfirm(t *testing.T) {
	h := newSinkHarness(t)
	h.init(1, 0, 2)
	w := h.worker("worker00")
	if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(0)}); err != nil {
		t.Fatal(err)
	}
	m := h.recv(h.master)
	if m.Tag != TagDelivered {
		t.Fatalf("master got tag %d, want TagDelivered", m.Tag)
	}
	d, err := DecodeDelivered(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if d.Gen != 1 || d.Frame != 0 || !d.Complete || d.Worker != "worker00" {
		t.Errorf("confirm = %+v, want gen 1 frame 0 complete by worker00", d)
	}
	if d.RawBytes != tw*th*3 {
		t.Errorf("confirm RawBytes = %d, want %d", d.RawBytes, tw*th*3)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if img := h.frames[0]; img == nil || !img.Equal(testFrame(0)) {
		t.Error("OnFrame pixels differ from the shipped key-frame")
	}
}

// TestSinkOutOfOrderDelta: a delta that arrives before its base frame
// must not be merged. The sink reports MissBase on the control conn —
// keeping the frame requeueable at the master — and asks the shipping
// worker for a fresh key-frame so the chain heals in place.
func TestSinkOutOfOrderDelta(t *testing.T) {
	h := newSinkHarness(t)
	h.init(1, 0, 3)
	w := h.worker("worker00")

	// Key-frame 0 lands; delta 2 arrives before frame 1 exists.
	if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(0)}); err != nil {
		t.Fatal(err)
	}
	h.recv(h.master) // frame 0 confirm
	if err := w.Send(msg.Message{Tag: TagPix, Data: deltaFrame(2)}); err != nil {
		t.Fatal(err)
	}

	m := h.recv(h.master)
	if m.Tag != TagMiss {
		t.Fatalf("master got tag %d, want TagMiss", m.Tag)
	}
	miss, err := DecodeMiss(m.Data)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Reason != MissBase || miss.Frame != 2 || miss.Worker != "worker00" {
		t.Errorf("miss = %+v, want MissBase frame 2 by worker00", miss)
	}
	nk := h.recv(w)
	if nk.Tag != TagNeedKey {
		t.Fatalf("worker got tag %d, want TagNeedKey", nk.Tag)
	}
	if f, gen, err := DecodePair(nk.Data); err != nil || f != 2 || gen != 1 {
		t.Errorf("NeedKey = (%d, %d, %v), want frame 2 gen 1", f, gen, err)
	}

	// The worker re-keys: full frames for 1 and 2 complete the shard.
	for f := 1; f <= 2; f++ {
		if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(f)}); err != nil {
			t.Fatal(err)
		}
		m := h.recv(h.master)
		if m.Tag != TagDelivered {
			t.Fatalf("frame %d: master got tag %d, want TagDelivered", f, m.Tag)
		}
	}
	st := h.c.Stats()
	if st.DeltaBaseMisses != 1 || st.BaseMissByWorker["worker00"] != 1 {
		t.Errorf("base misses = %d (%v), want 1 attributed to worker00",
			st.DeltaBaseMisses, st.BaseMissByWorker)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for f := 0; f <= 2; f++ {
		if img := h.frames[f]; img == nil || !img.Equal(testFrame(f)) {
			t.Errorf("frame %d pixels wrong after re-key heal", f)
		}
	}
}

// TestSinkDeltaChain: a key-frame followed by an in-order delta merges
// the spans over the previous frame's pixels.
func TestSinkDeltaChain(t *testing.T) {
	h := newSinkHarness(t)
	h.init(1, 0, 2)
	w := h.worker("worker00")
	for _, data := range [][]byte{keyFrame(0), deltaFrame(1)} {
		if err := w.Send(msg.Message{Tag: TagPix, Data: data}); err != nil {
			t.Fatal(err)
		}
		h.recv(h.master)
	}
	// Frame 1 = frame 0 with row 0 replaced by frame 1's row 0.
	want := testFrame(0)
	src := testFrame(1)
	for x := 0; x < tw; x++ {
		want.CopyPixel(src, x, 0)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if img := h.frames[1]; img == nil || !img.Equal(want) {
		t.Error("delta frame did not merge over its base")
	}
	if st := h.c.Stats(); st.FramesDelta != 1 || st.FramesFull != 1 {
		t.Errorf("wire stats = %d full, %d delta, want 1 and 1", h.c.Stats().FramesFull, h.c.Stats().FramesDelta)
	}
}

// TestSinkPendsBeforeInit: results that race ahead of the master's
// TagInit are buffered and assembled the moment the init lands.
func TestSinkPendsBeforeInit(t *testing.T) {
	h := newSinkHarness(t)
	w := h.worker("worker00")
	if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(0)}); err != nil {
		t.Fatal(err)
	}
	// No init yet: nothing may be confirmed or delivered.
	time.Sleep(20 * time.Millisecond)
	h.mu.Lock()
	if len(h.frames) != 0 {
		h.mu.Unlock()
		t.Fatal("sink delivered a frame before init")
	}
	h.mu.Unlock()
	h.init(1, 0, 1)
	m := h.recv(h.master)
	if m.Tag != TagDelivered {
		t.Fatalf("master got tag %d, want TagDelivered for the pended frame", m.Tag)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if img := h.frames[0]; img == nil || !img.Equal(testFrame(0)) {
		t.Error("pended frame not assembled after init")
	}
}

// TestSinkDuplicateDrop: speculation and post-restart re-sends hit the
// sink as duplicate regions; the first result wins, the second is
// dropped without a second confirmation or OnFrame call.
func TestSinkDuplicateDrop(t *testing.T) {
	h := newSinkHarness(t)
	h.init(1, 0, 1)
	w := h.worker("worker00")
	for i := 0; i < 2; i++ {
		if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(0)}); err != nil {
			t.Fatal(err)
		}
	}
	h.recv(h.master)
	// Force a later message through to prove no second confirm came.
	if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(5)}); err != nil {
		t.Fatal(err)
	}
	m := h.recv(h.master)
	if m.Tag != TagMiss {
		t.Fatalf("master got tag %d, want the out-of-shard TagMiss marker", m.Tag)
	}
	if st := h.c.Stats(); st.FramesFull != 1 {
		t.Errorf("FramesFull = %d after duplicate, want 1", st.FramesFull)
	}
}

// TestSinkShardAndMalformedMisses: results outside the shard and
// undecodable payloads are reported as misses, never merged.
func TestSinkShardAndMalformedMisses(t *testing.T) {
	h := newSinkHarness(t)
	h.init(1, 0, 2)
	w := h.worker("worker00")
	if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(7)}); err != nil {
		t.Fatal(err)
	}
	m := h.recv(h.master)
	miss, err := DecodeMiss(m.Data)
	if m.Tag != TagMiss || err != nil || miss.Reason != MissShard || miss.Frame != 7 {
		t.Fatalf("out-of-shard result: got tag %d (%+v, %v), want MissShard frame 7", m.Tag, miss, err)
	}
	if err := w.Send(msg.Message{Tag: TagPix, Data: []byte{0xde, 0xad, 0xbe, 0xef}}); err != nil {
		t.Fatal(err)
	}
	m = h.recv(h.master)
	miss, err = DecodeMiss(m.Data)
	if m.Tag != TagMiss || err != nil || miss.Reason != MissMalformed {
		t.Fatalf("garbage result: got tag %d (%+v, %v), want MissMalformed", m.Tag, miss, err)
	}
}

// TestSinkReinitResetsShard: a TagInit with a new generation starts a
// fresh assembly — the old run's partial state cannot leak into the new
// one, and confirms carry the new generation.
func TestSinkReinitResetsShard(t *testing.T) {
	h := newSinkHarness(t)
	h.init(1, 0, 2)
	w := h.worker("worker00")
	if err := w.Send(msg.Message{Tag: TagPix, Data: keyFrame(0)}); err != nil {
		t.Fatal(err)
	}
	h.recv(h.master)

	h.init(2, 0, 2)
	// Frame 1 as a delta would have a base under gen 1; after re-init the
	// chain is gone and it must miss.
	if err := w.Send(msg.Message{Tag: TagPix, Data: deltaFrame(1)}); err != nil {
		t.Fatal(err)
	}
	m := h.recv(h.master)
	miss, err := DecodeMiss(m.Data)
	if m.Tag != TagMiss || err != nil || miss.Reason != MissBase || miss.Gen != 2 {
		t.Fatalf("post-reinit delta: got tag %d (%+v, %v), want MissBase gen 2", m.Tag, miss, err)
	}
}

// TestRegistryRestart: Dial after Close recreates a sink — the
// in-process stand-in for restarting a crashed compositor daemon.
func TestRegistryRestart(t *testing.T) {
	made := 0
	reg := NewRegistry(func(i int) *Compositor {
		made++
		return New(Config{Name: Addr(i)})
	})
	defer reg.CloseAll()
	conn, err := reg.Dial(Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	first := reg.Sink(0)
	if first == nil {
		t.Fatal("no live sink after dial")
	}
	first.Close()
	if reg.Sink(0) != nil {
		t.Fatal("closed sink still reported live")
	}
	if _, err := reg.Dial(Addr(0)); err != nil {
		t.Fatal(err)
	}
	if made != 2 {
		t.Fatalf("factory ran %d times, want 2 (restart makes a fresh sink)", made)
	}
	if s := reg.Sink(0); s == nil || s == first {
		t.Fatal("redial did not produce a fresh sink")
	}
}
