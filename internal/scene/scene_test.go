package scene

import (
	"math"
	"testing"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	vm "nowrender/internal/vecmath"
)

func TestStaticTrack(t *testing.T) {
	tr := Static(vm.NewTransform(vm.Translate(1, 2, 3)))
	if !tr.IsStatic() {
		t.Error("static track not static")
	}
	if tr.At(0).Fwd != tr.At(100).Fwd {
		t.Error("static track changed over frames")
	}
}

func TestFuncTrack(t *testing.T) {
	tr := FuncTrack{F: func(f int) vm.Transform {
		return vm.NewTransform(vm.Translate(float64(f), 0, 0))
	}}
	if tr.IsStatic() {
		t.Error("func track reported static")
	}
	if got := tr.At(3).Fwd.MulPoint(vm.V(0, 0, 0)); got != vm.V(3, 0, 0) {
		t.Errorf("At(3) = %v", got)
	}
}

func TestKeyframeTrackInterpolation(t *testing.T) {
	tr := KeyframeTrack{Keys: []Keyframe{
		{Frame: 0, Pos: vm.V(0, 0, 0)},
		{Frame: 10, Pos: vm.V(10, 0, 0)},
		{Frame: 20, Pos: vm.V(10, 10, 0)},
	}}
	cases := []struct {
		frame int
		want  vm.Vec3
	}{
		{-5, vm.V(0, 0, 0)},  // clamp before
		{0, vm.V(0, 0, 0)},   // first key
		{5, vm.V(5, 0, 0)},   // mid first span
		{10, vm.V(10, 0, 0)}, // second key
		{15, vm.V(10, 5, 0)}, // mid second span
		{25, vm.V(10, 10, 0)},
	}
	for _, c := range cases {
		got := tr.At(c.frame).Fwd.MulPoint(vm.V(0, 0, 0))
		if !got.ApproxEq(c.want, 1e-12) {
			t.Errorf("frame %d: %v, want %v", c.frame, got, c.want)
		}
	}
}

func TestKeyframeTrackStaticDetection(t *testing.T) {
	same := KeyframeTrack{Keys: []Keyframe{
		{Frame: 0, Pos: vm.V(1, 1, 1)},
		{Frame: 10, Pos: vm.V(1, 1, 1)},
	}}
	if !same.IsStatic() {
		t.Error("constant keyframes should be static")
	}
	diff := KeyframeTrack{Keys: []Keyframe{
		{Frame: 0, Pos: vm.V(0, 0, 0)},
		{Frame: 10, Pos: vm.V(1, 0, 0)},
	}}
	if diff.IsStatic() {
		t.Error("moving keyframes reported static")
	}
}

func TestEmptyKeyframeTrack(t *testing.T) {
	tr := KeyframeTrack{}
	if got := tr.At(5).Fwd; !got.ApproxEq(vm.Identity(), 0) {
		t.Errorf("empty track transform = %v", got)
	}
}

func TestObjectShapeAt(t *testing.T) {
	s := New("t")
	sp := geom.NewSphere(vm.V(0, 0, 0), 1)
	obj := s.Add("ball", sp, material.Matte(material.Red), KeyframeTrack{Keys: []Keyframe{
		{Frame: 0, Pos: vm.V(0, 0, 0)},
		{Frame: 10, Pos: vm.V(10, 0, 0)},
	}})
	b0 := obj.BoundsAt(0)
	b10 := obj.BoundsAt(10)
	if !b0.Contains(vm.V(0, 0, 0)) {
		t.Error("frame 0 bounds wrong")
	}
	if !b10.Contains(vm.V(10, 0, 0)) || b10.Contains(vm.V(0, 0, 0)) {
		t.Errorf("frame 10 bounds wrong: %v", b10)
	}
	// ShapeAt actually intersects at the moved location.
	h, ok := obj.ShapeAt(10).Intersect(vm.Ray{Origin: vm.V(10, 0, -5), Dir: vm.V(0, 0, 1)}, 0, math.MaxFloat64)
	if !ok || math.Abs(h.T-4) > 1e-9 {
		t.Errorf("moved sphere intersect: ok=%v T=%v", ok, h.T)
	}
}

func TestObjectShapeAtIdentityReturnsBase(t *testing.T) {
	s := New("t")
	sp := geom.NewSphere(vm.V(0, 0, 0), 1)
	obj := s.Add("static", sp, material.Matte(material.Red), nil)
	if obj.ShapeAt(3) != geom.Shape(sp) {
		t.Error("identity track should return base shape unwrapped")
	}
}

func TestObjectMovedBetween(t *testing.T) {
	s := New("t")
	moving := s.Add("m", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.Red),
		KeyframeTrack{Keys: []Keyframe{{0, vm.V(0, 0, 0)}, {10, vm.V(5, 0, 0)}}})
	still := s.Add("s", geom.NewSphere(vm.V(3, 0, 0), 1), material.Matte(material.Blue), nil)
	if !moving.MovedBetween(0, 1) {
		t.Error("moving object not detected")
	}
	if still.MovedBetween(0, 1) {
		t.Error("static object detected as moved")
	}
	// A func track that happens to repeat gives no movement between the
	// identical frames.
	if moving.MovedBetween(10, 11) {
		t.Error("clamped keyframes beyond last key should not move")
	}
}

func TestLightMovedBetween(t *testing.T) {
	l := &Light{Pos: vm.V(0, 10, 0), Color: material.White}
	if l.MovedBetween(0, 1) {
		t.Error("untracked light moved")
	}
	l.Track = FuncTrack{F: func(f int) vm.Transform {
		return vm.NewTransform(vm.Translate(float64(f), 0, 0))
	}}
	if !l.MovedBetween(0, 1) {
		t.Error("tracked light not moved")
	}
	if got := l.PosAt(2); got != vm.V(2, 10, 0) {
		t.Errorf("PosAt = %v", got)
	}
}

func TestSceneValidate(t *testing.T) {
	s := New("ok")
	s.Add("a", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.Red), nil)
	if err := s.Validate(); err != nil {
		t.Errorf("valid scene rejected: %v", err)
	}
	s.Frames = 0
	if err := s.Validate(); err == nil {
		t.Error("zero frames accepted")
	}
	s.Frames = 1
	s.MaxDepth = 0
	if err := s.Validate(); err == nil {
		t.Error("zero depth accepted")
	}
	s.MaxDepth = 5
	s.Objects[0].Shape = nil
	if err := s.Validate(); err == nil {
		t.Error("nil shape accepted")
	}
}

func TestSceneValidateDuplicateIDs(t *testing.T) {
	s := New("dup")
	s.Add("a", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.Red), nil)
	s.Add("b", geom.NewSphere(vm.V(2, 0, 0), 1), material.Matte(material.Red), nil)
	s.Objects[1].ID = s.Objects[0].ID
	if err := s.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestSceneBoundsClipsPlanes(t *testing.T) {
	s := New("b")
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), material.Matte(material.Red), nil)
	b := s.BoundsAt(0)
	if b.Size().MaxComponent() >= geom.HugeExtent {
		t.Errorf("plane's huge bounds leaked into scene bounds: %v", b)
	}
	if !b.Contains(vm.V(0, 1, 0)) {
		t.Error("scene bounds exclude the sphere")
	}
	if !b.Contains(s.Camera.Pos) {
		t.Error("scene bounds exclude the camera")
	}
}

func TestSceneBoundsOnlyUnbounded(t *testing.T) {
	s := New("p")
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	b := s.BoundsAt(0)
	if b.IsEmpty() {
		t.Error("empty bounds for plane-only scene")
	}
}

func TestCameraTrackOverrides(t *testing.T) {
	s := New("cams")
	s.CamTrack = CameraFunc(func(f int) Camera {
		c := DefaultCamera()
		c.Pos = vm.V(float64(f), 0, 5)
		return c
	})
	if got := s.CameraAt(3).Pos; got != vm.V(3, 0, 5) {
		t.Errorf("CameraAt(3).Pos = %v", got)
	}
	if s.CameraAt(0).Equal(s.CameraAt(1)) {
		t.Error("distinct cameras reported equal")
	}
}

func TestResolveFrame(t *testing.T) {
	s := New("r")
	s.Add("a", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.Red), nil)
	s.Add("b", geom.NewSphere(vm.V(4, 0, 0), 1), material.Matte(material.Blue), nil)
	rs := s.ResolveFrame(0)
	if len(rs) != 2 {
		t.Fatalf("resolved %d objects", len(rs))
	}
	if rs[0].Obj.Name != "a" || rs[1].Obj.Name != "b" {
		t.Error("resolution order broken")
	}
	if !rs[1].Bounds.Contains(vm.V(4, 0, 0)) {
		t.Error("resolved bounds wrong")
	}
}
