package msg

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
)

// Span codec: a pixel-aware RLE + back-reference compressor for the RGB
// payloads of dirty-span frame deltas.
//
// flate buys its ratio with a bit-packed Huffman stage that costs ~5x
// the encode time of the plain delta path (BENCH_wire.json) — on a
// network of workstations that is render budget burned in a generic
// LZ77. Frame payloads have structure a generic byte stream does not:
// they are sequences of 24-bit pixels, flat regions repeat whole pixels
// exactly, and a changed region usually resembles nearby pixels of the
// same payload. The span codec exploits exactly that and nothing else:
//
//   - tokens address pixels, not bytes, so runs and matches never
//     straddle a channel boundary and lengths are 3x smaller;
//   - RLE of the previous pixel covers flat fills;
//   - short back-references (hash-chained over 2-pixel groups) cover
//     repeated texture and the near-vertical coherence of span rows;
//   - everything is emitted byte-aligned — no bit packing, no entropy
//     stage — so both directions run at memcpy-like speed.
//
// Wire format. A stream is a sequence of ops, then (only when the input
// length is not a multiple of 3) the trailing 1–2 raw bytes verbatim.
// Each op starts with a token byte t:
//
//	t&3 == 0 (literal): n pixels follow verbatim (3n bytes)
//	t&3 == 1 (run):     repeat the previous output pixel n times
//	t&3 == 2 (copy):    uvarint distance d (pixels, >= 1) follows;
//	                    copy n pixels starting d pixels back (overlap
//	                    allowed, resolved front to back)
//	t&3 == 3:           invalid, decoders must reject it
//
// with n = (t>>2)+1 for t>>2 < 63, else 64 plus a following uvarint.
// The decoder knows the decoded size exactly (the farm protocol always
// does), so the stream carries no header; SpanDecompress rejects any
// stream that does not decode to exactly that size.

// spanHashBits sizes the encoder's match table: 15 bits of positions
// cover a full frame's 2-pixel groups with few collisions. Smaller
// L1-resident tables were measured slower even for ~20 KiB delta
// payloads (a sparse probe set misses either way, and the extra
// collisions cost false candidates), so one size serves all payloads.
const spanHashBits = 15

// spanSkipShift controls the encoder's skip acceleration: after 2^k
// consecutive literal pixels the probe stride grows by one, so runs of
// incompressible content cost O(n / stride) probes instead of one per
// pixel.
const spanSkipShift = 4

// spanMaxLen caps a single op's pixel count. Generous enough that flat
// frames encode in a handful of ops, small enough that a corrupt
// length cannot overflow arithmetic on any platform.
const spanMaxLen = 1 << 24

// spanEnc is the pooled encoder state: the position table survives
// between payloads and is never cleared — stale entries point into an
// older payload and simply fail the byte-compare against the current
// one, so reuse costs nothing.
type spanEnc struct {
	table [1 << spanHashBits]int32
}

var spanEncPool = sync.Pool{New: func() any { return new(spanEnc) }}

// spanHashV mixes an already-loaded 8-byte group (the top 2 bytes are
// masked off — a group is 6 bytes) into a table index, letting the hot
// loop share one load between hashing and match verification.
func spanHashV(v uint64) uint32 {
	return uint32(((v & 0xFFFF_FFFF_FFFF) * 0x9E3779B185EBCA87) >> (64 - spanHashBits))
}

// pixEq reports whether the 3-byte pixels at byte offsets a and b match.
func pixEq(src []byte, a, b int) bool {
	return src[a] == src[b] && src[a+1] == src[b+1] && src[a+2] == src[b+2]
}

// matchLen returns how many bytes match between the sequences starting
// at byte offsets a and b (a < b), comparing no further than limit.
// Overlapping ranges get sequential compare semantics (src[a+k] vs
// src[b+k] one k at a time), which is exactly what makes a distance-1
// pixel comparison detect periodic runs. Eight-byte XOR compares move
// it at memcpy-like speed; the in-bounds guard is b+l+8 <= limit with
// a < b, so the a-side load stays inside src whenever limit <= len(src).
func matchLen(src []byte, a, b, limit int) int {
	l := 0
	for b+l+8 <= limit {
		x := binary.LittleEndian.Uint64(src[a+l:]) ^ binary.LittleEndian.Uint64(src[b+l:])
		if x != 0 {
			return l + bits.TrailingZeros64(x)>>3
		}
		l += 8
	}
	for b+l < limit && src[a+l] == src[b+l] {
		l++
	}
	return l
}

// appendUvarint is binary.AppendUvarint without the import weight.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// appendToken emits one op token for n pixels (n >= 1).
func appendToken(dst []byte, op byte, n int) []byte {
	if n <= 63 {
		return append(dst, byte(n-1)<<2|op)
	}
	dst = append(dst, 63<<2|op)
	return appendUvarint(dst, uint64(n-64))
}

const (
	spanOpLit  = 0
	spanOpRun  = 1
	spanOpCopy = 2
)

// SpanCompress appends the span-codec encoding of src to dst (usually a
// reused scratch slice truncated to [:0]) and returns the extended
// slice. It cannot fail and, given dst capacity, does not allocate
// beyond amortised append growth: the match table comes from a pool.
// The output is never guaranteed smaller than src — callers keep the
// raw payload when it is not, exactly like the flate path.
func SpanCompress(dst, src []byte) []byte {
	n := len(src) / 3 // whole pixels; the 0–2 byte tail ships verbatim
	pixEnd := n * 3
	probeEnd := len(src) - 8 // last byte offset whose 8-byte hash load fits
	e := spanEncPool.Get().(*spanEnc)
	table := &e.table
	// The hot loop works in byte offsets (bi = 3*pixel) so the common
	// path does no pixel<->byte arithmetic; table entries are byte
	// offsets too. There is no separate RLE scan: a flat run is a
	// distance-1 back-reference, its 2-pixel groups are identical and so
	// hash identically, and the emitter below turns distance 1 into the
	// shorter run token — one probe pipeline covers both op kinds.
	litStart := 0 // byte offset of the pending literal run
	fails := 0    // probe misses since the last match, drives skip accel
	bi := 0
	for bi < pixEnd {
		cand := -1
		if bi+3 <= probeEnd {
			// Dual probe: hash the groups at bi and bi+3 together so
			// their load->table->verify chains overlap in the pipeline
			// instead of serialising, and each 8-byte group load is
			// shared between hashing and match verification. All table
			// entries are pixel-aligned byte offsets, so a verified
			// candidate's distance is always whole pixels; the 6-byte
			// verify is one XOR of the loaded groups (cand < bi keeps
			// the cand-side 8-byte load in bounds, since bi+8 is).
			v1 := binary.LittleEndian.Uint64(src[bi:])
			// Distance-1 first: flat content repeats the previous pixel,
			// and finding it here instead of through the table turns the
			// op into a run token (no uvarint) — the table would as
			// likely return some far older copy of the same pixel.
			if bi >= 3 && (binary.LittleEndian.Uint64(src[bi-3:])^v1)<<16 == 0 {
				cand = bi - 3
				table[spanHashV(v1)] = int32(bi)
			} else {
				v2 := binary.LittleEndian.Uint64(src[bi+3:])
				h1 := spanHashV(v1)
				h2 := spanHashV(v2)
				c1 := int(table[h1])
				c2 := int(table[h2])
				table[h1] = int32(bi)
				table[h2] = int32(bi + 3)
				if c1 >= 0 && c1 < bi &&
					(binary.LittleEndian.Uint64(src[c1:])^v1)<<16 == 0 {
					cand = c1
				} else if c2 >= 0 && c2 < bi+3 &&
					(binary.LittleEndian.Uint64(src[c2:])^v2)<<16 == 0 {
					cand = c2
					bi += 3
				}
			}
		} else if bi <= probeEnd {
			// Tail: too close to the end for the second probe.
			h := spanHashV(binary.LittleEndian.Uint64(src[bi:]))
			if c := int(table[h]); c >= 0 && c < bi &&
				(binary.LittleEndian.Uint64(src[c:])^binary.LittleEndian.Uint64(src[bi:]))<<16 == 0 {
				cand = c
			}
			table[h] = int32(bi)
		}
		if cand >= 0 {
			// Whole pixels only: round the byte match length down. Most
			// matches end within their first extension word (rendered
			// content repeats in short bursts), so resolve that word
			// inline and pay the matchLen call only for longer ones.
			var m int
			if bi+14 <= pixEnd {
				if x := binary.LittleEndian.Uint64(src[cand+6:]) ^
					binary.LittleEndian.Uint64(src[bi+6:]); x != 0 {
					m = (6 + bits.TrailingZeros64(x)>>3) / 3 * 3
				} else {
					m = (14 + matchLen(src, cand+14, bi+14, pixEnd)) / 3 * 3
				}
			} else {
				m = (matchLen(src, cand+6, bi+6, pixEnd) + 6) / 3 * 3
			}
			// Extend backwards into the pending literals (the
			// distance bi-cand is unchanged as both ends slide).
			for cand > 0 && bi > litStart && pixEq(src, cand-3, bi-3) {
				cand -= 3
				bi -= 3
				m += 3
			}
			dst = flushLits(dst, src, litStart, bi)
			if dist := (bi - cand) / 3; dist == 1 {
				dst = appendToken(dst, spanOpRun, m/3)
			} else {
				dst = appendToken(dst, spanOpCopy, m/3)
				dst = appendUvarint(dst, uint64(dist))
			}
			// Seed every other pixel the match skips. Sequential hash
			// stores are nearly free next to a probe (no candidate read,
			// no verify), and dense coverage is what later matches are
			// made of: span payloads repeat the same rows many times,
			// and every unseeded pixel is a match the next occurrence
			// cannot find.
			for j, end := bi+6, min(bi+m, probeEnd); j < end; j += 6 {
				table[spanHashV(binary.LittleEndian.Uint64(src[j:]))] = int32(j)
			}
			bi += m
			litStart = bi
			fails = 0
			continue
		}
		// Skip acceleration: the more probes have missed since the last
		// match, the larger the stride to the next one. Incompressible
		// content (rendered texture with no repeats) streams through at
		// a few probes per cache line instead of one per pixel, at a
		// marginal cost in match discovery; any match resets the stride.
		fails++
		bi += 6 + (fails>>spanSkipShift)*3
	}
	dst = flushLits(dst, src, litStart, pixEnd)
	spanEncPool.Put(e)
	return append(dst, src[pixEnd:]...)
}

// flushLits emits the pending literal pixels between byte offsets
// [from, to), both pixel-aligned.
func flushLits(dst, src []byte, from, to int) []byte {
	if to <= from {
		return dst
	}
	dst = appendToken(dst, spanOpLit, (to-from)/3)
	return append(dst, src[from:to]...)
}

// SpanDecompress decodes a SpanCompress stream into dst, whose length
// must be exactly the decoded size (the farm protocol always knows it).
// The decoder is total: arbitrary src bytes either fill dst exactly or
// return an error — it never panics, never reads or writes out of
// bounds, and rejects streams that are short, long, or malformed, so a
// corrupt payload can never be delivered as pixels.
func SpanDecompress(dst, src []byte) error {
	n := len(dst) / 3 * 3 // pixel region; the tail is raw
	w := 0                // write offset into dst
	p := 0                // read offset into src
	for w < n {
		if p >= len(src) {
			return fmt.Errorf("msg: span codec: truncated stream at %d/%d bytes", w, n)
		}
		t := src[p]
		p++
		cnt := int(t >> 2)
		if cnt == 63 {
			v, adv := spanUvarint(src, p)
			if adv <= 0 || v > spanMaxLen {
				return fmt.Errorf("msg: span codec: bad extended length")
			}
			p += adv
			cnt = 63 + int(v) // n-1 form, matching the short case
		}
		cnt++ // token stores n-1
		need := cnt * 3
		if need > n-w {
			return fmt.Errorf("msg: span codec: op overruns output (%d pixels, %d bytes left)", cnt, n-w)
		}
		switch t & 3 {
		case spanOpLit:
			if p+need > len(src) {
				return fmt.Errorf("msg: span codec: truncated literal")
			}
			copy(dst[w:w+need], src[p:])
			p += need
		case spanOpRun:
			if w < 3 {
				return fmt.Errorf("msg: span codec: run with no previous pixel")
			}
			fillPattern(dst, w-3, 3, need)
		case spanOpCopy:
			v, adv := spanUvarint(src, p)
			if adv <= 0 || v == 0 || v > uint64(w/3) {
				return fmt.Errorf("msg: span codec: bad copy distance")
			}
			p += adv
			fillPattern(dst, w-int(v)*3, int(v)*3, need)
		default:
			return fmt.Errorf("msg: span codec: invalid op %d", t&3)
		}
		w += need
	}
	if len(src)-p != len(dst)-n {
		return fmt.Errorf("msg: span codec: %d trailing bytes, want %d", len(src)-p, len(dst)-n)
	}
	copy(dst[n:], src[p:])
	return nil
}

// fillPattern copies length bytes into dst at the current end (start +
// period is the write position) from the periodic pattern beginning at
// start, using doubling copies so flat runs move at memcpy speed.
// Preconditions (checked by the caller): start >= 0, the write region
// [start+period, start+period+length) lies inside dst.
func fillPattern(dst []byte, start, period, length int) {
	w := start + period
	// Seed one period, then double what is already materialised.
	copied := copy(dst[w:w+length], dst[start:start+period])
	for copied < length {
		copied += copy(dst[w+copied:w+length], dst[w:w+copied])
	}
}

// spanUvarint is binary.Uvarint with a defensive cap: returns the value
// and the bytes consumed, or adv <= 0 on truncated/oversized input.
func spanUvarint(src []byte, p int) (uint64, int) {
	var v uint64
	for s, adv := uint(0), 1; p < len(src) && adv <= 5; s, adv, p = s+7, adv+1, p+1 {
		b := src[p]
		v |= uint64(b&0x7f) << s
		if b < 0x80 {
			return v, adv
		}
	}
	return 0, 0
}
