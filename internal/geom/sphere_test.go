package geom

import (
	"math"
	"testing"
	"testing/quick"

	vm "nowrender/internal/vecmath"
)

const inf = math.MaxFloat64

func TestSphereHitFront(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	r := vm.Ray{Origin: vm.V(0, 0, -5), Dir: vm.V(0, 0, 1)}
	h, ok := s.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed sphere")
	}
	if math.Abs(h.T-4) > 1e-12 {
		t.Errorf("T = %v, want 4", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(0, 0, -1), 1e-12) {
		t.Errorf("normal = %v", h.Normal)
	}
	if h.Inside {
		t.Error("front hit flagged inside")
	}
}

func TestSphereHitFromInside(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	r := vm.Ray{Origin: vm.V(0, 0, 0), Dir: vm.V(0, 0, 1)}
	h, ok := s.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed from inside")
	}
	if math.Abs(h.T-1) > 1e-12 {
		t.Errorf("T = %v, want 1", h.T)
	}
	if !h.Inside {
		t.Error("inside hit not flagged")
	}
	if !h.Normal.ApproxEq(vm.V(0, 0, -1), 1e-12) {
		t.Errorf("normal should face the ray origin: %v", h.Normal)
	}
}

func TestSphereMiss(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	r := vm.Ray{Origin: vm.V(0, 3, -5), Dir: vm.V(0, 0, 1)}
	if _, ok := s.Intersect(r, 0, inf); ok {
		t.Error("hit reported for missing ray")
	}
	// Behind the origin.
	r = vm.Ray{Origin: vm.V(0, 0, -5), Dir: vm.V(0, 0, -1)}
	if _, ok := s.Intersect(r, 0, inf); ok {
		t.Error("hit reported behind ray origin")
	}
}

func TestSphereRespectstMax(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	r := vm.Ray{Origin: vm.V(0, 0, -5), Dir: vm.V(0, 0, 1)}
	if _, ok := s.Intersect(r, 0, 3.9); ok {
		t.Error("hit reported beyond tMax")
	}
	if _, ok := s.Intersect(r, 4.5, inf); !ok {
		// tMin lies between entry (4) and exit (6): should hit exit.
		t.Error("exit hit not found with tMin inside sphere span")
	}
}

func TestSphereGrazing(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	// Ray passing at distance exactly 1-1e-12 (just inside).
	r := vm.Ray{Origin: vm.V(0, 1-1e-9, -5), Dir: vm.V(0, 0, 1)}
	if _, ok := s.Intersect(r, 0, inf); !ok {
		t.Error("grazing ray (just inside) missed")
	}
	r = vm.Ray{Origin: vm.V(0, 1+1e-9, -5), Dir: vm.V(0, 0, 1)}
	if _, ok := s.Intersect(r, 0, inf); ok {
		t.Error("grazing ray (just outside) hit")
	}
}

func TestSphereBounds(t *testing.T) {
	s := NewSphere(vm.V(1, 2, 3), 2)
	b := s.Bounds()
	if b.Min != vm.V(-1, 0, 1) || b.Max != vm.V(3, 4, 5) {
		t.Errorf("bounds = %v", b)
	}
}

func TestSphereUV(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	// Hit the north pole: v should be ~0.
	r := vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := s.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed pole")
	}
	if math.Abs(h.V) > 1e-9 {
		t.Errorf("north pole V = %v, want 0", h.V)
	}
}

// Property: any hit point lies on the sphere surface and within the
// query interval, and the normal faces the ray.
func TestQuickSphereHitOnSurface(t *testing.T) {
	s := NewSphere(vm.V(0.5, -0.5, 2), 1.5)
	rng := vm.NewRNG(99)
	f := func() bool {
		o := vm.V(rng.InRange(-10, 10), rng.InRange(-10, 10), rng.InRange(-10, 10))
		d := vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1))
		if d.Len() < 1e-3 {
			return true
		}
		d = d.Norm()
		h, ok := s.Intersect(vm.Ray{Origin: o, Dir: d}, 1e-9, inf)
		if !ok {
			return true
		}
		distFromCenter := h.Point.Dist(s.Center)
		if math.Abs(distFromCenter-s.Radius) > 1e-6 {
			return false
		}
		return h.Normal.Dot(d) <= 1e-9
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatalf("property violated at iteration %d", i)
		}
	}
}

// Property: if a ray from origin o in direction towards a point ON the
// sphere is cast, it must hit.
func TestQuickSphereAimedRaysHit(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	f := func(ox, oy, oz, theta, phi float64) bool {
		if math.IsNaN(ox+oy+oz+theta+phi) || math.IsInf(ox+oy+oz+theta+phi, 0) {
			return true
		}
		o := vm.V(math.Mod(ox, 50), math.Mod(oy, 50), math.Mod(oz, 50))
		if o.Len() <= 1.01 { // origin inside or on sphere: skip
			return true
		}
		// Aim at the sphere centre — guaranteed hit.
		d := s.Center.Sub(o)
		_, ok := s.Intersect(vm.Ray{Origin: o, Dir: d}, 1e-9, inf)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
