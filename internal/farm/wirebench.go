package farm

import (
	"time"

	"nowrender/internal/coherence"
	"nowrender/internal/fb"
	"nowrender/internal/scene"
)

// WirePoint is one wire mode's measurement of the frame codec: the
// bytes each frame result costs on the wire and the encode+decode time
// it takes to get there. Serialised into BENCH_wire.json by cmd/benchtab
// so the data-path trajectory is recorded over time.
type WirePoint struct {
	// Mode is "full" (legacy raw region), "delta" (dirty-span deltas
	// after the key-frame) or "delta+flate" (deltas plus compression).
	Mode   string `json:"mode"`
	Frames int    `json:"frames"`
	// BytesTotal is the summed encoded frameDone payloads, including the
	// mandatory frame-0 key-frame; BytesPerFrame is the average.
	BytesTotal    int64   `json:"bytes_total"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	// NSPerFrame is the average encode+decode+apply time per frame.
	NSPerFrame float64 `json:"ns_per_frame"`
	// RatioVsFull is full-mode bytes divided by this mode's bytes (1.0
	// for the full mode itself): the wire-traffic reduction factor.
	RatioVsFull float64 `json:"ratio_vs_full"`
	// FramesDelta and FramesCompressed count how often the encoder
	// actually chose the delta representation / kept the flate output.
	FramesDelta      int `json:"frames_delta"`
	FramesCompressed int `json:"frames_compressed"`
	// Identical records the determinism check: the pixels reconstructed
	// from the decoded stream compared byte-for-byte against the render.
	Identical bool `json:"identical"`
}

// WireSweep measures the farm frame codec on a real render: it traces
// `frames` frames of sc at w x h through a coherence engine once,
// capturing each frame's pixels and dirty spans, then replays the
// capture through each wire mode with the production encoder and
// decoder, verifying that the reconstructed stream is byte-identical to
// the render.
func WireSweep(sc *scene.Scene, w, h, frames int) ([]WirePoint, error) {
	if frames <= 0 || frames > sc.Frames {
		frames = sc.Frames
	}
	region := fb.NewRect(0, 0, w, h)
	eng, err := coherence.NewEngine(sc, w, h, region, 0, frames, coherence.Options{})
	if err != nil {
		return nil, err
	}
	bufs := make([]*fb.Framebuffer, frames)
	spans := make([][]fb.Span, frames)
	buf := fb.New(w, h)
	for f := 0; f < frames; f++ {
		if _, err := eng.RenderFrame(f, buf); err != nil {
			return nil, err
		}
		img := fb.New(w, h)
		copy(img.Pix, buf.Pix)
		bufs[f] = img
		spans[f] = append([]fb.Span(nil), eng.LastSpans()...)
	}

	modes := []struct {
		name  string
		flags int
	}{
		{"full", 0},
		{"delta", capWireDelta},
		{"delta+flate", capWireDelta | capWireCompress},
	}
	out := make([]WirePoint, 0, len(modes))
	var fullBytes int64
	for _, mode := range modes {
		var enc frameEncoder
		pt := WirePoint{Mode: mode.name, Frames: frames, Identical: true}
		cur := fb.New(w, h)
		start := time.Now()
		for f := 0; f < frames; f++ {
			fd := frameDoneMsg{TaskID: 1, Frame: f, Region: region}
			data := enc.Encode(&fd, bufs[f], mode.flags, spans[f], f == 0)
			pt.BytesTotal += int64(len(data))
			rd, err := decodeFrameDone(data)
			if err != nil {
				return nil, err
			}
			if rd.Kind == frameDelta {
				pt.FramesDelta++
				if err := cur.ApplySpans(rd.Spans, rd.Pix); err != nil {
					rd.Release()
					return nil, err
				}
			} else {
				copy(cur.Pix, rd.Pix)
			}
			if rd.Encoding == encFlate {
				pt.FramesCompressed++
			}
			rd.Release()
			if !cur.Equal(bufs[f]) {
				pt.Identical = false
			}
		}
		wall := time.Since(start)
		pt.BytesPerFrame = float64(pt.BytesTotal) / float64(frames)
		pt.NSPerFrame = float64(wall.Nanoseconds()) / float64(frames)
		switch {
		case mode.flags == 0:
			fullBytes = pt.BytesTotal
			pt.RatioVsFull = 1
		case pt.BytesTotal > 0:
			pt.RatioVsFull = float64(fullBytes) / float64(pt.BytesTotal)
		}
		out = append(out, pt)
	}
	return out, nil
}
