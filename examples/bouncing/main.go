// Bouncing reproduces Figures 1 and 2 of the paper with the
// glass-ball-in-a-brick-room animation: it renders two consecutive
// frames (Figure 1), the actual pixel-difference mask between them
// (Figure 2(a)), and the difference mask predicted by the
// frame-coherence algorithm (Figure 2(b)), asserting the superset
// property that makes coherent rendering exact.
//
//	go run ./examples/bouncing -frame 4 -out bounce-out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nowrender"
)

func main() {
	var (
		frame  = flag.Int("frame", 4, "first frame of the compared pair")
		frames = flag.Int("frames", 30, "animation length")
		width  = flag.Int("w", 240, "width")
		height = flag.Int("h", 320, "height")
		outDir = flag.String("out", "bounce-out", "output directory")
	)
	flag.Parse()
	if err := run(*frame, *frames, *width, *height, *outDir); err != nil {
		log.Fatal(err)
	}
}

func run(frame, frames, w, h int, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	sc := nowrender.BouncingScene(frames)
	if frame+1 >= frames {
		return fmt.Errorf("frame %d out of range", frame)
	}

	// Figure 1: two consecutive frames, fully rendered.
	var pair [2]*nowrender.Framebuffer
	for i := 0; i < 2; i++ {
		img, err := nowrender.RenderFrame(sc, frame+i, w, h)
		if err != nil {
			return err
		}
		pair[i] = img
		name := filepath.Join(outDir, fmt.Sprintf("fig1-frame%02d.tga", frame+i))
		if err := nowrender.WriteTGA(name, img); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", name)
	}

	// Figure 2(a): actual pixel differences.
	actual, err := nowrender.DiffFrames(pair[0], pair[1])
	if err != nil {
		return err
	}
	if err := nowrender.WriteTGA(filepath.Join(outDir, "fig2a-actual.tga"), actual.Image()); err != nil {
		return err
	}

	// Figure 2(b): the coherence algorithm's prediction. Run the engine
	// through frame `frame` and take its dirty mask for frame+1.
	full := nowrender.NewRect(0, 0, w, h)
	eng, err := nowrender.NewCoherenceEngine(sc, w, h, full, 0, frames, nowrender.CoherenceOptions{})
	if err != nil {
		return err
	}
	scratch := nowrender.NewFramebuffer(w, h)
	for f := 0; f <= frame; f++ {
		if _, err := eng.RenderFrame(f, scratch); err != nil {
			return err
		}
	}
	predicted, err := nowrender.MaskFromDirty(eng.DirtyMask(), full, w, h)
	if err != nil {
		return err
	}
	if err := nowrender.WriteTGA(filepath.Join(outDir, "fig2b-predicted.tga"), predicted.Image()); err != nil {
		return err
	}

	fmt.Printf("\nframes %d -> %d:\n", frame, frame+1)
	fmt.Printf("  actual change:    %6d pixels (%.1f%%)\n", actual.Count(), 100*actual.Fraction())
	fmt.Printf("  predicted change: %6d pixels (%.1f%%)\n", predicted.Count(), 100*predicted.Fraction())
	if predicted.Covers(actual) {
		fmt.Println("  the prediction covers every actually-changed pixel — coherent")
		fmt.Println("  rendering is pixel-exact while skipping the rest of the image")
	} else {
		fmt.Println("  WARNING: prediction misses changes (should never happen)")
	}
	return nil
}
