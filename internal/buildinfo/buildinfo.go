// Package buildinfo derives the version string behind the daemons'
// -version flags from the metadata the Go toolchain stamps into every
// binary (runtime/debug.ReadBuildInfo): the module version for tagged
// builds, the VCS revision and commit time when embedded, and always
// the toolchain and platform.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns a one-line human-readable build description, e.g.
//
//	v1.2.0 (3f9c2d1a4b7e 2026-08-06T10:00:00Z), go1.24.0 linux/amd64
//	devel, go1.24.0 linux/amd64
func Version() string {
	v := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			v = bi.Main.Version
		}
		var rev, at, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.time":
				at = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			detail := rev + dirty
			if at != "" {
				detail += " " + at
			}
			v += " (" + detail + ")"
		}
	}
	return fmt.Sprintf("%s, %s %s/%s", v, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
