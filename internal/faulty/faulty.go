// Package faulty is a deterministic fault-injection wrapper around
// msg.Conn: it delays, drops, truncates, corrupts or severs messages on
// a seeded, per-tag schedule. It is the chaos layer the farm's
// regression net renders through — the same animation must come out
// byte-identical whether the transport is clean or hostile, as long as
// one worker survives.
//
// A Plan is a seeded list of Rules. Each wrapped connection evaluates
// the rules against every message it sends and receives; probabilistic
// rules draw from a per-connection RNG derived from the plan seed and
// the connection name, so a given (plan, name) pair always produces the
// same schedule for the same message sequence. Count-based rules
// (Rule.After) trigger on the Nth matching message with no randomness at
// all, which is what the deterministic protocol-failure tests use.
//
// The wrapper plugs into both transports: the in-process pipes of the
// virtual NOW (farm.Config.WrapConn wraps each goroutine worker's end)
// and real TCP (cmd/nowworker's -chaos flag wraps its dialed
// connection).
package faulty

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nowrender/internal/msg"
)

// Action is what a triggered rule does to the message.
type Action int

const (
	// Drop silently discards the message (Send pretends it succeeded,
	// Recv skips to the next message).
	Drop Action = iota
	// Delay sleeps Rule.Delay before delivering the message.
	Delay
	// Corrupt flips bytes in a copy of the payload.
	Corrupt
	// Truncate cuts the payload to a strict prefix.
	Truncate
	// Sever closes the underlying connection; every later operation
	// fails — a workstation dropping off the network mid-run.
	Sever
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	case Sever:
		return "sever"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Dir selects which direction(s) of a connection a rule applies to.
type Dir int

const (
	// Both matches sends and receives.
	Both Dir = iota
	// SendOnly matches only outgoing messages.
	SendOnly
	// RecvOnly matches only incoming messages.
	RecvOnly
)

// Rule matches messages and applies one Action. A rule triggers either
// probabilistically (Prob, seeded) or deterministically on the Nth match
// (After); setting both makes After the gate and Prob is ignored.
type Rule struct {
	// Tag matches the message tag; 0 (no farm message uses tag 0)
	// matches every tag.
	Tag int
	// Dir restricts the direction (default Both).
	Dir Dir
	// Prob is the per-message trigger probability in [0, 1].
	Prob float64
	// After, when > 0, triggers exactly once, on the After-th matching
	// message of this connection+direction.
	After int
	// Action is applied on trigger.
	Action Action
	// Delay is the sleep for Action == Delay.
	Delay time.Duration
}

// matches reports whether the rule applies to a message in direction d.
func (r *Rule) matches(tag int, d Dir) bool {
	if r.Tag != 0 && r.Tag != tag {
		return false
	}
	return r.Dir == Both || r.Dir == d
}

// Stats counts the faults a plan actually injected, summed over all its
// wrapped connections. Read with Snapshot.
type Stats struct {
	Dropped, Delayed, Corrupted, Truncated, Severed uint64
}

// Plan is a reusable fault schedule: wrap any number of connections and
// each gets its own deterministic stream derived from Seed and its name.
type Plan struct {
	// Seed roots every per-connection RNG; two runs with the same seed,
	// names and message sequences inject the same faults.
	Seed int64
	// Rules are evaluated in order; the first triggered rule acts and
	// evaluation stops for that message.
	Rules []Rule
	// Protect lists connection names Wrap returns unwrapped — the chaos
	// tests keep at least one worker fault-free so the farm's
	// "completes with ≥1 live worker" guarantee is exercised, not
	// vacuously failed.
	Protect []string

	dropped, delayed, corrupted, truncated, severed atomic.Uint64
}

// Snapshot returns the faults injected so far across all connections.
func (p *Plan) Snapshot() Stats {
	return Stats{
		Dropped:   p.dropped.Load(),
		Delayed:   p.delayed.Load(),
		Corrupted: p.corrupted.Load(),
		Truncated: p.truncated.Load(),
		Severed:   p.severed.Load(),
	}
}

// Wrap returns a Conn that injects this plan's faults into c. Protected
// names get c back unchanged. Safe to call from concurrent goroutines;
// each call derives an independent deterministic RNG.
func (p *Plan) Wrap(name string, c msg.Conn) msg.Conn {
	for _, keep := range p.Protect {
		if keep == name {
			return c
		}
	}
	return &conn{
		inner: c,
		plan:  p,
		rng:   rand.New(rand.NewSource(p.Seed ^ int64(fnv64(name)))),
		sent:  make([]int, len(p.Rules)),
		recvd: make([]int, len(p.Rules)),
	}
}

// fnv64 hashes a connection name (FNV-1a) to diversify per-conn seeds.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// conn is one faulty connection. The RNG and match counters are guarded
// by mu; Send and Recv themselves may run concurrently.
type conn struct {
	inner msg.Conn
	plan  *Plan

	mu          sync.Mutex
	rng         *rand.Rand
	sent, recvd []int // per-rule match counts by direction

	severed atomic.Bool
}

// decide evaluates the rules for one message and returns the triggered
// rule, if any.
func (c *conn) decide(tag int, d Dir) *Rule {
	c.mu.Lock()
	defer c.mu.Unlock()
	counts := c.sent
	if d == RecvOnly {
		counts = c.recvd
	}
	for i := range c.plan.Rules {
		r := &c.plan.Rules[i]
		if !r.matches(tag, d) {
			continue
		}
		counts[i]++
		if r.After > 0 {
			if counts[i] == r.After {
				return r
			}
			continue
		}
		if r.Prob > 0 && c.rng.Float64() < r.Prob {
			return r
		}
	}
	return nil
}

// mangle applies a payload-altering action to a copy of data (the
// original may be shared with the peer on the in-process transport).
func (c *conn) mangle(r *Rule, data []byte) []byte {
	if len(data) == 0 {
		return data
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]byte(nil), data...)
	switch r.Action {
	case Corrupt:
		// Flip 1-4 bytes at seeded offsets.
		n := 1 + c.rng.Intn(4)
		for i := 0; i < n; i++ {
			out[c.rng.Intn(len(out))] ^= byte(1 + c.rng.Intn(255))
		}
	case Truncate:
		out = out[:c.rng.Intn(len(out))]
	}
	return out
}

// apply performs the rule's action; it returns the (possibly altered)
// message, whether to deliver it, and an error for severed connections.
func (c *conn) apply(r *Rule, m msg.Message) (msg.Message, bool, error) {
	switch r.Action {
	case Drop:
		c.plan.dropped.Add(1)
		return m, false, nil
	case Delay:
		c.plan.delayed.Add(1)
		time.Sleep(r.Delay)
		return m, true, nil
	case Corrupt:
		c.plan.corrupted.Add(1)
		m.Data = c.mangle(r, m.Data)
		return m, true, nil
	case Truncate:
		c.plan.truncated.Add(1)
		m.Data = c.mangle(r, m.Data)
		return m, true, nil
	case Sever:
		c.plan.severed.Add(1)
		c.severed.Store(true)
		c.inner.Close()
		return m, false, msg.ErrClosed
	}
	return m, true, nil
}

// Send implements msg.Conn.
func (c *conn) Send(m msg.Message) error {
	if c.severed.Load() {
		return msg.ErrClosed
	}
	if r := c.decide(m.Tag, SendOnly); r != nil {
		var deliver bool
		var err error
		if m, deliver, err = c.apply(r, m); err != nil {
			return err
		}
		if !deliver {
			return nil // dropped: pretend it went out
		}
	}
	return c.inner.Send(m)
}

// Recv implements msg.Conn. Dropped incoming messages are skipped, not
// surfaced.
func (c *conn) Recv() (msg.Message, error) {
	for {
		if c.severed.Load() {
			return msg.Message{}, msg.ErrClosed
		}
		m, err := c.inner.Recv()
		if err != nil {
			return msg.Message{}, err
		}
		r := c.decide(m.Tag, RecvOnly)
		if r == nil {
			return m, nil
		}
		var deliver bool
		if m, deliver, err = c.apply(r, m); err != nil {
			return msg.Message{}, err
		}
		if deliver {
			return m, nil
		}
	}
}

// Close implements msg.Conn.
func (c *conn) Close() error { return c.inner.Close() }

// ParsePlan builds a Plan from a compact flag string, the form the three
// daemons expose as -chaos:
//
//	seed=7,drop=0.01,corrupt=0.005,truncate=0.005,delay=0.02:5ms,sever=0.001,protect=ws01
//
// Every probability applies to all tags in both directions; protect may
// repeat. An empty spec returns (nil, nil).
func ParsePlan(spec string) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faulty: bad field %q (want key=value)", field)
		}
		prob := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 1 {
				return 0, fmt.Errorf("faulty: %s=%q: want a probability in [0,1]", key, val)
			}
			return f, nil
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faulty: seed=%q: %v", val, err)
			}
			p.Seed = n
		case "protect":
			p.Protect = append(p.Protect, val)
		case "drop", "corrupt", "truncate", "sever":
			f, err := prob()
			if err != nil {
				return nil, err
			}
			act := map[string]Action{"drop": Drop, "corrupt": Corrupt, "truncate": Truncate, "sever": Sever}[key]
			p.Rules = append(p.Rules, Rule{Prob: f, Action: act})
		case "delay":
			probStr, durStr, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faulty: delay=%q: want prob:duration (e.g. 0.02:5ms)", val)
			}
			f, err := strconv.ParseFloat(probStr, 64)
			if err != nil || f < 0 || f > 1 {
				return nil, fmt.Errorf("faulty: delay=%q: bad probability", val)
			}
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faulty: delay=%q: bad duration", val)
			}
			p.Rules = append(p.Rules, Rule{Prob: f, Action: Delay, Delay: d})
		default:
			return nil, fmt.Errorf("faulty: unknown key %q", key)
		}
	}
	return p, nil
}
