package farm

import (
	"reflect"
	"testing"

	"nowrender/internal/cluster"
	"nowrender/internal/coherence"
	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
	"nowrender/internal/stats"
	vm "nowrender/internal/vecmath"
)

const fw, fh = 40, 32

// farmScene is a small animation with a moving ball, enough secondary
// rays to be interesting, and a stationary camera.
func farmScene(frames int) *scene.Scene {
	s := scene.New("farm-test")
	s.Frames = frames
	s.Camera = scene.Camera{Pos: vm.V(0, 2, 9), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 55}
	s.Background = material.RGB(0.1, 0.1, 0.25)
	floor := material.NewMaterial(material.Checker{A: material.White, B: material.RGB(0.15, 0.15, 0.15)}, material.DefaultFinish())
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), floor, nil)
	chrome := material.NewMaterial(material.Solid{C: material.RGB(0.9, 0.9, 0.95)}, material.ChromeFinish())
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), chrome,
		scene.KeyframeTrack{Keys: []scene.Keyframe{
			{Frame: 0, Pos: vm.V(-2.5, 0, 0)},
			{Frame: frames - 1, Pos: vm.V(2.5, 0, 0)},
		}})
	s.AddLight("key", vm.V(5, 9, 7), material.White)
	return s
}

// referenceFrames renders the animation frame by frame with the plain
// tracer — the ground truth all farm modes must match exactly.
func referenceFrames(t *testing.T, sc *scene.Scene) []*fb.Framebuffer {
	t.Helper()
	var out []*fb.Framebuffer
	_, err := coherence.FullRender(sc, fw, fh, fb.NewRect(0, 0, fw, fh), 0, sc.Frames, 1,
		func(f int, img *fb.Framebuffer, _ stats.RayCounters) error {
			out = append(out, img.Clone())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func assertFramesEqual(t *testing.T, label string, got []*fb.Framebuffer, want []*fb.Framebuffer) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d frames, want %d", label, len(got), len(want))
	}
	for f := range got {
		if !got[f].Equal(want[f]) {
			t.Errorf("%s: frame %d differs in %d pixels", label, f, got[f].DiffCount(want[f]))
		}
	}
}

func TestVirtualSchemesProduceIdenticalImages(t *testing.T) {
	sc := farmScene(6)
	want := referenceFrames(t, sc)
	schemes := []partition.Scheme{
		partition.SequenceDivision{Adaptive: true},
		partition.SequenceDivision{Adaptive: false},
		partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		partition.HybridDivision{BlockW: 20, BlockH: 16, SubseqLen: 3},
	}
	for _, coh := range []bool{false, true} {
		for _, sch := range schemes {
			res, err := RenderVirtual(Config{
				Scene: sc, W: fw, H: fh, Scheme: sch, Coherence: coh,
			})
			if err != nil {
				t.Fatalf("%s coherence=%v: %v", sch.Name(), coh, err)
			}
			assertFramesEqual(t, sch.Name(), res.Frames, want)
			if res.Makespan <= 0 {
				t.Errorf("%s: zero makespan", sch.Name())
			}
		}
	}
}

func TestVirtualDeterminism(t *testing.T) {
	sc := farmScene(5)
	run := func() *Result {
		res, err := RenderVirtual(Config{
			Scene: sc, W: fw, H: fh,
			Scheme: partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true}, Coherence: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("makespans differ: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.TasksExecuted != b.TasksExecuted || a.Subdivisions != b.Subdivisions {
		t.Error("task accounting differs between identical runs")
	}
	totalA := a.Run.TotalRays()
	totalB := b.Run.TotalRays()
	if totalA.Total() != totalB.Total() {
		t.Error("ray counts differ between identical runs")
	}
}

func TestVirtualSpeedupShape(t *testing.T) {
	sc := farmScene(8)
	fast := cluster.PaperTestbed()[0]

	single, err := RenderSingle(Config{Scene: sc, W: fw, H: fh}, fast)
	if err != nil {
		t.Fatal(err)
	}
	singleFC, err := RenderSingle(Config{Scene: sc, W: fw, H: fh, Coherence: true}, fast)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh,
		Scheme: partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	distFC, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		Scheme: partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Coherence alone speeds up a moving-ball scene.
	if sFC := singleFC.Speedup(single); sFC <= 1.2 {
		t.Errorf("coherence speedup = %v, want > 1.2", sFC)
	}
	// Distribution alone approaches the aggregate/fastest speed ratio
	// (4.0/2.0 = 2); comms keep it below the ideal.
	if sD := dist.Speedup(single); sD <= 1.2 || sD > 2.05 {
		t.Errorf("distribution speedup = %v, want in (1.2, 2.05]", sD)
	}
	// Combined beats both individuals (multiplicative effect, §4).
	if distFC.Makespan >= singleFC.Makespan || distFC.Makespan >= dist.Makespan {
		t.Errorf("combined (%v) not faster than FC-only (%v) and dist-only (%v)",
			distFC.Makespan, singleFC.Makespan, dist.Makespan)
	}
}

func TestVirtualAdaptiveSubdivisionHappens(t *testing.T) {
	sc := farmScene(12)
	res, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		Scheme: partition.SequenceDivision{Adaptive: true},
		// Strong heterogeneity forces the fast machine to finish early
		// and steal.
		Machines: []cluster.Machine{
			{Name: "fast", Speed: 8, MemoryMB: 64},
			{Name: "slow", Speed: 1, MemoryMB: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subdivisions == 0 {
		t.Error("no adaptive subdivision despite 8x speed imbalance")
	}
	// The fast machine must have done more pixels.
	var fast, slow int
	for _, w := range res.Workers {
		if w.Worker == "fast" {
			fast = w.PixelsDone
		} else {
			slow = w.PixelsDone
		}
	}
	if fast <= slow {
		t.Errorf("fast machine did %d pixels, slow %d", fast, slow)
	}
}

func TestVirtualStaticSequenceNoSubdivision(t *testing.T) {
	sc := farmScene(6)
	res, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh,
		Scheme: partition.SequenceDivision{Adaptive: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subdivisions != 0 {
		t.Errorf("static scheme subdivided %d times", res.Subdivisions)
	}
}

func TestVirtualEmitOrder(t *testing.T) {
	sc := farmScene(5)
	var order []int
	_, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh,
		Scheme: partition.FrameDivision{BlockW: 16, BlockH: 16},
		Emit: func(f int, img *fb.Framebuffer) error {
			order = append(order, f)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("emitted %d frames", len(order))
	}
	for i, f := range order {
		if f != i {
			t.Errorf("emit order %v", order)
			break
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RenderVirtual(Config{}); err == nil {
		t.Error("nil scene accepted")
	}
	sc := farmScene(2)
	if _, err := RenderVirtual(Config{Scene: sc}); err == nil {
		t.Error("zero resolution accepted")
	}
}

func TestRenderLocalMatchesReference(t *testing.T) {
	sc := farmScene(6)
	want := referenceFrames(t, sc)
	for _, coh := range []bool{false, true} {
		res, err := RenderLocal(Config{
			Scene: sc, W: fw, H: fh, Coherence: coh, Workers: 3,
			Scheme: partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		})
		if err != nil {
			t.Fatalf("coherence=%v: %v", coh, err)
		}
		assertFramesEqual(t, "local", res.Frames, want)
		if res.Makespan <= 0 {
			t.Error("zero wall makespan")
		}
		// All workers participated in stats.
		if len(res.Workers) != 3 {
			t.Errorf("%d worker stats", len(res.Workers))
		}
	}
}

func TestRenderLocalSequenceDivisionWithTruncation(t *testing.T) {
	// Sequence division with 2 workers and many frames: the queue holds 2
	// tasks, so any imbalance triggers the truncation protocol.
	sc := farmScene(10)
	want := referenceFrames(t, sc)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 2,
		Scheme: partition.SequenceDivision{Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "local-seq", res.Frames, want)
}

func TestRenderLocalSingleWorker(t *testing.T) {
	sc := farmScene(4)
	want := referenceFrames(t, sc)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Workers: 1, Coherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "local-1", res.Frames, want)
}

func TestAssemblyValidation(t *testing.T) {
	a := newAssembly(4, 4, 2)
	full := fb.NewRect(0, 0, 4, 4)
	pix := make([]byte, full.Area()*3)
	if _, _, err := a.Deliver(5, full, pix, 0); err == nil {
		t.Error("out-of-range frame accepted")
	}
	if _, _, err := a.Deliver(0, full, pix[:3], 0); err == nil {
		t.Error("short pixel payload accepted")
	}
	if _, _, err := a.Deliver(0, fb.NewRect(-1, 0, 4, 4), pix, 0); err == nil {
		t.Error("negative-origin region accepted")
	}
	if _, _, err := a.Deliver(0, fb.NewRect(0, 0, 5, 4), make([]byte, 5*4*3), 0); err == nil {
		t.Error("out-of-bounds region accepted")
	}
	if _, _, err := a.Deliver(0, fb.Rect{X0: 3, Y0: 0, X1: 1, Y1: 4}, pix, 0); err == nil {
		t.Error("inverted region accepted")
	}
	done, dup, err := a.Deliver(0, full, pix, 0)
	if err != nil || !done || dup {
		t.Errorf("full delivery: done=%v dup=%v err=%v", done, dup, err)
	}
	// The identical (frame, region) again is a duplicate — dropped, not
	// an error (speculative copies and post-failure retries produce it).
	done, dup, err = a.Deliver(0, full, pix, 0)
	if err != nil || done || !dup {
		t.Errorf("duplicate delivery: done=%v dup=%v err=%v", done, dup, err)
	}
	if !a.Delivered(0, full) {
		t.Error("delivered() lost track of a landed region")
	}
	if a.Delivered(1, full) {
		t.Error("delivered() reports an undelivered frame")
	}
	// A different, overlapping region for the same frame is structural
	// over-delivery, still an error.
	if _, _, err := a.Deliver(0, fb.NewRect(0, 0, 2, 4), make([]byte, 2*4*3), 0); err == nil {
		t.Error("over-delivery accepted")
	}
	if err := a.Complete(); err == nil {
		t.Error("incomplete assembly accepted")
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	tm := taskMsg{
		Task: partition.Task{ID: 3, Region: fb.NewRect(1, 2, 33, 44), StartFrame: 5, EndFrame: 9},
		W:    240, H: 320, Coherence: true, Samples: 2, GridRes: 16, BlockGran: 4,
	}
	got, err := decodeTask(encodeTask(tm))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tm) {
		t.Errorf("task round trip: %+v != %+v", got, tm)
	}

	fd := frameDoneMsg{
		TaskID: 3, Frame: 7, Region: fb.NewRect(0, 0, 2, 2),
		Pix:      []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		Rendered: 3, Copied: 1, Regs: 99, ElapsedNs: 123456,
	}
	fd.Rays.ByKind[0] = 11
	fd.Rays.ByKind[3] = 44
	gotFD, err := decodeFrameDone(encodeFrameDone(fd))
	if err != nil {
		t.Fatal(err)
	}
	if gotFD.TaskID != fd.TaskID || gotFD.Frame != fd.Frame || gotFD.Region != fd.Region ||
		string(gotFD.Pix) != string(fd.Pix) || gotFD.Regs != 99 ||
		gotFD.Rays != fd.Rays || gotFD.ElapsedNs != fd.ElapsedNs {
		t.Errorf("frame-done round trip mismatch: %+v", gotFD)
	}

	if _, err := decodeTask([]byte{1, 2}); err == nil {
		t.Error("short task decoded")
	}
	if _, err := decodeFrameDone([]byte{1}); err == nil {
		t.Error("short frame-done decoded")
	}
	a, b, err := decodePair(encodePair(-7, 42))
	if err != nil || a != -7 || b != 42 {
		t.Errorf("pair round trip: %d,%d,%v", a, b, err)
	}
}

func TestExtractRegion(t *testing.T) {
	img := fb.New(4, 4)
	img.SetRGB(1, 1, 10, 20, 30)
	img.SetRGB(2, 1, 40, 50, 60)
	pix := extractRegion(img, fb.NewRect(1, 1, 3, 2))
	if len(pix) != 6 {
		t.Fatalf("extracted %d bytes", len(pix))
	}
	if pix[0] != 10 || pix[3] != 40 {
		t.Errorf("pixels = %v", pix)
	}
}
