package scenes

import (
	"fmt"
	"math"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// MeshGalleryFrames is the default length of the mesh-gallery animation.
const MeshGalleryFrames = 36

// meshTileN is the heightfield lattice size of the procedural tile; the
// tile triangulates to 2*(meshTileN-1)^2 triangles.
const meshTileN = 14

// MeshGalleryTile procedurally generates the gallery's exhibit model: a
// deterministic heightfield relief over the unit square, triangulated
// into 2*(N-1)^2 flat triangles. The same generator backs the committed
// scenes/gallery-tile.obj (via objfile.Write), so the builtin scene and
// the OBJ-loading example render identical geometry.
func MeshGalleryTile() *geom.Mesh {
	n := meshTileN
	rng := vm.NewRNG(0x6d657368) // "mesh": fixed so the tile never drifts
	h := make([]float64, n*n)
	for i := range h {
		h[i] = 0.35 * rng.Float64()
	}
	// Two smoothing passes turn white noise into rolling relief without
	// losing determinism.
	for pass := 0; pass < 2; pass++ {
		sm := make([]float64, n*n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				sum, cnt := 0.0, 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						xx, yy := x+dx, y+dy
						if xx < 0 || xx >= n || yy < 0 || yy >= n {
							continue
						}
						sum += h[yy*n+xx]
						cnt++
					}
				}
				sm[y*n+x] = sum / float64(cnt)
			}
		}
		h = sm
	}
	// A central dome lifts the relief off the pedestal.
	at := func(x, y int) vm.Vec3 {
		u := float64(x) / float64(n-1)
		v := float64(y) / float64(n-1)
		du, dv := u-0.5, v-0.5
		dome := 0.45 * math.Max(0, 1-4*(du*du+dv*dv))
		return vm.V(u, h[y*n+x]+dome, v)
	}
	tris := make([]*geom.Triangle, 0, 2*(n-1)*(n-1))
	for y := 0; y+1 < n; y++ {
		for x := 0; x+1 < n; x++ {
			p00, p10 := at(x, y), at(x+1, y)
			p01, p11 := at(x, y+1), at(x+1, y+1)
			tris = append(tris,
				geom.NewTriangle(p00, p10, p11),
				geom.NewTriangle(p00, p11, p01))
		}
	}
	return geom.NewMesh(tris)
}

// MeshGallery builds the large-mesh stress scene from the procedural
// tile: see MeshGalleryFrom.
func MeshGallery(frames int) *scene.Scene {
	return MeshGalleryFrom(MeshGalleryTile(), frames)
}

// MeshGalleryFrom builds the object-space stress scene around a source
// mesh: a 3x3 gallery of pedestals, each exhibiting its own *baked*
// instance of the mesh (vertices transformed at build time, not via a
// shared Transformed wrapper), so the global triangle count really is
// nine tiles' worth and a spatial shard holds only the instances — and,
// within an instance, only the triangles — overlapping its slab. A
// dollying camera and an orbiting glass ball keep the animation
// exercising coherence and secondary rays.
func MeshGalleryFrom(tile *geom.Mesh, frames int) *scene.Scene {
	if frames <= 0 {
		frames = MeshGalleryFrames
	}
	s := scene.New("meshgallery")
	s.Frames = frames
	s.Background = material.RGB(0.04, 0.045, 0.08)
	s.MaxDepth = 5
	s.AddLight("key", vm.V(-3, 9, 7), material.RGB(1, 0.97, 0.9))
	s.AddLight("fill", vm.V(7, 5, 10), material.RGB(0.22, 0.24, 0.3))

	// Dolly from left to right across the gallery front.
	s.CamTrack = scene.CameraFunc(func(f int) scene.Camera {
		t := 0.0
		if frames > 1 {
			t = float64(f) / float64(frames-1)
		}
		return scene.Camera{
			Pos:    vm.V(-5+10*t, 3.2, 9.5),
			LookAt: vm.V(0, 1.0, -1),
			Up:     vm.V(0, 1, 0),
			FOV:    52,
		}
	})

	floorMat := material.NewMaterial(
		material.Checker{A: material.RGB(0.75, 0.74, 0.7), B: material.RGB(0.22, 0.22, 0.26), Size: 1.4},
		material.Finish{Ambient: 0.1, Diffuse: 0.7, Specular: 0.08, Shininess: 18, Reflect: 0.05, IOR: 1},
	)
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), floorMat, nil)

	stone := material.NewMaterial(material.Solid{C: material.RGB(0.58, 0.58, 0.6)},
		material.Finish{Ambient: 0.12, Diffuse: 0.75, Specular: 0.1, Shininess: 22, IOR: 1})
	exhibits := [3]material.Material{
		material.NewMaterial(material.Solid{C: material.RGB(0.8, 0.45, 0.2)},
			material.Finish{Ambient: 0.1, Diffuse: 0.7, Specular: 0.3, Shininess: 40, IOR: 1}),
		material.NewMaterial(material.Solid{C: material.RGB(0.25, 0.55, 0.8)},
			material.Finish{Ambient: 0.1, Diffuse: 0.65, Specular: 0.35, Shininess: 55, Reflect: 0.1, IOR: 1}),
		material.NewMaterial(material.Solid{C: material.RGB(0.45, 0.75, 0.4)},
			material.Finish{Ambient: 0.1, Diffuse: 0.7, Specular: 0.25, Shininess: 35, IOR: 1}),
	}

	// 3x3 instance grid: bake each instance's scale+translation into its
	// triangle vertices.
	idx := 0
	for iz := 0; iz < 3; iz++ {
		for ix := 0; ix < 3; ix++ {
			x := -4.0 + 4.0*float64(ix)
			z := -4.0 + 2.6*float64(iz)
			s.Add(fmt.Sprintf("pedestal%d", idx),
				geom.NewBox(vm.V(x-0.9, 0, z-0.9), vm.V(x+0.9, 0.8, z+0.9)), stone, nil)
			s.Add(fmt.Sprintf("tile%d", idx),
				bakeMesh(tile, 1.6, vm.V(x-0.8, 0.8, z-0.8)),
				exhibits[idx%len(exhibits)], nil)
			idx++
		}
	}

	// Orbiting glass ball: secondary rays crossing shard boundaries every
	// frame.
	glass := material.NewMaterial(material.Solid{C: material.RGB(0.97, 0.99, 1)}, material.GlassFinish())
	s.Add("orbiter", geom.NewSphere(vm.V(0, 0, 0), 0.4), glass,
		scene.FuncTrack{F: func(f int) vm.Transform {
			ang := 2 * math.Pi * float64(f) / float64(frames)
			p := vm.V(3.2*math.Cos(ang), 2.0+0.4*math.Sin(2*ang), -1.4+2.2*math.Sin(ang))
			return vm.NewTransform(vm.TranslateV(p))
		}})
	return s
}

// bakeMesh returns a copy of m with scale then translation applied to
// every vertex (normals, being direction-only, survive uniform scaling
// and translation unchanged).
func bakeMesh(m *geom.Mesh, scale float64, offset vm.Vec3) *geom.Mesh {
	out := make([]*geom.Triangle, len(m.Tris))
	for i, tr := range m.Tris {
		nt := &geom.Triangle{
			P0: tr.P0.Scale(scale).Add(offset),
			P1: tr.P1.Scale(scale).Add(offset),
			P2: tr.P2.Scale(scale).Add(offset),
			N0: tr.N0, N1: tr.N1, N2: tr.N2,
		}
		out[i] = nt
	}
	return geom.NewMesh(out)
}
