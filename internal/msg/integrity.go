package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrIntegrity is returned by Open when a sealed payload fails its
// checksum — the message was truncated or corrupted in transit.
var ErrIntegrity = errors.New("msg: payload integrity check failed")

// Seal appends a CRC-32 (IEEE) footer to a packed payload. The farm
// protocol seals every message body so that a payload corrupted or
// truncated in transit (a lossy link, a buggy worker, injected faults)
// is detected at decode time instead of being delivered as wrong pixels.
func Seal(data []byte) []byte {
	var foot [4]byte
	binary.BigEndian.PutUint32(foot[:], crc32.ChecksumIEEE(data))
	return append(data, foot[:]...)
}

// Open verifies and strips the CRC-32 footer appended by Seal. The
// returned slice aliases data.
func Open(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes is too short for a footer", ErrIntegrity, len(data))
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(foot) {
		return nil, ErrIntegrity
	}
	return body, nil
}
