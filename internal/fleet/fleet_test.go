package fleet

import (
	"context"
	"testing"
	"time"

	"nowrender/internal/farm"
	"nowrender/internal/scenes"
)

// TestUnlimitedPoolGrantsImmediately: the default pool never blocks and
// grants the full request.
func TestUnlimitedPoolGrantsImmediately(t *testing.T) {
	p := NewPool(0)
	l, err := p.Lease(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.Slots != 8 {
		t.Fatalf("slots = %d, want 8", l.Slots)
	}
	st := p.Stats()
	if st.Capacity != -1 || st.Leased != 8 || st.Leases != 1 {
		t.Fatalf("stats = %+v", st)
	}
	l.Return()
	l.Return() // idempotent
	if got := p.Stats().Leased; got != 0 {
		t.Fatalf("leased after return = %d", got)
	}
}

// TestBoundedLeaseBlocksUntilReturn: a second lease waits for the first
// to return its slots.
func TestBoundedLeaseBlocksUntilReturn(t *testing.T) {
	p := NewPool(3)
	l1, err := p.Lease(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan *Lease, 1)
	go func() {
		l, err := p.Lease(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		granted <- l
	}()
	select {
	case <-granted:
		t.Fatal("second lease granted while pool exhausted")
	case <-time.After(50 * time.Millisecond):
	}
	l1.Return()
	select {
	case l2 := <-granted:
		if l2.Slots != 2 {
			t.Fatalf("second lease slots = %d, want 2", l2.Slots)
		}
		l2.Return()
	case <-time.After(5 * time.Second):
		t.Fatal("second lease never granted after return")
	}
	if w := p.Stats().Waits; w != 1 {
		t.Fatalf("waits = %d, want 1", w)
	}
}

// TestLeaseClampsOverAsk: asking for more than the pool holds grants
// the whole pool instead of deadlocking.
func TestLeaseClampsOverAsk(t *testing.T) {
	p := NewPool(2)
	l, err := p.Lease(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Return()
	if l.Slots != 2 {
		t.Fatalf("slots = %d, want clamp to 2", l.Slots)
	}
}

// TestLeaseHonoursContext: a blocked lease unblocks with the context's
// error.
func TestLeaseHonoursContext(t *testing.T) {
	p := NewPool(1)
	l1, err := p.Lease(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Return()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Lease(ctx, 1); err == nil {
		t.Fatal("lease succeeded on an exhausted pool with an expiring context")
	}
}

// TestJoinLeaveElasticCapacity: members grow and shrink a live pool;
// joining wakes blocked leases.
func TestJoinLeaveElasticCapacity(t *testing.T) {
	p := NewPool(1)
	l1, err := p.Lease(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan *Lease, 1)
	go func() {
		l, err := p.Lease(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		granted <- l
	}()
	time.Sleep(20 * time.Millisecond)
	p.Join("ws02", 2) // capacity 1 -> 3; the blocked lease fits now
	var l2 *Lease
	select {
	case l2 = <-granted:
		if l2.Slots != 2 {
			t.Fatalf("post-join lease slots = %d, want 2", l2.Slots)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join did not wake the blocked lease")
	}
	st := p.Stats()
	if st.Capacity != 3 || st.Members["ws02"] != 2 {
		t.Fatalf("stats after join = %+v", st)
	}
	// Leave shrinks capacity but does not revoke l2: the pool runs over
	// capacity until the lease returns.
	p.Leave("ws02")
	if st := p.Stats(); st.Capacity != 1 || st.Leased != 3 {
		t.Fatalf("stats after leave = %+v", st)
	}
	l1.Return()
	l2.Return()
	if st := p.Stats(); st.Leased != 0 {
		t.Fatalf("leased after returns = %d", st.Leased)
	}
}

// TestJoinBoundsUnlimitedPool: a member joining an unlimited pool makes
// it bounded at the member's capacity.
func TestJoinBoundsUnlimitedPool(t *testing.T) {
	p := NewPool(0)
	p.Join("ws01", 2)
	l, err := p.Lease(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Return()
	if l.Slots != 2 {
		t.Fatalf("slots = %d, want 2 after member bound the pool", l.Slots)
	}
}

// TestDriversRenderThroughPool: the registered drivers run a real
// (tiny) farm job each and produce frames.
func TestDriversRenderThroughPool(t *testing.T) {
	p := NewPool(0)
	sc, err := scenes.FromSpec("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"virtual", "local"} {
		d, err := p.Driver(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Render(farm.Config{
			Scene: sc, W: 24, H: 24, StartFrame: 0, EndFrame: 1, Workers: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Frames) != 1 || res.Frames[0] == nil {
			t.Fatalf("%s: no frame rendered", name)
		}
	}
	if _, err := p.Driver("pvm"); err == nil {
		t.Fatal("unknown driver accepted")
	}
}
