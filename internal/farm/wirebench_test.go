package farm

import (
	"strings"
	"testing"
)

// checkFixture builds a baseline/current WireBench pair that passes
// WireCheck cleanly; tests then break one property at a time.
func checkFixture() (*WireBench, *WireBench) {
	modes := []WirePoint{
		{Mode: "full", BytesPerFrame: 100000, EncodeNSPerFrame: 90000, EffectiveNSPerFrame: 8090000, Identical: true},
		{Mode: "delta", BytesPerFrame: 36000, EncodeNSPerFrame: 22000, EffectiveNSPerFrame: 2902000, Identical: true},
		{Mode: "delta+flate", BytesPerFrame: 15600, EncodeNSPerFrame: 400000, EffectiveNSPerFrame: 1648000, Identical: true},
		{Mode: "delta+span", BytesPerFrame: 17500, EncodeNSPerFrame: 150000, EffectiveNSPerFrame: 1550000, Identical: true},
		{Mode: "delta+adaptive", BytesPerFrame: 17600, EncodeNSPerFrame: 160000, EffectiveNSPerFrame: 1568000, Identical: true},
	}
	mk := func() *WireBench {
		b := &WireBench{
			Modes:                append([]WirePoint(nil), modes...),
			SpanCodecNSPerFrame:  70000,
			FlateCodecNSPerFrame: 270000,
		}
		b.SpanCodecSpeedup = b.FlateCodecNSPerFrame / b.SpanCodecNSPerFrame
		return b
	}
	return mk(), mk()
}

func (b *WireBench) mode(name string) *WirePoint {
	for i := range b.Modes {
		if b.Modes[i].Mode == name {
			return &b.Modes[i]
		}
	}
	return nil
}

func wantViolation(t *testing.T, bad []string, substr string) {
	t.Helper()
	for _, m := range bad {
		if strings.Contains(m, substr) {
			return
		}
	}
	t.Errorf("no violation containing %q in %v", substr, bad)
}

func TestWireCheckPasses(t *testing.T) {
	base, cur := checkFixture()
	if bad := WireCheck(base, cur); len(bad) != 0 {
		t.Fatalf("clean fixture failed the gate: %v", bad)
	}
}

func TestWireCheckCatchesMismatch(t *testing.T) {
	base, cur := checkFixture()
	cur.mode("delta+span").Identical = false
	wantViolation(t, WireCheck(base, cur), "differ from the render")
}

func TestWireCheckCatchesByteRegression(t *testing.T) {
	base, cur := checkFixture()
	cur.mode("delta+span").BytesPerFrame *= 1.5
	wantViolation(t, WireCheck(base, cur), "bytes/frame")
}

func TestWireCheckCatchesEncodeRegression(t *testing.T) {
	base, cur := checkFixture()
	cur.mode("delta+flate").EncodeNSPerFrame *= 2.5
	wantViolation(t, WireCheck(base, cur), "encode ns/frame")
}

func TestWireCheckCatchesSpeedupFloor(t *testing.T) {
	base, cur := checkFixture()
	cur.SpanCodecNSPerFrame = cur.FlateCodecNSPerFrame / 2
	cur.SpanCodecSpeedup = 2.0
	wantViolation(t, WireCheck(base, cur), "paired codec stage")
}

func TestWireCheckCatchesByteShare(t *testing.T) {
	base, cur := checkFixture()
	// Span saves too little of flate's byte reduction below plain delta.
	cur.mode("delta+span").BytesPerFrame = 32000
	base.mode("delta+span").BytesPerFrame = 32000 // keep the drift check quiet
	wantViolation(t, WireCheck(base, cur), "byte reduction")
}

func TestWireCheckCatchesAdaptiveSlip(t *testing.T) {
	base, cur := checkFixture()
	cur.mode("delta+adaptive").EffectiveNSPerFrame = 2000000
	base.mode("delta+adaptive").EncodeNSPerFrame = 1000000 // keep the drift check quiet
	wantViolation(t, WireCheck(base, cur), "best static")
}

func TestWireCheckCatchesMissingMode(t *testing.T) {
	base, cur := checkFixture()
	cur.Modes = cur.Modes[:3] // drop delta+span and delta+adaptive
	wantViolation(t, WireCheck(base, cur), "missing from sweep")
}

func TestWireCheckMissingBaselineMode(t *testing.T) {
	base, cur := checkFixture()
	base.Modes = base.Modes[1:]
	wantViolation(t, WireCheck(base, cur), "missing from committed baseline")
}

// TestWireSweepSmoke runs the real sweep on a small render and checks
// the structural properties every emitted BENCH_wire.json must have:
// one row per mode, byte-identical reconstruction everywhere, the
// key/steady encode split populated, and the paired codec-stage
// measurement present with a positive ratio. A sweep that satisfies
// this and is fed back to WireCheck as its own baseline must pass the
// structural half of the gate (byte share, adaptive tracking).
func TestWireSweepSmoke(t *testing.T) {
	sc := farmScene(4)
	bench, err := WireSweep(sc, 64, 48, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Modes) != len(wireSweepModes) {
		t.Fatalf("%d mode rows, want %d", len(bench.Modes), len(wireSweepModes))
	}
	for _, pt := range bench.Modes {
		if !pt.Identical {
			t.Errorf("%s: reconstruction not byte-identical", pt.Mode)
		}
		if pt.Frames != 4 || pt.BytesTotal <= 0 || pt.EncodeNSPerFrame <= 0 {
			t.Errorf("%s: implausible row %+v", pt.Mode, pt)
		}
		if pt.KeyEncodeNS <= 0 || pt.SteadyEncodeNSPerFrame <= 0 {
			t.Errorf("%s: key/steady encode split not populated", pt.Mode)
		}
	}
	if span := bench.mode("delta+span"); span.FramesSpan == 0 {
		t.Error("delta+span row used no span payloads")
	}
	if flate := bench.mode("delta+flate"); flate.FramesCompressed == 0 {
		t.Error("delta+flate row used no flate payloads")
	}
	if bench.SpanCodecNSPerFrame <= 0 || bench.FlateCodecNSPerFrame <= 0 || bench.SpanCodecSpeedup <= 0 {
		t.Errorf("paired codec stage not measured: span %.0f flate %.0f ratio %.2f",
			bench.SpanCodecNSPerFrame, bench.FlateCodecNSPerFrame, bench.SpanCodecSpeedup)
	}
	// Self-baseline: drift checks are trivially clean, so what remains
	// is the byte-share invariant, which must hold on any real render.
	// The two timing criteria (speedup floor, adaptive effective cost)
	// are deliberately not asserted: a 4-frame toy render is too small
	// to time codecs or amortise adaptive probing meaningfully, and both
	// are owned by the benchtab gate at the committed workload size.
	for _, msg := range WireCheck(bench, bench) {
		if strings.Contains(msg, "paired codec stage") || strings.Contains(msg, "best static") {
			continue
		}
		t.Errorf("self-baseline violation: %s", msg)
	}
}
