package farm

import (
	"testing"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
	"nowrender/internal/trace"
)

// crashingWorker behaves like a normal worker for its first frame, then
// drops its connection without warning — a workstation going down
// mid-render.
func crashingWorker(name string, conn msg.Conn, sc *scene.Scene) {
	defer conn.Close()
	if err := conn.Send(msg.Message{Tag: TagHello, From: name, Data: []byte(name)}); err != nil {
		return
	}
	m, err := conn.Recv()
	if err != nil || m.Tag != TagTask {
		return
	}
	tm, err := decodeTask(m.Data)
	if err != nil {
		return
	}
	ft, err := trace.New(sc, tm.Task.StartFrame, trace.Options{})
	if err != nil {
		return
	}
	buf := fb.New(tm.W, tm.H)
	ft.RenderRegion(buf, tm.Task.Region)
	fd := frameDoneMsg{
		TaskID: tm.Task.ID, Frame: tm.Task.StartFrame, Region: tm.Task.Region,
		Pix: extractRegion(buf, tm.Task.Region), Rendered: tm.Task.Region.Area(),
	}
	_ = conn.Send(msg.Message{Tag: TagFrameDone, From: name, Data: encodeFrameDone(fd)})
	// ...and vanish.
}

func TestMasterSurvivesWorkerCrash(t *testing.T) {
	sc := farmScene(8)
	want := referenceFrames(t, sc)

	hub := msg.NewHub()
	// Two healthy workers plus one that crashes after a single frame.
	healthyDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		masterEnd, workerEnd := msg.Pipe(64)
		name := []string{"healthy0", "healthy1"}[i]
		if err := hub.Attach(name, masterEnd); err != nil {
			t.Fatal(err)
		}
		go func(n string, c msg.Conn) { healthyDone <- RunWorker(n, c, sc) }(name, workerEnd)
	}
	masterEnd, workerEnd := msg.Pipe(64)
	if err := hub.Attach("doomed", masterEnd); err != nil {
		t.Fatal(err)
	}
	go crashingWorker("doomed", workerEnd, sc)

	res, err := RunMaster(Config{
		Scene: sc, W: fw, H: fh, Coherence: false,
		Scheme: partition.SequenceDivision{Adaptive: true},
	}, hub)
	hub.Close()
	if err != nil {
		t.Fatalf("master did not survive the crash: %v", err)
	}
	assertFramesEqual(t, "crash-recovery", res.Frames, want)
	for i := 0; i < 2; i++ {
		select {
		case werr := <-healthyDone:
			if werr != nil {
				t.Errorf("healthy worker failed: %v", werr)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("healthy worker did not exit")
		}
	}
}

func TestMasterFailsWhenAllWorkersDie(t *testing.T) {
	sc := farmScene(4)
	hub := msg.NewHub()
	masterEnd, workerEnd := msg.Pipe(64)
	if err := hub.Attach("only", masterEnd); err != nil {
		t.Fatal(err)
	}
	go crashingWorker("only", workerEnd, sc)
	_, err := RunMaster(Config{
		Scene: sc, W: fw, H: fh,
		Scheme: partition.SequenceDivision{Adaptive: true},
	}, hub)
	hub.Close()
	if err == nil {
		t.Fatal("master succeeded with every worker dead")
	}
}

func TestMasterSurvivesCrashBeforeHello(t *testing.T) {
	sc := farmScene(4)
	want := referenceFrames(t, sc)
	hub := msg.NewHub()

	// One worker dies before saying hello.
	deadEnd, deadWorkerEnd := msg.Pipe(4)
	if err := hub.Attach("stillborn", deadEnd); err != nil {
		t.Fatal(err)
	}
	deadWorkerEnd.Close()

	masterEnd, workerEnd := msg.Pipe(64)
	if err := hub.Attach("survivor", masterEnd); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- RunWorker("survivor", workerEnd, sc) }()

	res, err := RunMaster(Config{Scene: sc, W: fw, H: fh, Coherence: true}, hub)
	hub.Close()
	if err != nil {
		t.Fatalf("master failed: %v", err)
	}
	assertFramesEqual(t, "stillborn", res.Frames, want)
	if werr := <-done; werr != nil {
		t.Errorf("survivor failed: %v", werr)
	}
}

// rogueWorker sends a malformed message stream to the master.
func TestMasterRejectsProtocolViolations(t *testing.T) {
	sc := farmScene(4)
	hub := msg.NewHub()
	masterEnd, workerEnd := msg.Pipe(8)
	if err := hub.Attach("rogue", masterEnd); err != nil {
		t.Fatal(err)
	}
	go func() {
		workerEnd.Send(msg.Message{Tag: TagHello, Data: []byte("rogue")})
		// Garbage tag after hello.
		workerEnd.Send(msg.Message{Tag: 9999})
	}()
	_, err := RunMaster(Config{Scene: sc, W: fw, H: fh}, hub)
	hub.Close()
	if err == nil {
		t.Fatal("master accepted an unknown message tag")
	}
}

func TestMasterRejectsCorruptFrameDone(t *testing.T) {
	sc := farmScene(4)
	hub := msg.NewHub()
	masterEnd, workerEnd := msg.Pipe(8)
	if err := hub.Attach("corrupt", masterEnd); err != nil {
		t.Fatal(err)
	}
	go func() {
		workerEnd.Send(msg.Message{Tag: TagHello, Data: []byte("corrupt")})
		if _, err := workerEnd.Recv(); err != nil { // task
			return
		}
		workerEnd.Send(msg.Message{Tag: TagFrameDone, Data: []byte{1, 2, 3}})
	}()
	_, err := RunMaster(Config{Scene: sc, W: fw, H: fh}, hub)
	hub.Close()
	if err == nil {
		t.Fatal("master accepted a corrupt frame-done payload")
	}
}

func TestMasterRequiresWorkers(t *testing.T) {
	sc := farmScene(2)
	hub := msg.NewHub()
	defer hub.Close()
	if _, err := RunMaster(Config{Scene: sc, W: fw, H: fh}, hub); err == nil {
		t.Fatal("master ran with zero workers")
	}
}
