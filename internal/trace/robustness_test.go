package trace

import (
	"math"
	"testing"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// randomScene builds a scene with randomly placed primitives of every
// kind and random (bounded) material parameters.
func randomScene(seed uint64) *scene.Scene {
	rng := vm.NewRNG(seed)
	s := scene.New("fuzz")
	s.Camera = scene.Camera{
		Pos:    vm.V(rng.InRange(-2, 2), rng.InRange(1, 4), rng.InRange(6, 10)),
		LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: rng.InRange(30, 80),
	}
	s.Background = vm.V(rng.Float64()*0.3, rng.Float64()*0.3, rng.Float64()*0.3)
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		c := vm.V(rng.InRange(-4, 4), rng.InRange(0.2, 3), rng.InRange(-4, 2))
		fin := material.Finish{
			Ambient: rng.Float64() * 0.2, Diffuse: rng.Float64(),
			Specular: rng.Float64(), Shininess: rng.InRange(1, 200),
			Reflect: rng.Float64() * 0.8, Transmit: rng.Float64() * 0.8,
			IOR: rng.InRange(1, 2),
		}
		mat := material.NewMaterial(material.Solid{C: vm.V(rng.Float64(), rng.Float64(), rng.Float64())}, fin)
		switch rng.Intn(6) {
		case 0:
			s.Add("s", geom.NewSphere(c, rng.InRange(0.2, 1)), mat, nil)
		case 1:
			s.Add("b", geom.NewBox(c, c.Add(vm.V(rng.InRange(0.2, 1), rng.InRange(0.2, 1), rng.InRange(0.2, 1)))), mat, nil)
		case 2:
			s.Add("c", geom.NewCylinder(c, c.Add(vm.V(0, rng.InRange(0.3, 1.5), 0)), rng.InRange(0.1, 0.5)), mat, nil)
		case 3:
			s.Add("k", geom.NewCone(c, rng.InRange(0.2, 0.8), c.Add(vm.V(0, rng.InRange(0.3, 1.5), 0)), rng.Float64()*0.3), mat, nil)
		case 4:
			xf := vm.NewTransform(vm.TranslateV(c))
			s.Add("t", geom.NewTransformed(geom.NewTorus(rng.InRange(0.3, 0.8), rng.InRange(0.05, 0.25)), xf), mat, nil)
		default:
			s.Add("d", geom.NewDisc(c, vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1)), rng.InRange(0.3, 1)), mat, nil)
		}
	}
	l := s.AddLight("key", vm.V(rng.InRange(-6, 6), rng.InRange(5, 10), rng.InRange(2, 8)), material.White)
	if rng.Intn(2) == 0 {
		l.Spot = &scene.Spotlight{PointAt: vm.V(0, 0, 0), Radius: rng.InRange(10, 30), Falloff: rng.InRange(31, 60)}
	}
	if rng.Intn(2) == 0 {
		l.FadeDistance = rng.InRange(3, 15)
		l.FadePower = rng.InRange(1, 3)
	}
	return s
}

// Property: over random scenes with every primitive and material class,
// every traced pixel is finite and non-negative — no NaN leaks from any
// intersection or shading path.
func TestFuzzShadingFiniteAndNonNegative(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		s := randomScene(seed)
		ft, err := New(s, 0, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for y := 0; y < 24; y++ {
			for x := 0; x < 32; x++ {
				c := ft.TracePixel(x, y, 32, 24)
				if !c.IsFinite() {
					t.Fatalf("seed %d pixel (%d,%d): non-finite colour %v", seed, x, y, c)
				}
				if c.X < 0 || c.Y < 0 || c.Z < 0 {
					t.Fatalf("seed %d pixel (%d,%d): negative colour %v", seed, x, y, c)
				}
			}
		}
	}
}

// Property: grid-accelerated intersection agrees with brute force on
// random scenes including tori and transformed shapes.
func TestFuzzGridIntersectAgreesBruteForce(t *testing.T) {
	for seed := uint64(30); seed <= 36; seed++ {
		s := randomScene(seed)
		ft, err := New(s, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		objs := ft.Objects()
		rng := vm.NewRNG(seed * 977)
		for trial := 0; trial < 400; trial++ {
			o := vm.V(rng.InRange(-6, 6), rng.InRange(-1, 6), rng.InRange(-6, 10))
			d := vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1))
			if d.Len() < 0.05 {
				continue
			}
			r := vm.Ray{Origin: o, Dir: d.Norm()}
			bestT := math.Inf(1)
			hitAny := false
			for _, ro := range objs {
				if h, ok := ro.Shape.Intersect(r, vm.ShadowEps, bestT); ok {
					bestT = h.T
					hitAny = true
				}
			}
			h, _, ok := ft.Intersect(r, vm.ShadowEps, math.Inf(1))
			if ok != hitAny {
				t.Fatalf("seed %d trial %d: grid=%v brute=%v for %+v", seed, trial, ok, hitAny, r)
			}
			if ok && math.Abs(h.T-bestT) > 1e-6 {
				t.Fatalf("seed %d trial %d: T grid=%v brute=%v", seed, trial, h.T, bestT)
			}
		}
	}
}
