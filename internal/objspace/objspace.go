// Package objspace implements object-space data parallelism: the scene's
// uniform acceleration grid (internal/grid) is partitioned into contiguous
// spatial slabs — shards — owned by different workers, and rays are
// forwarded between shard owners instead of replicating the whole scene
// everywhere (after "Data Parallel Path Tracing in Object Space", Wald &
// Parker; ROADMAP item 3).
//
// # Partition
//
// A frame's full grid is built exactly as trace.New builds it (same
// bounds, same resolution heuristic), then its voxel index space is split
// into Shards contiguous slabs balanced by geometry mass (see
// MakePartition). Slab boundaries lie on voxel planes and
// are computed with the same float arithmetic the grid itself uses, so
// every party — local router, remote owners, the sharded coherence
// engine — agrees bit-exactly on where one shard ends and the next
// begins.
//
// Each shard holds only the geometry overlapping its slab: whole objects
// whose bounds overlap, and for large triangle meshes a clipped sub-mesh
// keeping just the triangles whose bounds overlap the slab — which is
// what makes per-shard resident scene size genuinely shrink as the shard
// count grows. Unbounded primitives (planes) are replicated on the frame
// owner and tested once per ray, exactly as the replicated tracer's
// unbounded list is.
//
// # Ray routing and termination
//
// A ray visits shards front-to-back along the partition axis. A shard
// walks its own sub-grid (3D-DDA with per-shard mailboxes) carrying the
// running nearest hit; when the walk leaves the slab without settling the
// ray — no hit yet, or the best hit lies beyond the slab exit — the full
// ray state (origin, direction, kind, depth, pixel id, t-range,
// throughput, and the best-hit-so-far) is serialized through the
// forwarding codec and handed to the next shard owner. The ray terminates
// at the first shard whose exit parameter the running best hit does not
// exceed: geometry in later slabs can only produce farther hits, because
// any object able to hit earlier overlaps an earlier slab and was already
// tested there. The final state routes to the frame owner, which shades
// and recurses locally — secondary and shadow rays re-enter the same
// routing, so no separate shadow protocol exists.
//
// Every hop is serialized through the codec even in-process (floats
// round-trip bit-exactly via IEEE-754 bits), so forwarded-ray and
// forwarding-byte counts are honest measurements of what a distributed
// deployment would ship, and the wire format is exercised by every
// render. The correctness invariant, pinned by golden tests: sharded
// rendering is byte-identical to the replicated path at every shard
// count.
package objspace

import (
	"fmt"
	"sort"

	"nowrender/internal/geom"
	"nowrender/internal/grid"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

// MaxShards bounds the shard counts accepted from flags and off the
// wire. Slab partitions thinner than this stop paying off long before.
const MaxShards = 64

// Options configure a cluster build.
type Options struct {
	// Shards is the slab count; values < 2 are rejected (a 1-shard
	// cluster is the replicated path — render without objspace instead).
	Shards int
	// Stats, when non-nil, accumulates forwarding counters and resident
	// sizes across every frame cluster built with it (the farm worker
	// keeps one per task).
	Stats *Stats
}

// Partition is the slab decomposition of one grid's voxel index space:
// the split axis and the voxel-plane cut positions. It is tiny and
// shared verbatim by every party routing rays.
type Partition struct {
	Bounds vm.AABB
	// Axis is the split axis (0 = X, 1 = Y, 2 = Z); Cell the full grid's
	// voxel edge length along it.
	Axis int
	Cell float64
	// Slabs holds each shard's [v0, v1) voxel range along Axis.
	Slabs [][2]int
	// dims is the full grid's voxel counts; shard sub-grids reuse the
	// non-axis counts so traversal density matches the replicated grid.
	dims [3]int
}

// MakePartition splits a grid's voxel index space into shards contiguous
// slabs, balanced by geometry mass rather than raw voxel count: each
// bounded object spreads its triangle count (1 for analytic primitives)
// uniformly over the voxel range it overlaps, the split axis is the one
// whose histogram spreads geometry across the most voxel planes (ties
// broken toward more voxels, then the longer extent, then the lower
// index), and the cuts are the equal-mass quantiles of that histogram.
// Mass balancing is what makes per-shard resident size actually shrink
// with the shard count — the frame bounds include the camera and lights,
// so equal-voxel slabs can leave whole shards empty. Deterministic: every
// party derives the same partition from the same frame.
func MakePartition(g *grid.Grid, shards int, objs []scene.ResolvedObject) Partition {
	nx, ny, nz := g.Dims()
	dims := [3]int{nx, ny, nz}
	var hist [3][]float64
	for a := 0; a < 3; a++ {
		hist[a] = make([]float64, dims[a])
	}
	for i := range objs {
		ro := &objs[i]
		if ro.Bounds.Size().MaxComponent() >= hugeExtent {
			continue
		}
		lo, hi, ok := g.VoxelRange(ro.Bounds)
		if !ok {
			continue
		}
		w := 1.0
		if m, isMesh := ro.Shape.(*geom.Mesh); isMesh {
			w = float64(len(m.Tris))
		}
		for a := 0; a < 3; a++ {
			per := w / float64(hi[a]-lo[a]+1)
			for v := lo[a]; v <= hi[a]; v++ {
				hist[a][v] += per
			}
		}
	}
	size := g.Bounds().Size()
	spread := func(a int) int {
		n := 0
		for _, x := range hist[a] {
			if x > 0 {
				n++
			}
		}
		return n
	}
	axis := 0
	for a := 1; a < 3; a++ {
		sa, sx := spread(a), spread(axis)
		if sa > sx ||
			(sa == sx && dims[a] > dims[axis]) ||
			(sa == sx && dims[a] == dims[axis] && size.Axis(a) > size.Axis(axis)) {
			axis = a
		}
	}
	if shards > dims[axis] {
		shards = dims[axis]
	}
	if shards < 1 {
		shards = 1
	}
	return Partition{
		Bounds: g.Bounds(),
		Axis:   axis,
		Cell:   g.CellSize().Axis(axis),
		Slabs:  weightedCuts(hist[axis], shards),
		dims:   dims,
	}
}

// weightedCuts splits voxel range [0, n) into k contiguous slabs of
// approximately equal cumulative weight: cut i lands on the smallest
// voxel plane where the running sum reaches the i-th k-quantile, clamped
// so every slab keeps at least one voxel. Zero total weight degenerates
// to the equal-count split.
func weightedCuts(w []float64, k int) [][2]int {
	n := len(w)
	cum := make([]float64, n+1)
	for i, x := range w {
		cum[i+1] = cum[i] + x
	}
	if cum[n] <= 0 {
		return partition.ShardMap{Start: 0, End: n, N: k}.Ranges()
	}
	// Cuts are confined to the occupied voxel span: leading and trailing
	// empty planes (camera/light padding in the frame bounds) attach to
	// the first and last slab instead of becoming geometry-free shards.
	occLo, occHi := 0, n // occupied span [occLo, occHi)
	for occLo < n && w[occLo] <= 0 {
		occLo++
	}
	for occHi > occLo && w[occHi-1] <= 0 {
		occHi--
	}
	if occHi-occLo < k {
		// Occupied span too thin to give every shard a voxel: use the
		// whole range.
		occLo, occHi = 0, n
	}
	cuts := make([]int, k+1)
	cuts[k] = n
	for i := 1; i < k; i++ {
		target := cum[n] * float64(i) / float64(k)
		v := sort.Search(n+1, func(j int) bool { return cum[j] >= target })
		if lo := max(cuts[i-1]+1, occLo+i); v < lo {
			v = lo
		}
		if hi := occHi - (k - i); v > hi {
			v = hi
		}
		cuts[i] = v
	}
	out := make([][2]int, k)
	for i := 0; i < k; i++ {
		out[i] = [2]int{cuts[i], cuts[i+1]}
	}
	return out
}

// Shards returns the partition's slab count.
func (p *Partition) Shards() int { return len(p.Slabs) }

// SlabBounds returns shard i's spatial slab: the full bounds with the
// partition axis clamped to the slab's voxel planes. Interior planes are
// computed as Min + k*cell — the exact arithmetic grid.VoxelBounds uses —
// and the outermost faces reuse the full bounds' own values, so adjacent
// slabs share boundary coordinates bit-exactly.
func (p *Partition) SlabBounds(i int) vm.AABB {
	b := p.Bounds
	v0, v1 := p.Slabs[i][0], p.Slabs[i][1]
	min, max := b.Min, b.Max
	if v0 > 0 {
		min = min.SetAxis(p.Axis, b.Min.Axis(p.Axis)+float64(v0)*p.Cell)
	}
	if last := p.Slabs[len(p.Slabs)-1][1]; v1 < last {
		max = max.SetAxis(p.Axis, b.Min.Axis(p.Axis)+float64(v1)*p.Cell)
	}
	return vm.AABB{Min: min, Max: max}
}

// ShardOf returns the shard owning coordinate x along the partition
// axis, clamped to the partition (points on an interior boundary belong
// to the higher shard, matching the DDA's half-open voxels).
func (p *Partition) ShardOf(x float64) int {
	rel := (x - p.Bounds.Min.Axis(p.Axis)) / p.Cell
	v := int(rel)
	for i, s := range p.Slabs {
		if v < s[1] {
			return i
		}
	}
	return len(p.Slabs) - 1
}

// Cluster is one frame's sharded scene: the partition, the per-shard
// geometry and sub-grids, and the frame owner's view (camera, shading
// parameters, and the global object table rays resolve against). Build
// once per frame; everything is read-only afterwards, so any number of
// workers (from NewWorker) may route rays concurrently.
type Cluster struct {
	view  *trace.FrameTracer
	part  Partition
	shard []*Shard
	// objs is the frame owner's global object table (materials and, for
	// unbounded primitives, shapes); unbounded lists the plane-like
	// object ids tested once per ray, in the replicated tracer's order.
	objs      []scene.ResolvedObject
	unbounded []int32
	stats     *Stats
}

// Build constructs the sharded scene for one frame. Grid bounds and
// resolution replicate trace.New's choices exactly, so the partition is
// a pure re-labelling of the replicated grid's voxel space.
func Build(sc *scene.Scene, frame int, topts trace.Options, o Options) (*Cluster, error) {
	if o.Shards < 2 || o.Shards > MaxShards {
		return nil, fmt.Errorf("objspace: shard count %d outside [2,%d]", o.Shards, MaxShards)
	}
	view, err := trace.NewView(sc, frame, topts)
	if err != nil {
		return nil, err
	}
	objs := sc.ResolveFrame(frame)
	bounds := sc.BoundsAt(frame)
	var nx, ny, nz int
	if topts.GridRes > 0 {
		nx, ny, nz = topts.GridRes, topts.GridRes, topts.GridRes
	} else {
		nx, ny, nz = grid.AutoResolution(bounds, len(objs))
	}
	full, err := grid.New(bounds, nx, ny, nz)
	if err != nil {
		return nil, fmt.Errorf("objspace: %w", err)
	}
	c := &Cluster{
		view:  view,
		part:  MakePartition(full, o.Shards, objs),
		objs:  objs,
		stats: o.Stats,
	}
	for i, ro := range objs {
		if ro.Bounds.Size().MaxComponent() >= hugeExtent {
			c.unbounded = append(c.unbounded, int32(i))
		}
	}
	c.shard = make([]*Shard, c.part.Shards())
	for i := range c.shard {
		s, err := buildShard(&c.part, i, objs)
		if err != nil {
			return nil, err
		}
		c.shard[i] = s
	}
	if c.stats != nil {
		c.stats.observeBuild(c)
	}
	return c, nil
}

// ReplicatedResident reports the replicated (single-copy) scene's
// resident size for one frame under the same accounting the shard
// builder uses: the shards=1 baseline the object-space bench compares
// per-shard residents against. It is computed by building a one-slab
// partition over the full frame grid, so mesh handling, grid-structure
// accounting, and unbounded-object exclusion match the sharded rows
// exactly.
func ReplicatedResident(sc *scene.Scene, frame int, topts trace.Options) (uint64, error) {
	objs := sc.ResolveFrame(frame)
	bounds := sc.BoundsAt(frame)
	var nx, ny, nz int
	if topts.GridRes > 0 {
		nx, ny, nz = topts.GridRes, topts.GridRes, topts.GridRes
	} else {
		nx, ny, nz = grid.AutoResolution(bounds, len(objs))
	}
	full, err := grid.New(bounds, nx, ny, nz)
	if err != nil {
		return 0, fmt.Errorf("objspace: %w", err)
	}
	part := MakePartition(full, 1, objs)
	s, err := buildShard(&part, 0, objs)
	if err != nil {
		return 0, err
	}
	return s.ResidentBytes, nil
}

// Tracer returns the frame owner's view (camera and shading parameters;
// no geometry). Read-only after Build.
func (c *Cluster) Tracer() *trace.FrameTracer { return c.view }

// Partition returns the cluster's slab decomposition.
func (c *Cluster) Partition() *Partition { return &c.part }

// Shard returns shard i (tests and the remote owners use this).
func (c *Cluster) Shard(i int) *Shard { return c.shard[i] }

// NewWorker returns a rendering worker whose every intersection routes
// through the cluster's shards with per-hop serialization. One worker
// per goroutine, as with trace.NewWorker.
func (c *Cluster) NewWorker(obs trace.RayObserver) *trace.Worker {
	return c.view.NewWorkerWith(obs, c.newRouter())
}
