// Newton renders the paper's §4 workload — the Newton's-cradle animation
// (one plane, five chrome spheres, sixteen cylinders) — in three ways:
//
//  1. a single frame (default 22, reproducing Figure 5),
//
//  2. the whole animation on one processor with frame coherence,
//     printing the per-frame render/copy economy,
//
//  3. the whole animation on the virtual 3-workstation NOW with frame
//     division, printing the parallel statistics.
//
//     go run ./examples/newton -frame 22 -out out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nowrender"
)

func main() {
	var (
		frame  = flag.Int("frame", 22, "frame for the single-frame render (Figure 5)")
		frames = flag.Int("frames", 45, "animation length")
		width  = flag.Int("w", 240, "width")
		height = flag.Int("h", 320, "height")
		outDir = flag.String("out", "newton-out", "output directory")
		anim   = flag.Bool("anim", false, "render the full animation too (slower)")
	)
	flag.Parse()
	if err := run(*frame, *frames, *width, *height, *outDir, *anim); err != nil {
		log.Fatal(err)
	}
}

func run(frame, frames, w, h int, outDir string, anim bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	sc := nowrender.NewtonScene(frames)

	// 1. Figure 5: a single frame.
	img, err := nowrender.RenderFrame(sc, frame, w, h)
	if err != nil {
		return err
	}
	name := filepath.Join(outDir, fmt.Sprintf("fig5-frame%02d.tga", frame))
	if err := nowrender.WriteTGA(name, img); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%dx%d)\n", name, w, h)
	if !anim {
		fmt.Println("run with -anim to render the full animation")
		return nil
	}

	// 2. Single processor with frame coherence.
	fmt.Printf("\nrendering %d frames with frame coherence (single processor)...\n", frames)
	rendered, copied := 0, 0
	eng, err := nowrender.NewCoherenceEngine(sc, w, h,
		nowrender.NewRect(0, 0, w, h), 0, frames, nowrender.CoherenceOptions{})
	if err != nil {
		return err
	}
	for f := 0; f < frames; f++ {
		buf := nowrender.NewFramebuffer(w, h)
		rep, err := eng.RenderFrame(f, buf)
		if err != nil {
			return err
		}
		rendered += rep.Rendered
		copied += rep.Copied
		if err := nowrender.WriteTGA(
			filepath.Join(outDir, fmt.Sprintf("frame%04d.tga", f)), buf); err != nil {
			return err
		}
	}
	total := rendered + copied
	fmt.Printf("pixels traced: %d of %d (%.0f%% copied from previous frames)\n",
		rendered, total, 100*float64(copied)/float64(total))

	// 3. The virtual NOW with frame division.
	fmt.Println("\nrendering on the virtual 3-workstation NOW (frame division + FC)...")
	res, err := nowrender.RenderFarmVirtual(nowrender.FarmConfig{
		Scene: sc, W: w, H: h, Coherence: true,
		Scheme: nowrender.FrameDivision{BlockW: 80, BlockH: 80, Adaptive: true},
	})
	if err != nil {
		return err
	}
	fmt.Printf("virtual makespan: %v over %d tasks (%d adaptive splits)\n",
		res.Makespan, res.TasksExecuted, res.Subdivisions)
	for _, ws := range res.Workers {
		fmt.Printf("  %-12s pixels=%-8d busy=%v\n", ws.Worker, ws.PixelsDone, ws.Busy)
	}
	return nil
}
