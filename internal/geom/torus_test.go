package geom

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

func TestTorusAxisRayMisses(t *testing.T) {
	to := NewTorus(2, 0.5)
	// Straight down the axis through the hole.
	r := vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}
	if _, ok := to.Intersect(r, 0, inf); ok {
		t.Error("axis ray hit the torus (should pass through the hole)")
	}
}

func TestTorusEquatorialHit(t *testing.T) {
	to := NewTorus(2, 0.5)
	// Along +X through the tube: enters at x=-2.5.
	r := vm.Ray{Origin: vm.V(-5, 0, 0), Dir: vm.V(1, 0, 0)}
	h, ok := to.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed torus")
	}
	if math.Abs(h.T-2.5) > 1e-6 {
		t.Errorf("T = %v, want 2.5", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(-1, 0, 0), 1e-6) {
		t.Errorf("normal = %v", h.Normal)
	}
}

func TestTorusTopHit(t *testing.T) {
	to := NewTorus(2, 0.5)
	// Straight down onto the top of the tube at x=2.
	r := vm.Ray{Origin: vm.V(2, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := to.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed tube top")
	}
	if math.Abs(h.Point.Y-0.5) > 1e-6 {
		t.Errorf("hit y = %v, want 0.5", h.Point.Y)
	}
	if !h.Normal.ApproxEq(vm.V(0, 1, 0), 1e-6) {
		t.Errorf("normal = %v", h.Normal)
	}
}

func TestTorusHolePassThrough(t *testing.T) {
	to := NewTorus(2, 0.5)
	// Offset from the axis but still inside the hole radius (R-r = 1.5).
	r := vm.Ray{Origin: vm.V(1.0, 5, 0), Dir: vm.V(0, -1, 0)}
	if _, ok := to.Intersect(r, 0, inf); ok {
		t.Error("ray through the hole hit the torus")
	}
}

func TestTorusInsideTube(t *testing.T) {
	to := NewTorus(2, 0.5)
	// Start inside the tube at (2,0,0).
	r := vm.Ray{Origin: vm.V(2, 0, 0), Dir: vm.V(1, 0, 0)}
	h, ok := to.Intersect(r, 1e-9, inf)
	if !ok {
		t.Fatal("missed from inside tube")
	}
	if !h.Inside {
		t.Error("inside hit not flagged")
	}
	if math.Abs(h.T-0.5) > 1e-6 {
		t.Errorf("T = %v, want 0.5", h.T)
	}
}

func TestTorusHitPointsOnSurface(t *testing.T) {
	to := NewTorus(1.5, 0.4)
	surface := func(p vm.Vec3) float64 {
		ring := math.Hypot(p.X, p.Z)
		return math.Hypot(ring-to.Major, p.Y) - to.Minor
	}
	rng := vm.NewRNG(31)
	hits := 0
	for i := 0; i < 2000; i++ {
		o := vm.V(rng.InRange(-4, 4), rng.InRange(-3, 3), rng.InRange(-4, 4))
		d := vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1))
		if d.Len() < 0.1 {
			continue
		}
		h, ok := to.Intersect(vm.Ray{Origin: o, Dir: d.Norm()}, 1e-9, inf)
		if !ok {
			continue
		}
		hits++
		if sd := surface(h.Point); math.Abs(sd) > 1e-5 {
			t.Fatalf("hit point %v off surface by %v", h.Point, sd)
		}
		if h.Normal.Dot(d.Norm()) > 1e-9 {
			t.Fatalf("normal faces along the ray at %v", h.Point)
		}
	}
	if hits < 100 {
		t.Errorf("only %d hits in 2000 rays; sampling broken?", hits)
	}
}

func TestTorusBounds(t *testing.T) {
	to := NewTorus(2, 0.5)
	b := to.Bounds()
	want := vm.NewAABB(vm.V(-2.5, -0.5, -2.5), vm.V(2.5, 0.5, 2.5))
	if b != want {
		t.Errorf("bounds = %v", b)
	}
}

func TestTorusTransformed(t *testing.T) {
	// A torus stood upright (rotated 90° about X) and translated.
	to := NewTorus(1, 0.25)
	xf := vm.NewTransform(vm.Translate(0, 2, 0).MulM(vm.RotateX(math.Pi / 2)))
	tw := NewTransformed(to, xf)
	// The ring now lies in the XY plane at height 2: a ray along +Z
	// through (1, 2) hits the tube.
	r := vm.Ray{Origin: vm.V(1, 2, -5), Dir: vm.V(0, 0, 1)}
	h, ok := tw.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed transformed torus")
	}
	if math.Abs(h.T-4.75) > 1e-6 {
		t.Errorf("T = %v, want 4.75", h.T)
	}
}

func TestTorusOverlapsBox(t *testing.T) {
	to := NewTorus(2, 0.5)
	if !to.OverlapsBox(vm.NewAABB(vm.V(1.8, -0.2, -0.2), vm.V(2.2, 0.2, 0.2))) {
		t.Error("box on tube not overlapping")
	}
	if to.OverlapsBox(vm.NewAABB(vm.V(-0.3, -0.3, -0.3), vm.V(0.3, 0.3, 0.3))) {
		t.Error("box in hole centre overlapping")
	}
}
