// Package grid implements uniform spatial subdivision of the scene
// volume into voxels, with 3D-DDA ray traversal (Amanatides & Woo). The
// paper's frame-coherence algorithm (§2) is built on exactly this
// structure: rays are walked through the voxels they traverse, pixels are
// registered on those voxels, and object motion marks voxels changed.
//
// The grid is deliberately decoupled from the scene: it stores opaque
// int32 item IDs against per-voxel lists, so the same structure serves as
// both the tracer's acceleration structure (items = object indices) and
// the coherence engine's change map.
package grid

import (
	"fmt"
	"math"

	vm "nowrender/internal/vecmath"
)

// Grid is a uniform voxel grid over an axis-aligned region.
type Grid struct {
	bounds     vm.AABB
	nx, ny, nz int
	cellSize   vm.Vec3
	invCell    vm.Vec3
	// cells holds the item list of each voxel, indexed by Index().
	cells [][]int32
}

// New creates a grid over bounds with the given per-axis voxel counts.
// Counts are clamped to at least 1. Bounds must be non-empty.
func New(bounds vm.AABB, nx, ny, nz int) (*Grid, error) {
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("grid: empty bounds")
	}
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if nz < 1 {
		nz = 1
	}
	size := bounds.Size()
	cell := vm.V(size.X/float64(nx), size.Y/float64(ny), size.Z/float64(nz))
	// Guard degenerate flat scenes: ensure cells have positive extent.
	const minCell = 1e-12
	if cell.X < minCell {
		cell.X = minCell
	}
	if cell.Y < minCell {
		cell.Y = minCell
	}
	if cell.Z < minCell {
		cell.Z = minCell
	}
	return &Grid{
		bounds: bounds,
		nx:     nx, ny: ny, nz: nz,
		cellSize: cell,
		invCell:  vm.V(1/cell.X, 1/cell.Y, 1/cell.Z),
		cells:    make([][]int32, nx*ny*nz),
	}, nil
}

// AutoResolution picks a per-axis voxel count for n items in bounds using
// the classic n^(1/3) * density heuristic POV-Ray-era tracers used.
// The result is clamped to [1, 64] per axis.
func AutoResolution(bounds vm.AABB, n int) (int, int, int) {
	if n < 1 {
		n = 1
	}
	target := math.Cbrt(float64(n)) * 3
	k := int(math.Max(1, math.Min(64, math.Round(target))))
	// Scale axes by relative extent so long thin scenes get long thin
	// grids.
	size := bounds.Size()
	maxExt := math.Max(size.X, math.Max(size.Y, size.Z))
	if maxExt <= 0 {
		return 1, 1, 1
	}
	scale := func(ext float64) int {
		v := int(math.Round(float64(k) * ext / maxExt))
		if v < 1 {
			return 1
		}
		return v
	}
	return scale(size.X), scale(size.Y), scale(size.Z)
}

// Bounds returns the grid region.
func (g *Grid) Bounds() vm.AABB { return g.bounds }

// Dims returns the per-axis voxel counts.
func (g *Grid) Dims() (nx, ny, nz int) { return g.nx, g.ny, g.nz }

// NumVoxels returns the total voxel count.
func (g *Grid) NumVoxels() int { return g.nx * g.ny * g.nz }

// CellSize returns the voxel extent.
func (g *Grid) CellSize() vm.Vec3 { return g.cellSize }

// Index flattens voxel coordinates into a cell index. Coordinates must be
// in range.
func (g *Grid) Index(ix, iy, iz int) int {
	return (iz*g.ny+iy)*g.nx + ix
}

// Coords unflattens a cell index.
func (g *Grid) Coords(idx int) (ix, iy, iz int) {
	ix = idx % g.nx
	iy = (idx / g.nx) % g.ny
	iz = idx / (g.nx * g.ny)
	return
}

// VoxelOf returns the voxel containing point p, clamped to the grid when
// p lies on the boundary; ok is false when p is outside the grid.
func (g *Grid) VoxelOf(p vm.Vec3) (ix, iy, iz int, ok bool) {
	if !g.bounds.Contains(p) {
		return 0, 0, 0, false
	}
	rel := p.Sub(g.bounds.Min)
	ix = clampInt(int(rel.X*g.invCell.X), 0, g.nx-1)
	iy = clampInt(int(rel.Y*g.invCell.Y), 0, g.ny-1)
	iz = clampInt(int(rel.Z*g.invCell.Z), 0, g.nz-1)
	return ix, iy, iz, true
}

// VoxelBounds returns the world-space box of a voxel.
func (g *Grid) VoxelBounds(ix, iy, iz int) vm.AABB {
	min := g.bounds.Min.Add(vm.V(
		float64(ix)*g.cellSize.X,
		float64(iy)*g.cellSize.Y,
		float64(iz)*g.cellSize.Z,
	))
	return vm.AABB{Min: min, Max: min.Add(g.cellSize)}
}

// Insert registers item id in every voxel overlapping box b (clipped to
// the grid).
func (g *Grid) Insert(id int32, b vm.AABB) {
	lo, hi, ok := g.voxelRange(b)
	if !ok {
		return
	}
	for iz := lo[2]; iz <= hi[2]; iz++ {
		for iy := lo[1]; iy <= hi[1]; iy++ {
			for ix := lo[0]; ix <= hi[0]; ix++ {
				c := g.Index(ix, iy, iz)
				g.cells[c] = append(g.cells[c], id)
			}
		}
	}
}

// Items returns the item list of a voxel by flat index. The returned
// slice is owned by the grid and must not be mutated.
func (g *Grid) Items(idx int) []int32 { return g.cells[idx] }

// VoxelsOverlapping calls visit for every voxel index whose box overlaps
// b. Used by the coherence engine to mark changed voxels from an object's
// swept bounds.
func (g *Grid) VoxelsOverlapping(b vm.AABB, visit func(idx int)) {
	lo, hi, ok := g.voxelRange(b)
	if !ok {
		return
	}
	for iz := lo[2]; iz <= hi[2]; iz++ {
		for iy := lo[1]; iy <= hi[1]; iy++ {
			for ix := lo[0]; ix <= hi[0]; ix++ {
				visit(g.Index(ix, iy, iz))
			}
		}
	}
}

// VoxelRange clips box b to the grid and returns inclusive voxel
// coordinate ranges; ok is false when b misses the grid entirely. The
// object-space partition uses this to histogram geometry along an axis.
func (g *Grid) VoxelRange(b vm.AABB) (lo, hi [3]int, ok bool) {
	return g.voxelRange(b)
}

// voxelRange clips box b to the grid and returns inclusive voxel
// coordinate ranges.
func (g *Grid) voxelRange(b vm.AABB) (lo, hi [3]int, ok bool) {
	if !g.bounds.Overlaps(b) {
		return lo, hi, false
	}
	min := b.Min.Max(g.bounds.Min).Sub(g.bounds.Min)
	max := b.Max.Min(g.bounds.Max).Sub(g.bounds.Min)
	for a := 0; a < 3; a++ {
		n := []int{g.nx, g.ny, g.nz}[a]
		inv := g.invCell.Axis(a)
		lo[a] = clampInt(int(min.Axis(a)*inv), 0, n-1)
		hi[a] = clampInt(int(max.Axis(a)*inv), 0, n-1)
	}
	return lo, hi, true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
