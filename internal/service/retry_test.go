package service

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nowrender/internal/farm"
	"nowrender/internal/faulty"
)

// --- job retry over farm failures ----------------------------------------

// TestJobRetryResumesPartialProgress: every local worker's connection
// severs on its second frame delivery, so the first attempt collapses
// with only part of the animation rendered. The retry must re-render
// only the missing frames (the delivered ones stay on the job and in the
// cache) and complete — with pixels identical to a fault-free service.
func TestJobRetryResumesPartialProgress(t *testing.T) {
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: farm.TagFrameDone, Dir: faulty.SendOnly, After: 2, Action: faulty.Sever}},
	}
	s := New(Config{FaultWrap: plan.Wrap})
	defer s.Close()

	st, err := s.Submit(JobSpec{
		Scene: "newton:6", W: 40, H: 32, Driver: "local",
		Scheme: "seqdiv-static", Retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (first attempt should have failed)", st.Attempts)
	}
	if st.FramesDone != 6 {
		t.Fatalf("frames done = %d, want 6", st.FramesDone)
	}
	if st.WorkersLost == 0 {
		t.Error("status reports no workers lost despite severed connections")
	}

	// The recovered animation is byte-identical to a fault-free render.
	clean := New(Config{})
	defer clean.Close()
	ref, err := clean.Submit(JobSpec{Scene: "newton:6", W: 40, H: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ref = waitDone(t, clean, ref.ID); ref.State != StateDone {
		t.Fatalf("reference job: %s (%s)", ref.State, ref.Error)
	}
	for f := 0; f < 6; f++ {
		got, err1 := s.Frame(st.ID, f)
		want, err2 := clean.Frame(ref.ID, f)
		if err1 != nil || err2 != nil {
			t.Fatalf("frame %d: %v / %v", f, err1, err2)
		}
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("frame %d differs from fault-free render", f)
		}
	}

	// The retry and fault counters surface in /metrics.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"nowrender_job_retries_total",
		`nowrender_fault_events_total{kind="workers_lost"}`,
		`nowrender_fault_events_total{kind="frames_requeued"}`,
		"nowrender_cache_expired_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "nowrender_job_retries_total 1") &&
		!strings.Contains(metrics, "nowrender_job_retries_total 2") &&
		!strings.Contains(metrics, "nowrender_job_retries_total 3") {
		t.Errorf("job retry counter not incremented:\n%s", metrics)
	}
}

// TestJobRetryHitsCacheWarmedByPeer: a job whose every local attempt is
// doomed retries while a healthy virtual-driver job renders the same
// animation; the retry is then served entirely from the shared
// content-addressed cache and succeeds without its farm ever working.
func TestJobRetryHitsCacheWarmedByPeer(t *testing.T) {
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: farm.TagFrameDone, Dir: faulty.SendOnly, After: 1, Action: faulty.Sever}},
	}
	s := New(Config{FaultWrap: plan.Wrap})
	defer s.Close()

	doomed, err := s.Submit(JobSpec{
		Scene: "newton:3", W: 32, H: 24, Driver: "local",
		Scheme: "seqdiv-static", Retries: 2, RetryBackoffMS: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail before warming the cache, or the
	// doomed job could be served from it on attempt one and never retry.
	events, _, err := s.subscribe(doomed.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
waitRetry:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("doomed job terminated before its first retry")
			}
			if ev.Type == "retrying" {
				break waitRetry
			}
		case <-deadline:
			t.Fatal("no retrying event within 30s")
		}
	}
	s.unsubscribe(doomed.ID, events)
	// Same scene and resolution, healthy driver: fills the cache while the
	// doomed job sits out its backoff.
	peer, err := s.Submit(JobSpec{Scene: "newton:3", W: 32, H: 24, Driver: "virtual"})
	if err != nil {
		t.Fatal(err)
	}
	if p := waitDone(t, s, peer.ID); p.State != StateDone {
		t.Fatalf("peer job: %s (%s)", p.State, p.Error)
	}

	st := waitDone(t, s, doomed.ID)
	if st.State != StateDone {
		t.Fatalf("retried job state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if st.CacheHits != 3 {
		t.Errorf("cache hits = %d, want 3 (every frame from the peer's render)", st.CacheHits)
	}
	if st.RaysTraced != 0 {
		t.Errorf("retried job traced %d rays, want 0", st.RaysTraced)
	}
	for f := 0; f < 3; f++ {
		got, err1 := s.Frame(st.ID, f)
		want, err2 := s.Frame(peer.ID, f)
		if err1 != nil || err2 != nil {
			t.Fatalf("frame %d: %v / %v", f, err1, err2)
		}
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("frame %d differs between cached retry and peer render", f)
		}
	}
}

// TestJobRetryBudgetExhausted: with no retries left the failure is
// terminal and surfaced, not retried forever.
func TestJobRetryBudgetExhausted(t *testing.T) {
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: farm.TagFrameDone, Dir: faulty.SendOnly, After: 1, Action: faulty.Sever}},
	}
	s := New(Config{FaultWrap: plan.Wrap})
	defer s.Close()
	st, err := s.Submit(JobSpec{
		Scene: "newton:2", W: 32, H: 24, Driver: "local",
		Scheme: "seqdiv-static", Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one retry)", st.Attempts)
	}
	if st.Error == "" {
		t.Error("failed job carries no error")
	}
}
