// Command nowtrace analyses a cluster timeline exported by nowrender
// -timeline (or a worker's local -timeline dump): per-track busy/idle
// breakdowns, the critical frames that bounded the makespan, and the
// load imbalance across frame-rendering tracks.
//
//	nowrender -scene newton -mode local -timeline run.json
//	nowtrace run.json
//	nowtrace < run.json
//
// The input is Chrome trace-event JSON, so the same file loads in
// Perfetto (ui.perfetto.dev) for a visual view.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nowrender/internal/buildinfo"
	"nowrender/internal/timeline"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: nowtrace [trace.json]\n\nReads a Chrome trace JSON timeline (file argument, or stdin when\nomitted) and prints a busy/idle and critical-path report.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println("nowtrace", buildinfo.Version())
		return
	}
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "nowtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var in io.Reader = os.Stdin
	src := "stdin"
	switch len(args) {
	case 0:
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in, src = f, args[0]
	default:
		return fmt.Errorf("expected at most one trace file, got %d arguments", len(args))
	}
	tl, err := timeline.ReadChromeTrace(in)
	if err != nil {
		return fmt.Errorf("%s: %w", src, err)
	}
	// An event-free trace means the run recorded nothing — a truncated
	// dump or a render that never started. An empty report would read as
	// "analysed fine, nothing notable", so fail loudly instead: scripts
	// gating on nowtrace's exit code must see this.
	if tl.Events() == 0 {
		return fmt.Errorf("%s: trace contains no events (empty or truncated timeline)", src)
	}
	rep := timeline.Analyze(tl)
	rep.Format(os.Stdout)
	return nil
}
