// Package bitset provides a fixed-size bitmap used as the coherence
// engine's dirty mask. A []bool mask costs one byte per pixel and — more
// importantly for the parallel render core — cannot be written safely by
// concurrent goroutines whose pixels share cache lines. The bitset packs
// 64 pixels per word and offers two write paths:
//
//   - Set, for single-owner phases (mask building between frames);
//   - SetAtomic, a compare-and-swap OR for fan-out phases where several
//     workers mark bits that may land in the same word (parallel change
//     detection marks dirty pixels per changed voxel).
//
// Reads during the render phase need no synchronisation: the mask is
// frozen at the frame barrier before tile workers start.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

// Bitset is a fixed-length bitmap.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a bitset of n cleared bits.
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Get reports bit i. Callers must not race Get with SetAtomic on the
// same word; the engine separates the phases with a barrier.
func (b *Bitset) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i (single-owner phases only).
func (b *Bitset) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// SetAtomic sets bit i with a CAS loop, safe against concurrent
// SetAtomic calls on the same word.
func (b *Bitset) SetAtomic(i int) {
	w := &b.words[i>>6]
	mask := uint64(1) << (uint(i) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// SetAll sets every bit (a moving light dirties the whole region).
func (b *Bitset) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
}

// clearTail zeroes the unused bits of the last word so Count stays
// exact.
func (b *Bitset) clearTail() {
	if tail := uint(b.n) & 63; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << tail) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Runs calls yield(start, end) for every maximal run of set bits, in
// ascending order with half-open [start, end) intervals. It scans a
// word at a time, so sparse and dense masks alike cost O(words): this
// is how the dirty mask becomes the wire protocol's span list without
// visiting clean pixels.
func (b *Bitset) Runs(yield func(start, end int)) {
	runStart := -1
	for wi, w := range b.words {
		base := wi * 64
		switch w {
		case 0:
			if runStart >= 0 {
				yield(runStart, base)
				runStart = -1
			}
			continue
		case ^uint64(0):
			if runStart < 0 {
				runStart = base
			}
			continue
		}
		for bit := 0; bit < 64; {
			if runStart < 0 {
				// Skip zeros to the next set bit.
				z := bits.TrailingZeros64(w >> uint(bit))
				bit += z
				if bit >= 64 {
					break
				}
				runStart = base + bit
			} else {
				// Skip ones to the end of the run.
				o := bits.TrailingZeros64(^(w >> uint(bit)))
				bit += o
				if bit >= 64 {
					break
				}
				yield(runStart, base+bit)
				runStart = -1
			}
		}
	}
	if runStart >= 0 {
		// clearTail keeps the last word's spare bits zero, but a run that
		// reaches the final valid bit ends at n, not at the word boundary.
		end := len(b.words) * 64
		if end > b.n {
			end = b.n
		}
		yield(runStart, end)
	}
}

// Bools expands the bitset into a []bool (the public DirtyMask format).
func (b *Bitset) Bools() []bool {
	out := make([]bool, b.n)
	for i := range out {
		out[i] = b.Get(i)
	}
	return out
}
