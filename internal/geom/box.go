package geom

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Box is an axis-aligned solid box, POV-Ray's `box { <min>, <max> }`.
type Box struct {
	Min, Max vm.Vec3
}

// NewBox returns the box spanning the two corners in any order.
func NewBox(a, b vm.Vec3) *Box {
	bb := vm.NewAABB(a, b)
	return &Box{Min: bb.Min, Max: bb.Max}
}

// Intersect implements Shape.
func (b *Box) Intersect(r vm.Ray, tMin, tMax float64) (Hit, bool) {
	iv, hit := (vm.AABB{Min: b.Min, Max: b.Max}).IntersectRay(r, tMin, tMax)
	if !hit {
		return Hit{}, false
	}
	t := iv.Min
	if t <= tMin {
		// Origin inside the box: exit point is the hit.
		t = iv.Max
		if t <= tMin || t >= tMax {
			return Hit{}, false
		}
	}
	if t >= tMax {
		return Hit{}, false
	}
	p := r.At(t)
	outward, axis := b.normalAt(p)
	// For an exit hit the outward normal points along the ray, so
	// faceForward both flips it and flags the hit as inside.
	n, inside := faceForward(outward, r.Dir)
	u, v := boxUV(b, p, axis)
	return Hit{T: t, Point: p, Normal: n, Inside: inside, U: u, V: v}, true
}

// normalAt returns the outward normal of the face nearest to p and the
// axis index of that face.
func (b *Box) normalAt(p vm.Vec3) (vm.Vec3, int) {
	bestAxis, bestSign, bestDist := 0, 1.0, math.Inf(1)
	for axis := 0; axis < 3; axis++ {
		if d := math.Abs(p.Axis(axis) - b.Min.Axis(axis)); d < bestDist {
			bestDist, bestAxis, bestSign = d, axis, -1
		}
		if d := math.Abs(p.Axis(axis) - b.Max.Axis(axis)); d < bestDist {
			bestDist, bestAxis, bestSign = d, axis, 1
		}
	}
	return vm.Vec3{}.SetAxis(bestAxis, bestSign), bestAxis
}

func boxUV(b *Box, p vm.Vec3, axis int) (float64, float64) {
	ua := (axis + 1) % 3
	va := (axis + 2) % 3
	size := b.Max.Sub(b.Min)
	u := (p.Axis(ua) - b.Min.Axis(ua)) / math.Max(size.Axis(ua), vm.Eps)
	v := (p.Axis(va) - b.Min.Axis(va)) / math.Max(size.Axis(va), vm.Eps)
	return u, v
}

// Bounds implements Shape.
func (b *Box) Bounds() vm.AABB { return vm.AABB{Min: b.Min, Max: b.Max} }

// Disc is a flat circular disc, used for cylinder caps and standalone.
type Disc struct {
	Center vm.Vec3
	Normal vm.Vec3 // unit
	Radius float64
}

// NewDisc returns a disc; the normal is normalised.
func NewDisc(center, normal vm.Vec3, radius float64) *Disc {
	return &Disc{Center: center, Normal: normal.Norm(), Radius: radius}
}

// Intersect implements Shape.
func (d *Disc) Intersect(r vm.Ray, tMin, tMax float64) (Hit, bool) {
	denom := d.Normal.Dot(r.Dir)
	if math.Abs(denom) < vm.Eps {
		return Hit{}, false
	}
	t := d.Normal.Dot(d.Center.Sub(r.Origin)) / denom
	if t <= tMin || t >= tMax {
		return Hit{}, false
	}
	p := r.At(t)
	rel := p.Sub(d.Center)
	if rel.Len2() > d.Radius*d.Radius {
		return Hit{}, false
	}
	n, inside := faceForward(d.Normal, r.Dir)
	onb := vm.NewONB(d.Normal)
	return Hit{
		T: t, Point: p, Normal: n, Inside: inside,
		U: rel.Dot(onb.U)/d.Radius*0.5 + 0.5,
		V: rel.Dot(onb.V)/d.Radius*0.5 + 0.5,
	}, true
}

// Bounds implements Shape.
func (d *Disc) Bounds() vm.AABB {
	r := vm.Splat(d.Radius)
	return vm.AABB{Min: d.Center.Sub(r), Max: d.Center.Add(r)}.Pad(vm.Eps)
}
