package farm

import (
	"fmt"
	"sort"
	"time"

	"nowrender/internal/cluster"
	"nowrender/internal/coherence"
	"nowrender/internal/compositor"
	"nowrender/internal/fb"
	"nowrender/internal/objspace"
	"nowrender/internal/partition"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
	"nowrender/internal/trace"
)

// vworker is the per-machine state of the virtual driver.
type vworker struct {
	id      int
	task    partition.Task
	hasTask bool
	next    int // next frame to render within task
	engine  *coherence.Engine
	buf     *fb.Framebuffer

	tasksDone  int
	pixelsDone int
	rays       stats.RayCounters
}

// remaining returns the frames the worker has not started.
func (w *vworker) remaining() int {
	if !w.hasTask {
		return 0
	}
	return w.task.EndFrame - w.next
}

// RenderVirtual runs the farm on the deterministic virtual NOW: the real
// rendering computation executes inline (in event order) and virtual
// time is charged per work quantity and message. Repeated runs with the
// same Config produce identical images, statistics and makespans.
func RenderVirtual(cfg Config) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	sc := cfg.Scene
	now, err := cluster.NewVirtualNOW(cfg.Machines, cfg.Net, cfg.Cost)
	if err != nil {
		return nil, err
	}

	queue := cfg.Scheme.InitialTasks(cfg.W, cfg.H, cfg.StartFrame, cfg.EndFrame, len(cfg.Machines))
	if err := partition.ValidateTiling(queue, cfg.W, cfg.H, cfg.StartFrame, cfg.EndFrame); err != nil {
		return nil, err
	}

	workers := make([]*vworker, len(cfg.Machines))
	for i := range workers {
		workers[i] = &vworker{id: i}
	}
	asm := newAssemblyRange(cfg.W, cfg.H, cfg.StartFrame, cfg.EndFrame)
	res := &Result{}
	frameWork := make([]time.Duration, sc.Frames)
	frameRays := make([]stats.RayCounters, sc.Frames)
	frameRendered := make([]int, sc.Frames)
	frameCopied := make([]int, sc.Frames)

	const taskMsgBytes = 64 // task descriptor on the wire

	// With wire modes enabled the virtual driver runs the real frame
	// codec — delta spans, size guard, flate — so modelled byte counts
	// are the true wire costs, not estimates. Off (the default) it keeps
	// the legacy flat charge, preserving historical makespans.
	wireOn := cfg.WireDelta || cfg.WireCompress || cfg.WireSpanCodec
	wireFlags := 0
	if cfg.WireDelta {
		wireFlags |= capWireDelta
	}
	if cfg.WireCompress {
		wireFlags |= capWireCompress
	}
	if cfg.WireSpanCodec {
		wireFlags |= capWireSpanCodec
	}
	var wireEnc frameEncoder // shared scratch; the event loop is sequential
	// The virtual driver's contract is identical statistics on every
	// run: the adaptive codec decision must not read wall clocks.
	wireEnc.Deterministic = true

	// Object-space sharding in the virtual model: rendering runs inline
	// through the sharded partition (so forwarding counts are the real
	// ones) and the run-level counters land in Result.ObjSpace.
	var vos *objspace.Stats
	if cfg.ObjSpaceShards >= 2 {
		vos = &objspace.Stats{}
	}

	// DFB modeling: with sinks configured, the pixel payload is charged
	// to sink ingress and the master is charged only the real encoded
	// sizes of the worker's ack and the sink's confirmation — the same
	// three messages the live path exchanges, so virtual ingress ratios
	// predict live ones.
	dfbOn := wireOn && cfg.DFB != nil && (cfg.DFB.Sinks > 0 || len(cfg.DFB.Addrs) > 0)
	var dfbShard partition.ShardMap
	if dfbOn {
		n := cfg.DFB.Sinks
		if len(cfg.DFB.Addrs) > 0 {
			n = len(cfg.DFB.Addrs)
		}
		if frames := cfg.EndFrame - cfg.StartFrame; n > frames {
			n = frames
		}
		dfbShard = partition.ShardMap{Start: cfg.StartFrame, End: cfg.EndFrame, N: n}
	}

	// Timeline recording on the virtual clock: events carry explicit
	// virtual timestamps (Span/InstantAt), all machines share the model's
	// clock, so no offset correction applies. Nil recorder = nil tracks =
	// one branch per site.
	rec := cfg.Timeline
	mtv := rec.Track("master/loop")
	vtracks := make([]*timeline.Track, len(workers))
	if rec != nil {
		for i := range workers {
			vtracks[i] = rec.Track(cfg.Machines[i].Name + "/main")
		}
	}

	assign := func(w *vworker, t partition.Task) error {
		mtv.InstantAt(timeline.OpDispatch, t.StartFrame, int64(now.Time(w.id)), int64(t.ID))
		w.task = t
		w.hasTask = true
		w.next = t.StartFrame
		w.engine = nil
		if w.buf == nil {
			w.buf = fb.New(cfg.W, cfg.H)
		}
		if cfg.Coherence && t.Frames() >= 1 {
			opts := cfg.CoherenceOpts
			opts.SamplesPerPixel = cfg.Samples
			if opts.Threads == 0 {
				opts.Threads = cfg.Threads
			}
			if vos != nil {
				opts.ObjSpaceShards = cfg.ObjSpaceShards
				opts.ObjSpaceStats = vos
			}
			eng, err := coherence.NewEngine(sc, cfg.W, cfg.H, t.Region, t.StartFrame, t.EndFrame, opts)
			if err != nil {
				return err
			}
			w.engine = eng
		}
		res.TasksExecuted++
		now.Communicate(w.id, taskMsgBytes)
		res.BytesTransferred += taskMsgBytes
		return nil
	}

	// stealInto finds the most-loaded worker and moves half its
	// unstarted frames to thief. The thief starts a fresh engine on the
	// stolen range (it cannot inherit the victim's pixel lists), which is
	// exactly the coherence penalty adaptive subdivision pays in the
	// paper.
	stealInto := func(thief *vworker) (bool, error) {
		// With coherence on, the thief pays a cold first frame on the
		// stolen range, so only ranges with a few frames are worth
		// moving.
		minRemaining := 2
		if cfg.Coherence {
			minRemaining = 4
		}
		var victim *vworker
		for _, w := range workers {
			if w == thief || w.remaining() < minRemaining {
				continue
			}
			if victim == nil || w.remaining() > victim.remaining() {
				victim = w
			}
		}
		if victim == nil {
			return false, nil
		}
		rem := victim.task
		rem.StartFrame = victim.next
		keep, give, ok := cfg.Scheme.Subdivide(rem)
		if !ok || give.Frames() == 0 {
			return false, nil
		}
		victim.task.EndFrame = keep.EndFrame
		// Truncating the victim's engine range is safe: the engine only
		// checks consecutive ordering, and the victim simply stops
		// earlier. The stolen range becomes a fresh task.
		res.Subdivisions++
		return true, assign(thief, give)
	}

	// renderOneFrame executes worker w's next frame, charging the
	// virtual clock, and delivers the pixels to the assembly.
	renderOneFrame := func(w *vworker) error {
		f := w.next
		var work cluster.Work
		var rc stats.RayCounters
		if w.engine != nil {
			rep, err := w.engine.RenderFrame(f, w.buf)
			if err != nil {
				return err
			}
			rc = rep.Rays
			frameRendered[f] += rep.Rendered
			frameCopied[f] += rep.Copied
			work = cluster.Work{
				Rays:          rep.Rays.Total(),
				Registrations: rep.Registrations,
				CopiedPixels:  uint64(rep.Copied),
				ChangeVoxels:  uint64(rep.ChangeVoxels),
				MemoryMB:      w.task.MemoryMB(),
			}
		} else if vos != nil {
			cl, err := objspace.Build(sc, f, trace.Options{SamplesPerPixel: cfg.Samples},
				objspace.Options{Shards: cfg.ObjSpaceShards, Stats: vos})
			if err != nil {
				return err
			}
			ft := cl.Tracer()
			ft.RenderRegionParallelWorkers(w.buf, w.task.Region, cfg.Threads, f, nil, cl.NewWorker)
			rc = ft.Counters
			work = cluster.Work{Rays: ft.Counters.Total(), MemoryMB: w.task.PlainMemoryMB()}
			frameRendered[f] += w.task.Region.Area()
		} else {
			ft, err := trace.New(sc, f, trace.Options{SamplesPerPixel: cfg.Samples})
			if err != nil {
				return err
			}
			ft.RenderRegionParallel(w.buf, w.task.Region, cfg.Threads)
			rc = ft.Counters
			work = cluster.Work{Rays: ft.Counters.Total(), MemoryMB: w.task.PlainMemoryMB()}
			frameRendered[f] += w.task.Region.Area()
		}
		frameRays[f].Merge(rc)
		before := now.Time(w.id)
		now.Exec(w.id, work)
		execTime := now.Time(w.id) - before
		execEnd := now.Time(w.id)
		vtracks[w.id].Span(timeline.OpFrame, f, int64(before), int64(execEnd), int64(frameRendered[f]))

		// Ship the region back to the master over the shared bus.
		var complete bool
		var sendEnd time.Duration
		if wireOn {
			fd := frameDoneMsg{TaskID: w.task.ID, Frame: f, Region: w.task.Region}
			var spans []fb.Span
			if w.engine != nil {
				spans = w.engine.LastSpans()
			}
			data := wireEnc.Encode(&fd, w.buf, wireFlags, spans, f == w.task.StartFrame)
			end := now.Communicate(w.id, len(data))
			sendEnd = end
			res.BytesTransferred += int64(len(data))
			res.Wire.WireBytes += uint64(len(data))
			res.Wire.RawBytes += uint64(w.task.Region.Area() * 3)
			res.Wire.CountEncoding(fd.Encoding, uint64(len(data)))
			rd, err := decodeFrameDone(data)
			if err != nil {
				return err
			}
			if rd.Kind == frameDelta {
				res.Wire.FramesDelta++
				complete, _, err = asm.DeliverSpans(f, w.task.Region, rd.Spans, rd.Pix, end)
			} else {
				res.Wire.FramesFull++
				complete, _, err = asm.Deliver(f, w.task.Region, rd.Pix, end)
			}
			rd.Release()
			if err != nil {
				return err
			}
			if dfbOn {
				// Charge the master the control-plane bytes the live path
				// would carry: the worker's ack and the sink's confirm,
				// encoded for real so their sizes are exact.
				ack := encodeFrameAck(frameAckMsg{
					TaskID: w.task.ID, Frame: f, Region: w.task.Region,
					Kind: fd.Kind, Encoding: fd.Encoding,
					Sink: dfbShard.Of(f), SinkBytes: len(data),
					Rendered: w.task.Region.Area(), Rays: rc,
					ElapsedNs: int64(execTime),
				})
				confirm := compositor.EncodeDelivered(compositor.Delivered{
					Gen: 1, Frame: f, Region: w.task.Region,
					Worker: cfg.Machines[w.id].Name, Kind: fd.Kind,
					WireBytes: len(data), RawBytes: w.task.Region.Area() * 3,
					Complete: complete,
				})
				control := uint64(len(ack) + len(confirm))
				res.BytesTransferred += int64(control)
				res.Wire.WireBytes += control
				res.Wire.MasterIngressBytes += control
				res.Wire.SinkIngressBytes += uint64(len(data))
				res.Wire.FramesAcked++
			} else {
				res.Wire.MasterIngressBytes += uint64(len(data))
			}
		} else {
			pix := extractRegion(w.buf, w.task.Region)
			resultBytes := len(pix) + 32
			end := now.Communicate(w.id, resultBytes)
			sendEnd = end
			res.BytesTransferred += int64(resultBytes)
			var err error
			complete, _, err = asm.Deliver(f, w.task.Region, pix, end)
			if err != nil {
				return err
			}
		}
		vtracks[w.id].Span(timeline.OpSend, f, int64(execEnd), int64(sendEnd), int64(w.task.Region.Area()*3))
		if complete && cfg.OnFrame != nil {
			if err := cfg.OnFrame(f, asm.Frame(f)); err != nil {
				return err
			}
		}
		frameWork[f] += execTime
		w.rays.Merge(rc)
		w.pixelsDone += w.task.Region.Area()
		w.next++
		if w.next >= w.task.EndFrame {
			w.hasTask = false
			w.engine = nil
			w.tasksDone++
		}
		return nil
	}

	// Event loop: repeatedly give work to idle machines (queue first,
	// then steal) and advance the earliest busy machine by one frame.
	for {
		// Cancellation is checked once per event, so a cancelled run
		// stops after at most one more frame of one worker.
		if err := cfg.cancelled(); err != nil {
			return nil, err
		}
		// Hand queued tasks to idle machines, cheapest clock first.
		for len(queue) > 0 {
			idle := -1
			for _, w := range workers {
				if !w.hasTask && (idle < 0 || now.Time(w.id) < now.Time(workers[idle].id)) {
					idle = w.id
				}
			}
			if idle < 0 {
				break
			}
			t := queue[0]
			queue = queue[1:]
			if err := assign(workers[idle], t); err != nil {
				return nil, err
			}
		}
		// Steal for any remaining idle machines.
		if len(queue) == 0 {
			for _, w := range workers {
				if w.hasTask {
					continue
				}
				if ok, err := stealInto(w); err != nil {
					return nil, err
				} else if ok {
					continue
				}
			}
		}
		// Advance the earliest busy machine.
		busy := -1
		for _, w := range workers {
			if w.hasTask && (busy < 0 || now.Time(w.id) < now.Time(workers[busy].id)) {
				busy = w.id
			}
		}
		if busy < 0 {
			if len(queue) == 0 {
				break
			}
			return nil, fmt.Errorf("farm: queue non-empty but no machine busy")
		}
		if err := renderOneFrame(workers[busy]); err != nil {
			return nil, err
		}
	}

	if err := asm.Complete(); err != nil {
		return nil, err
	}
	res.Frames = asm.Frames()
	res.Makespan = now.Makespan()
	for f := cfg.StartFrame; f < cfg.EndFrame; f++ {
		res.Run.AddFrame(stats.FrameStats{
			Frame:    f,
			Elapsed:  frameWork[f],
			Rays:     frameRays[f],
			Rendered: frameRendered[f],
			Copied:   frameCopied[f],
		})
	}
	res.Run.Total = res.Makespan
	for _, w := range workers {
		res.Workers = append(res.Workers, stats.WorkerStats{
			Worker:     cfg.Machines[w.id].Name,
			TasksDone:  w.tasksDone,
			PixelsDone: w.pixelsDone,
			Busy:       now.BusyTime(w.id),
			Rays:       w.rays,
		})
	}
	sort.Slice(res.Workers, func(i, j int) bool { return res.Workers[i].Worker < res.Workers[j].Worker })
	if vos != nil {
		res.ObjSpace = vos.Snapshot()
	}
	if rec != nil {
		tl := rec.Snapshot()
		tl.Meta["scheme"] = cfg.Scheme.Name()
		tl.Meta["resolution"] = fmt.Sprintf("%dx%d", cfg.W, cfg.H)
		tl.Meta["frames"] = fmt.Sprintf("[%d,%d)", cfg.StartFrame, cfg.EndFrame)
		tl.Meta["clock"] = "virtual"
		tl.Sort()
		res.Timeline = tl
	}

	if cfg.Emit != nil {
		for i, img := range res.Frames {
			if err := cfg.Emit(cfg.StartFrame+i, img); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// RenderSingle runs the whole animation on one machine of the virtual
// NOW (the paper's single-processor baselines, columns (1)-(3) of
// Table 1: the fastest machine is used). Coherence is applied when
// cfg.Coherence is set.
func RenderSingle(cfg Config, machine cluster.Machine) (*Result, error) {
	cfg.Machines = []cluster.Machine{machine}
	// A single machine with the whole frame: sequence division
	// degenerates to one task covering everything.
	cfg.Scheme = partition.SequenceDivision{Adaptive: false}
	return RenderVirtual(cfg)
}
