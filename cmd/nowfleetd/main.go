// Command nowfleetd is the fleet broker of the multi-master control
// plane: the one daemon that owns worker capacity when several nowserve
// replicas share an elastic pool. Workers register slots with it (once,
// via -members or a worker hello); replicas acquire time-bounded,
// renewable leases on those slots. A replica that crashes stops
// renewing, its leases expire within one term, and the slots return to
// the pool for the surviving replicas.
//
//	nowfleetd -listen :7948 -capacity 8 -term 15s
//	nowserve -listen :8080 -fleet-broker localhost:7948 -replica-id a
//	nowserve -listen :8081 -fleet-broker localhost:7948 -replica-id b
//
// Static members (workstations whose slot counts are known up front)
// can be declared without a live worker connection:
//
//	nowfleetd -capacity 0 -members ws01=4,ws02=4,ws03=2
//
// SIGINT or SIGTERM shut it down; held leases die with the process
// (a broker restart voids them — clients detect the new epoch and
// re-acquire).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nowrender/internal/buildinfo"
	"nowrender/internal/fleetd"
	"nowrender/internal/msg"
	"nowrender/internal/timeline"
)

func main() {
	var (
		listen   = flag.String("listen", ":7948", "listen address for replica and worker connections")
		capacity = flag.Int("capacity", 0, "base worker-slot capacity owned by the broker itself (0 = members only)")
		members  = flag.String("members", "", "static members with slot counts, e.g. ws01=4,ws02=2")
		term     = flag.Duration("term", 0, "default lease term (0 = 15s); a replica silent this long loses its workers")
		sweep    = flag.Duration("sweep", 0, "expiry sweep interval (0 = auto)")
		tlOut    = flag.String("timeline", "", "write the broker's lease timeline as Chrome trace JSON to this file on exit")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// A stray positional arg silently stops flag parsing, so flags
		// after it would be ignored; fail loudly instead.
		fmt.Fprintf(os.Stderr, "nowfleetd: unexpected argument %q (e.g. -members=ws01=4,ws02=2 needs the = syntax)\n", flag.Arg(0))
		os.Exit(2)
	}
	if *version {
		fmt.Println("nowfleetd", buildinfo.Version())
		return
	}
	static, err := parseMembers(*members)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowfleetd:", err)
		os.Exit(1)
	}
	if *capacity <= 0 && len(static) == 0 {
		fmt.Fprintln(os.Stderr, "nowfleetd: no capacity (-capacity or -members required)")
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *capacity, static, *term, *sweep, *tlOut); err != nil {
		fmt.Fprintln(os.Stderr, "nowfleetd:", err)
		os.Exit(1)
	}
}

// parseMembers reads "ws01=4,ws02=2" into member slot counts.
func parseMembers(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, slotsStr, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -members entry %q (want name=slots)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(slotsStr))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -members slot count in %q", part)
		}
		out[name] = n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -members list %q", s)
	}
	return out, nil
}

func run(ctx context.Context, listen string, capacity int, static map[string]int, term, sweep time.Duration, tlOut string) error {
	l, err := msg.Listen(listen)
	if err != nil {
		return err
	}
	defer l.Close()

	var rec *timeline.Recorder
	if tlOut != "" {
		rec = timeline.New(0)
	}
	b := fleetd.NewBroker(fleetd.BrokerConfig{
		Capacity: capacity,
		Term:     term,
		Timeline: rec,
	})
	for name, slots := range static {
		b.Join(name, slots)
	}
	srv := fleetd.NewServer(b, sweep)
	defer srv.Close()
	fmt.Printf("nowfleetd %s listening on %s (capacity=%d, term=%s, epoch=%d)\n",
		buildinfo.Version(), l.Addr(), b.Stats().Capacity, b.DefaultTerm(), b.Epoch())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case <-ctx.Done():
		fmt.Println("nowfleetd: shutting down")
	case err := <-serveErr:
		return err
	}
	l.Close()
	srv.Close()
	st := b.Stats()
	fmt.Printf("nowfleetd: %d grants, %d renews, %d expiries, %d releases\n",
		st.Grants, st.Renews, st.Expiries, st.Releases)
	if tlOut != "" {
		tl := rec.Snapshot()
		tl.Meta["broker-epoch"] = fmt.Sprint(b.Epoch())
		f, err := os.Create(tlOut)
		if err != nil {
			return err
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("nowfleetd: timeline written to %s (%d events)\n", tlOut, tl.Events())
	}
	return nil
}
