// Command nowserve runs the long-lived render-job service: an HTTP API
// over the render farm with a priority job queue, bounded concurrency
// and a content-addressed frame cache.
//
//	nowserve -listen :8080 -max-jobs 2 -cache-mb 64 -driver virtual
//
//	# submit a job, stream progress, fetch a frame
//	curl -s -X POST localhost:8080/jobs -d '{"scene":"newton:10","w":120,"h":160}'
//	curl -N localhost:8080/jobs/job-0001/events
//	curl -s localhost:8080/jobs/job-0001/frames/0 -o frame0.tga
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight HTTP
// requests finish, running jobs are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nowrender/internal/buildinfo"
	"nowrender/internal/cluster"
	"nowrender/internal/faulty"
	"nowrender/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		maxJobs  = flag.Int("max-jobs", 2, "max concurrently running jobs")
		queueCap = flag.Int("queue-cap", 256, "max queued jobs")
		cacheMB  = flag.Int64("cache-mb", 64, "frame cache budget in MiB (0 = default, negative = disabled)")
		cacheTTL = flag.Duration("cache-ttl", 0, "expire cached frames this long after rendering (0 = never)")
		driver   = flag.String("driver", "virtual", "default farm driver: virtual | local")
		workers  = flag.Int("workers", 0, "goroutine workers for the local driver (0 = machine count)")
		machines = flag.Int("machines", 0, "virtual NOW size (0 = the paper's 3-machine testbed)")
		threads  = flag.Int("threads", 0, "default intra-frame render threads per farm worker (0 = all cores)")

		heartbeat    = flag.Duration("heartbeat", 0, "farm master->worker ping interval for local-driver jobs (0 = off)")
		liveness     = flag.Duration("liveness", 0, "retire a farm worker silent this long (0 = 4x heartbeat)")
		stall        = flag.Duration("stall", 0, "retire a farm worker holding a task without progress this long (0 = off)")
		frameRetries = flag.Int("frame-retries", 0, "per-frame requeue budget before the master renders locally (0 = 3)")
		speculate    = flag.Bool("speculate", false, "speculatively re-issue the slowest in-flight farm task")
		jobRetries   = flag.Int("max-job-retries", 0, "cap on a job spec's retries field (0 = 5)")
		chaos        = flag.String("chaos", "", "fault-injection plan for local-driver farm runs, e.g. seed=7,drop=0.01,protect=worker00")
		wireDelta    = flag.Bool("wire-delta", false, "ship dirty-span delta frames from workers that support them")
		wireCompress = flag.Bool("wire-compress", false, "flate-compress frame payloads from workers that support it")
		dfbSinks     = flag.Int("dfb", 0, "route local-driver pixels through this many in-process compositor sinks instead of the farm master (0 = off)")
		timelineOn   = flag.Bool("timeline", false, "record a per-job cluster timeline, served on GET /jobs/{id}/timeline")
		pprofOn      = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/")
		version      = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("nowserve", buildinfo.Version())
		return
	}
	cfg := service.Config{
		MaxConcurrent: *maxJobs,
		QueueCap:      *queueCap,
		CacheBytes:    *cacheMB << 20,
		CacheTTL:      *cacheTTL,
		DefaultDriver: *driver,
		Workers:       *workers,
		Threads:       *threads,
		Heartbeat:     *heartbeat,
		Liveness:      *liveness,
		StallTimeout:  *stall,
		FrameRetries:  *frameRetries,
		Speculate:     *speculate,
		MaxJobRetries: *jobRetries,
		WireDelta:     *wireDelta,
		WireCompress:  *wireCompress,
		DFBSinks:      *dfbSinks,
		Timeline:      *timelineOn,
	}
	if *machines > 0 {
		cfg.Machines = cluster.Uniform(*machines, 1.0, 64)
	}
	plan, err := faulty.ParsePlan(*chaos)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nowserve:", err)
		os.Exit(1)
	}
	if plan != nil {
		cfg.FaultWrap = plan.Wrap
	}
	if err := run(*listen, *driver, cfg, *pprofOn); err != nil {
		fmt.Fprintln(os.Stderr, "nowserve:", err)
		os.Exit(1)
	}
}

func run(listen, driver string, cfg service.Config, pprofOn bool) error {
	svc := service.New(cfg)
	var handler http.Handler = svc.Handler()
	if pprofOn {
		// Mount the profiling endpoints on an outer mux so the service
		// handler stays unaware of them. Index serves everything under
		// /debug/pprof/ except the four special handlers.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	srv := &http.Server{Addr: listen, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("nowserve %s\n", buildinfo.Version())
	fmt.Printf("nowserve listening on %s (driver=%s, max-jobs=%d)\n", listen, driver, cfg.MaxConcurrent)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("nowserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
