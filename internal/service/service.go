// Package service is the thin facade of the long-lived render service:
// it owns job lifecycle (states, events, SSE fan-out) and the HTTP API
// (http.go), and wires together the four subsystems the former
// monolith has been split into:
//
//   - internal/queue: multi-tenant admission-controlled priority queues
//     (global cap, per-tenant quotas, tenant allow list);
//   - internal/sched: the bounded-concurrency scheduler with a pluggable
//     cross-tenant policy (priority, fifo, weighted-fair);
//   - internal/fleet: the leasable worker pool over the farm drivers
//     (capacity accounting, live join/leave);
//   - internal/framecache: the content-addressed frame cache with
//     in-flight request coalescing — two tenants rendering the same
//     scene+frame concurrently cost exactly one render.
//
// This is the subsystem the paper's §5 "production use" direction asks
// for: the farm renders one animation as fast as the NOW allows; the
// service accepts, schedules, caches and streams many such animations
// concurrently, for many tenants, without re-rendering anything twice.
package service

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"nowrender/internal/anim"
	"nowrender/internal/cluster"
	"nowrender/internal/farm"
	"nowrender/internal/fb"
	"nowrender/internal/fleet"
	"nowrender/internal/framecache"
	"nowrender/internal/msg"
	"nowrender/internal/objspace"
	"nowrender/internal/partition"
	"nowrender/internal/queue"
	"nowrender/internal/scene"
	"nowrender/internal/sched"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
)

// Config tunes a Service.
type Config struct {
	// MaxConcurrent bounds simultaneously running jobs. Default 2.
	MaxConcurrent int
	// QueueCap bounds queued-but-not-running jobs; Submit fails once the
	// queue is full. Default 256.
	QueueCap int
	// MaxQueuedPerTenant bounds one tenant's queued jobs (admission
	// control): a tenant at its quota is rejected without touching
	// other tenants' headroom. 0 = unlimited.
	MaxQueuedPerTenant int
	// Tenants, when non-nil, is the tenant allow list with per-tenant
	// fair-scheduling weights (weight <= 0 reads as 1): jobs from
	// tenants outside it are rejected. Nil admits any tenant at weight
	// 1.
	Tenants map[string]float64
	// Policy picks the cross-tenant scheduling policy: "priority"
	// (default; the pre-split behavior — priority, then submission
	// order), "fifo", or "fair" (weighted fair queuing across tenants).
	Policy string
	// FleetCapacity bounds the worker slots farm runs may lease
	// concurrently from the shared pool; 0 = unlimited (every run gets
	// the workers it asks for).
	FleetCapacity int
	// Leaser, when non-nil, replaces the private fleet pool as the
	// source of worker-capacity grants — this is how a replica in the
	// multi-master control plane draws from the shared broker
	// (internal/fleetd) instead of owning its workers. Nil preserves the
	// single-replica behavior: a private pool bounded by FleetCapacity.
	// The pool still exists either way (it owns the farm drivers).
	Leaser fleet.Leaser
	// ReplicaID names this service instance in a multi-replica
	// deployment; surfaced in /metrics and the healthz payload so
	// clients and scrapes can tell replicas apart. Empty = single
	// replica.
	ReplicaID string
	// CacheBytes is the frame cache's pixel-byte budget. 0 selects the
	// default 64 MiB; negative disables caching.
	CacheBytes int64
	// Machines populate the virtual NOW for "virtual"-driver jobs.
	// Defaults to the paper's 3-machine testbed.
	Machines []cluster.Machine
	// Workers is the goroutine count for "local"-driver jobs. Defaults
	// to the machine count.
	Workers int
	// Threads is the default intra-frame tile-pool width for jobs whose
	// spec leaves Threads at 0. 0 lets workers use all their cores.
	Threads int
	// DefaultDriver is used when a JobSpec leaves Driver empty:
	// "virtual" (default) or "local".
	DefaultDriver string
	// CacheTTL expires cached frames this long after they were rendered
	// (lazily, on lookup). 0 = never expire.
	CacheTTL time.Duration
	// MaxJobRetries caps JobSpec.Retries. Default 5.
	MaxJobRetries int

	// Heartbeat, Liveness, StallTimeout, FrameRetries and Speculate are
	// passed through to farm.Config for "local"-driver jobs — the
	// service-level fault-tolerance knobs (see farm.Config for their
	// semantics). The virtual driver has no messages to lose and ignores
	// them.
	Heartbeat    time.Duration
	Liveness     time.Duration
	StallTimeout time.Duration
	FrameRetries int
	Speculate    bool
	// FaultWrap, when non-nil, wraps each local-driver worker connection
	// (fault injection; see internal/faulty). Exposed by cmd/nowserve's
	// -chaos flag for soak-testing a live service.
	FaultWrap func(name string, c msg.Conn) msg.Conn
	// WireDelta and WireCompress enable dirty-span delta frames and
	// flate payload compression on the farm data path (see farm.Config);
	// WireSpanCodec enables the span codec (with WireCompress too, each
	// worker chooses per frame — adaptive mode). Pixels are
	// byte-identical in every mode.
	WireDelta, WireCompress, WireSpanCodec bool
	// DFBSinks, when positive, routes local-driver pixel traffic through
	// that many in-process compositor sinks (the distributed framebuffer)
	// instead of the master — the master then sees only control acks and
	// confirmations on its result path. Frames are byte-identical either
	// way; the virtual driver models the same routing in its byte
	// accounting.
	DFBSinks int
	// Timeline records every farm run into a per-job cluster timeline
	// (master scheduling events plus offset-corrected worker spans, plus
	// a "sched" track of service-level enqueue/admit/lease/coalesce/
	// drain events), served as Chrome trace JSON on GET
	// /jobs/{id}/timeline. Off by default: each running job then costs
	// nothing but a nil check per instrumentation site.
	Timeline bool
}

func (c *Config) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	} else if c.CacheBytes < 0 {
		// framecache reads budget <= 0 as unlimited; the documented
		// contract here is the opposite. A 1-byte budget admits no frame
		// while flight coalescing keeps working.
		c.CacheBytes = 1
	}
	if len(c.Machines) == 0 {
		c.Machines = cluster.PaperTestbed()
	}
	if c.Workers <= 0 {
		c.Workers = len(c.Machines)
	}
	if c.DefaultDriver == "" {
		c.DefaultDriver = "virtual"
	}
	if c.MaxJobRetries <= 0 {
		c.MaxJobRetries = 5
	}
	if c.Policy == "" {
		c.Policy = "priority"
	}
}

// Rejection reasons counted for nowrender_jobs_rejected_total.
const (
	RejectQueueFull     = "queue_full"
	RejectTenantQuota   = "tenant_quota"
	RejectUnknownTenant = "unknown_tenant"
	RejectDraining      = "draining"
)

// Service is a long-lived render-job service wiring the queue, the
// scheduler, the fleet pool and the frame cache together behind the
// HTTP API. Create with New, serve its Handler, and Close on shutdown
// (or Drain for a graceful one).
type Service struct {
	cfg    Config
	cache  *framecache.Cache
	queue  *queue.Q
	pool   *fleet.Pool
	leaser fleet.Leaser // = pool, or the broker client in multi-master

	mu       sync.Mutex
	sched    *sched.Scheduler // passive; driven under mu
	jobs     map[string]*job
	order    []string // submission order, for listings
	nextSeq  int
	closed   bool
	draining bool
	wg       sync.WaitGroup

	// Aggregate counters for /metrics.
	framesRendered  uint64
	framesCached    uint64
	coalescedFrames uint64
	coalescedJobs   uint64
	rejected        map[string]uint64
	rays            stats.RayCounters
	workerBusy      map[string]time.Duration
	faults          stats.FaultCounters
	wire            stats.WireStats
	objspace        stats.ObjSpaceStats
	jobRetries      uint64
	started         time.Time
}

// New returns a ready service. No background goroutines run until jobs
// are submitted. An unknown Config.Policy panics — it is a programming
// error (cmd/nowserve only produces valid names).
func New(cfg Config) *Service {
	cfg.defaults()
	policy, err := sched.NewPolicy(cfg.Policy, cfg.Tenants)
	if err != nil {
		panic("service: " + err.Error())
	}
	var allowed map[string]bool
	if cfg.Tenants != nil {
		allowed = make(map[string]bool, len(cfg.Tenants))
		for t := range cfg.Tenants {
			allowed[queue.Tenant(t)] = true
		}
	}
	s := &Service{
		cfg:   cfg,
		cache: framecache.NewTTL(cfg.CacheBytes, cfg.CacheTTL),
		queue: queue.New(queue.Config{
			Cap:          cfg.QueueCap,
			MaxPerTenant: cfg.MaxQueuedPerTenant,
			Allowed:      allowed,
		}),
		pool:       fleet.NewPool(cfg.FleetCapacity),
		sched:      sched.New(policy, cfg.MaxConcurrent),
		jobs:       make(map[string]*job),
		rejected:   make(map[string]uint64),
		workerBusy: make(map[string]time.Duration),
		started:    time.Now(),
	}
	s.leaser = cfg.Leaser
	if s.leaser == nil {
		s.leaser = s.pool
	}
	return s
}

// ReplicaID names this service instance ("" in single-replica mode).
func (s *Service) ReplicaID() string { return s.cfg.ReplicaID }

// Pool exposes the fleet pool so operators (and tests) can join or
// remove capacity while the service runs.
func (s *Service) Pool() *fleet.Pool { return s.pool }

// normalize validates and defaults a spec against the scene it resolved
// to.
func (s *Service) normalize(spec *JobSpec, frames int) error {
	spec.Tenant = queue.Tenant(spec.Tenant)
	if spec.W == 0 && spec.H == 0 {
		spec.W, spec.H = 240, 320
	}
	if spec.W <= 0 || spec.H <= 0 {
		return fmt.Errorf("service: bad resolution %dx%d", spec.W, spec.H)
	}
	if spec.StartFrame == 0 && spec.EndFrame == 0 {
		spec.EndFrame = frames
	}
	if spec.StartFrame < 0 || spec.EndFrame > frames || spec.StartFrame >= spec.EndFrame {
		return fmt.Errorf("service: bad frame range [%d,%d) for %d frames",
			spec.StartFrame, spec.EndFrame, frames)
	}
	if spec.Samples < 1 {
		spec.Samples = 1
	}
	if spec.Threads < 0 {
		return fmt.Errorf("service: bad thread count %d", spec.Threads)
	}
	if spec.Threads == 0 {
		spec.Threads = s.cfg.Threads
	}
	if spec.Scheme == "" {
		spec.Scheme = "seqdiv"
	}
	if _, err := schemeByName(spec.Scheme); err != nil {
		return err
	}
	if spec.Driver == "" {
		spec.Driver = s.cfg.DefaultDriver
	}
	if spec.Driver != "virtual" && spec.Driver != "local" {
		return fmt.Errorf("service: unknown driver %q", spec.Driver)
	}
	if spec.ObjSpaceShards != 0 && (spec.ObjSpaceShards < 2 || spec.ObjSpaceShards > objspace.MaxShards) {
		return fmt.Errorf("service: object-space shard count %d outside [2,%d]",
			spec.ObjSpaceShards, objspace.MaxShards)
	}
	if spec.Retries < 0 || spec.RetryBackoffMS < 0 {
		return fmt.Errorf("service: bad retry policy (retries %d, backoff %dms)",
			spec.Retries, spec.RetryBackoffMS)
	}
	if spec.Retries > s.cfg.MaxJobRetries {
		spec.Retries = s.cfg.MaxJobRetries
	}
	return nil
}

// schemeByName maps the CLI scheme names onto partition schemes.
func schemeByName(name string) (partition.Scheme, error) {
	switch name {
	case "seqdiv":
		return partition.SequenceDivision{Adaptive: true}, nil
	case "seqdiv-static":
		return partition.SequenceDivision{}, nil
	case "framediv":
		return partition.FrameDivision{BlockW: 80, BlockH: 80, Adaptive: true}, nil
	case "hybrid":
		return partition.HybridDivision{BlockW: 80, BlockH: 80, SubseqLen: 15}, nil
	case "pixeldiv":
		return partition.PixelDivision{}, nil
	default:
		return nil, fmt.Errorf("service: unknown scheme %q", name)
	}
}

// rejectLocked counts a rejected submission by reason; callers hold
// s.mu.
func (s *Service) rejectLocked(reason string) {
	s.rejected[reason]++
}

// rejectReason maps a queue admission error onto its metrics reason.
func rejectReason(err error) string {
	switch {
	case errors.Is(err, queue.ErrFull):
		return RejectQueueFull
	case errors.Is(err, queue.ErrTenantQuota):
		return RejectTenantQuota
	case errors.Is(err, queue.ErrUnknownTenant):
		return RejectUnknownTenant
	}
	return "other"
}

// Submit validates spec, parses its scene, and enqueues the job
// subject to admission control (queue capacity, per-tenant quota,
// tenant allow list). It returns the queued job's status; rendering
// proceeds asynchronously.
func (s *Service) Submit(spec JobSpec) (Status, error) {
	sc, source, err := resolveScene(spec.Scene)
	if err != nil {
		return Status{}, err
	}
	if err := s.normalize(&spec, sc.Frames); err != nil {
		return Status{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Status{}, fmt.Errorf("service: closed")
	}
	if s.draining {
		s.rejectLocked(RejectDraining)
		return Status{}, fmt.Errorf("service: draining, not accepting jobs")
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:         fmt.Sprintf("job-%04d", s.nextSeq+1),
		seq:        s.nextSeq,
		spec:       spec,
		scene:      sc,
		source:     source,
		key:        framecache.NewSeqKey(source, spec.W, spec.H, spec.Samples),
		state:      StateQueued,
		frames:     make([]*fb.Framebuffer, spec.EndFrame-spec.StartFrame),
		led:        make(map[int]bool),
		submitted:  time.Now(),
		ctx:        ctx,
		cancel:     cancel,
		finishedCh: make(chan struct{}),
	}
	j.item = &queue.Item{
		ID:       j.id,
		Tenant:   spec.Tenant,
		Priority: spec.Priority,
		Seq:      j.seq,
		// Cost in frames: the weighted-fair policy charges big jobs more.
		Cost:    float64(len(j.frames)),
		Payload: j,
	}
	if err := s.queue.Push(j.item); err != nil {
		cancel()
		s.rejectLocked(rejectReason(err))
		return Status{}, fmt.Errorf("service: %w", err)
	}
	s.nextSeq++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if s.cfg.Timeline {
		j.rec = timeline.New(0)
		j.schedTrack = j.rec.Track("sched/" + j.id)
		j.enqueuedAt = j.rec.Now()
		j.schedTrack.InstantAt(timeline.OpEnqueue, -1, j.enqueuedAt, int64(j.seq))
	}
	s.publishLocked(j, Event{Type: "queued"})
	s.startQueuedLocked()
	return j.status(), nil
}

// startQueuedLocked asks the scheduler for dispatchable jobs while
// concurrency slots are free; the policy decides which tenant's job
// each slot gets. Callers hold s.mu.
func (s *Service) startQueuedLocked() {
	for {
		it := s.sched.TryStart(s.queue)
		if it == nil {
			return
		}
		j := it.Payload.(*job)
		j.state = StateRunning
		j.started = time.Now()
		if j.schedTrack != nil {
			now := j.rec.Now()
			j.schedTrack.InstantAt(timeline.OpAdmit, -1, now, int64(j.seq))
			j.schedTrack.Span(timeline.OpQueueWait, -1, j.enqueuedAt, now, int64(j.seq))
		}
		s.publishLocked(j, Event{Type: "started"})
		s.wg.Add(1)
		go s.run(j)
	}
}

// run executes one job to a terminal state: cache lookups and flight
// coalescing first, then farm runs over the frames this job leads,
// retried up to the spec's budget. Each attempt resumes, not restarts:
// frames that reached the job (via OnFrame, the cache, or a coalesced
// flight) before a failure are kept, so a retried job only re-renders
// what is actually missing.
func (s *Service) run(j *job) {
	defer s.wg.Done()
	var err error
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		j.attempts = attempt + 1
		s.mu.Unlock()
		err = s.render(j)
		if err != nil {
			// Release the flights this attempt still leads before anything
			// else — followers (other jobs wanting the same frames) fall
			// back to rendering them instead of waiting out this job's
			// backoff. A retry re-acquires: by then a peer may have cached
			// the frames, be mid-flight (this job follows), or neither
			// (this job leads again).
			s.abortLed(j)
		}
		if err == nil || j.ctx.Err() != nil || attempt >= j.spec.Retries {
			break
		}
		s.mu.Lock()
		s.jobRetries++
		s.publishLocked(j, Event{Type: "retrying", Error: err.Error()})
		s.mu.Unlock()
		if backoff := time.Duration(j.spec.RetryBackoffMS) * time.Millisecond; backoff > 0 {
			select {
			case <-time.After(backoff << attempt):
			case <-j.ctx.Done():
			}
		}
	}

	s.mu.Lock()
	j.finished = time.Now()
	ev := Event{Type: "done"}
	switch {
	case err == nil:
		j.state = StateDone
	case j.ctx.Err() != nil:
		j.state = StateCancelled
		j.err = context.Cause(j.ctx)
		ev = Event{Type: "cancelled", Error: j.err.Error()}
	default:
		j.state = StateFailed
		j.err = err
		ev = Event{Type: "failed", Error: err.Error()}
	}
	if j.coalesced > 0 {
		s.coalescedJobs++
	}
	if j.rec != nil {
		s.mergeTimelineLocked(j, j.rec.Snapshot())
	}
	s.publishLocked(j, ev)
	close(j.finishedCh)
	j.cancel()
	s.sched.Finish()
	s.startQueuedLocked()
	s.mu.Unlock()
}

// abortLed releases every in-flight cache entry the job still leads,
// waking followers with an empty close so they render (or re-join) the
// frames themselves. Frames the job delivered are not affected — their
// flights completed at Put time.
func (s *Service) abortLed(j *job) {
	s.mu.Lock()
	ledKeys := make([]int, 0, len(j.led))
	for f := range j.led {
		ledKeys = append(ledKeys, f)
	}
	j.led = make(map[int]bool)
	s.mu.Unlock()
	for _, f := range ledKeys {
		s.cache.Abort(framecache.Key{Seq: j.key, Frame: f})
	}
}

// frameWait is one coalesced frame this job is waiting on another
// job's flight for.
type frameWait struct {
	frame int
	ch    <-chan *fb.Framebuffer
}

// render fills j.frames from the cache, from other jobs' in-flight
// renders, and from the farm — repeating until every frame is present
// or the job fails. Most jobs make a single pass; the loop re-enters
// only when a flight this job followed was aborted (its leader failed
// or was cancelled), in which case the frames are re-acquired and this
// job leads them itself.
func (s *Service) render(j *job) error {
	spec := j.spec
	for {
		if err := j.ctx.Err(); err != nil {
			return err
		}

		// Phase 1: content-addressed cache and flight coalescing. Frame
		// coherence lifted to the service level — repeated, overlapping
		// and *concurrent* requests re-render nothing.
		missing := make([]bool, len(j.frames))
		var waits []frameWait
		anyLead, remaining := false, 0
		for f := spec.StartFrame; f < spec.EndFrame; f++ {
			idx := f - spec.StartFrame
			s.mu.Lock()
			have := j.frames[idx] != nil
			ledAlready := j.led[f]
			s.mu.Unlock()
			if have {
				// Already on the job (a prior attempt or pass got this
				// far); don't re-count or re-announce it.
				continue
			}
			remaining++
			if ledAlready {
				// A previous attempt registered this job as the frame's
				// producer; keep leading it rather than following our own
				// flight.
				missing[idx] = true
				anyLead = true
				continue
			}
			img, wait, _ := s.cache.Acquire(framecache.Key{Seq: j.key, Frame: f})
			switch {
			case img != nil:
				s.mu.Lock()
				j.frames[idx] = img
				j.done++
				j.cacheHits++
				s.framesCached++
				s.publishLocked(j, Event{Type: "frame", Frame: f, Cached: true})
				s.mu.Unlock()
				remaining--
			case wait != nil:
				waits = append(waits, frameWait{frame: f, ch: wait})
				s.mu.Lock()
				j.schedTrack.Instant(timeline.OpCoalesce, f, int64(j.seq))
				s.mu.Unlock()
			default:
				s.mu.Lock()
				j.led[f] = true
				s.mu.Unlock()
				missing[idx] = true
				anyLead = true
			}
		}
		if remaining == 0 {
			return nil
		}

		// Phase 2: group the frames this job leads into contiguous runs,
		// split at camera cuts (the coherence engine is only valid within
		// a camera-stationary sequence), and drive the farm over each run.
		if anyLead {
			runs := missingRuns(missing, spec.StartFrame, j.scene)
			for _, r := range runs {
				if err := j.ctx.Err(); err != nil {
					return err
				}
				if err := s.renderRange(j, r[0], r[1]); err != nil {
					return err
				}
			}
		}

		// Phase 3: collect the coalesced frames as their leaders finish
		// them. A closed-empty channel means the leader aborted — loop
		// around and acquire the frame again (this job will usually lead
		// it then).
		aborted := false
		for _, fw := range waits {
			select {
			case img, ok := <-fw.ch:
				if !ok || img == nil {
					aborted = true
					continue
				}
				s.mu.Lock()
				if j.frames[fw.frame-spec.StartFrame] == nil {
					j.frames[fw.frame-spec.StartFrame] = img
					j.done++
					j.coalesced++
					s.coalescedFrames++
					s.publishLocked(j, Event{Type: "frame", Frame: fw.frame, Coalesced: true})
				}
				s.mu.Unlock()
			case <-j.ctx.Done():
				return j.ctx.Err()
			}
		}
		if !aborted {
			return nil
		}
	}
}

// missingRuns converts the missing-frame mask (indexed from offset)
// into absolute contiguous [start, end) runs, further split at camera
// cuts so the coherence engine never spans a cut.
func missingRuns(missing []bool, offset int, sc *scene.Scene) [][2]int {
	// Camera-stationary sequence boundaries: a run may not cross one.
	cut := make(map[int]bool)
	for _, sq := range anim.SplitSequences(sc) {
		cut[sq.Start] = true
	}
	var runs [][2]int
	for i := 0; i < len(missing); {
		if !missing[i] {
			i++
			continue
		}
		start := i
		for i < len(missing) && missing[i] && (i == start || !cut[offset+i]) {
			i++
		}
		runs = append(runs, [2]int{offset + start, offset + i})
	}
	return runs
}

// renderRange drives one farm run over absolute frames [start, end):
// it leases worker slots from the fleet pool, sizes the run to the
// lease, and streams each completed frame into the cache (completing
// any coalesced flights) and the job.
func (s *Service) renderRange(j *job, start, end int) error {
	scheme, err := schemeByName(j.spec.Scheme)
	if err != nil {
		return err
	}
	driver, err := s.pool.Driver(j.spec.Driver)
	if err != nil {
		return err
	}
	want := s.cfg.Workers
	if j.spec.Driver == "virtual" {
		want = len(s.cfg.Machines)
	}
	grant, err := s.leaser.Acquire(j.ctx, want)
	if err != nil {
		return err
	}
	defer grant.Return()
	slots := grant.Granted()
	s.mu.Lock()
	j.schedTrack.Instant(timeline.OpLease, start, int64(slots))
	s.mu.Unlock()

	var rec *timeline.Recorder
	if s.cfg.Timeline {
		// One recorder per farm run; runs merge into the job's timeline
		// below (each run has its own epoch, which the trace viewer and
		// analyzer both tolerate — spans never interleave within a track).
		rec = timeline.New(0)
	}
	machines := s.cfg.Machines
	if slots < len(machines) {
		machines = machines[:slots]
	}
	workers := s.cfg.Workers
	if slots < workers {
		workers = slots
	}
	cfg := farm.Config{
		Scene: j.scene, W: j.spec.W, H: j.spec.H,
		Scheme:     scheme,
		StartFrame: start, EndFrame: end,
		Coherence:      !j.spec.Plain,
		Samples:        j.spec.Samples,
		Threads:        j.spec.Threads,
		ObjSpaceShards: j.spec.ObjSpaceShards,
		Machines:       machines,
		Workers:        workers,
		Ctx:            j.ctx,
		Heartbeat:      s.cfg.Heartbeat, Liveness: s.cfg.Liveness,
		StallTimeout:  s.cfg.StallTimeout,
		FrameRetries:  s.cfg.FrameRetries,
		Speculate:     s.cfg.Speculate,
		WrapConn:      s.cfg.FaultWrap,
		WireDelta:     s.cfg.WireDelta,
		WireCompress:  s.cfg.WireCompress,
		WireSpanCodec: s.cfg.WireSpanCodec,
		Timeline:      rec,
	}
	if s.cfg.DFBSinks > 0 {
		cfg.DFB = &farm.DFBConfig{Sinks: s.cfg.DFBSinks}
	}
	cfg.OnFrame = func(f int, img *fb.Framebuffer) error {
		// Put completes any coalesced flight on this frame: followers'
		// wait channels receive the framebuffer the moment it lands.
		s.cache.Put(framecache.Key{Seq: j.key, Frame: f}, img)
		s.mu.Lock()
		delete(j.led, f)
		j.frames[f-j.spec.StartFrame] = img
		j.done++
		s.framesRendered++
		s.publishLocked(j, Event{Type: "frame", Frame: f})
		s.mu.Unlock()
		return nil
	}
	res, err := driver.Render(cfg)
	// A failed run still returns its partial result; the faults it
	// absorbed (workers lost, frames requeued) must survive into the
	// job's status and /metrics or failed attempts would be invisible.
	if res != nil {
		s.mu.Lock()
		j.rays.Merge(res.Run.TotalRays())
		s.rays.Merge(res.Run.TotalRays())
		j.faults.Merge(res.Faults)
		s.faults.Merge(res.Faults)
		j.wire.Merge(res.Wire)
		s.wire.Merge(res.Wire)
		j.objspace.Merge(res.ObjSpace)
		s.objspace.Merge(res.ObjSpace)
		for _, w := range res.Workers {
			s.workerBusy[w.Worker] += w.Busy
		}
		if res.Timeline != nil {
			s.mergeTimelineLocked(j, res.Timeline)
		}
		s.mu.Unlock()
	}
	return err
}

// mergeTimelineLocked folds a timeline (a farm run's, or the job's own
// sched track) into the job's merged cluster timeline; callers hold
// s.mu.
func (s *Service) mergeTimelineLocked(j *job, tl *timeline.Timeline) {
	if tl == nil {
		return
	}
	if j.timeline == nil {
		j.timeline = &timeline.Timeline{Meta: map[string]string{}}
	}
	for k, v := range tl.Meta {
		j.timeline.Meta[k] = v
	}
	for i := range tl.Tracks {
		td := &tl.Tracks[i]
		j.timeline.AddTrack(td.Name, td.Events, td.Dropped)
	}
	j.timeline.Sort()
}

// JobTimeline returns a job's merged cluster timeline, which grows as
// the job's farm runs complete. Nil when timeline recording is off or
// no run has finished yet. The timeline is shared and must not be
// modified.
func (s *Service) JobTimeline(id string) (*timeline.Timeline, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no job %q", id)
	}
	return j.timeline, nil
}

// FaultStats snapshots the fault-handling counters aggregated over every
// farm run the service has driven.
func (s *Service) FaultStats() stats.FaultCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// WireStats snapshots the frame-result wire counters (deltas,
// compression, bytes) aggregated over every farm run the service has
// driven.
func (s *Service) WireStats() stats.WireStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wire
}

// ObjSpaceStats snapshots the object-space sharding counters (rays
// forwarded, forwarding bytes, per-shard residents) aggregated over
// every farm run the service has driven.
func (s *Service) ObjSpaceStats() stats.ObjSpaceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.objspace
	out.PerShard = append([]stats.ObjSpaceShard(nil), s.objspace.PerShard...)
	return out
}

// Cancel stops a job: a queued job is removed from the queue, a running
// job has its context cancelled, which the farm drivers observe
// promptly. Cancelling a finished job is a no-op.
func (s *Service) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("service: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		s.queue.Remove(j.item)
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		if j.rec != nil {
			s.mergeTimelineLocked(j, j.rec.Snapshot())
		}
		s.publishLocked(j, Event{Type: "cancelled", Error: j.err.Error()})
		close(j.finishedCh)
		j.cancel()
		st := j.status()
		s.mu.Unlock()
		return st, nil
	case StateRunning:
		st := j.status()
		s.mu.Unlock()
		j.cancel() // the runner publishes the terminal event
		return st, nil
	default:
		st := j.status()
		s.mu.Unlock()
		return st, nil
	}
}

// JobStatus returns the current status of a job.
func (s *Service) JobStatus(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("service: no job %q", id)
	}
	return j.status(), nil
}

// Jobs lists every job in submission order.
func (s *Service) Jobs() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	return out
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// returning the final status.
func (s *Service) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("service: no job %q", id)
	}
	select {
	case <-j.finishedCh:
		return s.JobStatus(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// Frame returns the framebuffer of one absolute frame of a job, which
// is available as soon as its "frame" progress event fires — before the
// job completes. The framebuffer is shared and must not be modified.
func (s *Service) Frame(id string, frame int) (*fb.Framebuffer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("service: no job %q", id)
	}
	if frame < j.spec.StartFrame || frame >= j.spec.EndFrame {
		return nil, fmt.Errorf("service: frame %d outside job range [%d,%d)",
			frame, j.spec.StartFrame, j.spec.EndFrame)
	}
	img := j.frames[frame-j.spec.StartFrame]
	if img == nil {
		return nil, fmt.Errorf("service: frame %d not rendered yet", frame)
	}
	return img, nil
}

// CacheStats snapshots the frame cache counters.
func (s *Service) CacheStats() stats.CacheStats { return s.cache.Stats() }

// FleetStats snapshots the capacity source farm runs lease from: the
// private pool in single-replica mode, the shared broker's view when a
// Leaser was configured.
func (s *Service) FleetStats() fleet.Stats { return s.leaser.Stats() }

// QueueDepth returns the number of queued (not yet running) jobs.
func (s *Service) QueueDepth() int { return s.queue.Len() }

// QueueDepths returns the queued-job count per tenant.
func (s *Service) QueueDepths() map[string]int { return s.queue.Depths() }

// Rejected snapshots the rejected-submission counters by reason.
func (s *Service) Rejected() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.rejected))
	for r, n := range s.rejected {
		out[r] = n
	}
	return out
}

// Draining reports whether the service has stopped admission.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// subscribe registers a progress listener on a job. The returned channel
// first replays one Event per frame already completed, then carries live
// events; a terminal event ends the stream. The second return is the
// job's status at subscription time (terminal states produce no further
// events).
func (s *Service) subscribe(id string) (<-chan Event, Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, Status{}, fmt.Errorf("service: no job %q", id)
	}
	// Big enough for every event a job can emit (queued + started +
	// per-frame + terminal) so a live subscriber never drops.
	ch := make(chan Event, len(j.frames)+8)
	st := j.status()
	if !j.state.Terminal() {
		// Replay completed frames so late subscribers see the full
		// stream. Holding s.mu excludes concurrent publishes, so the
		// replay cannot interleave with live events.
		done := 0
		for i, img := range j.frames {
			if img != nil {
				done++
				ch <- Event{
					Type: "frame", Job: j.id, Frame: j.spec.StartFrame + i,
					FramesDone: done, FramesTotal: len(j.frames),
				}
			}
		}
		j.subs = append(j.subs, ch)
	}
	return ch, st, nil
}

// unsubscribe removes a listener.
func (s *Service) unsubscribe(id string, ch <-chan Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	for i, c := range j.subs {
		if (<-chan Event)(c) == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// publishLocked fans an event out to the job's subscribers; callers hold
// s.mu. Sends never block: the subscription buffer is sized for a full
// job, so a drop only happens to a pathologically stalled consumer.
func (s *Service) publishLocked(j *job, ev Event) {
	ev.Job = j.id
	ev.FramesDone = j.done
	ev.FramesTotal = len(j.frames)
	if ev.Type != "frame" {
		ev.Frame = -1
	}
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Type != "frame" && ev.Type != "queued" && ev.Type != "started" && ev.Type != "retrying" {
		// Terminal event: close the streams.
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
}

// Drain gracefully shuts the service down: admission stops (further
// submissions are rejected and counted), queued and running jobs run to
// completion, and their SSE streams flush their terminal events. If ctx
// expires first, the jobs still unfinished are cancelled and Drain
// returns the context's error. Drain is idempotent; Close after Drain
// is a cheap no-op.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.sched.Drain()
		for _, id := range s.order {
			j := s.jobs[id]
			if !j.state.Terminal() && j.schedTrack != nil {
				j.schedTrack.Instant(timeline.OpDrain, -1, int64(j.seq))
			}
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		s.wg.Wait()
		return ctx.Err()
	}
}

// cancelAll cancels every job in id order.
func (s *Service) cancelAll() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s.mu.Unlock()
	for _, id := range ids {
		_, _ = s.Cancel(id)
	}
}

// Close cancels all queued and running jobs and waits for runners to
// exit. Further submissions fail.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
}
