package objspace

import (
	"nowrender/internal/geom"
	"nowrender/internal/scene"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

// router implements trace.Intersector over a cluster's shards: every
// nearest-hit query sweeps the slabs front-to-back along the partition
// axis, forwarding the ray (through the wire codec, even in-process) at
// each shard-to-shard transition. One router per worker goroutine — the
// mailboxes are single-owner scratch, the cluster itself is read-only.
type router struct {
	c     *Cluster
	stamp uint64
	// mail holds per-shard mailbox stamps indexed by shard-local object
	// id, so one ray never re-tests an object it met in an earlier voxel
	// of the same shard. (Across shards an object IS retested, exactly as
	// a distributed deployment would: shard owners share no mailboxes.)
	mail [][]uint64
}

func (c *Cluster) newRouter() *router {
	rt := &router{c: c, mail: make([][]uint64, len(c.shard))}
	for i, s := range c.shard {
		rt.mail[i] = make([]uint64, len(s.Objs))
	}
	return rt
}

// Intersect finds the globally nearest hit along r in (tMin, tMax) by
// routing the ray across shards. The result is identical to the
// replicated grid's answer: any object able to produce a nearer hit
// overlaps an earlier slab and was already tested there, so terminating
// at the first shard whose exit parameter the running best does not
// exceed loses nothing.
func (rt *router) Intersect(r vm.Ray, tMin, tMax float64) (geom.Hit, *scene.ResolvedObject, bool) {
	c := rt.c
	rt.stamp++
	stamp := rt.stamp
	best := geom.Hit{T: tMax}
	bestObj := int32(-1)
	found := false

	// Unbounded primitives are replicated on the frame owner and tested
	// once per ray in object order, as the replicated tracer does.
	for _, id := range c.unbounded {
		ro := &c.objs[id]
		if h, ok := ro.Shape.Intersect(r, tMin, best.T); ok {
			best, bestObj, found = h, id, true
		}
	}

	// Sweep slabs front-to-back: ascending shard order when the ray
	// points up the partition axis, descending otherwise.
	n := len(c.shard)
	si, step := 0, 1
	if r.Dir.Axis(c.part.Axis) < 0 {
		si, step = n-1, -1
	}
	prev := -1 // last shard that actually walked this ray
	for k := 0; k < n; k, si = k+1, si+step {
		s := c.shard[si]
		// Clip against the slab with the running best as the upper bound:
		// slabs entirely beyond the settled hit are skipped without a
		// forward, exactly as a remote owner would drop the ray.
		iv, ok := s.Bounds.IntersectRay(r, tMin, best.T)
		if !ok {
			continue
		}
		if prev >= 0 {
			// Shard-to-shard transition: serialize the full ray state
			// through the wire codec and resume from the decoded copy.
			// Floats travel as IEEE-754 bits, so the resumed state is
			// bit-identical — and the forward/byte counters measure real
			// serialized traffic, attributed to the sending shard.
			fs := ForwardState{
				Pixel: -1, Shard: int32(si),
				Ray: r, TMin: tMin, TMax: tMax,
				Throughput: vm.Splat(1),
				Found:      found, BestObj: bestObj, Best: best,
			}
			data := EncodeForward(&fs)
			if c.stats != nil {
				c.stats.countForward(prev, len(data))
			}
			if dec, err := DecodeForward(data); err == nil {
				r, tMin, tMax = dec.Ray, dec.TMin, dec.TMax
				best, bestObj, found = dec.Best, dec.BestObj, dec.Found
			}
		}
		mail := rt.mail[si]
		s.Grid.Walk(r, tMin, tMax, func(idx int, tEnter, tLeave float64) bool {
			for _, lid := range s.Grid.Items(idx) {
				if mail[lid] == stamp {
					continue
				}
				mail[lid] = stamp
				so := &s.Objs[lid]
				if h, ok := so.RO.Shape.Intersect(r, tMin, best.T); ok {
					best, bestObj, found = h, so.Global, true
				}
			}
			return !(found && best.T <= tLeave)
		})
		// Terminate once the best hit lies inside the slabs already swept;
		// later slabs can only produce farther hits.
		if found && best.T <= iv.Max {
			break
		}
		prev = si
	}
	if !found {
		return geom.Hit{}, nil, false
	}
	return best, &c.objs[bestObj], true
}

// compile-time check: the router satisfies the tracer's seam.
var _ trace.Intersector = (*router)(nil)
