package nowrender_test

import (
	"fmt"

	"nowrender"
)

// Example renders a single frame of a programmatically built scene.
func Example() {
	sc := nowrender.NewScene("demo")
	sc.Camera = nowrender.Camera{
		Pos: nowrender.V(0, 1, 5), LookAt: nowrender.V(0, 0.5, 0),
		Up: nowrender.V(0, 1, 0), FOV: 60,
	}
	sc.Add("floor", nowrender.NewPlane(nowrender.V(0, 1, 0), 0),
		nowrender.Matte(nowrender.RGB(0.9, 0.9, 0.9)), nil)
	sc.Add("ball", nowrender.NewSphere(nowrender.V(0, 0.5, 0), 0.5),
		nowrender.Matte(nowrender.RGB(1, 0, 0)), nil)
	sc.AddLight("key", nowrender.V(3, 5, 4), nowrender.RGB(1, 1, 1))

	img, err := nowrender.RenderFrame(sc, 0, 64, 48)
	if err != nil {
		panic(err)
	}
	fmt.Println(img.W, img.H)
	// Output: 64 48
}

// ExampleParseScene parses the POV-style scene description language.
func ExampleParseScene() {
	sc, err := nowrender.ParseScene("sdl", `
		global_settings { frames 10 max_depth 5 }
		camera { location <0, 1, 5> look_at <0, 0, 0> }
		light_source { <3, 5, 4> color rgb <1, 1, 1> }
		sphere { <0, 0.5, 0>, 0.5
			pigment { color rgb <1, 0, 0> }
			animate { keyframe 0 <0,0,0> keyframe 9 <2,0,0> }
		}
	`)
	if err != nil {
		panic(err)
	}
	fmt.Println(sc.Frames, len(sc.Objects), sc.Objects[0].MovedBetween(0, 1))
	// Output: 10 1 true
}

// ExampleRenderFarmVirtual runs the paper's render farm on the
// deterministic virtual network of workstations.
func ExampleRenderFarmVirtual() {
	sc := nowrender.NewtonScene(4)
	res, err := nowrender.RenderFarmVirtual(nowrender.FarmConfig{
		Scene: sc, W: 60, H: 80, Coherence: true,
		Scheme:   nowrender.FrameDivision{BlockW: 30, BlockH: 40, Adaptive: true},
		Machines: nowrender.PaperTestbed(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Frames), res.Makespan > 0)
	// Output: 4 true
}

// ExampleNewCoherenceEngine drives the frame-coherence algorithm frame
// by frame, showing the render/copy economy.
func ExampleNewCoherenceEngine() {
	sc := nowrender.NewtonScene(3)
	eng, err := nowrender.NewCoherenceEngine(sc, 60, 80,
		nowrender.NewRect(0, 0, 60, 80), 0, 3, nowrender.CoherenceOptions{})
	if err != nil {
		panic(err)
	}
	img := nowrender.NewFramebuffer(60, 80)
	for f := 0; f < 3; f++ {
		rep, err := eng.RenderFrame(f, img)
		if err != nil {
			panic(err)
		}
		fmt.Printf("frame %d: first=%v copied-some=%v\n",
			f, rep.Copied == 0, rep.Copied > 0)
	}
	// Output:
	// frame 0: first=true copied-some=false
	// frame 1: first=false copied-some=true
	// frame 2: first=false copied-some=true
}
