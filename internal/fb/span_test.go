package fb

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSpanRoundTrip(t *testing.T) {
	const w, h = 20, 10
	src := New(w, h)
	rng := rand.New(rand.NewSource(5))
	rng.Read(src.Pix)

	spans := []Span{
		{Y: 0, X0: 0, X1: w}, // full row
		{Y: 3, X0: 7, X1: 8}, // single pixel
		{Y: 9, X0: 15, X1: 20},
	}
	if got := SpanArea(spans); got != w+1+5 {
		t.Fatalf("SpanArea = %d, want %d", got, w+1+5)
	}
	pix := src.AppendSpans(nil, spans)
	if len(pix) != SpanArea(spans)*3 {
		t.Fatalf("AppendSpans packed %d bytes, want %d", len(pix), SpanArea(spans)*3)
	}

	dst := New(w, h)
	if err := dst.ApplySpans(spans, pix); err != nil {
		t.Fatal(err)
	}
	// The spanned pixels must match the source, everything else stays
	// zero.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			o := (y*w + x) * 3
			inSpan := false
			for _, s := range spans {
				if y == s.Y && x >= s.X0 && x < s.X1 {
					inSpan = true
				}
			}
			want := []byte{0, 0, 0}
			if inSpan {
				want = src.Pix[o : o+3]
			}
			if !bytes.Equal(dst.Pix[o:o+3], want) {
				t.Fatalf("pixel (%d,%d) = %v, want %v (inSpan=%v)", x, y, dst.Pix[o:o+3], want, inSpan)
			}
		}
	}
}

func TestApplySpansRejects(t *testing.T) {
	f := New(8, 8)
	ok := []Span{{Y: 1, X0: 2, X1: 4}}
	okPix := make([]byte, 2*3)
	cases := []struct {
		name  string
		spans []Span
		pix   []byte
	}{
		{"row out of range", []Span{{Y: 8, X0: 0, X1: 2}}, make([]byte, 6)},
		{"negative row", []Span{{Y: -1, X0: 0, X1: 2}}, make([]byte, 6)},
		{"x past width", []Span{{Y: 0, X0: 6, X1: 9}}, make([]byte, 9)},
		{"empty span", []Span{{Y: 0, X0: 3, X1: 3}}, nil},
		{"inverted span", []Span{{Y: 0, X0: 4, X1: 2}}, nil},
		{"pix too short", ok, okPix[:3]},
		{"pix too long", ok, append(append([]byte(nil), okPix...), 1, 2, 3)},
	}
	for _, tc := range cases {
		if err := f.ApplySpans(tc.spans, tc.pix); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := f.ApplySpans(ok, okPix); err != nil {
		t.Errorf("valid spans rejected: %v", err)
	}
}
