package timeline

// OffsetEstimator estimates the constant offset mapping one worker's
// recorder clock onto the master's, so shipped worker events merge into
// the cluster timeline with corrected timestamps.
//
// Two sample sources feed it, in preference order:
//
//   - Heartbeat RTTs (Cristian's algorithm): the master stamps its
//     clock into each ping, the worker answers with the stamp plus its
//     own clock, and the sample with the smallest round trip gives the
//     tightest bound — offset = worker_now - (t_send + rtt/2), accurate
//     to ±rtt/2.
//   - One-way result messages: every shipped frame result carries the
//     worker clock at encode time; master_recv - worker_now
//     overestimates the offset by the (unknowable one-way) transit
//     latency, so the minimum over the run is the best fallback when
//     heartbeats are off.
//
// Both clocks are monotonic (time.Since an epoch), so a single constant
// per worker suffices and correction preserves per-track event order.
type OffsetEstimator struct {
	hasRTT    bool
	bestRTT   int64
	rttOffset int64

	hasOneWay bool
	oneWayMin int64
}

// AddRTT feeds one heartbeat sample: the master clock at ping send
// (sendNs) and at pong receipt (recvNs), and the worker clock stamped
// into the pong (workerNs). Samples with nonsense timing are ignored.
func (o *OffsetEstimator) AddRTT(sendNs, recvNs, workerNs int64) {
	rtt := recvNs - sendNs
	if rtt < 0 {
		return
	}
	if !o.hasRTT || rtt < o.bestRTT {
		o.hasRTT = true
		o.bestRTT = rtt
		o.rttOffset = workerNs - (sendNs + rtt/2)
	}
}

// AddOneWay feeds one result-message sample: the master clock at
// receipt and the worker clock stamped at encode time.
func (o *OffsetEstimator) AddOneWay(recvNs, workerNs int64) {
	d := workerNs - recvNs
	if !o.hasOneWay || d > o.oneWayMin {
		// workerNs - recvNs = offset - transit: the largest sample has
		// the least transit baked in.
		o.hasOneWay = true
		o.oneWayMin = d
	}
}

// Offset returns the estimated worker→master correction in nanoseconds:
// add it to a worker timestamp to place the event on the master clock.
// Zero when no samples arrived (a legacy worker ships no spans anyway).
func (o *OffsetEstimator) Offset() int64 {
	switch {
	case o.hasRTT:
		return -o.rttOffset
	case o.hasOneWay:
		return -o.oneWayMin
	}
	return 0
}

// Quality describes which source produced the estimate: "rtt",
// "one-way" or "none".
func (o *OffsetEstimator) Quality() string {
	switch {
	case o.hasRTT:
		return "rtt"
	case o.hasOneWay:
		return "one-way"
	}
	return "none"
}
