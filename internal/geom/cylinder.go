package geom

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Cylinder is a capped cylinder between two end points, POV-Ray's
// `cylinder { <base>, <cap>, radius }`. The Newton scene uses sixteen of
// these for the frame and strings.
type Cylinder struct {
	Base, Cap vm.Vec3
	Radius    float64
	// Open omits the end caps when true (POV's `open` keyword).
	Open bool

	axis   vm.Vec3 // unit vector Base -> Cap
	height float64
}

// NewCylinder returns a capped cylinder. Base and Cap must be distinct.
func NewCylinder(base, cap vm.Vec3, radius float64) *Cylinder {
	c := &Cylinder{Base: base, Cap: cap, Radius: radius}
	d := cap.Sub(base)
	c.height = d.Len()
	c.axis = d.Scale(1 / c.height)
	return c
}

// NewOpenCylinder returns a cylinder without end caps.
func NewOpenCylinder(base, cap vm.Vec3, radius float64) *Cylinder {
	c := NewCylinder(base, cap, radius)
	c.Open = true
	return c
}

// Intersect implements Shape.
func (c *Cylinder) Intersect(r vm.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: math.Inf(1)}
	found := false

	// Lateral surface: solve |(o + t*d) - base - ((o + t*d - base)·a)a| = R.
	oc := r.Origin.Sub(c.Base)
	dPerp := r.Dir.Sub(c.axis.Scale(r.Dir.Dot(c.axis)))
	oPerp := oc.Sub(c.axis.Scale(oc.Dot(c.axis)))
	a := dPerp.Dot(dPerp)
	b := 2 * dPerp.Dot(oPerp)
	cc := oPerp.Dot(oPerp) - c.Radius*c.Radius
	t0, t1, n := vm.SolveQuadratic(a, b, cc)
	for i, t := range [2]float64{t0, t1} {
		if i >= n || t <= tMin || t >= tMax || t >= best.T {
			continue
		}
		p := r.At(t)
		h := p.Sub(c.Base).Dot(c.axis)
		if h < 0 || h > c.height {
			continue
		}
		axisPt := c.Base.Add(c.axis.Scale(h))
		outward := p.Sub(axisPt).Scale(1 / c.Radius)
		normal, inside := faceForward(outward, r.Dir)
		// Cylindrical parameterisation.
		onb := vm.NewONB(c.axis)
		u := 0.5 + math.Atan2(outward.Dot(onb.V), outward.Dot(onb.U))/(2*math.Pi)
		best = Hit{T: t, Point: p, Normal: normal, Inside: inside, U: u, V: h / c.height}
		found = true
	}

	if !c.Open {
		for _, end := range [2]struct {
			center vm.Vec3
			normal vm.Vec3
		}{
			{c.Base, c.axis.Neg()},
			{c.Cap, c.axis},
		} {
			denom := end.normal.Dot(r.Dir)
			if math.Abs(denom) < vm.Eps {
				continue
			}
			t := end.normal.Dot(end.center.Sub(r.Origin)) / denom
			if t <= tMin || t >= tMax || t >= best.T {
				continue
			}
			p := r.At(t)
			rel := p.Sub(end.center)
			if rel.Len2() > c.Radius*c.Radius {
				continue
			}
			normal, inside := faceForward(end.normal, r.Dir)
			onb := vm.NewONB(end.normal)
			best = Hit{
				T: t, Point: p, Normal: normal, Inside: inside,
				U: rel.Dot(onb.U)/c.Radius*0.5 + 0.5,
				V: rel.Dot(onb.V)/c.Radius*0.5 + 0.5,
			}
			found = true
		}
	}

	if !found {
		return Hit{}, false
	}
	return best, true
}

// Bounds implements Shape.
func (c *Cylinder) Bounds() vm.AABB {
	// Tight per-axis extent: for each axis, the lateral surface extends
	// R*sqrt(1 - a_i^2) beyond the segment endpoints.
	b := vm.EmptyAABB()
	for _, p := range [2]vm.Vec3{c.Base, c.Cap} {
		b = b.Extend(p)
	}
	pad := vm.V(
		c.Radius*math.Sqrt(math.Max(0, 1-c.axis.X*c.axis.X)),
		c.Radius*math.Sqrt(math.Max(0, 1-c.axis.Y*c.axis.Y)),
		c.Radius*math.Sqrt(math.Max(0, 1-c.axis.Z*c.axis.Z)),
	)
	return vm.AABB{Min: b.Min.Sub(pad), Max: b.Max.Add(pad)}
}
