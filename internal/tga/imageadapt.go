package tga

import (
	"image"
	"image/color"
	"image/png"
	"io"
	"os"

	"nowrender/internal/fb"
)

// frameImage adapts a Framebuffer to the standard image.Image interface
// so frames interoperate with the image ecosystem (PNG encoding below,
// or any stdlib-compatible consumer).
type frameImage struct {
	f *fb.Framebuffer
}

// ToImage wraps a framebuffer as an image.Image (no copy).
func ToImage(f *fb.Framebuffer) image.Image { return frameImage{f: f} }

// ColorModel implements image.Image.
func (fi frameImage) ColorModel() color.Model { return color.RGBAModel }

// Bounds implements image.Image.
func (fi frameImage) Bounds() image.Rectangle {
	return image.Rect(0, 0, fi.f.W, fi.f.H)
}

// At implements image.Image.
func (fi frameImage) At(x, y int) color.Color {
	r, g, b := fi.f.At(x, y)
	return color.RGBA{R: r, G: g, B: b, A: 0xFF}
}

// FromImage copies any image.Image into a framebuffer, quantising to
// 24-bit RGB.
func FromImage(img image.Image) *fb.Framebuffer {
	b := img.Bounds()
	out := fb.New(b.Dx(), b.Dy())
	for y := 0; y < b.Dy(); y++ {
		for x := 0; x < b.Dx(); x++ {
			r, g, bl, _ := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.SetRGB(x, y, byte(r>>8), byte(g>>8), byte(bl>>8))
		}
	}
	return out
}

// EncodePNG writes img as PNG via the stdlib encoder.
func EncodePNG(w io.Writer, img *fb.Framebuffer) error {
	return png.Encode(w, ToImage(img))
}

// DecodePNG reads a PNG into a framebuffer.
func DecodePNG(r io.Reader) (*fb.Framebuffer, error) {
	img, err := png.Decode(r)
	if err != nil {
		return nil, err
	}
	return FromImage(img), nil
}

// WriteFilePNG encodes img to path as PNG.
func WriteFilePNG(path string, img *fb.Framebuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePNG(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
