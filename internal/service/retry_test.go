package service

import (
	"bytes"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nowrender/internal/farm"
	"nowrender/internal/faulty"
	"nowrender/internal/fb"
)

// --- frame-cache eviction and TTL ---------------------------------------

// TestCacheEvictionTable drives put/get sequences against a 3-frame
// budget and checks exactly which entries survive: eviction is LRU and a
// get refreshes recency.
func TestCacheEvictionTable(t *testing.T) {
	const side = 32
	frameBytes := int64(side * side * 3)
	type op struct {
		kind  string // "put" | "get"
		frame int
	}
	cases := []struct {
		name          string
		budget        int64
		ops           []op
		wantPresent   []int
		wantAbsent    []int
		wantEvictions uint64
	}{
		{
			name:        "lru-evicts-oldest",
			budget:      3 * frameBytes,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 3}, {"put", 4}},
			wantPresent: []int{2, 3, 4}, wantAbsent: []int{0, 1},
			wantEvictions: 2,
		},
		{
			name:        "get-refreshes-recency",
			budget:      3 * frameBytes,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"get", 0}, {"put", 3}},
			wantPresent: []int{0, 2, 3}, wantAbsent: []int{1},
			wantEvictions: 1,
		},
		{
			name:        "duplicate-put-refreshes-not-grows",
			budget:      3 * frameBytes,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 0}, {"put", 3}},
			wantPresent: []int{0, 2, 3}, wantAbsent: []int{1},
			wantEvictions: 1,
		},
		{
			name:        "frame-larger-than-budget-not-cached",
			budget:      frameBytes - 1,
			ops:         []op{{"put", 0}},
			wantPresent: nil, wantAbsent: []int{0},
			wantEvictions: 0,
		},
		{
			name:        "unlimited-budget-keeps-all",
			budget:      0,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 3}, {"put", 4}},
			wantPresent: []int{0, 1, 2, 3, 4}, wantAbsent: nil,
			wantEvictions: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewFrameCache(tc.budget)
			k := newSeqKey("scene", side, side, 1)
			for _, o := range tc.ops {
				switch o.kind {
				case "put":
					c.put(frameKey{seq: k, frame: o.frame}, fb.New(side, side))
				case "get":
					c.get(frameKey{seq: k, frame: o.frame})
				}
			}
			for _, f := range tc.wantPresent {
				if _, ok := c.get(frameKey{seq: k, frame: f}); !ok {
					t.Errorf("frame %d missing", f)
				}
			}
			for _, f := range tc.wantAbsent {
				if _, ok := c.get(frameKey{seq: k, frame: f}); ok {
					t.Errorf("frame %d unexpectedly present", f)
				}
			}
			cs := c.Stats()
			if cs.Evictions != tc.wantEvictions {
				t.Errorf("evictions = %d, want %d", cs.Evictions, tc.wantEvictions)
			}
			if tc.budget > 0 && cs.Bytes > tc.budget {
				t.Errorf("cache holds %d bytes over budget %d", cs.Bytes, tc.budget)
			}
		})
	}
}

// TestCacheTTLTable pins the lazy-expiry clockwork with an injected
// clock: entries serve until their deadline passes strictly, a stale hit
// counts as an expiry plus a miss, and re-putting a key pushes its
// deadline out.
func TestCacheTTLTable(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	cases := []struct {
		name    string
		ttl     time.Duration
		advance time.Duration
		wantHit bool
	}{
		{"no-ttl-never-expires", 0, 1000 * time.Hour, true},
		{"fresh-within-ttl", time.Minute, 59 * time.Second, true},
		{"exactly-at-deadline-still-served", time.Minute, time.Minute, true},
		{"stale-past-deadline", time.Minute, time.Minute + time.Second, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewFrameCacheTTL(0, tc.ttl)
			now := base
			c.now = func() time.Time { return now }
			k := frameKey{seq: newSeqKey("s", 8, 8, 1), frame: 0}
			c.put(k, fb.New(8, 8))
			now = base.Add(tc.advance)
			_, ok := c.get(k)
			if ok != tc.wantHit {
				t.Fatalf("hit = %v, want %v", ok, tc.wantHit)
			}
			cs := c.Stats()
			if tc.wantHit {
				if cs.Expired != 0 || cs.Entries != 1 {
					t.Errorf("expired=%d entries=%d, want 0/1", cs.Expired, cs.Entries)
				}
			} else {
				// A stale entry is dropped, counted, and its bytes freed.
				if cs.Expired != 1 || cs.Misses != 1 || cs.Entries != 0 || cs.Bytes != 0 {
					t.Errorf("expired=%d misses=%d entries=%d bytes=%d, want 1/1/0/0",
						cs.Expired, cs.Misses, cs.Entries, cs.Bytes)
				}
			}
		})
	}
}

// TestCacheTTLRefreshOnReput: re-producing a cached frame pushes its
// expiry out from the new production time.
func TestCacheTTLRefreshOnReput(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	c := NewFrameCacheTTL(0, time.Minute)
	now := base
	c.now = func() time.Time { return now }
	k := frameKey{seq: newSeqKey("s", 8, 8, 1), frame: 0}
	c.put(k, fb.New(8, 8))
	now = base.Add(40 * time.Second)
	c.put(k, fb.New(8, 8)) // refresh: new deadline is t+40s+60s
	now = base.Add(90 * time.Second)
	if _, ok := c.get(k); !ok {
		t.Fatal("refreshed entry expired on the original deadline")
	}
	now = base.Add(101 * time.Second)
	if _, ok := c.get(k); ok {
		t.Fatal("entry survived past its refreshed deadline")
	}
}

// --- job retry over farm failures ----------------------------------------

// TestJobRetryResumesPartialProgress: every local worker's connection
// severs on its second frame delivery, so the first attempt collapses
// with only part of the animation rendered. The retry must re-render
// only the missing frames (the delivered ones stay on the job and in the
// cache) and complete — with pixels identical to a fault-free service.
func TestJobRetryResumesPartialProgress(t *testing.T) {
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: farm.TagFrameDone, Dir: faulty.SendOnly, After: 2, Action: faulty.Sever}},
	}
	s := New(Config{FaultWrap: plan.Wrap})
	defer s.Close()

	st, err := s.Submit(JobSpec{
		Scene: "newton:6", W: 40, H: 32, Driver: "local",
		Scheme: "seqdiv-static", Retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (first attempt should have failed)", st.Attempts)
	}
	if st.FramesDone != 6 {
		t.Fatalf("frames done = %d, want 6", st.FramesDone)
	}
	if st.WorkersLost == 0 {
		t.Error("status reports no workers lost despite severed connections")
	}

	// The recovered animation is byte-identical to a fault-free render.
	clean := New(Config{})
	defer clean.Close()
	ref, err := clean.Submit(JobSpec{Scene: "newton:6", W: 40, H: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ref = waitDone(t, clean, ref.ID); ref.State != StateDone {
		t.Fatalf("reference job: %s (%s)", ref.State, ref.Error)
	}
	for f := 0; f < 6; f++ {
		got, err1 := s.Frame(st.ID, f)
		want, err2 := clean.Frame(ref.ID, f)
		if err1 != nil || err2 != nil {
			t.Fatalf("frame %d: %v / %v", f, err1, err2)
		}
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("frame %d differs from fault-free render", f)
		}
	}

	// The retry and fault counters surface in /metrics.
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"nowrender_job_retries_total",
		`nowrender_fault_events_total{kind="workers_lost"}`,
		`nowrender_fault_events_total{kind="frames_requeued"}`,
		"nowrender_cache_expired_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "nowrender_job_retries_total 1") &&
		!strings.Contains(metrics, "nowrender_job_retries_total 2") &&
		!strings.Contains(metrics, "nowrender_job_retries_total 3") {
		t.Errorf("job retry counter not incremented:\n%s", metrics)
	}
}

// TestJobRetryHitsCacheWarmedByPeer: a job whose every local attempt is
// doomed retries while a healthy virtual-driver job renders the same
// animation; the retry is then served entirely from the shared
// content-addressed cache and succeeds without its farm ever working.
func TestJobRetryHitsCacheWarmedByPeer(t *testing.T) {
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: farm.TagFrameDone, Dir: faulty.SendOnly, After: 1, Action: faulty.Sever}},
	}
	s := New(Config{FaultWrap: plan.Wrap})
	defer s.Close()

	doomed, err := s.Submit(JobSpec{
		Scene: "newton:3", W: 32, H: 24, Driver: "local",
		Scheme: "seqdiv-static", Retries: 2, RetryBackoffMS: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail before warming the cache, or the
	// doomed job could be served from it on attempt one and never retry.
	events, _, err := s.subscribe(doomed.ID)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
waitRetry:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("doomed job terminated before its first retry")
			}
			if ev.Type == "retrying" {
				break waitRetry
			}
		case <-deadline:
			t.Fatal("no retrying event within 30s")
		}
	}
	s.unsubscribe(doomed.ID, events)
	// Same scene and resolution, healthy driver: fills the cache while the
	// doomed job sits out its backoff.
	peer, err := s.Submit(JobSpec{Scene: "newton:3", W: 32, H: 24, Driver: "virtual"})
	if err != nil {
		t.Fatal(err)
	}
	if p := waitDone(t, s, peer.ID); p.State != StateDone {
		t.Fatalf("peer job: %s (%s)", p.State, p.Error)
	}

	st := waitDone(t, s, doomed.ID)
	if st.State != StateDone {
		t.Fatalf("retried job state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", st.Attempts)
	}
	if st.CacheHits != 3 {
		t.Errorf("cache hits = %d, want 3 (every frame from the peer's render)", st.CacheHits)
	}
	if st.RaysTraced != 0 {
		t.Errorf("retried job traced %d rays, want 0", st.RaysTraced)
	}
	for f := 0; f < 3; f++ {
		got, err1 := s.Frame(st.ID, f)
		want, err2 := s.Frame(peer.ID, f)
		if err1 != nil || err2 != nil {
			t.Fatalf("frame %d: %v / %v", f, err1, err2)
		}
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("frame %d differs between cached retry and peer render", f)
		}
	}
}

// TestJobRetryBudgetExhausted: with no retries left the failure is
// terminal and surfaced, not retried forever.
func TestJobRetryBudgetExhausted(t *testing.T) {
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: farm.TagFrameDone, Dir: faulty.SendOnly, After: 1, Action: faulty.Sever}},
	}
	s := New(Config{FaultWrap: plan.Wrap})
	defer s.Close()
	st, err := s.Submit(JobSpec{
		Scene: "newton:2", W: 32, H: 24, Driver: "local",
		Scheme: "seqdiv-static", Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one retry)", st.Attempts)
	}
	if st.Error == "" {
		t.Error("failed job carries no error")
	}
}
