package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"nowrender/internal/service"
)

// SchedPoint is one (policy, tenant) cell of the multi-tenant
// scheduling sweep: how long the tenant's jobs waited in the queue and
// where in the global admission order they landed.
type SchedPoint struct {
	Policy string `json:"policy"`
	Tenant string `json:"tenant"`
	Jobs   int    `json:"jobs"`
	// MeanQueueMS / MaxQueueMS measure queue wait (submission to
	// admission) over the tenant's jobs.
	MeanQueueMS float64 `json:"mean_queue_ms"`
	MaxQueueMS  float64 `json:"max_queue_ms"`
	// AdmitSlots are the 1-based positions of the tenant's jobs in the
	// run's global admission order (the blocker excluded). Unlike the
	// millisecond figures these are deterministic: they depend only on
	// the policy, not on render speed.
	AdmitSlots []int `json:"admit_slots"`
}

// SchedSweep runs the same multi-tenant contention scenario under each
// scheduling policy on a single-slot service over the virtual driver: a
// heavy tenant floods heavyJobs submissions while one job each from two
// light tenants sits behind the flood. Under "fifo" (and "priority" at
// equal priorities) the light tenants drain last; under "fair" their
// lagging virtual time admits them ahead of the flood — the
// starvation-prevention the scheduler split exists for.
func SchedSweep(policies []string, heavyJobs int) ([]SchedPoint, error) {
	if heavyJobs <= 0 {
		heavyJobs = 4
	}
	var out []SchedPoint
	for _, pol := range policies {
		pts, err := schedScenario(pol, heavyJobs)
		if err != nil {
			return nil, fmt.Errorf("experiments: sched %q: %w", pol, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

func schedScenario(policy string, heavyJobs int) ([]SchedPoint, error) {
	svc := service.New(service.Config{
		MaxConcurrent: 1,
		Policy:        policy,
		Tenants:       map[string]float64{"heavy": 1, "alice": 1, "bob": 1},
	})
	defer svc.Close()

	// A running blocker keeps the single slot busy while the contending
	// jobs queue up, so every admission below is a scheduling decision.
	blocker, err := svc.Submit(service.JobSpec{
		Scene: "newton:4", W: 64, H: 48, Tenant: "heavy",
	})
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := svc.JobStatus(blocker.ID)
		if err != nil {
			return nil, err
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Distinct resolutions per job keep the frame cache and coalescing
	// out of the measurement — every job renders.
	byTenant := map[string][]string{}
	submit := func(tenant string, w, h int) error {
		st, err := svc.Submit(service.JobSpec{
			Scene: "newton:2", W: w, H: h, Tenant: tenant,
		})
		if err != nil {
			return err
		}
		byTenant[tenant] = append(byTenant[tenant], st.ID)
		return nil
	}
	for i := 0; i < heavyJobs; i++ {
		if err := submit("heavy", 32+4*i, 24+3*i); err != nil {
			return nil, err
		}
	}
	if err := submit("alice", 100, 75); err != nil {
		return nil, err
	}
	if err := submit("bob", 104, 78); err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	type done struct {
		tenant string
		st     service.Status
	}
	var finished []done
	for tenant, ids := range byTenant {
		for _, id := range ids {
			st, err := svc.Wait(ctx, id)
			if err != nil {
				return nil, err
			}
			if st.State != service.StateDone {
				return nil, fmt.Errorf("job %s: %s (%s)", id, st.State, st.Error)
			}
			finished = append(finished, done{tenant, st})
		}
	}

	// Global admission order by start time (serial: one slot).
	sort.Slice(finished, func(i, j int) bool {
		return finished[i].st.Started.Before(finished[j].st.Started)
	})
	perTenant := map[string]*SchedPoint{}
	for slot, d := range finished {
		pt := perTenant[d.tenant]
		if pt == nil {
			pt = &SchedPoint{Policy: policy, Tenant: d.tenant}
			perTenant[d.tenant] = pt
		}
		pt.Jobs++
		q := float64(d.st.QueueDurationMS)
		pt.MeanQueueMS += q
		if q > pt.MaxQueueMS {
			pt.MaxQueueMS = q
		}
		pt.AdmitSlots = append(pt.AdmitSlots, slot+1)
	}
	tenants := make([]string, 0, len(perTenant))
	for t := range perTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	var out []SchedPoint
	for _, t := range tenants {
		pt := perTenant[t]
		pt.MeanQueueMS /= float64(pt.Jobs)
		sort.Ints(pt.AdmitSlots)
		out = append(out, *pt)
	}
	return out, nil
}
