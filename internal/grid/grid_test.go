package grid

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

func unitGrid(t *testing.T, n int) *Grid {
	t.Helper()
	g, err := New(vm.NewAABB(vm.V(0, 0, 0), vm.V(1, 1, 1)), n, n, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsEmptyBounds(t *testing.T) {
	if _, err := New(vm.EmptyAABB(), 4, 4, 4); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestNewClampsCounts(t *testing.T) {
	g, err := New(vm.NewAABB(vm.V(0, 0, 0), vm.V(1, 1, 1)), 0, -3, 5)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := g.Dims()
	if nx != 1 || ny != 1 || nz != 5 {
		t.Errorf("dims = %d,%d,%d", nx, ny, nz)
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	g, _ := New(vm.NewAABB(vm.V(0, 0, 0), vm.V(1, 1, 1)), 3, 4, 5)
	for iz := 0; iz < 5; iz++ {
		for iy := 0; iy < 4; iy++ {
			for ix := 0; ix < 3; ix++ {
				idx := g.Index(ix, iy, iz)
				gx, gy, gz := g.Coords(idx)
				if gx != ix || gy != iy || gz != iz {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)",
						ix, iy, iz, idx, gx, gy, gz)
				}
			}
		}
	}
	if g.NumVoxels() != 60 {
		t.Errorf("NumVoxels = %d", g.NumVoxels())
	}
}

func TestVoxelOf(t *testing.T) {
	g := unitGrid(t, 4)
	ix, iy, iz, ok := g.VoxelOf(vm.V(0.1, 0.6, 0.9))
	if !ok || ix != 0 || iy != 2 || iz != 3 {
		t.Errorf("VoxelOf = %d,%d,%d ok=%v", ix, iy, iz, ok)
	}
	// Boundary point clamps into the last voxel.
	ix, iy, iz, ok = g.VoxelOf(vm.V(1, 1, 1))
	if !ok || ix != 3 || iy != 3 || iz != 3 {
		t.Errorf("boundary VoxelOf = %d,%d,%d ok=%v", ix, iy, iz, ok)
	}
	if _, _, _, ok = g.VoxelOf(vm.V(2, 0, 0)); ok {
		t.Error("outside point reported inside")
	}
}

func TestVoxelBounds(t *testing.T) {
	g := unitGrid(t, 4)
	b := g.VoxelBounds(1, 2, 3)
	want := vm.NewAABB(vm.V(0.25, 0.5, 0.75), vm.V(0.5, 0.75, 1))
	if !b.Min.ApproxEq(want.Min, 1e-12) || !b.Max.ApproxEq(want.Max, 1e-12) {
		t.Errorf("VoxelBounds = %v", b)
	}
}

func TestInsertAndItems(t *testing.T) {
	g := unitGrid(t, 4)
	// A box covering the low corner 2x2x2 voxels.
	g.Insert(7, vm.NewAABB(vm.V(0, 0, 0), vm.V(0.49, 0.49, 0.49)))
	count := 0
	for idx := 0; idx < g.NumVoxels(); idx++ {
		for _, id := range g.Items(idx) {
			if id == 7 {
				count++
			}
		}
	}
	if count != 8 {
		t.Errorf("inserted into %d voxels, want 8", count)
	}
}

func TestInsertOutsideIgnored(t *testing.T) {
	g := unitGrid(t, 4)
	g.Insert(1, vm.NewAABB(vm.V(5, 5, 5), vm.V(6, 6, 6)))
	for idx := 0; idx < g.NumVoxels(); idx++ {
		if len(g.Items(idx)) != 0 {
			t.Fatal("outside box registered in grid")
		}
	}
}

func TestInsertClipped(t *testing.T) {
	g := unitGrid(t, 4)
	// Box overlapping the whole grid and beyond: lands in all 64 voxels.
	g.Insert(3, vm.NewAABB(vm.V(-10, -10, -10), vm.V(10, 10, 10)))
	for idx := 0; idx < g.NumVoxels(); idx++ {
		if len(g.Items(idx)) != 1 {
			t.Fatalf("voxel %d has %d items", idx, len(g.Items(idx)))
		}
	}
}

func TestVoxelsOverlapping(t *testing.T) {
	g := unitGrid(t, 4)
	var got []int
	g.VoxelsOverlapping(vm.NewAABB(vm.V(0.3, 0.3, 0.3), vm.V(0.4, 0.4, 0.4)),
		func(idx int) { got = append(got, idx) })
	if len(got) != 1 {
		t.Fatalf("overlap count = %d, want 1", len(got))
	}
	ix, iy, iz := g.Coords(got[0])
	if ix != 1 || iy != 1 || iz != 1 {
		t.Errorf("voxel = %d,%d,%d", ix, iy, iz)
	}
}

func TestAutoResolution(t *testing.T) {
	b := vm.NewAABB(vm.V(0, 0, 0), vm.V(1, 1, 1))
	nx, ny, nz := AutoResolution(b, 22)
	if nx < 1 || nx > 64 || nx != ny || ny != nz {
		t.Errorf("cube scene resolution %d,%d,%d", nx, ny, nz)
	}
	// Anisotropic scene gets anisotropic grid.
	long := vm.NewAABB(vm.V(0, 0, 0), vm.V(10, 1, 1))
	nx, ny, nz = AutoResolution(long, 22)
	if nx <= ny {
		t.Errorf("long axis did not get more voxels: %d,%d,%d", nx, ny, nz)
	}
	// Degenerate inputs survive.
	nx, ny, nz = AutoResolution(b, 0)
	if nx < 1 || ny < 1 || nz < 1 {
		t.Error("zero items broke resolution")
	}
}

func TestFlatSceneGrid(t *testing.T) {
	// A zero-thickness bounds region must not divide by zero.
	b := vm.NewAABB(vm.V(0, 0, 0), vm.V(1, 0, 1))
	g, err := New(b, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.CellSize().Y <= 0 {
		t.Error("flat grid has non-positive cell size")
	}
	// A DDA walk along the plane should not hang or panic.
	n := 0
	g.Walk(vm.Ray{Origin: vm.V(-1, 0, 0.5), Dir: vm.V(1, 0, 0)}, 0, math.Inf(1),
		func(int, float64, float64) bool { n++; return n < 10000 })
	if n >= 10000 {
		t.Error("walk on flat grid did not terminate")
	}
}
