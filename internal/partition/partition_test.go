package partition

import (
	"testing"
	"testing/quick"

	"nowrender/internal/fb"
)

func TestSequenceDivisionInitialTasks(t *testing.T) {
	s := SequenceDivision{Adaptive: true}
	// The paper's example: 4 processors, 120 frames -> 30 frames each.
	tasks := s.InitialTasks(240, 320, 0, 120, 4)
	if len(tasks) != 4 {
		t.Fatalf("%d tasks", len(tasks))
	}
	for i, task := range tasks {
		if task.Frames() != 30 {
			t.Errorf("task %d has %d frames, want 30", i, task.Frames())
		}
		if task.Region != fb.NewRect(0, 0, 240, 320) {
			t.Errorf("task %d region %v, want full frame", i, task.Region)
		}
	}
	// Subsequences are consecutive (required for coherence).
	for i := 1; i < len(tasks); i++ {
		if tasks[i].StartFrame != tasks[i-1].EndFrame {
			t.Error("subsequences not contiguous")
		}
	}
	if err := ValidateTiling(tasks, 240, 320, 0, 120); err != nil {
		t.Error(err)
	}
}

func TestSequenceDivisionUnevenFrames(t *testing.T) {
	s := SequenceDivision{}
	tasks := s.InitialTasks(10, 10, 0, 45, 3) // the Newton run: 45 frames, 3 machines
	if len(tasks) != 3 {
		t.Fatalf("%d tasks", len(tasks))
	}
	total := 0
	for _, task := range tasks {
		total += task.Frames()
	}
	if total != 45 {
		t.Errorf("total frames %d", total)
	}
	if err := ValidateTiling(tasks, 10, 10, 0, 45); err != nil {
		t.Error(err)
	}
}

func TestSequenceDivisionMoreWorkersThanFrames(t *testing.T) {
	s := SequenceDivision{}
	tasks := s.InitialTasks(4, 4, 0, 2, 8)
	if len(tasks) != 2 {
		t.Fatalf("%d tasks for 2 frames", len(tasks))
	}
	if err := ValidateTiling(tasks, 4, 4, 0, 2); err != nil {
		t.Error(err)
	}
}

func TestSequenceSubdivide(t *testing.T) {
	adaptive := SequenceDivision{Adaptive: true}
	static := SequenceDivision{Adaptive: false}
	task := Task{ID: 0, Region: fb.NewRect(0, 0, 4, 4), StartFrame: 10, EndFrame: 20}
	keep, give, ok := adaptive.Subdivide(task)
	if !ok {
		t.Fatal("adaptive subdivide refused")
	}
	if keep.EndFrame != 15 || give.StartFrame != 15 || give.EndFrame != 20 {
		t.Errorf("split = %v | %v", keep, give)
	}
	if keep.Frames()+give.Frames() != task.Frames() {
		t.Error("frames lost in split")
	}
	if _, _, ok := static.Subdivide(task); ok {
		t.Error("static scheme subdivided")
	}
	one := Task{StartFrame: 3, EndFrame: 4, Region: task.Region}
	if _, _, ok := adaptive.Subdivide(one); ok {
		t.Error("single-frame task subdivided")
	}
}

func TestFrameDivisionPaperCase(t *testing.T) {
	// 240x320 with 80x80 blocks = 3x4 = 12 subareas.
	s := FrameDivision{BlockW: 80, BlockH: 80}
	tasks := s.InitialTasks(240, 320, 0, 45, 3)
	if len(tasks) != 12 {
		t.Fatalf("%d tasks, want 12", len(tasks))
	}
	for _, task := range tasks {
		if task.Frames() != 45 {
			t.Errorf("task %v does not span the sequence", task)
		}
		if task.Region.W() != 80 || task.Region.H() != 80 {
			t.Errorf("block %v not 80x80", task.Region)
		}
	}
	if err := ValidateTiling(tasks, 240, 320, 0, 45); err != nil {
		t.Error(err)
	}
}

func TestFrameDivisionQuarterFrame(t *testing.T) {
	// The paper's 4-processor example: each renders 120x160 of each frame.
	s := FrameDivision{BlockW: 120, BlockH: 160}
	tasks := s.InitialTasks(240, 320, 0, 120, 4)
	if len(tasks) != 4 {
		t.Fatalf("%d tasks, want 4", len(tasks))
	}
	if err := ValidateTiling(tasks, 240, 320, 0, 120); err != nil {
		t.Error(err)
	}
}

func TestFrameDivisionDefaultsToWholeFrame(t *testing.T) {
	s := FrameDivision{}
	tasks := s.InitialTasks(100, 50, 0, 7, 2)
	if len(tasks) != 1 || tasks[0].Region != fb.NewRect(0, 0, 100, 50) {
		t.Errorf("tasks = %v", tasks)
	}
}

func TestFrameDivisionSubdivide(t *testing.T) {
	s := FrameDivision{BlockW: 80, BlockH: 80, Adaptive: true}
	task := Task{Region: fb.NewRect(0, 0, 80, 80), StartFrame: 0, EndFrame: 45}
	keep, give, ok := s.Subdivide(task)
	if !ok || keep.Frames() != 22 || give.Frames() != 23 {
		t.Errorf("split %v | %v ok=%v", keep, give, ok)
	}
	if keep.Region != task.Region || give.Region != task.Region {
		t.Error("subdivision changed the region")
	}
}

func TestHybridDivision(t *testing.T) {
	s := HybridDivision{BlockW: 120, BlockH: 160, SubseqLen: 15}
	tasks := s.InitialTasks(240, 320, 0, 45, 3)
	// 4 blocks x 3 chunks = 12 tasks.
	if len(tasks) != 12 {
		t.Fatalf("%d tasks, want 12", len(tasks))
	}
	if err := ValidateTiling(tasks, 240, 320, 0, 45); err != nil {
		t.Error(err)
	}
	// Chunk lengths respect SubseqLen.
	for _, task := range tasks {
		if task.Frames() != 15 {
			t.Errorf("chunk %v has %d frames", task, task.Frames())
		}
	}
	if _, _, ok := s.Subdivide(tasks[0]); ok {
		t.Error("hybrid tasks should not subdivide")
	}
}

func TestHybridUnevenChunk(t *testing.T) {
	s := HybridDivision{BlockW: 50, BlockH: 50, SubseqLen: 10}
	tasks := s.InitialTasks(50, 50, 0, 25, 2)
	if err := ValidateTiling(tasks, 50, 50, 0, 25); err != nil {
		t.Error(err)
	}
	last := tasks[len(tasks)-1]
	if last.Frames() != 5 {
		t.Errorf("last chunk %d frames, want 5", last.Frames())
	}
}

func TestPixelDivision(t *testing.T) {
	s := PixelDivision{}
	tasks := s.InitialTasks(6, 4, 0, 3, 2)
	if len(tasks) != 24 {
		t.Fatalf("%d tasks, want 24", len(tasks))
	}
	if err := ValidateTiling(tasks, 6, 4, 0, 3); err != nil {
		t.Error(err)
	}
	for _, task := range tasks {
		if task.Region.Area() != 1 {
			t.Errorf("task %v not single pixel", task)
		}
	}
}

func TestTaskAccessors(t *testing.T) {
	task := Task{Region: fb.NewRect(0, 0, 80, 80), StartFrame: 5, EndFrame: 15}
	if task.Frames() != 10 || task.Pixels() != 64000 {
		t.Errorf("Frames=%d Pixels=%d", task.Frames(), task.Pixels())
	}
	if task.MemoryMB() < 1 {
		t.Error("memory estimate must be at least 1 MB")
	}
	big := Task{Region: fb.NewRect(0, 0, 2000, 2000), StartFrame: 0, EndFrame: 1}
	if big.MemoryMB() <= task.MemoryMB() {
		t.Error("memory estimate not proportional to area")
	}
}

func TestValidateTilingCatchesOverlap(t *testing.T) {
	full := fb.NewRect(0, 0, 4, 4)
	tasks := []Task{
		{ID: 0, Region: full, StartFrame: 0, EndFrame: 2},
		{ID: 1, Region: full, StartFrame: 1, EndFrame: 3}, // overlaps frame 1
	}
	if err := ValidateTiling(tasks, 4, 4, 0, 3); err == nil {
		t.Error("overlap not caught")
	}
}

func TestValidateTilingCatchesGap(t *testing.T) {
	tasks := []Task{
		{ID: 0, Region: fb.NewRect(0, 0, 2, 4), StartFrame: 0, EndFrame: 2},
		// right half missing
	}
	if err := ValidateTiling(tasks, 4, 4, 0, 2); err == nil {
		t.Error("gap not caught")
	}
}

// Property: every scheme tiles exactly for arbitrary dimensions.
func TestQuickSchemesTile(t *testing.T) {
	schemes := []Scheme{
		SequenceDivision{Adaptive: true},
		FrameDivision{BlockW: 7, BlockH: 5},
		HybridDivision{BlockW: 9, BlockH: 9, SubseqLen: 3},
	}
	f := func(w8, h8, frames8, workers8 uint8) bool {
		w := int(w8%30) + 1
		h := int(h8%30) + 1
		frames := int(frames8%20) + 1
		workers := int(workers8%6) + 1
		for _, s := range schemes {
			tasks := s.InitialTasks(w, h, 0, frames, workers)
			if err := ValidateTiling(tasks, w, h, 0, frames); err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: repeated adaptive subdivision always conserves frames and
// terminates.
func TestQuickSubdivideConserves(t *testing.T) {
	s := SequenceDivision{Adaptive: true}
	f := func(n8 uint8) bool {
		n := int(n8%50) + 1
		queue := []Task{{Region: fb.NewRect(0, 0, 4, 4), StartFrame: 0, EndFrame: n}}
		var leaves []Task
		for len(queue) > 0 {
			t0 := queue[0]
			queue = queue[1:]
			keep, give, ok := s.Subdivide(t0)
			if !ok {
				leaves = append(leaves, t0)
				continue
			}
			queue = append(queue, keep, give)
		}
		total := 0
		for _, l := range leaves {
			total += l.Frames()
			if l.Frames() != 1 {
				return false // full subdivision ends at single frames
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestShardMapCoversRangeContiguously(t *testing.T) {
	for _, tc := range []struct{ start, end, n int }{
		{0, 30, 1}, {0, 30, 3}, {0, 30, 4}, {0, 5, 2}, {10, 17, 3},
		{0, 3, 8}, // more sinks than frames
		{5, 6, 2},
	} {
		s := ShardMap{Start: tc.start, End: tc.end, N: tc.n}
		prevEnd := tc.start
		for i := 0; i < tc.n; i++ {
			s0, s1 := s.Shard(i)
			if s0 != prevEnd {
				t.Fatalf("%+v: shard %d starts at %d, want %d", tc, i, s0, prevEnd)
			}
			if s1 < s0 || s1 > tc.end {
				t.Fatalf("%+v: shard %d = [%d,%d) out of range", tc, i, s0, s1)
			}
			prevEnd = s1
			for f := s0; f < s1; f++ {
				if got := s.Of(f); got != i {
					t.Fatalf("%+v: Of(%d) = %d, want shard %d [%d,%d)", tc, f, got, i, s0, s1)
				}
			}
		}
		if prevEnd != tc.end {
			t.Fatalf("%+v: shards end at %d, want %d", tc, prevEnd, tc.end)
		}
	}
}

func TestShardMapBalance(t *testing.T) {
	s := ShardMap{Start: 0, End: 100, N: 7}
	for i := 0; i < s.N; i++ {
		s0, s1 := s.Shard(i)
		if n := s1 - s0; n < 100/7 || n > 100/7+1 {
			t.Errorf("shard %d holds %d frames, want %d or %d", i, n, 100/7, 100/7+1)
		}
	}
}
