package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// chromeEvent is one record of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Spans are "complete" events
// (ph "X") with microsecond ts/dur; instants are ph "i"; process and
// thread names ride on ph "M" metadata events.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

const chromeCat = "nowrender"

// usOf converts recorder nanoseconds to the format's microseconds.
// Sub-microsecond precision survives as the fractional part, and
// nsOf's rounding restores the exact nanosecond for any run shorter
// than ~52 days — the schema round trip is lossless.
func usOf(ns int64) float64 { return float64(ns) / 1e3 }

func nsOf(us float64) int64 { return int64(math.Round(us * 1e3)) }

// WriteChromeTrace writes the timeline as Chrome trace-event JSON.
// Track groups become processes (with process_name metadata), tracks
// become threads, and Meta is carried in otherData, so the file is
// both Perfetto-loadable and ReadChromeTrace-round-trippable.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	ct := chromeTrace{DisplayTimeUnit: "ms", OtherData: tl.Meta}
	// Deterministic pid/tid assignment: groups in sorted order, tracks
	// in timeline order.
	groups := map[string]int{}
	var groupNames []string
	for i := range tl.Tracks {
		g := tl.Tracks[i].Group()
		if _, ok := groups[g]; !ok {
			groups[g] = 0
			groupNames = append(groupNames, g)
		}
	}
	sort.Strings(groupNames)
	for i, g := range groupNames {
		groups[g] = i + 1
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: i + 1, Tid: 0,
			Args: map[string]any{"name": g},
		})
	}
	for i := range tl.Tracks {
		td := &tl.Tracks[i]
		pid := groups[td.Group()]
		tid := i + 1
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": td.Name},
		})
		for _, e := range td.Events {
			ce := chromeEvent{
				Name: e.Op.String(), Cat: chromeCat,
				Ts: usOf(e.Start), Pid: pid, Tid: tid,
				Args: map[string]any{"frame": e.Frame, "arg": e.Arg},
			}
			if e.Instant() {
				ce.Ph, ce.S = "i", "t"
			} else {
				ce.Ph = "X"
				d := usOf(e.Dur)
				ce.Dur = &d
			}
			ct.TraceEvents = append(ct.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ReadChromeTrace parses Chrome trace-event JSON produced by
// WriteChromeTrace back into a Timeline: the inverse half of the schema
// round trip (and what cmd/nowtrace feeds on). It accepts both the
// object form and a bare traceEvents array.
func ReadChromeTrace(r io.Reader) (*Timeline, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var ct chromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		// A bare event array is also valid Chrome trace JSON.
		if aerr := json.Unmarshal(data, &ct.TraceEvents); aerr != nil {
			return nil, fmt.Errorf("timeline: not Chrome trace JSON: %w", err)
		}
	}
	tl := &Timeline{Meta: ct.OtherData}
	if tl.Meta == nil {
		tl.Meta = map[string]string{}
	}
	names := map[[2]int]string{} // (pid, tid) -> track name
	for _, ce := range ct.TraceEvents {
		if ce.Ph == "M" && ce.Name == "thread_name" {
			if n, ok := ce.Args["name"].(string); ok {
				names[[2]int{ce.Pid, ce.Tid}] = n
			}
		}
	}
	argInt := func(args map[string]any, key string) int64 {
		if v, ok := args[key].(float64); ok {
			return int64(v)
		}
		return 0
	}
	for _, ce := range ct.TraceEvents {
		if ce.Ph != "X" && ce.Ph != "i" && ce.Ph != "I" {
			continue
		}
		name, ok := names[[2]int{ce.Pid, ce.Tid}]
		if !ok {
			name = fmt.Sprintf("pid%d/tid%d", ce.Pid, ce.Tid)
		}
		e := Event{
			Start: nsOf(ce.Ts),
			Dur:   instantDur,
			Op:    OpFromString(ce.Name),
			Frame: int32(argInt(ce.Args, "frame")),
			Arg:   argInt(ce.Args, "arg"),
		}
		if ce.Ph == "X" {
			e.Dur = 0
			if ce.Dur != nil {
				e.Dur = nsOf(*ce.Dur)
			}
		}
		tl.AddTrack(name, []Event{e}, 0)
	}
	return tl, nil
}
