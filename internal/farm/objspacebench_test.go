package farm

import (
	"testing"

	"nowrender/internal/scenes"
)

// TestObjSpaceSweep runs the sharding sweep at a small size and checks
// the structural claims BENCH_objspace.json is committed for: every row
// byte-identical to the replicated baseline, forwarding traffic present
// only on sharded rows, and per-shard peak resident strictly decreasing
// as the shard count grows.
func TestObjSpaceSweep(t *testing.T) {
	sc := scenes.MeshGallery(2)
	pts, err := ObjSpaceSweep(sc, 48, 36, 2, []int{1, 2, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d rows, want 3", len(pts))
	}
	for _, pt := range pts {
		if !pt.Identical {
			t.Errorf("%d shards: not byte-identical to the replicated render", pt.Shards)
		}
		if pt.Shards == 1 {
			if pt.RaysForwardedTotal != 0 || pt.ForwardBytesTotal != 0 {
				t.Errorf("replicated row records forwarding: %+v", pt)
			}
			if pt.ResidentVsReplicated != 1 {
				t.Errorf("replicated row resident ratio %v, want 1", pt.ResidentVsReplicated)
			}
			continue
		}
		if pt.RaysForwardedTotal == 0 || pt.ForwardBytesTotal == 0 {
			t.Errorf("%d shards: no forwarding traffic recorded", pt.Shards)
		}
		if pt.ResidentVsReplicated >= 1 {
			t.Errorf("%d shards: resident ratio %.2f did not shrink", pt.Shards, pt.ResidentVsReplicated)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PeakResidentBytes >= pts[i-1].PeakResidentBytes {
			t.Errorf("peak resident did not decrease: %d shards %d >= %d shards %d",
				pts[i].Shards, pts[i].PeakResidentBytes, pts[i-1].Shards, pts[i-1].PeakResidentBytes)
		}
	}
}

// TestObjSpaceSweepRejectsBadCounts mirrors the wire validation.
func TestObjSpaceSweepRejectsBadCounts(t *testing.T) {
	sc := scenes.MeshGallery(1)
	if _, err := ObjSpaceSweep(sc, 16, 12, 1, []int{0}, 1); err == nil {
		t.Error("shard count 0 accepted")
	}
	if _, err := ObjSpaceSweep(sc, 16, 12, 1, []int{200}, 1); err == nil {
		t.Error("shard count 200 accepted")
	}
}
