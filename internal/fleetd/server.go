package fleetd

import (
	"context"
	"errors"
	"sync"
	"time"

	"nowrender/internal/msg"
)

// Server speaks the broker protocol over msg.Conns: TCP conns accepted
// from a msg.Listener in cmd/nowfleetd, or in-process pipe ends handed
// to ServeConn by the multi-replica test harness. One handler goroutine
// runs per connection; acquires, which block for capacity, each get
// their own goroutine so one starved replica cannot stall another's
// renews on the same conn.
type Server struct {
	b *Broker

	mu     sync.Mutex
	conns  map[msg.Conn]context.CancelFunc
	closed bool
	wg     sync.WaitGroup

	sweepStop chan struct{}
}

// NewServer wraps a broker. The server sweeps expired leases every
// sweep interval (0 = half the broker's minimum term floor) so a
// crashed replica's units return even when nobody is acquiring.
func NewServer(b *Broker, sweep time.Duration) *Server {
	if sweep <= 0 {
		sweep = MinTerm / 2
	}
	s := &Server{
		b:         b,
		conns:     make(map[msg.Conn]context.CancelFunc),
		sweepStop: make(chan struct{}),
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(sweep)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				b.Expire()
			case <-s.sweepStop:
				return
			}
		}
	}()
	return s
}

// Broker returns the served broker (tests assert on its ledger).
func (s *Server) Broker() *Broker { return s.b }

// Serve accepts connections until the listener closes. It blocks; run
// it in a goroutine and Close the listener (then the server) to stop.
func (s *Server) Serve(l *msg.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			return err
		}
		if err := s.ServeConn(c); err != nil {
			c.Close()
			return err
		}
	}
}

// ServeConn adopts one established connection, spawning its handler.
// It fails once the server is closed.
func (s *Server) ServeConn(c msg.Conn) error {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return errors.New("fleetd: server closed")
	}
	s.conns[c] = cancel
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		s.handle(ctx, c)
		cancel()
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	return nil
}

// handle runs one connection to completion.
func (s *Server) handle(ctx context.Context, c msg.Conn) {
	m, err := c.Recv()
	if err != nil || m.Tag != TagHello {
		return
	}
	hello, err := DecodeHello(m.Data)
	if err != nil {
		return
	}
	welcome := EncodeWelcome(Welcome{
		Epoch:  s.b.Epoch(),
		TermMS: s.b.DefaultTerm().Milliseconds(),
	})
	if err := c.Send(msg.Message{Tag: TagWelcome, Data: welcome}); err != nil {
		return
	}
	if hello.Role == RoleWorker {
		// A worker conn is a capacity member for as long as it lives:
		// registration on hello, deregistration (lame-duck for leased
		// units) when the conn drops.
		s.b.Join(hello.Name, hello.Slots)
		defer s.b.Leave(hello.Name)
	}

	// Acquire handlers block on broker capacity; sends on the shared
	// conn are safe concurrently (both transports serialize Send).
	var pending sync.WaitGroup
	defer pending.Wait()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		switch m.Tag {
		case TagAcquire:
			req, err := DecodeAcquire(m.Data)
			if err != nil {
				return // malformed peer: drop the conn, leases expire
			}
			pending.Add(1)
			go func() {
				defer pending.Done()
				s.acquire(ctx, c, hello.Name, req)
			}()
		case TagRenew:
			req, err := DecodeRenew(m.Data)
			if err != nil {
				return
			}
			term, ok := s.b.Renew(hello.Name, req.Lease, time.Duration(req.TermMS)*time.Millisecond)
			reply := EncodeRenewed(Renewed{
				Req: req.Req, Lease: req.Lease, OK: ok, TermMS: term.Milliseconds(),
			})
			if c.Send(msg.Message{Tag: TagRenewed, Data: reply}) != nil {
				return
			}
		case TagRelease:
			lease, err := DecodeRelease(m.Data)
			if err != nil {
				return
			}
			s.b.Release(hello.Name, lease)
		case TagStatsReq:
			req, err := DecodeReq(m.Data)
			if err != nil {
				return
			}
			st := s.b.Stats()
			reply := EncodeStats(StatsMsg{
				Req: req, Capacity: st.Capacity, Free: st.Free, Leased: st.Leased,
				Grants: st.Grants, Renews: st.Renews, Expiries: st.Expiries,
				Releases: st.Releases, Waits: st.Waits, Members: st.Members,
			})
			if c.Send(msg.Message{Tag: TagStats, Data: reply}) != nil {
				return
			}
		case TagFleetBye:
			return
		default:
			return // unknown tag: misbehaving peer, drop
		}
	}
}

// acquire runs one blocking acquire and replies with its grant.
func (s *Server) acquire(ctx context.Context, c msg.Conn, replica string, req AcquireReq) {
	g, err := s.b.Acquire(ctx, replica, req.Want, time.Duration(req.TermMS)*time.Millisecond)
	reply := Grant{Req: req.Req}
	if err != nil {
		reply.Err = err.Error()
	} else {
		reply.Lease = g.ID
		reply.Slots = len(g.Units)
		reply.TermMS = g.Term.Milliseconds()
		reply.Units = make([]string, len(g.Units))
		for i, u := range g.Units {
			reply.Units[i] = string(u)
		}
	}
	if c.Send(msg.Message{Tag: TagGrant, Data: EncodeGrant(reply)}) != nil && err == nil {
		// The replica is gone before it ever learned of the lease; give
		// the units back rather than parking them for a full term.
		s.b.Release(replica, g.ID)
	}
}

// Close stops the sweeper, severs every connection and waits for
// handlers (and their pending acquires) to finish. Leases survive in
// the broker — expiry, not disconnection, is what frees a replica's
// slots.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.sweepStop)
	for c, cancel := range s.conns {
		cancel()
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
