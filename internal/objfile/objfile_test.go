package objfile

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	vm "nowrender/internal/vecmath"
)

const cube = `
# unit cube
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
v 0 0 1
v 1 0 1
v 1 1 1
v 0 1 1
f 1 2 3 4
f 5 8 7 6
f 1 5 6 2
f 2 6 7 3
f 3 7 8 4
f 5 1 4 8
`

func TestParseCube(t *testing.T) {
	m, err := Parse(strings.NewReader(cube))
	if err != nil {
		t.Fatal(err)
	}
	// 6 quads fan-triangulated = 12 triangles.
	if len(m.Tris) != 12 {
		t.Fatalf("%d triangles, want 12", len(m.Tris))
	}
	b := m.Bounds()
	if !b.Pad(1e-9).Contains(vm.V(0, 0, 0)) || !b.Pad(1e-9).Contains(vm.V(1, 1, 1)) {
		t.Errorf("bounds = %v", b)
	}
	// A ray through the middle hits front and would exit the back: the
	// nearest hit is the front face at z=1 (from +z side).
	h, ok := m.Intersect(vm.Ray{Origin: vm.V(0.5, 0.5, 5), Dir: vm.V(0, 0, -1)}, 0, math.Inf(1))
	if !ok {
		t.Fatal("missed cube")
	}
	if math.Abs(h.T-4) > 1e-9 {
		t.Errorf("T = %v, want 4", h.T)
	}
}

func TestParseSmoothNormals(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 0 1 0
vn 0 0 1
vn 0 0 1
vn 0 0 1
f 1//1 2//2 3//3
`
	m, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tris) != 1 {
		t.Fatalf("%d triangles", len(m.Tris))
	}
	if m.Tris[0].N0 == nil {
		t.Error("normals not attached")
	}
}

func TestParseSlashForms(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 0 1 0
vt 0 0
vt 1 0
vt 0 1
vn 0 0 1
f 1/1 2/2 3/3
f 1/1/1 2/2/1 3/3/1
f -3 -2 -1
`
	m, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tris) != 3 {
		t.Fatalf("%d triangles, want 3", len(m.Tris))
	}
	// The v/vt/vn face carries normals; the v/vt face does not.
	if m.Tris[0].N0 != nil {
		t.Error("v/vt face should not have normals")
	}
	if m.Tris[1].N0 == nil {
		t.Error("v/vt/vn face should have normals")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no faces", "v 0 0 0\nv 1 0 0\nv 0 1 0\n", "no faces"},
		{"bad coord", "v a b c\nf 1 2 3\n", "bad coordinate"},
		{"short vertex", "v 1 2\nf 1 2 3\n", "need 3 coordinates"},
		{"nan coord", "v NaN 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n", "non-finite"},
		{"inf coord", "v 0 0 Inf\nv 1 0 0\nv 0 1 0\nf 1 2 3\n", "non-finite"},
		{"neg inf coord", "v 0 -Infinity 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n", "non-finite"},
		{"nan normal", "v 0 0 0\nv 1 0 0\nv 0 1 0\nvn nan 0 1\nf 1//1 2//1 3//1\n", "non-finite"},
		{"short face", "v 0 0 0\nv 1 0 0\nf 1 2\n", "at least 3"},
		{"index overflow", "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n", "exceeds count"},
		{"zero index", "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n", "index 0"},
		{"relative underflow", "v 0 0 0\nv 1 0 0\nv 0 1 0\nf -9 1 2\n", "out of range"},
		{"non-integer index", "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 x\n", "not an integer"},
		{"float index", "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3.5\n", "not an integer"},
		{"empty vertex slot", "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 //\n", "not an integer"},
		{"bad normal index", "v 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nf 1//9 2//1 3//1\n", "exceeds count"},
		{"zero normal index", "v 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nf 1//0 2//1 3//1\n", "index 0"},
		{"face before vertices", "f 1 2 3\nv 0 0 0\nv 1 0 0\nv 0 1 0\n", "exceeds count"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestParseErrorLineNumbers pins the diagnostic contract: parse errors
// name the 1-based source line, comments and blanks included, so a bad
// vertex in a 100k-line archive file is findable.
func TestParseErrorLineNumbers(t *testing.T) {
	src := "# header\n\nv 0 0 0\nv bogus 0 0\n"
	_, err := Parse(strings.NewReader(src))
	if err == nil {
		t.Fatal("accepted")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Errorf("error %q does not name line 4", err)
	}
}

func TestUnknownDirectivesIgnored(t *testing.T) {
	src := `
mtllib cube.mtl
o cube
g side
usemtl steel
s off
v 0 0 0
v 1 0 0
v 0 1 0
f 1 2 3
`
	if _, err := Parse(strings.NewReader(src)); err != nil {
		t.Errorf("unknown directives broke parse: %v", err)
	}
}

// TestWriteRoundTrip pins Write's contract: its output re-Parses to a
// mesh with the same triangles, positions, and normal attachment.
func TestWriteRoundTrip(t *testing.T) {
	for _, src := range []string{cube, `
v 0 0 0
v 1 0 0
v 0 1 0
vn 0 0 1
vn 0 0 1
vn 0 0 1
f 1//1 2//2 3//3
`} {
		m, err := Parse(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := Write(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip parse: %v\n%s", err, buf.String())
		}
		if len(back.Tris) != len(m.Tris) {
			t.Fatalf("round-trip %d triangles, want %d", len(back.Tris), len(m.Tris))
		}
		for i, tr := range m.Tris {
			bt := back.Tris[i]
			if tr.P0 != bt.P0 || tr.P1 != bt.P1 || tr.P2 != bt.P2 {
				t.Errorf("triangle %d positions drifted", i)
			}
			if (tr.N0 != nil) != (bt.N0 != nil) {
				t.Errorf("triangle %d normal attachment drifted", i)
			}
			if tr.N0 != nil && bt.N0 != nil && *tr.N0 != *bt.N0 {
				t.Errorf("triangle %d normal drifted", i)
			}
		}
	}
}

func TestWriteFileRoundTrip(t *testing.T) {
	m, err := Parse(strings.NewReader(cube))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cube.obj")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tris) != len(m.Tris) {
		t.Errorf("round-trip %d triangles, want %d", len(back.Tris), len(m.Tris))
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tri.obj")
	if err := os.WriteFile(path, []byte("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tris) != 1 {
		t.Error("wrong triangle count")
	}
	if _, err := Load(filepath.Join(dir, "missing.obj")); err == nil {
		t.Error("missing file accepted")
	}
}
