// Package material defines surface appearance: pigments (colour as a
// function of position) and finishes (the Phong/Whitted reflectance
// parameters). The shading model is the one the paper states in §3:
//
//	I = I_local + k_rg * I_reflected + k_tg * I_transmitted
//
// where I_local is ambient + diffuse + specular from direct illumination,
// k_rg is the wavelength-independent reflectivity and k_tg the
// transmission coefficient.
package material

import (
	"math"

	"nowrender/internal/geom"
	vm "nowrender/internal/vecmath"
)

// Color is an RGB triple in [0,1] per channel (alias of Vec3 for clarity
// at API boundaries).
type Color = vm.Vec3

// RGB constructs a colour.
func RGB(r, g, b float64) Color { return vm.V(r, g, b) }

// Common colours used by the scene builders and tests.
var (
	Black = RGB(0, 0, 0)
	White = RGB(1, 1, 1)
	Red   = RGB(1, 0, 0)
	Green = RGB(0, 1, 0)
	Blue  = RGB(0, 0, 1)
)

// Pigment maps a surface hit to a base colour. Procedural pigments use
// the world-space point so that textures stay attached to world geometry
// (POV-Ray default) — tests rely on this for the brick wall.
type Pigment interface {
	ColorAt(h geom.Hit) Color
}

// Solid is a uniform colour.
type Solid struct{ C Color }

// ColorAt implements Pigment.
func (s Solid) ColorAt(geom.Hit) Color { return s.C }

// Checker alternates two colours on a unit lattice in world space,
// POV-Ray's `checker` pattern.
type Checker struct {
	A, B Color
	// Size is the edge length of one tile; 0 means 1.
	Size float64
}

// ColorAt implements Pigment.
func (c Checker) ColorAt(h geom.Hit) Color {
	size := c.Size
	if size == 0 {
		size = 1
	}
	p := h.Point.Scale(1 / size)
	n := int(math.Floor(p.X)) + int(math.Floor(p.Y)) + int(math.Floor(p.Z))
	if n&1 == 0 {
		return c.A
	}
	return c.B
}

// Brick renders a running-bond brick pattern (POV-Ray's `brick`),
// used by the glass-ball-in-brick-room scene of Figure 1.
type Brick struct {
	Mortar, Body Color
	// BrickSize is the brick extent; zero value means POV default
	// <8, 3, 4.5> scaled down to unit-ish scenes: <0.8, 0.25, 0.45>.
	BrickSize vm.Vec3
	// MortarWidth is the mortar thickness (default 0.05).
	MortarWidth float64
}

// ColorAt implements Pigment.
func (b Brick) ColorAt(h geom.Hit) Color {
	size := b.BrickSize
	if size == (vm.Vec3{}) {
		size = vm.V(0.8, 0.25, 0.45)
	}
	mw := b.MortarWidth
	if mw == 0 {
		mw = 0.05
	}
	p := h.Point
	// Which course (row) are we in?
	row := math.Floor(p.Y / size.Y)
	// Offset alternate courses by half a brick along the wall direction
	// (running bond).
	xo := p.X
	zo := p.Z
	if int(math.Abs(row))%2 == 1 {
		xo += size.X / 2
	}
	fx := xo/size.X - math.Floor(xo/size.X)
	fy := p.Y/size.Y - math.Floor(p.Y/size.Y)
	fz := zo/size.Z - math.Floor(zo/size.Z)
	mx := mw / size.X
	my := mw / size.Y
	mz := mw / size.Z
	if fx < mx || fy < my || fz < mz {
		return b.Mortar
	}
	return b.Body
}

// Gradient fades between two colours along an axis over [0, Length].
type Gradient struct {
	Axis   vm.Vec3
	A, B   Color
	Length float64
}

// ColorAt implements Pigment.
func (g Gradient) ColorAt(h geom.Hit) Color {
	l := g.Length
	if l == 0 {
		l = 1
	}
	t := h.Point.Dot(g.Axis.Norm()) / l
	t -= math.Floor(t)
	return g.A.Lerp(g.B, t)
}

// Finish carries the reflectance parameters. Zero value = matte black.
type Finish struct {
	// Ambient is the ambient reflection coefficient.
	Ambient float64
	// Diffuse is the Lambertian coefficient.
	Diffuse float64
	// Specular is the Phong specular coefficient, with Shininess the
	// Phong exponent.
	Specular  float64
	Shininess float64
	// Reflect is k_rg, the global reflection coefficient.
	Reflect float64
	// Transmit is k_tg, the transmission coefficient, with IOR the index
	// of refraction used for Snell's law.
	Transmit float64
	IOR      float64
}

// DefaultFinish resembles POV-Ray's default: mostly diffuse.
func DefaultFinish() Finish {
	return Finish{Ambient: 0.1, Diffuse: 0.7, Specular: 0.2, Shininess: 40, IOR: 1.0}
}

// ChromeFinish is a highly reflective metal, as on the Newton marbles.
func ChromeFinish() Finish {
	return Finish{Ambient: 0.05, Diffuse: 0.15, Specular: 0.8, Shininess: 120, Reflect: 0.65, IOR: 1.0}
}

// GlassFinish transmits most light and reflects a little, as on the
// bouncing glass ball.
func GlassFinish() Finish {
	return Finish{Ambient: 0.02, Diffuse: 0.05, Specular: 0.9, Shininess: 200, Reflect: 0.1, Transmit: 0.85, IOR: 1.5}
}

// Material pairs a pigment with a finish.
type Material struct {
	Pigment Pigment
	Finish  Finish
}

// NewMaterial is a convenience constructor.
func NewMaterial(p Pigment, f Finish) Material {
	return Material{Pigment: p, Finish: f}
}

// Matte returns a plain diffuse material of colour c.
func Matte(c Color) Material {
	return Material{Pigment: Solid{C: c}, Finish: DefaultFinish()}
}
