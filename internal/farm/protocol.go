package farm

import (
	"fmt"

	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/objspace"
	"nowrender/internal/partition"
	"nowrender/internal/stats"
	vm "nowrender/internal/vecmath"
	"nowrender/internal/wire"
)

// Message tags of the farm protocol (the PVM msgtag space).
const (
	// TagHello announces a worker to the master (payload: name, or a
	// sealed name + capability bits; see encodeHello).
	TagHello = iota + 1
	// TagTask assigns a task (payload: encoded task + options).
	TagTask
	// TagFrameDone carries one rendered frame region and its statistics.
	TagFrameDone
	// TagTruncate tells a worker to stop its current task early
	// (payload: task id, new exclusive end frame).
	TagTruncate
	// TagTruncateAck reports where the worker actually stopped.
	TagTruncateAck
	// TagTaskDone reports a finished task (payload: task id, end frame).
	TagTaskDone
	// TagShutdown tells a worker to exit.
	TagShutdown
	// TagSceneSDL ships scene source to a remote worker (cmd/nowworker);
	// in-process workers share the scene directly.
	TagSceneSDL
	// TagBye announces a worker's graceful departure (payload: task id,
	// stop frame; -1, 0 when idle): the worker finished its in-flight
	// frame and is about to close its connection. The master requeues the
	// rest of its task without treating the exit as a failure.
	TagBye
	// TagPing is the master's heartbeat (payload: sequence number, then
	// the master's timeline clock in ns — 0 with no recorder). Workers
	// answer between frames, so a pong proves the render loop is alive,
	// not merely the connection.
	TagPing
	// TagPong answers a ping: legacy workers echo the payload verbatim,
	// timeline-capable workers append their own recorder clock (see
	// encodePong) so the master can estimate per-worker clock offsets
	// from the round trip.
	TagPong
	// TagFrameAck is the control half of a DFB frame result: the pixels
	// went straight to a compositor sink (capWireDFB), and this small ack
	// carries the per-frame statistics and timeline piggyback the master
	// would otherwise have read off TagFrameDone. The master does NOT
	// mark the frame delivered on it — only the sink's confirmation does
	// that, so a result lost between worker and sink is still requeued.
	TagFrameAck
	// TagOSStats ships a task's accumulated object-space forwarding
	// statistics (payload: sealed objspace.EncodeStats) just before the
	// task's TagTaskDone. Sent only under a capWireObjSpace grant.
	TagOSStats
)

// Wire capability bits, frame kinds, encodings, and codec types all
// live in internal/wire (shared with the compositor subsystem); the
// farm keeps these aliases so the protocol reads as before.
const (
	capWireDelta     = wire.CapDelta
	capWireCompress  = wire.CapCompress
	capWireTimeline  = wire.CapTimeline
	capWireDFB       = wire.CapDFB
	capWireSpanCodec = wire.CapSpanCodec
	capWireObjSpace  = wire.CapObjSpace
	wireCapsMask     = wire.CapsMask

	frameFull  = wire.KindFull
	frameDelta = wire.KindDelta

	encRaw   = wire.EncRaw
	encFlate = wire.EncFlate
	encSpan  = wire.EncSpan

	wireSpanOverhead = wire.SpanOverhead
	wireCompressMin  = wire.CompressMin
)

// frameDoneMsg is the wire form of one completed frame region.
type frameDoneMsg = wire.FrameDone

// wireEvent is one shipped timeline event.
type wireEvent = wire.TLEvent

// frameEncoder builds TagFrameDone payloads (key-frame vs delta choice,
// optional compression) with reusable scratch.
type frameEncoder = wire.Encoder

func encodeFrameDone(m frameDoneMsg) []byte { return wire.EncodeFrameDone(m) }

func decodeFrameDone(data []byte) (frameDoneMsg, error) { return wire.DecodeFrameDone(data) }

func validateSpans(spans []fb.Span, region fb.Rect) error { return wire.ValidateSpans(spans, region) }

// encodeHello packs a worker's hello: name plus capability bits, sealed
// like every other payload. Pre-capability masters treat the payload as
// an opaque name and route by Message.From, so this is backwards
// compatible in both directions (see decodeHello).
func encodeHello(name string, caps int) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackString(name)
	b.PackInt(int64(caps))
	return b.Sealed()
}

// decodeHello extracts the worker's self-reported name and capability
// bits from a hello payload. A legacy hello (raw name bytes, no seal)
// or anything else that does not parse yields zero capabilities — never
// an error, because an old worker must keep working. The name matters
// over TCP, where the master's hub names (tcp00, tcp01, ...) differ
// from the -name a worker introduces itself to compositor sinks with;
// sink confirmations carry the latter, and the master maps them back.
func decodeHello(data []byte) (name string, caps int) {
	body, err := msg.Open(data)
	if err != nil {
		return "", 0
	}
	b := msg.FromBytes(body)
	n := b.UnpackString()
	c := int(b.UnpackInt())
	if b.Err() != nil || b.Len() != 0 || c&^wireCapsMask != 0 {
		return "", 0
	}
	return n, c
}

// maxTaskDim bounds task resolution and frame numbers accepted off the
// wire, so a corrupt-but-checksummed task cannot make a worker allocate
// an absurd framebuffer.
const maxTaskDim = wire.MaxDim

// validate rejects task assignments whose geometry cannot have come from
// a sane master: non-positive resolution, a region outside the
// framebuffer, or an empty/inverted frame range.
func (t taskMsg) validate() error {
	if t.W <= 0 || t.H <= 0 || t.W > maxTaskDim || t.H > maxTaskDim {
		return fmt.Errorf("farm: bad task resolution %dx%d", t.W, t.H)
	}
	r := t.Task.Region
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > t.W || r.Y1 > t.H || r.X0 >= r.X1 || r.Y0 >= r.Y1 {
		return fmt.Errorf("farm: task region %v outside %dx%d", r, t.W, t.H)
	}
	if t.Task.StartFrame < 0 || t.Task.EndFrame <= t.Task.StartFrame || t.Task.EndFrame > maxTaskDim {
		return fmt.Errorf("farm: bad task frame range [%d,%d)", t.Task.StartFrame, t.Task.EndFrame)
	}
	if t.Samples < 0 || t.Threads < 0 {
		return fmt.Errorf("farm: bad task options (samples %d, threads %d)", t.Samples, t.Threads)
	}
	if t.WireFlags&^wireCapsMask != 0 {
		return fmt.Errorf("farm: unknown wire flags %#x", t.WireFlags)
	}
	if t.WireFlags&capWireDFB != 0 {
		if len(t.Sinks) < 1 || len(t.Sinks) > maxSinks {
			return fmt.Errorf("farm: bad DFB sink count %d", len(t.Sinks))
		}
		if t.JobStart < 0 || t.JobEnd > maxTaskDim ||
			t.JobStart > t.Task.StartFrame || t.Task.EndFrame > t.JobEnd {
			return fmt.Errorf("farm: DFB job range [%d,%d) does not contain task range [%d,%d)",
				t.JobStart, t.JobEnd, t.Task.StartFrame, t.Task.EndFrame)
		}
	} else if len(t.Sinks) != 0 {
		return fmt.Errorf("farm: sink list without DFB grant")
	}
	if t.WireFlags&capWireObjSpace != 0 {
		if t.OSShards < 2 || t.OSShards > objspace.MaxShards {
			return fmt.Errorf("farm: object-space shard count %d outside [2,%d]", t.OSShards, objspace.MaxShards)
		}
	} else if t.OSShards != 0 {
		return fmt.Errorf("farm: shard count without object-space grant")
	}
	return nil
}

// taskMsg is the wire form of a task assignment.
type taskMsg struct {
	Task      partition.Task
	W, H      int
	Coherence bool
	Samples   int
	GridRes   int
	BlockGran int
	// Threads bounds the worker's intra-frame tile pool; 0 lets the
	// worker use all its cores. Pixels are thread-count-invariant, so
	// this is purely a speed knob.
	Threads int
	// WireFlags grants wire capabilities for this task's results: the
	// intersection of the master's config and the worker's advertised
	// caps. Packed as a trailing field so pre-capability decoders simply
	// leave it unread, and absent on their encodes (zero = plain full
	// frames).
	WireFlags int
	// JobStart, JobEnd and Sinks describe the compositor topology when
	// WireFlags grants capWireDFB: the job's absolute frame range and the
	// sink addresses, from which the worker derives the frame→sink shard
	// map (partition.ShardMap). Packed only with the DFB grant, after
	// WireFlags, so every earlier decoder is unaffected.
	JobStart, JobEnd int
	Sinks            []string
	// OSShards is the object-space shard count when WireFlags grants
	// capWireObjSpace: the worker renders through an objspace partition
	// of that many slabs instead of a replicated grid. Packed only with
	// the grant, after the DFB section, so earlier decoders never see
	// it; ungranted workers render replicated — pixels are byte-identical
	// either way, so mixed fleets interoperate.
	OSShards int
}

// maxSinks bounds the sink list accepted off the wire.
const maxSinks = 1024

func encodeTask(t taskMsg) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(t.Task.ID))
	b.PackInt(int64(t.Task.Region.X0))
	b.PackInt(int64(t.Task.Region.Y0))
	b.PackInt(int64(t.Task.Region.X1))
	b.PackInt(int64(t.Task.Region.Y1))
	b.PackInt(int64(t.Task.StartFrame))
	b.PackInt(int64(t.Task.EndFrame))
	b.PackInt(int64(t.W))
	b.PackInt(int64(t.H))
	b.PackBool(t.Coherence)
	b.PackInt(int64(t.Samples))
	b.PackInt(int64(t.GridRes))
	b.PackInt(int64(t.BlockGran))
	b.PackInt(int64(t.Threads))
	b.PackInt(int64(t.WireFlags))
	if t.WireFlags&capWireDFB != 0 {
		b.PackInt(int64(t.JobStart))
		b.PackInt(int64(t.JobEnd))
		b.PackInt(int64(len(t.Sinks)))
		for _, s := range t.Sinks {
			b.PackString(s)
		}
	}
	if t.WireFlags&capWireObjSpace != 0 {
		b.PackInt(int64(t.OSShards))
	}
	return b.Sealed()
}

func decodeTask(data []byte) (taskMsg, error) {
	body, err := msg.Open(data)
	if err != nil {
		return taskMsg{}, fmt.Errorf("farm: bad task message: %w", err)
	}
	b := msg.FromBytes(body)
	var t taskMsg
	t.Task.ID = int(b.UnpackInt())
	// Argument evaluation is left to right, matching the packed order
	// X0, Y0, X1, Y1.
	t.Task.Region = fb.NewRect(int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()))
	t.Task.StartFrame = int(b.UnpackInt())
	t.Task.EndFrame = int(b.UnpackInt())
	t.W = int(b.UnpackInt())
	t.H = int(b.UnpackInt())
	t.Coherence = b.UnpackBool()
	t.Samples = int(b.UnpackInt())
	t.GridRes = int(b.UnpackInt())
	t.BlockGran = int(b.UnpackInt())
	t.Threads = int(b.UnpackInt())
	if b.Len() > 0 {
		// Trailing capability grant; absent from pre-capability masters.
		t.WireFlags = int(b.UnpackInt())
	}
	if t.WireFlags&capWireDFB != 0 {
		t.JobStart = int(b.UnpackInt())
		t.JobEnd = int(b.UnpackInt())
		n := int(b.UnpackInt())
		if n < 0 || n > maxSinks {
			return taskMsg{}, fmt.Errorf("farm: bad DFB sink count %d", n)
		}
		t.Sinks = make([]string, n)
		for i := range t.Sinks {
			t.Sinks[i] = b.UnpackString()
		}
	}
	if t.WireFlags&capWireObjSpace != 0 {
		t.OSShards = int(b.UnpackInt())
	}
	if err := b.Err(); err != nil {
		return taskMsg{}, fmt.Errorf("farm: bad task message: %w", err)
	}
	if err := t.validate(); err != nil {
		return taskMsg{}, err
	}
	return t, nil
}

// encodePair packs two integers (used by truncate/ack/task-done/ping).
func encodePair(a, b int) []byte {
	buf := msg.GetBuffer()
	defer buf.Release()
	buf.PackInt(int64(a))
	buf.PackInt(int64(b))
	return buf.Sealed()
}

// encodePong packs a worker's heartbeat answer: the ping's sequence and
// master clock stamp echoed back, plus the worker's own recorder clock
// (0 = no timeline clock). A legacy worker instead echoes the ping's
// pair payload verbatim; decodePong tells the two apart by length, so
// the master gets RTTs from everyone and offsets only from workers that
// can stamp them.
func encodePong(seq int, masterNs, workerNs int64) []byte {
	buf := msg.GetBuffer()
	defer buf.Release()
	buf.PackInt(int64(seq))
	buf.PackInt(masterNs)
	buf.PackInt(workerNs)
	return buf.Sealed()
}

func decodePong(data []byte) (seq int, masterNs, workerNs int64, err error) {
	body, err := msg.Open(data)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("farm: bad pong message: %w", err)
	}
	b := msg.FromBytes(body)
	seq = int(b.UnpackInt())
	masterNs = b.UnpackInt()
	if b.Len() > 0 {
		workerNs = b.UnpackInt()
	}
	if err := b.Err(); err != nil {
		return 0, 0, 0, fmt.Errorf("farm: bad pong message: %w", err)
	}
	return seq, masterNs, workerNs, nil
}

// frameAckMsg is the TagFrameAck payload: everything TagFrameDone
// carries except the pixels, which went to a compositor sink directly.
// The timeline piggyback rides the ack (not the pix message) so the
// master's clock-correcting merge keeps working under DFB.
type frameAckMsg struct {
	TaskID int
	Frame  int
	Region fb.Rect
	// Kind and Encoding are the wire.Kind*/wire.Enc* the worker shipped;
	// Sink the sink index it shipped to; SinkBytes the encoded payload
	// size on the sink link.
	Kind      int
	Encoding  int
	Sink      int
	SinkBytes int
	// Per-frame render statistics, mirroring frameDoneMsg.
	Rendered  int
	Copied    int
	Regs      uint64
	Rays      stats.RayCounters
	ElapsedNs int64
	// Timeline piggyback (optional trailing section; see wire.PackTL).
	TLNow    int64
	TLTracks []string
	TLEvents []wireEvent
}

func encodeFrameAck(a frameAckMsg) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(a.TaskID))
	b.PackInt(int64(a.Frame))
	b.PackInt(int64(a.Region.X0))
	b.PackInt(int64(a.Region.Y0))
	b.PackInt(int64(a.Region.X1))
	b.PackInt(int64(a.Region.Y1))
	b.PackInt(int64(a.Kind))
	b.PackInt(int64(a.Encoding))
	b.PackInt(int64(a.Sink))
	b.PackInt(int64(a.SinkBytes))
	b.PackInt(int64(a.Rendered))
	b.PackInt(int64(a.Copied))
	b.PackInt(int64(a.Regs))
	for k := 0; k < vm.NumRayKinds; k++ {
		b.PackInt(int64(a.Rays.ByKind[k]))
	}
	b.PackInt(a.ElapsedNs)
	if len(a.TLTracks) > 0 || a.TLNow != 0 {
		wire.PackTL(b, a.TLNow, a.TLTracks, a.TLEvents)
	}
	return b.Sealed()
}

func decodeFrameAck(data []byte) (frameAckMsg, error) {
	body, err := msg.Open(data)
	if err != nil {
		return frameAckMsg{}, fmt.Errorf("farm: bad frame ack: %w", err)
	}
	b := msg.FromBytes(body)
	var a frameAckMsg
	a.TaskID = int(b.UnpackInt())
	a.Frame = int(b.UnpackInt())
	a.Region = fb.NewRect(int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()))
	a.Kind = int(b.UnpackInt())
	a.Encoding = int(b.UnpackInt())
	a.Sink = int(b.UnpackInt())
	a.SinkBytes = int(b.UnpackInt())
	a.Rendered = int(b.UnpackInt())
	a.Copied = int(b.UnpackInt())
	a.Regs = uint64(b.UnpackInt())
	for k := 0; k < vm.NumRayKinds; k++ {
		a.Rays.ByKind[k] = uint64(b.UnpackInt())
	}
	a.ElapsedNs = b.UnpackInt()
	if b.Err() == nil && b.Len() > 0 {
		a.TLNow, a.TLTracks, a.TLEvents, err = wire.UnpackTL(b)
		if err != nil {
			return frameAckMsg{}, fmt.Errorf("farm: bad frame ack: %w", err)
		}
	}
	if err := b.Err(); err != nil {
		return frameAckMsg{}, fmt.Errorf("farm: bad frame ack: %w", err)
	}
	if a.Frame < 0 || a.Frame > maxTaskDim || a.Sink < 0 || a.Sink >= maxSinks || a.SinkBytes < 0 {
		return frameAckMsg{}, fmt.Errorf("farm: bad frame ack fields (frame %d, sink %d)", a.Frame, a.Sink)
	}
	return a, nil
}

func decodePair(data []byte) (int, int, error) {
	body, err := msg.Open(data)
	if err != nil {
		return 0, 0, fmt.Errorf("farm: bad pair message: %w", err)
	}
	b := msg.FromBytes(body)
	x := int(b.UnpackInt())
	y := int(b.UnpackInt())
	if err := b.Err(); err != nil {
		return 0, 0, fmt.Errorf("farm: bad pair message: %w", err)
	}
	return x, y, nil
}
