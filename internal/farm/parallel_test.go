package farm

import (
	"fmt"
	"testing"

	"nowrender/internal/partition"
)

// TestThreadsByteIdenticalAcrossSchemes is the end-to-end determinism
// contract from the farm's point of view: for every partitioning scheme
// (sequence, frame, hybrid), with and without frame coherence, running
// each worker's intra-frame tile pool at 8 threads produces frames
// byte-identical to the serial Threads=1 run — and both match the
// single-machine full-render ground truth. Threads must also leave the
// virtual makespan untouched, since the cost model charges per ray, not
// per goroutine.
func TestThreadsByteIdenticalAcrossSchemes(t *testing.T) {
	sc := farmScene(6)
	want := referenceFrames(t, sc)
	schemes := []partition.Scheme{
		partition.SequenceDivision{Adaptive: true},
		partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		partition.HybridDivision{BlockW: 20, BlockH: 16, SubseqLen: 3},
	}
	for _, coh := range []bool{false, true} {
		for _, sch := range schemes {
			label := fmt.Sprintf("%s coherence=%v", sch.Name(), coh)
			run := func(threads int) *Result {
				res, err := RenderVirtual(Config{
					Scene: sc, W: fw, H: fh, Scheme: sch, Coherence: coh,
					Threads: threads,
				})
				if err != nil {
					t.Fatalf("%s threads=%d: %v", label, threads, err)
				}
				return res
			}
			serial := run(1)
			par := run(8)
			assertFramesEqual(t, label+" threads=1 vs ground truth", serial.Frames, want)
			assertFramesEqual(t, label+" threads=8 vs threads=1", par.Frames, serial.Frames)
			if par.Makespan != serial.Makespan {
				t.Errorf("%s: makespan %v at 8 threads, want %v — thread count leaked into the cost model",
					label, par.Makespan, serial.Makespan)
			}
			if got, want := par.Run.TotalRays(), serial.Run.TotalRays(); got != want {
				t.Errorf("%s: total rays %v at 8 threads, want %v", label, got, want)
			}
		}
	}
}
