// The content-addressed frame cache lifts the paper's frame coherence to
// the service level: where the coherence engine reuses pixels between
// consecutive frames of one run, the cache reuses whole frames between
// *jobs* — a resubmitted or overlapping animation is served from memory
// with zero new rays traced.
//
// Frames are addressed by content, not by job: the key hashes the scene
// source, the output resolution, the pixel-affecting render options and
// the frame number. Options that provably do not change pixels are
// excluded on purpose — the repo's tested invariant is that every farm
// mode, partition scheme, and the coherence engine itself produce
// pixel-identical frames, so two jobs differing only in scheme or
// coherence share cache entries.
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"nowrender/internal/fb"
	"nowrender/internal/stats"
)

// seqKey addresses a rendered animation: scene source + resolution +
// pixel-affecting options.
type seqKey [sha256.Size]byte

// newSeqKey hashes the identity of a rendered sequence. source is the
// canonical scene text (builtin spec or SDL source); samples is the
// supersampling factor, the one exposed option that changes pixels.
func newSeqKey(source string, w, h, samples int) seqKey {
	hsh := sha256.New()
	var dims [12]byte
	binary.BigEndian.PutUint32(dims[0:], uint32(w))
	binary.BigEndian.PutUint32(dims[4:], uint32(h))
	binary.BigEndian.PutUint32(dims[8:], uint32(samples))
	hsh.Write(dims[:])
	hsh.Write([]byte(source))
	var k seqKey
	hsh.Sum(k[:0])
	return k
}

// frameKey addresses one frame of a sequence.
type frameKey struct {
	seq   seqKey
	frame int
}

// centry is one cached frame on the LRU list.
type centry struct {
	key  frameKey
	img  *fb.Framebuffer
	size int64
}

// FrameCache is a content-addressed frame store with LRU eviction under
// a byte budget. Cached framebuffers are shared, immutable-by-contract
// values: callers must not modify what Get returns or Put receives.
type FrameCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[frameKey]*list.Element

	hits, misses, evictions uint64
}

// NewFrameCache returns a cache bounded to budget bytes of pixel data.
// budget <= 0 means unlimited.
func NewFrameCache(budget int64) *FrameCache {
	return &FrameCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[frameKey]*list.Element),
	}
}

// get returns the cached frame and marks it most recently used.
func (c *FrameCache) get(k frameKey) (*fb.Framebuffer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*centry).img, true
}

// put inserts (or refreshes) a frame and evicts least-recently-used
// entries until the cache fits its budget. A frame larger than the whole
// budget is not cached at all.
func (c *FrameCache) put(k frameKey, img *fb.Framebuffer) {
	size := int64(len(img.Pix))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget > 0 && size > c.budget {
		return
	}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return // content-addressed: same key, same pixels
	}
	c.items[k] = c.ll.PushFront(&centry{key: k, img: img, size: size})
	c.bytes += size
	for c.budget > 0 && c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *FrameCache) Stats() stats.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return stats.CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}
