package scenes

import (
	"testing"

	"nowrender/internal/anim"
	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/trace"
)

func TestGalleryInventory(t *testing.T) {
	s := Gallery(0)
	if s.Frames != GalleryFrames {
		t.Errorf("frames = %d", s.Frames)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, o := range s.Objects {
		switch o.Shape.(type) {
		case *geom.Plane:
			kinds["plane"]++
		case *geom.Sphere:
			kinds["sphere"]++
		case *geom.Box:
			kinds["box"]++
		case *geom.Cylinder:
			kinds["cylinder"]++
		case *geom.Cone:
			kinds["cone"]++
		case *geom.Disc:
			kinds["disc"]++
		case *geom.Mesh:
			kinds["mesh"]++
		case *geom.Transformed:
			kinds["transformed"]++
		}
	}
	for _, k := range []string{"plane", "sphere", "box", "cylinder", "cone", "disc", "mesh", "transformed"} {
		if kinds[k] == 0 {
			t.Errorf("gallery has no %s", k)
		}
	}
}

func TestGalleryCameraCutSplits(t *testing.T) {
	s := Gallery(60)
	seqs := anim.SplitSequences(s)
	if len(seqs) != 2 {
		t.Fatalf("%d sequences, want 2", len(seqs))
	}
	if seqs[0].End != 30 {
		t.Errorf("cut at %d, want 30", seqs[0].End)
	}
	if err := anim.Validate(seqs, 60); err != nil {
		t.Error(err)
	}
}

func TestGalleryMoversMove(t *testing.T) {
	s := Gallery(60)
	moving := 0
	for _, o := range s.Objects {
		if o.MovedBetween(3, 4) {
			moving++
		}
	}
	if moving != 2 {
		t.Errorf("%d objects moving, want the orbiter and the bouncer", moving)
	}
}

func TestGalleryRendersBothShots(t *testing.T) {
	s := Gallery(60)
	for _, f := range []int{5, 45} {
		ft, err := trace.New(s, f, trace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		img := fb.New(48, 36)
		ft.RenderFull(img)
		colors := map[[3]byte]bool{}
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				r, g, b := img.At(x, y)
				colors[[3]byte{r, g, b}] = true
			}
		}
		if len(colors) < 32 {
			t.Errorf("frame %d: only %d colours", f, len(colors))
		}
	}
	// The two shots are genuinely different camera angles.
	a, _ := trace.New(s, 5, trace.Options{})
	b, _ := trace.New(s, 45, trace.Options{})
	imgA, imgB := fb.New(32, 24), fb.New(32, 24)
	a.RenderFull(imgA)
	b.RenderFull(imgB)
	if imgA.DiffCount(imgB) < 32*24/4 {
		t.Error("wide and close shots barely differ; camera cut broken")
	}
}
