package cluster

import (
	"math"
	"testing"
	"time"
)

func TestEthernetTransferTime(t *testing.T) {
	e := TenBaseT()
	// 1 MB over 10 Mbps = 0.8 s + 1 ms latency.
	d := e.TransferTime(1 << 20)
	want := time.Millisecond + time.Duration(float64(1<<20)*8/10e6*float64(time.Second))
	if d != want {
		t.Errorf("transfer = %v, want %v", d, want)
	}
	// Zero bandwidth degrades to pure latency.
	e2 := Ethernet{Latency: time.Millisecond}
	if e2.TransferTime(100) != time.Millisecond {
		t.Error("zero-bandwidth transfer wrong")
	}
}

func TestPaperTestbed(t *testing.T) {
	ms := PaperTestbed()
	if len(ms) != 3 {
		t.Fatalf("%d machines", len(ms))
	}
	if ms[0].Speed != 2.0 || ms[1].Speed != 1.0 || ms[2].Speed != 1.0 {
		t.Error("speeds do not match the paper's 200/100/100 MHz machines")
	}
}

func TestUniform(t *testing.T) {
	ms := Uniform(4, 1.5, 128)
	if len(ms) != 4 || ms[3].Speed != 1.5 || ms[0].Name == ms[1].Name {
		t.Errorf("uniform = %+v", ms)
	}
}

func TestCostModelSeconds(t *testing.T) {
	c := CostModel{SecPerRay: 0.001, SecPerRegistration: 0.0001, SecPerCopiedPixel: 0.00001, SecPerChangeVoxel: 0}
	w := Work{Rays: 1000, Registrations: 100, CopiedPixels: 10}
	got := c.Seconds(w)
	want := 1.0 + 0.01 + 0.0001
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Seconds = %v, want %v", got, want)
	}
}

func TestCostModelSpeedScaling(t *testing.T) {
	c := CostModel{SecPerRay: 0.001}
	fast := Machine{Speed: 2, MemoryMB: 64}
	slow := Machine{Speed: 1, MemoryMB: 64}
	w := Work{Rays: 2000}
	df := c.On(fast, w)
	ds := c.On(slow, w)
	if ds != 2*df {
		t.Errorf("fast=%v slow=%v; slow should be exactly 2x", df, ds)
	}
}

func TestCostModelSwapPenalty(t *testing.T) {
	c := CostModel{SecPerRay: 0.001, SwapPenalty: 2}
	m := Machine{Speed: 1, MemoryMB: 32}
	fits := Work{Rays: 1000, MemoryMB: 16}
	thrashes := Work{Rays: 1000, MemoryMB: 64}
	if got := c.On(m, thrashes); got != 2*c.On(m, fits) {
		t.Errorf("swap penalty not applied: %v", got)
	}
	// No penalty when memory is unlimited (0).
	m0 := Machine{Speed: 1}
	if c.On(m0, thrashes) != c.On(m0, fits) {
		t.Error("penalty applied with unlimited memory")
	}
}

func TestVirtualNOWValidation(t *testing.T) {
	if _, err := NewVirtualNOW(nil, TenBaseT(), DefaultCostModel()); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewVirtualNOW([]Machine{{Speed: 0}}, TenBaseT(), DefaultCostModel()); err == nil {
		t.Error("zero-speed machine accepted")
	}
}

func TestVirtualNOWExec(t *testing.T) {
	v, err := NewVirtualNOW(PaperTestbed(), TenBaseT(), CostModel{SecPerRay: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	// Same work: fast machine finishes in half the time.
	v.Exec(0, Work{Rays: 1000}) // 0.5s at speed 2
	v.Exec(1, Work{Rays: 1000}) // 1.0s at speed 1
	if v.Time(0) != 500*time.Millisecond {
		t.Errorf("fast clock = %v", v.Time(0))
	}
	if v.Time(1) != time.Second {
		t.Errorf("slow clock = %v", v.Time(1))
	}
	if v.Makespan() != time.Second {
		t.Errorf("makespan = %v", v.Makespan())
	}
	if got := v.EarliestFree(); got != 2 { // machine 2 hasn't worked
		t.Errorf("earliest free = %d", got)
	}
}

func TestVirtualNOWBusSerialises(t *testing.T) {
	net := Ethernet{Latency: 0, BandwidthBps: 8} // 1 byte/sec: easy math
	v, _ := NewVirtualNOW(Uniform(2, 1, 0), net, CostModel{})
	// Two simultaneous 1-byte transfers: second waits for the bus.
	end0 := v.Communicate(0, 1)
	end1 := v.Communicate(1, 1)
	if end0 != time.Second {
		t.Errorf("first transfer ends %v", end0)
	}
	if end1 != 2*time.Second {
		t.Errorf("second transfer should queue behind the first: %v", end1)
	}
	if v.CommTime(1) != 2*time.Second {
		t.Errorf("comm time includes queueing: %v", v.CommTime(1))
	}
}

func TestVirtualNOWBusEarlyGapClaim(t *testing.T) {
	// A machine whose clock lags can claim a bus gap before an existing
	// future reservation — required because the trace-driven farm
	// processes events out of global time order.
	net := Ethernet{Latency: 0, BandwidthBps: 8} // 1 byte/sec
	v, _ := NewVirtualNOW(Uniform(2, 1, 0), net, CostModel{SecPerRay: 1})
	// Machine 1 runs far ahead and books the bus at t=100s.
	v.Exec(1, Work{Rays: 100})
	if end := v.Communicate(1, 1); end != 101*time.Second {
		t.Fatalf("future reservation ends %v", end)
	}
	// Machine 0 at t=0 transfers now: the bus is free before 100s.
	if end := v.Communicate(0, 1); end != time.Second {
		t.Errorf("early transfer ends %v, want 1s (gap before future slot)", end)
	}
	// A third transfer at t=0 with a 200s duration must go after the
	// 100s slot (no 200s gap before it).
	v2, _ := NewVirtualNOW(Uniform(2, 1, 0), net, CostModel{SecPerRay: 1})
	v2.Exec(1, Work{Rays: 100})
	v2.Communicate(1, 1) // [100,101)
	if end := v2.Communicate(0, 150); end != 251*time.Second {
		t.Errorf("long transfer ends %v, want 251s (after the future slot)", end)
	}
}

func TestVirtualNOWAdvanceTo(t *testing.T) {
	v, _ := NewVirtualNOW(Uniform(1, 1, 0), TenBaseT(), CostModel{})
	v.AdvanceTo(0, 5*time.Second)
	if v.Time(0) != 5*time.Second {
		t.Errorf("clock = %v", v.Time(0))
	}
	v.AdvanceTo(0, time.Second) // never goes backwards
	if v.Time(0) != 5*time.Second {
		t.Error("AdvanceTo moved clock backwards")
	}
}

func TestVirtualNOWUtilisation(t *testing.T) {
	v, _ := NewVirtualNOW(Uniform(2, 1, 0), TenBaseT(), CostModel{SecPerRay: 1})
	v.Exec(0, Work{Rays: 10})
	v.Exec(1, Work{Rays: 5})
	if got := v.Utilisation(0); got != 1.0 {
		t.Errorf("util(0) = %v", got)
	}
	if got := v.Utilisation(1); got != 0.5 {
		t.Errorf("util(1) = %v", got)
	}
}

func TestVirtualNOWDeterminism(t *testing.T) {
	run := func() time.Duration {
		v, _ := NewVirtualNOW(PaperTestbed(), TenBaseT(), DefaultCostModel())
		for i := 0; i < 100; i++ {
			w := v.EarliestFree()
			v.Communicate(w, 128)
			v.Exec(w, Work{Rays: uint64(1000 + i*17), Registrations: uint64(i * 3)})
			v.Communicate(w, 4096)
		}
		return v.Makespan()
	}
	if run() != run() {
		t.Error("virtual cluster not deterministic")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Errorf("speedup = %v", got)
	}
	if !math.IsInf(Speedup(time.Second, 0), 1) {
		t.Error("zero parallel time should be +Inf")
	}
}

// Scheduling shape test: request-driven assignment on the heterogeneous
// testbed gives the fast machine about twice the tasks of a slow one.
func TestHeterogeneousLoadBalance(t *testing.T) {
	v, _ := NewVirtualNOW(PaperTestbed(), TenBaseT(), CostModel{SecPerRay: 0.0001})
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		w := v.EarliestFree()
		counts[w]++
		v.Exec(w, Work{Rays: 10000})
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("fast/slow task ratio = %v (counts %v), want ~2", ratio, counts)
	}
	// Makespan must beat the best single machine by a decent factor:
	// aggregate speed is 4.0 vs best single 2.0.
	single := time.Duration(300 * 10000 * 0.0001 / 2.0 * float64(time.Second))
	sp := Speedup(single, v.Makespan())
	if sp < 1.8 || sp > 2.05 {
		t.Errorf("cluster speedup over fastest machine = %v, want ~2", sp)
	}
}
