package grid

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

func TestWalkAxisAligned(t *testing.T) {
	g := unitGrid(t, 4)
	// Straight through the middle along +X: 4 voxels in x order.
	r := vm.Ray{Origin: vm.V(-1, 0.6, 0.6), Dir: vm.V(1, 0, 0)}
	got := g.VoxelsOnRay(r, 0, math.Inf(1))
	if len(got) != 4 {
		t.Fatalf("visited %d voxels, want 4: %v", len(got), got)
	}
	for i, idx := range got {
		ix, iy, iz := g.Coords(idx)
		if ix != i || iy != 2 || iz != 2 {
			t.Errorf("step %d: voxel (%d,%d,%d)", i, ix, iy, iz)
		}
	}
}

func TestWalkReverseDirection(t *testing.T) {
	g := unitGrid(t, 4)
	r := vm.Ray{Origin: vm.V(2, 0.1, 0.1), Dir: vm.V(-1, 0, 0)}
	got := g.VoxelsOnRay(r, 0, math.Inf(1))
	if len(got) != 4 {
		t.Fatalf("visited %d voxels, want 4", len(got))
	}
	for i, idx := range got {
		ix, _, _ := g.Coords(idx)
		if ix != 3-i {
			t.Errorf("step %d: x=%d, want %d", i, ix, 3-i)
		}
	}
}

func TestWalkFromInside(t *testing.T) {
	g := unitGrid(t, 4)
	r := vm.Ray{Origin: vm.V(0.6, 0.6, 0.6), Dir: vm.V(0, 1, 0)}
	got := g.VoxelsOnRay(r, 0, math.Inf(1))
	// Starts in voxel y=2, exits through y=3: two voxels.
	if len(got) != 2 {
		t.Fatalf("visited %d voxels, want 2: %v", len(got), got)
	}
}

func TestWalkMiss(t *testing.T) {
	g := unitGrid(t, 4)
	r := vm.Ray{Origin: vm.V(-1, 5, 0), Dir: vm.V(1, 0, 0)}
	if got := g.VoxelsOnRay(r, 0, math.Inf(1)); len(got) != 0 {
		t.Errorf("miss visited %d voxels", len(got))
	}
}

func TestWalkRespectstMax(t *testing.T) {
	g := unitGrid(t, 4)
	r := vm.Ray{Origin: vm.V(-0.5, 0.1, 0.1), Dir: vm.V(1, 0, 0)}
	// tMax 0.75 => reaches x = 0.25 inside the grid, i.e. just into the
	// second voxel.
	got := g.VoxelsOnRay(r, 0, 0.76)
	if len(got) != 2 {
		t.Errorf("visited %d voxels with tight tMax: %v", len(got), got)
	}
}

func TestWalkEarlyStop(t *testing.T) {
	g := unitGrid(t, 8)
	r := vm.Ray{Origin: vm.V(-1, 0.5, 0.5), Dir: vm.V(1, 0, 0)}
	n := 0
	g.Walk(r, 0, math.Inf(1), func(int, float64, float64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d voxels, want 3", n)
	}
}

func TestWalkIntervalsAreContiguous(t *testing.T) {
	g := unitGrid(t, 5)
	r := vm.Ray{Origin: vm.V(-0.3, -0.2, -0.1), Dir: vm.V(1, 0.9, 0.8).Norm()}
	prevLeave := math.NaN()
	first := true
	g.Walk(r, 0, math.Inf(1), func(idx int, tEnter, tLeave float64) bool {
		if tLeave < tEnter {
			t.Errorf("voxel %d: tLeave %v < tEnter %v", idx, tLeave, tEnter)
		}
		if !first && math.Abs(tEnter-prevLeave) > 1e-9 {
			t.Errorf("gap between voxels: prev leave %v, enter %v", prevLeave, tEnter)
		}
		first = false
		prevLeave = tLeave
		return true
	})
	if first {
		t.Fatal("diagonal ray visited no voxels")
	}
}

func TestWalkDiagonalVisitsNeighbours(t *testing.T) {
	g := unitGrid(t, 2)
	// Perfect diagonal from corner to corner.
	r := vm.Ray{Origin: vm.V(-0.5, -0.5, -0.5), Dir: vm.V(1, 1, 1)}
	got := g.VoxelsOnRay(r, 0, math.Inf(1))
	// Must include the two corner voxels; grid steps one axis at a time
	// so the count is between 2 and 4 for a 2x2x2 grid.
	if len(got) < 2 || len(got) > 4 {
		t.Fatalf("diagonal visited %d voxels: %v", len(got), got)
	}
	first, last := got[0], got[len(got)-1]
	if first != g.Index(0, 0, 0) {
		t.Errorf("first voxel %d, want corner", first)
	}
	if last != g.Index(1, 1, 1) {
		t.Errorf("last voxel %d, want far corner", last)
	}
	// Consecutive voxels differ by exactly one axis step.
	for i := 1; i < len(got); i++ {
		ax, ay, az := g.Coords(got[i-1])
		bx, by, bz := g.Coords(got[i])
		d := abs(ax-bx) + abs(ay-by) + abs(az-bz)
		if d != 1 {
			t.Errorf("non-adjacent step %d -> %d", got[i-1], got[i])
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestWalkSegment(t *testing.T) {
	g := unitGrid(t, 4)
	// Segment entirely inside one voxel.
	var got []int
	g.WalkSegment(vm.V(0.1, 0.1, 0.1), vm.V(0.2, 0.1, 0.1),
		func(idx int, _, _ float64) bool { got = append(got, idx); return true })
	if len(got) != 1 || got[0] != g.Index(0, 0, 0) {
		t.Errorf("intra-voxel segment visited %v", got)
	}
	// Segment spanning the whole grid diagonal visits first and last.
	got = got[:0]
	g.WalkSegment(vm.V(0.01, 0.01, 0.01), vm.V(0.99, 0.99, 0.99),
		func(idx int, _, _ float64) bool { got = append(got, idx); return true })
	if got[0] != g.Index(0, 0, 0) || got[len(got)-1] != g.Index(3, 3, 3) {
		t.Errorf("diagonal segment endpoints wrong: %v", got)
	}
	// Segment stops where it ends, not at the grid edge.
	got = got[:0]
	g.WalkSegment(vm.V(0.1, 0.1, 0.1), vm.V(0.3, 0.1, 0.1),
		func(idx int, _, _ float64) bool { got = append(got, idx); return true })
	if len(got) != 2 {
		t.Errorf("half-grid segment visited %d voxels: %v", len(got), got)
	}
}

// Cross-check the DDA against a brute-force geometric test: a voxel is
// visited iff the ray's AABB-clipped segment overlaps the voxel box.
func TestWalkMatchesBruteForce(t *testing.T) {
	g := unitGrid(t, 6)
	rng := vm.NewRNG(2024)
	for trial := 0; trial < 500; trial++ {
		o := vm.V(rng.InRange(-2, 3), rng.InRange(-2, 3), rng.InRange(-2, 3))
		d := vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1))
		if d.Len() < 0.1 {
			continue
		}
		d = d.Norm()
		r := vm.Ray{Origin: o, Dir: d}

		visited := make(map[int]bool)
		for _, idx := range g.VoxelsOnRay(r, 0, math.Inf(1)) {
			visited[idx] = true
		}

		// Brute force: for each voxel, slab-test the ray against a
		// slightly shrunken voxel box (to keep boundary-grazing rays,
		// which may legitimately go either way, out of the comparison).
		for idx := 0; idx < g.NumVoxels(); idx++ {
			ix, iy, iz := g.Coords(idx)
			vb := g.VoxelBounds(ix, iy, iz)
			inner := vm.AABB{
				Min: vb.Min.Add(vm.Splat(1e-7)),
				Max: vb.Max.Sub(vm.Splat(1e-7)),
			}
			iv, hit := inner.IntersectRay(r, 0, math.Inf(1))
			solidHit := hit && iv.Max-iv.Min > 1e-9
			if solidHit && !visited[idx] {
				t.Fatalf("trial %d: DDA missed voxel %d (%d,%d,%d) for ray %+v",
					trial, idx, ix, iy, iz, r)
			}
			if !hit {
				// DDA may visit boundary voxels brute-force misses; only
				// flag clear misses where the outer box is also missed.
				ov, ohit := vb.Pad(1e-7).IntersectRay(r, 0, math.Inf(1))
				if visited[idx] && (!ohit || ov.Max-ov.Min < 0) {
					t.Fatalf("trial %d: DDA visited non-overlapping voxel %d", trial, idx)
				}
			}
		}
	}
}
