package partition

import (
	"testing"
	"testing/quick"
)

func TestWeightedSequenceProportional(t *testing.T) {
	// The paper's testbed: speeds 2:1:1 over 45 frames.
	s := WeightedSequenceDivision{Speeds: []float64{2, 1, 1}, Adaptive: true}
	tasks := s.InitialTasks(240, 320, 0, 45, 3)
	if len(tasks) != 3 {
		t.Fatalf("%d tasks", len(tasks))
	}
	// Fast machine gets ~22-23 frames, slow ones ~11 each.
	if tasks[0].Frames() < 22 || tasks[0].Frames() > 23 {
		t.Errorf("fast task has %d frames, want ~22", tasks[0].Frames())
	}
	if tasks[1].Frames() < 11 || tasks[1].Frames() > 12 {
		t.Errorf("slow task has %d frames", tasks[1].Frames())
	}
	if err := ValidateTiling(tasks, 240, 320, 0, 45); err != nil {
		t.Error(err)
	}
	// Subsequences stay contiguous for coherence.
	for i := 1; i < len(tasks); i++ {
		if tasks[i].StartFrame != tasks[i-1].EndFrame {
			t.Error("subsequences not contiguous")
		}
	}
}

func TestWeightedDefaultsToUniform(t *testing.T) {
	s := WeightedSequenceDivision{}
	u := SequenceDivision{}
	a := s.InitialTasks(10, 10, 0, 12, 3)
	b := u.InitialTasks(10, 10, 0, 12, 3)
	if len(a) != len(b) {
		t.Fatalf("task counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Frames() != b[i].Frames() {
			t.Errorf("task %d: %d vs %d frames", i, a[i].Frames(), b[i].Frames())
		}
	}
}

func TestWeightedZeroAndMissingSpeeds(t *testing.T) {
	// Zero/absent speeds are treated as 1.
	s := WeightedSequenceDivision{Speeds: []float64{4, 0}}
	tasks := s.InitialTasks(8, 8, 0, 10, 3)
	if err := ValidateTiling(tasks, 8, 8, 0, 10); err != nil {
		t.Fatal(err)
	}
	// Weights 4,1,1: fast gets ~6-7 frames.
	if tasks[0].Frames() < 6 {
		t.Errorf("fast task frames = %d", tasks[0].Frames())
	}
}

func TestWeightedSubdivide(t *testing.T) {
	s := WeightedSequenceDivision{Speeds: []float64{2, 1}, Adaptive: true}
	task := s.InitialTasks(8, 8, 0, 12, 2)[0]
	keep, give, ok := s.Subdivide(task)
	if !ok || keep.Frames()+give.Frames() != task.Frames() {
		t.Errorf("subdivide: %v | %v ok=%v", keep, give, ok)
	}
	static := WeightedSequenceDivision{Speeds: []float64{2, 1}}
	if _, _, ok := static.Subdivide(task); ok {
		t.Error("static weighted scheme subdivided")
	}
}

func TestWeightedSingleWorker(t *testing.T) {
	s := WeightedSequenceDivision{Speeds: []float64{3}}
	tasks := s.InitialTasks(8, 8, 2, 14, 1)
	if len(tasks) != 1 {
		t.Fatalf("%d tasks, want 1", len(tasks))
	}
	if tasks[0].StartFrame != 2 || tasks[0].EndFrame != 14 {
		t.Errorf("task covers [%d,%d), want [2,14)", tasks[0].StartFrame, tasks[0].EndFrame)
	}
	if err := ValidateTiling(tasks, 8, 8, 2, 14); err != nil {
		t.Error(err)
	}
}

func TestWeightedMoreWorkersThanFrames(t *testing.T) {
	// 8 workers for 3 frames: the scheme clamps to one task per frame
	// rather than emitting empty assignments.
	s := WeightedSequenceDivision{Speeds: []float64{5, 1, 1, 1, 1, 1, 1, 1}}
	tasks := s.InitialTasks(8, 8, 0, 3, 8)
	if len(tasks) > 3 {
		t.Fatalf("%d tasks for 3 frames", len(tasks))
	}
	for _, task := range tasks {
		if task.Frames() < 1 {
			t.Errorf("empty task %v", task)
		}
	}
	if err := ValidateTiling(tasks, 8, 8, 0, 3); err != nil {
		t.Error(err)
	}
}

func TestWeightedNegativeSpeedTreatedAsOne(t *testing.T) {
	// A negative speed (bad calibration input) falls back to weight 1
	// instead of poisoning the apportionment.
	neg := WeightedSequenceDivision{Speeds: []float64{-3, 2}}
	ref := WeightedSequenceDivision{Speeds: []float64{1, 2}}
	a := neg.InitialTasks(8, 8, 0, 12, 2)
	b := ref.InitialTasks(8, 8, 0, 12, 2)
	if len(a) != len(b) {
		t.Fatalf("task counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Frames() != b[i].Frames() {
			t.Errorf("task %d: %d vs %d frames", i, a[i].Frames(), b[i].Frames())
		}
	}
}

func TestWeightedDegenerateRanges(t *testing.T) {
	s := WeightedSequenceDivision{Speeds: []float64{2, 1}}
	if tasks := s.InitialTasks(8, 8, 5, 5, 2); tasks != nil {
		t.Errorf("empty frame range produced %d tasks", len(tasks))
	}
	if tasks := s.InitialTasks(8, 8, 5, 3, 2); tasks != nil {
		t.Errorf("inverted frame range produced %d tasks", len(tasks))
	}
	if tasks := s.InitialTasks(8, 8, 0, 10, 0); tasks != nil {
		t.Errorf("zero workers produced %d tasks", len(tasks))
	}
}

func TestWeightedFewerSpeedsThanWorkers(t *testing.T) {
	// Two calibrated speeds, four workers: the uncalibrated pair gets
	// weight 1 and the fast machine still leads.
	s := WeightedSequenceDivision{Speeds: []float64{4, 2}}
	tasks := s.InitialTasks(8, 8, 0, 16, 4)
	if err := ValidateTiling(tasks, 8, 8, 0, 16); err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("%d tasks, want 4", len(tasks))
	}
	// Weights 4:2:1:1 over 16 frames = 8:4:2:2.
	want := []int{8, 4, 2, 2}
	for i, task := range tasks {
		if task.Frames() != want[i] {
			t.Errorf("task %d has %d frames, want %d", i, task.Frames(), want[i])
		}
	}
}

// Property: any speed mix tiles exactly.
func TestQuickWeightedTiles(t *testing.T) {
	f := func(s0, s1, s2 uint8, frames8, workers8 uint8) bool {
		speeds := []float64{float64(s0%8) + 0.5, float64(s1%8) + 0.5, float64(s2%8) + 0.5}
		frames := int(frames8%40) + 1
		workers := int(workers8%5) + 1
		s := WeightedSequenceDivision{Speeds: speeds, Adaptive: true}
		tasks := s.InitialTasks(16, 16, 0, frames, workers)
		return ValidateTiling(tasks, 16, 16, 0, frames) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
