// Gallery renders the complex museum animation — many primitives, two
// independently moving objects and a camera cut — through the
// cut-aware farm driver: the animation is split into camera-stationary
// sequences (the unit the paper's coherence algorithm requires) and
// each sequence runs on the virtual NOW with frame coherence.
//
//	go run ./examples/gallery -out gallery-out/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nowrender"
)

func main() {
	var (
		frames = flag.Int("frames", 24, "animation length (cut at the midpoint)")
		width  = flag.Int("w", 160, "width")
		height = flag.Int("h", 120, "height")
		outDir = flag.String("out", "", "output directory for frame TGAs (empty = stats only)")
	)
	flag.Parse()
	if err := run(*frames, *width, *height, *outDir); err != nil {
		log.Fatal(err)
	}
}

func run(frames, w, h int, outDir string) error {
	sc := nowrender.GalleryScene(frames)
	emit := func(f int, img *nowrender.Framebuffer) error { return nil }
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		emit = func(f int, img *nowrender.Framebuffer) error {
			return nowrender.WriteTGA(filepath.Join(outDir, fmt.Sprintf("frame%04d.tga", f)), img)
		}
	}

	fmt.Printf("gallery: %d frames at %dx%d, camera cut at frame %d\n", frames, w, h, frames/2)
	start := time.Now()
	res, err := nowrender.RenderFarmAuto(nowrender.FarmConfig{
		Scene: sc, W: w, H: h, Coherence: true,
		Scheme: nowrender.FrameDivision{BlockW: w / 4, BlockH: h / 4, Adaptive: true},
		Emit:   emit,
	})
	if err != nil {
		return err
	}
	total := res.Run.TotalRays()
	fmt.Printf("rendered %d frames in %v wall (%v virtual NOW time)\n",
		len(res.Frames), time.Since(start).Round(time.Millisecond), res.Makespan.Round(time.Millisecond))
	fmt.Printf("rays: %d   tasks: %d   traffic: %d bytes\n",
		total.Total(), res.TasksExecuted, res.BytesTransferred)

	// Show the economy per frame: the two frames after each sequence
	// start are full renders; everything else is mostly copied.
	fullPixels := w * h
	for _, fs := range res.Run.Frames {
		if fs.Frame > 3 && fs.Frame != frames/2 && fs.Frame != frames/2+1 {
			continue
		}
		fmt.Printf("  frame %2d: traced %5d of %d pixels (%.0f%% reused)\n",
			fs.Frame, fs.Rendered, fullPixels,
			100*float64(fs.Copied)/float64(fullPixels))
	}
	if outDir != "" {
		fmt.Printf("frames written to %s\n", outDir)
	}
	return nil
}
