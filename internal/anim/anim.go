// Package anim handles animation-level concerns: splitting an animation
// into camera-stationary sequences. The paper's coherence algorithm
// "works only for sequences in which the camera is stationary, [so] any
// camera movement logically separates one sequence from another" (§3);
// these shorter sequences are the units the farm parallelises.
package anim

import (
	"fmt"

	"nowrender/internal/scene"
)

// Sequence is a maximal run of frames [Start, End) sharing one camera.
type Sequence struct {
	Start, End int // [Start, End)
	Camera     scene.Camera
}

// Frames returns the sequence length.
func (s Sequence) Frames() int { return s.End - s.Start }

// String implements fmt.Stringer.
func (s Sequence) String() string {
	return fmt.Sprintf("frames [%d,%d)", s.Start, s.End)
}

// SplitSequences partitions the scene's frames into camera-stationary
// sequences. A scene without a camera track yields a single sequence.
func SplitSequences(sc *scene.Scene) []Sequence {
	if sc.Frames <= 0 {
		return nil
	}
	var out []Sequence
	cur := Sequence{Start: 0, End: 1, Camera: sc.CameraAt(0)}
	for f := 1; f < sc.Frames; f++ {
		cam := sc.CameraAt(f)
		if cam.Equal(cur.Camera) {
			cur.End = f + 1
			continue
		}
		out = append(out, cur)
		cur = Sequence{Start: f, End: f + 1, Camera: cam}
	}
	return append(out, cur)
}

// Validate checks that sequences exactly tile [0, frames) in order.
func Validate(seqs []Sequence, frames int) error {
	if len(seqs) == 0 {
		if frames == 0 {
			return nil
		}
		return fmt.Errorf("anim: no sequences for %d frames", frames)
	}
	if seqs[0].Start != 0 {
		return fmt.Errorf("anim: first sequence starts at %d", seqs[0].Start)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i].Start != seqs[i-1].End {
			return fmt.Errorf("anim: gap between sequences %d and %d", i-1, i)
		}
	}
	if last := seqs[len(seqs)-1]; last.End != frames {
		return fmt.Errorf("anim: sequences end at %d, want %d", last.End, frames)
	}
	return nil
}
