// Package geom implements the geometric primitives the renderer supports
// and their ray-intersection routines. The set matches what the paper's
// test scenes need (POV-Ray subset): planes, spheres, boxes, capped
// cylinders, discs, triangles and triangle meshes, plus an affine
// transform wrapper.
//
// All primitives implement Shape. Intersection routines return the
// nearest hit with parameter t in (tMin, tMax); they are exact (no
// acceleration) — spatial acceleration lives in internal/grid.
package geom

import (
	vm "nowrender/internal/vecmath"
)

// Hit describes a ray-surface intersection.
type Hit struct {
	// T is the ray parameter of the hit; for unit-length directions this
	// is the Euclidean distance from the ray origin.
	T float64
	// Point is the world-space intersection point.
	Point vm.Vec3
	// Normal is the unit outward surface normal at Point. It always
	// faces against the incoming ray (flipped when the ray hits a
	// surface from inside), with Inside reporting whether flipping
	// occurred.
	Normal vm.Vec3
	// Inside is true when the ray origin was inside the closed surface —
	// needed to pick the right refraction index ratio.
	Inside bool
	// U, V are surface parameterisation coordinates used by procedural
	// textures (checker, brick).
	U, V float64
}

// Shape is a geometric surface a ray can hit.
type Shape interface {
	// Intersect returns the nearest hit with t in (tMin, tMax). ok is
	// false when the ray misses.
	Intersect(r vm.Ray, tMin, tMax float64) (h Hit, ok bool)
	// Bounds returns a world-space axis-aligned bounding box fully
	// containing the shape. Unbounded shapes (Plane) return a very large
	// but finite box so the voxel grid can still clip them.
	Bounds() vm.AABB
}

// faceForward flips n to oppose d, returning the flipped normal and
// whether a flip happened (i.e. the ray was inside the surface).
func faceForward(n, d vm.Vec3) (vm.Vec3, bool) {
	if n.Dot(d) > 0 {
		return n.Neg(), true
	}
	return n, false
}

// HugeExtent bounds "infinite" primitives. Scenes are expected to fit in
// a few thousand units; the grid clips object boxes to the scene box, so
// the exact value only needs to be large.
const HugeExtent = 1e6
