package sched

import (
	"testing"

	"nowrender/internal/queue"
)

func push(t *testing.T, q *queue.Q, tenant string, pri, seq int) *queue.Item {
	t.Helper()
	it := &queue.Item{Tenant: tenant, Priority: pri, Seq: seq}
	if err := q.Push(it); err != nil {
		t.Fatal(err)
	}
	return it
}

func drainOrder(q *queue.Q, p Policy) []int {
	var seqs []int
	for it := p.Next(q); it != nil; it = p.Next(q) {
		seqs = append(seqs, it.Seq)
	}
	return seqs
}

func wantOrder(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestPriorityPolicyMatchesPreSplitOrdering: across tenants, highest
// priority first, then global submission order — the old single heap.
func TestPriorityPolicyMatchesPreSplitOrdering(t *testing.T) {
	q := queue.New(queue.Config{})
	push(t, q, "a", 0, 0)
	push(t, q, "b", 5, 1)
	push(t, q, "a", 5, 2)
	push(t, q, "b", 0, 3)
	p, err := NewPolicy("priority", nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder(t, drainOrder(q, p), []int{1, 2, 0, 3})
}

// TestFIFOPolicyIgnoresCrossTenantPriority: arrival order across
// tenants even when a later item has higher priority.
func TestFIFOPolicyIgnoresCrossTenantPriority(t *testing.T) {
	q := queue.New(queue.Config{})
	push(t, q, "a", 0, 0)
	push(t, q, "b", 9, 1)
	push(t, q, "a", 9, 2) // within tenant a, priority 9 jumps ahead of seq 0
	p, err := NewPolicy("fifo", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant a's head is seq 2 (priority 9 within the tenant), so the
	// cross-tenant arrival comparison sees heads {a: 2, b: 1}.
	wantOrder(t, drainOrder(q, p), []int{1, 2, 0})
}

// TestWeightedFairInterleavesFlood: tenant a floods six jobs before
// tenant b submits two; fair scheduling interleaves b's jobs near the
// front instead of queueing them behind the flood.
func TestWeightedFairInterleavesFlood(t *testing.T) {
	q := queue.New(queue.Config{})
	for i := 0; i < 6; i++ {
		push(t, q, "a", 0, i)
	}
	p := NewWeightedFair(nil)
	first := p.Next(q)
	if first == nil || first.Tenant != "a" {
		t.Fatalf("first dispatch = %+v, want tenant a", first)
	}
	// b arrives mid-flood.
	push(t, q, "b", 0, 6)
	push(t, q, "b", 0, 7)

	var order []string
	for it := p.Next(q); it != nil; it = p.Next(q) {
		order = append(order, it.Tenant)
	}
	// Both of b's jobs must dispatch within the next three slots: b joins
	// at the global virtual clock and alternates with a.
	bSeen := 0
	for i, tn := range order[:4] {
		if tn == "b" {
			bSeen++
		}
		_ = i
	}
	if bSeen != 2 {
		t.Fatalf("dispatch order after flood = %v: tenant b starved", order)
	}
}

// TestWeightedFairRespectsWeights: with a 3:1 weight ratio, the heavy
// tenant gets ~3 of every 4 dispatches.
func TestWeightedFairRespectsWeights(t *testing.T) {
	q := queue.New(queue.Config{})
	seq := 0
	for i := 0; i < 12; i++ {
		push(t, q, "heavy", 0, seq)
		seq++
	}
	for i := 0; i < 12; i++ {
		push(t, q, "light", 0, seq)
		seq++
	}
	p := NewWeightedFair(map[string]float64{"heavy": 3, "light": 1})
	heavyInFirst8 := 0
	for i := 0; i < 8; i++ {
		it := p.Next(q)
		if it == nil {
			t.Fatal("queue drained early")
		}
		if it.Tenant == "heavy" {
			heavyInFirst8++
		}
	}
	if heavyInFirst8 != 6 {
		t.Fatalf("heavy got %d of the first 8 dispatches, want 6 (3:1 weights)", heavyInFirst8)
	}
}

// TestWeightedFairIdleTenantNoRefund: a tenant idle through many
// dispatches rejoins at the current virtual clock rather than claiming
// every following slot.
func TestWeightedFairIdleTenantNoRefund(t *testing.T) {
	q := queue.New(queue.Config{})
	p := NewWeightedFair(nil)
	// b runs one job, then idles while a dispatches many.
	push(t, q, "b", 0, 0)
	if it := p.Next(q); it == nil || it.Tenant != "b" {
		t.Fatal("warmup dispatch")
	}
	seq := 1
	for i := 0; i < 10; i++ {
		push(t, q, "a", 0, seq)
		seq++
		if it := p.Next(q); it == nil || it.Tenant != "a" {
			t.Fatal("solo tenant not dispatched")
		}
	}
	// Now both have queued work; they must alternate, not b-b-b.
	for i := 0; i < 4; i++ {
		push(t, q, "a", 0, seq)
		seq++
		push(t, q, "b", 0, seq)
		seq++
	}
	counts := map[string]int{}
	for i := 0; i < 4; i++ {
		it := p.Next(q)
		if it == nil {
			t.Fatal("queue drained early")
		}
		counts[it.Tenant]++
	}
	if counts["b"] > 3 {
		t.Fatalf("idle-returning tenant took %d of 4 slots: idle refund", counts["b"])
	}
	if counts["a"] == 0 {
		t.Fatalf("dispatches = %v: tenant a starved", counts)
	}
}

// TestSchedulerBoundsConcurrency: TryStart stops at max and resumes
// after Finish.
func TestSchedulerBoundsConcurrency(t *testing.T) {
	q := queue.New(queue.Config{})
	for i := 0; i < 5; i++ {
		push(t, q, "a", 0, i)
	}
	p, _ := NewPolicy("priority", nil)
	s := New(p, 2)
	if s.TryStart(q) == nil || s.TryStart(q) == nil {
		t.Fatal("first two starts failed")
	}
	if s.TryStart(q) != nil {
		t.Fatal("third start exceeded max concurrency")
	}
	if s.Running() != 2 {
		t.Fatalf("running = %d, want 2", s.Running())
	}
	s.Finish()
	if s.TryStart(q) == nil {
		t.Fatal("start after finish failed")
	}
}

// TestNewPolicyUnknown rejects unknown policy names.
func TestNewPolicyUnknown(t *testing.T) {
	if _, err := NewPolicy("round-robin", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestWeightedFairChurnNoVtimeReset: when a replica dies and its jobs
// migrate to a survivor's scheduler, a tenant that had raced its
// virtual time ahead on the dead replica must not reset to the
// survivor's clock — that would refund it the idle credit the
// no-refund rule exists to deny. Adopt's monotone max-merge is what
// prevents it.
func TestWeightedFairChurnNoVtimeReset(t *testing.T) {
	// Replica 1: tenant "flood" burns through ten jobs, racing its
	// virtual time far ahead of tenant "calm", which runs one.
	q1 := queue.New(queue.Config{})
	p1 := NewWeightedFair(nil)
	seq := 0
	push(t, q1, "calm", 0, seq)
	seq++
	if it := p1.Next(q1); it == nil || it.Tenant != "calm" {
		t.Fatal("warmup dispatch")
	}
	for i := 0; i < 10; i++ {
		push(t, q1, "flood", 0, seq)
		seq++
		if it := p1.Next(q1); it == nil || it.Tenant != "flood" {
			t.Fatal("flood dispatch")
		}
	}
	st := p1.Snapshot()
	if st.VTime["flood"] <= st.VTime["calm"] {
		t.Fatalf("snapshot vtimes = %v: flood did not race ahead", st.VTime)
	}

	// Replica 2 is fresh (its clocks are at zero). Replica 1 dies; its
	// jobs and fair-share state migrate. Without Adopt the flooder is
	// an unseen tenant on replica 2: it would join at the fresh global
	// clock — a full reset of the debt it ran up — and win the first
	// slot on the sequence tiebreak. Demonstrate that bug first:
	fill := func(q *queue.Q) {
		for i := 0; i < 6; i++ {
			push(t, q, "flood", 0, seq)
			seq++
			push(t, q, "calm", 0, seq)
			seq++
		}
	}
	qFresh := queue.New(queue.Config{})
	fill(qFresh)
	fresh := NewWeightedFair(nil)
	if it := fresh.Next(qFresh); it == nil || it.Tenant != "flood" {
		t.Fatalf("fresh scheduler first dispatch = %+v; expected the reset bug (flood first)", it)
	}

	// With Adopt, the flooder carries its virtual time across: the calm
	// tenant gets the first slot back, and over the window the flooder
	// can never outrun it.
	p2 := NewWeightedFair(nil)
	p2.Adopt(st)
	if got := p2.Snapshot().VTime["flood"]; got != st.VTime["flood"] {
		t.Fatalf("flood vtime after adopt = %v, want %v (carried, not reset)", got, st.VTime["flood"])
	}
	q2 := queue.New(queue.Config{})
	fill(q2)
	first := p2.Next(q2)
	if first == nil || first.Tenant != "calm" {
		t.Fatalf("post-migration first dispatch = %+v, want calm (flood owes virtual time)", first)
	}
	counts := map[string]int{"calm": 1}
	for i := 0; i < 5; i++ {
		it := p2.Next(q2)
		if it == nil {
			t.Fatal("queue drained early")
		}
		counts[it.Tenant]++
	}
	if counts["flood"] > counts["calm"] {
		t.Fatalf("post-migration dispatches = %v: flooder reset its clock", counts)
	}
}

// TestWeightedFairAdoptMonotoneIdempotent: Adopt converges regardless
// of order or repetition — clocks only ever move forward.
func TestWeightedFairAdoptMonotoneIdempotent(t *testing.T) {
	a := FairState{Global: 5, VTime: map[string]float64{"x": 7, "y": 2}}
	b := FairState{Global: 3, VTime: map[string]float64{"x": 4, "z": 9}}

	p1 := NewWeightedFair(nil)
	p1.Adopt(a)
	p1.Adopt(b)
	p1.Adopt(b) // repeat must not move anything

	p2 := NewWeightedFair(nil)
	p2.Adopt(b)
	p2.Adopt(a)

	s1, s2 := p1.Snapshot(), p2.Snapshot()
	if s1.Global != s2.Global || s1.Global != 5 {
		t.Fatalf("globals diverged: %v vs %v", s1.Global, s2.Global)
	}
	want := map[string]float64{"x": 7, "y": 2, "z": 9}
	for tn, v := range want {
		if s1.VTime[tn] != v || s2.VTime[tn] != v {
			t.Fatalf("vtime[%s] = %v / %v, want %v", tn, s1.VTime[tn], s2.VTime[tn], v)
		}
	}
}
