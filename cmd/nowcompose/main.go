// Command nowcompose is a distributed-framebuffer compositor sink for a
// physical network of workstations. It listens for the master's control
// connection and for DFB-capable workers, reassembles its shard of the
// animation from key-frames and dirty-span deltas, confirms every
// merged region to the master, and (optionally) writes each completed
// frame to disk the moment it assembles — the master never touches the
// pixels.
//
//	nowcompose -listen :7947 -out frames/ -png
//	nowrender -mode master -dfb-sinks host1:7947,host2:7947 ...
//
// The daemon is persistent: a run ends with the master's close message
// (or its connection dropping), and the next master init starts a fresh
// shard, so one fleet of sinks serves any number of renders. SIGINT or
// SIGTERM shut it down.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"nowrender/internal/buildinfo"
	"nowrender/internal/compositor"
	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/tga"
	"nowrender/internal/timeline"
)

func main() {
	var (
		listen  = flag.String("listen", ":7947", "listen address for master and worker connections")
		name    = flag.String("name", "", "sink name in timelines and logs (default: the listen address)")
		outDir  = flag.String("out", "", "directory to write completed frames into (empty = hold in memory only)")
		usePNG  = flag.Bool("png", false, "write PNG instead of TGA")
		tlOut   = flag.String("timeline", "", "write the sink's assembly timeline as Chrome trace JSON to this file on exit")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// A stray positional arg silently stops flag parsing, so flags
		// after it would be ignored; fail loudly instead.
		fmt.Fprintf(os.Stderr, "nowcompose: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *version {
		fmt.Println("nowcompose", buildinfo.Version())
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *listen, *name, *outDir, *usePNG, *tlOut); err != nil {
		fmt.Fprintln(os.Stderr, "nowcompose:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, listen, name, outDir string, usePNG bool, tlOut string) error {
	l, err := msg.Listen(listen)
	if err != nil {
		return err
	}
	defer l.Close()
	if name == "" {
		name = l.Addr()
	}
	fmt.Printf("nowcompose %s (%s) listening on %s\n", name, buildinfo.Version(), l.Addr())

	var rec *timeline.Recorder
	if tlOut != "" {
		rec = timeline.New(0)
	}
	var delivered atomic.Uint64
	sink := compositor.New(compositor.Config{
		Name:     name,
		Timeline: rec,
		OnFrame: func(frame int, img *fb.Framebuffer) error {
			delivered.Add(1)
			if outDir == "" {
				return nil
			}
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			if usePNG {
				return tga.WriteFilePNG(filepath.Join(outDir, fmt.Sprintf("frame%04d.png", frame)), img)
			}
			return tga.WriteFile(filepath.Join(outDir, fmt.Sprintf("frame%04d.tga", frame)), img)
		},
	})
	defer sink.Close()

	// Accept until shutdown; the sink tells master and worker conns
	// apart by the first message each carries.
	acceptErr := make(chan error, 1)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			if err := sink.AddConn(conn); err != nil {
				conn.Close()
				acceptErr <- err
				return
			}
		}
	}()

	select {
	case <-ctx.Done():
		fmt.Printf("nowcompose %s: shutting down (%d frames delivered)\n", name, delivered.Load())
	case err := <-acceptErr:
		if !sink.Closed() {
			return err
		}
	}
	sink.Close()
	if ferr := sink.Err(); ferr != nil {
		return fmt.Errorf("frame emit: %w", ferr)
	}
	if tlOut != "" {
		tl := rec.Snapshot()
		tl.Meta["sink"] = name
		f, err := os.Create(tlOut)
		if err != nil {
			return err
		}
		if err := tl.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("nowcompose %s: timeline written to %s (%d events)\n", name, tlOut, tl.Events())
	}
	return nil
}
