package geom

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Plane is the infinite plane { p : p·Normal = Offset }, POV-Ray style.
type Plane struct {
	Normal vm.Vec3 // unit normal
	Offset float64 // signed distance of plane from origin along Normal
}

// NewPlane returns the plane with the given (not necessarily unit) normal
// and offset. The normal is normalised; offset is the distance from the
// origin along the unit normal, matching POV-Ray's plane syntax.
func NewPlane(normal vm.Vec3, offset float64) *Plane {
	return &Plane{Normal: normal.Norm(), Offset: offset}
}

// Intersect implements Shape.
func (p *Plane) Intersect(r vm.Ray, tMin, tMax float64) (Hit, bool) {
	denom := p.Normal.Dot(r.Dir)
	if math.Abs(denom) < vm.Eps {
		return Hit{}, false
	}
	t := (p.Offset - p.Normal.Dot(r.Origin)) / denom
	if t <= tMin || t >= tMax {
		return Hit{}, false
	}
	pt := r.At(t)
	normal, inside := faceForward(p.Normal, r.Dir)
	// Planar parameterisation: project onto the two tangent axes.
	onb := vm.NewONB(p.Normal)
	u := pt.Dot(onb.U)
	v := pt.Dot(onb.V)
	return Hit{T: t, Point: pt, Normal: normal, Inside: inside, U: u, V: v}, true
}

// Bounds implements Shape. Planes are unbounded; return a huge slab
// around the plane so grid clipping still works.
func (p *Plane) Bounds() vm.AABB {
	// A thin, huge box oriented to the dominant axis would miss slanted
	// planes, so just return the full huge cube.
	return vm.NewAABB(vm.Splat(-HugeExtent), vm.Splat(HugeExtent))
}
