package wire

import (
	"fmt"
	"time"

	"nowrender/internal/fb"
)

// Assembly tracks partially delivered frames over an absolute frame
// range [start, start+len(frames)). The farm master uses one for the
// legacy master-routed path; each compositor sink runs one over its
// frame shard; and under DFB the master keeps a pixel-free one (via
// DeliverMeta) purely for completion and requeue bookkeeping.
type Assembly struct {
	w, h    int
	start   int
	frames  []*fb.Framebuffer
	missing []int // pixels still undelivered per frame
	done    []time.Duration
	// seen records exactly which (frame, region) results have landed, so
	// speculative re-issue and post-failure retries can deliver the same
	// region twice: the duplicate is dropped instead of erroring. The
	// pixels are deterministic, so first-wins loses nothing.
	seen map[regionKey]bool
}

// regionKey identifies one delivered result.
type regionKey struct {
	frame int
	rect  fb.Rect
}

// NewAssembly tracks frames [0, frames).
func NewAssembly(w, h, frames int) *Assembly { return NewAssemblyRange(w, h, 0, frames) }

// NewAssemblyRange tracks absolute frames [start, end).
func NewAssemblyRange(w, h, start, end int) *Assembly {
	n := end - start
	a := &Assembly{
		w: w, h: h, start: start,
		frames:  make([]*fb.Framebuffer, n),
		missing: make([]int, n),
		done:    make([]time.Duration, n),
		seen:    make(map[regionKey]bool),
	}
	for i := range a.missing {
		a.missing[i] = w * h
	}
	return a
}

// Start returns the first absolute frame tracked.
func (a *Assembly) Start() int { return a.start }

// Len returns the number of frames tracked.
func (a *Assembly) Len() int { return len(a.frames) }

// Delivered reports whether this exact (frame, region) result already
// landed.
func (a *Assembly) Delivered(absFrame int, region fb.Rect) bool {
	return a.seen[regionKey{absFrame, region}]
}

// FrameComplete reports whether an absolute frame has fully assembled.
// Out-of-range frames report false.
func (a *Assembly) FrameComplete(absFrame int) bool {
	frame := absFrame - a.start
	return frame >= 0 && frame < len(a.missing) && a.missing[frame] == 0
}

// checkRegion validates the frame index and region geometry shared by
// every deliver variant.
func (a *Assembly) checkRegion(absFrame int, region fb.Rect) (frame int, err error) {
	frame = absFrame - a.start
	if frame < 0 || frame >= len(a.frames) {
		return 0, fmt.Errorf("wire: frame %d out of range", absFrame)
	}
	if region.X0 < 0 || region.Y0 < 0 || region.X1 > a.w || region.Y1 > a.h ||
		region.X0 >= region.X1 || region.Y0 >= region.Y1 {
		return 0, fmt.Errorf("wire: frame %d: region %v outside %dx%d", absFrame, region, a.w, a.h)
	}
	return frame, nil
}

// account marks (absFrame, region) delivered and returns whether that
// completed the frame at time t.
func (a *Assembly) account(frame, absFrame int, region fb.Rect, t time.Duration) (complete bool, err error) {
	a.seen[regionKey{absFrame, region}] = true
	a.missing[frame] -= region.Area()
	if a.missing[frame] < 0 {
		return false, fmt.Errorf("wire: frame %d over-delivered", frame)
	}
	if a.missing[frame] == 0 {
		if t > a.done[frame] {
			a.done[frame] = t
		}
		return true, nil
	}
	return false, nil
}

// Deliver merges region pixels (packed RGB rows of the region) into the
// absolute frame. It returns complete=true when the frame finished
// assembly at time t, and dup=true (with nothing merged) when this exact
// (frame, region) was already delivered by another worker.
func (a *Assembly) Deliver(absFrame int, region fb.Rect, pix []byte, t time.Duration) (complete, dup bool, err error) {
	frame, err := a.checkRegion(absFrame, region)
	if err != nil {
		return false, false, err
	}
	if len(pix) != region.Area()*3 {
		return false, false, fmt.Errorf("wire: frame %d region %v: got %d bytes, want %d",
			frame, region, len(pix), region.Area()*3)
	}
	if a.seen[regionKey{absFrame, region}] {
		return false, true, nil
	}
	if a.frames[frame] == nil {
		a.frames[frame] = fb.New(a.w, a.h)
	}
	img := a.frames[frame]
	i := 0
	for y := region.Y0; y < region.Y1; y++ {
		for x := region.X0; x < region.X1; x++ {
			img.SetRGB(x, y, pix[i], pix[i+1], pix[i+2])
			i += 3
		}
	}
	complete, err = a.account(frame, absFrame, region, t)
	return complete, false, err
}

// ErrDeltaBase marks a delta whose base result never landed: the
// previous frame's (frame, region) was lost in transit, so the delta
// cannot be applied. This is the one delivery failure that is NOT a
// protocol violation — the sender is honest, the network ate the base —
// so the receiver discards the delta (counting it) instead of retiring
// the worker, and the frame is re-rendered by the usual requeue path
// (or, at a compositor, a key-frame is re-requested).
var ErrDeltaBase = fmt.Errorf("wire: delta base frame not delivered")

// DeliverSpans merges a dirty-span delta into the absolute frame: the
// region is copied from the previous frame's assembled pixels, then the
// span pixels (packed RGB, span order) are applied on top. The previous
// frame's same (frame-1, region) result must have been delivered —
// otherwise ErrDeltaBase. Completion and duplicate semantics match
// Deliver.
func (a *Assembly) DeliverSpans(absFrame int, region fb.Rect, spans []fb.Span, pix []byte, t time.Duration) (complete, dup bool, err error) {
	frame, err := a.checkRegion(absFrame, region)
	if err != nil {
		return false, false, err
	}
	if len(pix) != fb.SpanArea(spans)*3 {
		return false, false, fmt.Errorf("wire: frame %d region %v: got %d span bytes, want %d",
			frame, region, len(pix), fb.SpanArea(spans)*3)
	}
	for _, s := range spans {
		if s.Y < region.Y0 || s.Y >= region.Y1 || s.X0 < region.X0 || s.X0 >= s.X1 || s.X1 > region.X1 {
			return false, false, fmt.Errorf("wire: frame %d: span y=%d [%d,%d) outside region %v",
				absFrame, s.Y, s.X0, s.X1, region)
		}
	}
	if a.seen[regionKey{absFrame, region}] {
		return false, true, nil
	}
	if frame == 0 || !a.seen[regionKey{absFrame - 1, region}] {
		return false, false, ErrDeltaBase
	}
	if a.frames[frame] == nil {
		a.frames[frame] = fb.New(a.w, a.h)
	}
	img := a.frames[frame]
	img.CopyRect(a.frames[frame-1], region)
	if err := img.ApplySpans(spans, pix); err != nil {
		return false, false, err
	}
	complete, err = a.account(frame, absFrame, region, t)
	return complete, false, err
}

// DeliverMeta records that (absFrame, region) was assembled elsewhere —
// a compositor sink confirmed delivery — without holding any pixels.
// The DFB master uses this so its completion, duplicate-drop, and
// requeue-gap bookkeeping work exactly as on the legacy path while the
// pixel payloads bypass it entirely.
func (a *Assembly) DeliverMeta(absFrame int, region fb.Rect, t time.Duration) (complete, dup bool, err error) {
	frame, err := a.checkRegion(absFrame, region)
	if err != nil {
		return false, false, err
	}
	if a.seen[regionKey{absFrame, region}] {
		return false, true, nil
	}
	complete, err = a.account(frame, absFrame, region, t)
	return complete, false, err
}

// ResetFrame forgets every delivery of an absolute frame — the sink
// that held its partial pixels died — so the regions can be requeued
// and re-delivered without tripping the duplicate drop. Out-of-range
// frames are ignored.
func (a *Assembly) ResetFrame(absFrame int) {
	frame := absFrame - a.start
	if frame < 0 || frame >= len(a.frames) {
		return
	}
	for k := range a.seen {
		if k.frame == absFrame {
			delete(a.seen, k)
		}
	}
	a.frames[frame] = nil
	a.missing[frame] = a.w * a.h
	a.done[frame] = 0
}

// Frame returns the (possibly partial) framebuffer of an absolute frame.
func (a *Assembly) Frame(absFrame int) *fb.Framebuffer {
	return a.frames[absFrame-a.start]
}

// Frames returns the assembled framebuffers, indexed by frame-start.
func (a *Assembly) Frames() []*fb.Framebuffer { return a.frames }

// Complete errors unless every frame has fully assembled.
func (a *Assembly) Complete() error {
	for f, m := range a.missing {
		if m != 0 {
			return fmt.Errorf("wire: frame %d missing %d pixels", f, m)
		}
	}
	return nil
}
