package trace

import (
	"math"

	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/scene"
	"nowrender/internal/stats"
	vm "nowrender/internal/vecmath"
)

// Worker holds the per-goroutine render scratch of one FrameTracer: the
// mailbox ray stamps, the ray counters and the observer hook. A Worker
// is single-owner — one goroutine renders with it — but any number of
// workers may render concurrently over the same (immutable) tracer.
// Workers come from FrameTracer.NewWorker; the tracer also embeds a
// default Worker for the classic single-goroutine API.
type Worker struct {
	ft       *FrameTracer
	observer RayObserver

	// ix, when non-nil, replaces the builtin grid intersector for every
	// nearest-hit query (see NewWorkerWith). The object-space cluster
	// plugs its shard router in here.
	ix Intersector

	// Mailboxing: avoid re-testing an object in multiple voxels along
	// one ray. Per worker, so concurrent rays never share stamps.
	rayStamp  uint64
	mailboxes []uint64

	// Counters tallies rays this worker casts. Single-owner scratch:
	// read it after rendering, or merge worker copies at a barrier (the
	// engine's tile pool and the farm both do the latter).
	Counters stats.RayCounters
}

// Tracer returns the shared frame view this worker renders.
func (w *Worker) Tracer() *FrameTracer { return w.ft }

// TracePixel computes the colour of pixel (px, py) in a width x height
// image. Deterministic per pixel: the same pixel produces the same
// colour regardless of which worker traces it or in what order — the
// foundation of the engine's thread-count-invariant output.
func (w *Worker) TracePixel(px, py, width, height int) vm.Vec3 {
	ft := w.ft
	if ft.aaThresh > 0 {
		return w.tracePixelAdaptive(px, py, width, height)
	}
	if ft.samples == 1 {
		return w.traceRay(ft.CameraRay(px, py, width, height, 0.5, 0.5))
	}
	// Deterministic per-pixel jitter so re-rendering a pixel in a later
	// frame (or on a different worker) reproduces the same sample
	// positions (a coherence correctness requirement).
	rng := vm.NewRNG(uint64(py)*1_000_003 + uint64(px)*7919 + 1)
	var sum vm.Vec3
	for s := 0; s < ft.samples; s++ {
		sum = sum.Add(w.traceRay(ft.CameraRay(px, py, width, height, rng.Float64(), rng.Float64())))
	}
	return sum.Scale(1 / float64(ft.samples))
}

// tracePixelAdaptive implements POV-style adaptive antialiasing: the
// pixel centre and four corners are sampled; if any pair contrasts by
// more than the threshold, extra jittered samples are blended in.
func (w *Worker) tracePixelAdaptive(px, py, width, height int) vm.Vec3 {
	ft := w.ft
	offsets := [5][2]float64{{0.5, 0.5}, {0.05, 0.05}, {0.95, 0.05}, {0.05, 0.95}, {0.95, 0.95}}
	var samples [5]vm.Vec3
	var sum vm.Vec3
	for i, o := range offsets {
		samples[i] = w.traceRay(ft.CameraRay(px, py, width, height, o[0], o[1]))
		sum = sum.Add(samples[i])
	}
	maxContrast := 0.0
	for i := 0; i < len(samples); i++ {
		for j := i + 1; j < len(samples); j++ {
			d := samples[i].Sub(samples[j])
			for _, c := range [3]float64{d.X, d.Y, d.Z} {
				if c < 0 {
					c = -c
				}
				if c > maxContrast {
					maxContrast = c
				}
			}
		}
	}
	n := len(offsets)
	if maxContrast > ft.aaThresh {
		rng := vm.NewRNG(uint64(py)*2_000_003 + uint64(px)*104729 + 7)
		for s := 0; s < ft.aaSamples; s++ {
			sum = sum.Add(w.traceRay(ft.CameraRay(px, py, width, height, rng.Float64(), rng.Float64())))
		}
		n += ft.aaSamples
	}
	return sum.Scale(1 / float64(n))
}

// RenderRegion renders rectangle region of a dst.W x dst.H frame into
// dst on this worker's goroutine.
func (w *Worker) RenderRegion(dst *fb.Framebuffer, region fb.Rect) {
	for y := region.Y0; y < region.Y1; y++ {
		for x := region.X0; x < region.X1; x++ {
			dst.Set(x, y, w.TracePixel(x, y, dst.W, dst.H))
		}
	}
}

// RenderFull renders the whole frame into dst.
func (w *Worker) RenderFull(dst *fb.Framebuffer) {
	w.RenderRegion(dst, dst.Bounds())
}

// traceRay casts r and returns the resulting radiance.
func (w *Worker) traceRay(r vm.Ray) vm.Vec3 {
	w.Counters.Add(r.Kind, 1)
	h, obj, ok := w.Intersect(r, vm.ShadowEps, math.Inf(1))
	if w.observer != nil {
		tHit := math.Inf(1)
		if ok {
			tHit = h.T
		}
		w.observer.ObserveRay(r, tHit)
	}
	if !ok {
		return w.ft.Scene.Background
	}
	return w.shade(r, h, obj)
}

// Intersect finds the nearest object hit along r in (tMin, tMax), using
// the shared voxel grid with this worker's mailboxes plus the unbounded
// list — or the worker's replacement intersector when one was installed
// with NewWorkerWith.
func (w *Worker) Intersect(r vm.Ray, tMin, tMax float64) (geom.Hit, *scene.ResolvedObject, bool) {
	if w.ix != nil {
		return w.ix.Intersect(r, tMin, tMax)
	}
	ft := w.ft
	w.rayStamp++
	stamp := w.rayStamp
	best := geom.Hit{T: tMax}
	var bestObj *scene.ResolvedObject
	found := false

	// Unbounded primitives are tested once per ray.
	for _, id := range ft.unbounded {
		ro := &ft.objs[id]
		if h, ok := ro.Shape.Intersect(r, tMin, best.T); ok {
			best, bestObj, found = h, ro, true
		}
	}

	ft.grid.Walk(r, tMin, tMax, func(idx int, tEnter, tLeave float64) bool {
		for _, id := range ft.grid.Items(idx) {
			if w.mailboxes[id] == stamp {
				continue
			}
			w.mailboxes[id] = stamp
			ro := &ft.objs[id]
			if h, ok := ro.Shape.Intersect(r, tMin, best.T); ok {
				best, bestObj, found = h, ro, true
			}
		}
		// Stop once the best hit lies inside the already-walked voxels:
		// later voxels can only produce farther hits.
		return !(found && best.T <= tLeave)
	})
	if !found {
		return geom.Hit{}, nil, false
	}
	return best, bestObj, true
}

// shade evaluates the Whitted shading model at a hit.
func (w *Worker) shade(r vm.Ray, h geom.Hit, obj *scene.ResolvedObject) vm.Vec3 {
	ft := w.ft
	mat := obj.Obj.Mat
	fin := mat.Finish
	base := mat.Pigment.ColorAt(h)

	// Ambient term.
	out := base.Mul(ft.Scene.Ambient).Scale(fin.Ambient)

	// Direct illumination with shadow rays.
	viewDir := r.Dir.Norm().Neg()
	for _, light := range ft.Scene.Lights {
		lp := light.PosAt(ft.Frame)
		toLight := lp.Sub(h.Point)
		dist := toLight.Len()
		if dist < vm.Eps {
			continue
		}
		ldir := toLight.Scale(1 / dist)
		ndotl := h.Normal.Dot(ldir)
		if ndotl <= 0 {
			continue
		}
		// Spotlight cone and distance fade scale the light before the
		// shadow test.
		lightFactor := light.Attenuation(lp, h.Point)
		if lightFactor <= 0 {
			continue
		}
		atten := w.shadowAttenuation(h.Point.Add(h.Normal.Scale(vm.ShadowEps)), lp, r.Depth)
		if atten == (vm.Vec3{}) {
			continue
		}
		atten = atten.Scale(lightFactor)
		contrib := vm.Vec3{}
		if fin.Diffuse > 0 {
			contrib = contrib.Add(base.Scale(fin.Diffuse * ndotl))
		}
		if fin.Specular > 0 {
			half := ldir.Add(viewDir).Norm()
			spec := math.Pow(math.Max(0, h.Normal.Dot(half)), fin.Shininess)
			contrib = contrib.Add(vm.Splat(fin.Specular * spec))
		}
		out = out.Add(contrib.Mul(light.Color).Mul(atten))
	}

	if r.Depth >= ft.maxDepth-1 {
		return out
	}

	// Global reflection: k_rg * I_reflected.
	if fin.Reflect > 0 {
		rd := r.Dir.Norm().Reflect(h.Normal)
		refl := w.traceRay(vm.Ray{
			Origin: h.Point.Add(h.Normal.Scale(vm.ShadowEps)),
			Dir:    rd,
			Kind:   vm.ReflectedRay,
			Depth:  r.Depth + 1,
		})
		out = out.Add(refl.Scale(fin.Reflect))
	}

	// Transmission: k_tg * I_transmitted.
	if fin.Transmit > 0 {
		eta := 1 / fin.IOR
		if h.Inside {
			eta = fin.IOR
		}
		if td, ok := r.Dir.Norm().Refract(h.Normal, eta); ok {
			tr := w.traceRay(vm.Ray{
				Origin: h.Point.Sub(h.Normal.Scale(vm.ShadowEps)),
				Dir:    td,
				Kind:   vm.RefractedRay,
				Depth:  r.Depth + 1,
			})
			out = out.Add(tr.Scale(fin.Transmit))
		} else {
			// Total internal reflection: the transmitted energy reflects
			// instead, as POV-Ray does.
			rd := r.Dir.Norm().Reflect(h.Normal)
			refl := w.traceRay(vm.Ray{
				Origin: h.Point.Add(h.Normal.Scale(vm.ShadowEps)),
				Dir:    rd,
				Kind:   vm.ReflectedRay,
				Depth:  r.Depth + 1,
			})
			out = out.Add(refl.Scale(fin.Transmit))
		}
	}
	return out
}

// shadowAttenuation casts a shadow ray from p to the light at lp and
// returns the fraction of light arriving: (1,1,1) for a clear path,
// (0,0,0) for a fully blocked one, and a filtered colour through
// transmissive objects (so the glass ball casts a light shadow).
func (w *Worker) shadowAttenuation(p, lp vm.Vec3, depth int) vm.Vec3 {
	dir := lp.Sub(p)
	dist := dir.Len()
	ray := vm.Ray{Origin: p, Dir: dir.Scale(1 / dist), Kind: vm.ShadowRay, Depth: depth}
	w.Counters.Add(vm.ShadowRay, 1)

	atten := vm.Splat(1)
	// March through successive hits between p and the light,
	// multiplying in transmission. Opaque hit -> zero.
	tMin := vm.ShadowEps
	for hop := 0; hop < 16; hop++ {
		h, obj, ok := w.Intersect(ray, tMin, dist-vm.ShadowEps)
		if !ok {
			break
		}
		fin := obj.Obj.Mat.Finish
		if fin.Transmit <= 0 {
			atten = vm.Vec3{}
			break
		}
		tint := obj.Obj.Mat.Pigment.ColorAt(h)
		atten = atten.Mul(tint.Scale(fin.Transmit))
		if atten.MaxComponent() < 1e-4 {
			atten = vm.Vec3{}
			break
		}
		tMin = h.T + vm.ShadowEps
	}
	if w.observer != nil {
		// Register the full segment to the light (conservative: a
		// blocker moving anywhere on the segment can change this pixel).
		w.observer.ObserveRay(ray, dist)
	}
	return atten
}
