package farm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"nowrender/internal/faulty"
	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/objspace"
	"nowrender/internal/partition"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
)

// patternFB fills a framebuffer with a deterministic pseudorandom
// pattern so payload comparisons are meaningful (an all-black buffer
// would let off-by-one span bugs slip through).
func patternFB(w, h int, seed int64) *fb.Framebuffer {
	img := fb.New(w, h)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(img.Pix)
	return img
}

func TestHelloCapsRoundTrip(t *testing.T) {
	for _, caps := range []int{0, capWireDelta, capWireCompress, wireCapsMask} {
		name, got := decodeHello(encodeHello("ws01", caps))
		if got != caps || name != "ws01" {
			t.Errorf("(%q, %#x) round-tripped to (%q, %#x)", "ws01", caps, name, got)
		}
	}
	// A legacy hello is the raw name with no seal: zero caps, no error.
	if _, got := decodeHello([]byte("old-worker")); got != 0 {
		t.Errorf("legacy hello yielded caps %#x", got)
	}
	if _, got := decodeHello(nil); got != 0 {
		t.Errorf("empty hello yielded caps %#x", got)
	}
	// Unknown bits are refused wholesale: the worker is treated as legacy
	// rather than granted half-understood modes.
	b := encodeHello("future", wireCapsMask|1<<7)
	if _, got := decodeHello(b); got != 0 {
		t.Errorf("unknown cap bits yielded %#x", got)
	}
}

func TestTaskWireFlagsRoundTrip(t *testing.T) {
	base := taskMsg{
		Task: partition.Task{ID: 5, Region: fb.NewRect(0, 0, 16, 16), StartFrame: 2, EndFrame: 9},
		W:    16, H: 16, Coherence: true, Samples: 1, Threads: 2,
	}
	for _, flags := range []int{0, capWireDelta, capWireCompress, wireCapsMask} {
		tm := base
		tm.WireFlags = flags
		if flags&capWireDFB != 0 {
			// A DFB grant must carry the compositor topology.
			tm.JobStart, tm.JobEnd = 0, 16
			tm.Sinks = []string{"sink0", "127.0.0.1:7001"}
		}
		if flags&capWireObjSpace != 0 {
			// An object-space grant must carry the shard count.
			tm.OSShards = 4
		}
		got, err := decodeTask(encodeTask(tm))
		if err != nil {
			t.Fatalf("flags %#x: %v", flags, err)
		}
		if got.WireFlags != flags {
			t.Errorf("flags %#x round-tripped to %#x", flags, got.WireFlags)
		}
		if !reflect.DeepEqual(got.Sinks, tm.Sinks) || got.JobStart != tm.JobStart || got.JobEnd != tm.JobEnd {
			t.Errorf("flags %#x: DFB fields round-tripped to %v [%d,%d)", flags, got.Sinks, got.JobStart, got.JobEnd)
		}
		if got.OSShards != tm.OSShards {
			t.Errorf("flags %#x: shard count round-tripped to %d", flags, got.OSShards)
		}
	}
	bad := base
	bad.WireFlags = 1 << 9
	if _, err := decodeTask(encodeTask(bad)); err == nil {
		t.Error("unknown wire flags decoded successfully")
	}
	// A DFB grant without sinks, or with a job range that does not
	// contain the task range, is rejected.
	bad = base
	bad.WireFlags = capWireDFB
	if _, err := decodeTask(encodeTask(bad)); err == nil {
		t.Error("DFB grant without sinks decoded successfully")
	}
	bad.JobStart, bad.JobEnd = 4, 16
	bad.Sinks = []string{"sink0"}
	if _, err := decodeTask(encodeTask(bad)); err == nil {
		t.Error("DFB job range not containing task range decoded successfully")
	}
	// An object-space grant without a sane shard count is rejected.
	bad = base
	bad.WireFlags = capWireObjSpace
	if _, err := decodeTask(encodeTask(bad)); err == nil {
		t.Error("object-space grant without shard count decoded successfully")
	}
	bad.OSShards = objspace.MaxShards + 1
	if _, err := decodeTask(encodeTask(bad)); err == nil {
		t.Error("oversized object-space shard count decoded successfully")
	}
}

func TestFrameAckRoundTrip(t *testing.T) {
	a := frameAckMsg{
		TaskID: 7, Frame: 12, Region: fb.NewRect(0, 8, 16, 16),
		Kind: frameDelta, Sink: 1, SinkBytes: 4096,
		Rendered: 100, Copied: 156, Regs: 31, ElapsedNs: 99_000,
	}
	a.Rays.ByKind[0] = 1234
	got, err := decodeFrameAck(encodeFrameAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("ack round trip: %+v != %+v", got, a)
	}
	// With the timeline piggyback.
	a.TLNow = 5_000_000
	a.TLTracks = []string{"w/main", "w/tile0"}
	a.TLEvents = []wireEvent{{Track: 1, Ev: timeline.Event{Op: timeline.OpFrame, Frame: 12, Start: 10, Dur: 20}}}
	got, err = decodeFrameAck(encodeFrameAck(a))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Errorf("ack+timeline round trip: %+v != %+v", got, a)
	}
	if _, err := decodeFrameAck([]byte("garbage")); err == nil {
		t.Error("garbage ack decoded successfully")
	}
}

// TestFrameDoneRoundTrip is the property test for the frame codec:
// every span shape that matters — empty delta, single pixel, full
// region, many random runs — crossed with raw and flate encodings must
// decode to the bytes that went in.
func TestFrameDoneRoundTrip(t *testing.T) {
	const w, h = 24, 16
	region := fb.NewRect(2, 1, 22, 15)
	src := patternFB(w, h, 42)
	rng := rand.New(rand.NewSource(99))
	randomSpans := func() []fb.Span {
		var out []fb.Span
		for y := region.Y0; y < region.Y1; y++ {
			x := region.X0
			for x < region.X1 && rng.Intn(3) > 0 {
				x0 := x + rng.Intn(region.X1-x)
				x1 := x0 + 1 + rng.Intn(region.X1-x0)
				out = append(out, fb.Span{Y: y, X0: x0, X1: x1})
				x = x1 + 1
			}
		}
		return out
	}
	fullRegion := []fb.Span{}
	for y := region.Y0; y < region.Y1; y++ {
		fullRegion = append(fullRegion, fb.Span{Y: y, X0: region.X0, X1: region.X1})
	}

	cases := []struct {
		name  string
		kind  int
		spans []fb.Span
	}{
		{"full", frameFull, nil},
		{"delta-empty", frameDelta, []fb.Span{}},
		{"delta-one-pixel", frameDelta, []fb.Span{{Y: 3, X0: 7, X1: 8}}},
		{"delta-full-region", frameDelta, fullRegion},
		{"delta-random", frameDelta, randomSpans()},
	}
	for _, tc := range cases {
		for _, enc := range []int{encRaw, encFlate} {
			name := fmt.Sprintf("%s/enc=%d", tc.name, enc)
			var pix []byte
			if tc.kind == frameDelta {
				pix = src.AppendSpans(nil, tc.spans)
			} else {
				pix = extractRegion(src, region)
			}
			m := frameDoneMsg{
				TaskID: 9, Frame: 4, Region: region,
				Kind: tc.kind, Spans: tc.spans,
				Rendered: 11, Copied: 5, Regs: 3,
				Rays:      stats.RayCounters{},
				ElapsedNs: 777,
			}
			if enc == encFlate {
				z, err := msg.Deflate(nil, pix)
				if err != nil {
					t.Fatalf("%s: deflate: %v", name, err)
				}
				m.Encoding, m.Pix = encFlate, z
			} else {
				m.Encoding, m.Pix = encRaw, pix
			}
			got, err := decodeFrameDone(encodeFrameDone(m))
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if got.Kind != tc.kind || got.Encoding != enc {
				t.Errorf("%s: kind/enc %d/%d, want %d/%d", name, got.Kind, got.Encoding, tc.kind, enc)
			}
			if !bytes.Equal(got.Pix, pix) {
				t.Errorf("%s: pixel payload mismatch", name)
			}
			if len(got.Spans) != len(tc.spans) {
				t.Fatalf("%s: %d spans, want %d", name, len(got.Spans), len(tc.spans))
			}
			for i := range tc.spans {
				if got.Spans[i] != tc.spans[i] {
					t.Errorf("%s: span %d = %v, want %v", name, i, got.Spans[i], tc.spans[i])
				}
			}
			if got.TaskID != 9 || got.Frame != 4 || got.Rendered != 11 || got.ElapsedNs != 777 {
				t.Errorf("%s: stats fields corrupted: %+v", name, got)
			}
			got.Release()
		}
	}
}

// TestFrameEncoderDecision pins the encoder's choice logic: key-frames
// stay full, small deltas win, big deltas fall back to a full frame, and
// compression is kept only when it actually shrinks the payload.
func TestFrameEncoderDecision(t *testing.T) {
	const w, h = 32, 32
	region := fb.NewRect(0, 0, w, h)
	src := patternFB(w, h, 7)
	var enc frameEncoder

	small := []fb.Span{{Y: 4, X0: 2, X1: 10}}
	var big []fb.Span
	for y := 0; y < h; y++ {
		big = append(big, fb.Span{Y: y, X0: 0, X1: w - 1})
	}

	cases := []struct {
		name     string
		flags    int
		spans    []fb.Span
		first    bool
		wantKind int
	}{
		{"first-frame-always-full", capWireDelta, small, true, frameFull},
		{"no-grant-full", 0, small, false, frameFull},
		{"plain-path-full", capWireDelta, nil, false, frameFull},
		{"small-delta", capWireDelta, small, false, frameDelta},
		{"size-guard-fallback", capWireDelta, big, false, frameFull},
	}
	for _, tc := range cases {
		fd := frameDoneMsg{TaskID: 1, Frame: 3, Region: region}
		data := enc.Encode(&fd, src, tc.flags, tc.spans, tc.first)
		got, err := decodeFrameDone(data)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got.Kind != tc.wantKind {
			t.Errorf("%s: kind %d, want %d", tc.name, got.Kind, tc.wantKind)
		}
		got.Release()
	}

	// Incompressible random pixels: flate output is larger, so the
	// encoder must keep the raw payload.
	fd := frameDoneMsg{TaskID: 1, Frame: 0, Region: region}
	got, err := decodeFrameDone(enc.Encode(&fd, src, capWireCompress, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != encRaw {
		t.Errorf("incompressible payload was shipped as encoding %d", got.Encoding)
	}
	got.Release()

	// Compressible pixels (constant colour) must use flate when granted.
	flat := fb.New(w, h)
	fd = frameDoneMsg{TaskID: 1, Frame: 0, Region: region}
	got, err = decodeFrameDone(enc.Encode(&fd, flat, capWireCompress, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	if got.Encoding != encFlate {
		t.Errorf("compressible payload stayed raw")
	}
	if !bytes.Equal(got.Pix, extractRegion(flat, region)) {
		t.Error("flate round-trip corrupted pixels")
	}
	got.Release()
}

// TestFrameEncoderLegacyBytes: with no capabilities granted the encoder
// must produce byte-for-byte the legacy frameDone encoding, so a new
// worker talking to an old master is indistinguishable from an old one.
func TestFrameEncoderLegacyBytes(t *testing.T) {
	const w, h = 16, 12
	region := fb.NewRect(1, 1, 15, 11)
	src := patternFB(w, h, 3)
	fd := frameDoneMsg{
		TaskID: 2, Frame: 5, Region: region,
		Rendered: 4, Copied: 1, Regs: 2, ElapsedNs: 99,
	}
	var enc frameEncoder
	got := enc.Encode(&fd, src, 0, []fb.Span{{Y: 2, X0: 2, X1: 5}}, false)

	legacy := fd
	legacy.Kind, legacy.Encoding, legacy.Spans = frameFull, encRaw, nil
	legacy.Pix = extractRegion(src, region)
	want := encodeFrameDone(legacy)
	if !bytes.Equal(got, want) {
		t.Error("zero-capability encode differs from the legacy wire bytes")
	}
}

func TestValidateSpansRejects(t *testing.T) {
	region := fb.NewRect(2, 2, 10, 10)
	bad := [][]fb.Span{
		{{Y: 1, X0: 2, X1: 4}},                       // row above region
		{{Y: 10, X0: 2, X1: 4}},                      // row below region
		{{Y: 3, X0: 1, X1: 4}},                       // left of region
		{{Y: 3, X0: 8, X1: 11}},                      // right of region
		{{Y: 3, X0: 5, X1: 5}},                       // empty span
		{{Y: 3, X0: 6, X1: 8}, {Y: 3, X0: 2, X1: 4}}, // out of order in row
		{{Y: 5, X0: 2, X1: 4}, {Y: 3, X0: 2, X1: 4}}, // rows descending
		{{Y: 3, X0: 2, X1: 6}, {Y: 3, X0: 5, X1: 8}}, // overlap
	}
	for i, spans := range bad {
		if err := validateSpans(spans, region); err == nil {
			t.Errorf("case %d: spans %v accepted", i, spans)
		}
	}
	good := []fb.Span{{Y: 3, X0: 2, X1: 4}, {Y: 3, X0: 4, X1: 6}, {Y: 4, X0: 9, X1: 10}}
	if err := validateSpans(good, region); err != nil {
		t.Errorf("valid spans rejected: %v", err)
	}
}

// TestDeliverSpans exercises the master-side delta merge directly:
// apply-on-base correctness, the base-missing discard, duplicate
// detection, and payload length checking.
func TestDeliverSpans(t *testing.T) {
	const w, h = 12, 8
	region := fb.NewRect(0, 0, w, h)
	base := patternFB(w, h, 1)
	next := patternFB(w, h, 2)
	spans := []fb.Span{{Y: 1, X0: 2, X1: 7}, {Y: 5, X0: 0, X1: 12}}
	pix := next.AppendSpans(nil, spans)

	asm := newAssembly(w, h, 3)
	if _, _, err := asm.Deliver(0, region, extractRegion(base, region), 0); err != nil {
		t.Fatal(err)
	}
	complete, dup, err := asm.DeliverSpans(1, region, spans, pix, time.Millisecond)
	if err != nil || dup || !complete {
		t.Fatalf("deliverSpans: complete=%v dup=%v err=%v", complete, dup, err)
	}
	want := fb.New(w, h)
	want.CopyRect(base, region)
	if err := want.ApplySpans(spans, pix); err != nil {
		t.Fatal(err)
	}
	if !asm.Frame(1).Equal(want) {
		t.Error("delta-applied frame differs from CopyRect+ApplySpans reference")
	}

	// Duplicate: second delivery of the same (frame, region) is dropped.
	if _, dup, err := asm.DeliverSpans(1, region, spans, pix, 0); err != nil || !dup {
		t.Errorf("duplicate delta: dup=%v err=%v", dup, err)
	}

	// Base missing: frame 2's predecessor region never landed... frame 1
	// did, so frame 2 works; frame 0 has no predecessor at all.
	asm2 := newAssembly(w, h, 3)
	if _, _, err := asm2.DeliverSpans(0, region, spans, pix, 0); !errors.Is(err, errDeltaBase) {
		t.Errorf("delta for frame 0 gave %v, want errDeltaBase", err)
	}
	if _, _, err := asm2.DeliverSpans(2, region, spans, pix, 0); !errors.Is(err, errDeltaBase) {
		t.Errorf("delta without base gave %v, want errDeltaBase", err)
	}

	// Wrong payload length is a protocol violation, not a base miss.
	if _, _, err := asm.DeliverSpans(2, region, spans, pix[:len(pix)-3], 0); err == nil || errors.Is(err, errDeltaBase) {
		t.Errorf("short payload gave %v", err)
	}
}

// TestWireGolden locks the tentpole invariant: every (delta, compress)
// combination produces byte-identical frames, matching the committed
// golden hashes, on both the local and virtual drivers — and the modes
// actually engage (delta frames counted when granted).
func TestWireGolden(t *testing.T) {
	sc := farmScene(goldenFrames)
	want := readGolden(t)
	scheme := partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true}

	for _, delta := range []bool{false, true} {
		for _, compress := range []bool{false, true} {
			label := fmt.Sprintf("local/delta=%v,compress=%v", delta, compress)
			res, err := RenderLocal(Config{
				Scene: sc, W: fw, H: fh, Coherence: true, Workers: 3,
				Scheme: scheme, WireDelta: delta, WireCompress: compress,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for i, hsh := range hashFrames(res.Frames) {
				if hsh != want[i] {
					t.Errorf("%s: frame %d hash mismatch", label, i)
				}
			}
			if delta && res.Wire.FramesDelta == 0 {
				t.Errorf("%s: no delta frames were shipped", label)
			}
			if compress && res.Wire.FramesCompressed == 0 {
				t.Errorf("%s: no compressed frames were shipped", label)
			}
			if delta || compress {
				if res.Wire.WireBytes == 0 || res.Wire.RawBytes == 0 {
					t.Errorf("%s: wire counters empty: %s", label, res.Wire)
				}
				if res.Wire.WireBytes >= res.Wire.RawBytes {
					t.Logf("%s: note: wire bytes %d >= raw %d (tiny scene)", label, res.Wire.WireBytes, res.Wire.RawBytes)
				}
			}
		}
	}

	// Virtual driver with wire modes on: same pixels, and the modelled
	// traffic reflects the real codec.
	res, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		Scheme: scheme, WireDelta: true, WireCompress: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, hsh := range hashFrames(res.Frames) {
		if hsh != want[i] {
			t.Errorf("virtual wire: frame %d hash mismatch", i)
		}
	}
	if res.Wire.FramesDelta == 0 {
		t.Error("virtual wire: no delta frames modelled")
	}
}

// TestWireLegacyInterop drives a mixed farm: one worker refuses the new
// capabilities (an "old" binary) while the master asks for both. The
// run must still complete with golden-identical pixels, the legacy
// worker shipping plain full frames.
func TestWireLegacyInterop(t *testing.T) {
	sc := farmScene(goldenFrames)
	want := readGolden(t)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 3,
		Scheme:       partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		WireDelta:    true,
		WireCompress: true,
		WorkerOpts: func(i int) WorkerOptions {
			if i == 0 {
				return WorkerOptions{NoWireDelta: true, NoWireCompress: true}
			}
			return WorkerOptions{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, hsh := range hashFrames(res.Frames) {
		if hsh != want[i] {
			t.Errorf("mixed farm: frame %d hash mismatch", i)
		}
	}
	if res.Wire.FramesFull == 0 {
		t.Error("mixed farm: legacy worker shipped no full frames")
	}
}

// TestChaosSoakWire is the chaos soak with the new data path fully on:
// drops, corruption and truncation against delta+flate frames must
// still converge to byte-identical output, with retried tasks reseeded
// by their key-frames.
func TestChaosSoakWire(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	sc := farmScene(8)
	want := referenceFrames(t, sc)
	spec := "seed=23,drop=0.03,corrupt=0.02,truncate=0.02,delay=0.05:2ms,sever=0.005,protect=worker00"
	plan, err := faulty.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 4,
		Scheme:       partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
		Heartbeat:    20 * time.Millisecond,
		Liveness:     2 * time.Second,
		StallTimeout: 1500 * time.Millisecond,
		FrameRetries: 2,
		Speculate:    true,
		WrapConn:     plan.Wrap,
		WireDelta:    true,
		WireCompress: true,
	})
	if err != nil {
		t.Fatalf("wire chaos run failed: %v", err)
	}
	assertFramesEqual(t, "wire-chaos", res.Frames, want)
	inj := plan.Snapshot()
	if inj.Dropped+inj.Corrupted+inj.Truncated+inj.Delayed+inj.Severed == 0 {
		t.Error("fault plan injected nothing; the soak was vacuous")
	}
	t.Logf("injected %+v; wire %s; faults %s", inj, res.Wire, res.Faults.String())
}

// FuzzDeltaDecode aims the fuzzer at the delta decoder specifically:
// seeds cover every kind/encoding combination, and the property is the
// usual one — arbitrary bytes never panic, and anything that decodes
// passed every structural validation.
func FuzzDeltaDecode(f *testing.F) {
	src := patternFB(16, 16, 5)
	region := fb.NewRect(0, 0, 16, 16)
	spans := []fb.Span{{Y: 2, X0: 1, X1: 6}, {Y: 9, X0: 0, X1: 16}}
	var enc frameEncoder

	fd := frameDoneMsg{TaskID: 1, Frame: 1, Region: region}
	f.Add(enc.Encode(&fd, src, capWireDelta, spans, false))
	fd = frameDoneMsg{TaskID: 1, Frame: 1, Region: region}
	f.Add(enc.Encode(&fd, src, capWireDelta|capWireCompress, spans, false))
	fd = frameDoneMsg{TaskID: 1, Frame: 0, Region: region}
	f.Add(enc.Encode(&fd, src, capWireCompress, nil, true))
	fd = frameDoneMsg{TaskID: 1, Frame: 0, Region: region}
	full := enc.Encode(&fd, src, 0, nil, true)
	f.Add(full)
	f.Add(full[:len(full)-7])

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeFrameDone(data)
		if err != nil {
			return
		}
		defer m.Release()
		if m.Kind == frameDelta {
			if err := validateSpans(m.Spans, m.Region); err != nil {
				t.Fatalf("decode accepted invalid spans: %v", err)
			}
			if len(m.Pix) != fb.SpanArea(m.Spans)*3 {
				t.Fatalf("delta payload %d bytes for %d span pixels", len(m.Pix), fb.SpanArea(m.Spans))
			}
		} else if len(m.Pix) != m.Region.Area()*3 {
			t.Fatalf("full payload %d bytes for region %v", len(m.Pix), m.Region)
		}
		// The decoded message must be applicable: a framebuffer the size
		// of the region absorbs it without error.
		img := fb.New(m.Region.X1, m.Region.Y1)
		if m.Kind == frameDelta {
			if err := img.ApplySpans(m.Spans, m.Pix); err != nil {
				t.Fatalf("validated delta failed to apply: %v", err)
			}
		}
	})
}

// TestWireCapBitsPinned pins the wire capability bit assignments and the
// WorkerOptions withholding map. These values are protocol: a renumbered
// bit would make a new worker advertise capabilities an old master reads
// as something else entirely, so any change here must fail loudly.
func TestWireCapBitsPinned(t *testing.T) {
	pinned := []struct {
		name string
		got  int
		want int
	}{
		{"delta", capWireDelta, 1 << 0},
		{"compress", capWireCompress, 1 << 1},
		{"timeline", capWireTimeline, 1 << 2},
		{"dfb", capWireDFB, 1 << 3},
		{"span-codec", capWireSpanCodec, 1 << 4},
		{"objspace", capWireObjSpace, 1 << 5},
	}
	mask := 0
	for _, c := range pinned {
		if c.got != c.want {
			t.Errorf("cap %s = %#x, want %#x", c.name, c.got, c.want)
		}
		mask |= c.want
	}
	if wireCapsMask != mask {
		t.Errorf("caps mask %#x, want %#x", wireCapsMask, mask)
	}
	opts := []struct {
		name string
		o    WorkerOptions
		want int
	}{
		{"default-all", WorkerOptions{}, wireCapsMask},
		{"no-delta", WorkerOptions{NoWireDelta: true}, wireCapsMask &^ capWireDelta},
		{"no-compress", WorkerOptions{NoWireCompress: true}, wireCapsMask &^ capWireCompress},
		{"no-span", WorkerOptions{NoWireSpanCodec: true}, wireCapsMask &^ capWireSpanCodec},
		{"no-objspace", WorkerOptions{NoWireObjSpace: true}, wireCapsMask &^ capWireObjSpace},
		{"flate-only-codec", WorkerOptions{NoWireSpanCodec: true, NoWireDFB: true},
			capWireDelta | capWireCompress | capWireTimeline | capWireObjSpace},
		{"span-only-codec", WorkerOptions{NoWireCompress: true, NoWireDFB: true},
			capWireDelta | capWireTimeline | capWireSpanCodec | capWireObjSpace},
	}
	for _, c := range opts {
		if got := c.o.caps(); got != c.want {
			t.Errorf("caps(%s) = %#x, want %#x", c.name, got, c.want)
		}
	}
}

// TestFrameEncoderSpanCodec exercises the span-codec payload path in the
// production encoder on both frame kinds: a key-frame (which ships the
// vertically filtered residual) and a dirty-span delta, each decoded back
// to byte-identical pixels by the production decoder.
func TestFrameEncoderSpanCodec(t *testing.T) {
	const w, h = 48, 40
	region := fb.NewRect(0, 0, w, h)
	// Vertically coherent gradient: compressible by the span codec, and
	// exactly the content the key-frame filter is for.
	src := fb.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w*3; x++ {
			src.Pix[y*w*3+x] = byte(x + y*2)
		}
	}
	var enc frameEncoder
	enc.Deterministic = true

	fd := frameDoneMsg{TaskID: 1, Frame: 0, Region: region}
	got, err := decodeFrameDone(enc.Encode(&fd, src, capWireDelta|capWireSpanCodec, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != frameFull {
		t.Fatalf("key frame kind %d, want full", got.Kind)
	}
	if got.Encoding != encSpan {
		t.Fatalf("key frame encoding %d, want span", got.Encoding)
	}
	if !bytes.Equal(got.Pix, src.Pix) {
		t.Fatal("span key frame did not restore byte-identical pixels")
	}
	got.Release()

	// Delta frame: a band of full-width dirty rows, span-coded, applied
	// over the previous frame.
	var spans []fb.Span
	for y := 8; y < 24; y++ {
		spans = append(spans, fb.Span{Y: y, X0: 0, X1: w - 1})
	}
	fd = frameDoneMsg{TaskID: 1, Frame: 1, Region: region}
	got, err = decodeFrameDone(enc.Encode(&fd, src, capWireDelta|capWireSpanCodec, spans, false))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != frameDelta {
		t.Fatalf("delta frame kind %d, want delta", got.Kind)
	}
	if got.Encoding != encSpan {
		t.Fatalf("delta frame encoding %d, want span", got.Encoding)
	}
	cur := fb.New(w, h)
	copy(cur.Pix, src.Pix)
	if err := cur.ApplySpans(got.Spans, got.Pix); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur.Pix, src.Pix) {
		t.Fatal("span delta did not restore byte-identical pixels")
	}
	got.Release()
}

// TestWireMixedFleetCodecs drives one master over a fleet whose workers
// advertise disjoint codec capabilities — one legacy flate-era worker,
// one flate-only, one span-only — against the committed golden hashes.
// The negotiation must confine each codec to the workers that advertise
// it while the assembled animation stays byte-identical.
func TestWireMixedFleetCodecs(t *testing.T) {
	sc := farmScene(goldenFrames)
	want := readGolden(t)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 3,
		Scheme:        partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		WireDelta:     true,
		WireCompress:  true,
		WireSpanCodec: true,
		WorkerOpts: func(i int) WorkerOptions {
			switch i {
			case 0: // compression-era holdout: deltas, but raw payloads only
				return WorkerOptions{NoWireCompress: true, NoWireSpanCodec: true}
			case 1: // flate-only worker (pre-span-codec binary)
				return WorkerOptions{NoWireSpanCodec: true}
			default: // span-only worker
				return WorkerOptions{NoWireCompress: true}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, hsh := range hashFrames(res.Frames) {
		if hsh != want[i] {
			t.Errorf("mixed codec farm: frame %d hash mismatch", i)
		}
	}
	if res.Wire.FramesDelta == 0 {
		t.Error("mixed codec farm shipped no delta frames")
	}
	if res.Wire.FramesCompressed == 0 {
		t.Error("flate-only worker shipped no flate payloads")
	}
	if res.Wire.FramesSpan == 0 {
		t.Error("span-only worker shipped no span payloads")
	}
}
