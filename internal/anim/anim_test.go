package anim

import (
	"testing"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

func baseScene(frames int) *scene.Scene {
	s := scene.New("a")
	s.Frames = frames
	s.Add("ball", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.Red), nil)
	return s
}

func TestStaticCameraSingleSequence(t *testing.T) {
	s := baseScene(45)
	seqs := SplitSequences(s)
	if len(seqs) != 1 {
		t.Fatalf("%d sequences, want 1", len(seqs))
	}
	if seqs[0].Start != 0 || seqs[0].End != 45 {
		t.Errorf("sequence = %v", seqs[0])
	}
	if err := Validate(seqs, 45); err != nil {
		t.Error(err)
	}
}

func TestCameraCutSplits(t *testing.T) {
	s := baseScene(30)
	// Cut at frame 10 and 20.
	s.CamTrack = scene.CameraFunc(func(f int) scene.Camera {
		c := scene.DefaultCamera()
		switch {
		case f < 10:
			c.Pos = vm.V(0, 0, 5)
		case f < 20:
			c.Pos = vm.V(5, 0, 5)
		default:
			c.Pos = vm.V(0, 5, 5)
		}
		return c
	})
	seqs := SplitSequences(s)
	if len(seqs) != 3 {
		t.Fatalf("%d sequences, want 3: %v", len(seqs), seqs)
	}
	wantBounds := [][2]int{{0, 10}, {10, 20}, {20, 30}}
	for i, w := range wantBounds {
		if seqs[i].Start != w[0] || seqs[i].End != w[1] {
			t.Errorf("seq %d = %v, want [%d,%d)", i, seqs[i], w[0], w[1])
		}
	}
	if err := Validate(seqs, 30); err != nil {
		t.Error(err)
	}
}

func TestContinuouslyMovingCamera(t *testing.T) {
	s := baseScene(5)
	s.CamTrack = scene.CameraFunc(func(f int) scene.Camera {
		c := scene.DefaultCamera()
		c.Pos = vm.V(float64(f), 0, 5)
		return c
	})
	seqs := SplitSequences(s)
	if len(seqs) != 5 {
		t.Fatalf("%d sequences, want 5 (one per frame)", len(seqs))
	}
	for i, sq := range seqs {
		if sq.Frames() != 1 || sq.Start != i {
			t.Errorf("seq %d = %v", i, sq)
		}
	}
	if err := Validate(seqs, 5); err != nil {
		t.Error(err)
	}
}

func TestZeroFrames(t *testing.T) {
	s := baseScene(0)
	if got := SplitSequences(s); got != nil {
		t.Errorf("sequences for 0 frames: %v", got)
	}
	if err := Validate(nil, 0); err != nil {
		t.Error(err)
	}
	if err := Validate(nil, 5); err == nil {
		t.Error("missing sequences accepted")
	}
}

func TestValidateCatchesGapsAndBounds(t *testing.T) {
	cases := []struct {
		seqs []Sequence
		n    int
	}{
		{[]Sequence{{Start: 1, End: 5}}, 5},                     // late start
		{[]Sequence{{Start: 0, End: 2}, {Start: 3, End: 5}}, 5}, // gap
		{[]Sequence{{Start: 0, End: 4}}, 5},                     // short end
	}
	for i, c := range cases {
		if err := Validate(c.seqs, c.n); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSequenceFrames(t *testing.T) {
	sq := Sequence{Start: 3, End: 10}
	if sq.Frames() != 7 {
		t.Errorf("Frames = %d", sq.Frames())
	}
	if sq.String() == "" {
		t.Error("empty String")
	}
}
