// Package msg is the message-passing substrate standing in for PVM in
// the paper's master/slave render farm. It provides PVM-style typed
// pack/unpack buffers (pvm_pkint/pvm_upkint and friends), a Conn
// abstraction with two interchangeable transports — in-process channels
// for the virtual NOW and real TCP for a physical one — and a Hub that
// multiplexes a master's connections to its slaves.
//
// As in the paper, communication is strictly master<->slave: slaves never
// talk to each other.
package msg

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is a typed serialisation buffer. Packing appends; unpacking
// consumes from the front. Errors are sticky: after the first failed
// unpack all further unpacks return zero values and Err reports the
// failure (mirroring how PVM programs check once after unpacking).
type Buffer struct {
	data []byte
	pos  int
	err  error
}

// NewBuffer returns an empty buffer ready for packing.
func NewBuffer() *Buffer { return &Buffer{} }

// FromBytes returns a buffer that unpacks from data.
func FromBytes(data []byte) *Buffer { return &Buffer{data: data} }

// Bytes returns the packed contents.
func (b *Buffer) Bytes() []byte { return b.data }

// Err returns the first unpack error, if any.
func (b *Buffer) Err() error { return b.err }

// Len returns the number of unconsumed bytes.
func (b *Buffer) Len() int { return len(b.data) - b.pos }

func (b *Buffer) fail(op string) {
	if b.err == nil {
		b.err = fmt.Errorf("msg: %s past end of buffer (pos %d, len %d)", op, b.pos, len(b.data))
	}
}

// PackInt appends a 64-bit signed integer.
func (b *Buffer) PackInt(v int64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(v))
	b.data = append(b.data, tmp[:]...)
}

// UnpackInt consumes a 64-bit signed integer.
func (b *Buffer) UnpackInt() int64 {
	if b.err != nil || b.pos+8 > len(b.data) {
		b.fail("UnpackInt")
		return 0
	}
	v := int64(binary.BigEndian.Uint64(b.data[b.pos:]))
	b.pos += 8
	return v
}

// PackFloat appends a float64.
func (b *Buffer) PackFloat(v float64) {
	b.PackInt(int64(math.Float64bits(v)))
}

// UnpackFloat consumes a float64.
func (b *Buffer) UnpackFloat() float64 {
	return math.Float64frombits(uint64(b.UnpackInt()))
}

// PackBytes appends a length-prefixed byte slice.
func (b *Buffer) PackBytes(p []byte) {
	b.PackInt(int64(len(p)))
	b.data = append(b.data, p...)
}

// UnpackBytes consumes a length-prefixed byte slice. The returned slice
// aliases the buffer's storage; callers that retain it must copy.
func (b *Buffer) UnpackBytes() []byte {
	n := b.UnpackInt()
	if b.err != nil {
		return nil
	}
	// Compare against the remaining byte count rather than computing
	// b.pos+int(n): a hostile length prefix near MaxInt64 would overflow
	// the sum and slip past the check into a slice-bounds panic.
	if n < 0 || n > int64(len(b.data)-b.pos) {
		b.fail("UnpackBytes")
		return nil
	}
	p := b.data[b.pos : b.pos+int(n)]
	b.pos += int(n)
	return p
}

// PackString appends a string.
func (b *Buffer) PackString(s string) { b.PackBytes([]byte(s)) }

// UnpackString consumes a string.
func (b *Buffer) UnpackString() string { return string(b.UnpackBytes()) }

// PackInts appends a length-prefixed int64 slice.
func (b *Buffer) PackInts(vs []int64) {
	b.PackInt(int64(len(vs)))
	for _, v := range vs {
		b.PackInt(v)
	}
}

// UnpackInts consumes a length-prefixed int64 slice.
func (b *Buffer) UnpackInts() []int64 {
	n := b.UnpackInt()
	if b.err != nil {
		return nil
	}
	// n*8 can overflow for hostile prefixes; divide instead.
	if n < 0 || n > int64(b.Len())/8 {
		b.fail("UnpackInts")
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = b.UnpackInt()
	}
	return out
}

// PackFloats appends a length-prefixed float64 slice.
func (b *Buffer) PackFloats(vs []float64) {
	b.PackInt(int64(len(vs)))
	for _, v := range vs {
		b.PackFloat(v)
	}
}

// UnpackFloats consumes a length-prefixed float64 slice.
func (b *Buffer) UnpackFloats() []float64 {
	n := b.UnpackInt()
	if b.err != nil {
		return nil
	}
	// Same overflow guard as UnpackInts.
	if n < 0 || n > int64(b.Len())/8 {
		b.fail("UnpackFloats")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = b.UnpackFloat()
	}
	return out
}

// PackBool appends a boolean.
func (b *Buffer) PackBool(v bool) {
	if v {
		b.PackInt(1)
	} else {
		b.PackInt(0)
	}
}

// UnpackBool consumes a boolean.
func (b *Buffer) UnpackBool() bool { return b.UnpackInt() != 0 }
