// Command nowserve runs the long-lived render-job service: an HTTP API
// over the render farm with a priority job queue, bounded concurrency
// and a content-addressed frame cache.
//
//	nowserve -listen :8080 -max-jobs 2 -cache-mb 64 -driver virtual
//
//	# submit a job, stream progress, fetch a frame
//	curl -s -X POST localhost:8080/jobs -d '{"scene":"newton:10","w":120,"h":160}'
//	curl -N localhost:8080/jobs/job-0001/events
//	curl -s localhost:8080/jobs/job-0001/frames/0 -o frame0.tga
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight HTTP
// requests finish, running jobs are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nowrender/internal/cluster"
	"nowrender/internal/service"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		maxJobs  = flag.Int("max-jobs", 2, "max concurrently running jobs")
		queueCap = flag.Int("queue-cap", 256, "max queued jobs")
		cacheMB  = flag.Int64("cache-mb", 64, "frame cache budget in MiB (0 = default, negative = disabled)")
		driver   = flag.String("driver", "virtual", "default farm driver: virtual | local")
		workers  = flag.Int("workers", 0, "goroutine workers for the local driver (0 = machine count)")
		machines = flag.Int("machines", 0, "virtual NOW size (0 = the paper's 3-machine testbed)")
		threads  = flag.Int("threads", 0, "default intra-frame render threads per farm worker (0 = all cores)")
	)
	flag.Parse()
	if err := run(*listen, *maxJobs, *queueCap, *cacheMB, *driver, *workers, *machines, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "nowserve:", err)
		os.Exit(1)
	}
}

func run(listen string, maxJobs, queueCap int, cacheMB int64, driver string, workers, machines, threads int) error {
	cfg := service.Config{
		MaxConcurrent: maxJobs,
		QueueCap:      queueCap,
		CacheBytes:    cacheMB << 20,
		DefaultDriver: driver,
		Workers:       workers,
		Threads:       threads,
	}
	if machines > 0 {
		cfg.Machines = cluster.Uniform(machines, 1.0, 64)
	}
	svc := service.New(cfg)
	srv := &http.Server{Addr: listen, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("nowserve listening on %s (driver=%s, max-jobs=%d)\n", listen, driver, maxJobs)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("nowserve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
