package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/tga"
)

// TestMain lets the test binary impersonate the framediff CLI: when
// re-executed with FRAMEDIFF_BE_TOOL=1, it runs main() so the exit-code
// contract is tested through a real process boundary.
func TestMain(m *testing.M) {
	if os.Getenv("FRAMEDIFF_BE_TOOL") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runTool re-executes the test binary as framediff and returns its exit
// code.
func runTool(t *testing.T, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FRAMEDIFF_BE_TOOL=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %v: %v\n%s", args, err, out)
	}
	return ee.ExitCode()
}

func writeTGA(t *testing.T, path string, tint byte) {
	t.Helper()
	img := fb.New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			img.SetRGB(x, y, byte(x*16), byte(y*16), tint)
		}
	}
	if err := tga.WriteFile(path, img); err != nil {
		t.Fatal(err)
	}
}

// TestExitCodes pins the diff(1) convention for file-diff mode:
// identical images exit 0, differing images exit 1, errors exit 2.
func TestExitCodes(t *testing.T) {
	dir := t.TempDir()
	same1 := filepath.Join(dir, "same1.tga")
	same2 := filepath.Join(dir, "same2.tga")
	other := filepath.Join(dir, "other.tga")
	writeTGA(t, same1, 0)
	writeTGA(t, same2, 0)
	writeTGA(t, other, 255)

	if code := runTool(t, "-a", same1, "-b", same2); code != 0 {
		t.Errorf("identical images: exit %d, want 0", code)
	}
	if code := runTool(t, "-a", same1, "-b", other); code != 1 {
		t.Errorf("differing images: exit %d, want 1", code)
	}
	if code := runTool(t, "-a", same1, "-b", filepath.Join(dir, "missing.tga")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}
