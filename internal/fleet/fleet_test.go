package fleet

import (
	"context"
	"testing"
	"time"

	"nowrender/internal/farm"
	"nowrender/internal/scenes"
)

// TestUnlimitedPoolGrantsImmediately: the default pool never blocks and
// grants the full request.
func TestUnlimitedPoolGrantsImmediately(t *testing.T) {
	p := NewPool(0)
	l, err := p.Lease(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if l.Slots != 8 {
		t.Fatalf("slots = %d, want 8", l.Slots)
	}
	st := p.Stats()
	if st.Capacity != -1 || st.Leased != 8 || st.Leases != 1 {
		t.Fatalf("stats = %+v", st)
	}
	l.Return()
	l.Return() // idempotent
	if got := p.Stats().Leased; got != 0 {
		t.Fatalf("leased after return = %d", got)
	}
}

// TestBoundedLeaseBlocksUntilReturn: a second lease waits for the first
// to return its slots.
func TestBoundedLeaseBlocksUntilReturn(t *testing.T) {
	p := NewPool(3)
	l1, err := p.Lease(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan *Lease, 1)
	go func() {
		l, err := p.Lease(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		granted <- l
	}()
	select {
	case <-granted:
		t.Fatal("second lease granted while pool exhausted")
	case <-time.After(50 * time.Millisecond):
	}
	l1.Return()
	select {
	case l2 := <-granted:
		if l2.Slots != 2 {
			t.Fatalf("second lease slots = %d, want 2", l2.Slots)
		}
		l2.Return()
	case <-time.After(5 * time.Second):
		t.Fatal("second lease never granted after return")
	}
	if w := p.Stats().Waits; w != 1 {
		t.Fatalf("waits = %d, want 1", w)
	}
}

// TestLeaseClampsOverAsk: asking for more than the pool holds grants
// the whole pool instead of deadlocking.
func TestLeaseClampsOverAsk(t *testing.T) {
	p := NewPool(2)
	l, err := p.Lease(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Return()
	if l.Slots != 2 {
		t.Fatalf("slots = %d, want clamp to 2", l.Slots)
	}
}

// TestLeaseHonoursContext: a blocked lease unblocks with the context's
// error.
func TestLeaseHonoursContext(t *testing.T) {
	p := NewPool(1)
	l1, err := p.Lease(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Return()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Lease(ctx, 1); err == nil {
		t.Fatal("lease succeeded on an exhausted pool with an expiring context")
	}
}

// TestJoinLeaveElasticCapacity: members grow and shrink a live pool;
// joining wakes blocked leases.
func TestJoinLeaveElasticCapacity(t *testing.T) {
	p := NewPool(1)
	l1, err := p.Lease(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan *Lease, 1)
	go func() {
		l, err := p.Lease(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		granted <- l
	}()
	time.Sleep(20 * time.Millisecond)
	p.Join("ws02", 2) // capacity 1 -> 3; the blocked lease fits now
	var l2 *Lease
	select {
	case l2 = <-granted:
		if l2.Slots != 2 {
			t.Fatalf("post-join lease slots = %d, want 2", l2.Slots)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("join did not wake the blocked lease")
	}
	st := p.Stats()
	if st.Capacity != 3 || st.Members["ws02"] != 2 {
		t.Fatalf("stats after join = %+v", st)
	}
	// Leave does not revoke l2; the member's leased slots keep backing
	// capacity (the draining bucket) until they return, so accounting
	// never shows leased > capacity.
	p.Leave("ws02")
	if st := p.Stats(); st.Capacity != 3 || st.Leased != 3 {
		t.Fatalf("stats after leave = %+v", st)
	}
	l1.Return()
	if st := p.Stats(); st.Capacity != 2 || st.Leased != 2 {
		t.Fatalf("stats after first return = %+v", st)
	}
	l2.Return()
	if st := p.Stats(); st.Capacity != 1 || st.Leased != 0 {
		t.Fatalf("stats after returns = %+v", st)
	}
}

// TestLeaveDefersCapacityDecrement is the regression test for Leave on
// a fully-leased pool: the departed member's in-use slots must stay in
// the capacity figure until their leases return, so available capacity
// (capacity - leased) never goes negative and no new lease is granted
// against the draining slots.
func TestLeaveDefersCapacityDecrement(t *testing.T) {
	p := NewPool(0)
	p.Join("ws01", 2)
	p.Join("ws02", 2)
	l, err := p.Lease(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Slots != 4 {
		t.Fatalf("slots = %d, want 4", l.Slots)
	}
	p.Leave("ws02")
	st := p.Stats()
	if st.Capacity != 4 || st.Leased != 4 {
		t.Fatalf("after leave: %+v, want capacity 4 leased 4 (deferred decrement)", st)
	}
	if st.Capacity-st.Leased < 0 {
		t.Fatalf("available went negative: %d", st.Capacity-st.Leased)
	}

	// The draining slots must not back a new grant: a fresh lease waits
	// for the survivor's slots, not the ghost's.
	granted := make(chan *Lease, 1)
	go func() {
		l2, err := p.Lease(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		granted <- l2
	}()
	select {
	case <-granted:
		t.Fatal("lease granted against a departed member's draining slots")
	case <-time.After(50 * time.Millisecond):
	}

	l.Return()
	select {
	case l2 := <-granted:
		if l2.Slots != 2 {
			t.Fatalf("post-drain lease slots = %d, want 2", l2.Slots)
		}
		l2.Return()
	case <-time.After(5 * time.Second):
		t.Fatal("lease never granted after drain")
	}
	if st := p.Stats(); st.Capacity != 2 || st.Leased != 0 {
		t.Fatalf("final stats = %+v, want capacity 2 leased 0", st)
	}
}

// TestShrinkToZeroRefusesNewLeases: a member resized to zero while its
// slots are leased keeps backing the accounting (capacity never drops
// below leased), and the zero-capacity pool refuses new leases instead
// of queueing them behind draining slots that will never be
// re-grantable.
func TestShrinkToZeroRefusesNewLeases(t *testing.T) {
	p := NewPool(0)
	p.Join("ws01", 2)
	l, err := p.Lease(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Join("ws01", 0) // shrink to zero with both slots leased
	if st := p.Stats(); st.Capacity != 2 || st.Leased != 2 {
		t.Fatalf("after shrink: %+v", st)
	}
	if _, err := p.Lease(context.Background(), 1); err == nil {
		t.Fatal("lease granted on a pool with no registered capacity")
	}
	l.Return()
	if st := p.Stats(); st.Capacity != 0 || st.Leased != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

// TestLeaveLastMemberRevertsUnlimited pins the pre-existing contract:
// a base-unlimited pool reverts to unlimited when its last member
// leaves, and the in-flight lease still returns cleanly.
func TestLeaveLastMemberRevertsUnlimited(t *testing.T) {
	p := NewPool(0)
	p.Join("ws01", 2)
	l, err := p.Lease(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p.Leave("ws01")
	if st := p.Stats(); st.Capacity != -1 || st.Leased != 2 {
		t.Fatalf("after leave: %+v", st)
	}
	l.Return()
	if st := p.Stats(); st.Leased != 0 {
		t.Fatalf("after return: %+v", st)
	}
}

// TestJoinBoundsUnlimitedPool: a member joining an unlimited pool makes
// it bounded at the member's capacity.
func TestJoinBoundsUnlimitedPool(t *testing.T) {
	p := NewPool(0)
	p.Join("ws01", 2)
	l, err := p.Lease(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Return()
	if l.Slots != 2 {
		t.Fatalf("slots = %d, want 2 after member bound the pool", l.Slots)
	}
}

// TestDriversRenderThroughPool: the registered drivers run a real
// (tiny) farm job each and produce frames.
func TestDriversRenderThroughPool(t *testing.T) {
	p := NewPool(0)
	sc, err := scenes.FromSpec("quickstart")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"virtual", "local"} {
		d, err := p.Driver(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Render(farm.Config{
			Scene: sc, W: 24, H: 24, StartFrame: 0, EndFrame: 1, Workers: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Frames) != 1 || res.Frames[0] == nil {
			t.Fatalf("%s: no frame rendered", name)
		}
	}
	if _, err := p.Driver("pvm"); err == nil {
		t.Fatal("unknown driver accepted")
	}
}
