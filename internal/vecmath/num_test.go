package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSolveQuadraticTwoRoots(t *testing.T) {
	// (t-1)(t-3) = t^2 - 4t + 3
	t0, t1, n := SolveQuadratic(1, -4, 3)
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	if math.Abs(t0-1) > 1e-12 || math.Abs(t1-3) > 1e-12 {
		t.Errorf("roots = %v, %v", t0, t1)
	}
}

func TestSolveQuadraticNoRoots(t *testing.T) {
	if _, _, n := SolveQuadratic(1, 0, 1); n != 0 {
		t.Errorf("t^2+1=0 returned %d roots", n)
	}
}

func TestSolveQuadraticLinear(t *testing.T) {
	t0, _, n := SolveQuadratic(0, 2, -4)
	if n != 1 || math.Abs(t0-2) > 1e-12 {
		t.Errorf("linear solve: n=%d t0=%v", n, t0)
	}
}

func TestSolveQuadraticDegenerate(t *testing.T) {
	if _, _, n := SolveQuadratic(0, 0, 5); n != 0 {
		t.Errorf("constant equation returned %d roots", n)
	}
}

func TestSolveQuadraticStability(t *testing.T) {
	// b^2 >> 4ac: naive formula loses the small root entirely.
	a, b, c := 1.0, -1e8, 1.0
	t0, t1, n := SolveQuadratic(a, b, c)
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	// Check both roots actually satisfy the equation with small residual.
	for _, r := range []float64{t0, t1} {
		res := a*r*r + b*r + c
		if math.Abs(res) > 1e-4*math.Abs(b*r) {
			t.Errorf("root %v residual %v too large", r, res)
		}
	}
	if t0 >= t1 {
		t.Error("roots not ordered")
	}
}

// Property: returned roots satisfy the quadratic within tolerance.
func TestQuickQuadraticRoots(t *testing.T) {
	f := func(a, b, c float64) bool {
		if anyBad(a, b, c) {
			return true
		}
		a, b, c = math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)
		t0, t1, n := SolveQuadratic(a, b, c)
		scale := math.Max(1, math.Abs(a)+math.Abs(b)+math.Abs(c))
		check := func(r float64) bool {
			v := a*r*r + b*r + c
			return math.Abs(v) <= 1e-6*scale*math.Max(1, r*r)
		}
		switch n {
		case 2:
			return check(t0) && check(t1) && t0 <= t1
		case 1:
			return check(t0)
		default:
			return true
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestAngleConversions(t *testing.T) {
	if math.Abs(Radians(180)-math.Pi) > 1e-12 {
		t.Error("Radians(180) != pi")
	}
	if math.Abs(Degrees(math.Pi)-180) > 1e-12 {
		t.Error("Degrees(pi) != 180")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced stuck generator")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) only produced %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGInRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		v := r.InRange(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("InRange out of bounds: %v", v)
		}
	}
}

func TestRNGRoughUniformity(t *testing.T) {
	r := NewRNG(123)
	const buckets, samples = 10, 100000
	var hist [buckets]int
	for i := 0; i < samples; i++ {
		hist[int(r.Float64()*buckets)]++
	}
	want := samples / buckets
	for i, h := range hist {
		if h < want*8/10 || h > want*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", i, h, want)
		}
	}
}
