package farm

import (
	"fmt"
	"sync/atomic"

	"nowrender/internal/compositor"
	"nowrender/internal/msg"
)

// sinkLink is a worker's data connection to one compositor sink. A
// small receive pump watches for TagNeedKey (the sink lost the delta
// base and wants a fresh key-frame) and for the conn dying; the render
// loop polls both between frames, so the link needs no locking beyond
// the two atomics.
type sinkLink struct {
	addr    string
	conn    msg.Conn
	needKey atomic.Bool
	dead    atomic.Bool
	// rekey forces the next frame shipped on this link to be a
	// key-frame: set on (re)dial, because the sink behind a fresh conn
	// may be a restarted process with no base for our deltas.
	rekey bool
}

func (l *sinkLink) pump() {
	for {
		m, err := l.conn.Recv()
		if err != nil {
			l.dead.Store(true)
			return
		}
		if m.Tag == compositor.TagNeedKey {
			l.needKey.Store(true)
		}
	}
}

// takeNeedKey consumes a pending key-frame request.
func (l *sinkLink) takeNeedKey() bool { return l.needKey.Swap(false) }

// sinkLinks is the worker's sink connection table, persistent across
// tasks so delta chains survive task boundaries on the same shard.
type sinkLinks struct {
	worker string
	dial   func(addr string) (msg.Conn, error)
	links  map[string]*sinkLink
}

func newSinkLinks(worker string, dial func(string) (msg.Conn, error)) *sinkLinks {
	if dial == nil {
		dial = msg.Dial
	}
	return &sinkLinks{worker: worker, dial: dial, links: make(map[string]*sinkLink)}
}

// get returns a live link to addr, dialing (or re-dialing a dead link)
// as needed. A fresh link has rekey set and has already sent its
// TagJoin handshake.
func (s *sinkLinks) get(addr string) (*sinkLink, error) {
	if l := s.links[addr]; l != nil && !l.dead.Load() {
		return l, nil
	}
	conn, err := s.dial(addr)
	if err != nil {
		return nil, fmt.Errorf("farm: worker %s: sink %s: %w", s.worker, addr, err)
	}
	l := &sinkLink{addr: addr, conn: conn, rekey: true}
	if err := conn.Send(msg.Message{Tag: compositor.TagJoin, From: s.worker, Data: compositor.EncodeJoin(s.worker)}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("farm: worker %s: sink %s join: %w", s.worker, addr, err)
	}
	go l.pump()
	s.links[addr] = l
	return l, nil
}

// close shuts every link down.
func (s *sinkLinks) close() {
	for _, l := range s.links {
		l.conn.Close()
	}
	s.links = make(map[string]*sinkLink)
}
