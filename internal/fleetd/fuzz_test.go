package fleetd

import "testing"

// FuzzFleetdDecode proves every broker wire decoder is total: arbitrary
// bytes — truncated frames, corrupted seals, hostile length prefixes —
// either decode into a validated message or return an error, and never
// panic, hang, or allocate unboundedly. The server drops a conn whose
// peer sends garbage (its leases expire); this guarantee is why garbage
// can never do worse than that.
func FuzzFleetdDecode(f *testing.F) {
	// Well-formed seeds, one per message kind, so mutation starts from
	// payloads that exercise the deep paths (unit lists, member maps).
	f.Add(EncodeHello(Hello{Role: RoleWorker, Name: "ws01", Slots: 4}))
	f.Add(EncodeWelcome(Welcome{Epoch: 7, TermMS: 15000}))
	f.Add(EncodeAcquire(AcquireReq{Req: 1, Want: 3, TermMS: 500}))
	f.Add(EncodeGrant(Grant{Req: 1, Lease: 9, Slots: 2, Units: []string{"pool/0", "ws01/1"}, TermMS: 500}))
	f.Add(EncodeGrant(Grant{Req: 1, Err: "no capacity"}))
	f.Add(EncodeRenew(RenewReq{Req: 2, Lease: 9, TermMS: 100}))
	f.Add(EncodeRenewed(Renewed{Req: 2, Lease: 9, OK: true, TermMS: 100}))
	f.Add(EncodeRelease(9))
	f.Add(EncodeStats(StatsMsg{Req: 3, Capacity: 8, Free: 3, Leased: 5, Members: map[string]int{"pool": 8}}))
	f.Add(EncodeReq(3))
	// Degenerate seeds.
	f.Add([]byte{})
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Every decoder must be total over the same input: a message
		// misrouted to the wrong tag's decoder is still just an error.
		if h, err := DecodeHello(data); err == nil {
			if h.Role != RoleReplica && h.Role != RoleWorker {
				t.Fatalf("accepted hello with role %q", h.Role)
			}
			if h.Slots < 0 || h.Slots > maxUnits {
				t.Fatalf("accepted hello with slots %d", h.Slots)
			}
		}
		if w, err := DecodeWelcome(data); err == nil && w.TermMS < 0 {
			t.Fatalf("accepted welcome with term %d", w.TermMS)
		}
		if a, err := DecodeAcquire(data); err == nil {
			if a.Want > maxUnits || a.TermMS < 0 {
				t.Fatalf("accepted acquire %+v", a)
			}
		}
		if g, err := DecodeGrant(data); err == nil {
			if g.Slots < 0 || g.Slots > maxUnits || len(g.Units) > maxUnits {
				t.Fatalf("accepted grant %+v", g)
			}
			if g.Err == "" && g.Slots != len(g.Units) {
				t.Fatalf("accepted inconsistent grant %+v", g)
			}
		}
		if r, err := DecodeRenew(data); err == nil && r.TermMS < 0 {
			t.Fatalf("accepted renew %+v", r)
		}
		if r, err := DecodeRenewed(data); err == nil && r.TermMS < 0 {
			t.Fatalf("accepted renewed %+v", r)
		}
		_, _ = DecodeRelease(data)
		if s, err := DecodeStats(data); err == nil {
			if s.Capacity < 0 || s.Free < 0 || s.Leased < 0 || len(s.Members) > maxUnits {
				t.Fatalf("accepted stats %+v", s)
			}
		}
		_, _ = DecodeReq(data)
	})
}
