package objspace

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/scene"
	"nowrender/internal/scenes"
	"nowrender/internal/sdl"
	"nowrender/internal/stats"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

type (
	statsReport = stats.ObjSpaceStats
	shardRow    = stats.ObjSpaceShard
)

func loadSDL(t *testing.T, path string) *scene.Scene {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("..", "..", path))
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	sc, err := sdl.Parse(path, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return sc
}

// testScenes returns the byte-identity workloads: the SDL golden scene,
// the museum gallery, and the large-mesh stress scene.
func testScenes(t *testing.T) map[string]*scene.Scene {
	return map[string]*scene.Scene{
		"cornell-ish": loadSDL(t, "scenes/cornell-ish.sdl"),
		"gallery":     scenes.Gallery(4),
		"meshgallery": scenes.MeshGallery(4),
	}
}

func renderReplicated(t *testing.T, sc *scene.Scene, frame, w, h int, opts trace.Options) (*fb.Framebuffer, *trace.FrameTracer) {
	t.Helper()
	ft, err := trace.New(sc, frame, opts)
	if err != nil {
		t.Fatal(err)
	}
	img := fb.New(w, h)
	ft.RenderFull(img)
	return img, ft
}

// TestShardedByteIdentity is the PR's correctness invariant: rendering
// through the object-space partition at 2 and 4 shards produces exactly
// the bytes — and exactly the ray counters — of the replicated path.
func TestShardedByteIdentity(t *testing.T) {
	const w, h = 64, 48
	for name, sc := range testScenes(t) {
		for _, shards := range []int{2, 4} {
			ref, ft := renderReplicated(t, sc, 0, w, h, trace.Options{})
			var st Stats
			cl, err := Build(sc, 0, trace.Options{}, Options{Shards: shards, Stats: &st})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, shards, err)
			}
			wk := cl.NewWorker(nil)
			img := fb.New(w, h)
			wk.RenderFull(img)
			if !bytes.Equal(ref.Pix, img.Pix) {
				diff := 0
				for i := range ref.Pix {
					if ref.Pix[i] != img.Pix[i] {
						diff++
					}
				}
				t.Errorf("%s at %d shards: %d/%d pixel bytes differ from replicated",
					name, shards, diff, len(ref.Pix))
			}
			if ft.Counters != wk.Counters {
				t.Errorf("%s at %d shards: counters %v != replicated %v",
					name, shards, wk.Counters, ft.Counters)
			}
			if cl.Partition().Shards() > 1 && st.RaysForwarded() == 0 {
				t.Errorf("%s at %d shards: no rays forwarded — partition degenerate?", name, shards)
			}
		}
	}
}

// TestShardedSupersampledByteIdentity repeats the invariant with
// multi-sample jitter, which exercises secondary-ray-heavy paths.
func TestShardedSupersampledByteIdentity(t *testing.T) {
	sc := scenes.MeshGallery(2)
	opts := trace.Options{SamplesPerPixel: 2}
	const w, h = 40, 30
	ref, _ := renderReplicated(t, sc, 1, w, h, opts)
	cl, err := Build(sc, 1, opts, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	img := fb.New(w, h)
	cl.NewWorker(nil).RenderFull(img)
	if !bytes.Equal(ref.Pix, img.Pix) {
		t.Error("supersampled sharded render differs from replicated")
	}
}

// TestResidentShrinks pins the memory story: the per-shard peak resident
// scene size must decrease as the shard count grows on the mesh-heavy
// stress scene.
func TestResidentShrinks(t *testing.T) {
	sc := scenes.MeshGallery(1)
	peak := func(shards int) uint64 {
		var st Stats
		if _, err := Build(sc, 0, trace.Options{}, Options{Shards: shards, Stats: &st}); err != nil {
			t.Fatal(err)
		}
		return st.Snapshot().PeakResidentBytes
	}
	p2, p4 := peak(2), peak(4)
	if p4 >= p2 {
		t.Errorf("peak resident did not shrink: %d bytes at 2 shards, %d at 4", p2, p4)
	}
}

// TestRemoteFleetByteIdentity runs the full wire topology — one owner
// goroutine per shard over msg.Pipe links — and demands the same bytes.
func TestRemoteFleetByteIdentity(t *testing.T) {
	sc := scenes.MeshGallery(1)
	const w, h = 48, 36
	ref, _ := renderReplicated(t, sc, 0, w, h, trace.Options{})
	var st Stats
	cl, err := Build(sc, 0, trace.Options{}, Options{Shards: 3, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	client := NewLocalFleet(cl)
	defer client.Close()
	img := fb.New(w, h)
	client.NewWorker(nil).RenderFull(img)
	if !bytes.Equal(ref.Pix, img.Pix) {
		t.Error("remote fleet render differs from replicated")
	}
}

func TestPartitionInvariants(t *testing.T) {
	sc := scenes.MeshGallery(1)
	cl, err := Build(sc, 0, trace.Options{}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := cl.Partition()
	if p.Slabs[0][0] != 0 {
		t.Errorf("first slab starts at %d, want 0", p.Slabs[0][0])
	}
	for i := 1; i < len(p.Slabs); i++ {
		if p.Slabs[i][0] != p.Slabs[i-1][1] {
			t.Errorf("slab %d starts at %d, previous ends at %d", i, p.Slabs[i][0], p.Slabs[i-1][1])
		}
		if p.Slabs[i][0] >= p.Slabs[i][1] {
			t.Errorf("slab %d empty: %v", i, p.Slabs[i])
		}
		// Adjacent slabs must agree bit-exactly on their shared plane.
		lo := cl.Shard(i).Bounds.Min.Axis(p.Axis)
		hi := cl.Shard(i - 1).Bounds.Max.Axis(p.Axis)
		if lo != hi {
			t.Errorf("slab boundary %d mismatch: %v vs %v", i, lo, hi)
		}
		if got := p.ShardOf(lo); got != i {
			t.Errorf("ShardOf(boundary %d) = %d, want %d (higher side)", i, got, i)
		}
	}
	if last := p.Slabs[len(p.Slabs)-1]; cl.Shard(len(p.Slabs)-1).Bounds.Max != p.Bounds.Max {
		t.Errorf("last slab %v does not end at the partition bounds", last)
	}
	for i := range p.Slabs {
		if s := cl.Shard(i); len(s.Objs) == 0 {
			t.Errorf("shard %d holds no geometry on the stress scene", i)
		}
	}
}

func TestBuildRejectsBadShardCounts(t *testing.T) {
	sc := scenes.MeshGallery(1)
	for _, n := range []int{-1, 0, 1, MaxShards + 1} {
		if _, err := Build(sc, 0, trace.Options{}, Options{Shards: n}); err == nil {
			t.Errorf("Build accepted %d shards", n)
		}
	}
}

func sampleForward() ForwardState {
	n := vm.V(0, 1, 0)
	return ForwardState{
		Seq: 42, Pixel: 1234, Shard: 2,
		Ray:  vm.Ray{Origin: vm.V(0.1, -2.5, 3e8), Dir: vm.V(-0.3, 0.9, 0.1), Kind: vm.ShadowRay, Depth: 3},
		TMin: 1e-4, TMax: 17.25, Throughput: vm.V(0.5, 0.25, 1),
		Found: true, BestObj: 7,
		Best: geom.Hit{T: 4.125, Point: vm.V(1, 2, 3), Normal: n, Inside: true, U: 0.5, V: 0.75},
	}
}

func TestForwardRoundTrip(t *testing.T) {
	cases := map[string]ForwardState{"hit": sampleForward()}
	miss := sampleForward()
	miss.Found, miss.BestObj, miss.Best = false, -1, geom.Hit{T: math.Inf(1)}
	miss.TMax = math.Inf(1)
	miss.Pixel = -1
	cases["miss-inf"] = miss
	rng := vm.NewRNG(99)
	for i := 0; i < 64; i++ {
		fs := sampleForward()
		fs.Seq = uint64(i)
		fs.Ray.Origin = vm.V(rng.Float64()*1e6-5e5, rng.Float64(), rng.Float64()*1e-9)
		fs.Ray.Dir = vm.V(rng.Float64()-0.5, rng.Float64()-0.5, rng.Float64()+0.01)
		fs.Best.T = rng.Float64() * 100
		fs.TMax = fs.Best.T + rng.Float64()
		cases[string(rune('a'+i))] = fs
	}
	for name, fs := range cases {
		got, err := DecodeForward(EncodeForward(&fs))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got != fs {
			t.Errorf("%s: round trip changed state:\n got %+v\nwant %+v", name, got, fs)
		}
	}
}

func TestDecodeForwardRejects(t *testing.T) {
	mutate := func(f func(*ForwardState)) []byte {
		fs := sampleForward()
		f(&fs)
		return EncodeForward(&fs)
	}
	cases := map[string][]byte{
		"empty":       {},
		"truncated":   EncodeForward(&ForwardState{})[:40],
		"trailing":    append(EncodeForward(&ForwardState{Ray: vm.Ray{Dir: vm.V(1, 0, 0)}, BestObj: -1}), 0),
		"bad-kind":    mutate(func(fs *ForwardState) { fs.Ray.Kind = 200 }),
		"neg-depth":   mutate(func(fs *ForwardState) { fs.Ray.Depth = -1 }),
		"huge-depth":  mutate(func(fs *ForwardState) { fs.Ray.Depth = maxForwardDepth + 1 }),
		"bad-pixel":   mutate(func(fs *ForwardState) { fs.Pixel = -2 }),
		"bad-shard":   mutate(func(fs *ForwardState) { fs.Shard = MaxShards }),
		"nan-origin":  mutate(func(fs *ForwardState) { fs.Ray.Origin.X = math.NaN() }),
		"inf-dir":     mutate(func(fs *ForwardState) { fs.Ray.Dir.Y = math.Inf(1) }),
		"zero-dir":    mutate(func(fs *ForwardState) { fs.Ray.Dir = vm.Vec3{} }),
		"nan-tmin":    mutate(func(fs *ForwardState) { fs.TMin = math.NaN() }),
		"inf-tmin":    mutate(func(fs *ForwardState) { fs.TMin = math.Inf(1) }),
		"inverted-t":  mutate(func(fs *ForwardState) { fs.TMax = fs.TMin - 1 }),
		"nan-hit":     mutate(func(fs *ForwardState) { fs.Best.T = math.NaN() }),
		"neg-bestobj": mutate(func(fs *ForwardState) { fs.BestObj = -1 }),
		"ghost-obj":   mutate(func(fs *ForwardState) { fs.Found = false }),
	}
	for name, data := range cases {
		if _, err := DecodeForward(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestStatsCodecRoundTrip(t *testing.T) {
	var st Stats
	sc := scenes.MeshGallery(1)
	if _, err := Build(sc, 0, trace.Options{}, Options{Shards: 3, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	st.countForward(0, 224)
	st.countForward(0, 224)
	st.countForward(2, 224)
	snap := st.Snapshot()
	got, err := DecodeStats(EncodeStats(snap))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != snap.Shards || got.RaysForwarded != snap.RaysForwarded ||
		got.ForwardBytes != snap.ForwardBytes || got.PeakResidentBytes != snap.PeakResidentBytes ||
		len(got.PerShard) != len(snap.PerShard) {
		t.Errorf("stats round trip: got %+v want %+v", got, snap)
	}
	for i := range got.PerShard {
		if got.PerShard[i] != snap.PerShard[i] {
			t.Errorf("shard %d row: got %+v want %+v", i, got.PerShard[i], snap.PerShard[i])
		}
	}

	for name, data := range map[string][]byte{
		"empty":     {},
		"too-many":  {0, 0, 0, 0, 0, 0, 0, 200, 0, 0, 0, 0, 0, 0, 0, 200},
		"truncated": EncodeStats(snap)[:20],
		"trailing":  append(EncodeStats(snap), 1),
	} {
		if _, err := DecodeStats(data); err == nil {
			t.Errorf("%s: DecodeStats accepted malformed input", name)
		}
	}
}

// FuzzObjSpaceDecode drives both wire decoders with arbitrary bytes: they
// must never panic, and anything they accept must re-encode to a payload
// that decodes to the identical state.
func FuzzObjSpaceDecode(f *testing.F) {
	fs := sampleForward()
	f.Add(EncodeForward(&fs))
	miss := sampleForward()
	miss.Found, miss.BestObj = false, -1
	f.Add(EncodeForward(&miss))
	f.Add(EncodeStats(stats3()))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		if fs, err := DecodeForward(data); err == nil {
			again, err := DecodeForward(EncodeForward(&fs))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if again != fs {
				t.Fatalf("re-encode changed state: %+v vs %+v", again, fs)
			}
		}
		if st, err := DecodeStats(data); err == nil {
			again, err := DecodeStats(EncodeStats(st))
			if err != nil {
				t.Fatalf("stats re-decode failed: %v", err)
			}
			if again.RaysForwarded != st.RaysForwarded || len(again.PerShard) != len(st.PerShard) {
				t.Fatalf("stats re-encode changed totals")
			}
		}
	})
}

func stats3() (s statsReport) {
	s.Shards = 3
	s.PerShard = append(s.PerShard,
		shardRow{RaysForwarded: 10, ForwardBytes: 2240, Objects: 4, Tris: 100, ResidentBytes: 5000},
		shardRow{RaysForwarded: 3, ForwardBytes: 672, Objects: 2, Tris: 50, ResidentBytes: 2500},
		shardRow{})
	s.RaysForwarded, s.ForwardBytes, s.PeakResidentBytes = 13, 2912, 5000
	return s
}
