package material

import (
	"testing"

	"nowrender/internal/geom"
	vm "nowrender/internal/vecmath"
)

func hitAt(p vm.Vec3) geom.Hit { return geom.Hit{Point: p} }

func TestSolid(t *testing.T) {
	s := Solid{C: Red}
	if got := s.ColorAt(hitAt(vm.V(1, 2, 3))); got != Red {
		t.Errorf("solid = %v", got)
	}
}

func TestCheckerAlternates(t *testing.T) {
	c := Checker{A: White, B: Black}
	if got := c.ColorAt(hitAt(vm.V(0.5, 0.5, 0.5))); got != White {
		t.Errorf("cell (0,0,0) = %v, want A (even cell sum)", got)
	}
	// Adjacent cell flips.
	a := c.ColorAt(hitAt(vm.V(0.5, 0.5, 0.5)))
	b := c.ColorAt(hitAt(vm.V(1.5, 0.5, 0.5)))
	if a == b {
		t.Error("adjacent checker cells same colour")
	}
	// Diagonal neighbour (two steps) matches.
	d := c.ColorAt(hitAt(vm.V(1.5, 1.5, 0.5)))
	if a != d {
		t.Error("diagonal checker cells differ")
	}
}

func TestCheckerSize(t *testing.T) {
	c := Checker{A: White, B: Black, Size: 2}
	a := c.ColorAt(hitAt(vm.V(0.5, 0.5, 0.5)))
	b := c.ColorAt(hitAt(vm.V(1.5, 0.5, 0.5))) // same 2-unit cell
	if a != b {
		t.Error("points in same sized cell differ")
	}
	d := c.ColorAt(hitAt(vm.V(2.5, 0.5, 0.5))) // next cell
	if a == d {
		t.Error("next sized cell did not flip")
	}
}

func TestCheckerNegativeCoordinates(t *testing.T) {
	c := Checker{A: White, B: Black}
	// floor(-0.5) = -1, so cell sum flips relative to (0.5,...).
	a := c.ColorAt(hitAt(vm.V(0.5, 0.5, 0.5)))
	b := c.ColorAt(hitAt(vm.V(-0.5, 0.5, 0.5)))
	if a == b {
		t.Error("checker not alternating across zero")
	}
}

func TestBrickMortarAndBody(t *testing.T) {
	b := Brick{Mortar: White, Body: Red}
	// Deep inside a brick body.
	got := b.ColorAt(hitAt(vm.V(0.4, 0.125, 0.225)))
	if got != Red {
		t.Errorf("brick body = %v", got)
	}
	// On a mortar line (y just above a course boundary).
	got = b.ColorAt(hitAt(vm.V(0.4, 0.01, 0.225)))
	if got != White {
		t.Errorf("mortar = %v", got)
	}
}

func TestBrickRunningBond(t *testing.T) {
	b := Brick{Mortar: White, Body: Red}
	// The vertical mortar joint at x=0 exists in course 0; in course 1
	// the joint is offset by half a brick, so the same x should be body.
	inJoint := b.ColorAt(hitAt(vm.V(0.01, 0.125, 0.225)))
	if inJoint != White {
		t.Fatalf("expected mortar at vertical joint, got %v", inJoint)
	}
	nextCourse := b.ColorAt(hitAt(vm.V(0.01, 0.125+0.25, 0.225)))
	if nextCourse != Red {
		t.Errorf("running bond offset missing: got %v at offset course", nextCourse)
	}
}

func TestGradient(t *testing.T) {
	g := Gradient{Axis: vm.V(1, 0, 0), A: Black, B: White, Length: 10}
	c0 := g.ColorAt(hitAt(vm.V(0, 0, 0)))
	c5 := g.ColorAt(hitAt(vm.V(5, 0, 0)))
	if c0 != Black {
		t.Errorf("gradient at 0 = %v", c0)
	}
	if !c5.ApproxEq(vm.Splat(0.5), 1e-12) {
		t.Errorf("gradient at mid = %v", c5)
	}
}

func TestGradientWraps(t *testing.T) {
	g := Gradient{Axis: vm.V(0, 1, 0), A: Black, B: White, Length: 1}
	a := g.ColorAt(hitAt(vm.V(0, 0.25, 0)))
	b := g.ColorAt(hitAt(vm.V(0, 1.25, 0)))
	if !a.ApproxEq(b, 1e-12) {
		t.Error("gradient should repeat with period Length")
	}
}

func TestFinishPresets(t *testing.T) {
	if f := DefaultFinish(); f.Diffuse <= 0 || f.Reflect != 0 || f.Transmit != 0 {
		t.Errorf("default finish unexpected: %+v", f)
	}
	if f := ChromeFinish(); f.Reflect <= 0.3 {
		t.Errorf("chrome should be strongly reflective: %+v", f)
	}
	g := GlassFinish()
	if g.Transmit <= 0.5 || g.IOR <= 1 {
		t.Errorf("glass should transmit with IOR > 1: %+v", g)
	}
}

func TestMatte(t *testing.T) {
	m := Matte(Green)
	if m.Pigment.ColorAt(hitAt(vm.V(0, 0, 0))) != Green {
		t.Error("matte pigment wrong")
	}
	if m.Finish.Reflect != 0 || m.Finish.Transmit != 0 {
		t.Error("matte must not reflect or transmit")
	}
}
