package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/tga"
)

// waitDone blocks until the job terminates, with a test-failing timeout.
func waitDone(t *testing.T, s *Service, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// TestSecondJobServedEntirelyFromCache is the tentpole's end-to-end
// claim: resubmitting the same scene completes via cache hits with zero
// new rays traced.
func TestSecondJobServedEntirelyFromCache(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	spec := JobSpec{Scene: "newton:4", W: 60, H: 80}

	st1, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st1 = waitDone(t, s, st1.ID)
	if st1.State != StateDone {
		t.Fatalf("job1 state = %s (err %q), want done", st1.State, st1.Error)
	}
	if st1.RaysTraced == 0 {
		t.Fatal("job1 traced no rays")
	}
	if st1.CacheHits != 0 {
		t.Fatalf("job1 cache hits = %d, want 0", st1.CacheHits)
	}
	if st1.FramesDone != 4 {
		t.Fatalf("job1 frames done = %d, want 4", st1.FramesDone)
	}

	st2, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 = waitDone(t, s, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("job2 state = %s (err %q), want done", st2.State, st2.Error)
	}
	if st2.RaysTraced != 0 {
		t.Fatalf("job2 traced %d rays, want 0 (all frames cached)", st2.RaysTraced)
	}
	if st2.CacheHits != 4 {
		t.Fatalf("job2 cache hits = %d, want 4", st2.CacheHits)
	}

	// The cached frames are byte-identical to the first render.
	for f := 0; f < 4; f++ {
		img1, err1 := s.Frame(st1.ID, f)
		img2, err2 := s.Frame(st2.ID, f)
		if err1 != nil || err2 != nil {
			t.Fatalf("frame %d: %v / %v", f, err1, err2)
		}
		if !bytes.Equal(img1.Pix, img2.Pix) {
			t.Fatalf("frame %d differs between jobs", f)
		}
	}

	cs := s.CacheStats()
	if cs.Hits != 4 {
		t.Fatalf("cache hits = %d, want 4", cs.Hits)
	}
	if cs.Entries != 4 {
		t.Fatalf("cache entries = %d, want 4", cs.Entries)
	}
}

// TestOverlappingJobRendersOnlyMissingFrames checks frame-granular
// reuse: a job overlapping a previous one re-renders only the frames
// the cache does not hold.
func TestOverlappingJobRendersOnlyMissingFrames(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	st1, err := s.Submit(JobSpec{Scene: "newton:9", W: 48, H: 64, EndFrame: 6})
	if err != nil {
		t.Fatal(err)
	}
	if st1 = waitDone(t, s, st1.ID); st1.State != StateDone {
		t.Fatalf("job1: %s (%s)", st1.State, st1.Error)
	}

	// [3, 9) overlaps the cached [0, 6) in frames 3..5.
	st2, err := s.Submit(JobSpec{Scene: "newton:9", W: 48, H: 64, StartFrame: 3, EndFrame: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st2 = waitDone(t, s, st2.ID); st2.State != StateDone {
		t.Fatalf("job2: %s (%s)", st2.State, st2.Error)
	}
	if st2.CacheHits != 3 {
		t.Fatalf("job2 cache hits = %d, want 3", st2.CacheHits)
	}
	if st2.FramesDone != 6 {
		t.Fatalf("job2 frames done = %d, want 6", st2.FramesDone)
	}
	if st2.RaysTraced == 0 || st2.RaysTraced >= st1.RaysTraced {
		t.Fatalf("job2 rays = %d, want nonzero and below job1's %d",
			st2.RaysTraced, st1.RaysTraced)
	}
}

// TestCancelStopsRunningJobPromptly cancels mid-run and checks the farm
// driver observes the context quickly instead of rendering to the end.
func TestCancelStopsRunningJobPromptly(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	st, err := s.Submit(JobSpec{Scene: "newton:45", W: 120, H: 160})
	if err != nil {
		t.Fatal(err)
	}
	ch, _, err := s.subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer s.unsubscribe(st.ID, ch)
	// Let at least one frame complete so we cancel a job that is
	// genuinely inside a farm run.
	deadline := time.After(60 * time.Second)
	for progressed := false; !progressed; {
		select {
		case ev := <-ch:
			progressed = ev.Type == "frame"
		case <-deadline:
			t.Fatal("no frame completed before cancel")
		}
	}

	cancelled := time.Now()
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitDone(t, s, st.ID)
	stopDelay := time.Since(cancelled)

	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
	if final.Error == "" {
		t.Fatal("cancelled job reports no error")
	}
	if final.FramesDone >= 45 {
		t.Fatalf("job rendered all %d frames despite cancellation", final.FramesDone)
	}
	// The virtual driver checks the context once per event, so the stop
	// must come within a frame or two of work, far under the full run.
	if stopDelay > 30*time.Second {
		t.Fatalf("cancellation took %s", stopDelay)
	}
}

// TestCancelQueuedJob removes a queued job without running it.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	blocker, err := s.Submit(JobSpec{Scene: "newton:30", W: 120, H: 160})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(JobSpec{Scene: "quickstart", W: 40, H: 40})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want 1", d)
	}
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", d)
	}
	if st.RaysTraced != 0 {
		t.Fatalf("queued-then-cancelled job traced %d rays", st.RaysTraced)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, blocker.ID)
}

// TestPriorityOrdersQueue: with one slot busy, a later high-priority
// submission runs before an earlier low-priority one.
func TestPriorityOrdersQueue(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	blocker, err := s.Submit(JobSpec{Scene: "newton:10", W: 80, H: 60})
	if err != nil {
		t.Fatal(err)
	}
	low, err := s.Submit(JobSpec{Scene: "quickstart", W: 40, H: 40, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	high, err := s.Submit(JobSpec{Scene: "quickstart", W: 48, H: 48, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, blocker.ID)
	lowSt := waitDone(t, s, low.ID)
	highSt := waitDone(t, s, high.ID)
	if !highSt.Started.Before(lowSt.Started) {
		t.Fatalf("high-priority job started %s, after low-priority %s",
			highSt.Started, lowSt.Started)
	}
}

// TestLocalDriver exercises the goroutine-worker farm backend through
// the service, including its context plumbing.
func TestLocalDriver(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	st, err := s.Submit(JobSpec{Scene: "newton:3", W: 48, H: 64, Driver: "local"})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, s, st.ID); st.State != StateDone {
		t.Fatalf("local job: %s (%s)", st.State, st.Error)
	}
	if st.FramesDone != 3 || st.RaysTraced == 0 {
		t.Fatalf("local job frames=%d rays=%d", st.FramesDone, st.RaysTraced)
	}
}

// TestSubmitValidation rejects malformed specs.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	bad := []JobSpec{
		{},                                // empty scene
		{Scene: "no-such-builtin"},        // unknown scene
		{Scene: "sphere {"},               // broken SDL
		{Scene: "newton:4", W: -1, H: 10}, // bad resolution
		{Scene: "newton:4", StartFrame: 9, EndFrame: 12}, // out of range
		{Scene: "newton:4", Scheme: "nope"},              // unknown scheme
		{Scene: "newton:4", Driver: "pvm"},               // unknown driver
		{Scene: "newton:4", ObjSpaceShards: 1},           // 1 shard = use replicated
		{Scene: "newton:4", ObjSpaceShards: -2},          // negative shards
		{Scene: "newton:4", ObjSpaceShards: 1000},        // beyond MaxShards
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
}

// TestObjSpaceJob renders a job with the scene sharded across object-
// space owners: the pixels must match the replicated render of the same
// spec (the cache key deliberately ignores the shard count), the job
// status must surface the forwarding counters, and /metrics must export
// them per shard.
func TestObjSpaceJob(t *testing.T) {
	s := New(Config{})
	defer s.Close()

	ref, err := s.Submit(JobSpec{Scene: "meshgallery:2", W: 40, H: 30})
	if err != nil {
		t.Fatal(err)
	}
	ref = waitDone(t, s, ref.ID)
	if ref.State != StateDone {
		t.Fatalf("replicated job: %s (%s)", ref.State, ref.Error)
	}
	if ref.RaysForwarded != 0 {
		t.Fatalf("replicated job forwarded %d rays", ref.RaysForwarded)
	}

	// Different samples so the sharded job cannot be served from the
	// replicated job's cache entries.
	st, err := s.Submit(JobSpec{Scene: "meshgallery:2", W: 40, H: 30, Samples: 2, ObjSpaceShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	st = waitDone(t, s, st.ID)
	if st.State != StateDone {
		t.Fatalf("sharded job: %s (%s)", st.State, st.Error)
	}
	if st.RaysForwarded == 0 || st.ForwardBytes == 0 {
		t.Fatalf("sharded job recorded no forwarding: %+v", st)
	}
	if st.ObjSpacePeakResidentBytes == 0 {
		t.Error("sharded job recorded no per-shard resident size")
	}

	agg := s.ObjSpaceStats()
	if !agg.Enabled() || agg.RaysForwarded != st.RaysForwarded {
		t.Errorf("service aggregate %+v does not match job %d", agg, st.RaysForwarded)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(mResp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`nowrender_rays_forwarded_total{shard="0"}`,
		`nowrender_rays_forwarded_total{shard="2"}`,
		`nowrender_forward_bytes_total{shard="0"}`,
		`nowrender_objspace_peak_resident_bytes{shard="1"}`,
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestMissingRuns covers the gap-grouping used for overlapping jobs.
func TestMissingRuns(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	st, err := s.Submit(JobSpec{Scene: "newton:6", W: 8, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	s.mu.Lock()
	sc := s.jobs[st.ID].scene
	s.mu.Unlock()

	runs := missingRuns([]bool{true, false, true, true, false, true}, 0, sc)
	want := [][2]int{{0, 1}, {2, 4}, {5, 6}}
	if len(runs) != len(want) {
		t.Fatalf("runs = %v, want %v", runs, want)
	}
	for i := range want {
		if runs[i] != want[i] {
			t.Fatalf("runs = %v, want %v", runs, want)
		}
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data Event
}

// readSSE consumes an SSE stream until the terminal event.
func readSSE(t *testing.T, body *bufio.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var name string
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev := sseEvent{name: name}
			if name != "status" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
					t.Fatalf("bad SSE data %q: %v", line, err)
				}
			}
			events = append(events, ev)
			if name == "done" || name == "failed" || name == "cancelled" {
				return events
			}
		}
	}
}

// TestHTTPEndToEnd drives the full HTTP surface: submit, SSE progress,
// status poll, frame download in each format, metrics.
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Submit.
	body, _ := json.Marshal(JobSpec{Scene: "newton:4", W: 60, H: 80})
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Stream progress until done.
	evResp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := readSSE(t, bufio.NewReader(evResp.Body))
	evResp.Body.Close()
	frames := 0
	for _, ev := range events {
		if ev.name == "frame" {
			frames++
		}
	}
	if frames != 4 {
		t.Fatalf("saw %d frame events, want 4 (events: %+v)", frames, events)
	}
	if last := events[len(events)-1]; last.name != "done" {
		t.Fatalf("last event = %s, want done", last.name)
	}

	// Poll status.
	stResp, err := http.Get(srv.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var polled Status
	if err := json.NewDecoder(stResp.Body).Decode(&polled); err != nil {
		t.Fatal(err)
	}
	stResp.Body.Close()
	if polled.State != StateDone {
		t.Fatalf("polled state = %s", polled.State)
	}

	// Fetch frame 0 as TGA and compare with the in-process framebuffer.
	want, err := s.Frame(st.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"", "?format=ppm", "?format=png"} {
		fResp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/frames/0" + format)
		if err != nil {
			t.Fatal(err)
		}
		if fResp.StatusCode != http.StatusOK {
			t.Fatalf("frame fetch %q status = %d", format, fResp.StatusCode)
		}
		var got *fb.Framebuffer
		switch format {
		case "":
			got, err = tga.Decode(fResp.Body)
		case "?format=ppm":
			got, err = tga.DecodePPM(fResp.Body)
		case "?format=png":
			got, err = tga.DecodePNG(fResp.Body)
		}
		fResp.Body.Close()
		if err != nil {
			t.Fatalf("decode %q: %v", format, err)
		}
		if !bytes.Equal(got.Pix, want.Pix) {
			t.Fatalf("downloaded frame (%q) differs from rendered frame", format)
		}
	}

	// Unknown job and out-of-range frame 404.
	if r, _ := http.Get(srv.URL + "/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", r.StatusCode)
	}
	if r, _ := http.Get(srv.URL + "/jobs/" + st.ID + "/frames/99"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range frame status = %d", r.StatusCode)
	}

	// Resubmit: served from cache; metrics report the hits and depth.
	resp2, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st2 Status
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	final := waitDone(t, s, st2.ID)
	if final.RaysTraced != 0 || final.CacheHits != 4 {
		t.Fatalf("resubmitted job rays=%d hits=%d, want 0 and 4", final.RaysTraced, final.CacheHits)
	}

	mResp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(mResp.Body); err != nil {
		t.Fatal(err)
	}
	mResp.Body.Close()
	text := metrics.String()
	for _, want := range []string{
		"nowrender_cache_hits_total 4",
		"nowrender_queue_depth 0",
		`nowrender_jobs_total{state="done"} 2`,
		"nowrender_frames_rendered_total 4",
		"nowrender_frames_cached_total 4",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// Rays and worker busy-time are live counters; just require presence
	// with a nonzero value.
	if strings.Contains(text, "nowrender_rays_traced_total 0\n") {
		t.Error("metrics report zero rays traced")
	}

	// Cancel endpoint on a finished job is a no-op 200.
	cResp, err := http.Post(srv.URL+"/jobs/"+st.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cResp.Body.Close()
	if cResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel finished job status = %d", cResp.StatusCode)
	}
}

// TestMetricsQueueDepthAccurate pins the queue-depth gauge while jobs
// are actually waiting.
func TestMetricsQueueDepthAccurate(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	blocker, err := s.Submit(JobSpec{Scene: "newton:30", W: 120, H: 160})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "nowrender_queue_depth 2") {
		t.Fatalf("metrics do not report queue depth 2:\n%s", buf.String())
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestSSEOnFinishedJob: a late subscriber gets a terminal status
// snapshot and the stream ends immediately.
func TestSSEOnFinishedJob(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(buf.String(), "event: status") || !strings.Contains(buf.String(), `"state":"done"`) {
		t.Fatalf("late SSE stream = %q", buf.String())
	}
}

// TestQueueFull rejects submissions beyond QueueCap.
func TestQueueFull(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueCap: 1})
	defer s.Close()
	blocker, err := s.Submit(JobSpec{Scene: "newton:30", W: 120, H: 160})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32}); err == nil {
		t.Fatal("third submission accepted with QueueCap 1")
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServiceClose cancels everything and rejects new work.
func TestServiceClose(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	st, err := s.Submit(JobSpec{Scene: "newton:30", W: 120, H: 160})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	got, err := s.JobStatus(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.State.Terminal() {
		t.Fatalf("job state after Close = %s", got.State)
	}
	if _, err := s.Submit(JobSpec{Scene: "quickstart"}); err == nil {
		t.Fatal("submit after Close accepted")
	}
}

// TestNegativeCacheBytesDisablesCaching pins the Config contract:
// CacheBytes < 0 means no frame reuse (framecache itself reads
// budget <= 0 as unlimited, so the service must translate).
func TestNegativeCacheBytesDisablesCaching(t *testing.T) {
	s := New(Config{CacheBytes: -1})
	defer s.Close()
	spec := JobSpec{Scene: "newton:2", W: 40, H: 40}
	for i := 0; i < 2; i++ {
		st, err := s.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		if st = waitDone(t, s, st.ID); st.State != StateDone {
			t.Fatalf("job %d: %s (%s)", i, st.State, st.Error)
		}
		if st.CacheHits != 0 || st.RaysTraced == 0 {
			t.Fatalf("job %d hits=%d rays=%d: caching not disabled", i, st.CacheHits, st.RaysTraced)
		}
	}
	if cs := s.CacheStats(); cs.Entries != 0 {
		t.Fatalf("cache entries = %d, want 0", cs.Entries)
	}
}
