package grid

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Walk traverses the voxels pierced by ray r over parameter range
// [tMin, tMax] in front-to-back order, calling visit for each. visit
// receives the flat voxel index and the parameter interval [tEnter,
// tLeave] the ray spends inside the voxel; returning false stops the
// walk early (used by the tracer once a hit is confirmed inside the
// current voxel).
//
// This is the "modified 3D-DDA" of the paper (§2), i.e. the Amanatides &
// Woo incremental traversal: after initialisation each step is one
// comparison and one addition per axis.
func (g *Grid) Walk(r vm.Ray, tMin, tMax float64, visit func(idx int, tEnter, tLeave float64) bool) {
	iv, hit := g.bounds.IntersectRay(r, tMin, tMax)
	if !hit {
		return
	}
	t := iv.Min
	// Nudge the start point inside the grid to dodge boundary ambiguity.
	startT := t + 1e-12*(1+math.Abs(t))
	p := r.At(startT)
	ix, iy, iz, ok := g.VoxelOf(p)
	if !ok {
		// Ray technically grazes the boundary; clamp the entry point.
		p = p.Max(g.bounds.Min).Min(g.bounds.Max)
		ix, iy, iz, ok = g.VoxelOf(p)
		if !ok {
			return
		}
	}

	// Per-axis stepping state.
	var step [3]int
	var tDelta, tNext [3]float64
	idxCoord := [3]int{ix, iy, iz}
	dims := [3]int{g.nx, g.ny, g.nz}
	for a := 0; a < 3; a++ {
		d := r.Dir.Axis(a)
		switch {
		case d > 0:
			step[a] = 1
			tDelta[a] = g.cellSize.Axis(a) / d
			boundary := g.bounds.Min.Axis(a) + float64(idxCoord[a]+1)*g.cellSize.Axis(a)
			tNext[a] = (boundary - r.Origin.Axis(a)) / d
		case d < 0:
			step[a] = -1
			tDelta[a] = -g.cellSize.Axis(a) / d
			boundary := g.bounds.Min.Axis(a) + float64(idxCoord[a])*g.cellSize.Axis(a)
			tNext[a] = (boundary - r.Origin.Axis(a)) / d
		default:
			step[a] = 0
			tDelta[a] = math.Inf(1)
			tNext[a] = math.Inf(1)
		}
	}

	tEnter := iv.Min
	for {
		// Which axis boundary is crossed first?
		axis := 0
		if tNext[1] < tNext[axis] {
			axis = 1
		}
		if tNext[2] < tNext[axis] {
			axis = 2
		}
		tLeave := math.Min(tNext[axis], iv.Max)
		if !visit(g.Index(idxCoord[0], idxCoord[1], idxCoord[2]), tEnter, tLeave) {
			return
		}
		if tNext[axis] > iv.Max {
			return // ray exits the grid inside this voxel
		}
		tEnter = tNext[axis]
		tNext[axis] += tDelta[axis]
		idxCoord[axis] += step[axis]
		if idxCoord[axis] < 0 || idxCoord[axis] >= dims[axis] {
			return
		}
	}
}

// WalkSegment traverses voxels along the segment from a to b, a
// convenience wrapper used for shadow rays (which have a natural end at
// the light position).
func (g *Grid) WalkSegment(a, b vm.Vec3, visit func(idx int, tEnter, tLeave float64) bool) {
	d := b.Sub(a)
	g.Walk(vm.Ray{Origin: a, Dir: d}, 0, 1, visit)
}

// VoxelsOnRay collects the flat indices of all voxels the ray visits, in
// order. Intended for tests and the coherence engine's registration path.
func (g *Grid) VoxelsOnRay(r vm.Ray, tMin, tMax float64) []int {
	var out []int
	g.Walk(r, tMin, tMax, func(idx int, _, _ float64) bool {
		out = append(out, idx)
		return true
	})
	return out
}
