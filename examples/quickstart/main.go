// Quickstart: build a scene with the public API, render one frame, and
// write it out as TGA (the paper's format) and PPM.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nowrender"
)

func main() {
	// A scene can be built programmatically...
	sc := nowrender.NewScene("hello")
	sc.Camera = nowrender.Camera{
		Pos: nowrender.V(0, 1.5, 6), LookAt: nowrender.V(0, 1, 0),
		Up: nowrender.V(0, 1, 0), FOV: 55,
	}
	sc.Background = nowrender.RGB(0.2, 0.3, 0.5)
	sc.Add("floor", nowrender.NewPlane(nowrender.V(0, 1, 0), 0),
		nowrender.Matte(nowrender.RGB(0.9, 0.9, 0.9)), nil)
	sc.Add("ball", nowrender.NewSphere(nowrender.V(0, 1, 0), 1),
		nowrender.NewMaterial(nowrender.Matte(nowrender.RGB(0.9, 0.2, 0.15)).Pigment,
			nowrender.ChromeFinish()), nil)
	sc.AddLight("key", nowrender.V(4, 7, 6), nowrender.RGB(1, 1, 1))

	img, err := nowrender.RenderFrame(sc, 0, 320, 240)
	if err != nil {
		log.Fatal(err)
	}
	if err := nowrender.WriteTGA("quickstart.tga", img); err != nil {
		log.Fatal(err)
	}
	if err := nowrender.WritePPM("quickstart.ppm", img); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.tga and quickstart.ppm (320x240)")

	// ...or parsed from the POV-style scene description language.
	sdlScene := `
		camera { location <0, 2, 7> look_at <0, 1, 0> fov 50 }
		light_source { <5, 8, 6> color rgb <1, 1, 1> }
		plane { <0, 1, 0>, 0 pigment { checker rgb <1,1,1> rgb <0.1,0.1,0.1> } }
		sphere { <0, 1, 0>, 1
			pigment { color rgb <1, 1, 1> }
			finish { ambient 0.02 diffuse 0.05 specular 0.9 shininess 200
			         reflect 0.1 transmit 0.85 ior 1.5 }
		}
	`
	parsed, err := nowrender.ParseScene("sdl-demo", sdlScene)
	if err != nil {
		log.Fatal(err)
	}
	img2, err := nowrender.RenderFrame(parsed, 0, 320, 240)
	if err != nil {
		log.Fatal(err)
	}
	if err := nowrender.WriteTGA("quickstart-sdl.tga", img2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart-sdl.tga (glass sphere from SDL source)")
}
