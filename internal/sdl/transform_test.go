package sdl

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

const inf = math.MaxFloat64

func TestTranslateModifier(t *testing.T) {
	sc, err := Parse("t", `sphere { <0,0,0>, 1 translate <5, 0, 0> pigment { color rgb <1,0,0> } }`)
	if err != nil {
		t.Fatal(err)
	}
	b := sc.Objects[0].BoundsAt(0)
	if !b.Contains(vm.V(5, 0, 0)) || b.Contains(vm.V(0, 0, 0)) {
		t.Errorf("translated bounds = %v", b)
	}
}

func TestRotateModifier(t *testing.T) {
	// A box along +X rotated 90 degrees about Y ends up along -Z
	// (POV-Ray's left-handed rotation convention matches RotateY here
	// for the right-handed system we use: +X -> -Z under +90 about Y).
	sc, err := Parse("r", `box { <0,-1,-1>, <4,1,1> rotate <0, 90, 0> }`)
	if err != nil {
		t.Fatal(err)
	}
	b := sc.Objects[0].BoundsAt(0)
	// Rotating +90 about Y maps (4,0,0) to (0,0,-4).
	if !b.Pad(1e-9).Contains(vm.V(0, 0, -4)) {
		t.Errorf("rotated bounds = %v, expected to reach z=-4", b)
	}
	if b.Contains(vm.V(4, 0, 0)) {
		t.Errorf("rotated bounds still contain original extent: %v", b)
	}
}

func TestScaleModifier(t *testing.T) {
	sc, err := Parse("s", `sphere { <0,0,0>, 1 scale <2, 1, 1> }`)
	if err != nil {
		t.Fatal(err)
	}
	// The ellipsoid reaches x=2 but not y=2.
	sh := sc.Objects[0].Shape
	if _, ok := sh.Intersect(vm.Ray{Origin: vm.V(1.9, 0, -5), Dir: vm.V(0, 0, 1)}, 0, inf); !ok {
		t.Error("scaled sphere does not extend to x=1.9")
	}
	if _, ok := sh.Intersect(vm.Ray{Origin: vm.V(0, 1.5, -5), Dir: vm.V(0, 0, 1)}, 0, inf); ok {
		t.Error("scaled sphere extends to y=1.5 but should not")
	}
}

func TestUniformScaleNumber(t *testing.T) {
	sc, err := Parse("s", `sphere { <0,0,0>, 1 scale 3 }`)
	if err != nil {
		t.Fatal(err)
	}
	b := sc.Objects[0].BoundsAt(0)
	if !b.Pad(1e-9).Contains(vm.V(3, 0, 0)) || !b.Pad(1e-9).Contains(vm.V(0, 3, 0)) {
		t.Errorf("uniform scale bounds = %v", b)
	}
}

func TestTransformOrderMatters(t *testing.T) {
	// translate then rotate != rotate then translate.
	a, err := Parse("a", `sphere { <0,0,0>, 0.5 translate <2,0,0> rotate <0,0,90> }`)
	if err != nil {
		t.Fatal(err)
	}
	bScene, err := Parse("b", `sphere { <0,0,0>, 0.5 rotate <0,0,90> translate <2,0,0> }`)
	if err != nil {
		t.Fatal(err)
	}
	// a: sphere at (2,0,0) rotated +90 about Z -> centre (0,2,0).
	ba := a.Objects[0].BoundsAt(0)
	if !ba.Contains(vm.V(0, 2, 0)) {
		t.Errorf("translate-then-rotate bounds = %v, want centre (0,2,0)", ba)
	}
	// b: rotation of a centred sphere is a no-op; then translate -> (2,0,0).
	bb := bScene.Objects[0].BoundsAt(0)
	if !bb.Contains(vm.V(2, 0, 0)) {
		t.Errorf("rotate-then-translate bounds = %v, want centre (2,0,0)", bb)
	}
}

func TestScaleZeroRejected(t *testing.T) {
	if _, err := Parse("z", `sphere { <0,0,0>, 1 scale <0, 1, 1> }`); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestConePrimitive(t *testing.T) {
	sc, err := Parse("c", `cone { <0,0,0>, 1, <0,2,0>, 0.25 pigment { color rgb <1,1,0> } }`)
	if err != nil {
		t.Fatal(err)
	}
	sh := sc.Objects[0].Shape
	// Side hit at half height where radius is 0.625.
	h, ok := sh.Intersect(vm.Ray{Origin: vm.V(-5, 1, 0), Dir: vm.V(1, 0, 0)}, 0, inf)
	if !ok {
		t.Fatal("missed cone")
	}
	if math.Abs(h.Point.X-(-0.625)) > 1e-9 {
		t.Errorf("cone side at x=%v, want -0.625", h.Point.X)
	}
}

func TestOpenConePrimitive(t *testing.T) {
	sc, err := Parse("c", `cone { <0,0,0>, 1, <0,2,0>, 0.25 open }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Objects[0].Shape.Intersect(
		vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}, 0, inf); ok {
		t.Error("open cone axis ray hit a cap")
	}
}

func TestTransformedObjectRendersInCoherence(t *testing.T) {
	// A transformed, animated object must still work through the full
	// pipeline (Transformed wrapping composes with animation tracks).
	src := `
camera { location <0,2,8> look_at <0,1,0> }
light_source { <4,8,6> color rgb <1,1,1> }
plane { <0,1,0>, 0 }
box { <-0.5,-0.5,-0.5>, <0.5,0.5,0.5>
  rotate <0, 45, 0>
  translate <0, 1, 0>
  animate { keyframe 0 <0,0,0> keyframe 4 <2,0,0> }
  pigment { color rgb <1,0,0> }
}
global_settings { frames 5 }
`
	sc, err := Parse("x", src)
	if err != nil {
		t.Fatal(err)
	}
	obj := sc.Objects[1]
	if !obj.MovedBetween(0, 1) {
		t.Error("animated transformed box did not move")
	}
	b0 := obj.BoundsAt(0)
	b4 := obj.BoundsAt(4)
	if !b4.Contains(vm.V(2, 1, 0)) || b0.Contains(vm.V(2, 1, 0)) {
		t.Errorf("animated bounds: b0=%v b4=%v", b0, b4)
	}
}

func TestTorusPrimitive(t *testing.T) {
	sc, err := Parse("t", `
torus { 2, 0.5
  rotate <90, 0, 0>
  translate <0, 2, 0>
  pigment { color rgb <0.9, 0.7, 0.2> }
}`)
	if err != nil {
		t.Fatal(err)
	}
	sh := sc.Objects[0].Shape
	// The upright ring at height 2: a ray along +Z through (2, 2).
	h, ok := sh.Intersect(vm.Ray{Origin: vm.V(2, 2, -5), Dir: vm.V(0, 0, 1)}, 0, inf)
	if !ok {
		t.Fatal("missed SDL torus")
	}
	if math.Abs(h.T-4.5) > 1e-6 {
		t.Errorf("T = %v, want 4.5", h.T)
	}
}

func TestTorusBadRadii(t *testing.T) {
	if _, err := Parse("t", `torus { 0, 0.5 }`); err == nil {
		t.Error("zero major radius accepted")
	}
	if _, err := Parse("t", `torus { 2, -1 }`); err == nil {
		t.Error("negative minor radius accepted")
	}
}
