package vecmath

import "math"

// SolveQuadratic returns the real roots of a*t² + b*t + c = 0 in ascending
// order. n is the number of roots (0, 1 or 2). The numerically stable
// "citardauq" formulation avoids catastrophic cancellation when b² >> 4ac,
// which matters for grazing sphere/cylinder hits.
func SolveQuadratic(a, b, c float64) (t0, t1 float64, n int) {
	if math.Abs(a) < Eps {
		if math.Abs(b) < Eps {
			return 0, 0, 0
		}
		return -c / b, 0, 1
	}
	disc := b*b - 4*a*c
	if disc < 0 {
		return 0, 0, 0
	}
	if disc == 0 {
		return -b / (2 * a), 0, 1
	}
	sq := math.Sqrt(disc)
	var q float64
	if b >= 0 {
		q = -0.5 * (b + sq)
	} else {
		q = -0.5 * (b - sq)
	}
	t0, t1 = q/a, c/q
	if t0 > t1 {
		t0, t1 = t1, t0
	}
	return t0, t1, 2
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*), used wherever the renderer needs reproducible jitter
// (supersampling, workload generators). It deliberately avoids math/rand
// global state so parallel workers never contend.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since xorshift requires non-zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("vecmath: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// InRange returns a uniform value in [lo,hi).
func (r *RNG) InRange(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}
