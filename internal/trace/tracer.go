// Package trace implements the recursive Whitted ray tracer at the core
// of the render pipeline: grid-accelerated intersection, Phong local
// shading with shadow rays, and recursive reflection/refraction, after
// the intensity model the paper quotes in §3:
//
//	I = I_local + k_rg*I_reflected + k_tg*I_transmitted
//
// # Concurrency
//
// A FrameTracer is split into two parts. The frame view — resolved
// geometry, the voxel grid, camera and shading parameters — is built
// once by New and is strictly read-only afterwards, so any number of
// goroutines may share it. All mutable render state (the mailbox ray
// stamps, the ray counters, the observer hook) lives in a Worker; each
// rendering goroutine owns one, obtained from NewWorker. The FrameTracer
// embeds a default Worker so single-goroutine callers keep the classic
// API: ft.TracePixel, ft.RenderRegion and ft.Counters work exactly as
// before, but are not safe for concurrent use — concurrent renderers
// call NewWorker per goroutine (see RenderRegionParallel and the
// coherence engine's tile pool).
package trace

import (
	"fmt"
	"math"

	"nowrender/internal/geom"
	"nowrender/internal/grid"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// RayObserver receives every ray a worker casts, with the parameter of
// its nearest hit (math.Inf(1) for rays that escape). The coherence
// engine implements this to register pixels on the voxels each ray
// traverses; a nil observer costs nothing. Observers are per-Worker:
// each rendering goroutine notifies only its own observer, so observer
// implementations need no internal locking.
type RayObserver interface {
	ObserveRay(r vm.Ray, tHit float64)
}

// Intersector finds the nearest hit along a ray. A Worker's builtin
// intersector is the tracer's shared voxel grid plus its unbounded list;
// NewWorkerWith swaps in an alternative — the object-space cluster routes
// rays across spatial shards through one — without touching shading or
// recursion, which is what keeps alternative intersectors byte-identical
// whenever they return the same nearest hits. Like a Worker, an
// Intersector is single-owner scratch: one goroutine intersects with it.
type Intersector interface {
	Intersect(r vm.Ray, tMin, tMax float64) (geom.Hit, *scene.ResolvedObject, bool)
}

// Options configure a FrameTracer.
type Options struct {
	// GridRes overrides the automatic voxel resolution when positive
	// (the ablation benches sweep this).
	GridRes int
	// Observer, when non-nil, is notified of every ray the tracer's
	// default worker casts. Workers created with NewWorker carry their
	// own observers.
	Observer RayObserver
	// SamplesPerPixel enables jittered supersampling when > 1. The
	// paper's runs use 1 sample (coherence needs deterministic pixels,
	// so jitter is seeded per pixel).
	SamplesPerPixel int
	// AAThreshold enables adaptive antialiasing when positive, in the
	// POV-Ray style the paper's "image quality set to high" implies: a
	// pixel whose corner samples contrast by more than the threshold
	// (max channel difference in [0,1]) receives AASamples extra
	// jittered samples. Deterministic per pixel.
	AAThreshold float64
	// AASamples is the extra sample count for high-contrast pixels
	// (default 8).
	AASamples int
	// MaxDepth overrides the scene's recursion bound when positive.
	MaxDepth int
}

// FrameTracer renders a single frame of a scene. Everything outside the
// embedded Worker is immutable after New and shared by all workers.
type FrameTracer struct {
	Scene *scene.Scene
	Frame int
	Cam   scene.Camera

	grid      *grid.Grid
	objs      []scene.ResolvedObject
	gridIDs   []int32 // object indices placed in the grid
	unbounded []int32 // object indices tested on every ray (planes)
	maxDepth  int
	samples   int
	aaThresh  float64
	aaSamples int

	// Worker is the tracer's own scratch for the single-goroutine
	// compatibility path; its methods and Counters field promote to the
	// FrameTracer.
	Worker
}

// New builds a tracer for one frame, resolving animated transforms and
// constructing the voxel grid. The grid is populated here and never
// mutated again: after New returns it is safe for concurrent traversal.
func New(sc *scene.Scene, frame int, opts Options) (*FrameTracer, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if frame < 0 || frame >= sc.Frames {
		return nil, fmt.Errorf("trace: frame %d out of range [0,%d)", frame, sc.Frames)
	}
	ft := &FrameTracer{
		Scene:    sc,
		Frame:    frame,
		Cam:      sc.CameraAt(frame),
		objs:     sc.ResolveFrame(frame),
		maxDepth: sc.MaxDepth,
		samples:  1,
	}
	if opts.MaxDepth > 0 {
		ft.maxDepth = opts.MaxDepth
	}
	if opts.SamplesPerPixel > 1 {
		ft.samples = opts.SamplesPerPixel
	}
	ft.aaThresh = opts.AAThreshold
	ft.aaSamples = opts.AASamples
	if ft.aaSamples <= 0 {
		ft.aaSamples = 8
	}
	bounds := sc.BoundsAt(frame)
	var nx, ny, nz int
	if opts.GridRes > 0 {
		nx, ny, nz = opts.GridRes, opts.GridRes, opts.GridRes
	} else {
		nx, ny, nz = grid.AutoResolution(bounds, len(ft.objs))
	}
	g, err := grid.New(bounds, nx, ny, nz)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	ft.grid = g
	for i, ro := range ft.objs {
		id := int32(i)
		// Primitives whose bounds blow past the grid (planes) are kept
		// on the per-ray list so hits outside the grid region are not
		// lost.
		if ro.Bounds.Size().MaxComponent() >= geom.HugeExtent {
			ft.unbounded = append(ft.unbounded, id)
			continue
		}
		g.Insert(id, ro.Bounds)
		ft.gridIDs = append(ft.gridIDs, id)
	}
	ft.Worker = Worker{
		ft:        ft,
		observer:  opts.Observer,
		mailboxes: make([]uint64, len(ft.objs)),
	}
	return ft, nil
}

// NewView builds a FrameTracer that carries only the frame's camera and
// shading parameters — no geometry is resolved and no grid is built.
// Rendering through a view requires workers created with NewWorkerWith,
// whose intersector supplies all geometry (the object-space cluster's
// frame owner is the caller: it shades and recurses locally while the
// shards own the scene).
func NewView(sc *scene.Scene, frame int, opts Options) (*FrameTracer, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if frame < 0 || frame >= sc.Frames {
		return nil, fmt.Errorf("trace: frame %d out of range [0,%d)", frame, sc.Frames)
	}
	ft := &FrameTracer{
		Scene:    sc,
		Frame:    frame,
		Cam:      sc.CameraAt(frame),
		maxDepth: sc.MaxDepth,
		samples:  1,
	}
	if opts.MaxDepth > 0 {
		ft.maxDepth = opts.MaxDepth
	}
	if opts.SamplesPerPixel > 1 {
		ft.samples = opts.SamplesPerPixel
	}
	ft.aaThresh = opts.AAThreshold
	ft.aaSamples = opts.AASamples
	if ft.aaSamples <= 0 {
		ft.aaSamples = 8
	}
	ft.Worker = Worker{ft: ft, observer: opts.Observer}
	return ft, nil
}

// NewWorker returns an independent rendering worker over the tracer's
// shared frame view, with its own mailboxes, ray counters and observer
// (nil for none). One worker per goroutine; workers may render
// concurrently with each other and with the tracer's default worker.
func (ft *FrameTracer) NewWorker(obs RayObserver) *Worker {
	return &Worker{
		ft:        ft,
		observer:  obs,
		mailboxes: make([]uint64, len(ft.objs)),
	}
}

// NewWorkerWith is NewWorker with the builtin grid intersector replaced:
// the worker's every nearest-hit query — primary, secondary and
// shadow-march alike — goes through ix instead of the tracer's grid.
// Shading, recursion, jitter and ray accounting are unchanged, so two
// workers whose intersectors return the same hits produce byte-identical
// pixels and counters.
func (ft *FrameTracer) NewWorkerWith(obs RayObserver, ix Intersector) *Worker {
	return &Worker{
		ft:        ft,
		observer:  obs,
		ix:        ix,
		mailboxes: make([]uint64, len(ft.objs)),
	}
}

// Grid exposes the frame's voxel grid (the coherence engine shares it).
// Read-only after New.
func (ft *FrameTracer) Grid() *grid.Grid { return ft.grid }

// Objects exposes the resolved per-frame geometry. Read-only after New.
func (ft *FrameTracer) Objects() []scene.ResolvedObject { return ft.objs }

// CameraRay returns the primary ray through the centre of pixel (px, py)
// of a w x h image, with sub-pixel offsets (jx, jy) in [0,1). Pure
// function of the immutable camera; safe for concurrent use.
func (ft *FrameTracer) CameraRay(px, py, w, h int, jx, jy float64) vm.Ray {
	cam := ft.Cam
	fwd := cam.LookAt.Sub(cam.Pos).Norm()
	right := fwd.Cross(cam.Up).Norm()
	up := right.Cross(fwd)
	aspect := float64(h) / float64(w)
	halfW := math.Tan(vm.Radians(cam.FOV) / 2)
	halfH := halfW * aspect
	// NDC in [-1,1], y flipped so row 0 is the top of the image.
	u := (2*(float64(px)+jx)/float64(w) - 1) * halfW
	v := (1 - 2*(float64(py)+jy)/float64(h)) * halfH
	dir := fwd.Add(right.Scale(u)).Add(up.Scale(v)).Norm()
	return vm.Ray{Origin: cam.Pos, Dir: dir, Kind: vm.CameraRay}
}
