package geom

import (
	"math"

	vm "nowrender/internal/vecmath"
)

// Sphere is a sphere with a centre and radius.
type Sphere struct {
	Center vm.Vec3
	Radius float64
}

// NewSphere returns a sphere. Radius must be positive.
func NewSphere(center vm.Vec3, radius float64) *Sphere {
	return &Sphere{Center: center, Radius: radius}
}

// Intersect implements Shape.
func (s *Sphere) Intersect(r vm.Ray, tMin, tMax float64) (Hit, bool) {
	oc := r.Origin.Sub(s.Center)
	a := r.Dir.Dot(r.Dir)
	b := 2 * oc.Dot(r.Dir)
	c := oc.Dot(oc) - s.Radius*s.Radius
	t0, t1, n := vm.SolveQuadratic(a, b, c)
	if n == 0 {
		return Hit{}, false
	}
	t := t0
	if t <= tMin || t >= tMax {
		t = t1
		if n < 2 || t <= tMin || t >= tMax {
			return Hit{}, false
		}
	}
	p := r.At(t)
	outward := p.Sub(s.Center).Scale(1 / s.Radius)
	normal, inside := faceForward(outward, r.Dir)
	// Spherical parameterisation for textures.
	u := 0.5 + math.Atan2(outward.Z, outward.X)/(2*math.Pi)
	v := 0.5 - math.Asin(vm.Clamp(outward.Y, -1, 1))/math.Pi
	return Hit{T: t, Point: p, Normal: normal, Inside: inside, U: u, V: v}, true
}

// Bounds implements Shape.
func (s *Sphere) Bounds() vm.AABB {
	r := vm.Splat(s.Radius)
	return vm.AABB{Min: s.Center.Sub(r), Max: s.Center.Add(r)}
}
