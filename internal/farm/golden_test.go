package farm

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/partition"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden frame hashes from the current renderer")

const goldenFrames = 6

// goldenPath is the committed record of what the test animation looks
// like, as one SHA-256 per frame. Every farm mode under every scheme must
// reproduce these bytes exactly — the golden file is the cross-session
// anchor that catches a renderer change the purely relative tests
// (farm-vs-reference in the same binary) cannot see.
const goldenPath = "testdata/golden/farm-scene-40x32.sha256"

func frameHash(img *fb.Framebuffer) string {
	sum := sha256.Sum256(extractRegion(img, fb.NewRect(0, 0, fw, fh)))
	return hex.EncodeToString(sum[:])
}

func hashFrames(frames []*fb.Framebuffer) []string {
	out := make([]string, len(frames))
	for i, img := range frames {
		out[i] = frameHash(img)
	}
	return out
}

func readGolden(t *testing.T) []string {
	t.Helper()
	f, err := os.Open(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (run `go test -run Golden -update` to create it): %v", err)
	}
	defer f.Close()
	var want []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("golden line %q malformed", line)
		}
		want = append(want, fields[1])
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want
}

func writeGolden(t *testing.T, hashes []string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# SHA-256 of packed RGB rows, farmScene(%d) at %dx%d, one line per frame.\n",
		goldenFrames, fw, fh)
	for i, h := range hashes {
		fmt.Fprintf(&b, "%d %s\n", i, h)
	}
	if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenImages pins the rendered output across sessions: the plain
// tracer and every farm driver/scheme/coherence combination must hash to
// the committed goldens. A legitimate renderer change regenerates them
// with `go test ./internal/farm -run Golden -update`.
func TestGoldenImages(t *testing.T) {
	sc := farmScene(goldenFrames)
	ref := referenceFrames(t, sc)
	refHashes := hashFrames(ref)

	if *updateGolden {
		writeGolden(t, refHashes)
		t.Logf("golden file %s rewritten (%d frames)", goldenPath, len(refHashes))
	}
	want := readGolden(t)
	if len(want) != goldenFrames {
		t.Fatalf("golden file has %d hashes, want %d", len(want), goldenFrames)
	}
	for i, h := range refHashes {
		if h != want[i] {
			t.Errorf("reference render frame %d hash %s != golden %s", i, h[:12], want[i][:12])
		}
	}
	if t.Failed() {
		t.Fatal("reference drifted from goldens; if intentional, rerun with -update")
	}

	schemes := []partition.Scheme{
		partition.SequenceDivision{Adaptive: true},
		partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		partition.HybridDivision{BlockW: 20, BlockH: 16, SubseqLen: 3},
	}
	for _, coh := range []bool{false, true} {
		for _, sch := range schemes {
			label := fmt.Sprintf("virtual/%s/coherence=%v", sch.Name(), coh)
			res, err := RenderVirtual(Config{Scene: sc, W: fw, H: fh, Scheme: sch, Coherence: coh})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for i, h := range hashFrames(res.Frames) {
				if h != want[i] {
					t.Errorf("%s: frame %d hash mismatch", label, i)
				}
			}
		}
	}
	// One local-driver pass over the full wire protocol.
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 3,
		Scheme: partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hashFrames(res.Frames) {
		if h != want[i] {
			t.Errorf("local driver: frame %d hash mismatch", i)
		}
	}
}
