package msg

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

// TCP failure-path tests: a physical NOW loses workstations mid-run (the
// paper's PVM masters relied on pvm_notify for exactly this), so the
// transport must turn every abrupt peer failure into a prompt error —
// never a hang, never a panic.

// tcpPair returns two connected tcpConns plus the raw server-side
// net.Conn for byte-level fault injection.
func tcpPair(t *testing.T) (client Conn, server Conn, rawServer net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := l.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- nc
	}()
	cc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc, ok := <-accepted
	if !ok {
		cc.Close()
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cc.Close(); sc.Close() })
	return NewTCPConn(cc), NewTCPConn(sc), sc
}

// recvResult runs Recv in a goroutine so tests can bound how long it
// blocks.
func recvResult(c Conn) <-chan error {
	ch := make(chan error, 1)
	go func() {
		_, err := c.Recv()
		ch <- err
	}()
	return ch
}

func waitErr(t *testing.T, ch <-chan error, what string) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: Recv still blocked after 5s", what)
		return nil
	}
}

func TestTCPDialDeadAddress(t *testing.T) {
	// Grab a port that is certainly not listening by binding and
	// immediately releasing it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatalf("Dial(%s) to a dead address succeeded", addr)
	}
}

func TestTCPPeerClosesMidMessage(t *testing.T) {
	client, _, raw := tcpPair(t)
	// Write a frame header promising 100 bytes, deliver only 10, then
	// close: the reader is mid-io.ReadFull on the body.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	errCh := recvResult(client)
	time.Sleep(20 * time.Millisecond) // let Recv reach the body read
	raw.Close()
	err := waitErr(t, errCh, "peer closed mid-message")
	if err == nil {
		t.Fatal("Recv returned a message from a truncated frame")
	}
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv error = %v, want ErrClosed", err)
	}
}

func TestTCPPeerClosesBetweenMessages(t *testing.T) {
	client, server, raw := tcpPair(t)
	// One complete message must still be delivered...
	if err := server.Send(Message{Tag: 7, From: "srv", Data: []byte("ok")}); err != nil {
		t.Fatal(err)
	}
	m, err := client.Recv()
	if err != nil || m.Tag != 7 || string(m.Data) != "ok" {
		t.Fatalf("Recv = %+v, %v", m, err)
	}
	// ...and a clean close afterwards surfaces as ErrClosed, not a hang.
	raw.Close()
	if err := waitErr(t, recvResult(client), "peer closed between messages"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv error = %v, want ErrClosed", err)
	}
}

func TestTCPSendAfterPeerClose(t *testing.T) {
	client, _, raw := tcpPair(t)
	raw.Close()
	// The local kernel may buffer a few writes before noticing the
	// reset; keep sending until the failure surfaces.
	deadline := time.After(5 * time.Second)
	payload := Message{Tag: 1, Data: make([]byte, 1<<16)}
	for {
		if err := client.Send(payload); err != nil {
			return // errored, not hung or panicked
		}
		select {
		case <-deadline:
			t.Fatal("Send kept succeeding 5s after peer close")
		default:
		}
	}
}

func TestTCPSendAfterLocalClose(t *testing.T) {
	client, _, _ := tcpPair(t)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Send(Message{Tag: 1, Data: []byte("x")}); err == nil {
		t.Fatal("Send after local Close succeeded")
	}
}

func TestTCPLocalCloseUnblocksRecv(t *testing.T) {
	client, _, _ := tcpPair(t)
	errCh := recvResult(client)
	time.Sleep(20 * time.Millisecond) // let Recv block on the socket
	client.Close()
	if err := waitErr(t, errCh, "local close"); err == nil {
		t.Fatal("Recv returned a message after local Close")
	}
}
