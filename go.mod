module nowrender

go 1.22
