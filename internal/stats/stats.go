// Package stats collects the counters and timings the benchmark harness
// reports: ray counts by class (Table 1 row 1), per-frame render times,
// and worker utilisation. Counter types are plain values updated without
// synchronisation: each counter is scratch-local to exactly one goroutine
// while it accumulates — a trace.Worker, a farm worker, a tile renderer —
// and owners' copies are combined with Merge at a barrier (the frame
// barrier for intra-frame tiles, result messages for the farm), mirroring
// how the paper's PVM slaves reported statistics back to the master.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"time"

	vm "nowrender/internal/vecmath"
)

// RayCounters tallies rays by kind. Not synchronised: a RayCounters is
// owned by one goroutine while counting (each parallel tile worker keeps
// its own), and owners are merged with Merge at a barrier, so totals
// never double count and are identical for every thread count.
type RayCounters struct {
	ByKind [vm.NumRayKinds]uint64
}

// Add records n rays of the given kind.
func (c *RayCounters) Add(kind vm.RayKind, n uint64) {
	c.ByKind[kind] += n
}

// Total returns the total number of rays.
func (c *RayCounters) Total() uint64 {
	var t uint64
	for _, v := range c.ByKind {
		t += v
	}
	return t
}

// Merge adds another counter set into c.
func (c *RayCounters) Merge(o RayCounters) {
	for i, v := range o.ByKind {
		c.ByKind[i] += v
	}
}

// String implements fmt.Stringer.
func (c *RayCounters) String() string {
	parts := make([]string, 0, vm.NumRayKinds+1)
	for k := 0; k < vm.NumRayKinds; k++ {
		parts = append(parts, fmt.Sprintf("%s=%d", vm.RayKind(k), c.ByKind[k]))
	}
	parts = append(parts, fmt.Sprintf("total=%d", c.Total()))
	return strings.Join(parts, " ")
}

// FrameStats records one frame's outcome.
type FrameStats struct {
	Frame int
	// Rendered is the number of pixels actually traced; Copied the
	// number reused from the previous frame by the coherence engine.
	Rendered, Copied int
	Rays             RayCounters
	// Elapsed is the time spent producing the frame. Depending on the
	// execution mode this is wall-clock or virtual NOW time.
	Elapsed time.Duration
	// CoherenceOverhead is the extra time spent on coherence
	// bookkeeping (registration + change detection), included in
	// Elapsed. The paper reports this as ~12% on the first frame.
	CoherenceOverhead time.Duration
}

// RunStats aggregates an animation run.
type RunStats struct {
	Frames []FrameStats
	// Total is the end-to-end animation time including file writing; in
	// parallel runs this is the master's elapsed time, not the sum of
	// worker times.
	Total time.Duration
}

// AddFrame appends a frame record, keeping frames sorted by frame index
// (parallel workers report out of order).
func (r *RunStats) AddFrame(f FrameStats) {
	r.Frames = append(r.Frames, f)
	// Insertion keeps the common in-order case O(1).
	for i := len(r.Frames) - 1; i > 0 && r.Frames[i].Frame < r.Frames[i-1].Frame; i-- {
		r.Frames[i], r.Frames[i-1] = r.Frames[i-1], r.Frames[i]
	}
}

// TotalRays sums ray counters over all frames.
func (r *RunStats) TotalRays() RayCounters {
	var c RayCounters
	for _, f := range r.Frames {
		c.Merge(f.Rays)
	}
	return c
}

// FirstFrame returns the stats of the lowest-numbered frame and false if
// there are none.
func (r *RunStats) FirstFrame() (FrameStats, bool) {
	if len(r.Frames) == 0 {
		return FrameStats{}, false
	}
	return r.Frames[0], true
}

// AverageFrameTime returns the mean per-frame elapsed time.
func (r *RunStats) AverageFrameTime() time.Duration {
	if len(r.Frames) == 0 {
		return 0
	}
	var sum time.Duration
	for _, f := range r.Frames {
		sum += f.Elapsed
	}
	return sum / time.Duration(len(r.Frames))
}

// SumFrameTime returns the sum of per-frame times (single-processor
// "total frame time" in Table 1; for parallel runs use Total).
func (r *RunStats) SumFrameTime() time.Duration {
	var sum time.Duration
	for _, f := range r.Frames {
		sum += f.Elapsed
	}
	return sum
}

// WorkerStats records one worker's contribution to a parallel run.
type WorkerStats struct {
	Worker     string
	TasksDone  int
	PixelsDone int
	Busy       time.Duration
	Rays       RayCounters
}

// Utilisation returns Busy as a fraction of total, guarding total == 0.
func (w WorkerStats) Utilisation(total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return float64(w.Busy) / float64(total)
}

// FaultCounters tallies the failure-handling events of a chaos-hardened
// farm run: workers retired, frames requeued or quarantined, duplicate
// and malformed messages absorbed. Like RayCounters they are plain
// values owned by one goroutine (the master loop) and combined with
// Merge when runs are aggregated (RenderAuto, the service).
type FaultCounters struct {
	// WorkersLost counts workers retired for any reason: connection
	// failure (TagDown), graceful departure (TagBye), heartbeat or
	// stall timeout, or a malformed message.
	WorkersLost uint64
	// HeartbeatTimeouts counts workers retired because they stayed
	// silent past the liveness deadline.
	HeartbeatTimeouts uint64
	// StallTimeouts counts workers retired because they held a task
	// without delivering progress past the stall deadline.
	StallTimeouts uint64
	// MalformedMessages counts undecodable or protocol-violating
	// messages absorbed by retiring their sender.
	MalformedMessages uint64
	// DuplicatesDropped counts frame results discarded because the same
	// (frame, region) was already delivered (speculation, retries).
	DuplicatesDropped uint64
	// FramesRequeued counts frame renderings put back on the queue after
	// their worker was lost or their result went missing.
	FramesRequeued uint64
	// FramesQuarantined counts frame regions the master rendered locally
	// after the frame exhausted its retry budget.
	FramesQuarantined uint64
	// SpeculativeTasks counts straggler ranges re-issued to idle workers
	// near the end of the run.
	SpeculativeTasks uint64
	// PingsSent and PongsReceived count heartbeat traffic.
	PingsSent, PongsReceived uint64
}

// Merge adds another counter set into c.
func (c *FaultCounters) Merge(o FaultCounters) {
	c.WorkersLost += o.WorkersLost
	c.HeartbeatTimeouts += o.HeartbeatTimeouts
	c.StallTimeouts += o.StallTimeouts
	c.MalformedMessages += o.MalformedMessages
	c.DuplicatesDropped += o.DuplicatesDropped
	c.FramesRequeued += o.FramesRequeued
	c.FramesQuarantined += o.FramesQuarantined
	c.SpeculativeTasks += o.SpeculativeTasks
	c.PingsSent += o.PingsSent
	c.PongsReceived += o.PongsReceived
}

// Any reports whether any fault-handling event was recorded (heartbeat
// traffic alone does not count: pings flow on healthy runs too).
func (c FaultCounters) Any() bool {
	return c.WorkersLost+c.HeartbeatTimeouts+c.StallTimeouts+
		c.MalformedMessages+c.DuplicatesDropped+
		c.FramesRequeued+c.FramesQuarantined+c.SpeculativeTasks > 0
}

// String implements fmt.Stringer, listing only nonzero counters.
func (c FaultCounters) String() string {
	parts := []string{}
	add := func(name string, v uint64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("lost", c.WorkersLost)
	add("heartbeat", c.HeartbeatTimeouts)
	add("stalled", c.StallTimeouts)
	add("malformed", c.MalformedMessages)
	add("dup", c.DuplicatesDropped)
	add("requeued", c.FramesRequeued)
	add("quarantined", c.FramesQuarantined)
	add("speculative", c.SpeculativeTasks)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// WireStats tallies the farm data path's frame-result traffic: how many
// results arrived as full key-frames versus dirty-span deltas, how many
// payloads were flate-compressed, and how the bytes actually shipped
// compare to the raw pixel bytes they represent. Like FaultCounters
// they are owned by one goroutine (the master loop) and combined with
// Merge when runs are aggregated.
type WireStats struct {
	// FramesFull counts frame results carrying the region's full pixels
	// (key-frames, plain-path results, and size-guard fallbacks).
	FramesFull uint64
	// FramesDelta counts frame results encoded as dirty-span deltas over
	// the previous frame.
	FramesDelta uint64
	// FramesCompressed counts results whose payload was flate-compressed
	// (full or delta); FramesSpan those that used the span codec.
	FramesCompressed uint64
	FramesSpan       uint64
	// WireBytesByEnc breaks WireBytes down by payload encoding, indexed
	// raw=0, flate=1, span=2 (mirroring wire.Enc*; stats cannot import
	// wire, which imports stats). Per-codec byte counters are what the
	// adaptive compression decision is judged by.
	WireBytesByEnc [3]uint64
	// DeltaBaseMisses counts deltas discarded because their base frame
	// never arrived (its result was lost in transit); the frame is
	// re-rendered by the usual requeue path.
	DeltaBaseMisses uint64
	// RawBytes is the full-region RGB byte count the delivered results
	// represent; WireBytes is what actually crossed the wire (sealed
	// payload, spans and counters included).
	RawBytes, WireBytes uint64
	// BaseMissByWorker breaks DeltaBaseMisses down by worker name, so a
	// flaky link or a worker that keeps losing its delta chain is
	// attributable. Nil until the first miss.
	BaseMissByWorker map[string]uint64
	// MasterIngressBytes is the slice of WireBytes that entered the
	// master itself. On the legacy master-routed path it equals
	// WireBytes; with the distributed framebuffer it counts only the
	// small control acks and sink confirmations, while the pixel
	// payloads (SinkIngressBytes) land at the compositor sinks.
	MasterIngressBytes uint64
	// SinkIngressBytes counts frame-result payload bytes received by
	// compositor sinks (zero on the legacy path).
	SinkIngressBytes uint64
	// FramesAcked counts DFB control acks: frame results a worker
	// shipped to a sink and acknowledged to the master.
	FramesAcked uint64
}

// CountEncoding tallies one frame result's payload encoding (raw=0,
// flate=1, span=2, mirroring wire.Enc*) and the wire bytes it shipped.
func (c *WireStats) CountEncoding(enc int, wireBytes uint64) {
	if enc >= 0 && enc < len(c.WireBytesByEnc) {
		c.WireBytesByEnc[enc] += wireBytes
	}
	switch enc {
	case 1:
		c.FramesCompressed++
	case 2:
		c.FramesSpan++
	}
}

// AddBaseMiss counts one discarded delta, attributed to a worker.
func (c *WireStats) AddBaseMiss(worker string) {
	c.DeltaBaseMisses++
	if c.BaseMissByWorker == nil {
		c.BaseMissByWorker = make(map[string]uint64)
	}
	c.BaseMissByWorker[worker]++
}

// Merge adds another counter set into c.
func (c *WireStats) Merge(o WireStats) {
	c.FramesFull += o.FramesFull
	c.FramesDelta += o.FramesDelta
	c.FramesCompressed += o.FramesCompressed
	c.FramesSpan += o.FramesSpan
	for i := range c.WireBytesByEnc {
		c.WireBytesByEnc[i] += o.WireBytesByEnc[i]
	}
	c.DeltaBaseMisses += o.DeltaBaseMisses
	c.RawBytes += o.RawBytes
	c.WireBytes += o.WireBytes
	c.MasterIngressBytes += o.MasterIngressBytes
	c.SinkIngressBytes += o.SinkIngressBytes
	c.FramesAcked += o.FramesAcked
	if len(o.BaseMissByWorker) > 0 {
		if c.BaseMissByWorker == nil {
			c.BaseMissByWorker = make(map[string]uint64, len(o.BaseMissByWorker))
		}
		for w, n := range o.BaseMissByWorker {
			c.BaseMissByWorker[w] += n
		}
	}
}

// Ratio returns RawBytes / WireBytes — how many raw pixel bytes each
// wire byte carried (> 1 when deltas and compression pay off) — or 0
// before any traffic.
func (c WireStats) Ratio() float64 {
	if c.WireBytes == 0 {
		return 0
	}
	return float64(c.RawBytes) / float64(c.WireBytes)
}

// String implements fmt.Stringer.
func (c WireStats) String() string {
	if c.FramesFull+c.FramesDelta == 0 {
		return "none"
	}
	s := fmt.Sprintf("full=%d delta=%d compressed=%d base-miss=%d wire=%d raw=%d ratio=%.2f",
		c.FramesFull, c.FramesDelta, c.FramesCompressed, c.DeltaBaseMisses,
		c.WireBytes, c.RawBytes, c.Ratio())
	if c.FramesSpan > 0 {
		s += fmt.Sprintf(" span=%d", c.FramesSpan)
	}
	if c.FramesAcked > 0 || c.SinkIngressBytes > 0 {
		s += fmt.Sprintf(" acked=%d master-in=%d sink-in=%d",
			c.FramesAcked, c.MasterIngressBytes, c.SinkIngressBytes)
	}
	return s
}

// ObjSpaceShard describes one spatial shard of an object-space run:
// its share of the forwarding traffic and its resident scene size.
type ObjSpaceShard struct {
	// RaysForwarded counts rays this shard serialized and handed to the
	// next shard along their direction; ForwardBytes the encoded bytes.
	RaysForwarded uint64
	ForwardBytes  uint64
	// Objects and Tris describe the shard's resident geometry (clipped
	// meshes count only the triangles they keep); ResidentBytes is the
	// estimated resident scene size — geometry plus the shard's grid.
	// For multi-frame runs these hold the peak across frames.
	Objects       int
	Tris          int
	ResidentBytes uint64
}

// ObjSpaceStats tallies an object-space (sharded scene) run: how many
// rays crossed shard boundaries, what the forwarding protocol cost in
// bytes, and how big each shard's resident slice of the scene was. Like
// the other counter types it is a plain value owned by one goroutine
// and combined with Merge when runs are aggregated.
type ObjSpaceStats struct {
	// Shards is the shard count of the partition (0 = objspace off).
	Shards int
	// RaysForwarded and ForwardBytes total the per-shard counters.
	RaysForwarded uint64
	ForwardBytes  uint64
	// PerShard breaks the counters down by shard index.
	PerShard []ObjSpaceShard
	// PeakResidentBytes is the largest per-shard resident scene size —
	// the number that must shrink as Shards grows for the decomposition
	// to deliver its memory promise.
	PeakResidentBytes uint64
}

// Enabled reports whether the run used object-space sharding.
func (c ObjSpaceStats) Enabled() bool { return c.Shards > 1 }

// Merge adds another counter set into c. Shard counts are expected to
// match across merged runs of one job; the larger partition wins when
// they differ (mixed-fleet runs where legacy workers rendered
// replicated contribute nothing here).
func (c *ObjSpaceStats) Merge(o ObjSpaceStats) {
	if o.Shards > c.Shards {
		c.Shards = o.Shards
	}
	c.RaysForwarded += o.RaysForwarded
	c.ForwardBytes += o.ForwardBytes
	for len(c.PerShard) < len(o.PerShard) {
		c.PerShard = append(c.PerShard, ObjSpaceShard{})
	}
	for i, s := range o.PerShard {
		d := &c.PerShard[i]
		d.RaysForwarded += s.RaysForwarded
		d.ForwardBytes += s.ForwardBytes
		if s.Objects > d.Objects {
			d.Objects = s.Objects
		}
		if s.Tris > d.Tris {
			d.Tris = s.Tris
		}
		if s.ResidentBytes > d.ResidentBytes {
			d.ResidentBytes = s.ResidentBytes
		}
	}
	if o.PeakResidentBytes > c.PeakResidentBytes {
		c.PeakResidentBytes = o.PeakResidentBytes
	}
}

// String implements fmt.Stringer.
func (c ObjSpaceStats) String() string {
	if !c.Enabled() {
		return "off"
	}
	return fmt.Sprintf("shards=%d forwarded=%d fwd-bytes=%d peak-resident=%d",
		c.Shards, c.RaysForwarded, c.ForwardBytes, c.PeakResidentBytes)
}

// CacheStats is a snapshot of a content-addressed cache's counters (the
// service-level frame cache reports these through /metrics).
type CacheStats struct {
	// Hits and Misses count lookups; Evictions counts entries dropped to
	// stay under the byte budget; Expired counts entries dropped because
	// they outlived the cache's TTL (also included in Misses when the
	// expiry was discovered by a lookup).
	Hits, Misses, Evictions, Expired uint64
	// Coalesced counts lookups that joined an in-flight production of
	// the same frame instead of rendering it again; FlightsLed counts
	// the productions so coalesced-onto.
	Coalesced, FlightsLed uint64
	// InFlight is the number of frames currently being produced.
	InFlight int
	// Entries and Bytes describe current occupancy; Budget is the
	// configured byte limit (0 = unlimited).
	Entries int
	Bytes   int64
	Budget  int64
}

// HitRate returns hits / lookups, or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Table renders rows of labelled values as a fixed-width text table, the
// output format of cmd/benchtab. Columns are derived from the union of
// row keys, ordered by first appearance.
type Table struct {
	cols []string
	rows []map[string]string
}

// AddRow appends a row given alternating key, value pairs.
func (t *Table) AddRow(kv ...string) {
	if len(kv)%2 != 0 {
		panic("stats: AddRow needs key/value pairs")
	}
	row := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		k, v := kv[i], kv[i+1]
		if !contains(t.cols, k) {
			t.cols = append(t.cols, k)
		}
		row[k] = v
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make(map[string]int, len(t.cols))
	for _, c := range t.cols {
		width[c] = len(c)
	}
	for _, r := range t.rows {
		for _, c := range t.cols {
			if len(r[c]) > width[c] {
				width[c] = len(r[c])
			}
		}
	}
	var b strings.Builder
	for _, c := range t.cols {
		fmt.Fprintf(&b, "%-*s  ", width[c], c)
	}
	b.WriteByte('\n')
	for _, c := range t.cols {
		b.WriteString(strings.Repeat("-", width[c]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		for _, c := range t.cols {
			fmt.Fprintf(&b, "%-*s  ", width[c], r[c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.cols, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		vals := make([]string, len(t.cols))
		for i, c := range t.cols {
			vals[i] = r[c]
		}
		b.WriteString(strings.Join(vals, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatDuration renders a duration as the paper's h:mm:ss style.
func FormatDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := int64(d.Round(time.Second) / time.Second)
	h := total / 3600
	m := (total % 3600) / 60
	s := total % 60
	if h > 0 {
		return fmt.Sprintf("%d:%02d:%02d", h, m, s)
	}
	return fmt.Sprintf("%d:%02d", m, s)
}

// SortedKeys returns map keys in sorted order (helper for deterministic
// report output).
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
