package compositor

import (
	"fmt"

	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/wire"
)

// Message tags of the sink protocol. They live in their own range so a
// trace mixing farm and sink traffic stays readable; every connection
// is dedicated (worker↔sink or master↔sink), so no tag ever shares a
// conn with the farm's master↔worker tags.
const (
	// TagInit (master→sink) configures a sink for a run: generation,
	// resolution, and the shard's frame range. The conn it arrives on
	// becomes the control conn that receives confirmations. Re-sent with
	// a bumped generation when the master re-dials a restarted sink.
	TagInit = iota + 101
	// TagJoin (worker→sink) names the worker behind a data conn; the
	// sink uses it to attribute results and route key-frame re-requests.
	TagJoin
	// TagPix (worker→sink) carries one frame result, encoded exactly as
	// the farm's TagFrameDone payload (the shared internal/wire codec).
	TagPix
	// TagRelayPix (master→sink) relays a legacy worker's master-routed
	// result to the owning sink so mixed fleets assemble in one place.
	// Payload: sealed [worker name][frame-done bytes].
	TagRelayPix
	// TagNeedKey (sink→worker) asks for a fresh key-frame after a base
	// miss broke the delta chain. Payload: pair (frame, generation).
	TagNeedKey
	// TagDelivered (sink→master) confirms one result merged into the
	// shard assembly; the master's bookkeeping marks the (frame, region)
	// delivered only on this confirmation, never on the worker's ack.
	TagDelivered
	// TagMiss (sink→master) reports a result the sink could not apply
	// (base miss, malformed, out of shard); the master counts it and
	// requeues the frame through the normal retry path.
	TagMiss
	// TagClose (master→sink) ends the run on a persistent sink daemon.
	TagClose
)

// Init configures a sink for a run.
type Init struct {
	// Gen is the master's init generation for this sink: bumped on every
	// re-dial, echoed in confirmations, so the master can discard stale
	// confirmations from before a sink restart.
	Gen  int
	W, H int
	// Start, End is the absolute frame shard [Start, End) this sink owns.
	Start, End int
}

func EncodeInit(in Init) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(in.Gen))
	b.PackInt(int64(in.W))
	b.PackInt(int64(in.H))
	b.PackInt(int64(in.Start))
	b.PackInt(int64(in.End))
	return b.Sealed()
}

func DecodeInit(data []byte) (Init, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Init{}, fmt.Errorf("compositor: bad init: %w", err)
	}
	b := msg.FromBytes(body)
	var in Init
	in.Gen = int(b.UnpackInt())
	in.W = int(b.UnpackInt())
	in.H = int(b.UnpackInt())
	in.Start = int(b.UnpackInt())
	in.End = int(b.UnpackInt())
	if err := b.Err(); err != nil {
		return Init{}, fmt.Errorf("compositor: bad init: %w", err)
	}
	if in.W <= 0 || in.H <= 0 || in.W > wire.MaxDim || in.H > wire.MaxDim {
		return Init{}, fmt.Errorf("compositor: bad init resolution %dx%d", in.W, in.H)
	}
	if in.Start < 0 || in.End <= in.Start || in.End > wire.MaxDim {
		return Init{}, fmt.Errorf("compositor: bad init shard [%d,%d)", in.Start, in.End)
	}
	return in, nil
}

// Delivered confirms one merged result to the master.
type Delivered struct {
	Gen    int
	Frame  int
	Region fb.Rect
	// Worker attributes the result (empty when unknown).
	Worker string
	// Kind is the result's wire.Kind*; WireBytes what it cost on the
	// sink link; RawBytes the raw pixels it represents.
	Kind      int
	WireBytes int
	RawBytes  int
	// Complete marks that this delivery finished the frame's assembly.
	Complete bool
}

func EncodeDelivered(d Delivered) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(d.Gen))
	b.PackInt(int64(d.Frame))
	b.PackInt(int64(d.Region.X0))
	b.PackInt(int64(d.Region.Y0))
	b.PackInt(int64(d.Region.X1))
	b.PackInt(int64(d.Region.Y1))
	b.PackString(d.Worker)
	b.PackInt(int64(d.Kind))
	b.PackInt(int64(d.WireBytes))
	b.PackInt(int64(d.RawBytes))
	b.PackBool(d.Complete)
	return b.Sealed()
}

func DecodeDelivered(data []byte) (Delivered, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Delivered{}, fmt.Errorf("compositor: bad delivered: %w", err)
	}
	b := msg.FromBytes(body)
	var d Delivered
	d.Gen = int(b.UnpackInt())
	d.Frame = int(b.UnpackInt())
	d.Region = fb.NewRect(int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()))
	d.Worker = b.UnpackString()
	d.Kind = int(b.UnpackInt())
	d.WireBytes = int(b.UnpackInt())
	d.RawBytes = int(b.UnpackInt())
	d.Complete = b.UnpackBool()
	if err := b.Err(); err != nil {
		return Delivered{}, fmt.Errorf("compositor: bad delivered: %w", err)
	}
	return d, nil
}

// Miss reasons (Miss.Reason).
const (
	// MissBase: the delta's base result never landed at the sink.
	MissBase = iota
	// MissMalformed: the payload failed decode or span validation.
	MissMalformed
	// MissShard: the result's frame lies outside the sink's shard.
	MissShard
)

// Miss reports an unapplicable result to the master.
type Miss struct {
	Gen    int
	Frame  int
	Region fb.Rect
	Worker string
	Reason int
}

func EncodeMiss(mm Miss) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(mm.Gen))
	b.PackInt(int64(mm.Frame))
	b.PackInt(int64(mm.Region.X0))
	b.PackInt(int64(mm.Region.Y0))
	b.PackInt(int64(mm.Region.X1))
	b.PackInt(int64(mm.Region.Y1))
	b.PackString(mm.Worker)
	b.PackInt(int64(mm.Reason))
	return b.Sealed()
}

func DecodeMiss(data []byte) (Miss, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Miss{}, fmt.Errorf("compositor: bad miss: %w", err)
	}
	b := msg.FromBytes(body)
	var mm Miss
	mm.Gen = int(b.UnpackInt())
	mm.Frame = int(b.UnpackInt())
	mm.Region = fb.NewRect(int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()), int(b.UnpackInt()))
	mm.Worker = b.UnpackString()
	mm.Reason = int(b.UnpackInt())
	if err := b.Err(); err != nil {
		return Miss{}, fmt.Errorf("compositor: bad miss: %w", err)
	}
	return mm, nil
}

// EncodeJoin packs a worker's data-conn handshake.
func EncodeJoin(worker string) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackString(worker)
	return b.Sealed()
}

func DecodeJoin(data []byte) (string, error) {
	body, err := msg.Open(data)
	if err != nil {
		return "", fmt.Errorf("compositor: bad join: %w", err)
	}
	b := msg.FromBytes(body)
	w := b.UnpackString()
	if err := b.Err(); err != nil {
		return "", fmt.Errorf("compositor: bad join: %w", err)
	}
	return w, nil
}

// EncodeRelay wraps a legacy worker's frame-done bytes with its name
// for master→sink relay.
func EncodeRelay(worker string, frameDone []byte) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackString(worker)
	b.PackBytes(frameDone)
	return b.Sealed()
}

func DecodeRelay(data []byte) (worker string, frameDone []byte, err error) {
	body, err := msg.Open(data)
	if err != nil {
		return "", nil, fmt.Errorf("compositor: bad relay: %w", err)
	}
	b := msg.FromBytes(body)
	worker = b.UnpackString()
	frameDone = b.UnpackBytes()
	if err := b.Err(); err != nil {
		return "", nil, fmt.Errorf("compositor: bad relay: %w", err)
	}
	return worker, frameDone, nil
}

// EncodePair packs the two-int payload TagNeedKey uses (frame, gen).
func EncodePair(a, b int) []byte {
	buf := msg.GetBuffer()
	defer buf.Release()
	buf.PackInt(int64(a))
	buf.PackInt(int64(b))
	return buf.Sealed()
}

// DecodePair unpacks a two-int payload.
func DecodePair(data []byte) (int, int, error) {
	body, err := msg.Open(data)
	if err != nil {
		return 0, 0, fmt.Errorf("compositor: bad pair: %w", err)
	}
	b := msg.FromBytes(body)
	x := int(b.UnpackInt())
	y := int(b.UnpackInt())
	if err := b.Err(); err != nil {
		return 0, 0, fmt.Errorf("compositor: bad pair: %w", err)
	}
	return x, y, nil
}
