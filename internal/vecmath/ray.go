package vecmath

import "fmt"

// RayKind classifies why a ray was cast. The frame-coherence engine keys
// its bookkeeping on pixels, not kinds, but the tracer keeps per-kind
// counters because the paper reports total ray counts (Table 1, row 1).
type RayKind uint8

// Ray kinds, in the order the paper enumerates them (§2): the initial
// camera ray, reflected rays, refracted rays and shadow rays.
const (
	CameraRay RayKind = iota
	ReflectedRay
	RefractedRay
	ShadowRay
	numRayKinds
)

// NumRayKinds is the number of distinct RayKind values.
const NumRayKinds = int(numRayKinds)

// String implements fmt.Stringer.
func (k RayKind) String() string {
	switch k {
	case CameraRay:
		return "camera"
	case ReflectedRay:
		return "reflected"
	case RefractedRay:
		return "refracted"
	case ShadowRay:
		return "shadow"
	default:
		return fmt.Sprintf("RayKind(%d)", uint8(k))
	}
}

// Ray is a parametric half-line Origin + t*Dir for t >= 0. Dir is not
// required to be unit length by the intersection code, but the tracer
// always normalises before shading so that t equals Euclidean distance.
type Ray struct {
	Origin Vec3
	Dir    Vec3
	Kind   RayKind
	// Depth is the recursion depth (0 for camera rays). The tracer stops
	// spawning secondary rays once Depth reaches the scene maximum (the
	// paper uses POV-Ray's "max ray depth of 5").
	Depth int
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float64) Vec3 {
	return r.Origin.Add(r.Dir.Scale(t))
}

// Interval is a [Min,Max] parameter range along a ray.
type Interval struct {
	Min, Max float64
}

// Contains reports whether t lies inside the interval.
func (iv Interval) Contains(t float64) bool { return t >= iv.Min && t <= iv.Max }

// Empty reports whether the interval contains no points.
func (iv Interval) Empty() bool { return iv.Max < iv.Min }
