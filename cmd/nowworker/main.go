// Command nowworker is a render-farm slave for a physical network of
// workstations: it dials the master started with `nowrender -mode
// master`, receives the scene, and renders the tasks it is assigned
// until the master shuts it down.
//
//	nowworker -master host:7946 -name ws01
//
// The dial retries with exponential backoff, so workers can be started
// before the master is listening — the launch order the paper's PVM
// console allowed. SIGINT/SIGTERM trigger a graceful departure: the
// worker finishes the frame it is rendering, tells the master where it
// stopped (so the rest of its task is requeued on the surviving
// workers), and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nowrender/internal/buildinfo"
	"nowrender/internal/farm"
	"nowrender/internal/faulty"
	"nowrender/internal/msg"
	"nowrender/internal/scenes"
	"nowrender/internal/timeline"
)

func main() {
	var (
		master   = flag.String("master", "127.0.0.1:7946", "master address")
		name     = flag.String("name", "", "worker name (default: host:pid)")
		maxWait  = flag.Duration("max-wait", 2*time.Minute, "give up dialing the master after this long (0 = retry forever)")
		threads  = flag.Int("threads", 0, "intra-frame render threads when the master doesn't specify (0 = all cores)")
		deadline = flag.Duration("master-deadline", 0, "exit if the master stays silent this long while idle (0 = wait forever; set well above the master's -heartbeat)")
		chaos    = flag.String("chaos", "", "fault-injection plan applied to this worker's connection, e.g. seed=7,drop=0.01,corrupt=0.005")
		delta    = flag.Bool("wire-delta", true, "advertise dirty-span delta frame support to the master")
		compress = flag.Bool("wire-compress", true, "advertise flate frame compression support to the master")
		span     = flag.Bool("wire-span", true, "advertise span-codec frame compression support to the master")
		wireTL   = flag.Bool("wire-timeline", true, "advertise timeline-span shipping to the master")
		tlOut    = flag.String("timeline", "", "write this worker's local timeline as Chrome trace JSON to this file on exit")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		// A stray positional arg silently stops flag parsing, so flags
		// after it would be ignored; fail loudly instead.
		fmt.Fprintf(os.Stderr, "nowworker: unexpected argument %q (flags take = syntax, e.g. -chaos=seed=7)\n", flag.Arg(0))
		os.Exit(2)
	}
	if *version {
		fmt.Println("nowworker", buildinfo.Version())
		return
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	fmt.Printf("nowworker %s (%s)\n", *name, buildinfo.Version())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	opts := farm.WorkerOptions{
		Threads: *threads, MasterDeadline: *deadline,
		NoWireDelta: !*delta, NoWireCompress: !*compress,
		NoWireSpanCodec: !*span,
		NoWireTimeline:  !*wireTL,
	}
	if *tlOut != "" {
		opts.Timeline = timeline.New(0)
	}
	err := run(ctx, *master, *name, *maxWait, *chaos, opts)
	if *tlOut != "" {
		if werr := dumpTimeline(*tlOut, *name, opts.Timeline); werr != nil {
			fmt.Fprintln(os.Stderr, "nowworker: timeline:", werr)
		}
	}
	switch {
	case err == nil:
		return
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "nowworker %s: interrupted, departed gracefully\n", *name)
	default:
		fmt.Fprintln(os.Stderr, "nowworker:", err)
		os.Exit(1)
	}
}

// dumpTimeline snapshots the worker's local recorder into a Chrome
// trace file. The local view is uncorrected worker-clock time; the
// master's merged timeline (nowrender -timeline) is the offset-corrected
// cluster view.
func dumpTimeline(path, name string, rec *timeline.Recorder) error {
	if rec == nil {
		return fmt.Errorf("no recorder")
	}
	tl := rec.Snapshot()
	tl.Meta["worker"] = name
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("worker %s: timeline written to %s (%d events)\n", name, path, tl.Events())
	return nil
}

// dialRetry dials the master with exponential backoff (250ms doubling,
// capped at 5s) until it connects, ctx is cancelled, or maxWait passes.
func dialRetry(ctx context.Context, master string, maxWait time.Duration) (msg.Conn, error) {
	var deadline <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		deadline = t.C
	}
	backoff := 250 * time.Millisecond
	for {
		conn, err := msg.Dial(master)
		if err == nil {
			return conn, nil
		}
		fmt.Fprintf(os.Stderr, "nowworker: master %s not up (%v), retrying in %v\n", master, err, backoff)
		select {
		case <-time.After(backoff):
		case <-deadline:
			return nil, fmt.Errorf("master %s unreachable after %v: %w", master, maxWait, err)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
}

func run(ctx context.Context, master, name string, maxWait time.Duration, chaos string, opts farm.WorkerOptions) error {
	plan, err := faulty.ParsePlan(chaos)
	if err != nil {
		return err
	}
	conn, err := dialRetry(ctx, master, maxWait)
	if err != nil {
		return err
	}
	defer conn.Close()

	// The master ships the scene first.
	m, err := conn.Recv()
	if err != nil {
		return fmt.Errorf("waiting for scene: %w", err)
	}
	if m.Tag != farm.TagSceneSDL {
		return fmt.Errorf("expected scene message, got tag %d", m.Tag)
	}
	buf := msg.FromBytes(m.Data)
	kind := buf.UnpackString()
	data := buf.UnpackString()
	if err := buf.Err(); err != nil {
		return err
	}
	sc, err := scenes.FromPayload(kind, data)
	if err != nil {
		return err
	}
	fmt.Printf("worker %s: scene %q loaded (%d frames), entering render loop\n",
		name, sc.Name, sc.Frames)
	// Chaos wraps after the scene handshake so fault injection exercises
	// the render protocol, not the bootstrap.
	loopConn := conn
	if plan != nil {
		loopConn = plan.Wrap(name, conn)
	}
	return farm.RunWorkerWithOptions(ctx, name, loopConn, sc, opts)
}
