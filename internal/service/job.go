package service

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/framecache"
	"nowrender/internal/queue"
	"nowrender/internal/scene"
	"nowrender/internal/scenes"
	"nowrender/internal/sdl"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle: Queued -> Running -> one of the three terminal states.
// A queued job can go straight to Cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobSpec describes a render request, the JSON body of POST /jobs.
type JobSpec struct {
	// Scene is either a builtin spec ("newton", "bouncing:30", ...) or
	// raw SDL source (detected by the presence of '{' or a newline).
	Scene string `json:"scene"`
	// W, H is the output resolution. Defaults to the paper's 240x320.
	W int `json:"w,omitempty"`
	H int `json:"h,omitempty"`
	// StartFrame and EndFrame select a sub-range [StartFrame, EndFrame);
	// both zero means the whole animation.
	StartFrame int `json:"start_frame,omitempty"`
	EndFrame   int `json:"end_frame,omitempty"`
	// Scheme picks the partitioning: seqdiv (default), seqdiv-static,
	// framediv, hybrid, pixeldiv.
	Scheme string `json:"scheme,omitempty"`
	// Plain disables the frame-coherence algorithm inside tasks.
	Plain bool `json:"plain,omitempty"`
	// Samples is the supersampling factor (0/1 = one ray per pixel).
	// Part of the cache address: it changes pixels.
	Samples int `json:"samples,omitempty"`
	// Threads bounds each farm worker's intra-frame tile pool; 0 falls
	// back to the service default, which in turn defaults to all cores.
	// Deliberately NOT part of the cache address: the render core
	// guarantees byte-identical pixels for every thread count, so frames
	// cached at one setting serve requests at any other.
	Threads int `json:"threads,omitempty"`
	// Priority orders the queue: higher first, FIFO within a priority.
	Priority int `json:"priority,omitempty"`
	// Driver selects the farm backend: "virtual" (deterministic virtual
	// NOW, the default) or "local" (goroutine workers, wall clock).
	Driver string `json:"driver,omitempty"`
	// Retries is how many times a failed render attempt is retried
	// (capped by the service's MaxJobRetries). Attempts resume from
	// whatever frames already reached the job or the cache, so progress
	// is monotonic across retries.
	Retries int `json:"retries,omitempty"`
	// RetryBackoffMS is the delay before the first retry, doubled each
	// further attempt. 0 retries immediately.
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// Tenant names who this job belongs to, for per-tenant quotas and
	// fair scheduling; empty canonicalises to "default". Deliberately
	// NOT part of the cache address: identical requests from different
	// tenants share cached frames and coalesce onto one render.
	Tenant string `json:"tenant,omitempty"`
	// ObjSpaceShards partitions each task's scene into that many spatial
	// shards with ray forwarding between owners (0 = replicated scenes,
	// the default; otherwise 2..objspace.MaxShards). Deliberately NOT
	// part of the cache address: sharded rendering is byte-identical to
	// replicated at every shard count, so cached frames serve either.
	ObjSpaceShards int `json:"objspace_shards,omitempty"`
}

// Status is the externally visible snapshot of a job, the JSON body of
// GET /jobs/{id}.
type Status struct {
	ID    string  `json:"id"`
	State State   `json:"state"`
	Spec  JobSpec `json:"spec"`
	// FramesTotal is the number of frames the job covers; FramesDone
	// counts frames available so far (rendered or from cache).
	FramesTotal int `json:"frames_total"`
	FramesDone  int `json:"frames_done"`
	// CacheHits counts frames served from the content-addressed cache.
	CacheHits int `json:"cache_hits"`
	// CoalescedFrames counts frames this job received from another
	// job's in-flight render instead of rendering (or re-rendering)
	// them itself.
	CoalescedFrames int `json:"coalesced_frames,omitempty"`
	// RaysTraced counts rays actually traced for this job; a fully
	// cache-served job reports zero.
	RaysTraced uint64 `json:"rays_traced"`
	// Attempts counts render attempts so far (1 on the happy path;
	// 1 + retries used otherwise).
	Attempts int `json:"attempts,omitempty"`
	// WorkersLost and FramesRequeued surface the job's fault-handling
	// footprint: how many workers its farm runs retired and how many
	// frame renderings were requeued onto survivors.
	WorkersLost    uint64 `json:"workers_lost,omitempty"`
	FramesRequeued uint64 `json:"frames_requeued,omitempty"`
	// WireFramesFull/Delta and Wire/Raw bytes surface the job's frame
	// data-path footprint: how many results were full key-frames vs
	// dirty-span deltas, and the bytes shipped vs the raw pixels they
	// represent (zero for fully cache-served jobs).
	WireFramesFull  uint64 `json:"wire_frames_full,omitempty"`
	WireFramesDelta uint64 `json:"wire_frames_delta,omitempty"`
	// WireFramesFlate/Span count payloads by codec — the visible trace
	// of each worker's adaptive compression choices.
	WireFramesFlate uint64 `json:"wire_frames_flate,omitempty"`
	WireFramesSpan  uint64 `json:"wire_frames_span,omitempty"`
	WireBytes       uint64 `json:"wire_bytes,omitempty"`
	WireRawBytes    uint64 `json:"wire_raw_bytes,omitempty"`
	// WireMasterIngressBytes / WireSinkIngressBytes split WireBytes by
	// where it landed: the master's own result path versus distributed-
	// framebuffer compositor sinks; WireFramesAcked counts the DFB
	// control acks the master saw in place of pixel payloads.
	WireMasterIngressBytes uint64 `json:"wire_master_ingress_bytes,omitempty"`
	WireSinkIngressBytes   uint64 `json:"wire_sink_ingress_bytes,omitempty"`
	WireFramesAcked        uint64 `json:"wire_frames_acked,omitempty"`
	// WireBaseMisses totals deltas dropped for a missing base frame;
	// WireBaseMissByWorker attributes them, so a worker that keeps
	// losing its delta chain is visible per job.
	WireBaseMisses       uint64            `json:"wire_base_misses,omitempty"`
	WireBaseMissByWorker map[string]uint64 `json:"wire_base_miss_by_worker,omitempty"`
	// RaysForwarded, ForwardBytes and ObjSpacePeakResidentBytes surface
	// the job's object-space footprint when the spec sharded the scene:
	// shard-to-shard ray forwards, the bytes they serialized to, and the
	// largest per-shard resident scene size any task built.
	RaysForwarded             uint64 `json:"rays_forwarded,omitempty"`
	ForwardBytes              uint64 `json:"forward_bytes,omitempty"`
	ObjSpacePeakResidentBytes uint64 `json:"objspace_peak_resident_bytes,omitempty"`
	Error                     string `json:"error,omitempty"`

	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// QueueDurationMS and RunDurationMS are the measured phase timings
	// (exported in /metrics as nowrender_job_*_seconds).
	QueueDurationMS int64 `json:"queue_ms"`
	RunDurationMS   int64 `json:"run_ms"`
}

// Event is one server-sent progress event on GET /jobs/{id}/events.
type Event struct {
	// Type is the lifecycle edge: queued, started, frame, done, failed,
	// cancelled. Terminal types end the stream.
	Type string `json:"type"`
	Job  string `json:"job"`
	// Frame is set on "frame" events (-1 otherwise, so frame 0 is
	// unambiguous on the wire); Cached tells whether it came from the
	// frame cache instead of being rendered.
	Frame  int  `json:"frame"`
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks a frame delivered by another job's in-flight
	// render (neither rendered by this job nor a cache hit).
	Coalesced bool `json:"coalesced,omitempty"`
	// Progress counters at the time of the event.
	FramesDone  int    `json:"frames_done"`
	FramesTotal int    `json:"frames_total"`
	Error       string `json:"error,omitempty"`
}

// job is the service-internal state. All fields after the immutable
// header are guarded by the owning Service's mutex.
type job struct {
	id     string
	seq    int // submission order, the FIFO tiebreak
	spec   JobSpec
	scene  *scene.Scene
	source string // canonical scene text (cache address component)
	key    framecache.SeqKey

	state     State
	err       error
	frames    []*fb.Framebuffer // index = frame - spec.StartFrame
	done      int
	cacheHits int
	coalesced int
	attempts  int
	rays      stats.RayCounters
	faults    stats.FaultCounters
	wire      stats.WireStats
	objspace  stats.ObjSpaceStats
	// led marks the absolute frames this job currently leads the
	// in-flight cache flight for: it must either Put (via OnFrame) or
	// Abort (at its terminal state) every one of them.
	led map[int]bool
	// item is the job's queue entry while queued (Cancel removes it).
	item *queue.Item
	// timeline accumulates the merged cluster timeline of the job's farm
	// runs (Config.Timeline on); nil otherwise.
	timeline *timeline.Timeline
	// rec/schedTrack record the service-level scheduling events
	// (enqueue, admit, lease, coalesce, drain) when Config.Timeline is
	// on; the track merges into timeline at the terminal state. All
	// appends happen under the service mutex — the recorder's
	// single-writer-per-track rule holds.
	rec        *timeline.Recorder
	schedTrack *timeline.Track
	enqueuedAt int64

	submitted, started, finished time.Time

	ctx    context.Context
	cancel context.CancelFunc
	// finishedCh closes when the job reaches a terminal state.
	finishedCh chan struct{}

	subs []chan Event
}

// status snapshots the job; callers hold the service mutex.
func (j *job) status() Status {
	st := Status{
		ID: j.id, State: j.state, Spec: j.spec,
		FramesTotal: len(j.frames), FramesDone: j.done,
		CacheHits: j.cacheHits, CoalescedFrames: j.coalesced,
		RaysTraced:  j.rays.Total(),
		Attempts:    j.attempts,
		WorkersLost: j.faults.WorkersLost, FramesRequeued: j.faults.FramesRequeued,
		WireFramesFull: j.wire.FramesFull, WireFramesDelta: j.wire.FramesDelta,
		WireFramesFlate: j.wire.FramesCompressed, WireFramesSpan: j.wire.FramesSpan,
		WireBytes: j.wire.WireBytes, WireRawBytes: j.wire.RawBytes,
		WireMasterIngressBytes:    j.wire.MasterIngressBytes,
		WireSinkIngressBytes:      j.wire.SinkIngressBytes,
		WireFramesAcked:           j.wire.FramesAcked,
		WireBaseMisses:            j.wire.DeltaBaseMisses,
		RaysForwarded:             j.objspace.RaysForwarded,
		ForwardBytes:              j.objspace.ForwardBytes,
		ObjSpacePeakResidentBytes: j.objspace.PeakResidentBytes,
		Submitted:                 j.submitted, Started: j.started, Finished: j.finished,
	}
	if len(j.wire.BaseMissByWorker) > 0 {
		st.WireBaseMissByWorker = make(map[string]uint64, len(j.wire.BaseMissByWorker))
		for w, n := range j.wire.BaseMissByWorker {
			st.WireBaseMissByWorker[w] = n
		}
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st.QueueDurationMS = j.started.Sub(j.submitted).Milliseconds()
		if !j.finished.IsZero() {
			st.RunDurationMS = j.finished.Sub(j.started).Milliseconds()
		}
	}
	return st
}

// resolveScene turns the spec's Scene field into a scene plus the
// canonical source string the cache addresses by.
func resolveScene(src string) (*scene.Scene, string, error) {
	if src == "" {
		return nil, "", fmt.Errorf("service: empty scene")
	}
	if strings.ContainsAny(src, "{\n") {
		sc, err := sdl.Parse("job", src)
		if err != nil {
			return nil, "", err
		}
		return sc, src, nil
	}
	// Builtin spec ("newton:30"). The spec string itself is canonical —
	// builtins are deterministic per spec.
	sc, err := scenes.FromSpec(src)
	if err != nil {
		return nil, "", err
	}
	return sc, src, nil
}
