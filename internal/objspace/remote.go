package objspace

import (
	"sync"

	"nowrender/internal/geom"
	"nowrender/internal/msg"
	"nowrender/internal/scene"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

// Remote mode runs the same sweep the in-process router performs, but
// with each shard behind a real msg.Conn: a ray enters at the first slab
// it crosses, hops owner-to-owner along neighbor links (slabs passing the
// clip test form one contiguous run, so the next hop is always the
// adjacent neighbor), and the settled state routes back to the client.
// The in-process router and the remote fleet share the codec and the
// termination rule, so their pixels — and the replicated path's — are
// byte-identical.

// Owner serves one shard of a cluster over connections to the client and
// its sweep neighbors. Run Serve on its own goroutine; it returns when
// the connections close.
type Owner struct {
	c   *Cluster
	idx int
	// client carries incoming entry rays and outgoing results; prev/next
	// carry shard-to-shard forwards (nil at the fleet's ends).
	client, prev, next msg.Conn

	stamp uint64
	mail  []uint64
}

// NewOwner wraps shard idx of c behind its three links.
func NewOwner(c *Cluster, idx int, client, prev, next msg.Conn) *Owner {
	return &Owner{
		c: c, idx: idx,
		client: client, prev: prev, next: next,
		mail: make([]uint64, len(c.shard[idx].Objs)),
	}
}

// Serve processes rays until every link closes. Messages from all links
// funnel through one inbox, so the owner handles rays serially — its
// mailbox scratch needs no locking.
func (o *Owner) Serve() {
	inbox := make(chan msg.Message)
	var wg sync.WaitGroup
	for _, c := range []msg.Conn{o.client, o.prev, o.next} {
		if c == nil {
			continue
		}
		wg.Add(1)
		go func(c msg.Conn) {
			defer wg.Done()
			for {
				m, err := c.Recv()
				if err != nil {
					return
				}
				inbox <- m
			}
		}(c)
	}
	go func() { wg.Wait(); close(inbox) }()
	for m := range inbox {
		if m.Tag != TagOSRay {
			continue
		}
		fs, err := DecodeForward(m.Data)
		if err != nil || int(fs.Shard) != o.idx {
			continue // malformed or misrouted: drop
		}
		o.handle(fs)
	}
}

// handle walks the owner's shard and either forwards the ray to the next
// neighbor or sends the settled result home.
func (o *Owner) handle(fs ForwardState) {
	s := o.c.shard[o.idx]
	iv, crossed := s.Bounds.IntersectRay(fs.Ray, fs.TMin, bestBound(&fs))
	if crossed {
		o.stamp++
		stamp := o.stamp
		s.Grid.Walk(fs.Ray, fs.TMin, fs.TMax, func(idx int, tEnter, tLeave float64) bool {
			for _, lid := range s.Grid.Items(idx) {
				if o.mail[lid] == stamp {
					continue
				}
				o.mail[lid] = stamp
				so := &s.Objs[lid]
				if h, ok := so.RO.Shape.Intersect(fs.Ray, fs.TMin, bestBound(&fs)); ok {
					fs.Best, fs.BestObj, fs.Found = h, so.Global, true
				}
			}
			return !(fs.Found && fs.Best.T <= tLeave)
		})
	}
	settled := !crossed || (fs.Found && fs.Best.T <= iv.Max)
	if !settled {
		step := 1
		link := o.next
		if fs.Ray.Dir.Axis(o.c.part.Axis) < 0 {
			step, link = -1, o.prev
		}
		next := o.idx + step
		if link != nil && next >= 0 && next < len(o.c.shard) {
			if _, ok := o.c.shard[next].Bounds.IntersectRay(fs.Ray, fs.TMin, bestBound(&fs)); ok {
				fs.Shard = int32(next)
				data := EncodeForward(&fs)
				if o.c.stats != nil {
					o.c.stats.countForward(o.idx, len(data))
				}
				if link.Send(msg.Message{Tag: TagOSRay, Data: data}) == nil {
					return
				}
			}
		}
	}
	o.client.Send(msg.Message{Tag: TagOSResult, Data: EncodeForward(&fs)})
}

// bestBound returns the running upper bound for shape tests: the settled
// hit's parameter, or the query's tMax while nothing has hit yet.
func bestBound(fs *ForwardState) float64 {
	if fs.Found {
		return fs.Best.T
	}
	return fs.TMax
}

// Client is the frame owner's side of a remote fleet: it tests the
// replicated unbounded primitives, injects each ray at its entry shard,
// and blocks until the settled state returns. It implements
// trace.Intersector, so a worker built over it renders byte-identically
// to the in-process router. Queries are serialized by a mutex — the
// remote mode exists to exercise the protocol, not to win races.
type Client struct {
	c     *Cluster
	conns []msg.Conn

	mu      sync.Mutex
	seq     uint64
	results chan msg.Message
	closed  chan struct{}
}

// NewClient wires a client over one connection per shard owner and
// starts its result readers.
func NewClient(c *Cluster, conns []msg.Conn) *Client {
	cl := &Client{
		c: c, conns: conns,
		results: make(chan msg.Message, len(conns)),
		closed:  make(chan struct{}),
	}
	for _, conn := range conns {
		go func(conn msg.Conn) {
			for {
				m, err := conn.Recv()
				if err != nil {
					return
				}
				select {
				case cl.results <- m:
				case <-cl.closed:
					return
				}
			}
		}(conn)
	}
	return cl
}

// Close tears down the client's connections (and, through the shared
// pipe state, unblocks the owners).
func (cl *Client) Close() {
	close(cl.closed)
	for _, c := range cl.conns {
		c.Close()
	}
}

// NewWorker returns a rendering worker that resolves every intersection
// through the remote fleet.
func (cl *Client) NewWorker(obs trace.RayObserver) *trace.Worker {
	return cl.c.view.NewWorkerWith(obs, cl)
}

// Intersect implements trace.Intersector over the remote fleet.
func (cl *Client) Intersect(r vm.Ray, tMin, tMax float64) (geom.Hit, *scene.ResolvedObject, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	c := cl.c
	fs := ForwardState{
		Pixel: -1, Ray: r, TMin: tMin, TMax: tMax,
		Throughput: vm.Splat(1), BestObj: -1,
		Best: geom.Hit{T: tMax},
	}
	for _, id := range c.unbounded {
		ro := &c.objs[id]
		if h, ok := ro.Shape.Intersect(r, tMin, bestBound(&fs)); ok {
			fs.Best, fs.BestObj, fs.Found = h, id, true
		}
	}
	// Entry shard: the first slab in sweep order the clipped ray crosses.
	n := len(c.shard)
	si, step := 0, 1
	if r.Dir.Axis(c.part.Axis) < 0 {
		si, step = n-1, -1
	}
	entry := -1
	for k := 0; k < n; k, si = k+1, si+step {
		if _, ok := c.shard[si].Bounds.IntersectRay(r, tMin, bestBound(&fs)); ok {
			entry = si
			break
		}
	}
	if entry < 0 {
		return finish(c, fs)
	}
	cl.seq++
	fs.Seq = cl.seq
	fs.Shard = int32(entry)
	if cl.conns[entry].Send(msg.Message{Tag: TagOSRay, Data: EncodeForward(&fs)}) != nil {
		return finish(c, fs)
	}
	for {
		select {
		case m := <-cl.results:
			if m.Tag != TagOSResult {
				continue
			}
			res, err := DecodeForward(m.Data)
			if err != nil || res.Seq != cl.seq {
				continue
			}
			return finish(c, res)
		case <-cl.closed:
			return finish(c, fs)
		}
	}
}

// finish maps a settled state to the intersector's return shape.
func finish(c *Cluster, fs ForwardState) (geom.Hit, *scene.ResolvedObject, bool) {
	if !fs.Found {
		return geom.Hit{}, nil, false
	}
	return fs.Best, &c.objs[fs.BestObj], true
}

// NewLocalFleet builds the full remote topology over in-process pipes —
// one owner goroutine per shard, neighbor links between adjacent shards —
// and returns the client. Close the client to stop the fleet.
func NewLocalFleet(c *Cluster) *Client {
	n := len(c.shard)
	clientSide := make([]msg.Conn, n)
	ownerClient := make([]msg.Conn, n)
	for i := 0; i < n; i++ {
		clientSide[i], ownerClient[i] = msg.Pipe(64)
	}
	prev := make([]msg.Conn, n)
	next := make([]msg.Conn, n)
	for i := 0; i+1 < n; i++ {
		next[i], prev[i+1] = msg.Pipe(64)
	}
	for i := 0; i < n; i++ {
		go NewOwner(c, i, ownerClient[i], prev[i], next[i]).Serve()
	}
	return NewClient(c, clientSide)
}
