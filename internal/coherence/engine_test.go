package coherence

import (
	"testing"

	"nowrender/internal/stats"

	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

// movingScene: a red ball slides across a checkered floor, camera
// stationary, light fixed — the canonical coherence-friendly animation.
func movingScene(frames int) *scene.Scene {
	s := scene.New("moving")
	s.Frames = frames
	s.Camera = scene.Camera{Pos: vm.V(0, 3, 10), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 55}
	s.Background = material.RGB(0.1, 0.1, 0.2)
	floor := material.NewMaterial(material.Checker{A: material.White, B: material.RGB(0.2, 0.2, 0.2)}, material.DefaultFinish())
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), floor, nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), material.Matte(material.Red),
		scene.KeyframeTrack{Keys: []scene.Keyframe{
			{Frame: 0, Pos: vm.V(-3, 0, 0)},
			{Frame: frames - 1, Pos: vm.V(3, 0, 0)},
		}})
	s.Add("pillar", geom.NewCylinder(vm.V(4, 0, -2), vm.V(4, 3, -2), 0.4),
		material.Matte(material.Blue), nil)
	s.AddLight("key", vm.V(6, 10, 8), material.White)
	return s
}

// staticScene: nothing moves at all.
func staticScene(frames int) *scene.Scene {
	s := scene.New("static")
	s.Frames = frames
	s.Camera = scene.Camera{Pos: vm.V(0, 2, 8), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 55}
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), material.Matte(material.Green), nil)
	s.AddLight("key", vm.V(4, 8, 8), material.White)
	return s
}

const tw, th = 60, 48

func TestNewEngineValidation(t *testing.T) {
	s := movingScene(5)
	full := fb.NewRect(0, 0, tw, th)
	if _, err := NewEngine(s, tw, th, full, 0, 6, Options{}); err == nil {
		t.Error("frame range beyond scene accepted")
	}
	if _, err := NewEngine(s, tw, th, full, 3, 3, Options{}); err == nil {
		t.Error("empty frame range accepted")
	}
	if _, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw+1, th), 0, 5, Options{}); err == nil {
		t.Error("region outside frame accepted")
	}
	if _, err := NewEngine(s, tw, th, fb.Rect{}, 0, 5, Options{}); err == nil {
		t.Error("empty region accepted")
	}
}

func TestNewEngineRejectsMovingCamera(t *testing.T) {
	s := movingScene(5)
	s.CamTrack = scene.CameraFunc(func(f int) scene.Camera {
		c := scene.DefaultCamera()
		c.Pos = vm.V(float64(f), 2, 10)
		return c
	})
	if _, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 5, Options{}); err == nil {
		t.Error("moving camera accepted")
	}
}

func TestFramesMustBeConsecutive(t *testing.T) {
	s := movingScene(5)
	e, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	img := fb.New(tw, th)
	if _, err := e.RenderFrame(1, img); err == nil {
		t.Error("skipping frame 0 accepted")
	}
	if _, err := e.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RenderFrame(2, img); err == nil {
		t.Error("skipping frame 1 accepted")
	}
}

func TestFirstFrameRendersEverything(t *testing.T) {
	s := movingScene(3)
	e, _ := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 3, Options{})
	img := fb.New(tw, th)
	rep, err := e.RenderFrame(0, img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rendered != tw*th || rep.Copied != 0 {
		t.Errorf("first frame rendered=%d copied=%d", rep.Rendered, rep.Copied)
	}
	if rep.Rays.Total() == 0 {
		t.Error("no rays counted")
	}
}

// The paper's central correctness claim: coherence must not change the
// image. Render the whole animation both ways and compare pixels.
func TestCoherentRenderPixelIdentical(t *testing.T) {
	const frames = 6
	s := movingScene(frames)
	full := fb.NewRect(0, 0, tw, th)

	var fullFrames []*fb.Framebuffer
	_, err := FullRender(s, tw, th, full, 0, frames, 1,
		func(f int, img *fb.Framebuffer, _ stats.RayCounters) error {
			fullFrames = append(fullFrames, img.Clone())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(s, tw, th, full, 0, frames, Options{})
	if err != nil {
		t.Fatal(err)
	}
	savedRendered := 0
	frameIdx := 0
	_, err = e.RenderSequence(func(f int, img *fb.Framebuffer, rep FrameReport) error {
		if !img.Equal(fullFrames[frameIdx]) {
			t.Errorf("frame %d: coherent render differs from full render in %d pixels",
				f, img.DiffCount(fullFrames[frameIdx]))
		}
		savedRendered += rep.Rendered
		frameIdx++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// And coherence must actually save work on this scene.
	if savedRendered >= frames*tw*th {
		t.Errorf("coherence saved nothing: rendered %d of %d pixels",
			savedRendered, frames*tw*th)
	}
}

func TestStaticSceneSecondFrameFree(t *testing.T) {
	s := staticScene(3)
	e, _ := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 3, Options{})
	img := fb.New(tw, th)
	if _, err := e.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	rep, err := e.RenderFrame(1, img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rendered != 0 {
		t.Errorf("static scene re-rendered %d pixels in frame 1", rep.Rendered)
	}
	if rep.Copied != tw*th {
		t.Errorf("copied %d, want %d", rep.Copied, tw*th)
	}
	if rep.Rays.Total() != 0 {
		t.Errorf("static frame cast %d rays", rep.Rays.Total())
	}
}

// The predicted dirty set must be a superset of the actually-changed
// pixels (conservativeness; Figure 2(b) covers 2(a)).
func TestPredictedDirtySupersetOfActual(t *testing.T) {
	const frames = 5
	s := movingScene(frames)
	full := fb.NewRect(0, 0, tw, th)

	var fullFrames []*fb.Framebuffer
	if _, err := FullRender(s, tw, th, full, 0, frames, 1,
		func(f int, img *fb.Framebuffer, _ stats.RayCounters) error {
			fullFrames = append(fullFrames, img.Clone())
			return nil
		}); err != nil {
		t.Fatal(err)
	}

	e, _ := NewEngine(s, tw, th, full, 0, frames, Options{})
	img := fb.New(tw, th)
	for f := 0; f < frames-1; f++ {
		if _, err := e.RenderFrame(f, img); err != nil {
			t.Fatal(err)
		}
		mask := e.DirtyMask()
		// Compare actual pixel change f -> f+1 against prediction.
		missed := 0
		for y := 0; y < th; y++ {
			for x := 0; x < tw; x++ {
				ar, ag, ab := fullFrames[f].At(x, y)
				br, bg, bb := fullFrames[f+1].At(x, y)
				changed := ar != br || ag != bg || ab != bb
				if changed && !mask[y*tw+x] {
					missed++
				}
			}
		}
		if missed > 0 {
			t.Errorf("frame %d->%d: %d changed pixels not predicted dirty", f, f+1, missed)
		}
	}
}

func TestRegionRestrictsWork(t *testing.T) {
	s := movingScene(3)
	region := fb.NewRect(10, 8, 30, 24)
	e, err := NewEngine(s, tw, th, region, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	img := fb.New(tw, th)
	rep, err := e.RenderFrame(0, img)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rendered != region.Area() {
		t.Errorf("rendered %d, want region area %d", rep.Rendered, region.Area())
	}
	// Pixels outside the region stay untouched (black).
	if r, g, b := img.At(0, 0); r != 0 || g != 0 || b != 0 {
		t.Error("pixel outside region was written")
	}
}

func TestRegionRenderMatchesFullRenderInsideRegion(t *testing.T) {
	const frames = 4
	s := movingScene(frames)
	region := fb.NewRect(15, 10, 45, 38)

	var fullFrames []*fb.Framebuffer
	if _, err := FullRender(s, tw, th, fb.NewRect(0, 0, tw, th), 0, frames, 1,
		func(f int, img *fb.Framebuffer, _ stats.RayCounters) error {
			fullFrames = append(fullFrames, img.Clone())
			return nil
		}); err != nil {
		t.Fatal(err)
	}

	e, _ := NewEngine(s, tw, th, region, 0, frames, Options{})
	for f := 0; f < frames; f++ {
		img := fb.New(tw, th)
		if _, err := e.RenderFrame(f, img); err != nil {
			t.Fatal(err)
		}
		for y := region.Y0; y < region.Y1; y++ {
			for x := region.X0; x < region.X1; x++ {
				ar, ag, ab := img.At(x, y)
				br, bg, bb := fullFrames[f].At(x, y)
				if ar != br || ag != bg || ab != bb {
					t.Fatalf("frame %d pixel (%d,%d): region render differs", f, x, y)
				}
			}
		}
	}
}

func TestMovingLightDirtiesEverything(t *testing.T) {
	s := staticScene(3)
	s.Lights[0].Track = scene.FuncTrack{F: func(f int) vm.Transform {
		return vm.NewTransform(vm.Translate(float64(f), 0, 0))
	}}
	e, _ := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 3, Options{})
	img := fb.New(tw, th)
	if _, err := e.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	mask := e.DirtyMask()
	for i, d := range mask {
		if !d {
			t.Fatalf("pixel %d not dirty despite moving light", i)
		}
	}
}

func TestBlockGranularityDilates(t *testing.T) {
	const frames = 3
	s := movingScene(frames)
	full := fb.NewRect(0, 0, tw, th)

	pixel, _ := NewEngine(s, tw, th, full, 0, frames, Options{})
	block, _ := NewEngine(s, tw, th, full, 0, frames, Options{BlockGranularity: 8})
	img := fb.New(tw, th)
	if _, err := pixel.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	img2 := fb.New(tw, th)
	if _, err := block.RenderFrame(0, img2); err != nil {
		t.Fatal(err)
	}
	pm, bm := pixel.DirtyMask(), block.DirtyMask()
	pCount, bCount := 0, 0
	for i := range pm {
		if pm[i] {
			pCount++
			if !bm[i] {
				t.Fatal("block mask not a superset of pixel mask")
			}
		}
		if bm[i] {
			bCount++
		}
	}
	if bCount <= pCount {
		t.Errorf("block granularity did not dilate: pixel=%d block=%d", pCount, bCount)
	}
	// Block mode still renders correct images (it only re-renders more).
	repPixel, err := pixel.RenderFrame(1, img)
	if err != nil {
		t.Fatal(err)
	}
	repBlock, err := block.RenderFrame(1, img2)
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(img2) {
		t.Error("block-granular render differs from pixel-granular")
	}
	if repBlock.Rendered < repPixel.Rendered {
		t.Error("block mode rendered fewer pixels than pixel mode")
	}
}

func TestRegistrationAccounting(t *testing.T) {
	s := movingScene(4)
	e, _ := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 4, Options{})
	img := fb.New(tw, th)
	if _, err := e.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	n0 := e.RegistrationCount()
	if n0 == 0 {
		t.Fatal("no registrations after first frame")
	}
	if _, err := e.RenderFrame(1, img); err != nil {
		t.Fatal(err)
	}
	e.Compact()
	n1 := e.RegistrationCount()
	if n1 == 0 {
		t.Error("compaction dropped all registrations")
	}
	// After compaction every stored registration is valid.
	total := 0
	for idx := 0; idx < e.Grid().NumVoxels(); idx++ {
		total += len(e.voxelPixels[idx])
	}
	if total != n1 {
		t.Errorf("compacted lists hold %d entries, %d valid", total, n1)
	}
}

func TestDisableShadowRegistrationIsCheaperButRegistersLess(t *testing.T) {
	s := movingScene(3)
	full := fb.NewRect(0, 0, tw, th)
	withShadow, _ := NewEngine(s, tw, th, full, 0, 3, Options{})
	without, _ := NewEngine(s, tw, th, full, 0, 3, Options{DisableShadowRegistration: true})
	img := fb.New(tw, th)
	if _, err := withShadow.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	if _, err := without.RenderFrame(0, img); err != nil {
		t.Fatal(err)
	}
	if without.RegistrationCount() >= withShadow.RegistrationCount() {
		t.Errorf("shadow registration off (%d) should register fewer than on (%d)",
			without.RegistrationCount(), withShadow.RegistrationCount())
	}
}

func TestRenderSequenceAggregates(t *testing.T) {
	s := movingScene(4)
	e, _ := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, 4, Options{})
	emitted := 0
	run, err := e.RenderSequence(func(f int, img *fb.Framebuffer, rep FrameReport) error {
		emitted++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 4 || len(run.Frames) != 4 {
		t.Errorf("emitted %d frames, stats have %d", emitted, len(run.Frames))
	}
	total := run.TotalRays()
	if total.Total() == 0 {
		t.Error("no rays in run stats")
	}
	first, _ := run.FirstFrame()
	if first.Rendered != tw*th {
		t.Error("first frame stats wrong")
	}
}

// Coherent rendering must stay pixel-identical with adaptive
// antialiasing enabled (the AA samples are deterministic per pixel).
func TestCoherentRenderPixelIdenticalWithAA(t *testing.T) {
	const frames = 4
	s := movingScene(frames)
	full := fb.NewRect(0, 0, tw, th)
	opts := Options{AAThreshold: 0.15, AASamples: 6}

	// Reference: per-frame full render with the same AA settings.
	var want []*fb.Framebuffer
	for f := 0; f < frames; f++ {
		ft, err := trace.New(s, f, trace.Options{AAThreshold: 0.15, AASamples: 6})
		if err != nil {
			t.Fatal(err)
		}
		img := fb.New(tw, th)
		ft.RenderFull(img)
		want = append(want, img)
	}

	e, err := NewEngine(s, tw, th, full, 0, frames, opts)
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for f := 0; f < frames; f++ {
		img := fb.New(tw, th)
		rep, err := e.RenderFrame(f, img)
		if err != nil {
			t.Fatal(err)
		}
		saved += rep.Copied
		if !img.Equal(want[f]) {
			t.Errorf("frame %d: AA coherent render differs in %d pixels",
				f, img.DiffCount(want[f]))
		}
	}
	if saved == 0 {
		t.Error("coherence saved nothing with AA on")
	}
}

// Long animations must not accumulate stale registrations without
// bound: after periodic compaction the live set stays near the
// steady-state size.
func TestRegistrationMemoryBounded(t *testing.T) {
	const frames = 40
	s := movingScene(frames)
	e, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, frames,
		Options{CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	img := fb.New(tw, th)
	var sizes []int
	for f := 0; f < frames; f++ {
		if _, err := e.RenderFrame(f, img); err != nil {
			t.Fatal(err)
		}
		total := 0
		for idx := 0; idx < e.Grid().NumVoxels(); idx++ {
			total += len(e.voxelPixels[idx])
		}
		sizes = append(sizes, total)
	}
	// The stored entry count late in the animation must stay within a
	// small factor of the early steady state, not grow linearly.
	early := sizes[9]
	late := sizes[frames-1]
	if late > early*3 {
		t.Errorf("registration storage grew from %d (frame 9) to %d (frame %d)",
			early, late, frames-1)
	}
}

// Compaction must not change rendering results.
func TestCompactionPreservesCorrectness(t *testing.T) {
	const frames = 12
	s := movingScene(frames)
	render := func(compactEvery int) []*fb.Framebuffer {
		e, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, frames,
			Options{CompactEvery: compactEvery})
		if err != nil {
			t.Fatal(err)
		}
		var out []*fb.Framebuffer
		for f := 0; f < frames; f++ {
			img := fb.New(tw, th)
			if _, err := e.RenderFrame(f, img); err != nil {
				t.Fatal(err)
			}
			out = append(out, img)
		}
		return out
	}
	aggressive := render(2)
	disabled := render(-1)
	for f := range aggressive {
		if !aggressive[f].Equal(disabled[f]) {
			t.Errorf("frame %d differs between compaction policies", f)
		}
	}
}
