package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdentityIsNeutral(t *testing.T) {
	p := V(3, -2, 7)
	if got := Identity().MulPoint(p); got != p {
		t.Errorf("I*p = %v", got)
	}
	if got := Identity().MulDir(p); got != p {
		t.Errorf("I*d = %v", got)
	}
}

func TestTranslate(t *testing.T) {
	m := Translate(1, 2, 3)
	if got := m.MulPoint(V(0, 0, 0)); got != V(1, 2, 3) {
		t.Errorf("translate point = %v", got)
	}
	// Directions are unaffected by translation.
	if got := m.MulDir(V(1, 0, 0)); got != V(1, 0, 0) {
		t.Errorf("translate dir = %v", got)
	}
}

func TestScaling(t *testing.T) {
	m := Scaling(2, 3, 4)
	if got := m.MulPoint(V(1, 1, 1)); got != V(2, 3, 4) {
		t.Errorf("scale = %v", got)
	}
}

func TestRotations(t *testing.T) {
	// 90-degree rotations map axes onto axes.
	cases := []struct {
		m    Mat4
		in   Vec3
		want Vec3
	}{
		{RotateX(math.Pi / 2), V(0, 1, 0), V(0, 0, 1)},
		{RotateY(math.Pi / 2), V(0, 0, 1), V(1, 0, 0)},
		{RotateZ(math.Pi / 2), V(1, 0, 0), V(0, 1, 0)},
		{RotateAxis(V(0, 0, 1), math.Pi/2), V(1, 0, 0), V(0, 1, 0)},
	}
	for i, c := range cases {
		got := c.m.MulDir(c.in)
		if !got.ApproxEq(c.want, 1e-12) {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestRotationPreservesLength(t *testing.T) {
	m := RotateAxis(V(1, 2, 3), 1.2345)
	v := V(-4, 5, 0.5)
	if math.Abs(m.MulDir(v).Len()-v.Len()) > 1e-12 {
		t.Error("rotation changed vector length")
	}
}

func TestMatMulAssociativity(t *testing.T) {
	a := RotateX(0.3)
	b := Translate(1, 2, 3)
	c := Scaling(2, 2, 2)
	lhs := a.MulM(b).MulM(c)
	rhs := a.MulM(b.MulM(c))
	if !lhs.ApproxEq(rhs, 1e-12) {
		t.Error("matrix multiplication not associative")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	m := Translate(1, -2, 3).MulM(RotateY(0.7)).MulM(Scaling(2, 0.5, 3))
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("invertible matrix reported singular")
	}
	if got := m.MulM(inv); !got.ApproxEq(Identity(), 1e-9) {
		t.Errorf("m * m^-1 != I: %v", got)
	}
	p := V(0.4, -7, 2)
	back := inv.MulPoint(m.MulPoint(p))
	if !back.ApproxEq(p, 1e-9) {
		t.Errorf("inverse round trip: %v != %v", back, p)
	}
}

func TestInverseSingular(t *testing.T) {
	if _, ok := Scaling(1, 0, 1).Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestTranspose(t *testing.T) {
	m := Translate(1, 2, 3)
	tt := m.Transpose().Transpose()
	if !tt.ApproxEq(m, 0) {
		t.Error("double transpose != original")
	}
	if m.Transpose().M[3][0] != 1 {
		t.Error("transpose did not move translation column")
	}
}

func TestMulNormalPlane(t *testing.T) {
	// Scaling a plane's geometry by (2,1,1) must keep the normal of the
	// YZ-plane pointing along X after inverse-transpose transform.
	m := Scaling(2, 1, 1)
	inv, _ := m.Inverse()
	n := inv.MulNormal(V(1, 0, 0)).Norm()
	if !n.ApproxEq(V(1, 0, 0), 1e-12) {
		t.Errorf("normal = %v", n)
	}
	// Non-uniform scale on a slanted normal: normal must stay
	// perpendicular to transformed tangent.
	m = Scaling(1, 4, 1)
	inv, _ = m.Inverse()
	tangent := V(1, -1, 0) // tangent of plane x+y=0
	normal := V(1, 1, 0)
	tn := m.MulDir(tangent)
	nn := inv.MulNormal(normal)
	if math.Abs(tn.Dot(nn)) > 1e-12 {
		t.Errorf("transformed normal not perpendicular: dot=%v", tn.Dot(nn))
	}
}

func TestTransformCompose(t *testing.T) {
	a := NewTransform(Translate(1, 0, 0))
	b := NewTransform(Scaling(2, 2, 2))
	// Compose applies a first, then b.
	ab := a.Compose(b)
	p := V(1, 1, 1)
	want := b.Fwd.MulPoint(a.Fwd.MulPoint(p))
	if got := ab.Fwd.MulPoint(p); !got.ApproxEq(want, 1e-12) {
		t.Errorf("compose fwd = %v, want %v", got, want)
	}
	// And the inverse undoes it.
	if got := ab.Inv.MulPoint(ab.Fwd.MulPoint(p)); !got.ApproxEq(p, 1e-9) {
		t.Errorf("compose inverse round trip = %v", got)
	}
}

func TestNewTransformPanicsOnSingular(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for singular transform")
		}
	}()
	NewTransform(Scaling(0, 1, 1))
}

// Property: for random affine transforms built from rotations and
// translations (always invertible), Inverse is a true inverse.
func TestQuickInverse(t *testing.T) {
	f := func(rx, ry, rz, tx, ty, tz float64) bool {
		if anyBad(rx, ry, rz, tx, ty, tz) {
			return true
		}
		rx, ry, rz = clampAngle(rx), clampAngle(ry), clampAngle(rz)
		tx, ty, tz = clampT(tx), clampT(ty), clampT(tz)
		m := Translate(tx, ty, tz).MulM(RotateX(rx)).MulM(RotateY(ry)).MulM(RotateZ(rz))
		inv, ok := m.Inverse()
		if !ok {
			return false
		}
		return m.MulM(inv).ApproxEq(Identity(), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

func clampAngle(x float64) float64 { return math.Mod(x, 2*math.Pi) }
func clampT(x float64) float64     { return math.Mod(x, 1000) }
