package msg

import (
	"bytes"
	"testing"
)

// FuzzBufferUnpack proves the pack/unpack buffer is total over arbitrary
// input: any byte string — malformed, truncated, or hostile (length
// prefixes near MaxInt64) — either unpacks or sets the sticky error, and
// never panics or over-reads. This is the boundary every wire payload
// crosses, so the guarantee is what lets the master absorb malformed
// messages by retiring their sender instead of crashing.
func FuzzBufferUnpack(f *testing.F) {
	// Well-formed seed: one of everything.
	good := NewBuffer()
	good.PackInt(-7)
	good.PackFloat(3.5)
	good.PackBytes([]byte("pixels"))
	good.PackString("worker01")
	good.PackInts([]int64{1, 2, 3})
	good.PackFloats([]float64{0.5, -0.25})
	good.PackBool(true)
	f.Add(good.Bytes())
	// Truncations at interesting offsets.
	f.Add(good.Bytes()[:len(good.Bytes())-1])
	f.Add(good.Bytes()[:9])
	f.Add([]byte{})
	// Hostile length prefixes: MaxInt64, MaxInt64-ish sums that would
	// overflow pos+int(n), and negative counts.
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 1, 2, 3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Drive every unpacker in a fixed rotation until the buffer
		// errors or runs dry; none may panic.
		b := FromBytes(data)
		for i := 0; b.Err() == nil && b.Len() > 0 && i < 1024; i++ {
			switch i % 7 {
			case 0:
				b.UnpackInt()
			case 1:
				b.UnpackFloat()
			case 2:
				b.UnpackBytes()
			case 3:
				b.UnpackString()
			case 4:
				b.UnpackInts()
			case 5:
				b.UnpackFloats()
			case 6:
				b.UnpackBool()
			}
		}
		// Sticky error: once set, every unpack stays zero-valued.
		if b.Err() != nil {
			if v := b.UnpackInt(); v != 0 {
				t.Fatalf("UnpackInt after error = %d, want 0", v)
			}
			if p := b.UnpackBytes(); p != nil {
				t.Fatalf("UnpackBytes after error = %v, want nil", p)
			}
		}

		// Open must never panic either, and on success returns a strict
		// prefix.
		if body, err := Open(data); err == nil {
			if len(body) != len(data)-4 {
				t.Fatalf("Open returned %d bytes from %d", len(body), len(data))
			}
		}
	})
}

func TestSealOpenRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		sealed := Seal(append([]byte(nil), payload...))
		body, err := Open(sealed)
		if err != nil {
			t.Fatalf("Open(Seal(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(body, payload) {
			t.Fatalf("round trip changed payload")
		}
	}
}

func TestOpenDetectsDamage(t *testing.T) {
	sealed := Seal([]byte("the quick brown fox"))
	// Every single-byte flip must be caught.
	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x40
		if _, err := Open(bad); err == nil {
			t.Fatalf("flip at byte %d not detected", i)
		}
	}
	// Every truncation must be caught (CRC of a prefix almost never
	// matches; the short ones fail the length check outright).
	for n := 0; n < len(sealed); n++ {
		if _, err := Open(sealed[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestHubPostAndDetach(t *testing.T) {
	h := NewHub()
	a, b := Pipe(4)
	if err := h.Attach("w1", a); err != nil {
		t.Fatal(err)
	}
	// Post injects a synthetic message into the merged stream.
	h.Post(Message{Tag: -42})
	m, err := h.Recv()
	if err != nil || m.Tag != -42 {
		t.Fatalf("posted message not received: %v %v", m, err)
	}
	// Detach severs the slave: its pump posts TagDown, and the peer's
	// end observes closure.
	h.Detach("w1")
	m, err = h.Recv()
	if err != nil || m.Tag != TagDown || m.From != "w1" {
		t.Fatalf("expected TagDown from w1, got %v %v", m, err)
	}
	if _, err := b.Recv(); err == nil {
		t.Error("detached slave's conn still open")
	}
	h.Detach("nobody") // unknown name: no-op
	h.Close()
	// Post after close must not panic or deliver.
	h.Post(Message{Tag: 1})
}
