package farm

import (
	"fmt"
	"testing"
	"time"

	"nowrender/internal/faulty"
	"nowrender/internal/partition"
)

// The chaos net: render the same animation through a hostile transport
// and demand the same bytes. Every test here protects worker00, so the
// farm's contract — "completes correctly with at least one live worker"
// — is exercised rather than vacuously failed.

// TestChaosSoak drives the full local farm through a probabilistic fault
// schedule (drops, corruption, truncation, delays, severed connections)
// and asserts the output is byte-identical to a fault-free run. Seeded,
// so a failure reproduces exactly. Skipped under -short; CI runs it with
// -race.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	sc := farmScene(8)
	want := referenceFrames(t, sc)
	for _, seed := range []int64{7, 101} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := fmt.Sprintf(
				"seed=%d,drop=0.03,corrupt=0.02,truncate=0.02,delay=0.05:2ms,sever=0.005,protect=worker00", seed)
			plan, err := faulty.ParsePlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RenderLocal(Config{
				Scene: sc, W: fw, H: fh, Coherence: true, Workers: 4,
				Scheme:       partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
				Heartbeat:    20 * time.Millisecond,
				Liveness:     2 * time.Second,
				StallTimeout: 1500 * time.Millisecond,
				FrameRetries: 2,
				Speculate:    true,
				WrapConn:     plan.Wrap,
			})
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			assertFramesEqual(t, "chaos", res.Frames, want)
			inj := plan.Snapshot()
			injected := inj.Dropped + inj.Corrupted + inj.Truncated + inj.Delayed + inj.Severed
			if injected == 0 {
				t.Error("fault plan injected nothing; the soak was vacuous")
			}
			t.Logf("injected %+v; farm absorbed %s", inj, res.Faults.String())
		})
	}
}

// TestChaosSeedLivenessGivesUpOnMuteWorker: a worker whose every message
// (including its hello) vanishes must be given up on at the seed-phase
// liveness deadline instead of being awaited forever.
func TestChaosSeedLivenessGivesUpOnMuteWorker(t *testing.T) {
	sc := farmScene(4)
	want := referenceFrames(t, sc)
	plan := &faulty.Plan{
		Seed:    1,
		Rules:   []faulty.Rule{{Dir: faulty.SendOnly, Prob: 1, Action: faulty.Drop}},
		Protect: []string{"worker00"},
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Workers: 2,
		Scheme:    partition.SequenceDivision{Adaptive: true},
		Heartbeat: 10 * time.Millisecond,
		Liveness:  300 * time.Millisecond,
		WrapConn:  plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "mute-worker", res.Frames, want)
	if res.Faults.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Faults.WorkersLost)
	}
	if res.Faults.HeartbeatTimeouts < 1 {
		t.Errorf("HeartbeatTimeouts = %d, want >= 1", res.Faults.HeartbeatTimeouts)
	}
}

// TestChaosStallRetiresSilentTaskHolder: a worker that stays reachable
// (answers pings) but whose results all vanish holds its task forever;
// only the stall deadline can see that, and must requeue its frames.
func TestChaosStallRetiresSilentTaskHolder(t *testing.T) {
	sc := farmScene(6)
	want := referenceFrames(t, sc)
	plan := &faulty.Plan{
		Seed: 1,
		Rules: []faulty.Rule{
			{Tag: TagFrameDone, Dir: faulty.SendOnly, Prob: 1, Action: faulty.Drop},
			{Tag: TagTaskDone, Dir: faulty.SendOnly, Prob: 1, Action: faulty.Drop},
			{Tag: TagTruncateAck, Dir: faulty.SendOnly, Prob: 1, Action: faulty.Drop},
		},
		Protect: []string{"worker00"},
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Workers: 2,
		Scheme:       partition.SequenceDivision{Adaptive: true},
		Heartbeat:    25 * time.Millisecond,
		Liveness:     10 * time.Second, // pongs flow; isolate the stall path
		StallTimeout: 600 * time.Millisecond,
		WrapConn:     plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "stalled-worker", res.Frames, want)
	if res.Faults.StallTimeouts < 1 {
		t.Errorf("StallTimeouts = %d, want >= 1", res.Faults.StallTimeouts)
	}
	if res.Faults.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Faults.WorkersLost)
	}
	if res.Faults.FramesRequeued < 1 {
		t.Errorf("FramesRequeued = %d, want >= 1", res.Faults.FramesRequeued)
	}
}

// TestChaosQuarantinePoisonFrame: every worker's connection severs
// while delivering its first frame result, so the single frame of this
// animation kills whoever touches it. With a retry budget of 1 the
// second death exhausts the budget and the master must render the
// frame locally — with pixels identical to what the farm would have
// produced — even though no worker survives. The scenario is symmetric
// (no protected worker), so it is deterministic under any hello order:
// the frame goes to one worker, kills it, is requeued to the other,
// kills it too, and the quarantine render completes the run before the
// all-workers-lost check can fail it.
func TestChaosQuarantinePoisonFrame(t *testing.T) {
	sc := farmScene(1)
	want := referenceFrames(t, sc)
	plan := &faulty.Plan{
		Seed:  1,
		Rules: []faulty.Rule{{Tag: TagFrameDone, Dir: faulty.SendOnly, After: 1, Action: faulty.Sever}},
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Workers: 2,
		Scheme:       partition.SequenceDivision{Adaptive: false},
		FrameRetries: 1,
		WrapConn:     plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "quarantine", res.Frames, want)
	if res.Faults.FramesQuarantined != 1 {
		t.Errorf("FramesQuarantined = %d, want 1 (faults: %s)",
			res.Faults.FramesQuarantined, res.Faults.String())
	}
	if res.Faults.WorkersLost != 2 {
		t.Errorf("WorkersLost = %d, want 2", res.Faults.WorkersLost)
	}
}

// TestChaosSpeculationCovers a straggler: one worker's frame results are
// heavily delayed, so the fast worker runs dry and must speculatively
// re-render the straggler's remaining frames; first delivery wins and
// the run finishes without waiting out the delays.
func TestChaosSpeculationCoversStraggler(t *testing.T) {
	sc := farmScene(4)
	want := referenceFrames(t, sc)
	plan := &faulty.Plan{
		Seed:    1,
		Rules:   []faulty.Rule{{Tag: TagFrameDone, Dir: faulty.SendOnly, Prob: 1, Action: faulty.Delay, Delay: time.Second}},
		Protect: []string{"worker00"},
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Workers: 2,
		Scheme:    partition.SequenceDivision{Adaptive: false},
		Speculate: true,
		WrapConn:  plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "speculation", res.Frames, want)
	if res.Faults.SpeculativeTasks < 1 {
		t.Errorf("SpeculativeTasks = %d, want >= 1 (faults: %s)",
			res.Faults.SpeculativeTasks, res.Faults.String())
	}
}

// TestChaosCorruptionRetiresSender: a corrupted frame result fails the
// CRC at decode; the master must retire the sender as malformed, requeue
// its frames on the survivor, and still produce correct output.
func TestChaosCorruptionRetiresSender(t *testing.T) {
	sc := farmScene(4)
	want := referenceFrames(t, sc)
	plan := &faulty.Plan{
		Seed:    3,
		Rules:   []faulty.Rule{{Tag: TagFrameDone, Dir: faulty.SendOnly, After: 1, Action: faulty.Corrupt}},
		Protect: []string{"worker00"},
	}
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Workers: 2,
		Scheme:   partition.SequenceDivision{Adaptive: false},
		WrapConn: plan.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "corruption", res.Frames, want)
	if res.Faults.MalformedMessages != 1 {
		t.Errorf("MalformedMessages = %d, want 1", res.Faults.MalformedMessages)
	}
	if res.Faults.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", res.Faults.WorkersLost)
	}
}
