package scenes

import (
	"math"
	"strings"
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

func TestNewtonInventoryMatchesPaper(t *testing.T) {
	s := Newton(0)
	if s.Frames != 45 {
		t.Errorf("frames = %d, want the paper's 45", s.Frames)
	}
	if s.MaxDepth != 5 {
		t.Errorf("max depth = %d, want the paper's 5", s.MaxDepth)
	}
	var planes, spheres, cylinders int
	for _, o := range s.Objects {
		switch o.Shape.(type) {
		case *geom.Plane:
			planes++
		case *geom.Sphere:
			spheres++
		case *geom.Cylinder:
			cylinders++
		default:
			t.Errorf("unexpected primitive %T in Newton scene", o.Shape)
		}
	}
	// "consisting of one plane, five spheres, and sixteen cylinders" (§4)
	if planes != 1 || spheres != 5 || cylinders != 16 {
		t.Errorf("inventory = %d planes, %d spheres, %d cylinders; want 1/5/16",
			planes, spheres, cylinders)
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewtonOnlyEndMarblesMove(t *testing.T) {
	s := Newton(45)
	for _, o := range s.Objects {
		isEnd := strings.HasPrefix(o.Name, "marbleA") || strings.HasPrefix(o.Name, "marbleE") ||
			strings.HasPrefix(o.Name, "stringA") || strings.HasPrefix(o.Name, "stringE")
		moved := false
		for f := 0; f < 44 && !moved; f++ {
			moved = o.MovedBetween(f, f+1)
		}
		if isEnd && !moved {
			t.Errorf("%s never moves", o.Name)
		}
		if !isEnd && moved {
			t.Errorf("%s moved but should be static", o.Name)
		}
	}
}

func TestCradleAngleAlternates(t *testing.T) {
	// At frame 0 the left marble is raised, the right at rest.
	l, r := CradleAngle(0, 45)
	if l <= 0 || r != 0 {
		t.Errorf("frame 0: left=%v right=%v", l, r)
	}
	// Half a period later the right marble is out.
	l, r = CradleAngle(15, 45)
	if r <= 0 || l != 0 {
		t.Errorf("frame 15: left=%v right=%v", l, r)
	}
	// Never both out at once; angles bounded by the maximum swing.
	for f := 0; f < 45; f++ {
		l, r := CradleAngle(f, 45)
		if l != 0 && r != 0 {
			t.Errorf("frame %d: both marbles out (%v, %v)", f, l, r)
		}
		if l < 0 || r < 0 || l > swingMax+1e-9 || r > swingMax+1e-9 {
			t.Errorf("frame %d: angle out of range (%v, %v)", f, l, r)
		}
	}
}

func TestNewtonSwingPreservesStringAttachment(t *testing.T) {
	// The swinging marble must stay at string-length distance from its
	// anchor in every frame.
	s := Newton(45)
	var marble *geom.Sphere
	var track vm.Transform
	for _, o := range s.Objects {
		if o.Name == "marbleA" {
			marble = o.Shape.(*geom.Sphere)
			for f := 0; f < 45; f += 7 {
				track = o.Track.At(f)
				center := track.Fwd.MulPoint(marble.Center)
				anchor := vm.V(marble.Center.X, anchorY, 0)
				dist := center.Dist(anchor)
				restDist := marble.Center.Dist(anchor)
				if math.Abs(dist-restDist) > 1e-9 {
					t.Errorf("frame %d: marble-anchor distance %v, want %v", f, dist, restDist)
				}
			}
		}
	}
	if marble == nil {
		t.Fatal("marbleA not found")
	}
}

func TestBouncingScene(t *testing.T) {
	s := Bouncing(0)
	if s.Frames != BouncingFrames {
		t.Errorf("frames = %d", s.Frames)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The ball moves every frame; walls never do.
	for _, o := range s.Objects {
		moved := o.MovedBetween(3, 4)
		if o.Name == "ball" && !moved {
			t.Error("ball did not move")
		}
		if o.Name != "ball" && moved {
			t.Errorf("%s moved", o.Name)
		}
	}
}

func TestBouncePositionStaysInRoom(t *testing.T) {
	const frames = 30
	for f := 0; f < frames; f++ {
		p := BouncePosition(f, frames)
		if p.Y < 0.79 {
			t.Errorf("frame %d: ball below floor (y=%v)", f, p.Y)
		}
		if p.Y > 8-0.79 {
			t.Errorf("frame %d: ball above ceiling (y=%v)", f, p.Y)
		}
		if math.Abs(p.X) > 6-0.79 || p.Z < -4+0.79 {
			t.Errorf("frame %d: ball outside walls %v", f, p)
		}
	}
	// The ball touches down (y near floor contact) between bounces.
	minY := math.Inf(1)
	for f := 0; f < frames; f++ {
		if y := BouncePosition(f, frames).Y; y < minY {
			minY = y
		}
	}
	if minY > 1.2 {
		t.Errorf("ball never approaches the floor: min y = %v", minY)
	}
}

func TestScenesRenderSmoke(t *testing.T) {
	for name, build := range map[string]func() *fb.Framebuffer{
		"newton": func() *fb.Framebuffer {
			ft, err := trace.New(Newton(45), 22, trace.Options{})
			if err != nil {
				t.Fatal(err)
			}
			img := fb.New(48, 36)
			ft.RenderFull(img)
			return img
		},
		"bouncing": func() *fb.Framebuffer {
			ft, err := trace.New(Bouncing(30), 0, trace.Options{})
			if err != nil {
				t.Fatal(err)
			}
			img := fb.New(48, 36)
			ft.RenderFull(img)
			return img
		},
		"quickstart": func() *fb.Framebuffer {
			ft, err := trace.New(Quickstart(), 0, trace.Options{})
			if err != nil {
				t.Fatal(err)
			}
			img := fb.New(48, 36)
			ft.RenderFull(img)
			return img
		},
	} {
		img := build()
		// Images must have non-trivial content: more than 32 distinct
		// colours.
		colors := make(map[[3]byte]bool)
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				r, g, b := img.At(x, y)
				colors[[3]byte{r, g, b}] = true
			}
		}
		if len(colors) < 32 {
			t.Errorf("%s: only %d distinct colours; scene probably broken", name, len(colors))
		}
	}
}

func TestNewtonCoherenceFriendly(t *testing.T) {
	// The Newton scene's whole point: most of the image is static. Check
	// that consecutive fully-rendered frames differ in a minority of
	// pixels.
	s := Newton(45)
	render := func(f int) *fb.Framebuffer {
		ft, err := trace.New(s, f, trace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		img := fb.New(60, 45)
		ft.RenderFull(img)
		return img
	}
	a, b := render(5), render(6)
	diff := a.DiffCount(b)
	if diff == 0 {
		t.Error("consecutive frames identical; animation broken")
	}
	if frac := float64(diff) / float64(60*45); frac > 0.5 {
		t.Errorf("%.0f%% of pixels change per frame; coherence would be useless", frac*100)
	}
}
