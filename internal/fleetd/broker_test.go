package fleetd

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// manualClock is an injectable broker clock for deterministic expiry.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBroker(t *testing.T, capacity int) (*Broker, *manualClock) {
	t.Helper()
	clk := newManualClock()
	b := NewBroker(BrokerConfig{Capacity: capacity, Term: time.Second, Now: clk.Now})
	return b, clk
}

func mustAcquire(t *testing.T, b *Broker, replica string, n int, term time.Duration) GrantInfo {
	t.Helper()
	g, err := b.Acquire(context.Background(), replica, n, term)
	if err != nil {
		t.Fatalf("acquire(%s, %d): %v", replica, n, err)
	}
	return g
}

func checkInvariant(t *testing.T, b *Broker) {
	t.Helper()
	if err := b.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestBrokerGrantDeterministicUnits: grants hand out the lowest-sorted
// free units, so two identical ledgers grant identically.
func TestBrokerGrantDeterministicUnits(t *testing.T) {
	b, _ := testBroker(t, 4)
	g := mustAcquire(t, b, "a", 2, 0)
	if len(g.Units) != 2 || g.Units[0] != "pool/0" || g.Units[1] != "pool/1" {
		t.Fatalf("units = %v, want [pool/0 pool/1]", g.Units)
	}
	g2 := mustAcquire(t, b, "b", 2, 0)
	if len(g2.Units) != 2 || g2.Units[0] != "pool/2" || g2.Units[1] != "pool/3" {
		t.Fatalf("units = %v, want [pool/2 pool/3]", g2.Units)
	}
	checkInvariant(t, b)
	st := b.Stats()
	if st.Leased != 4 || st.Free != 0 || st.Replicas["a"] != 2 || st.Replicas["b"] != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBrokerExpiryFreesCrashedReplicasUnits: a replica that stops
// renewing loses its lease after one term, and the units go back to the
// pool for others.
func TestBrokerExpiryFreesCrashedReplicasUnits(t *testing.T) {
	b, clk := testBroker(t, 2)
	g := mustAcquire(t, b, "a", 2, time.Second)
	if got := b.Stats().Free; got != 0 {
		t.Fatalf("free = %d, want 0", got)
	}
	clk.Advance(999 * time.Millisecond)
	b.Expire()
	if got := b.Stats().Expiries; got != 0 {
		t.Fatalf("lease expired before its term (expiries = %d)", got)
	}
	clk.Advance(2 * time.Millisecond)
	b.Expire()
	st := b.Stats()
	if st.Expiries != 1 || st.Free != 2 || st.Leased != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
	// The dead lease can no longer be renewed or released.
	if _, ok := b.Renew("a", g.ID, 0); ok {
		t.Fatal("renewed an expired lease")
	}
	if b.Release("a", g.ID) {
		t.Fatal("released an expired lease")
	}
	checkInvariant(t, b)
	// And another replica gets the same units.
	g2 := mustAcquire(t, b, "b", 2, 0)
	if g2.Units[0] != "pool/0" || g2.Units[1] != "pool/1" {
		t.Fatalf("units after expiry = %v", g2.Units)
	}
}

// TestBrokerRenewExtendsTerm: renewing pushes expiry out from now, so a
// live replica holds its workers indefinitely.
func TestBrokerRenewExtendsTerm(t *testing.T) {
	b, clk := testBroker(t, 1)
	g := mustAcquire(t, b, "a", 1, time.Second)
	for i := 0; i < 5; i++ {
		clk.Advance(900 * time.Millisecond)
		if _, ok := b.Renew("a", g.ID, time.Second); !ok {
			t.Fatalf("renew %d failed", i)
		}
	}
	b.Expire()
	if st := b.Stats(); st.Leased != 1 || st.Renews != 5 {
		t.Fatalf("stats = %+v", st)
	}
	// Renewing under the wrong replica name must fail: leases are owned.
	if _, ok := b.Renew("b", g.ID, 0); ok {
		t.Fatal("foreign replica renewed the lease")
	}
	checkInvariant(t, b)
}

// TestBrokerBlockedAcquireWakesOnExpiry: an acquire blocked on an
// exhausted pool is granted as soon as another replica's lease expires
// — without any explicit release or sweeper.
func TestBrokerBlockedAcquireWakesOnExpiry(t *testing.T) {
	clk := newManualClock()
	b := NewBroker(BrokerConfig{Capacity: 1, Term: 30 * time.Millisecond, Now: clk.Now})
	mustAcquire(t, b, "a", 1, 30*time.Millisecond)

	granted := make(chan GrantInfo, 1)
	go func() {
		g, err := b.Acquire(context.Background(), "b", 1, 0)
		if err != nil {
			t.Error(err)
		}
		granted <- g
	}()
	select {
	case <-granted:
		t.Fatal("acquire granted while pool exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	// The manual clock jumps past a's expiry; the blocked acquire's own
	// expiry timer (armed from real time) re-checks and finds the unit.
	clk.Advance(31 * time.Millisecond)
	select {
	case g := <-granted:
		if g.Replica != "b" || len(g.Units) != 1 {
			t.Fatalf("grant = %+v", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked acquire never woke on expiry")
	}
	checkInvariant(t, b)
}

// TestBrokerAcquireHonoursContext: a blocked acquire unblocks with the
// context error.
func TestBrokerAcquireHonoursContext(t *testing.T) {
	b, _ := testBroker(t, 1)
	mustAcquire(t, b, "a", 1, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := b.Acquire(ctx, "b", 1, 0); err == nil {
		t.Fatal("acquire succeeded on an exhausted pool with an expiring context")
	}
}

// TestBrokerOverAskClampsToCapacity mirrors fleet.Pool: asking for more
// than the whole pool grants the whole pool, not a deadlock.
func TestBrokerOverAskClampsToCapacity(t *testing.T) {
	b, _ := testBroker(t, 3)
	g := mustAcquire(t, b, "a", 50, 0)
	if len(g.Units) != 3 {
		t.Fatalf("granted %d units, want clamp to 3", len(g.Units))
	}
	b.Release("a", g.ID)
	if st := b.Stats(); st.Free != 3 || st.Releases != 1 {
		t.Fatalf("stats after release = %+v", st)
	}
	checkInvariant(t, b)
}

// TestBrokerEmptyLedgerRefuses: with no members at all, Acquire errors
// instead of blocking forever.
func TestBrokerEmptyLedgerRefuses(t *testing.T) {
	b := NewBroker(BrokerConfig{Capacity: 0, Now: newManualClock().Now})
	if _, err := b.Acquire(context.Background(), "a", 1, 0); err == nil {
		t.Fatal("acquire granted on an empty ledger")
	}
}

// TestBrokerMemberLameDuckDrain: a member leaving while its units are
// leased retires those units at lease end instead of revoking them —
// capacity shrinks, the invariant holds throughout.
func TestBrokerMemberLameDuckDrain(t *testing.T) {
	b, clk := testBroker(t, 0)
	b.Join("ws01", 2)
	b.Join("ws02", 2)
	g := mustAcquire(t, b, "a", 4, time.Second)
	b.Leave("ws02")
	checkInvariant(t, b)
	if st := b.Stats(); st.Capacity != 2 || st.Leased != 4 {
		t.Fatalf("stats after leave = %+v (lame-duck over-subscription expected)", st)
	}
	// The lease ends; ws02's units vanish, ws01's return.
	clk.Advance(2 * time.Second)
	b.Expire()
	checkInvariant(t, b)
	st := b.Stats()
	if st.Capacity != 2 || st.Free != 2 || st.Leased != 0 {
		t.Fatalf("stats after drain = %+v", st)
	}
	_ = g
}

// TestBrokerJoinWakesBlockedAcquire: capacity arriving via Join grants
// a waiting replica.
func TestBrokerJoinWakesBlockedAcquire(t *testing.T) {
	b := NewBroker(BrokerConfig{Capacity: 1, Term: time.Hour, Now: newManualClock().Now})
	mustAcquire(t, b, "a", 1, 0)
	granted := make(chan struct{})
	go func() {
		if _, err := b.Acquire(context.Background(), "b", 1, 0); err != nil {
			t.Error(err)
		}
		close(granted)
	}()
	time.Sleep(20 * time.Millisecond)
	b.Join("ws01", 1)
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("join did not wake the blocked acquire")
	}
	checkInvariant(t, b)
}

// TestBrokerCheckInvariantCatchesCorruption: the checker actually
// detects a double-leased unit (white-box: corrupt the ledger).
func TestBrokerCheckInvariantCatchesCorruption(t *testing.T) {
	b, _ := testBroker(t, 2)
	mustAcquire(t, b, "a", 1, 0)
	b.mu.Lock()
	b.leases[999] = &brokerLease{
		id: 999, replica: "evil",
		units:   []Unit{"pool/0"}, // already leased to a
		expires: b.now().Add(time.Hour),
	}
	b.mu.Unlock()
	err := b.CheckInvariant()
	if err == nil || !strings.Contains(err.Error(), "leased to both") {
		t.Fatalf("invariant checker missed the double lease: %v", err)
	}
}

// TestClampTerm pins the term bounds.
func TestClampTerm(t *testing.T) {
	if got := clampTerm(0); got != MinTerm {
		t.Fatalf("clampTerm(0) = %v", got)
	}
	if got := clampTerm(48 * time.Hour); got != MaxTerm {
		t.Fatalf("clampTerm(48h) = %v", got)
	}
	if got := clampTerm(time.Second); got != time.Second {
		t.Fatalf("clampTerm(1s) = %v", got)
	}
}
