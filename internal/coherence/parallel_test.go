package coherence

import (
	"fmt"
	"testing"

	"nowrender/internal/fb"
)

// renderRun renders frames [0, frames) at the given thread count,
// returning the framebuffers and per-frame reports.
func renderRun(t *testing.T, frames, threads int) ([]*fb.Framebuffer, []FrameReport, *Engine) {
	t.Helper()
	s := movingScene(frames)
	e, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, frames, Options{Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	var imgs []*fb.Framebuffer
	var reps []FrameReport
	for f := 0; f < frames; f++ {
		img := fb.New(tw, th)
		rep, err := e.RenderFrame(f, img)
		if err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img)
		reps = append(reps, rep)
	}
	return imgs, reps, e
}

// TestThreadsDeterministic is the determinism contract on the engine:
// the same two-frame animation at Threads=1 and Threads=8 must produce
// byte-identical framebuffers and equal total ray counts — and every
// other report quantity must match too, because the parallel path
// reproduces the serial registration multiset exactly. A longer run
// covers the copy path and periodic compaction.
func TestThreadsDeterministic(t *testing.T) {
	for _, frames := range []int{2, 6} {
		t.Run(fmt.Sprintf("frames%d", frames), func(t *testing.T) {
			serialImgs, serialReps, serialEng := renderRun(t, frames, 1)
			parImgs, parReps, parEng := renderRun(t, frames, 8)
			for f := 0; f < frames; f++ {
				if !parImgs[f].Equal(serialImgs[f]) {
					t.Errorf("frame %d: %d differing pixels between 1 and 8 threads",
						f, parImgs[f].DiffCount(serialImgs[f]))
				}
				sr, pr := serialReps[f], parReps[f]
				if pr.Rays.Total() != sr.Rays.Total() {
					t.Errorf("frame %d: total rays %d at 8 threads, want %d", f, pr.Rays.Total(), sr.Rays.Total())
				}
				if pr.Rays != sr.Rays {
					t.Errorf("frame %d: ray breakdown %v, want %v", f, pr.Rays, sr.Rays)
				}
				pr.Overhead, sr.Overhead = 0, 0
				if pr != sr {
					t.Errorf("frame %d: report %+v, want %+v", f, pr, sr)
				}
			}
			if got, want := parEng.RegistrationCount(), serialEng.RegistrationCount(); got != want {
				t.Errorf("live registrations %d at 8 threads, want %d", got, want)
			}
		})
	}
}

// TestThreadsDeterministicWithAA repeats the contract with adaptive
// antialiasing and supersampling on — the sample patterns must stay
// per-pixel deterministic under tiling.
func TestThreadsDeterministicWithAA(t *testing.T) {
	const frames = 3
	s := movingScene(frames)
	run := func(threads int) []*fb.Framebuffer {
		e, err := NewEngine(s, tw, th, fb.NewRect(0, 0, tw, th), 0, frames,
			Options{Threads: threads, AAThreshold: 0.1, AASamples: 4})
		if err != nil {
			t.Fatal(err)
		}
		var imgs []*fb.Framebuffer
		for f := 0; f < frames; f++ {
			img := fb.New(tw, th)
			if _, err := e.RenderFrame(f, img); err != nil {
				t.Fatal(err)
			}
			imgs = append(imgs, img)
		}
		return imgs
	}
	want := run(1)
	got := run(8)
	for f := range want {
		if !got[f].Equal(want[f]) {
			t.Errorf("frame %d: %d differing pixels with AA", f, got[f].DiffCount(want[f]))
		}
	}
}
