package framecache

import (
	"sync"
	"testing"
	"time"

	"nowrender/internal/fb"
)

// TestCacheEviction keeps the cache under its byte budget, LRU-first.
func TestCacheEviction(t *testing.T) {
	frameBytes := int64(32 * 32 * 3)
	c := New(3 * frameBytes)
	k := NewSeqKey("x", 32, 32, 1)
	for f := 0; f < 5; f++ {
		c.Put(Key{Seq: k, Frame: f}, fb.New(32, 32))
	}
	cs := c.Stats()
	if cs.Entries != 3 || cs.Bytes != 3*frameBytes {
		t.Fatalf("entries=%d bytes=%d, want 3 entries / %d bytes", cs.Entries, cs.Bytes, 3*frameBytes)
	}
	if cs.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", cs.Evictions)
	}
	// LRU: oldest frames (0, 1) were evicted.
	if _, ok := c.Get(Key{Seq: k, Frame: 0}); ok {
		t.Fatal("frame 0 survived eviction")
	}
	if _, ok := c.Get(Key{Seq: k, Frame: 4}); !ok {
		t.Fatal("frame 4 missing")
	}
}

// TestCacheEvictionTable drives put/get sequences against a 3-frame
// budget and checks exactly which entries survive: eviction is LRU and a
// get refreshes recency.
func TestCacheEvictionTable(t *testing.T) {
	const side = 32
	frameBytes := int64(side * side * 3)
	type op struct {
		kind  string // "put" | "get"
		frame int
	}
	cases := []struct {
		name          string
		budget        int64
		ops           []op
		wantPresent   []int
		wantAbsent    []int
		wantEvictions uint64
	}{
		{
			name:        "lru-evicts-oldest",
			budget:      3 * frameBytes,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 3}, {"put", 4}},
			wantPresent: []int{2, 3, 4}, wantAbsent: []int{0, 1},
			wantEvictions: 2,
		},
		{
			name:        "get-refreshes-recency",
			budget:      3 * frameBytes,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"get", 0}, {"put", 3}},
			wantPresent: []int{0, 2, 3}, wantAbsent: []int{1},
			wantEvictions: 1,
		},
		{
			name:        "duplicate-put-refreshes-not-grows",
			budget:      3 * frameBytes,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 0}, {"put", 3}},
			wantPresent: []int{0, 2, 3}, wantAbsent: []int{1},
			wantEvictions: 1,
		},
		{
			name:        "frame-larger-than-budget-not-cached",
			budget:      frameBytes - 1,
			ops:         []op{{"put", 0}},
			wantPresent: nil, wantAbsent: []int{0},
			wantEvictions: 0,
		},
		{
			name:        "unlimited-budget-keeps-all",
			budget:      0,
			ops:         []op{{"put", 0}, {"put", 1}, {"put", 2}, {"put", 3}, {"put", 4}},
			wantPresent: []int{0, 1, 2, 3, 4}, wantAbsent: nil,
			wantEvictions: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(tc.budget)
			k := NewSeqKey("scene", side, side, 1)
			for _, o := range tc.ops {
				switch o.kind {
				case "put":
					c.Put(Key{Seq: k, Frame: o.frame}, fb.New(side, side))
				case "get":
					c.Get(Key{Seq: k, Frame: o.frame})
				}
			}
			for _, f := range tc.wantPresent {
				if _, ok := c.Get(Key{Seq: k, Frame: f}); !ok {
					t.Errorf("frame %d missing", f)
				}
			}
			for _, f := range tc.wantAbsent {
				if _, ok := c.Get(Key{Seq: k, Frame: f}); ok {
					t.Errorf("frame %d unexpectedly present", f)
				}
			}
			cs := c.Stats()
			if cs.Evictions != tc.wantEvictions {
				t.Errorf("evictions = %d, want %d", cs.Evictions, tc.wantEvictions)
			}
			if tc.budget > 0 && cs.Bytes > tc.budget {
				t.Errorf("cache holds %d bytes over budget %d", cs.Bytes, tc.budget)
			}
		})
	}
}

// TestCacheTTLTable pins the lazy-expiry clockwork with an injected
// clock: entries serve until their deadline passes strictly, a stale hit
// counts as an expiry plus a miss, and re-putting a key pushes its
// deadline out.
func TestCacheTTLTable(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	cases := []struct {
		name    string
		ttl     time.Duration
		advance time.Duration
		wantHit bool
	}{
		{"no-ttl-never-expires", 0, 1000 * time.Hour, true},
		{"fresh-within-ttl", time.Minute, 59 * time.Second, true},
		{"exactly-at-deadline-still-served", time.Minute, time.Minute, true},
		{"stale-past-deadline", time.Minute, time.Minute + time.Second, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewTTL(0, tc.ttl)
			now := base
			c.now = func() time.Time { return now }
			k := Key{Seq: NewSeqKey("s", 8, 8, 1), Frame: 0}
			c.Put(k, fb.New(8, 8))
			now = base.Add(tc.advance)
			_, ok := c.Get(k)
			if ok != tc.wantHit {
				t.Fatalf("hit = %v, want %v", ok, tc.wantHit)
			}
			cs := c.Stats()
			if tc.wantHit {
				if cs.Expired != 0 || cs.Entries != 1 {
					t.Errorf("expired=%d entries=%d, want 0/1", cs.Expired, cs.Entries)
				}
			} else {
				// A stale entry is dropped, counted, and its bytes freed.
				if cs.Expired != 1 || cs.Misses != 1 || cs.Entries != 0 || cs.Bytes != 0 {
					t.Errorf("expired=%d misses=%d entries=%d bytes=%d, want 1/1/0/0",
						cs.Expired, cs.Misses, cs.Entries, cs.Bytes)
				}
			}
		})
	}
}

// TestCacheTTLRefreshOnReput: re-producing a cached frame pushes its
// expiry out from the new production time.
func TestCacheTTLRefreshOnReput(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	c := NewTTL(0, time.Minute)
	now := base
	c.now = func() time.Time { return now }
	k := Key{Seq: NewSeqKey("s", 8, 8, 1), Frame: 0}
	c.Put(k, fb.New(8, 8))
	now = base.Add(40 * time.Second)
	c.Put(k, fb.New(8, 8)) // refresh: new deadline is t+40s+60s
	now = base.Add(90 * time.Second)
	if _, ok := c.Get(k); !ok {
		t.Fatal("refreshed entry expired on the original deadline")
	}
	now = base.Add(101 * time.Second)
	if _, ok := c.Get(k); ok {
		t.Fatal("entry survived past its refreshed deadline")
	}
}

// --- in-flight coalescing -------------------------------------------------

// TestAcquireLeadFollowComplete: first caller leads, later callers
// follow, Put feeds every follower the same framebuffer.
func TestAcquireLeadFollowComplete(t *testing.T) {
	c := New(0)
	k := Key{Seq: NewSeqKey("s", 8, 8, 1), Frame: 3}

	img, wait, lead := c.Acquire(k)
	if img != nil || wait != nil || !lead {
		t.Fatalf("first acquire = (%v, %v, %v), want lead", img, wait, lead)
	}
	if !c.InFlight(k) {
		t.Fatal("flight not registered")
	}

	var waits []<-chan *fb.Framebuffer
	for i := 0; i < 3; i++ {
		img, w, lead := c.Acquire(k)
		if img != nil || lead || w == nil {
			t.Fatalf("follower acquire %d = (%v, %v, %v), want wait channel", i, img, w, lead)
		}
		waits = append(waits, w)
	}

	frame := fb.New(8, 8)
	c.Put(k, frame)
	for i, w := range waits {
		got, ok := <-w
		if !ok || got != frame {
			t.Fatalf("follower %d received (%v, %v), want the produced frame", i, got, ok)
		}
		if _, ok := <-w; ok {
			t.Fatalf("follower %d channel not closed after delivery", i)
		}
	}
	if c.InFlight(k) {
		t.Fatal("flight survived Put")
	}
	cs := c.Stats()
	if cs.Coalesced != 3 || cs.FlightsLed != 1 {
		t.Fatalf("coalesced=%d flightsLed=%d, want 3/1", cs.Coalesced, cs.FlightsLed)
	}
	// Afterwards it is a plain cache hit.
	if img, wait, lead := c.Acquire(k); img == nil || wait != nil || lead {
		t.Fatalf("post-completion acquire = (%v, %v, %v), want hit", img, wait, lead)
	}
}

// TestAbortReleasesFollowers: an aborted flight closes follower
// channels empty, and the next Acquire leads again.
func TestAbortReleasesFollowers(t *testing.T) {
	c := New(0)
	k := Key{Seq: NewSeqKey("s", 8, 8, 1), Frame: 0}
	if _, _, lead := c.Acquire(k); !lead {
		t.Fatal("first acquire did not lead")
	}
	_, w, _ := c.Acquire(k)
	c.Abort(k)
	if got, ok := <-w; ok {
		t.Fatalf("aborted follower received %v", got)
	}
	c.Abort(k) // idempotent
	if _, _, lead := c.Acquire(k); !lead {
		t.Fatal("acquire after abort did not lead")
	}
	c.Abort(k)
}

// TestPutOverBudgetStillFeedsFollowers: a frame too large to cache
// still completes its flight.
func TestPutOverBudgetStillFeedsFollowers(t *testing.T) {
	c := New(10) // smaller than any frame
	k := Key{Seq: NewSeqKey("s", 8, 8, 1), Frame: 0}
	if _, _, lead := c.Acquire(k); !lead {
		t.Fatal("lead")
	}
	_, w, _ := c.Acquire(k)
	frame := fb.New(8, 8)
	c.Put(k, frame)
	if got, ok := <-w; !ok || got != frame {
		t.Fatalf("follower got (%v, %v)", got, ok)
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("over-budget frame was cached")
	}
}

// TestCoalescingConcurrent hammers one key from many goroutines: every
// acquirer ends with the same frame and exactly one production runs.
func TestCoalescingConcurrent(t *testing.T) {
	c := New(0)
	k := Key{Seq: NewSeqKey("s", 16, 16, 1), Frame: 0}
	frame := fb.New(16, 16)
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		leads     int
		delivered int
	)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			img, wait, lead := c.Acquire(k)
			switch {
			case lead:
				mu.Lock()
				leads++
				mu.Unlock()
				c.Put(k, frame)
			case wait != nil:
				if got, ok := <-wait; ok && got == frame {
					mu.Lock()
					delivered++
					mu.Unlock()
				}
			case img != nil:
				mu.Lock()
				delivered++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if leads != 1 {
		t.Fatalf("leads = %d, want exactly 1", leads)
	}
	if delivered != 31 {
		t.Fatalf("delivered = %d, want 31", delivered)
	}
}
