// Package compositor implements the distributed-framebuffer sinks that
// take pixel traffic off the farm master's hot path — the topology of
// "Scalable Ray Tracing Using the Distributed FrameBuffer" grafted onto
// the paper's master/worker farm. Each sink owns a contiguous shard of
// the frame range (partition.ShardMap): DFB-capable workers ship their
// frame results (key-frames and dirty-span deltas, the shared
// internal/wire codec) straight to the owning sink and send the master
// only small acks; the sink reassembles frames, fires OnFrame the
// moment a frame completes, and confirms each merged region to the
// master over a control conn so the master's completion, retry, and
// requeue bookkeeping keeps working without ever touching pixels.
//
// A sink is a single event loop over an msg.Hub, so its assembly needs
// no locks; cmd/nowcompose runs one per process, and Registry runs N of
// them in-process for RenderLocal and tests.
package compositor

import (
	"fmt"
	"sync"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
	"nowrender/internal/wire"
)

// Config tunes one sink.
type Config struct {
	// Name labels the sink in timelines and logs ("sink0").
	Name string
	// OnFrame, when non-nil, observes each frame the moment its shard
	// assembly completes — progressive delivery for SSE streaming and
	// frame emission. Errors are recorded (see Err) but do not stop the
	// sink: the master owns run-abort decisions.
	OnFrame func(frame int, img *fb.Framebuffer) error
	// Timeline, when non-nil, records the sink's assembly spans. An
	// in-process sink shares the master's recorder, so its track lands
	// in the merged cluster timeline with no clock correction needed.
	Timeline *timeline.Recorder
}

// maxPending bounds frame results buffered while a sink waits for the
// master's (re-)init; beyond it the oldest are dropped and the workers
// re-send via the normal miss/requeue path.
const maxPending = 1024

// Compositor is one frame-shard sink.
type Compositor struct {
	cfg Config
	hub *msg.Hub

	mu sync.Mutex // guards everything below (loop writes, API reads)

	// Run state, set by TagInit.
	inited     bool
	gen        int
	w, h       int
	start, end int
	asm        *wire.Assembly
	master     string // control conn name (sent TagInit)

	// workers maps data-conn name → worker name from TagJoin.
	workers map[string]string
	// pending holds results that arrived before (re-)init.
	pending []msg.Message

	wire   stats.WireStats
	dups   uint64
	epoch  time.Time
	track  *timeline.Track
	onErr  error
	nconns int

	closed  bool
	loopErr error
	done    chan struct{}
}

// New starts a sink's event loop. Close stops it.
func New(cfg Config) *Compositor {
	if cfg.Name == "" {
		cfg.Name = "sink"
	}
	c := &Compositor{
		cfg:     cfg,
		hub:     msg.NewHub(),
		workers: make(map[string]string),
		epoch:   time.Now(),
		done:    make(chan struct{}),
	}
	if cfg.Timeline != nil {
		c.track = cfg.Timeline.Track(cfg.Name + "/assemble")
	}
	go c.loop()
	return c
}

// AddConn hands the sink a new connection (accepted worker or dialing
// master); the sink tells control and data conns apart by the first
// message they carry.
func (c *Compositor) AddConn(conn msg.Conn) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("compositor: %s closed", c.cfg.Name)
	}
	c.nconns++
	name := fmt.Sprintf("c%03d", c.nconns)
	c.mu.Unlock()
	return c.hub.Attach(name, conn)
}

// Closed reports whether Close was called (or the loop exited).
func (c *Compositor) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Close stops the event loop and closes every conn.
func (c *Compositor) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.hub.Close()
	<-c.done
	return err
}

// Err returns the first OnFrame error the sink swallowed, if any.
func (c *Compositor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.onErr
}

// Stats snapshots the sink's wire counters.
func (c *Compositor) Stats() stats.WireStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.wire
	if len(c.wire.BaseMissByWorker) > 0 {
		st.BaseMissByWorker = make(map[string]uint64, len(c.wire.BaseMissByWorker))
		for w, n := range c.wire.BaseMissByWorker {
			st.BaseMissByWorker[w] = n
		}
	}
	return st
}

// Frame returns the assembled framebuffer of an absolute frame in the
// sink's shard (nil while partial or after a restart).
func (c *Compositor) Frame(absFrame int) *fb.Framebuffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.asm == nil || absFrame < c.start || absFrame >= c.end || !c.asm.FrameComplete(absFrame) {
		return nil
	}
	return c.asm.Frame(absFrame)
}

func (c *Compositor) loop() {
	defer close(c.done)
	for {
		m, err := c.hub.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			c.loopErr = err
			c.mu.Unlock()
			return
		}
		c.handle(m)
	}
}

func (c *Compositor) handle(m msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch m.Tag {
	case TagInit:
		in, err := DecodeInit(m.Data)
		if err != nil {
			return
		}
		// A re-init (sink restarted from the master's point of view, or a
		// new run on a persistent daemon) starts a fresh shard assembly;
		// completed frames already reached OnFrame, and the master requeues
		// whatever was partial.
		c.inited = true
		c.gen = in.Gen
		c.w, c.h = in.W, in.H
		c.start, c.end = in.Start, in.End
		c.asm = wire.NewAssemblyRange(in.W, in.H, in.Start, in.End)
		c.master = m.From
		pend := c.pending
		c.pending = nil
		for _, pm := range pend {
			c.assemble(pm)
		}
	case TagJoin:
		if name, err := DecodeJoin(m.Data); err == nil {
			c.workers[m.From] = name
		}
	case TagPix, TagRelayPix:
		if !c.inited {
			if len(c.pending) >= maxPending {
				c.pending = c.pending[1:]
			}
			c.pending = append(c.pending, m)
			return
		}
		c.assemble(m)
	case TagClose:
		// Run over on a persistent daemon: drop run state so the next
		// TagInit starts clean and stale results are pended, not merged.
		c.inited = false
		c.asm = nil
	case msg.TagDown:
		delete(c.workers, m.From)
		if m.From == c.master {
			c.master = ""
		}
	}
}

// assemble merges one TagPix/TagRelayPix into the shard. Called with
// c.mu held (the loop is the only writer; the lock orders API readers).
func (c *Compositor) assemble(m msg.Message) {
	data := m.Data
	worker := c.workers[m.From]
	relayed := m.Tag == TagRelayPix
	if relayed {
		var err error
		worker, data, err = DecodeRelay(m.Data)
		if err != nil {
			return
		}
	}
	var tlStart int64
	if c.track != nil {
		tlStart = c.track.Begin()
	}
	fd, err := wire.DecodeFrameDone(data)
	if err != nil {
		c.report(TagMiss, EncodeMiss(Miss{Gen: c.gen, Worker: worker, Reason: MissMalformed}))
		return
	}
	defer fd.Release()
	defer func() {
		if c.track != nil {
			c.track.EndArg(timeline.OpSinkAssemble, fd.Frame, tlStart, int64(len(data)))
		}
	}()
	if fd.Frame < c.start || fd.Frame >= c.end {
		c.report(TagMiss, EncodeMiss(Miss{Gen: c.gen, Frame: fd.Frame, Region: fd.Region, Worker: worker, Reason: MissShard}))
		return
	}
	c.wire.SinkIngressBytes += uint64(len(data))
	var complete, dup bool
	if fd.Kind == wire.KindDelta {
		complete, dup, err = c.asm.DeliverSpans(fd.Frame, fd.Region, fd.Spans, fd.Pix, time.Since(c.epoch))
	} else {
		complete, dup, err = c.asm.Deliver(fd.Frame, fd.Region, fd.Pix, time.Since(c.epoch))
	}
	switch {
	case err == wire.ErrDeltaBase:
		// The delta chain broke (lost base, or the sink restarted under
		// the worker): tell the master so the frame stays requeueable, and
		// ask the worker itself for a fresh key-frame so the chain heals
		// without a re-render round trip. Relayed legacy workers don't
		// speak the sink protocol — the master's requeue covers them.
		c.wire.AddBaseMiss(worker)
		if c.track != nil {
			c.track.Instant(timeline.OpNeedKey, fd.Frame, int64(fd.Frame))
		}
		c.report(TagMiss, EncodeMiss(Miss{Gen: c.gen, Frame: fd.Frame, Region: fd.Region, Worker: worker, Reason: MissBase}))
		if !relayed {
			_ = c.hub.Send(m.From, msg.Message{Tag: TagNeedKey, Data: EncodePair(fd.Frame, c.gen)})
		}
	case err != nil:
		c.report(TagMiss, EncodeMiss(Miss{Gen: c.gen, Frame: fd.Frame, Region: fd.Region, Worker: worker, Reason: MissMalformed}))
	case dup:
		// Speculation or a post-reset re-send: first result won, and its
		// confirmation already carries the master's bookkeeping.
		c.dups++
	default:
		if fd.Kind == wire.KindDelta {
			c.wire.FramesDelta++
		} else {
			c.wire.FramesFull++
		}
		c.wire.CountEncoding(fd.Encoding, uint64(len(data)))
		c.wire.RawBytes += uint64(fd.RawPixBytes())
		c.wire.WireBytes += uint64(len(data))
		if complete && c.cfg.OnFrame != nil {
			if err := c.cfg.OnFrame(fd.Frame, c.asm.Frame(fd.Frame)); err != nil && c.onErr == nil {
				c.onErr = err
			}
		}
		c.report(TagDelivered, EncodeDelivered(Delivered{
			Gen: c.gen, Frame: fd.Frame, Region: fd.Region, Worker: worker,
			Kind: fd.Kind, WireBytes: len(data), RawBytes: fd.RawPixBytes(),
			Complete: complete,
		}))
	}
}

// report sends a confirmation on the control conn, if one is attached.
func (c *Compositor) report(tag int, data []byte) {
	if c.master == "" {
		return
	}
	_ = c.hub.Send(c.master, msg.Message{Tag: tag, Data: data})
}

// Addr names in-process sink i; Registry.Dial resolves it.
func Addr(i int) string { return fmt.Sprintf("sink%d", i) }

// Registry runs in-process sinks for RenderLocal and tests. Dial
// connects a msg.Pipe to the live sink behind an Addr, creating it with
// the factory on first use — and re-creating it after a Close, which is
// exactly a compositor restart from the cluster's point of view.
type Registry struct {
	mu      sync.Mutex
	factory func(i int) *Compositor
	sinks   map[int]*Compositor
}

// NewRegistry makes a registry; factory builds sink i on demand.
func NewRegistry(factory func(i int) *Compositor) *Registry {
	return &Registry{factory: factory, sinks: make(map[int]*Compositor)}
}

// Dial connects to the sink behind addr (an Addr value).
func (r *Registry) Dial(addr string) (msg.Conn, error) {
	var i int
	if _, err := fmt.Sscanf(addr, "sink%d", &i); err != nil {
		return nil, fmt.Errorf("compositor: bad sink address %q", addr)
	}
	c, err := r.sink(i)
	if err != nil {
		return nil, err
	}
	local, remote := msg.Pipe(64)
	if err := c.AddConn(remote); err != nil {
		return nil, err
	}
	return local, nil
}

func (r *Registry) sink(i int) (*Compositor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 {
		return nil, fmt.Errorf("compositor: bad sink index %d", i)
	}
	if c, ok := r.sinks[i]; ok && !c.Closed() {
		return c, nil
	}
	c := r.factory(i)
	r.sinks[i] = c
	return c, nil
}

// Sink returns the live sink behind index i, or nil.
func (r *Registry) Sink(i int) *Compositor {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.sinks[i]; ok && !c.Closed() {
		return c
	}
	return nil
}

// CloseAll stops every live sink.
func (r *Registry) CloseAll() {
	r.mu.Lock()
	sinks := make([]*Compositor, 0, len(r.sinks))
	for _, c := range r.sinks {
		sinks = append(sinks, c)
	}
	r.mu.Unlock()
	for _, c := range sinks {
		_ = c.Close()
	}
}

// Stats merges the wire counters of every live sink.
func (r *Registry) Stats() stats.WireStats {
	r.mu.Lock()
	sinks := make([]*Compositor, 0, len(r.sinks))
	for _, c := range r.sinks {
		sinks = append(sinks, c)
	}
	r.mu.Unlock()
	var st stats.WireStats
	for _, c := range sinks {
		st.Merge(c.Stats())
	}
	return st
}
