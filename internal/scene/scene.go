// Package scene holds the renderer's world description: objects with
// stable identities, materials, lights, a camera, and the animation
// tracks that move them between frames.
//
// Identity matters here: the frame-coherence algorithm needs to ask
// "which objects changed between frame f and f+1, and what space did they
// occupy in each?". Objects therefore carry IDs that are stable across
// the whole animation, and their geometry at a given frame is produced on
// demand from an immutable base shape plus a per-frame transform.
package scene

import (
	"fmt"
	"math"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	vm "nowrender/internal/vecmath"
)

// ObjectID identifies an object across all frames of an animation.
type ObjectID int

// Track produces an object-to-world transform for each frame of an
// animation. Implementations must be deterministic: the same frame always
// yields the same transform, on any worker of the render farm.
type Track interface {
	// At returns the transform at the given frame.
	At(frame int) vm.Transform
	// IsStatic reports whether the transform is the same for all frames,
	// letting the coherence engine skip change detection entirely.
	IsStatic() bool
}

// StaticTrack is a constant transform (possibly identity).
type StaticTrack struct {
	Xf vm.Transform
}

// Static returns a track holding a fixed transform.
func Static(xf vm.Transform) StaticTrack { return StaticTrack{Xf: xf} }

// Identity returns a static identity track.
func IdentityTrack() StaticTrack { return StaticTrack{Xf: vm.IdentityTransform()} }

// At implements Track.
func (s StaticTrack) At(int) vm.Transform { return s.Xf }

// IsStatic implements Track.
func (s StaticTrack) IsStatic() bool { return true }

// FuncTrack derives the transform from an arbitrary function of the
// frame number. This is how the example animations express physics
// (pendulum phases, parabolic bounces).
type FuncTrack struct {
	F func(frame int) vm.Transform
}

// At implements Track.
func (f FuncTrack) At(frame int) vm.Transform { return f.F(frame) }

// IsStatic implements Track.
func (f FuncTrack) IsStatic() bool { return false }

// Keyframe is a (frame, position) pair for KeyframeTrack.
type Keyframe struct {
	Frame int
	Pos   vm.Vec3
}

// KeyframeTrack interpolates object translation linearly between
// keyframes; before the first and after the last keyframe the position is
// clamped. Only translation is keyframed — rotations in the test scenes
// are expressed via FuncTrack.
type KeyframeTrack struct {
	Keys []Keyframe
}

// At implements Track.
func (k KeyframeTrack) At(frame int) vm.Transform {
	if len(k.Keys) == 0 {
		return vm.IdentityTransform()
	}
	if frame <= k.Keys[0].Frame {
		return vm.NewTransform(vm.TranslateV(k.Keys[0].Pos))
	}
	last := k.Keys[len(k.Keys)-1]
	if frame >= last.Frame {
		return vm.NewTransform(vm.TranslateV(last.Pos))
	}
	for i := 1; i < len(k.Keys); i++ {
		if frame <= k.Keys[i].Frame {
			a, b := k.Keys[i-1], k.Keys[i]
			t := float64(frame-a.Frame) / float64(b.Frame-a.Frame)
			return vm.NewTransform(vm.TranslateV(a.Pos.Lerp(b.Pos, t)))
		}
	}
	return vm.NewTransform(vm.TranslateV(last.Pos))
}

// IsStatic implements Track.
func (k KeyframeTrack) IsStatic() bool {
	for i := 1; i < len(k.Keys); i++ {
		if k.Keys[i].Pos != k.Keys[0].Pos {
			return false
		}
	}
	return true
}

// Object is a named, identified scene object: immutable base geometry, a
// material and an animation track.
type Object struct {
	ID    ObjectID
	Name  string
	Shape geom.Shape
	Mat   material.Material
	Track Track
}

// ShapeAt returns the object's world-space geometry at the given frame.
// Static identity transforms return the base shape without a wrapper.
func (o *Object) ShapeAt(frame int) geom.Shape {
	xf := o.track().At(frame)
	if xf.Fwd.ApproxEq(vm.Identity(), 0) {
		return o.Shape
	}
	return geom.NewTransformed(o.Shape, xf)
}

// BoundsAt returns the object's world-space bounds at the given frame.
func (o *Object) BoundsAt(frame int) vm.AABB {
	return vm.TransformAABB(o.track().At(frame).Fwd, o.Shape.Bounds())
}

// MovedBetween reports whether the object's transform differs between the
// two frames (i.e. its geometry changed). Material/finish changes are not
// modelled; the paper's scenes animate only rigid motion.
func (o *Object) MovedBetween(f0, f1 int) bool {
	tr := o.track()
	if tr.IsStatic() {
		return false
	}
	return !tr.At(f0).Fwd.ApproxEq(tr.At(f1).Fwd, 0)
}

func (o *Object) track() Track {
	if o.Track == nil {
		return IdentityTrack()
	}
	return o.Track
}

// Light is a point light source, optionally animated, optionally a
// spotlight with distance fading (POV-Ray's spotlight and fade_distance/
// fade_power features).
type Light struct {
	Name  string
	Pos   vm.Vec3
	Color material.Color
	Track Track // optional; moves the light's position

	// Spot, when non-nil, restricts the light to a cone.
	Spot *Spotlight
	// FadeDistance enables distance attenuation when positive, with
	// FadePower the exponent (POV: attenuation = 2/(1+(d/fd)^fp),
	// clamped to 1).
	FadeDistance float64
	FadePower    float64
}

// Spotlight restricts a light to a cone aimed at PointAt: full intensity
// inside Radius degrees of the axis, falling smoothly to zero at Falloff
// degrees.
type Spotlight struct {
	PointAt vm.Vec3
	// Radius is the full-intensity half-angle in degrees.
	Radius float64
	// Falloff is the zero-intensity half-angle in degrees (>= Radius).
	Falloff float64
}

// Attenuation returns the light's intensity factor for a surface point
// at distance dist in direction dir (unit vector from the light to the
// point), combining the spot cone and distance fade.
func (l *Light) Attenuation(lightPos, point vm.Vec3) float64 {
	d := point.Sub(lightPos)
	dist := d.Len()
	f := 1.0
	if l.Spot != nil && dist > vm.Eps {
		axis := l.Spot.PointAt.Sub(lightPos).Norm()
		cosAng := d.Scale(1 / dist).Dot(axis)
		cosIn := math.Cos(vm.Radians(l.Spot.Radius))
		cosOut := math.Cos(vm.Radians(l.Spot.Falloff))
		switch {
		case cosAng >= cosIn:
			// full intensity
		case cosAng <= cosOut:
			return 0
		default:
			t := (cosAng - cosOut) / (cosIn - cosOut)
			f *= t * t * (3 - 2*t) // smoothstep
		}
	}
	if l.FadeDistance > 0 && dist > vm.Eps {
		fp := l.FadePower
		if fp <= 0 {
			fp = 2
		}
		a := 2 / (1 + math.Pow(dist/l.FadeDistance, fp))
		if a > 1 {
			a = 1
		}
		f *= a
	}
	return f
}

// PosAt returns the light position at the given frame.
func (l *Light) PosAt(frame int) vm.Vec3 {
	if l.Track == nil {
		return l.Pos
	}
	return l.Track.At(frame).Fwd.MulPoint(l.Pos)
}

// MovedBetween reports whether the light position differs between frames.
func (l *Light) MovedBetween(f0, f1 int) bool {
	if l.Track == nil || l.Track.IsStatic() {
		return false
	}
	return l.PosAt(f0) != l.PosAt(f1)
}

// Camera is a pinhole camera. FOV is the horizontal field of view in
// degrees.
type Camera struct {
	Pos    vm.Vec3
	LookAt vm.Vec3
	Up     vm.Vec3
	FOV    float64
}

// DefaultCamera looks down -Z from (0,0,5) with a 60-degree FOV.
func DefaultCamera() Camera {
	return Camera{Pos: vm.V(0, 0, 5), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
}

// Equal reports whether two cameras are identical; the sequence splitter
// uses this to find camera cuts.
func (c Camera) Equal(d Camera) bool {
	return c.Pos == d.Pos && c.LookAt == d.LookAt && c.Up == d.Up && c.FOV == d.FOV
}

// CameraTrack produces the camera per frame. A nil CameraTrack in a Scene
// means the static Scene.Camera is used for every frame.
type CameraTrack interface {
	CameraAt(frame int) Camera
}

// CameraFunc adapts a function to CameraTrack.
type CameraFunc func(frame int) Camera

// CameraAt implements CameraTrack.
func (f CameraFunc) CameraAt(frame int) Camera { return f(frame) }

// Scene is a complete world description for an animation.
type Scene struct {
	Name string
	// Objects are all objects, in declaration order. IDs must be unique.
	Objects []*Object
	Lights  []*Light
	Camera  Camera
	// CamTrack, when non-nil, overrides Camera per frame (used by the
	// sequence splitter; the coherence engine requires a stationary
	// camera inside each sequence).
	CamTrack CameraTrack
	// Background is the colour returned by rays that escape the scene.
	Background material.Color
	// Ambient is the global ambient light colour scaling Finish.Ambient.
	Ambient material.Color
	// MaxDepth bounds ray recursion; the paper uses 5.
	MaxDepth int
	// Frames is the total number of animation frames.
	Frames int
}

// New returns an empty scene with the paper's defaults (max depth 5,
// black background, white ambient).
func New(name string) *Scene {
	return &Scene{
		Name:       name,
		Camera:     DefaultCamera(),
		Background: material.Black,
		Ambient:    material.White,
		MaxDepth:   5,
		Frames:     1,
	}
}

// Add appends an object, assigning the next ObjectID, and returns it.
func (s *Scene) Add(name string, shape geom.Shape, mat material.Material, track Track) *Object {
	o := &Object{
		ID:    ObjectID(len(s.Objects)),
		Name:  name,
		Shape: shape,
		Mat:   mat,
		Track: track,
	}
	s.Objects = append(s.Objects, o)
	return o
}

// AddLight appends a light and returns it.
func (s *Scene) AddLight(name string, pos vm.Vec3, color material.Color) *Light {
	l := &Light{Name: name, Pos: pos, Color: color}
	s.Lights = append(s.Lights, l)
	return l
}

// CameraAt returns the camera for a frame, honouring CamTrack.
func (s *Scene) CameraAt(frame int) Camera {
	if s.CamTrack != nil {
		return s.CamTrack.CameraAt(frame)
	}
	return s.Camera
}

// Validate reports structural problems: duplicate IDs, missing shapes,
// non-positive frame counts.
func (s *Scene) Validate() error {
	if s.Frames <= 0 {
		return fmt.Errorf("scene %q: frames must be positive, got %d", s.Name, s.Frames)
	}
	if s.MaxDepth < 1 {
		return fmt.Errorf("scene %q: max depth must be >= 1, got %d", s.Name, s.MaxDepth)
	}
	seen := make(map[ObjectID]bool, len(s.Objects))
	for _, o := range s.Objects {
		if o.Shape == nil {
			return fmt.Errorf("scene %q: object %q has no shape", s.Name, o.Name)
		}
		if seen[o.ID] {
			return fmt.Errorf("scene %q: duplicate object id %d", s.Name, o.ID)
		}
		seen[o.ID] = true
	}
	return nil
}

// BoundsAt returns the union of all object bounds at the given frame,
// which the voxel grid uses as its extent. Unbounded primitives (planes)
// are clipped to a padded box around the bounded geometry; if the scene
// has only unbounded geometry a default cube is used.
func (s *Scene) BoundsAt(frame int) vm.AABB {
	bounded := vm.EmptyAABB()
	hasUnbounded := false
	for _, o := range s.Objects {
		b := o.BoundsAt(frame)
		if b.Size().MaxComponent() >= geom.HugeExtent {
			hasUnbounded = true
			continue
		}
		bounded = bounded.Union(b)
	}
	// Always include the camera and lights so primary/shadow rays start
	// inside the grid region.
	bounded = bounded.Extend(s.CameraAt(frame).Pos)
	for _, l := range s.Lights {
		bounded = bounded.Extend(l.PosAt(frame))
	}
	if bounded.IsEmpty() {
		bounded = vm.NewAABB(vm.Splat(-10), vm.Splat(10))
	}
	if hasUnbounded {
		// Pad so plane intersections near the action are voxelised.
		bounded = bounded.Pad(bounded.Size().MaxComponent()*0.25 + 1)
	} else {
		bounded = bounded.Pad(1e-3)
	}
	return bounded
}

// FrameGeometry resolves every object's world-space shape at a frame.
// The returned slice index corresponds to object order, and each entry
// carries the owning object for material lookup.
type ResolvedObject struct {
	Obj    *Object
	Shape  geom.Shape
	Bounds vm.AABB
}

// ResolveFrame returns the resolved geometry for a frame.
func (s *Scene) ResolveFrame(frame int) []ResolvedObject {
	out := make([]ResolvedObject, len(s.Objects))
	for i, o := range s.Objects {
		sh := o.ShapeAt(frame)
		out[i] = ResolvedObject{Obj: o, Shape: sh, Bounds: sh.Bounds()}
	}
	return out
}
