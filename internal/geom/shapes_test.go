package geom

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

func TestPlaneHit(t *testing.T) {
	// Floor: y = 0, normal +Y.
	p := NewPlane(vm.V(0, 1, 0), 0)
	r := vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := p.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed plane")
	}
	if math.Abs(h.T-5) > 1e-12 {
		t.Errorf("T = %v", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(0, 1, 0), 1e-12) {
		t.Errorf("normal = %v", h.Normal)
	}
}

func TestPlaneOffset(t *testing.T) {
	// Plane y = 2.
	p := NewPlane(vm.V(0, 1, 0), 2)
	r := vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := p.Intersect(r, 0, inf)
	if !ok || math.Abs(h.T-3) > 1e-12 {
		t.Fatalf("offset plane: ok=%v T=%v", ok, h.T)
	}
}

func TestPlaneParallelMiss(t *testing.T) {
	p := NewPlane(vm.V(0, 1, 0), 0)
	r := vm.Ray{Origin: vm.V(0, 1, 0), Dir: vm.V(1, 0, 0)}
	if _, ok := p.Intersect(r, 0, inf); ok {
		t.Error("parallel ray hit plane")
	}
}

func TestPlaneFromBelowFlipsNormal(t *testing.T) {
	p := NewPlane(vm.V(0, 1, 0), 0)
	r := vm.Ray{Origin: vm.V(0, -3, 0), Dir: vm.V(0, 1, 0)}
	h, ok := p.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed plane from below")
	}
	if !h.Normal.ApproxEq(vm.V(0, -1, 0), 1e-12) {
		t.Errorf("normal not flipped: %v", h.Normal)
	}
	if !h.Inside {
		t.Error("below-side hit not flagged inside")
	}
}

func TestPlaneNonUnitNormalNormalised(t *testing.T) {
	p := NewPlane(vm.V(0, 10, 0), 1)
	if math.Abs(p.Normal.Len()-1) > 1e-12 {
		t.Error("constructor did not normalise")
	}
	// Plane y = 1.
	r := vm.Ray{Origin: vm.V(0, 3, 0), Dir: vm.V(0, -1, 0)}
	h, ok := p.Intersect(r, 0, inf)
	if !ok || math.Abs(h.T-2) > 1e-12 {
		t.Fatalf("ok=%v T=%v, want T=2", ok, h.T)
	}
}

func TestBoxHitFaces(t *testing.T) {
	b := NewBox(vm.V(-1, -1, -1), vm.V(1, 1, 1))
	cases := []struct {
		origin, dir, wantN vm.Vec3
	}{
		{vm.V(-5, 0, 0), vm.V(1, 0, 0), vm.V(-1, 0, 0)},
		{vm.V(5, 0, 0), vm.V(-1, 0, 0), vm.V(1, 0, 0)},
		{vm.V(0, 5, 0), vm.V(0, -1, 0), vm.V(0, 1, 0)},
		{vm.V(0, 0, -5), vm.V(0, 0, 1), vm.V(0, 0, -1)},
	}
	for i, c := range cases {
		h, ok := b.Intersect(vm.Ray{Origin: c.origin, Dir: c.dir}, 0, inf)
		if !ok {
			t.Fatalf("case %d: missed", i)
		}
		if !h.Normal.ApproxEq(c.wantN, 1e-12) {
			t.Errorf("case %d: normal %v, want %v", i, h.Normal, c.wantN)
		}
		if math.Abs(h.T-4) > 1e-9 {
			t.Errorf("case %d: T = %v, want 4", i, h.T)
		}
	}
}

func TestBoxFromInside(t *testing.T) {
	b := NewBox(vm.V(-1, -1, -1), vm.V(1, 1, 1))
	h, ok := b.Intersect(vm.Ray{Origin: vm.V(0, 0, 0), Dir: vm.V(1, 0, 0)}, 0, inf)
	if !ok {
		t.Fatal("missed from inside")
	}
	if !h.Inside {
		t.Error("inside hit not flagged")
	}
	if math.Abs(h.T-1) > 1e-12 {
		t.Errorf("T = %v", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(-1, 0, 0), 1e-12) {
		t.Errorf("normal should oppose ray: %v", h.Normal)
	}
}

func TestBoxCornersOrdered(t *testing.T) {
	b := NewBox(vm.V(1, 1, 1), vm.V(-1, -1, -1))
	if b.Min != vm.V(-1, -1, -1) || b.Max != vm.V(1, 1, 1) {
		t.Errorf("corners not ordered: %+v", b)
	}
}

func TestDiscHitAndMiss(t *testing.T) {
	d := NewDisc(vm.V(0, 0, 0), vm.V(0, 1, 0), 2)
	h, ok := d.Intersect(vm.Ray{Origin: vm.V(1, 5, 1), Dir: vm.V(0, -1, 0)}, 0, inf)
	if !ok {
		t.Fatal("missed disc inside radius")
	}
	if math.Abs(h.T-5) > 1e-12 {
		t.Errorf("T = %v", h.T)
	}
	if _, ok := d.Intersect(vm.Ray{Origin: vm.V(2, 5, 2), Dir: vm.V(0, -1, 0)}, 0, inf); ok {
		t.Error("hit outside radius (r=2, dist=2.83)")
	}
}

func TestCylinderLateralHit(t *testing.T) {
	c := NewCylinder(vm.V(0, 0, 0), vm.V(0, 2, 0), 0.5)
	r := vm.Ray{Origin: vm.V(-5, 1, 0), Dir: vm.V(1, 0, 0)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed cylinder side")
	}
	if math.Abs(h.T-4.5) > 1e-12 {
		t.Errorf("T = %v, want 4.5", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(-1, 0, 0), 1e-12) {
		t.Errorf("normal = %v", h.Normal)
	}
}

func TestCylinderCapHit(t *testing.T) {
	c := NewCylinder(vm.V(0, 0, 0), vm.V(0, 2, 0), 0.5)
	r := vm.Ray{Origin: vm.V(0.2, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed top cap")
	}
	if math.Abs(h.T-3) > 1e-12 {
		t.Errorf("T = %v, want 3 (top cap at y=2)", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(0, 1, 0), 1e-12) {
		t.Errorf("cap normal = %v", h.Normal)
	}
}

func TestOpenCylinderNoCapHit(t *testing.T) {
	c := NewOpenCylinder(vm.V(0, 0, 0), vm.V(0, 2, 0), 0.5)
	// Straight down the axis: passes through the open ends, hitting
	// nothing (lateral surface is at radius 0.5, ray is on the axis).
	r := vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}
	if _, ok := c.Intersect(r, 0, inf); ok {
		t.Error("open cylinder reported axis hit")
	}
}

func TestCylinderBeyondHeightMiss(t *testing.T) {
	c := NewCylinder(vm.V(0, 0, 0), vm.V(0, 2, 0), 0.5)
	r := vm.Ray{Origin: vm.V(-5, 3, 0), Dir: vm.V(1, 0, 0)}
	if _, ok := c.Intersect(r, 0, inf); ok {
		t.Error("hit above cylinder height")
	}
}

func TestCylinderSlantedAxis(t *testing.T) {
	// Diagonal cylinder; fire a ray that must cross its midpoint.
	c := NewCylinder(vm.V(0, 0, 0), vm.V(2, 2, 0), 0.3)
	mid := vm.V(1, 1, 0)
	r := vm.Ray{Origin: vm.V(1, 1, -5), Dir: vm.V(0, 0, 1)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed slanted cylinder through midpoint")
	}
	if h.Point.Dist(mid) > 0.31 {
		t.Errorf("hit point %v too far from axis midpoint", h.Point)
	}
}

func TestCylinderBoundsContainSurface(t *testing.T) {
	c := NewCylinder(vm.V(1, 0, -1), vm.V(-1, 3, 2), 0.7)
	b := c.Bounds()
	// Sample points on the lateral surface; all must be inside bounds.
	onb := vm.NewONB(c.Cap.Sub(c.Base))
	for i := 0; i < 32; i++ {
		ang := float64(i) / 32 * 2 * math.Pi
		for _, s := range []float64{0, 0.5, 1} {
			axisPt := c.Base.Lerp(c.Cap, s)
			p := axisPt.Add(onb.Local(math.Cos(ang)*c.Radius, math.Sin(ang)*c.Radius, 0))
			if !b.Pad(1e-9).Contains(p) {
				t.Fatalf("surface point %v outside bounds %v", p, b)
			}
		}
	}
}

func TestTriangleHit(t *testing.T) {
	tr := NewTriangle(vm.V(0, 0, 0), vm.V(1, 0, 0), vm.V(0, 1, 0))
	r := vm.Ray{Origin: vm.V(0.25, 0.25, -1), Dir: vm.V(0, 0, 1)}
	h, ok := tr.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed triangle interior")
	}
	if math.Abs(h.T-1) > 1e-12 {
		t.Errorf("T = %v", h.T)
	}
	if math.Abs(math.Abs(h.Normal.Z)-1) > 1e-12 {
		t.Errorf("normal = %v", h.Normal)
	}
}

func TestTriangleEdgeAndOutside(t *testing.T) {
	tr := NewTriangle(vm.V(0, 0, 0), vm.V(1, 0, 0), vm.V(0, 1, 0))
	// Outside the hypotenuse.
	r := vm.Ray{Origin: vm.V(0.8, 0.8, -1), Dir: vm.V(0, 0, 1)}
	if _, ok := tr.Intersect(r, 0, inf); ok {
		t.Error("hit outside triangle")
	}
	// Parallel to the plane.
	r = vm.Ray{Origin: vm.V(0, 0, -1), Dir: vm.V(1, 0, 0)}
	if _, ok := tr.Intersect(r, 0, inf); ok {
		t.Error("parallel ray hit triangle")
	}
}

func TestSmoothTriangleInterpolatesNormal(t *testing.T) {
	tr := NewSmoothTriangle(
		vm.V(0, 0, 0), vm.V(1, 0, 0), vm.V(0, 1, 0),
		vm.V(0, 0, 1), vm.V(1, 0, 1), vm.V(0, 1, 1),
	)
	r := vm.Ray{Origin: vm.V(0.2, 0.2, -1), Dir: vm.V(0, 0, 1)}
	h, ok := tr.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed smooth triangle")
	}
	// Interpolated normal at (u=0.2,v=0.2) is normalize(0.2,0.2,1)... then
	// face-forwarded against +z ray => z component must be negative.
	if h.Normal.Z >= 0 {
		t.Errorf("normal should be flipped towards ray origin: %v", h.Normal)
	}
	if math.Abs(h.Normal.Len()-1) > 1e-12 {
		t.Error("interpolated normal not unit")
	}
}

func TestMeshNearestHit(t *testing.T) {
	m := NewMesh([]*Triangle{
		NewTriangle(vm.V(-1, -1, 2), vm.V(1, -1, 2), vm.V(0, 1, 2)),
		NewTriangle(vm.V(-1, -1, 5), vm.V(1, -1, 5), vm.V(0, 1, 5)),
	})
	r := vm.Ray{Origin: vm.V(0, 0, 0), Dir: vm.V(0, 0, 1)}
	h, ok := m.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed mesh")
	}
	if math.Abs(h.T-2) > 1e-12 {
		t.Errorf("nearest hit T = %v, want 2", h.T)
	}
}

func TestMeshBounds(t *testing.T) {
	m := NewMesh([]*Triangle{
		NewTriangle(vm.V(0, 0, 0), vm.V(1, 0, 0), vm.V(0, 1, 0)),
		NewTriangle(vm.V(0, 0, 3), vm.V(-2, 0, 3), vm.V(0, 5, 3)),
	})
	b := m.Bounds()
	want := vm.NewAABB(vm.V(-2, 0, 0), vm.V(1, 5, 3))
	if !b.Min.ApproxEq(want.Min, 1e-6) || !b.Max.ApproxEq(want.Max, 1e-6) {
		t.Errorf("bounds = %v", b)
	}
}

func TestTransformedTranslatedSphere(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	tw := NewTransformed(s, vm.NewTransform(vm.Translate(5, 0, 0)))
	r := vm.Ray{Origin: vm.V(5, 0, -4), Dir: vm.V(0, 0, 1)}
	h, ok := tw.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed translated sphere")
	}
	if math.Abs(h.T-3) > 1e-12 {
		t.Errorf("T = %v", h.T)
	}
	if !h.Point.ApproxEq(vm.V(5, 0, -1), 1e-9) {
		t.Errorf("point = %v", h.Point)
	}
}

func TestTransformedScaledSphereNormal(t *testing.T) {
	// Unit sphere scaled 2x in Y becomes an ellipsoid; at the equator
	// point (1,0,0) the normal must still be +X after transform.
	s := NewSphere(vm.V(0, 0, 0), 1)
	tw := NewTransformed(s, vm.NewTransform(vm.Scaling(1, 2, 1)))
	r := vm.Ray{Origin: vm.V(5, 0, 0), Dir: vm.V(-1, 0, 0)}
	h, ok := tw.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed ellipsoid")
	}
	if !h.Normal.ApproxEq(vm.V(1, 0, 0), 1e-9) {
		t.Errorf("normal = %v", h.Normal)
	}
	if math.Abs(h.Normal.Len()-1) > 1e-12 {
		t.Error("transformed normal not unit")
	}
}

func TestTransformedBounds(t *testing.T) {
	s := NewSphere(vm.V(0, 0, 0), 1)
	tw := NewTransformed(s, vm.NewTransform(vm.Translate(10, 0, 0)))
	b := tw.Bounds()
	if !b.Contains(vm.V(10, 0, 0)) || b.Contains(vm.V(0, 0, 0)) {
		t.Errorf("bounds = %v", b)
	}
}

func TestTransformedPreservesT(t *testing.T) {
	// t must remain valid distance along the *world* ray even under
	// non-uniform scale, so tMax culling stays correct.
	s := NewSphere(vm.V(0, 0, 0), 1)
	tw := NewTransformed(s, vm.NewTransform(vm.Scaling(3, 3, 3)))
	r := vm.Ray{Origin: vm.V(0, 0, -10), Dir: vm.V(0, 0, 1)}
	h, ok := tw.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed scaled sphere")
	}
	// Sphere radius 3 => entry at z=-3 => t=7 on the world ray.
	if math.Abs(h.T-7) > 1e-9 {
		t.Errorf("T = %v, want 7", h.T)
	}
	if got := r.At(h.T); !got.ApproxEq(h.Point, 1e-9) {
		t.Errorf("r.At(T)=%v disagrees with Point=%v", got, h.Point)
	}
}
