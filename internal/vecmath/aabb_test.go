package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Error("EmptyAABB not empty")
	}
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	if got := e.Union(b); got != b {
		t.Errorf("empty union = %v", got)
	}
}

func TestNewAABBOrdersCorners(t *testing.T) {
	b := NewAABB(V(1, -2, 3), V(-1, 2, -3))
	if b.Min != V(-1, -2, -3) || b.Max != V(1, 2, 3) {
		t.Errorf("corners not ordered: %v", b)
	}
}

func TestAABBContains(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(2, 2, 2))
	if !b.Contains(V(1, 1, 1)) {
		t.Error("interior point not contained")
	}
	if !b.Contains(V(0, 0, 0)) || !b.Contains(V(2, 2, 2)) {
		t.Error("boundary points not contained")
	}
	if b.Contains(V(3, 1, 1)) {
		t.Error("exterior point contained")
	}
}

func TestAABBOverlaps(t *testing.T) {
	a := NewAABB(V(0, 0, 0), V(1, 1, 1))
	b := NewAABB(V(0.5, 0.5, 0.5), V(2, 2, 2))
	c := NewAABB(V(5, 5, 5), V(6, 6, 6))
	face := NewAABB(V(1, 0, 0), V(2, 1, 1))
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlapping boxes not detected")
	}
	if a.Overlaps(c) {
		t.Error("disjoint boxes reported overlapping")
	}
	if !a.Overlaps(face) {
		t.Error("face-sharing boxes must overlap")
	}
}

func TestAABBRayHit(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	r := Ray{Origin: V(-5, 0, 0), Dir: V(1, 0, 0)}
	iv, hit := b.IntersectRay(r, 0, math.Inf(1))
	if !hit {
		t.Fatal("axis-aligned ray missed box")
	}
	if math.Abs(iv.Min-4) > 1e-12 || math.Abs(iv.Max-6) > 1e-12 {
		t.Errorf("interval = %+v, want [4,6]", iv)
	}
}

func TestAABBRayMiss(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	r := Ray{Origin: V(-5, 3, 0), Dir: V(1, 0, 0)}
	if _, hit := b.IntersectRay(r, 0, math.Inf(1)); hit {
		t.Error("parallel offset ray should miss")
	}
	// Ray pointing away.
	r = Ray{Origin: V(-5, 0, 0), Dir: V(-1, 0, 0)}
	if _, hit := b.IntersectRay(r, 0, math.Inf(1)); hit {
		t.Error("ray pointing away should miss")
	}
}

func TestAABBRayInside(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	r := Ray{Origin: V(0, 0, 0), Dir: V(0, 1, 0)}
	iv, hit := b.IntersectRay(r, 0, math.Inf(1))
	if !hit {
		t.Fatal("ray from inside missed")
	}
	if iv.Min != 0 || math.Abs(iv.Max-1) > 1e-12 {
		t.Errorf("interval = %+v, want [0,1]", iv)
	}
}

func TestAABBRayDiagonal(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	r := Ray{Origin: V(-1, -1, -1), Dir: V(1, 1, 1)}
	iv, hit := b.IntersectRay(r, 0, math.Inf(1))
	if !hit {
		t.Fatal("diagonal ray missed unit box")
	}
	if math.Abs(iv.Min-1) > 1e-12 || math.Abs(iv.Max-2) > 1e-12 {
		t.Errorf("interval = %+v, want [1,2]", iv)
	}
}

func TestTransformAABBTranslation(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(1, 1, 1))
	got := TransformAABB(Translate(5, 0, 0), b)
	want := NewAABB(V(5, 0, 0), V(6, 1, 1))
	if !got.Min.ApproxEq(want.Min, 1e-12) || !got.Max.ApproxEq(want.Max, 1e-12) {
		t.Errorf("translated box = %v", got)
	}
}

func TestTransformAABBRotationEncloses(t *testing.T) {
	b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
	m := RotateZ(math.Pi / 4)
	got := TransformAABB(m, b)
	// Every transformed corner must lie inside the result.
	for i := 0; i < 8; i++ {
		c := V(
			pick(i&1 != 0, b.Max.X, b.Min.X),
			pick(i&2 != 0, b.Max.Y, b.Min.Y),
			pick(i&4 != 0, b.Max.Z, b.Min.Z),
		)
		p := m.MulPoint(c)
		if !got.Pad(1e-12).Contains(p) {
			t.Errorf("corner %v escaped transformed box %v", p, got)
		}
	}
}

func TestTransformAABBEmpty(t *testing.T) {
	e := EmptyAABB()
	if got := TransformAABB(Translate(1, 2, 3), e); !got.IsEmpty() {
		t.Errorf("transformed empty box not empty: %v", got)
	}
}

func TestAABBPadSizeCenter(t *testing.T) {
	b := NewAABB(V(0, 0, 0), V(2, 4, 6))
	if got := b.Size(); got != V(2, 4, 6) {
		t.Errorf("Size = %v", got)
	}
	if got := b.Center(); got != V(1, 2, 3) {
		t.Errorf("Center = %v", got)
	}
	p := b.Pad(1)
	if p.Min != V(-1, -1, -1) || p.Max != V(3, 5, 7) {
		t.Errorf("Pad = %v", p)
	}
}

// Property: a point sampled inside a box stays inside after Union with any
// other box.
func TestQuickUnionMonotone(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz float64) bool {
		if anyBad(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz) {
			return true
		}
		b1 := NewAABB(V(ax, ay, az), V(bx, by, bz))
		b2 := NewAABB(V(cx, cy, cz), V(dx, dy, dz))
		u := b1.Union(b2)
		return u.Contains(b1.Min) && u.Contains(b1.Max) &&
			u.Contains(b2.Min) && u.Contains(b2.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: if the slab test reports a hit interval, the midpoint of the
// interval lies inside (or on) the box.
func TestQuickSlabMidpointInside(t *testing.T) {
	f := func(ox, oy, oz, dx, dy, dz float64) bool {
		if anyBad(ox, oy, oz, dx, dy, dz) {
			return true
		}
		ox, oy, oz = math.Mod(ox, 10), math.Mod(oy, 10), math.Mod(oz, 10)
		d := V(dx, dy, dz)
		if d.Len() < 1e-9 || d.Len() > 1e9 {
			return true
		}
		b := NewAABB(V(-1, -1, -1), V(1, 1, 1))
		r := Ray{Origin: V(ox, oy, oz), Dir: d}
		iv, hit := b.IntersectRay(r, 0, math.Inf(1))
		if !hit {
			return true
		}
		mid := r.At((iv.Min + iv.Max) / 2)
		return b.Pad(1e-6).Contains(mid)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
