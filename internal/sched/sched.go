// Package sched picks which queued job runs next. It separates the two
// decisions the pre-split service fused into one heap pop: *whether* a
// job may start (bounded concurrency, drain state — the Scheduler) and
// *which* tenant's job it is (the pluggable Policy).
//
// Three policies ship:
//
//   - "priority": the tenant whose head item has the highest priority
//     (then lowest sequence) — exactly the pre-split global ordering, and
//     the default.
//   - "fifo": the tenant whose head item was submitted first; priorities
//     still order jobs within a tenant.
//   - "fair": weighted fair queuing across tenants by stride scheduling —
//     each tenant carries a virtual time advanced by cost/weight on every
//     dispatch, and the lowest virtual time runs next. A flood of jobs
//     from one tenant cannot starve another: the flooder's virtual time
//     races ahead and everyone else interleaves in proportion to their
//     weights.
package sched

import (
	"fmt"
	"math"

	"nowrender/internal/queue"
)

// Policy picks the next item to dispatch from a multi-tenant queue.
// Implementations may keep cross-call state (the fair policy's virtual
// clocks); the Scheduler serializes calls.
type Policy interface {
	Name() string
	// Next removes and returns the item to run next, or nil when the
	// queue is empty.
	Next(q *queue.Q) *queue.Item
}

// NewPolicy maps a policy name to an implementation. weights applies to
// "fair" only: per-tenant dispatch weight, default 1 for absent tenants.
func NewPolicy(name string, weights map[string]float64) (Policy, error) {
	switch name {
	case "", "priority":
		return priorityPolicy{}, nil
	case "fifo":
		return fifoPolicy{}, nil
	case "fair":
		return NewWeightedFair(weights), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

// priorityPolicy reproduces the pre-split global heap: highest priority
// across every tenant, submission order as the tiebreak.
type priorityPolicy struct{}

func (priorityPolicy) Name() string { return "priority" }

func (priorityPolicy) Next(q *queue.Q) *queue.Item {
	var best *queue.Item
	for _, t := range q.Tenants() {
		head := q.Peek(t)
		if head == nil {
			continue
		}
		if best == nil || head.Priority > best.Priority ||
			(head.Priority == best.Priority && head.Seq < best.Seq) {
			best = head
		}
	}
	if best == nil {
		return nil
	}
	return q.Pop(best.Tenant)
}

// fifoPolicy dispatches tenants in arrival order of their head items.
type fifoPolicy struct{}

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Next(q *queue.Q) *queue.Item {
	var best *queue.Item
	for _, t := range q.Tenants() {
		head := q.Peek(t)
		if head == nil {
			continue
		}
		if best == nil || head.Seq < best.Seq {
			best = head
		}
	}
	if best == nil {
		return nil
	}
	return q.Pop(best.Tenant)
}

// WeightedFair is stride scheduling across tenants: dispatching an item
// of cost c advances its tenant's virtual time by c/weight, and the
// tenant with the lowest virtual time runs next. A tenant arriving (or
// returning from idle) starts at the current global virtual time, so it
// competes fairly from now on instead of claiming a refund for its idle
// past.
type WeightedFair struct {
	weights map[string]float64
	vtime   map[string]float64
	global  float64
}

// NewWeightedFair returns the fair policy; weights maps tenant to
// dispatch weight (higher = more throughput), defaulting to 1.
func NewWeightedFair(weights map[string]float64) *WeightedFair {
	w := make(map[string]float64, len(weights))
	for t, v := range weights {
		if v > 0 {
			w[t] = v
		}
	}
	return &WeightedFair{weights: w, vtime: make(map[string]float64)}
}

func (p *WeightedFair) Name() string { return "fair" }

func (p *WeightedFair) weight(tenant string) float64 {
	if w, ok := p.weights[tenant]; ok {
		return w
	}
	return 1
}

func (p *WeightedFair) Next(q *queue.Q) *queue.Item {
	var (
		bestTenant string
		bestHead   *queue.Item
		bestVt     = math.Inf(1)
	)
	for _, t := range q.Tenants() {
		head := q.Peek(t)
		if head == nil {
			continue
		}
		vt, seen := p.vtime[t]
		if !seen || vt < p.global {
			// New or idle-returning tenant: join at the global clock.
			vt = p.global
			p.vtime[t] = vt
		}
		if vt < bestVt || (vt == bestVt && head.Seq < bestHead.Seq) {
			bestTenant, bestHead, bestVt = t, head, vt
		}
	}
	if bestHead == nil {
		return nil
	}
	it := q.Pop(bestTenant)
	if it == nil {
		return nil
	}
	cost := it.Cost
	if cost <= 0 {
		cost = 1
	}
	p.global = bestVt
	p.vtime[bestTenant] = bestVt + cost/p.weight(bestTenant)
	return it
}

// FairState is a WeightedFair snapshot: the global virtual clock and
// every tenant's virtual time, both monotone over a policy's lifetime.
type FairState struct {
	Global float64
	VTime  map[string]float64
}

// Snapshot copies the policy's virtual clocks — what a replica hands
// over (or persists) so jobs migrating to another replica's scheduler
// keep their fair-share history.
func (p *WeightedFair) Snapshot() FairState {
	vt := make(map[string]float64, len(p.vtime))
	for t, v := range p.vtime {
		vt[t] = v
	}
	return FairState{Global: p.global, VTime: vt}
}

// Adopt merges another scheduler's virtual clocks into this one by
// monotone max-merge: each tenant's virtual time and the global clock
// only ever move forward. This is the replica-churn rule — when a dead
// replica's jobs migrate here, a tenant that had raced ahead on the
// dead replica does not reset to this scheduler's (lower) clock and so
// cannot collect idle credit it never earned. Adopting the same state
// twice, or states in either order, converges to the same clocks.
func (p *WeightedFair) Adopt(st FairState) {
	if st.Global > p.global {
		p.global = st.Global
	}
	for t, v := range st.VTime {
		if cur, ok := p.vtime[t]; !ok || v > cur {
			p.vtime[t] = v
		}
	}
}

// Scheduler bounds concurrent dispatches and owns the drain state. It
// is a passive picker — callers (the service facade, holding their own
// lock) drive it; it is not itself goroutine-safe.
type Scheduler struct {
	policy   Policy
	max      int
	running  int
	draining bool
}

// New returns a scheduler dispatching at most max concurrent items
// (max <= 0 means 1) via the given policy.
func New(policy Policy, max int) *Scheduler {
	if max <= 0 {
		max = 1
	}
	return &Scheduler{policy: policy, max: max}
}

// Policy exposes the configured policy (for metrics and logs).
func (s *Scheduler) Policy() Policy { return s.policy }

// TryStart dispatches the next item if a concurrency slot is free,
// accounting it as running; nil when saturated or the queue is empty.
// Draining does not stop dispatch: already-admitted work finishes, only
// admission (the caller's concern) stops.
func (s *Scheduler) TryStart(q *queue.Q) *queue.Item {
	if s.running >= s.max {
		return nil
	}
	it := s.policy.Next(q)
	if it != nil {
		s.running++
	}
	return it
}

// Finish returns a concurrency slot.
func (s *Scheduler) Finish() {
	if s.running > 0 {
		s.running--
	}
}

// Running is the number of dispatched-and-unfinished items.
func (s *Scheduler) Running() int { return s.running }

// MaxConcurrent is the concurrency bound.
func (s *Scheduler) MaxConcurrent() int { return s.max }

// Drain marks the scheduler draining; Draining reports it. The flag is
// bookkeeping for the owner (reject new admissions, finish the rest).
func (s *Scheduler) Drain()         { s.draining = true }
func (s *Scheduler) Draining() bool { return s.draining }
