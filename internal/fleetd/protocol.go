package fleetd

import (
	"fmt"
	"sort"
	"time"

	"nowrender/internal/msg"
)

// Message tags of the broker protocol. Like the compositor's, they
// live in their own range (201+) so a trace mixing farm, sink and
// broker traffic stays readable; every connection is dedicated
// (replica↔broker or worker↔broker), so no tag ever shares a conn with
// another subsystem's.
const (
	// TagHello (client→broker) opens a connection: role, name, and —
	// for worker-role conns — the slots the member contributes.
	TagHello = iota + 201
	// TagWelcome (broker→client) answers the hello with the broker's
	// epoch and default lease term; a client reconnecting under a
	// different epoch knows its held leases are void (broker restart).
	TagWelcome
	// TagAcquire (replica→broker) asks for a lease. Req multiplexes
	// concurrent acquires on one conn; grants echo it.
	TagAcquire
	// TagGrant (broker→replica) answers an acquire: lease id, granted
	// units, term — or Err when the broker has nothing to grant.
	TagGrant
	// TagRenew (replica→broker) extends a held lease's term.
	TagRenew
	// TagRenewed (broker→replica) answers a renew. OK=false means the
	// lease already expired or was never this replica's: the replica
	// must treat its slots as gone.
	TagRenewed
	// TagRelease (replica→broker) returns a lease early. No reply —
	// release is fire-and-forget, expiry backstops the loss.
	TagRelease
	// TagStatsReq (client→broker) asks for a ledger snapshot.
	TagStatsReq
	// TagStats (broker→client) answers with BrokerStats.
	TagStats
	// TagFleetBye (either side) announces a clean close.
	TagFleetBye
)

// Roles a TagHello can announce.
const (
	RoleReplica = "replica"
	RoleWorker  = "worker"
)

// maxUnits bounds a grant's unit list on decode (a hostile payload must
// not allocate unbounded memory; no real pool is this big).
const maxUnits = 1 << 16

// Hello opens a connection.
type Hello struct {
	Role string
	Name string
	// Slots is the member capacity a worker-role conn contributes;
	// ignored for replicas.
	Slots int
}

// EncodeHello packs a Hello.
func EncodeHello(h Hello) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackString(h.Role)
	b.PackString(h.Name)
	b.PackInt(int64(h.Slots))
	return b.Sealed()
}

// DecodeHello unpacks and validates a Hello.
func DecodeHello(data []byte) (Hello, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Hello{}, fmt.Errorf("fleetd: bad hello: %w", err)
	}
	b := msg.FromBytes(body)
	var h Hello
	h.Role = b.UnpackString()
	h.Name = b.UnpackString()
	h.Slots = int(b.UnpackInt())
	if err := b.Err(); err != nil {
		return Hello{}, fmt.Errorf("fleetd: bad hello: %w", err)
	}
	if h.Role != RoleReplica && h.Role != RoleWorker {
		return Hello{}, fmt.Errorf("fleetd: bad hello role %q", h.Role)
	}
	if h.Name == "" {
		return Hello{}, fmt.Errorf("fleetd: hello without a name")
	}
	if h.Slots < 0 || h.Slots > maxUnits {
		return Hello{}, fmt.Errorf("fleetd: bad hello slots %d", h.Slots)
	}
	return h, nil
}

// Welcome answers a hello.
type Welcome struct {
	Epoch int64
	// TermMS is the broker's default lease term in milliseconds.
	TermMS int64
}

// EncodeWelcome packs a Welcome.
func EncodeWelcome(w Welcome) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(w.Epoch)
	b.PackInt(w.TermMS)
	return b.Sealed()
}

// DecodeWelcome unpacks and validates a Welcome.
func DecodeWelcome(data []byte) (Welcome, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Welcome{}, fmt.Errorf("fleetd: bad welcome: %w", err)
	}
	b := msg.FromBytes(body)
	var w Welcome
	w.Epoch = b.UnpackInt()
	w.TermMS = b.UnpackInt()
	if err := b.Err(); err != nil {
		return Welcome{}, fmt.Errorf("fleetd: bad welcome: %w", err)
	}
	if w.TermMS < 0 {
		return Welcome{}, fmt.Errorf("fleetd: bad welcome term %dms", w.TermMS)
	}
	return w, nil
}

// AcquireReq asks for a lease.
type AcquireReq struct {
	Req    uint64
	Want   int
	TermMS int64
}

// EncodeAcquire packs an AcquireReq.
func EncodeAcquire(a AcquireReq) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(a.Req))
	b.PackInt(int64(a.Want))
	b.PackInt(a.TermMS)
	return b.Sealed()
}

// DecodeAcquire unpacks and validates an AcquireReq.
func DecodeAcquire(data []byte) (AcquireReq, error) {
	body, err := msg.Open(data)
	if err != nil {
		return AcquireReq{}, fmt.Errorf("fleetd: bad acquire: %w", err)
	}
	b := msg.FromBytes(body)
	var a AcquireReq
	a.Req = uint64(b.UnpackInt())
	a.Want = int(b.UnpackInt())
	a.TermMS = b.UnpackInt()
	if err := b.Err(); err != nil {
		return AcquireReq{}, fmt.Errorf("fleetd: bad acquire: %w", err)
	}
	if a.Want < -1 || a.Want > maxUnits {
		return AcquireReq{}, fmt.Errorf("fleetd: bad acquire want %d", a.Want)
	}
	if a.TermMS < 0 || a.TermMS > int64(MaxTerm/time.Millisecond) {
		return AcquireReq{}, fmt.Errorf("fleetd: bad acquire term %dms", a.TermMS)
	}
	return a, nil
}

// Grant answers an acquire.
type Grant struct {
	Req    uint64
	Lease  uint64
	Slots  int
	Units  []string
	TermMS int64
	// Err, when non-empty, reports a refused acquire (no capacity).
	Err string
}

// EncodeGrant packs a Grant.
func EncodeGrant(g Grant) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(g.Req))
	b.PackInt(int64(g.Lease))
	b.PackInt(int64(g.Slots))
	b.PackInt(int64(len(g.Units)))
	for _, u := range g.Units {
		b.PackString(u)
	}
	b.PackInt(g.TermMS)
	b.PackString(g.Err)
	return b.Sealed()
}

// DecodeGrant unpacks and validates a Grant.
func DecodeGrant(data []byte) (Grant, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Grant{}, fmt.Errorf("fleetd: bad grant: %w", err)
	}
	b := msg.FromBytes(body)
	var g Grant
	g.Req = uint64(b.UnpackInt())
	g.Lease = uint64(b.UnpackInt())
	g.Slots = int(b.UnpackInt())
	n := b.UnpackInt()
	if b.Err() == nil && (n < 0 || n > maxUnits) {
		return Grant{}, fmt.Errorf("fleetd: bad grant unit count %d", n)
	}
	if b.Err() == nil {
		g.Units = make([]string, 0, n)
		for i := int64(0); i < n && b.Err() == nil; i++ {
			g.Units = append(g.Units, b.UnpackString())
		}
	}
	g.TermMS = b.UnpackInt()
	g.Err = b.UnpackString()
	if err := b.Err(); err != nil {
		return Grant{}, fmt.Errorf("fleetd: bad grant: %w", err)
	}
	if g.Slots < 0 || g.Slots > maxUnits || g.TermMS < 0 {
		return Grant{}, fmt.Errorf("fleetd: bad grant slots %d term %dms", g.Slots, g.TermMS)
	}
	if g.Err == "" && g.Slots != len(g.Units) {
		return Grant{}, fmt.Errorf("fleetd: grant slots %d != units %d", g.Slots, len(g.Units))
	}
	return g, nil
}

// RenewReq extends a lease.
type RenewReq struct {
	Req    uint64
	Lease  uint64
	TermMS int64
}

// EncodeRenew packs a RenewReq.
func EncodeRenew(r RenewReq) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(r.Req))
	b.PackInt(int64(r.Lease))
	b.PackInt(r.TermMS)
	return b.Sealed()
}

// DecodeRenew unpacks and validates a RenewReq.
func DecodeRenew(data []byte) (RenewReq, error) {
	body, err := msg.Open(data)
	if err != nil {
		return RenewReq{}, fmt.Errorf("fleetd: bad renew: %w", err)
	}
	b := msg.FromBytes(body)
	var r RenewReq
	r.Req = uint64(b.UnpackInt())
	r.Lease = uint64(b.UnpackInt())
	r.TermMS = b.UnpackInt()
	if err := b.Err(); err != nil {
		return RenewReq{}, fmt.Errorf("fleetd: bad renew: %w", err)
	}
	if r.TermMS < 0 || r.TermMS > int64(MaxTerm/time.Millisecond) {
		return RenewReq{}, fmt.Errorf("fleetd: bad renew term %dms", r.TermMS)
	}
	return r, nil
}

// Renewed answers a renew.
type Renewed struct {
	Req    uint64
	Lease  uint64
	OK     bool
	TermMS int64
}

// EncodeRenewed packs a Renewed.
func EncodeRenewed(r Renewed) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(r.Req))
	b.PackInt(int64(r.Lease))
	b.PackBool(r.OK)
	b.PackInt(r.TermMS)
	return b.Sealed()
}

// DecodeRenewed unpacks and validates a Renewed.
func DecodeRenewed(data []byte) (Renewed, error) {
	body, err := msg.Open(data)
	if err != nil {
		return Renewed{}, fmt.Errorf("fleetd: bad renewed: %w", err)
	}
	b := msg.FromBytes(body)
	var r Renewed
	r.Req = uint64(b.UnpackInt())
	r.Lease = uint64(b.UnpackInt())
	r.OK = b.UnpackBool()
	r.TermMS = b.UnpackInt()
	if err := b.Err(); err != nil {
		return Renewed{}, fmt.Errorf("fleetd: bad renewed: %w", err)
	}
	if r.TermMS < 0 {
		return Renewed{}, fmt.Errorf("fleetd: bad renewed term %dms", r.TermMS)
	}
	return r, nil
}

// EncodeRelease packs a lease id for TagRelease.
func EncodeRelease(lease uint64) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(lease))
	return b.Sealed()
}

// DecodeRelease unpacks a TagRelease payload.
func DecodeRelease(data []byte) (uint64, error) {
	body, err := msg.Open(data)
	if err != nil {
		return 0, fmt.Errorf("fleetd: bad release: %w", err)
	}
	b := msg.FromBytes(body)
	lease := uint64(b.UnpackInt())
	if err := b.Err(); err != nil {
		return 0, fmt.Errorf("fleetd: bad release: %w", err)
	}
	return lease, nil
}

// StatsMsg is the wire form of BrokerStats (member and replica maps
// flattened into parallel name/count lists).
type StatsMsg struct {
	Req                                       uint64
	Capacity, Free, Leased                    int
	Grants, Renews, Expiries, Releases, Waits uint64
	Members                                   map[string]int
}

// EncodeStats packs a StatsMsg.
func EncodeStats(s StatsMsg) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(s.Req))
	b.PackInt(int64(s.Capacity))
	b.PackInt(int64(s.Free))
	b.PackInt(int64(s.Leased))
	b.PackInt(int64(s.Grants))
	b.PackInt(int64(s.Renews))
	b.PackInt(int64(s.Expiries))
	b.PackInt(int64(s.Releases))
	b.PackInt(int64(s.Waits))
	names := make([]string, 0, len(s.Members))
	for m := range s.Members {
		names = append(names, m)
	}
	sort.Strings(names)
	b.PackInt(int64(len(names)))
	for _, m := range names {
		b.PackString(m)
		b.PackInt(int64(s.Members[m]))
	}
	return b.Sealed()
}

// DecodeStats unpacks and validates a StatsMsg.
func DecodeStats(data []byte) (StatsMsg, error) {
	body, err := msg.Open(data)
	if err != nil {
		return StatsMsg{}, fmt.Errorf("fleetd: bad stats: %w", err)
	}
	b := msg.FromBytes(body)
	var s StatsMsg
	s.Req = uint64(b.UnpackInt())
	s.Capacity = int(b.UnpackInt())
	s.Free = int(b.UnpackInt())
	s.Leased = int(b.UnpackInt())
	s.Grants = uint64(b.UnpackInt())
	s.Renews = uint64(b.UnpackInt())
	s.Expiries = uint64(b.UnpackInt())
	s.Releases = uint64(b.UnpackInt())
	s.Waits = uint64(b.UnpackInt())
	n := b.UnpackInt()
	if b.Err() == nil && (n < 0 || n > maxUnits) {
		return StatsMsg{}, fmt.Errorf("fleetd: bad stats member count %d", n)
	}
	if b.Err() == nil && n > 0 {
		s.Members = make(map[string]int, n)
		for i := int64(0); i < n && b.Err() == nil; i++ {
			name := b.UnpackString()
			s.Members[name] = int(b.UnpackInt())
		}
	}
	if err := b.Err(); err != nil {
		return StatsMsg{}, fmt.Errorf("fleetd: bad stats: %w", err)
	}
	if s.Capacity < 0 || s.Free < 0 || s.Leased < 0 {
		return StatsMsg{}, fmt.Errorf("fleetd: bad stats counts %d/%d/%d", s.Capacity, s.Free, s.Leased)
	}
	return s, nil
}

// EncodeReq packs a bare request id (TagStatsReq).
func EncodeReq(req uint64) []byte {
	b := msg.GetBuffer()
	defer b.Release()
	b.PackInt(int64(req))
	return b.Sealed()
}

// DecodeReq unpacks a bare request id.
func DecodeReq(data []byte) (uint64, error) {
	body, err := msg.Open(data)
	if err != nil {
		return 0, fmt.Errorf("fleetd: bad req: %w", err)
	}
	b := msg.FromBytes(body)
	req := uint64(b.UnpackInt())
	if err := b.Err(); err != nil {
		return 0, fmt.Errorf("fleetd: bad req: %w", err)
	}
	return req, nil
}
