// Command framediff reproduces Figure 2 of the paper for any animation:
// for a pair of consecutive frames it renders
//
//   - the actual pixel differences between the fully rendered frames
//     (Figure 2(a)), and
//   - the differences as predicted by the frame-coherence algorithm —
//     the dirty mask (Figure 2(b)),
//
// and reports how conservative the prediction is. With -a/-b it can
// also diff two already-rendered TGA files instead.
//
//	framediff -scene bouncing -frame 4 -out diffs/
//	framediff -a frame0004.tga -b frame0005.tga -out diffs/
//
// File-diff mode follows the diff(1) exit convention, so it can gate
// scripts and CI: 0 when the images are identical, 1 when they differ,
// 2 on error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"nowrender/internal/coherence"
	"nowrender/internal/fb"
	"nowrender/internal/imgdiff"
	"nowrender/internal/scenes"
	"nowrender/internal/stats"
	"nowrender/internal/tga"
)

func main() {
	var (
		sceneSpec = flag.String("scene", "bouncing", "scene spec (see nowrender -h)")
		frame     = flag.Int("frame", 0, "first frame of the pair to compare")
		width     = flag.Int("w", 240, "render width")
		height    = flag.Int("h", 320, "render height")
		outDir    = flag.String("out", "", "directory for mask images (empty = stats only)")
		fileA     = flag.String("a", "", "diff mode: first TGA file")
		fileB     = flag.String("b", "", "diff mode: second TGA file")
	)
	flag.Parse()
	if *fileA != "" || *fileB != "" {
		differ, err := diffFiles(*fileA, *fileB, *outDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "framediff:", err)
			os.Exit(2)
		}
		if differ {
			os.Exit(1)
		}
		return
	}
	if err := diffScene(*sceneSpec, *frame, *width, *height, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "framediff:", err)
		os.Exit(2)
	}
}

// diffFiles compares two TGA files and reports whether any pixel
// differs (the caller maps that onto the diff exit convention).
func diffFiles(a, b, outDir string) (bool, error) {
	if a == "" || b == "" {
		return false, fmt.Errorf("both -a and -b are required")
	}
	imgA, err := tga.ReadFile(a)
	if err != nil {
		return false, err
	}
	imgB, err := tga.ReadFile(b)
	if err != nil {
		return false, err
	}
	mask, err := imgdiff.Diff(imgA, imgB)
	if err != nil {
		return false, err
	}
	st, err := imgdiff.Compare(imgA, imgB)
	if err != nil {
		return false, err
	}
	fmt.Printf("%s vs %s: %d differing pixels (%.1f%%), max delta %d, PSNR %.1f dB\n",
		a, b, st.Differing, 100*mask.Fraction(), st.MaxChannelDelta, st.PSNR)
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return false, err
		}
		if err := tga.WriteFile(filepath.Join(outDir, "diff-actual.tga"), mask.Image()); err != nil {
			return false, err
		}
	}
	return st.Differing > 0, nil
}

func diffScene(spec string, frame, w, h int, outDir string) error {
	sc, err := scenes.FromSpec(spec)
	if err != nil {
		return err
	}
	if frame+1 >= sc.Frames {
		return fmt.Errorf("frame %d+1 out of range (%d frames)", frame, sc.Frames)
	}

	// Fully render the two frames for the actual diff (Figure 2(a)).
	var frames []*fb.Framebuffer
	full := fb.NewRect(0, 0, w, h)
	_, err = coherence.FullRender(sc, w, h, full, frame, frame+2, 1,
		func(_ int, img *fb.Framebuffer, _ stats.RayCounters) error {
			frames = append(frames, img.Clone())
			return nil
		})
	if err != nil {
		return err
	}
	actual, err := imgdiff.Diff(frames[0], frames[1])
	if err != nil {
		return err
	}

	// Run the coherence engine up to `frame` to obtain the predicted
	// dirty mask for frame+1 (Figure 2(b)).
	eng, err := coherence.NewEngine(sc, w, h, full, 0, sc.Frames, coherence.Options{})
	if err != nil {
		return err
	}
	scratch := fb.New(w, h)
	for f := 0; f <= frame; f++ {
		if _, err := eng.RenderFrame(f, scratch); err != nil {
			return err
		}
	}
	predicted, err := imgdiff.MaskFromDirty(eng.DirtyMask(), full, w, h)
	if err != nil {
		return err
	}

	fmt.Printf("scene %s, frames %d -> %d (%dx%d)\n", sc.Name, frame, frame+1, w, h)
	fmt.Printf("  actual differences:    %6d pixels (%.1f%%)\n", actual.Count(), 100*actual.Fraction())
	fmt.Printf("  predicted (dirty set): %6d pixels (%.1f%%)\n", predicted.Count(), 100*predicted.Fraction())
	if predicted.Covers(actual) {
		over := predicted.Count() - actual.Count()
		fmt.Printf("  prediction is a superset of the actual change (+%d conservative pixels)\n", over)
	} else {
		fmt.Printf("  WARNING: prediction misses changed pixels — coherence violated\n")
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		writes := map[string]*fb.Framebuffer{
			fmt.Sprintf("frame%04d.tga", frame):   frames[0],
			fmt.Sprintf("frame%04d.tga", frame+1): frames[1],
			"fig2a-actual-diff.tga":               actual.Image(),
			"fig2b-predicted-diff.tga":            predicted.Image(),
		}
		for name, img := range writes {
			if err := tga.WriteFile(filepath.Join(outDir, name), img); err != nil {
				return err
			}
		}
		fmt.Printf("  wrote %d images to %s\n", len(writes), outDir)
	}
	return nil
}
