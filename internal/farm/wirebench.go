package farm

import (
	"fmt"
	"time"

	"nowrender/internal/coherence"
	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/scene"
	"nowrender/internal/wire"
)

// WirePoint is one wire mode's measurement of the frame codec: the
// bytes each frame result costs on the wire and the encode+decode time
// it takes to get there. Serialised into BENCH_wire.json by cmd/benchtab
// so the data-path trajectory is recorded over time, and compared
// against the committed baseline by WireCheck (benchtab -check) so
// codec regressions fail CI loudly.
type WirePoint struct {
	// Mode is "full" (legacy raw region), "delta" (dirty-span deltas
	// after the key-frame), "delta+flate" (deltas plus flate),
	// "delta+span" (deltas plus the span codec) or "delta+adaptive"
	// (both codecs granted, per-frame choice).
	Mode   string `json:"mode"`
	Frames int    `json:"frames"`
	// BytesTotal is the summed encoded frameDone payloads, including the
	// mandatory frame-0 key-frame; BytesPerFrame is the average.
	BytesTotal    int64   `json:"bytes_total"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	// NSPerFrame is the average encode+decode+apply time per frame;
	// EncodeNSPerFrame and DecodeNSPerFrame split it by side, since the
	// encode half is what burns worker render budget.
	NSPerFrame       float64 `json:"ns_per_frame"`
	EncodeNSPerFrame float64 `json:"encode_ns_per_frame"`
	DecodeNSPerFrame float64 `json:"decode_ns_per_frame"`
	// KeyEncodeNS is frame 0's encode time alone (the mandatory
	// key-frame, paid once per task) and SteadyEncodeNSPerFrame the
	// average over the remaining frames — the steady-state cost a long
	// animation converges to, since the key-frame amortises as O(1/N).
	// Codec comparisons use the steady column so a mode's key-frame
	// handling (reported here) cannot mask its per-frame behaviour.
	KeyEncodeNS            float64 `json:"key_encode_ns"`
	SteadyEncodeNSPerFrame float64 `json:"steady_encode_ns_per_frame"`
	// EffectiveNSPerFrame is the modelled per-frame cost of this mode on
	// the paper's wire: encode time plus BytesPerFrame at
	// wire.WireNsPerByte. It is the objective the adaptive decision
	// minimises, so "adaptive is never slower on the wire than the best
	// static choice" is checked on this column.
	EffectiveNSPerFrame float64 `json:"effective_ns_per_frame"`
	// RatioVsFull is full-mode bytes divided by this mode's bytes (1.0
	// for the full mode itself): the wire-traffic reduction factor.
	RatioVsFull float64 `json:"ratio_vs_full"`
	// FramesDelta, FramesCompressed and FramesSpan count how often the
	// encoder actually chose the delta representation / kept the flate
	// output / kept the span-codec output.
	FramesDelta      int `json:"frames_delta"`
	FramesCompressed int `json:"frames_compressed"`
	FramesSpan       int `json:"frames_span"`
	// Identical records the determinism check: the pixels reconstructed
	// from the decoded stream compared byte-for-byte against the render.
	Identical bool `json:"identical"`
}

// WireBench is a full wire-sweep result: the per-mode replay rows plus
// a paired measurement of the two codecs' delta-frame stage cost, which
// is what the span-speedup gate runs on. The paired numbers exist
// because a ratio computed across two separately timed mode rows
// inherits the machine drift between them (tens of percent on shared
// runners), which would force a uselessly wide gate band.
type WireBench struct {
	Modes []WirePoint `json:"modes"`
	// SpanCodecNSPerFrame and FlateCodecNSPerFrame push the same
	// captured delta payloads through msg.SpanCompress and msg.Deflate
	// in alternating whole passes, keeping each codec's best pass.
	// Alternating passes makes the two sides sample the same machine
	// conditions (so their ratio is stable run to run) while preserving
	// each codec's natural back-to-back cache locality within a pass —
	// interleaving the codecs per frame instead lets each evict the
	// other's working set, a state neither static production mode ever
	// runs in (a worker encodes every frame with one codec).
	SpanCodecNSPerFrame  float64 `json:"span_codec_ns_per_frame"`
	FlateCodecNSPerFrame float64 `json:"flate_codec_ns_per_frame"`
	// SpanCodecSpeedup is flate's per-frame stage cost over span's: the
	// number WireCheck floors at WireCheckSpanSpeedup.
	SpanCodecSpeedup float64 `json:"span_codec_speedup"`
}

// wireSweepModes is the replay matrix, in presentation order.
var wireSweepModes = []struct {
	name  string
	flags int
}{
	{"full", 0},
	{"delta", capWireDelta},
	{"delta+flate", capWireDelta | capWireCompress},
	{"delta+span", capWireDelta | capWireSpanCodec},
	{"delta+adaptive", capWireDelta | capWireCompress | capWireSpanCodec},
}

// WireSweep measures the farm frame codec on a real render: it traces
// `frames` frames of sc at w x h through a coherence engine once,
// capturing each frame's pixels, dirty spans, and render time, then
// replays the capture through each wire mode with the production
// encoder and decoder, verifying that the reconstructed stream is
// byte-identical to the render. The static modes run the encoder in its
// deterministic configuration (no clock reads); the adaptive mode runs
// it live, measuring real codec costs exactly as a worker would — its
// codec choices (and so its byte counts) can therefore vary with the
// machine, which is why WireCheck holds it to the effective-cost
// invariant rather than a byte baseline.
func WireSweep(sc *scene.Scene, w, h, frames int) (*WireBench, error) {
	if frames <= 0 || frames > sc.Frames {
		frames = sc.Frames
	}
	region := fb.NewRect(0, 0, w, h)
	eng, err := coherence.NewEngine(sc, w, h, region, 0, frames, coherence.Options{})
	if err != nil {
		return nil, err
	}
	bufs := make([]*fb.Framebuffer, frames)
	spans := make([][]fb.Span, frames)
	renderNs := make([]int64, frames)
	buf := fb.New(w, h)
	for f := 0; f < frames; f++ {
		rstart := time.Now()
		if _, err := eng.RenderFrame(f, buf); err != nil {
			return nil, err
		}
		renderNs[f] = time.Since(rstart).Nanoseconds()
		img := fb.New(w, h)
		copy(img.Pix, buf.Pix)
		bufs[f] = img
		spans[f] = append([]fb.Span(nil), eng.LastSpans()...)
	}

	// Warm-up: run the whole capture through one untimed encode+decode
	// pass so the timed loops below measure the steady state — pooled
	// buffers allocated, branch predictors and caches primed — instead
	// of folding one-time warm-up costs into whichever mode runs first.
	// Bytes are unaffected (the throwaway encoder is discarded), so the
	// committed byte baselines do not depend on this pass.
	{
		var enc frameEncoder
		enc.Deterministic = true
		warmFlags := capWireDelta | capWireCompress | capWireSpanCodec
		for f := 0; f < frames; f++ {
			fd := frameDoneMsg{TaskID: 1, Frame: f, Region: region, ElapsedNs: renderNs[f]}
			data := enc.Encode(&fd, bufs[f], warmFlags, spans[f], f == 0)
			rd, err := decodeFrameDone(data)
			if err != nil {
				return nil, err
			}
			rd.Release()
		}
	}

	bench := &WireBench{Modes: make([]WirePoint, 0, len(wireSweepModes))}
	// Paired codec-stage measurement: the raw delta payloads (the exact
	// bytes the encoder hands each codec on a steady-state frame),
	// alternating whole span and flate passes and keeping each side's
	// best pass. Minimum-of-passes because the gate wants the codecs'
	// intrinsic cost ratio, not whichever transient noise taxed a pass.
	{
		var payloads [][]byte
		for f := 1; f < frames; f++ {
			if len(spans[f]) > 0 {
				payloads = append(payloads, bufs[f].AppendSpans(nil, spans[f]))
			}
		}
		if len(payloads) > 0 {
			const pairedPasses = 8
			var z []byte
			var bestSpan, bestFlate int64
			for r := 0; r < pairedPasses; r++ {
				start := time.Now()
				for _, p := range payloads {
					z = msg.SpanCompress(z[:0], p)
				}
				if ns := time.Since(start).Nanoseconds(); r == 0 || ns < bestSpan {
					bestSpan = ns
				}
				start = time.Now()
				for _, p := range payloads {
					var err error
					if z, err = msg.Deflate(z[:0], p); err != nil {
						return nil, err
					}
				}
				if ns := time.Since(start).Nanoseconds(); r == 0 || ns < bestFlate {
					bestFlate = ns
				}
			}
			bench.SpanCodecNSPerFrame = float64(bestSpan) / float64(len(payloads))
			bench.FlateCodecNSPerFrame = float64(bestFlate) / float64(len(payloads))
			if bestSpan > 0 {
				bench.SpanCodecSpeedup = float64(bestFlate) / float64(bestSpan)
			}
		}
	}

	var fullBytes int64
	for _, mode := range wireSweepModes {
		var enc frameEncoder
		enc.Deterministic = mode.flags&capWireSpanCodec == 0 || mode.flags&capWireCompress == 0
		pt := WirePoint{Mode: mode.name, Frames: frames, Identical: true}
		cur := fb.New(w, h)
		var encodeNs, decodeNs int64
		// Encode and decode run as separate passes, as they do in
		// production — the worker encodes, the master decodes, on
		// different machines. Interleaving them on one core would let
		// the decode+apply+verify side (which streams two framebuffers
		// per frame) evict the encoder's working set between frames and
		// tax every encode measurement with refill cost.
		msgs := make([][]byte, frames)
		for f := 0; f < frames; f++ {
			fd := frameDoneMsg{TaskID: 1, Frame: f, Region: region, ElapsedNs: renderNs[f]}
			encStart := time.Now()
			data := enc.Encode(&fd, bufs[f], mode.flags, spans[f], f == 0)
			frameEncNs := time.Since(encStart).Nanoseconds()
			encodeNs += frameEncNs
			if f == 0 {
				pt.KeyEncodeNS = float64(frameEncNs)
			}
			pt.BytesTotal += int64(len(data))
			// The sealed bytes live in pooled scratch the next Encode
			// reuses; the copy keeps them for the decode pass (and is
			// outside the timed window).
			msgs[f] = append([]byte(nil), data...)
		}
		for f := 0; f < frames; f++ {
			decStart := time.Now()
			rd, err := decodeFrameDone(msgs[f])
			if err != nil {
				return nil, err
			}
			if rd.Kind == frameDelta {
				pt.FramesDelta++
				if err := cur.ApplySpans(rd.Spans, rd.Pix); err != nil {
					rd.Release()
					return nil, err
				}
			} else {
				copy(cur.Pix, rd.Pix)
			}
			decodeNs += time.Since(decStart).Nanoseconds()
			switch rd.Encoding {
			case encFlate:
				pt.FramesCompressed++
			case encSpan:
				pt.FramesSpan++
			}
			rd.Release()
			if !cur.Equal(bufs[f]) {
				pt.Identical = false
			}
		}
		pt.BytesPerFrame = float64(pt.BytesTotal) / float64(frames)
		pt.EncodeNSPerFrame = float64(encodeNs) / float64(frames)
		pt.DecodeNSPerFrame = float64(decodeNs) / float64(frames)
		if frames > 1 {
			pt.SteadyEncodeNSPerFrame = (float64(encodeNs) - pt.KeyEncodeNS) / float64(frames-1)
		}
		pt.NSPerFrame = pt.EncodeNSPerFrame + pt.DecodeNSPerFrame
		pt.EffectiveNSPerFrame = pt.EncodeNSPerFrame + pt.BytesPerFrame*wire.WireNsPerByte
		switch {
		case mode.flags == 0:
			fullBytes = pt.BytesTotal
			pt.RatioVsFull = 1
		case pt.BytesTotal > 0:
			pt.RatioVsFull = float64(fullBytes) / float64(pt.BytesTotal)
		}
		bench.Modes = append(bench.Modes, pt)
	}
	return bench, nil
}

// Threshold bands for WireCheck. Bytes are deterministic up to codec
// choices (which the sweep pins via the deterministic encoder), so
// their band is tight; encode timing on shared CI runners is noisy, so
// its band is wide — the structural invariants below are what hold the
// span codec to its design point regardless of machine speed.
const (
	// WireCheckBytesSlack allows committed-baseline drift in bytes/frame
	// before failing (scene or codec-choice changes should instead
	// regenerate the baseline deliberately).
	WireCheckBytesSlack = 1.15
	// WireCheckEncodeSlack allows per-mode encode ns/frame drift vs the
	// baseline (absorbs runner speed differences, not algorithmic
	// regressions, which blow well past 1.75x).
	WireCheckEncodeSlack = 1.75
	// WireCheckSpanSpeedup floors the paired codec-stage ratio
	// (WireBench.SpanCodecSpeedup): how many times cheaper the span
	// codec encodes a steady-state delta payload than flate. Steady
	// state because the one-time key-frame (reported per row in
	// key_encode_ns; the span codec wins it too, by ~2x) amortises as
	// O(1/N) over an animation, while the delta-frame cost is what
	// every further frame pays. The design target was 4x; measured
	// honestly the codec delivers 3.6-4.2x depending on machine state
	// (EXPERIMENTS.md records the band and the measurement method), so
	// the regression floor sits at 3.5x — below the measured band's
	// bottom edge, far above where any algorithmic regression lands
	// (dropping the cheapest optimisation in the hot loop costs >15%).
	WireCheckSpanSpeedup = 3.5
	// WireCheckSpanByteShare: the span codec must retain at least this
	// share of flate's byte reduction below plain delta.
	WireCheckSpanByteShare = 0.8
	// WireCheckAdaptiveSlack: adaptive effective ns/frame may exceed the
	// best static mode's by at most this factor (probe-frame overhead).
	WireCheckAdaptiveSlack = 1.03
)

// WireCheck compares a fresh sweep against the committed baseline and
// the codec's structural invariants, returning one message per
// violation (empty = gate passes). It is the engine of `benchtab -wire
// -check`, the CI perf threshold gate.
func WireCheck(baseline, current *WireBench) []string {
	var bad []string
	base := make(map[string]WirePoint, len(baseline.Modes))
	for _, pt := range baseline.Modes {
		base[pt.Mode] = pt
	}
	cur := make(map[string]WirePoint, len(current.Modes))
	for _, pt := range current.Modes {
		cur[pt.Mode] = pt
		if !pt.Identical {
			bad = append(bad, fmt.Sprintf("%s: reconstructed pixels differ from the render", pt.Mode))
		}
		b, ok := base[pt.Mode]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from committed baseline (regenerate BENCH_wire.json)", pt.Mode))
			continue
		}
		// The adaptive row's byte count depends on measured codec costs
		// (machine-dependent by design); it is gated by the effective-
		// cost invariant below instead of the byte baseline.
		if pt.Mode != "delta+adaptive" &&
			b.BytesPerFrame > 0 && pt.BytesPerFrame > b.BytesPerFrame*WireCheckBytesSlack {
			bad = append(bad, fmt.Sprintf("%s: bytes/frame %.0f exceeds baseline %.0f x%.2f",
				pt.Mode, pt.BytesPerFrame, b.BytesPerFrame, WireCheckBytesSlack))
		}
		if b.EncodeNSPerFrame > 0 && pt.EncodeNSPerFrame > b.EncodeNSPerFrame*WireCheckEncodeSlack {
			bad = append(bad, fmt.Sprintf("%s: encode ns/frame %.0f exceeds baseline %.0f x%.2f",
				pt.Mode, pt.EncodeNSPerFrame, b.EncodeNSPerFrame, WireCheckEncodeSlack))
		}
	}
	for _, mode := range []string{"delta", "delta+flate", "delta+span", "delta+adaptive"} {
		if _, ok := cur[mode]; !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from sweep", mode))
			return bad
		}
	}
	delta, flate, span, adaptive := cur["delta"], cur["delta+flate"], cur["delta+span"], cur["delta+adaptive"]
	// The span codec's design point: WireCheckSpanSpeedup x cheaper
	// steady-state delta encoding than flate while keeping most of its
	// byte reduction. Checked on the paired codec-stage measurement so
	// the ratio does not inherit drift between separately timed rows
	// (see the WireBench and constant comments).
	if current.SpanCodecSpeedup > 0 && current.SpanCodecSpeedup < WireCheckSpanSpeedup {
		bad = append(bad, fmt.Sprintf("delta+span: paired codec stage %.0f ns/frame is only %.2fx faster than flate's %.0f (floor %.1fx)",
			current.SpanCodecNSPerFrame, current.SpanCodecSpeedup, current.FlateCodecNSPerFrame, WireCheckSpanSpeedup))
	}
	if flateSaves := delta.BytesPerFrame - flate.BytesPerFrame; flateSaves > 0 {
		spanSaves := delta.BytesPerFrame - span.BytesPerFrame
		if spanSaves < flateSaves*WireCheckSpanByteShare {
			bad = append(bad, fmt.Sprintf("delta+span: byte reduction %.0f B/frame is under %.0f%% of delta+flate's %.0f",
				spanSaves, WireCheckSpanByteShare*100, flateSaves))
		}
	}
	// Adaptive must track the best static choice on the modelled wire.
	bestStatic := delta.EffectiveNSPerFrame
	for _, pt := range []WirePoint{flate, span} {
		if pt.EffectiveNSPerFrame < bestStatic {
			bestStatic = pt.EffectiveNSPerFrame
		}
	}
	if adaptive.EffectiveNSPerFrame > bestStatic*WireCheckAdaptiveSlack {
		bad = append(bad, fmt.Sprintf("delta+adaptive: effective %.0f ns/frame exceeds best static %.0f x%.2f",
			adaptive.EffectiveNSPerFrame, bestStatic, WireCheckAdaptiveSlack))
	}
	return bad
}
