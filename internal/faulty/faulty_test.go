package faulty

import (
	"errors"
	"testing"
	"time"

	"nowrender/internal/msg"
)

// echoPair returns both ends of a pipe: the test drives side a, a goroutine
// is not needed because pipes are buffered.
func pipePair(t *testing.T) (msg.Conn, msg.Conn) {
	t.Helper()
	a, b := msg.Pipe(16)
	t.Cleanup(func() { a.Close() })
	return a, b
}

func TestWrapProtectReturnsUnwrapped(t *testing.T) {
	a, _ := pipePair(t)
	p := &Plan{Seed: 1, Rules: []Rule{{Prob: 1, Action: Drop}}, Protect: []string{"safe"}}
	if got := p.Wrap("safe", a); got != a {
		t.Error("protected name was wrapped")
	}
	if got := p.Wrap("victim", a); got == a {
		t.Error("unprotected name was not wrapped")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// The same (seed, name, message sequence) must trigger identical
	// faults; a different name must diverge somewhere.
	decisions := func(seed int64, name string) []bool {
		a, b := msg.Pipe(256)
		p := &Plan{Seed: seed, Rules: []Rule{{Prob: 0.5, Action: Drop}}}
		w := p.Wrap(name, a)
		for i := 0; i < 100; i++ {
			if err := w.Send(msg.Message{Tag: 3, Data: []byte{byte(i)}}); err != nil {
				t.Fatal(err)
			}
		}
		// Closing drains the pipe: buffered messages are still received,
		// then ErrClosed. Which indexes survived IS the schedule.
		a.Close()
		out := make([]bool, 100)
		for {
			m, err := b.Recv()
			if err != nil {
				break
			}
			out[m.Data[0]] = true
		}
		return out
	}
	first := decisions(7, "worker01")
	second := decisions(7, "worker01")
	other := decisions(7, "worker02")
	if !equalBools(first, second) {
		t.Error("same (seed, name) produced different schedules")
	}
	if equalBools(first, other) {
		t.Error("different names produced identical schedules (seeds not diversified)")
	}
	dropped := 0
	for _, ok := range first {
		if !ok {
			dropped++
		}
	}
	if dropped < 20 || dropped > 80 {
		t.Errorf("Prob=0.5 dropped %d/100 messages", dropped)
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAfterTriggersExactlyOnce(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	p := &Plan{Seed: 1, Rules: []Rule{{Tag: 5, After: 3, Action: Drop}}}
	w := p.Wrap("w", a)
	for i := 0; i < 6; i++ {
		if err := w.Send(msg.Message{Tag: 5, Data: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	var got []byte
	for i := 0; i < 5; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m.Data[0])
	}
	want := []byte{0, 1, 3, 4, 5} // the 3rd matching message (index 2) dropped
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered sequence %v, want %v", got, want)
		}
	}
	if s := p.Snapshot(); s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
}

func TestTagFilterAndDirection(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	p := &Plan{Seed: 1, Rules: []Rule{{Tag: 9, Dir: SendOnly, After: 1, Action: Drop}}}
	w := p.Wrap("w", a)
	// Non-matching tag passes.
	if err := w.Send(msg.Message{Tag: 2}); err != nil {
		t.Fatal(err)
	}
	if m, _ := b.Recv(); m.Tag != 2 {
		t.Fatalf("tag-2 message not delivered")
	}
	// Matching tag on the send side drops.
	if err := w.Send(msg.Message{Tag: 9}); err != nil {
		t.Fatal(err)
	}
	// RecvOnly direction of the same rule must NOT drop tag 9 arriving.
	if err := b.Send(msg.Message{Tag: 9}); err != nil {
		t.Fatal(err)
	}
	if m, err := w.Recv(); err != nil || m.Tag != 9 {
		t.Fatalf("send-only rule dropped a received message: %v %v", m, err)
	}
}

func TestCorruptAltersCopyNotOriginal(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	orig := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	keep := append([]byte(nil), orig...)
	p := &Plan{Seed: 42, Rules: []Rule{{After: 1, Action: Corrupt}}}
	w := p.Wrap("w", a)
	if err := w.Send(msg.Message{Tag: 1, Data: orig}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != string(keep) {
		t.Error("corruption mutated the caller's buffer")
	}
	same := true
	for i := range m.Data {
		if m.Data[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Error("corrupt rule delivered unaltered payload")
	}
	if s := p.Snapshot(); s.Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1", s.Corrupted)
	}
}

func TestTruncateShortens(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	p := &Plan{Seed: 3, Rules: []Rule{{After: 1, Action: Truncate}}}
	w := p.Wrap("w", a)
	data := make([]byte, 100)
	if err := w.Send(msg.Message{Tag: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) >= len(data) {
		t.Errorf("truncate delivered %d bytes, want < %d", len(m.Data), len(data))
	}
}

func TestSeverClosesBothDirections(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	p := &Plan{Seed: 1, Rules: []Rule{{After: 2, Action: Sever}}}
	w := p.Wrap("w", a)
	if err := w.Send(msg.Message{Tag: 1}); err != nil {
		t.Fatal(err)
	}
	err := w.Send(msg.Message{Tag: 1})
	if !errors.Is(err, msg.ErrClosed) {
		t.Fatalf("second send: err = %v, want ErrClosed", err)
	}
	if err := w.Send(msg.Message{Tag: 1}); !errors.Is(err, msg.ErrClosed) {
		t.Fatalf("post-sever send: err = %v, want ErrClosed", err)
	}
	if _, err := w.Recv(); !errors.Is(err, msg.ErrClosed) {
		t.Fatalf("post-sever recv: err = %v, want ErrClosed", err)
	}
	// The peer drains the one delivered message, then observes the closed
	// pipe (Pipe closes both ends).
	if m, err := b.Recv(); err != nil || m.Tag != 1 {
		t.Fatalf("pre-sever message lost: %v %v", m, err)
	}
	if _, err := b.Recv(); err == nil {
		t.Error("peer still receiving after sever")
	}
	if s := p.Snapshot(); s.Severed != 1 {
		t.Errorf("Severed = %d, want 1", s.Severed)
	}
}

func TestRecvSkipsDropped(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	p := &Plan{Seed: 1, Rules: []Rule{{Tag: 7, After: 1, Dir: RecvOnly, Action: Drop}}}
	w := p.Wrap("w", a)
	if err := b.Send(msg.Message{Tag: 7, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(msg.Message{Tag: 8, Data: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	m, err := w.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Tag != 8 {
		t.Errorf("Recv returned tag %d, want the dropped tag-7 skipped and tag 8 delivered", m.Tag)
	}
}

func TestParsePlan(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		check   func(t *testing.T, p *Plan)
	}{
		{spec: "", check: func(t *testing.T, p *Plan) {
			if p != nil {
				t.Error("empty spec should produce a nil plan")
			}
		}},
		{spec: "seed=42,drop=0.25,protect=ws01,protect=ws02", check: func(t *testing.T, p *Plan) {
			if p.Seed != 42 || len(p.Rules) != 1 || p.Rules[0].Action != Drop || p.Rules[0].Prob != 0.25 {
				t.Errorf("parsed %+v", p)
			}
			if len(p.Protect) != 2 {
				t.Errorf("protect list %v", p.Protect)
			}
		}},
		{spec: "drop=0.1,corrupt=0.2,truncate=0.3,sever=0.4,delay=0.5:5ms", check: func(t *testing.T, p *Plan) {
			if len(p.Rules) != 5 {
				t.Fatalf("%d rules, want 5", len(p.Rules))
			}
			if p.Rules[4].Action != Delay || p.Rules[4].Delay != 5*time.Millisecond {
				t.Errorf("delay rule %+v", p.Rules[4])
			}
		}},
		{spec: "drop=1.5", wantErr: true},
		{spec: "drop=-0.1", wantErr: true},
		{spec: "seed=abc", wantErr: true},
		{spec: "delay=0.5", wantErr: true},
		{spec: "delay=0.5:notaduration", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "noequals", wantErr: true},
	}
	for _, tc := range cases {
		p, err := ParsePlan(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParsePlan(%q): no error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", tc.spec, err)
			continue
		}
		if tc.check != nil {
			tc.check(t, p)
		}
	}
}

func TestDelayDelivers(t *testing.T) {
	a, b := msg.Pipe(64)
	defer a.Close()
	p := &Plan{Seed: 1, Rules: []Rule{{After: 1, Action: Delay, Delay: 10 * time.Millisecond}}}
	w := p.Wrap("w", a)
	start := time.Now()
	if err := w.Send(msg.Message{Tag: 1, Data: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("delayed send returned after %v, want >= 10ms", d)
	}
	if m, err := b.Recv(); err != nil || m.Data[0] != 9 {
		t.Errorf("delayed message not delivered intact: %v %v", m, err)
	}
	if s := p.Snapshot(); s.Delayed != 1 {
		t.Errorf("Delayed = %d, want 1", s.Delayed)
	}
}
