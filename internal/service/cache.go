// The content-addressed frame cache lifts the paper's frame coherence to
// the service level: where the coherence engine reuses pixels between
// consecutive frames of one run, the cache reuses whole frames between
// *jobs* — a resubmitted or overlapping animation is served from memory
// with zero new rays traced.
//
// Frames are addressed by content, not by job: the key hashes the scene
// source, the output resolution, the pixel-affecting render options and
// the frame number. Options that provably do not change pixels are
// excluded on purpose — the repo's tested invariant is that every farm
// mode, partition scheme, and the coherence engine itself produce
// pixel-identical frames, so two jobs differing only in scheme or
// coherence share cache entries.
package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"time"

	"nowrender/internal/fb"
	"nowrender/internal/stats"
)

// seqKey addresses a rendered animation: scene source + resolution +
// pixel-affecting options.
type seqKey [sha256.Size]byte

// newSeqKey hashes the identity of a rendered sequence. source is the
// canonical scene text (builtin spec or SDL source); samples is the
// supersampling factor, the one exposed option that changes pixels.
func newSeqKey(source string, w, h, samples int) seqKey {
	hsh := sha256.New()
	var dims [12]byte
	binary.BigEndian.PutUint32(dims[0:], uint32(w))
	binary.BigEndian.PutUint32(dims[4:], uint32(h))
	binary.BigEndian.PutUint32(dims[8:], uint32(samples))
	hsh.Write(dims[:])
	hsh.Write([]byte(source))
	var k seqKey
	hsh.Sum(k[:0])
	return k
}

// frameKey addresses one frame of a sequence.
type frameKey struct {
	seq   seqKey
	frame int
}

// centry is one cached frame on the LRU list.
type centry struct {
	key  frameKey
	img  *fb.Framebuffer
	size int64
	// expires is when the entry stops being servable (zero = never).
	expires time.Time
}

// FrameCache is a content-addressed frame store with LRU eviction under
// a byte budget and optional per-entry TTL expiry. Cached framebuffers
// are shared, immutable-by-contract values: callers must not modify what
// Get returns or Put receives.
type FrameCache struct {
	mu     sync.Mutex
	budget int64
	ttl    time.Duration
	bytes  int64
	ll     *list.List // front = most recently used
	items  map[frameKey]*list.Element
	// now is the clock, swappable by tests.
	now func() time.Time

	hits, misses, evictions, expired uint64
}

// NewFrameCache returns a cache bounded to budget bytes of pixel data.
// budget <= 0 means unlimited.
func NewFrameCache(budget int64) *FrameCache {
	return NewFrameCacheTTL(budget, 0)
}

// NewFrameCacheTTL is NewFrameCache with per-entry expiry: entries older
// than ttl are dropped lazily, on the lookup that finds them stale
// (ttl <= 0 = never expire). Pixels never go wrong with age — the cache
// is content-addressed — so the TTL's job is reclaiming memory from
// animations nobody re-requests, not invalidation.
func NewFrameCacheTTL(budget int64, ttl time.Duration) *FrameCache {
	return &FrameCache{
		budget: budget,
		ttl:    ttl,
		ll:     list.New(),
		items:  make(map[frameKey]*list.Element),
		now:    time.Now,
	}
}

// removeLocked drops an entry from the list, the index and the byte
// account; callers hold c.mu.
func (c *FrameCache) removeLocked(el *list.Element) {
	e := el.Value.(*centry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// get returns the cached frame and marks it most recently used; a stale
// entry is dropped and reported as a miss.
func (c *FrameCache) get(k frameKey) (*fb.Framebuffer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*centry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expired++
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return e.img, true
}

// put inserts (or refreshes) a frame and evicts least-recently-used
// entries until the cache fits its budget. A frame larger than the whole
// budget is not cached at all.
func (c *FrameCache) put(k frameKey, img *fb.Framebuffer) {
	size := int64(len(img.Pix))
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget > 0 && size > c.budget {
		return
	}
	if el, ok := c.items[k]; ok {
		// Content-addressed: same key, same pixels. Refresh recency and
		// push the expiry out — the entry was just re-produced.
		el.Value.(*centry).expires = c.expiry()
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&centry{key: k, img: img, size: size, expires: c.expiry()})
	c.bytes += size
	for c.budget > 0 && c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// expiry computes a fresh entry's deadline (zero when no TTL is set);
// callers hold c.mu.
func (c *FrameCache) expiry() time.Time {
	if c.ttl <= 0 {
		return time.Time{}
	}
	return c.now().Add(c.ttl)
}

// Stats snapshots the cache counters.
func (c *FrameCache) Stats() stats.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return stats.CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Expired: c.expired,
		Entries: c.ll.Len(), Bytes: c.bytes, Budget: c.budget,
	}
}
