package nowrender_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"nowrender"
)

func TestPublicQuickstartFlow(t *testing.T) {
	sc := nowrender.QuickstartScene()
	img, err := nowrender.RenderFrame(sc, 0, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 64 || img.H != 48 {
		t.Fatalf("image %dx%d", img.W, img.H)
	}
	// Round trip through the TGA encoder.
	var buf bytes.Buffer
	if err := nowrender.EncodeTGA(&buf, img); err != nil {
		t.Fatal(err)
	}
	back, err := nowrender.DecodeTGA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(img) {
		t.Error("TGA round trip changed pixels")
	}
	// And through files.
	dir := t.TempDir()
	p := filepath.Join(dir, "f.tga")
	if err := nowrender.WriteTGA(p, img); err != nil {
		t.Fatal(err)
	}
	back2, err := nowrender.ReadTGA(p)
	if err != nil {
		t.Fatal(err)
	}
	if !back2.Equal(img) {
		t.Error("file round trip changed pixels")
	}
}

func TestPublicSceneBuilding(t *testing.T) {
	sc := nowrender.NewScene("api")
	sc.Frames = 3
	sc.Add("ball", nowrender.NewSphere(nowrender.V(0, 1, 0), 1),
		nowrender.Matte(nowrender.RGB(1, 0, 0)),
		nowrender.KeyframeTrack{Keys: []nowrender.Keyframe{
			{Frame: 0, Pos: nowrender.V(0, 0, 0)},
			{Frame: 2, Pos: nowrender.V(2, 0, 0)},
		}})
	sc.Add("floor", nowrender.NewPlane(nowrender.V(0, 1, 0), 0),
		nowrender.Matte(nowrender.RGB(1, 1, 1)), nil)
	sc.AddLight("key", nowrender.V(4, 8, 6), nowrender.RGB(1, 1, 1))
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	run, err := nowrender.RenderAnimation(sc, 32, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Frames) != 3 {
		t.Errorf("%d frame stats", len(run.Frames))
	}
	totals := run.TotalRays()
	if totals.Total() == 0 {
		t.Error("no rays traced")
	}
}

func TestPublicParseScene(t *testing.T) {
	sc, err := nowrender.ParseScene("t", `
		camera { location <0,1,5> look_at <0,0,0> }
		light_source { <3,6,4> color rgb <1,1,1> }
		sphere { <0,0,0>, 1 pigment { color rgb <0,1,0> } }
	`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := nowrender.RenderFrame(sc, 0, 24, 18)
	if err != nil {
		t.Fatal(err)
	}
	// The green sphere must be visible somewhere.
	found := false
	for y := 0; y < img.H && !found; y++ {
		for x := 0; x < img.W; x++ {
			_, g, _ := img.At(x, y)
			if g > 60 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("green sphere not visible in parsed scene")
	}
}

func TestPublicFarmVirtual(t *testing.T) {
	sc := nowrender.NewtonScene(4)
	res, err := nowrender.RenderFarmVirtual(nowrender.FarmConfig{
		Scene: sc, W: 40, H: 52, Coherence: true,
		Scheme: nowrender.FrameDivision{BlockW: 20, BlockH: 26, Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 4 || res.Makespan <= 0 {
		t.Fatalf("frames=%d makespan=%v", len(res.Frames), res.Makespan)
	}
	// The farm's frames match the single-frame API exactly.
	ref, err := nowrender.RenderFrame(sc, 2, 40, 52)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Frames[2].Equal(ref) {
		t.Error("farm frame differs from direct render")
	}
}

func TestPublicDiffTooling(t *testing.T) {
	sc := nowrender.BouncingScene(4)
	a, err := nowrender.RenderFrame(sc, 0, 32, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nowrender.RenderFrame(sc, 1, 32, 40)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := nowrender.DiffFrames(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mask.Count() == 0 {
		t.Error("no differences between animation frames")
	}
	st, err := nowrender.CompareFrames(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Differing != mask.Count() {
		t.Errorf("stats (%d) disagree with mask (%d)", st.Differing, mask.Count())
	}
}
