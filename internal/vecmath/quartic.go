package vecmath

import "math"

// SolveCubic returns the real roots of t³ + p·t² + q·t + r = 0 (monic)
// in ascending order, using Cardano's method with the trigonometric
// branch for three real roots.
func SolveCubic(p, q, r float64) []float64 {
	// Depress: t = x - p/3.
	shift := p / 3
	a := q - p*p/3
	b := 2*p*p*p/27 - p*q/3 + r

	var roots []float64
	disc := b*b/4 + a*a*a/27
	switch {
	case disc > 1e-14:
		// One real root.
		sq := math.Sqrt(disc)
		u := math.Cbrt(-b/2 + sq)
		v := math.Cbrt(-b/2 - sq)
		roots = []float64{u + v - shift}
	case disc < -1e-14:
		// Three distinct real roots (a < 0 here).
		m := 2 * math.Sqrt(-a/3)
		theta := math.Acos(Clamp(3*b/(a*m), -1, 1)) / 3
		for k := 0; k < 3; k++ {
			roots = append(roots, m*math.Cos(theta-2*math.Pi*float64(k)/3)-shift)
		}
	default:
		// Repeated roots.
		if math.Abs(b) < 1e-14 && math.Abs(a) < 1e-14 {
			roots = []float64{-shift}
		} else {
			u := math.Cbrt(-b / 2)
			roots = []float64{2*u - shift, -u - shift}
		}
	}
	sortFloats(roots)
	return polishRoots(roots, func(t float64) (float64, float64) {
		return ((t+p)*t+q)*t + r, (3*t+2*p)*t + q
	})
}

// SolveQuartic returns the real roots of
// t⁴ + a·t³ + b·t² + c·t + d = 0 (monic) in ascending order, via
// Ferrari's resolvent-cubic method with Newton polishing. Intended for
// torus intersection, where coefficients are well-scaled.
func SolveQuartic(a, b, c, d float64) []float64 {
	// Depress: t = x - a/4  =>  x⁴ + p·x² + q·x + r = 0.
	shift := a / 4
	a2 := a * a
	p := b - 3*a2/8
	q := c - a*b/2 + a2*a/8
	r := d - a*c/4 + a2*b/16 - 3*a2*a2/256

	var xs []float64
	if math.Abs(q) < 1e-12 {
		// Biquadratic: x⁴ + p x² + r = 0.
		y0, y1, n := SolveQuadratic(1, p, r)
		for i, y := range [2]float64{y0, y1} {
			if i >= n {
				break
			}
			if y < 0 {
				continue
			}
			s := math.Sqrt(y)
			xs = append(xs, s, -s)
		}
	} else {
		// Resolvent cubic: y³ + 2p·y² + (p²-4r)·y - q² = 0; any positive
		// root y gives the factorisation.
		ys := SolveCubic(2*p, p*p-4*r, -q*q)
		var y float64
		for _, cand := range ys {
			if cand > y {
				y = cand
			}
		}
		if y <= 0 {
			return nil
		}
		s := math.Sqrt(y)
		// x² ± s·x + (p + y ∓ q/s)/2 = 0.
		u := (p + y - q/s) / 2
		v := (p + y + q/s) / 2
		t0, t1, n := SolveQuadratic(1, s, u)
		for i, t := range [2]float64{t0, t1} {
			if i < n {
				xs = append(xs, t)
			}
		}
		t0, t1, n = SolveQuadratic(1, -s, v)
		for i, t := range [2]float64{t0, t1} {
			if i < n {
				xs = append(xs, t)
			}
		}
	}
	if len(xs) == 0 {
		return nil
	}
	roots := make([]float64, 0, len(xs))
	for _, x := range xs {
		roots = append(roots, x-shift)
	}
	roots = polishRoots(roots, func(t float64) (float64, float64) {
		f := (((t+a)*t+b)*t+c)*t + d
		df := ((4*t+3*a)*t+2*b)*t + c
		return f, df
	})
	sortFloats(roots)
	return dedupFloats(roots, 1e-9)
}

// polishRoots runs a few Newton iterations on each root using the
// supplied (f, f') evaluator.
func polishRoots(roots []float64, eval func(t float64) (f, df float64)) []float64 {
	for i, t := range roots {
		for iter := 0; iter < 12; iter++ {
			f, df := eval(t)
			if math.Abs(df) < 1e-300 {
				break
			}
			step := f / df
			t -= step
			if math.Abs(step) < 1e-14*(1+math.Abs(t)) {
				break
			}
		}
		roots[i] = t
	}
	return roots
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func dedupFloats(xs []float64, tol float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x-out[len(out)-1] > tol {
			out = append(out, x)
		}
	}
	return out
}
