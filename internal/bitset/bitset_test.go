package bitset

import (
	"sync"
	"testing"
)

func TestSetGetCount(t *testing.T) {
	b := New(130) // spans three words with a ragged tail
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set on fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	b.Reset()
	if got := b.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
}

func TestSetAllRespectsLength(t *testing.T) {
	b := New(70)
	b.SetAll()
	if got := b.Count(); got != 70 {
		t.Fatalf("Count after SetAll = %d, want 70", got)
	}
	bools := b.Bools()
	if len(bools) != 70 {
		t.Fatalf("Bools len = %d, want 70", len(bools))
	}
	for i, v := range bools {
		if !v {
			t.Fatalf("bit %d false after SetAll", i)
		}
	}
}

// TestSetAtomicConcurrent hammers one word from many goroutines; run
// under -race this is the engine's parallel change-detection pattern.
func TestSetAtomicConcurrent(t *testing.T) {
	const n = 256
	b := New(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				b.SetAtomic(i)
				// Contend on shared words too.
				b.SetAtomic(i / 2)
			}
		}(g)
	}
	wg.Wait()
	if got := b.Count(); got != n {
		t.Fatalf("Count = %d, want %d", got, n)
	}
}
