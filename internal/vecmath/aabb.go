package vecmath

import "math"

// AABB is an axis-aligned bounding box. The zero value is the canonical
// empty box (Min > Max in every axis after calling EmptyAABB).
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns a box containing no points, suitable as the identity
// for Union.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Splat(inf), Max: Splat(-inf)}
}

// NewAABB returns the box spanning the two corner points in any order.
func NewAABB(a, b Vec3) AABB {
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

// IsEmpty reports whether the box contains no points.
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Union returns the smallest box containing both b and c.
func (b AABB) Union(c AABB) AABB {
	return AABB{Min: b.Min.Min(c.Min), Max: b.Max.Max(c.Max)}
}

// Extend returns the smallest box containing b and point p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Pad returns the box grown by d on every side.
func (b AABB) Pad(d float64) AABB {
	return AABB{Min: b.Min.Sub(Splat(d)), Max: b.Max.Add(Splat(d))}
}

// Size returns the box extents per axis.
func (b AABB) Size() Vec3 { return b.Max.Sub(b.Min) }

// Center returns the box centre.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// Contains reports whether point p lies inside or on the box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Overlaps reports whether the two boxes intersect (sharing a face
// counts).
func (b AABB) Overlaps(c AABB) bool {
	return b.Min.X <= c.Max.X && b.Max.X >= c.Min.X &&
		b.Min.Y <= c.Max.Y && b.Max.Y >= c.Min.Y &&
		b.Min.Z <= c.Max.Z && b.Max.Z >= c.Min.Z
}

// IntersectRay clips ray r against the box using the slab method and
// returns the parameter interval of overlap with [tMin, tMax]. The second
// return value is false when the ray misses the box entirely.
func (b AABB) IntersectRay(r Ray, tMin, tMax float64) (Interval, bool) {
	t0, t1 := tMin, tMax
	for axis := 0; axis < 3; axis++ {
		o := r.Origin.Axis(axis)
		d := r.Dir.Axis(axis)
		lo := b.Min.Axis(axis)
		hi := b.Max.Axis(axis)
		if math.Abs(d) < Eps {
			// Ray parallel to slab: miss unless origin is inside it.
			if o < lo || o > hi {
				return Interval{}, false
			}
			continue
		}
		inv := 1 / d
		tNear := (lo - o) * inv
		tFar := (hi - o) * inv
		if tNear > tFar {
			tNear, tFar = tFar, tNear
		}
		if tNear > t0 {
			t0 = tNear
		}
		if tFar < t1 {
			t1 = tFar
		}
		if t0 > t1 {
			return Interval{}, false
		}
	}
	return Interval{Min: t0, Max: t1}, true
}

// TransformAABB returns the axis-aligned box enclosing box b mapped
// through transform m, by transforming all eight corners.
func TransformAABB(m Mat4, b AABB) AABB {
	if b.IsEmpty() {
		return b
	}
	out := EmptyAABB()
	for i := 0; i < 8; i++ {
		c := Vec3{
			pick(i&1 != 0, b.Max.X, b.Min.X),
			pick(i&2 != 0, b.Max.Y, b.Min.Y),
			pick(i&4 != 0, b.Max.Z, b.Min.Z),
		}
		out = out.Extend(m.MulPoint(c))
	}
	return out
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}
