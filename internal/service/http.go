package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"nowrender/internal/stats"
	"nowrender/internal/tga"
)

// Handler returns the service's HTTP API:
//
//	POST   /jobs                  submit a job (JSON JobSpec) -> Status
//	GET    /jobs                  list all jobs
//	GET    /jobs/{id}             poll one job's status
//	POST   /jobs/{id}/cancel      cancel a queued or running job
//	GET    /jobs/{id}/events      server-sent per-frame progress events
//	GET    /jobs/{id}/frames/{n}  fetch a finished frame (?format=tga|ppm|png)
//	GET    /jobs/{id}/timeline    Chrome trace JSON of the job's farm runs
//	GET    /metrics               Prometheus text-format metrics
//	GET    /healthz               liveness probe
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/frames/{frame}", s.handleFrame)
	mux.HandleFunc("GET /jobs/{id}/timeline", s.handleTimeline)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The replica header lets a client (or load balancer) tell which
		// multi-master replica answered; absent in single-replica mode.
		if id := s.cfg.ReplicaID; id != "" {
			w.Header().Set("X-Nowrender-Replica", id)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON sends v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError sends a JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.JobStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams job progress as server-sent events. Each event is
//
//	event: <type>
//	data: <Event JSON>
//
// Frames completed before the subscription are replayed first, so the
// client always sees one "frame" event per frame; a terminal event
// (done/failed/cancelled) ends the stream.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	id := r.PathValue("id")
	ch, st, err := s.subscribe(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer s.unsubscribe(id, ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeSSE := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	// Always open with a status snapshot so late subscribers know where
	// the job stands.
	writeSSE("status", st)
	if st.State.Terminal() {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // terminal event already delivered
			}
			writeSSE(ev.Type, ev)
			if ev.Type != "frame" && ev.Type != "queued" && ev.Type != "started" && ev.Type != "retrying" {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleFrame serves one finished frame, as soon as it is available
// (streaming: clients need not wait for the whole job). Formats: tga
// (default, the paper's output), ppm, png.
func (s *Service) handleFrame(w http.ResponseWriter, r *http.Request) {
	frame, err := strconv.Atoi(r.PathValue("frame"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad frame number %q", r.PathValue("frame")))
		return
	}
	img, err := s.Frame(r.PathValue("id"), frame)
	if err != nil {
		code := http.StatusNotFound
		if strings.Contains(err.Error(), "not rendered yet") {
			// The frame exists but is still being rendered.
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "tga":
		w.Header().Set("Content-Type", "image/x-tga")
		_ = tga.Encode(w, img)
	case "ppm":
		w.Header().Set("Content-Type", "image/x-portable-pixmap")
		_ = tga.EncodePPM(w, img)
	case "png":
		w.Header().Set("Content-Type", "image/png")
		_ = tga.EncodePNG(w, img)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", r.URL.Query().Get("format")))
	}
}

// handleTimeline serves the job's merged cluster timeline as Chrome
// trace-event JSON (loadable in Perfetto, readable by cmd/nowtrace).
// 404 when the service runs without -timeline or no farm run has
// completed yet.
func (s *Service) handleTimeline(w http.ResponseWriter, r *http.Request) {
	tl, err := s.JobTimeline(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if tl == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no timeline recorded (enable with -timeline, and wait for a farm run to complete)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tl.WriteChromeTrace(w)
}

// handleMetrics exposes the service counters in Prometheus text format:
// queue depth, running jobs, job states, cache hit/miss/eviction and
// occupancy, frames rendered vs served from cache, total rays, per-job
// timings, and per-worker busy time (utilisation numerator).
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()

	s.mu.Lock()
	type jobTiming struct {
		id           string
		queueS, runS float64
		state        State
	}
	states := map[State]int{}
	var timings []jobTiming
	for _, id := range s.order {
		j := s.jobs[id]
		states[j.state]++
		t := jobTiming{id: j.id, state: j.state}
		if !j.started.IsZero() {
			t.queueS = j.started.Sub(j.submitted).Seconds()
			end := j.finished
			if end.IsZero() {
				end = time.Now()
			}
			t.runS = end.Sub(j.started).Seconds()
			timings = append(timings, t)
		}
	}
	queueDepth := s.queue.Len()
	tenantDepths := s.queue.Depths()
	running := s.sched.Running()
	framesRendered := s.framesRendered
	framesCached := s.framesCached
	coalescedFrames := s.coalescedFrames
	coalescedJobs := s.coalescedJobs
	rejected := make(map[string]uint64, len(s.rejected))
	for r, n := range s.rejected {
		rejected[r] = n
	}
	totalRays := s.rays.Total()
	faults := s.faults
	wire := s.wire
	objspace := s.objspace
	objspace.PerShard = append([]stats.ObjSpaceShard(nil), s.objspace.PerShard...)
	jobRetries := s.jobRetries
	workers := make(map[string]time.Duration, len(s.workerBusy))
	for k, v := range s.workerBusy {
		workers[k] = v
	}
	uptime := time.Since(s.started).Seconds()
	s.mu.Unlock()
	fs := s.FleetStats()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	p("# HELP nowrender_queue_depth Jobs queued and not yet running.")
	p("# TYPE nowrender_queue_depth gauge")
	p("nowrender_queue_depth %d", queueDepth)
	tenants := make([]string, 0, len(tenantDepths))
	for t := range tenantDepths {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		p("nowrender_queue_depth{tenant=%q} %d", t, tenantDepths[t])
	}
	p("# HELP nowrender_jobs_rejected_total Submissions refused by admission control, by reason.")
	p("# TYPE nowrender_jobs_rejected_total counter")
	for _, reason := range []string{RejectQueueFull, RejectTenantQuota, RejectUnknownTenant, RejectDraining} {
		p("nowrender_jobs_rejected_total{reason=%q} %d", reason, rejected[reason])
	}
	p("# HELP nowrender_jobs_running Jobs currently running.")
	p("# TYPE nowrender_jobs_running gauge")
	p("nowrender_jobs_running %d", running)
	p("# HELP nowrender_jobs_total Jobs by lifecycle state.")
	p("# TYPE nowrender_jobs_total gauge")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		p("nowrender_jobs_total{state=%q} %d", string(st), states[st])
	}

	p("# HELP nowrender_cache_hits_total Frame cache hits.")
	p("# TYPE nowrender_cache_hits_total counter")
	p("nowrender_cache_hits_total %d", cs.Hits)
	p("# HELP nowrender_cache_misses_total Frame cache misses.")
	p("# TYPE nowrender_cache_misses_total counter")
	p("nowrender_cache_misses_total %d", cs.Misses)
	p("# HELP nowrender_cache_evictions_total Frames evicted to fit the byte budget.")
	p("# TYPE nowrender_cache_evictions_total counter")
	p("nowrender_cache_evictions_total %d", cs.Evictions)
	p("# HELP nowrender_cache_expired_total Frames dropped past their TTL.")
	p("# TYPE nowrender_cache_expired_total counter")
	p("nowrender_cache_expired_total %d", cs.Expired)
	p("# HELP nowrender_cache_hit_rate Hits over lookups since start.")
	p("# TYPE nowrender_cache_hit_rate gauge")
	p("nowrender_cache_hit_rate %g", cs.HitRate())
	p("# HELP nowrender_cache_bytes Pixel bytes currently cached.")
	p("# TYPE nowrender_cache_bytes gauge")
	p("nowrender_cache_bytes %d", cs.Bytes)
	p("# HELP nowrender_cache_entries Frames currently cached.")
	p("# TYPE nowrender_cache_entries gauge")
	p("nowrender_cache_entries %d", cs.Entries)
	p("# HELP nowrender_cache_inflight Frame renders currently in flight (coalescing targets).")
	p("# TYPE nowrender_cache_inflight gauge")
	p("nowrender_cache_inflight %d", cs.InFlight)

	p("# HELP nowrender_coalesced_frames_total Frame requests that joined another job's in-flight render instead of rendering.")
	p("# TYPE nowrender_coalesced_frames_total counter")
	p("nowrender_coalesced_frames_total %d", coalescedFrames)
	p("# HELP nowrender_coalesced_jobs_total Jobs that received at least one frame from another job's in-flight render.")
	p("# TYPE nowrender_coalesced_jobs_total counter")
	p("nowrender_coalesced_jobs_total %d", coalescedJobs)

	p("# HELP nowrender_fleet_capacity Worker slots in the fleet pool (-1 = unlimited).")
	p("# TYPE nowrender_fleet_capacity gauge")
	p("nowrender_fleet_capacity %d", fs.Capacity)
	p("# HELP nowrender_fleet_leased Worker slots currently leased to farm runs.")
	p("# TYPE nowrender_fleet_leased gauge")
	p("nowrender_fleet_leased %d", fs.Leased)
	p("# HELP nowrender_fleet_leases_total Leases granted since start.")
	p("# TYPE nowrender_fleet_leases_total counter")
	p("nowrender_fleet_leases_total %d", fs.Leases)
	p("# HELP nowrender_fleet_lease_waits_total Lease requests that had to wait for capacity.")
	p("# TYPE nowrender_fleet_lease_waits_total counter")
	p("nowrender_fleet_lease_waits_total %d", fs.Waits)
	p("# HELP nowrender_fleet_lease_renews_total Broker lease renewals (0 in single-replica mode).")
	p("# TYPE nowrender_fleet_lease_renews_total counter")
	p("nowrender_fleet_lease_renews_total %d", fs.Renews)
	p("# HELP nowrender_fleet_lease_expiries_total Broker leases expired unrenewed (0 in single-replica mode).")
	p("# TYPE nowrender_fleet_lease_expiries_total counter")
	p("nowrender_fleet_lease_expiries_total %d", fs.Expired)

	p("# HELP nowrender_frames_rendered_total Frames rendered by the farm.")
	p("# TYPE nowrender_frames_rendered_total counter")
	p("nowrender_frames_rendered_total %d", framesRendered)
	p("# HELP nowrender_frames_cached_total Frames served from the cache.")
	p("# TYPE nowrender_frames_cached_total counter")
	p("nowrender_frames_cached_total %d", framesCached)
	p("# HELP nowrender_rays_traced_total Rays traced across all jobs.")
	p("# TYPE nowrender_rays_traced_total counter")
	p("nowrender_rays_traced_total %d", totalRays)

	p("# HELP nowrender_fault_events_total Farm fault-handling events by kind (workers retired, deadline expiries, malformed messages absorbed, frames requeued or quarantined, duplicates dropped, speculative re-issues).")
	p("# TYPE nowrender_fault_events_total counter")
	p("nowrender_fault_events_total{kind=\"workers_lost\"} %d", faults.WorkersLost)
	p("nowrender_fault_events_total{kind=\"heartbeat_timeouts\"} %d", faults.HeartbeatTimeouts)
	p("nowrender_fault_events_total{kind=\"stall_timeouts\"} %d", faults.StallTimeouts)
	p("nowrender_fault_events_total{kind=\"malformed_messages\"} %d", faults.MalformedMessages)
	p("nowrender_fault_events_total{kind=\"duplicates_dropped\"} %d", faults.DuplicatesDropped)
	p("nowrender_fault_events_total{kind=\"frames_requeued\"} %d", faults.FramesRequeued)
	p("nowrender_fault_events_total{kind=\"frames_quarantined\"} %d", faults.FramesQuarantined)
	p("nowrender_fault_events_total{kind=\"speculative_tasks\"} %d", faults.SpeculativeTasks)
	p("# HELP nowrender_heartbeat_pings_total Heartbeat pings sent to workers.")
	p("# TYPE nowrender_heartbeat_pings_total counter")
	p("nowrender_heartbeat_pings_total %d", faults.PingsSent)
	p("# HELP nowrender_heartbeat_pongs_total Heartbeat pongs received from workers.")
	p("# TYPE nowrender_heartbeat_pongs_total counter")
	p("nowrender_heartbeat_pongs_total %d", faults.PongsReceived)
	p("# HELP nowrender_wire_frames_total Frame results received over the farm data path by kind (full key-frames, dirty-span deltas, flate-compressed payloads, span-codec payloads, deltas dropped for a missing base).")
	p("# TYPE nowrender_wire_frames_total counter")
	p("nowrender_wire_frames_total{kind=\"full\"} %d", wire.FramesFull)
	p("nowrender_wire_frames_total{kind=\"delta\"} %d", wire.FramesDelta)
	p("nowrender_wire_frames_total{kind=\"compressed\"} %d", wire.FramesCompressed)
	p("nowrender_wire_frames_total{kind=\"span\"} %d", wire.FramesSpan)
	p("nowrender_wire_frames_total{kind=\"delta_base_miss\"} %d", wire.DeltaBaseMisses)
	p("# HELP nowrender_wire_bytes_total Frame payload bytes by accounting (wire = bytes actually shipped, raw = uncompressed full-region pixels they represent).")
	p("# TYPE nowrender_wire_bytes_total counter")
	p("nowrender_wire_bytes_total{kind=\"wire\"} %d", wire.WireBytes)
	p("nowrender_wire_bytes_total{kind=\"raw\"} %d", wire.RawBytes)
	p("# HELP nowrender_wire_codec_bytes_total Frame payload bytes shipped on the wire by payload encoding — what the per-worker adaptive compression decision actually chose.")
	p("# TYPE nowrender_wire_codec_bytes_total counter")
	p("nowrender_wire_codec_bytes_total{codec=\"raw\"} %d", wire.WireBytesByEnc[0])
	p("nowrender_wire_codec_bytes_total{codec=\"flate\"} %d", wire.WireBytesByEnc[1])
	p("nowrender_wire_codec_bytes_total{codec=\"span\"} %d", wire.WireBytesByEnc[2])
	p("# HELP nowrender_wire_ingress_bytes_total Result-path bytes by landing point: the master's own ingress versus distributed-framebuffer compositor sinks.")
	p("# TYPE nowrender_wire_ingress_bytes_total counter")
	p("nowrender_wire_ingress_bytes_total{at=\"master\"} %d", wire.MasterIngressBytes)
	p("nowrender_wire_ingress_bytes_total{at=\"sink\"} %d", wire.SinkIngressBytes)
	p("# HELP nowrender_wire_frame_acks_total DFB control acks received by the master in place of pixel payloads.")
	p("# TYPE nowrender_wire_frame_acks_total counter")
	p("nowrender_wire_frame_acks_total %d", wire.FramesAcked)
	if objspace.Enabled() {
		p("# HELP nowrender_rays_forwarded_total Object-space rays forwarded between shard owners, by sending shard.")
		p("# TYPE nowrender_rays_forwarded_total counter")
		for i, sh := range objspace.PerShard {
			p("nowrender_rays_forwarded_total{shard=\"%d\"} %d", i, sh.RaysForwarded)
		}
		p("# HELP nowrender_forward_bytes_total Bytes the forwarded ray states serialized to, by sending shard.")
		p("# TYPE nowrender_forward_bytes_total counter")
		for i, sh := range objspace.PerShard {
			p("nowrender_forward_bytes_total{shard=\"%d\"} %d", i, sh.ForwardBytes)
		}
		p("# HELP nowrender_objspace_peak_resident_bytes Largest per-shard resident scene size any sharded task built, by shard.")
		p("# TYPE nowrender_objspace_peak_resident_bytes gauge")
		for i, sh := range objspace.PerShard {
			p("nowrender_objspace_peak_resident_bytes{shard=\"%d\"} %d", i, sh.ResidentBytes)
		}
	}
	if len(wire.BaseMissByWorker) > 0 {
		p("# HELP nowrender_wire_base_misses_total Deltas dropped for a missing base frame, by shipping worker.")
		p("# TYPE nowrender_wire_base_misses_total counter")
		missers := make([]string, 0, len(wire.BaseMissByWorker))
		for n := range wire.BaseMissByWorker {
			missers = append(missers, n)
		}
		sort.Strings(missers)
		for _, n := range missers {
			p("nowrender_wire_base_misses_total{worker=%q} %d", n, wire.BaseMissByWorker[n])
		}
	}
	p("# HELP nowrender_job_retries_total Failed render attempts that were retried.")
	p("# TYPE nowrender_job_retries_total counter")
	p("nowrender_job_retries_total %d", jobRetries)

	p("# HELP nowrender_worker_busy_seconds_total Per-worker busy time (utilisation numerator).")
	p("# TYPE nowrender_worker_busy_seconds_total counter")
	names := make([]string, 0, len(workers))
	for n := range workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p("nowrender_worker_busy_seconds_total{worker=%q} %g", n, workers[n].Seconds())
	}

	p("# HELP nowrender_job_queue_seconds Time each job spent queued.")
	p("# TYPE nowrender_job_queue_seconds gauge")
	for _, t := range timings {
		p("nowrender_job_queue_seconds{job=%q} %g", t.id, t.queueS)
	}
	p("# HELP nowrender_job_run_seconds Time each job spent running (so far, if unfinished).")
	p("# TYPE nowrender_job_run_seconds gauge")
	for _, t := range timings {
		p("nowrender_job_run_seconds{job=%q,state=%q} %g", t.id, string(t.state), t.runS)
	}

	if id := s.cfg.ReplicaID; id != "" {
		p("# HELP nowrender_replica_info Identity of this control-plane replica (always 1).")
		p("# TYPE nowrender_replica_info gauge")
		p("nowrender_replica_info{replica=%q} 1", id)
	}
	p("# HELP nowrender_uptime_seconds Service uptime.")
	p("# TYPE nowrender_uptime_seconds counter")
	p("nowrender_uptime_seconds %g", uptime)
}
