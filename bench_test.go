// Benchmarks regenerating the paper's evaluation: one benchmark per
// Table 1 column group, per figure, and per ablation from DESIGN.md.
//
// Wall time measures this host's tracer; the reported "virtual_ms"
// metric is the deterministic virtual-NOW makespan — the number whose
// *ratios* reproduce the paper's speedups (run cmd/benchtab for the
// assembled table). Workloads are reduced-size (the shape, not the
// absolute 1998 numbers, is the target); pass -full via cmd/benchtab for
// paper-scale runs.
package nowrender_test

import (
	"fmt"
	"strings"
	"testing"

	"nowrender"
	"nowrender/internal/cluster"
	"nowrender/internal/coherence"
	"nowrender/internal/experiments"
	"nowrender/internal/farm"
	"nowrender/internal/fb"
	"nowrender/internal/grid"
	"nowrender/internal/msg"
	"nowrender/internal/objfile"
	"nowrender/internal/partition"
	"nowrender/internal/scenes"
	"nowrender/internal/timeline"
	"nowrender/internal/trace"
	vm "nowrender/internal/vecmath"
)

const (
	benchW, benchH = 60, 80
	benchFrames    = 12
	benchBlock     = 20
)

func benchScene() *nowrender.Scene { return scenes.Newton(benchFrames) }

func reportVirtual(b *testing.B, res *farm.Result) {
	b.Helper()
	b.ReportMetric(float64(res.Makespan.Milliseconds()), "virtual_ms")
	total := res.Run.TotalRays()
	b.ReportMetric(float64(total.Total()), "rays")
}

// --- Table 1 ---------------------------------------------------------

// BenchmarkTable1_Single is column (1): one processor, no coherence.
func BenchmarkTable1_Single(b *testing.B) {
	sc := benchScene()
	for i := 0; i < b.N; i++ {
		res, err := farm.RenderSingle(farm.Config{Scene: sc, W: benchW, H: benchH},
			cluster.PaperTestbed()[0])
		if err != nil {
			b.Fatal(err)
		}
		reportVirtual(b, res)
	}
}

// BenchmarkTable1_SingleFC is columns (2)-(3): one processor with the
// frame-coherence algorithm.
func BenchmarkTable1_SingleFC(b *testing.B) {
	sc := benchScene()
	for i := 0; i < b.N; i++ {
		res, err := farm.RenderSingle(farm.Config{Scene: sc, W: benchW, H: benchH, Coherence: true},
			cluster.PaperTestbed()[0])
		if err != nil {
			b.Fatal(err)
		}
		reportVirtual(b, res)
	}
}

// BenchmarkTable1_Distributed is columns (4)-(5): the 3-machine NOW
// without coherence.
func BenchmarkTable1_Distributed(b *testing.B) {
	sc := benchScene()
	for i := 0; i < b.N; i++ {
		res, err := farm.RenderVirtual(farm.Config{
			Scene: sc, W: benchW, H: benchH,
			Scheme: partition.FrameDivision{BlockW: benchBlock, BlockH: benchBlock, Adaptive: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportVirtual(b, res)
	}
}

// BenchmarkTable1_DistFCSeqDiv is columns (6)-(7): distributed +
// coherence with sequence division.
func BenchmarkTable1_DistFCSeqDiv(b *testing.B) {
	sc := benchScene()
	for i := 0; i < b.N; i++ {
		res, err := farm.RenderVirtual(farm.Config{
			Scene: sc, W: benchW, H: benchH, Coherence: true,
			Scheme: partition.SequenceDivision{Adaptive: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportVirtual(b, res)
	}
}

// BenchmarkTable1_DistFCFrameDiv is columns (8)-(9): distributed +
// coherence with frame division (the paper's winner).
func BenchmarkTable1_DistFCFrameDiv(b *testing.B) {
	sc := benchScene()
	for i := 0; i < b.N; i++ {
		res, err := farm.RenderVirtual(farm.Config{
			Scene: sc, W: benchW, H: benchH, Coherence: true,
			Scheme: partition.FrameDivision{BlockW: benchBlock, BlockH: benchBlock, Adaptive: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		reportVirtual(b, res)
	}
}

// --- Figures ----------------------------------------------------------

// BenchmarkFigure1_RenderFramePair renders the two consecutive
// bouncing-ball frames of Figure 1.
func BenchmarkFigure1_RenderFramePair(b *testing.B) {
	sc := scenes.Bouncing(8)
	for i := 0; i < b.N; i++ {
		for f := 2; f <= 3; f++ {
			ft, err := trace.New(sc, f, trace.Options{})
			if err != nil {
				b.Fatal(err)
			}
			img := fb.New(benchW, benchH)
			ft.RenderFull(img)
		}
	}
}

// BenchmarkFigure2_ActualDiff measures the pixel-by-pixel comparison of
// Figure 2(a).
func BenchmarkFigure2_ActualDiff(b *testing.B) {
	sc := scenes.Bouncing(8)
	imgs := make([]*fb.Framebuffer, 2)
	for f := 0; f < 2; f++ {
		ft, err := trace.New(sc, f+2, trace.Options{})
		if err != nil {
			b.Fatal(err)
		}
		imgs[f] = fb.New(benchW, benchH)
		ft.RenderFull(imgs[f])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nowrender.DiffFrames(imgs[0], imgs[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2_PredictedDiff measures producing the coherence
// engine's dirty mask of Figure 2(b) (render frame + change detection).
func BenchmarkFigure2_PredictedDiff(b *testing.B) {
	sc := scenes.Bouncing(8)
	full := fb.NewRect(0, 0, benchW, benchH)
	for i := 0; i < b.N; i++ {
		eng, err := coherence.NewEngine(sc, benchW, benchH, full, 0, sc.Frames, coherence.Options{})
		if err != nil {
			b.Fatal(err)
		}
		img := fb.New(benchW, benchH)
		if _, err := eng.RenderFrame(0, img); err != nil {
			b.Fatal(err)
		}
		_ = eng.DirtyMask()
	}
}

// BenchmarkFigure4_Partitioning measures task generation for both
// schemes of Figure 4.
func BenchmarkFigure4_Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		seq := partition.SequenceDivision{Adaptive: true}.InitialTasks(240, 320, 0, 120, 4)
		fd := partition.FrameDivision{BlockW: 120, BlockH: 160}.InitialTasks(240, 320, 0, 120, 4)
		if len(seq) != 4 || len(fd) != 4 {
			b.Fatal("unexpected task counts")
		}
	}
}

// BenchmarkFigure5_NewtonFrame renders frame 22 of the Newton animation
// (the paper's Figure 5).
func BenchmarkFigure5_NewtonFrame(b *testing.B) {
	sc := scenes.Newton(45)
	for i := 0; i < b.N; i++ {
		ft, err := trace.New(sc, 22, trace.Options{})
		if err != nil {
			b.Fatal(err)
		}
		img := fb.New(benchW, benchH)
		ft.RenderFull(img)
	}
}

// --- Ablations (DESIGN.md §5) ----------------------------------------

// BenchmarkAblation_GridResolution sweeps the coherence voxel grid.
func BenchmarkAblation_GridResolution(b *testing.B) {
	for _, res := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("res%d", res), func(b *testing.B) {
			p := experiments.Params{Scene: benchScene(), W: benchW, H: benchH}
			for i := 0; i < b.N; i++ {
				out, err := experiments.AblationGridResolution(p, []int{res})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out[0].Rendered), "pixels_traced")
			}
		})
	}
}

// BenchmarkAblation_BlockSize sweeps frame-division block sizes,
// including the paper's inefficient extremes.
func BenchmarkAblation_BlockSize(b *testing.B) {
	for _, bs := range []int{5, 10, 20, 40, benchW} {
		b.Run(fmt.Sprintf("block%d", bs), func(b *testing.B) {
			sc := benchScene()
			for i := 0; i < b.N; i++ {
				res, err := farm.RenderVirtual(farm.Config{
					Scene: sc, W: benchW, H: benchH, Coherence: true,
					Scheme: partition.FrameDivision{BlockW: bs, BlockH: bs, Adaptive: true},
				})
				if err != nil {
					b.Fatal(err)
				}
				reportVirtual(b, res)
			}
		})
	}
}

// BenchmarkAblation_JevansBlocks compares per-pixel coherence to
// Jevans-style block granularity.
func BenchmarkAblation_JevansBlocks(b *testing.B) {
	for _, g := range []int{1, 4, 8, 16} {
		name := "perpixel"
		if g > 1 {
			name = fmt.Sprintf("jevans%dx%d", g, g)
		}
		b.Run(name, func(b *testing.B) {
			p := experiments.Params{Scene: benchScene(), W: benchW, H: benchH}
			for i := 0; i < b.N; i++ {
				out, err := experiments.AblationJevansBlocks(p, []int{g})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(out[0].Rendered), "pixels_traced")
			}
		})
	}
}

// BenchmarkAblation_AdaptiveSeq compares adaptive and static sequence
// division on the heterogeneous testbed.
func BenchmarkAblation_AdaptiveSeq(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			sc := benchScene()
			for i := 0; i < b.N; i++ {
				res, err := farm.RenderVirtual(farm.Config{
					Scene: sc, W: benchW, H: benchH, Coherence: true,
					Scheme: partition.SequenceDivision{Adaptive: adaptive},
				})
				if err != nil {
					b.Fatal(err)
				}
				reportVirtual(b, res)
			}
		})
	}
}

// BenchmarkAblation_ShadowCoherence measures shadow-segment registration
// on/off (off is incorrect; see the ablation in cmd/benchtab).
func BenchmarkAblation_ShadowCoherence(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			sc := benchScene()
			full := fb.NewRect(0, 0, benchW, benchH)
			for i := 0; i < b.N; i++ {
				eng, err := coherence.NewEngine(sc, benchW, benchH, full, 0, sc.Frames,
					coherence.Options{DisableShadowRegistration: disable})
				if err != nil {
					b.Fatal(err)
				}
				img := fb.New(benchW, benchH)
				for f := 0; f < 4; f++ {
					if _, err := eng.RenderFrame(f, img); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Substrate micro-benchmarks --------------------------------------

// BenchmarkTracer_PrimaryRays measures raw single-frame tracing.
func BenchmarkTracer_PrimaryRays(b *testing.B) {
	sc := benchScene()
	ft, err := trace.New(sc, 0, trace.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img := fb.New(benchW, benchH)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.RenderFull(img)
	}
	b.ReportMetric(float64(benchW*benchH), "pixels/op")
}

// BenchmarkRenderFrameParallel measures the intra-frame tile pool at
// 1/2/4/8 threads on a full bench-scene frame. On a multicore host the
// speedup should approach the thread count (up to the core count);
// cmd/benchtab -parallel records the same sweep into BENCH_parallel.json.
func BenchmarkRenderFrameParallel(b *testing.B) {
	sc := benchScene()
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			ft, err := trace.New(sc, 0, trace.Options{})
			if err != nil {
				b.Fatal(err)
			}
			img := fb.New(benchW, benchH)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.RenderRegionParallel(img, img.Bounds(), threads)
			}
			b.ReportMetric(float64(benchW*benchH), "pixels/op")
		})
	}
}

// BenchmarkRenderFrameTimeline measures the timeline recorder's cost on
// the tile-pool hot path: the same full-frame render with tile tracks
// absent (the single-branch disabled path) and with live ring buffers
// recording every tile span. The two should be indistinguishable when
// off and within ~2% when on; cmd/benchtab -timeline records the same
// comparison into BENCH_timeline.json.
func BenchmarkRenderFrameTimeline(b *testing.B) {
	sc := benchScene()
	const threads = 4
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			ft, err := trace.New(sc, 0, trace.Options{})
			if err != nil {
				b.Fatal(err)
			}
			img := fb.New(benchW, benchH)
			var tracks []*timeline.Track
			if mode == "on" {
				rec := timeline.New(0)
				for i := 0; i < threads; i++ {
					tracks = append(tracks, rec.Track(fmt.Sprintf("bench/tile%02d", i)))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ft.RenderRegionParallelTimed(img, img.Bounds(), threads, i, tracks)
			}
			b.ReportMetric(float64(benchW*benchH), "pixels/op")
		})
	}
}

// BenchmarkCoherentFrameParallel measures the coherence engine's tile
// pool over a short frame run (registration + change detection + tiled
// re-render) at the same thread counts.
func BenchmarkCoherentFrameParallel(b *testing.B) {
	sc := benchScene()
	full := fb.NewRect(0, 0, benchW, benchH)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, err := coherence.NewEngine(sc, benchW, benchH, full, 0, sc.Frames,
					coherence.Options{Threads: threads})
				if err != nil {
					b.Fatal(err)
				}
				img := fb.New(benchW, benchH)
				for f := 0; f < 4; f++ {
					if _, err := eng.RenderFrame(f, img); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGrid_DDAWalk measures the 3D-DDA voxel traversal.
func BenchmarkGrid_DDAWalk(b *testing.B) {
	g, err := grid.New(vm.NewAABB(vm.V(0, 0, 0), vm.V(1, 1, 1)), 32, 32, 32)
	if err != nil {
		b.Fatal(err)
	}
	r := vm.Ray{Origin: vm.V(-0.1, -0.2, -0.3), Dir: vm.V(1, 0.9, 0.8).Norm()}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		g.Walk(r, 0, 1e18, func(int, float64, float64) bool { n++; return true })
	}
	if n == 0 {
		b.Fatal("walk visited nothing")
	}
}

// BenchmarkTransport_Chan measures in-process message round trips.
func BenchmarkTransport_Chan(b *testing.B) {
	a, c := msg.Pipe(16)
	defer a.Close()
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(msg.Message{Tag: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransport_TCP measures loopback TCP message round trips.
func BenchmarkTransport_TCP(b *testing.B) {
	l, err := msg.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan msg.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			done <- c
		}
	}()
	client, err := msg.Dial(l.Addr())
	if err != nil {
		b.Fatal(err)
	}
	server := <-done
	l.Close()
	defer client.Close()
	defer server.Close()
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Send(msg.Message{Tag: 1, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if _, err := server.Recv(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoherence_ChangeDetection isolates the per-frame change scan
// (find changed voxels + collect dirty pixels).
func BenchmarkCoherence_ChangeDetection(b *testing.B) {
	sc := benchScene()
	full := fb.NewRect(0, 0, benchW, benchH)
	eng, err := coherence.NewEngine(sc, benchW, benchH, full, 0, sc.Frames, coherence.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img := fb.New(benchW, benchH)
	if _, err := eng.RenderFrame(0, img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// Steady-state frames exercise registration + change detection.
	f := 1
	for i := 0; i < b.N; i++ {
		if f >= sc.Frames {
			b.StopTimer()
			eng, err = coherence.NewEngine(sc, benchW, benchH, full, 0, sc.Frames, coherence.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.RenderFrame(0, img); err != nil {
				b.Fatal(err)
			}
			f = 1
			b.StartTimer()
		}
		if _, err := eng.RenderFrame(f, img); err != nil {
			b.Fatal(err)
		}
		f++
	}
}

// BenchmarkFarm_LocalProtocol measures the full wall-clock goroutine
// farm on a small animation.
func BenchmarkFarm_LocalProtocol(b *testing.B) {
	sc := scenes.Newton(4)
	for i := 0; i < b.N; i++ {
		if _, err := farm.RenderLocal(farm.Config{
			Scene: sc, W: 40, H: 52, Coherence: true, Workers: 3,
			Scheme: partition.FrameDivision{BlockW: 20, BlockH: 26, Adaptive: true},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks (geometry & IO) -----------------------

// BenchmarkGeom_TorusIntersect measures the quartic intersection path.
func BenchmarkGeom_TorusIntersect(b *testing.B) {
	to := nowrender.NewTorus(2, 0.5)
	r := vm.Ray{Origin: vm.V(-5, 0.2, 0.1), Dir: vm.V(1, 0, 0)}
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		if _, ok := to.Intersect(r, 0, 1e18); ok {
			hits++
		}
	}
	if hits == 0 {
		b.Fatal("no hits")
	}
}

// BenchmarkGeom_SphereIntersect is the baseline quadratic path.
func BenchmarkGeom_SphereIntersect(b *testing.B) {
	s := nowrender.NewSphere(vm.V(0, 0, 0), 1)
	r := vm.Ray{Origin: vm.V(-5, 0.2, 0.1), Dir: vm.V(1, 0, 0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Intersect(r, 0, 1e18)
	}
}

// BenchmarkTracer_AdaptiveAA measures the edge-adaptive antialiasing
// against the plain single-sample render.
func BenchmarkTracer_AdaptiveAA(b *testing.B) {
	sc := scenes.Quickstart()
	for i := 0; i < b.N; i++ {
		ft, err := trace.New(sc, 0, trace.Options{AAThreshold: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		ft.RenderFull(fb.New(benchW, benchH))
	}
}

// BenchmarkOBJ_ParseCube measures the OBJ loader.
func BenchmarkOBJ_ParseCube(b *testing.B) {
	src := `v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
v 0 0 1
v 1 0 1
v 1 1 1
v 0 1 1
f 1 2 3 4
f 5 8 7 6
f 1 5 6 2
f 2 6 7 3
f 3 7 8 4
f 5 1 4 8
`
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := objfile.Parse(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDL_ParseScene measures the scene-language parser.
func BenchmarkSDL_ParseScene(b *testing.B) {
	src := `
global_settings { max_depth 5 frames 45 }
camera { location <0, 2, 8> look_at <0, 1, 0> fov 55 }
light_source { <5, 9, 7> color rgb <1, 1, 1> }
plane { <0, 1, 0>, 0 pigment { checker rgb <1,1,1> rgb <0.2,0.2,0.2> } }
sphere { <0, 1, 0>, 1
  pigment { color rgb <1, 1, 1> }
  finish { ambient 0.02 diffuse 0.05 specular 0.9 shininess 200 reflect 0.1 transmit 0.85 ior 1.5 }
  animate { keyframe 0 <0,0,0> keyframe 44 <3,0,0> }
}
torus { 2, 0.5 rotate <90, 0, 0> translate <0, 2, 0> }
`
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := nowrender.ParseScene("bench", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFarm_FaultRecovery exercises the worker-failure requeue path.
func BenchmarkFarm_FaultRecovery(b *testing.B) {
	sc := scenes.Newton(4)
	for i := 0; i < b.N; i++ {
		res, err := farm.RenderVirtual(farm.Config{
			Scene: sc, W: 40, H: 52, Coherence: true,
			Scheme: partition.SequenceDivision{Adaptive: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}
