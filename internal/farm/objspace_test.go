package farm

import (
	"fmt"
	"testing"

	"nowrender/internal/partition"
)

// TestObjSpaceGolden pins the object-space farm modes to the committed
// golden hashes: sharded rendering — plain and coherent, local and
// virtual — must produce byte-identical frames to every other mode, while
// actually forwarding rays between shard owners.
func TestObjSpaceGolden(t *testing.T) {
	sc := farmScene(goldenFrames)
	want := readGolden(t)
	scheme := partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true}

	for _, coh := range []bool{false, true} {
		for _, shards := range []int{2, 4} {
			label := fmt.Sprintf("local/coherence=%v,shards=%d", coh, shards)
			res, err := RenderLocal(Config{
				Scene: sc, W: fw, H: fh, Coherence: coh, Workers: 3,
				Scheme: scheme, ObjSpaceShards: shards,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for i, h := range hashFrames(res.Frames) {
				if h != want[i] {
					t.Errorf("%s: frame %d hash mismatch", label, i)
				}
			}
			if !res.ObjSpace.Enabled() {
				t.Fatalf("%s: no object-space stats came back: %+v", label, res.ObjSpace)
			}
			if res.ObjSpace.RaysForwarded == 0 || res.ObjSpace.ForwardBytes == 0 {
				t.Errorf("%s: no forwarding traffic recorded: %s", label, res.ObjSpace)
			}
			if got := len(res.ObjSpace.PerShard); got != shards {
				t.Errorf("%s: %d per-shard rows, want %d", label, got, shards)
			}
		}
	}

	// Virtual driver: same pixels, deterministic forwarding counters.
	res, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		Scheme: scheme, ObjSpaceShards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hashFrames(res.Frames) {
		if h != want[i] {
			t.Errorf("virtual objspace: frame %d hash mismatch", i)
		}
	}
	if res.ObjSpace.RaysForwarded == 0 {
		t.Error("virtual objspace: no forwarding modelled")
	}
}

// TestObjSpaceMixedFleet drives a farm where one worker refuses the
// object-space capability (an "old" binary): the master shards the
// capable workers, the legacy worker renders replicated, and the output
// is still golden-identical.
func TestObjSpaceMixedFleet(t *testing.T) {
	sc := farmScene(goldenFrames)
	want := readGolden(t)
	res, err := RenderLocal(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 3,
		Scheme:         partition.FrameDivision{BlockW: 16, BlockH: 16, Adaptive: true},
		ObjSpaceShards: 2,
		WorkerOpts: func(i int) WorkerOptions {
			if i == 0 {
				return WorkerOptions{NoWireObjSpace: true}
			}
			return WorkerOptions{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hashFrames(res.Frames) {
		if h != want[i] {
			t.Errorf("mixed fleet: frame %d hash mismatch", i)
		}
	}
}

// TestObjSpaceConfigValidation rejects shard counts the wire would.
func TestObjSpaceConfigValidation(t *testing.T) {
	sc := farmScene(2)
	for _, n := range []int{1, -3, 100} {
		if _, err := RenderVirtual(Config{Scene: sc, W: fw, H: fh, ObjSpaceShards: n}); err == nil {
			t.Errorf("shard count %d accepted", n)
		}
	}
}
