package experiments

import (
	"strings"
	"testing"

	"nowrender/internal/scenes"
)

// small returns reduced-size parameters so the tests run in seconds; the
// shape assertions are the same ones the paper's full-size table obeys.
func small(t *testing.T) Params {
	t.Helper()
	return Params{Scene: scenes.Newton(30), W: 60, H: 80, BlockW: 20, BlockH: 20}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	r := res.Rows
	// Baseline is speedup 1 by construction.
	if r[0].Speedup < 0.99 || r[0].Speedup > 1.01 {
		t.Errorf("baseline speedup = %v", r[0].Speedup)
	}
	// Coherence reduces rays substantially (paper: ~5x).
	if res.RayReduction < 1.5 {
		t.Errorf("ray reduction %vx; coherence not engaging", res.RayReduction)
	}
	// Column ordering of total times: single is slowest, dist+FC modes
	// fastest — "who wins" must match the paper.
	if !(r[1].Total < r[0].Total) {
		t.Errorf("single+FC (%v) not faster than single (%v)", r[1].Total, r[0].Total)
	}
	if !(r[2].Total < r[0].Total) {
		t.Errorf("distributed (%v) not faster than single (%v)", r[2].Total, r[0].Total)
	}
	if !(r[3].Total < r[1].Total && r[3].Total < r[2].Total) {
		t.Errorf("dist+FC seq (%v) not faster than both individual techniques", r[3].Total)
	}
	if !(r[4].Total <= r[3].Total) {
		t.Errorf("frame div (%v) slower than seq div (%v); paper has frame div winning", r[4].Total, r[3].Total)
	}
	// Combined speedup is at least roughly multiplicative.
	if res.Multiplicative < 0.7 {
		t.Errorf("combined speedup far below multiplicative: %v", res.Multiplicative)
	}
	// First-frame overhead is a modest share (paper: 12%).
	if res.FirstFrameOverhead < 0 || res.FirstFrameOverhead > 0.6 {
		t.Errorf("first-frame overhead = %.1f%%", 100*res.FirstFrameOverhead)
	}
	// Render doesn't blow up and mentions every row.
	s := res.Render()
	for _, row := range r {
		if !strings.Contains(s, row.Label) {
			t.Errorf("rendered table missing %q", row.Label)
		}
	}
}

func TestFigure2(t *testing.T) {
	p := Params{Scene: scenes.Bouncing(8), W: 48, H: 64}
	res, err := Figure2(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Actual.Count() == 0 {
		t.Error("no actual differences; animation static?")
	}
	if !res.Predicted.Covers(res.Actual) {
		t.Error("predicted mask does not cover actual differences")
	}
	// The paper's striking feature: most pixels do NOT change.
	if res.Actual.Fraction() > 0.6 {
		t.Errorf("%.0f%% pixels changed; scene not coherence-friendly", 100*res.Actual.Fraction())
	}
}

func TestFigure4(t *testing.T) {
	lines := Figure4(240, 320, 120, 4)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "seq div") || !strings.Contains(joined, "frame div") {
		t.Errorf("figure 4 output missing schemes:\n%s", joined)
	}
	// 4 seq tasks + 4 frame-div tasks + 2 headers = 10 lines.
	if len(lines) != 10 {
		t.Errorf("%d lines:\n%s", len(lines), joined)
	}
}

func TestAblationBlockSize(t *testing.T) {
	res, err := AblationBlockSize(small(t), []int{10, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for _, r := range res {
		if r.Makespan <= 0 {
			t.Errorf("%s: zero makespan", r.Label)
		}
	}
}

func TestAblationGridResolution(t *testing.T) {
	res, err := AblationGridResolution(small(t), []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Finer grids re-render at most as many pixels as coarse ones
	// (tighter change prediction).
	if res[1].Rendered > res[0].Rendered {
		t.Errorf("finer grid rendered more pixels: %d vs %d", res[1].Rendered, res[0].Rendered)
	}
}

func TestAblationJevansBlocks(t *testing.T) {
	res, err := AblationJevansBlocks(small(t), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Per-pixel granularity re-renders no more than block granularity —
	// the paper's argument for fine granularity.
	if res[0].Rendered > res[1].Rendered {
		t.Errorf("per-pixel rendered more than blocks: %d vs %d", res[0].Rendered, res[1].Rendered)
	}
}

func TestAblationAdaptive(t *testing.T) {
	res, err := AblationAdaptive(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	// Adaptive must not be slower than static on the heterogeneous
	// testbed (it may tie on tiny workloads).
	if res[1].Makespan > res[0].Makespan*11/10 {
		t.Errorf("adaptive (%v) notably slower than static (%v)", res[1].Makespan, res[0].Makespan)
	}
}

func TestAblationShadowCoherence(t *testing.T) {
	res, err := AblationShadowCoherence(small(t))
	if err != nil {
		t.Fatal(err)
	}
	on, off := res[0], res[1]
	if !strings.Contains(on.Detail, "wrong pixels vs full render: 0") {
		t.Errorf("shadow registration on must be exact: %s", on.Detail)
	}
	// Disabling shadow registration renders fewer pixels (cheaper) —
	// that is its only appeal.
	if off.Rendered > on.Rendered {
		t.Errorf("disabling shadow registration did not reduce work: %d vs %d",
			off.Rendered, on.Rendered)
	}
}

func TestScaling(t *testing.T) {
	p := small(t)
	pts, err := Scaling(p, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Speedup != 1 {
		t.Errorf("base speedup = %v", pts[0].Speedup)
	}
	// More machines must not be slower.
	if pts[2].Makespan > pts[0].Makespan {
		t.Errorf("4 machines (%v) slower than 1 (%v)", pts[2].Makespan, pts[0].Makespan)
	}
}

func TestAblationWeighted(t *testing.T) {
	res, err := AblationWeighted(small(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d results", len(res))
	}
	// Weighted static must beat plain static on the heterogeneous
	// testbed (that is its whole purpose).
	plainStatic, weightedStatic := res[0], res[2]
	if weightedStatic.Makespan >= plainStatic.Makespan {
		t.Errorf("weighted static (%v) not faster than plain static (%v)",
			weightedStatic.Makespan, plainStatic.Makespan)
	}
}

func TestAblationMemory(t *testing.T) {
	p := Params{Scene: scenes.Newton(12), W: 120, H: 160, BlockW: 40, BlockH: 40}
	unconstrained, err := AblationMemory(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := AblationMemory(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Memory pressure hurts single-machine coherence but not the
	// distributed blocks, making the combination super-multiplicative
	// relative to the unconstrained case (the paper's aggregate-memory
	// argument for its +18.5%).
	if constrained.SingleFCSpeedup >= unconstrained.SingleFCSpeedup {
		t.Errorf("memory pressure did not slow single-machine FC: %v vs %v",
			constrained.SingleFCSpeedup, unconstrained.SingleFCSpeedup)
	}
	if constrained.Multiplicative <= unconstrained.Multiplicative {
		t.Errorf("constrained multiplicative (%v) not above unconstrained (%v)",
			constrained.Multiplicative, unconstrained.Multiplicative)
	}
	if constrained.Multiplicative <= 1 {
		t.Errorf("no super-multiplicative effect under memory pressure: %v",
			constrained.Multiplicative)
	}
}

func TestTable1CSV(t *testing.T) {
	res, err := Table1(Params{Scene: scenes.Newton(4), W: 40, H: 52, BlockW: 20, BlockH: 26})
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	if !strings.HasPrefix(csv, "configuration,rays,first_frame_s") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 5 rows + 3 derived comments.
	if len(lines) != 9 {
		t.Errorf("CSV has %d lines:\n%s", len(lines), csv)
	}
}
