package trace

import (
	"testing"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

func TestSpotlightLightsOnlyItsCone(t *testing.T) {
	s := scene.New("spot")
	s.Camera = scene.Camera{Pos: vm.V(0, 6, 10), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	s.Background = material.Black
	s.Ambient = material.Black // isolate direct lighting
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	l := s.AddLight("spot", vm.V(0, 8, 0), material.White)
	l.Spot = &scene.Spotlight{PointAt: vm.V(0, 0, 0), Radius: 10, Falloff: 15}

	ft, err := New(s, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inside := ft.TracePixelColor(t, vm.V(0, 0, 0))
	outside := ft.TracePixelColor(t, vm.V(6, 0, 0))
	if inside.MaxComponent() <= 0.05 {
		t.Errorf("spot centre not lit: %v", inside)
	}
	if outside.MaxComponent() > 0.01 {
		t.Errorf("point outside cone lit: %v", outside)
	}
}

// TracePixelColor aims a camera ray at a world point (test helper).
func (ft *FrameTracer) TracePixelColor(t *testing.T, at vm.Vec3) vm.Vec3 {
	t.Helper()
	dir := at.Sub(ft.Cam.Pos).Norm()
	return ft.traceRay(vm.Ray{Origin: ft.Cam.Pos, Dir: dir, Kind: vm.CameraRay})
}

func TestFadeDarkensDistantSurfaces(t *testing.T) {
	s := scene.New("fade")
	s.Camera = scene.Camera{Pos: vm.V(0, 4, 12), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	s.Ambient = material.Black
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	l := s.AddLight("faded", vm.V(0, 3, 0), material.White)
	l.FadeDistance = 3
	l.FadePower = 2

	ft, err := New(s, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near := ft.TracePixelColor(t, vm.V(0.5, 0, 0))
	far := ft.TracePixelColor(t, vm.V(12, 0, 0))
	if near.MaxComponent() <= far.MaxComponent() {
		t.Errorf("fade not applied: near %v vs far %v", near, far)
	}
}

func TestCoherenceWithSpotlight(t *testing.T) {
	// Spot-lit moving scene still renders pixel-identically under
	// coherence (attenuation is part of the deterministic shading).
	s := scene.New("spotmove")
	s.Frames = 3
	s.Camera = scene.Camera{Pos: vm.V(0, 4, 9), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 55}
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 0.8), material.Matte(material.Red),
		scene.KeyframeTrack{Keys: []scene.Keyframe{
			{Frame: 0, Pos: vm.V(-1, 0, 0)}, {Frame: 2, Pos: vm.V(1, 0, 0)},
		}})
	l := s.AddLight("spot", vm.V(0, 7, 3), material.White)
	l.Spot = &scene.Spotlight{PointAt: vm.V(0, 0, 0), Radius: 25, Falloff: 40}
	l.FadeDistance = 12

	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rendering the same frame twice gives identical results (no hidden
	// state in attenuation).
	ftA, _ := New(s, 1, Options{})
	ftB, _ := New(s, 1, Options{})
	for _, xy := range [][2]int{{10, 10}, {20, 15}, {5, 25}} {
		a := ftA.TracePixel(xy[0], xy[1], 40, 30)
		b := ftB.TracePixel(xy[0], xy[1], 40, 30)
		if a != b {
			t.Fatalf("pixel %v: %v != %v", xy, a, b)
		}
	}
}
