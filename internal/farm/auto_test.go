package farm

import (
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// cutScene returns a moving-ball animation whose camera cuts between two
// positions at the midpoint.
func cutScene(frames int) *scene.Scene {
	s := farmScene(frames)
	camA := s.Camera
	camB := camA
	camB.Pos = vm.V(4, 3, 8)
	camB.LookAt = vm.V(0, 1, 0)
	s.CamTrack = scene.CameraFunc(func(f int) scene.Camera {
		if f < frames/2 {
			return camA
		}
		return camB
	})
	return s
}

func TestRenderAutoSplitsAtCameraCut(t *testing.T) {
	const frames = 8
	sc := cutScene(frames)
	want := referenceFrames(t, sc)

	// A plain coherent farm run over the whole animation must fail: the
	// coherence engine rejects camera motion inside a sequence.
	if _, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		Scheme: partition.SequenceDivision{Adaptive: true},
	}); err == nil {
		t.Fatal("whole-animation coherent run over a camera cut should fail")
	}

	res, err := RenderAuto(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		Scheme: partition.SequenceDivision{Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "auto", res.Frames, want)
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if len(res.Run.Frames) != frames {
		t.Errorf("%d frame stats", len(res.Run.Frames))
	}
	// Worker stats merged across sequences, not duplicated per sequence.
	if len(res.Workers) != 3 {
		t.Errorf("%d worker entries, want 3", len(res.Workers))
	}
}

func TestRenderAutoStaticCameraEquivalent(t *testing.T) {
	// Without cuts, RenderAuto is just RenderVirtual.
	sc := farmScene(5)
	a, err := RenderAuto(Config{Scene: sc, W: fw, H: fh, Coherence: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RenderVirtual(Config{Scene: sc, W: fw, H: fh, Coherence: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("auto (%v) differs from direct (%v) with no cuts", a.Makespan, b.Makespan)
	}
	assertFramesEqual(t, "auto-vs-direct", a.Frames, b.Frames)
}

func TestRenderAutoEmitOrder(t *testing.T) {
	sc := cutScene(6)
	var order []int
	_, err := RenderAuto(Config{
		Scene: sc, W: fw, H: fh,
		Emit: func(f int, _ *fb.Framebuffer) error {
			order = append(order, f)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range order {
		if f != i {
			t.Fatalf("emit order %v", order)
		}
	}
	if len(order) != 6 {
		t.Errorf("emitted %d frames", len(order))
	}
}

func TestFrameRangeConfig(t *testing.T) {
	sc := farmScene(8)
	res, err := RenderVirtual(Config{
		Scene: sc, W: fw, H: fh, Coherence: true,
		StartFrame: 2, EndFrame: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frames) != 3 {
		t.Fatalf("%d frames for range [2,5)", len(res.Frames))
	}
	// Frames match the reference at their absolute indices.
	want := referenceFrames(t, sc)
	for i, img := range res.Frames {
		if !img.Equal(want[2+i]) {
			t.Errorf("range frame %d differs", 2+i)
		}
	}
	// Invalid ranges rejected.
	if _, err := RenderVirtual(Config{Scene: sc, W: fw, H: fh, StartFrame: 5, EndFrame: 3}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RenderVirtual(Config{Scene: sc, W: fw, H: fh, StartFrame: 0, EndFrame: 99}); err == nil {
		t.Error("overlong range accepted")
	}
}

func TestRenderLocalAutoMatchesReference(t *testing.T) {
	sc := cutScene(6)
	want := referenceFrames(t, sc)
	res, err := RenderLocalAuto(Config{
		Scene: sc, W: fw, H: fh, Coherence: true, Workers: 2,
		Scheme: partition.FrameDivision{BlockW: 20, BlockH: 16, Adaptive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "local-auto", res.Frames, want)
	if len(res.Workers) != 2 {
		t.Errorf("%d worker entries", len(res.Workers))
	}
}
