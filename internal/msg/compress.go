package msg

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Frame payload compression. Raw RGB pixel runs — especially the flat
// backgrounds and smooth gradients of synthetic animation frames —
// deflate well, and on a network of workstations the wire is the scarce
// resource. flate at BestSpeed keeps the worker-side cost small; both
// the writer and the reader are pooled and Reset between payloads so the
// hot path does not allocate compressor state per frame.

// sliceWriter appends written bytes to buf — an io.Writer over a
// caller-owned slice, so Deflate can reuse the caller's scratch.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

var flateWriterPool = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

var flateReaderPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// Deflate compresses src, appending the result to dst (usually
// scratch[:0]) and returning the extended slice.
//
// A writer that errored mid-stream holds dirty Huffman/window state and
// a reference to this call's sliceWriter; pooling it as-is would splice
// stale bytes into whatever frame borrows it next and pin the caller's
// buffer. Every path therefore Resets the writer onto io.Discard before
// Put, which discards both the stream state and the output reference.
func Deflate(dst, src []byte) ([]byte, error) {
	sw := &sliceWriter{buf: dst}
	if err := deflateTo(sw, src); err != nil {
		return dst, err
	}
	return sw.buf, nil
}

// deflateTo streams src through a pooled flate writer into w.
func deflateTo(w io.Writer, src []byte) error {
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(w)
	if _, err := fw.Write(src); err != nil {
		fw.Reset(io.Discard)
		flateWriterPool.Put(fw)
		return fmt.Errorf("msg: deflate: %w", err)
	}
	if err := fw.Close(); err != nil {
		fw.Reset(io.Discard)
		flateWriterPool.Put(fw)
		return fmt.Errorf("msg: deflate: %w", err)
	}
	fw.Reset(io.Discard)
	flateWriterPool.Put(fw)
	return nil
}

// Inflate decompresses src into dst, whose length must be exactly the
// decompressed size (the farm protocol always knows it from the span
// set or region). A stream that is malformed, too short, or too long is
// an error — a corrupt payload must never be delivered as pixels.
func Inflate(dst, src []byte) error {
	fr := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(src), nil); err != nil {
		return fmt.Errorf("msg: inflate: %w", err)
	}
	if _, err := io.ReadFull(fr, dst); err != nil {
		return fmt.Errorf("msg: inflate: %w", err)
	}
	// The stream must end exactly at len(dst).
	var extra [1]byte
	if n, err := fr.Read(extra[:]); n != 0 || err != io.EOF {
		return fmt.Errorf("msg: inflate: stream longer than expected %d bytes", len(dst))
	}
	return nil
}
