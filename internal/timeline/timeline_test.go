package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 {
		t.Fatal("nil recorder clock should be 0")
	}
	tr := r.Track("master/loop")
	if tr != nil {
		t.Fatal("nil recorder must hand out nil tracks")
	}
	// Every track method must be a no-op on nil.
	s := tr.Begin()
	tr.End(OpFrame, 3, s)
	tr.EndArg(OpFrame, 3, s, 7)
	tr.Span(OpFrame, 3, 1, 2, 0)
	tr.Instant(OpDispatch, 3, 1)
	tr.InstantAt(OpDispatch, 3, 5, 1)
	if tr.Name() != "" {
		t.Fatal("nil track name")
	}
	if got := r.TakeNew(); got != nil {
		t.Fatalf("nil recorder TakeNew = %v", got)
	}
	tl := r.Snapshot()
	if tl == nil || len(tl.Tracks) != 0 {
		t.Fatalf("nil recorder snapshot = %+v", tl)
	}
}

func TestTrackIdempotentAndRecords(t *testing.T) {
	r := New(16)
	a := r.Track("w0/main")
	b := r.Track("w0/main")
	if a != b {
		t.Fatal("Track must be idempotent by name")
	}
	s := a.Begin()
	a.End(OpFrame, 5, s)
	a.Instant(OpDispatch, -1, 42)
	tl := r.Snapshot()
	if len(tl.Tracks) != 1 || len(tl.Tracks[0].Events) != 2 {
		t.Fatalf("snapshot = %+v", tl)
	}
	ev := tl.Tracks[0].Events
	if ev[0].Op != OpFrame || ev[0].Frame != 5 || ev[0].Instant() {
		t.Fatalf("span event = %+v", ev[0])
	}
	if ev[1].Op != OpDispatch || !ev[1].Instant() || ev[1].Arg != 42 {
		t.Fatalf("instant event = %+v", ev[1])
	}
	if tl.Tracks[0].Group() != "w0" {
		t.Fatalf("group = %q", tl.Tracks[0].Group())
	}
}

func TestRingDropsOldest(t *testing.T) {
	r := New(4)
	tr := r.Track("w/t")
	for i := 0; i < 10; i++ {
		tr.InstantAt(OpPing, i, int64(i), 0)
	}
	tl := r.Snapshot()
	td := tl.Tracks[0]
	if td.Dropped != 6 || len(td.Events) != 4 {
		t.Fatalf("dropped %d, kept %d", td.Dropped, len(td.Events))
	}
	if td.Events[0].Frame != 6 || td.Events[3].Frame != 9 {
		t.Fatalf("kept wrong window: %+v", td.Events)
	}
}

func TestTakeNewDrains(t *testing.T) {
	r := New(8)
	tr := r.Track("w/t")
	tr.InstantAt(OpPing, 0, 1, 0)
	tr.InstantAt(OpPing, 1, 2, 0)
	got := r.TakeNew()
	if len(got) != 1 || len(got[0].Events) != 2 {
		t.Fatalf("first take = %+v", got)
	}
	if got := r.TakeNew(); got != nil {
		t.Fatalf("drained take = %+v", got)
	}
	tr.InstantAt(OpPing, 2, 3, 0)
	got = r.TakeNew()
	if len(got) != 1 || len(got[0].Events) != 1 || got[0].Events[0].Frame != 2 {
		t.Fatalf("incremental take = %+v", got)
	}
	// Wrap between takes: only the survivors arrive, the loss counted.
	for i := 0; i < 12; i++ {
		tr.InstantAt(OpPing, 10+i, int64(10+i), 0)
	}
	got = r.TakeNew()
	if len(got) != 1 || len(got[0].Events) != 8 || got[0].Dropped != 4 {
		t.Fatalf("wrapped take = %+v", got)
	}
}

func TestOpStringRoundTrip(t *testing.T) {
	for o := OpNone; o < opCount; o++ {
		if OpFromString(o.String()) != o {
			t.Fatalf("op %d name %q does not round-trip", o, o.String())
		}
	}
	if OpFromString("no-such-op") != OpNone {
		t.Fatal("unknown name should map to OpNone")
	}
}

// TestChromeTraceRoundTrip is the schema round-trip acceptance test:
// exported JSON must be valid Chrome trace-event JSON and re-import to
// the identical timeline.
func TestChromeTraceRoundTrip(t *testing.T) {
	tl := &Timeline{Meta: map[string]string{"scheme": "frame div", "scene": "gallery"}}
	tl.AddTrack("master/loop", []Event{
		{Start: 1000, Dur: instantDur, Op: OpDispatch, Frame: 0, Arg: 3},
		{Start: 2500, Dur: instantDur, Op: OpResult, Frame: 0, Arg: 998},
	}, 0)
	tl.AddTrack("worker00/main", []Event{
		{Start: 1200, Dur: 900, Op: OpFrame, Frame: 0},
		{Start: 2101, Dur: 250, Op: OpEncode, Frame: 0, Arg: 12},
		{Start: 2400, Dur: 80, Op: OpSend, Frame: 0},
	}, 0)
	tl.AddTrack("worker00/tile00", []Event{
		{Start: 1210, Dur: 400, Op: OpTile, Frame: 0, Arg: 1},
	}, 0)
	tl.Sort()

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// Schema shape: a JSON object with a traceEvents array whose
	// members carry ph/pid/tid/ts — what Perfetto requires.
	var shape struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &shape); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(shape.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	for _, ev := range shape.TraceEvents {
		for _, key := range []string{"ph", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("trace event missing %q: %v", key, ev)
			}
		}
	}

	back, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	back.Sort()
	if len(back.Tracks) != len(tl.Tracks) {
		t.Fatalf("got %d tracks, want %d", len(back.Tracks), len(tl.Tracks))
	}
	for i := range tl.Tracks {
		want, got := tl.Tracks[i], back.Tracks[i]
		if want.Name != got.Name {
			t.Fatalf("track %d name %q != %q", i, got.Name, want.Name)
		}
		if len(want.Events) != len(got.Events) {
			t.Fatalf("track %s: %d events, want %d", want.Name, len(got.Events), len(want.Events))
		}
		for j := range want.Events {
			if want.Events[j] != got.Events[j] {
				t.Fatalf("track %s event %d: %+v != %+v", want.Name, j, got.Events[j], want.Events[j])
			}
		}
	}
	if back.Meta["scheme"] != "frame div" {
		t.Fatalf("meta lost: %v", back.Meta)
	}
}

func TestReadChromeTraceBareArray(t *testing.T) {
	raw := `[{"name":"frame","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":1,"args":{"frame":3}}]`
	tl, err := ReadChromeTrace(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Events() != 1 || tl.Tracks[0].Events[0].Op != OpFrame {
		t.Fatalf("parsed = %+v", tl)
	}
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must not parse")
	}
}

func TestOffsetEstimator(t *testing.T) {
	// Worker clock runs 500 ahead of master: t_m = t_w - 500.
	var o OffsetEstimator
	if o.Offset() != 0 || o.Quality() != "none" {
		t.Fatalf("empty estimator: %d %s", o.Offset(), o.Quality())
	}
	// One-way: worker stamps 1500 at master time 1000+transit.
	o.AddOneWay(1040, 1500) // transit 40: offset est = 1040-1500 = -460
	o.AddOneWay(2010, 2500) // transit 10: offset est = -490 (better)
	if o.Quality() != "one-way" || o.Offset() != -490 {
		t.Fatalf("one-way offset = %d (%s)", o.Offset(), o.Quality())
	}
	// RTT samples beat one-way ones.
	o.AddRTT(1000, 1100, 1552) // rtt 100, worker at mid 1050 says 1552: off -502
	o.AddRTT(2000, 2020, 2510) // rtt 20, worker at mid 2010 says 2510: off -500
	o.AddRTT(3000, 3200, 3640) // worse rtt: ignored
	if o.Quality() != "rtt" || o.Offset() != -500 {
		t.Fatalf("rtt offset = %d (%s)", o.Offset(), o.Quality())
	}
	// Negative rtt (clock weirdness) ignored.
	o.AddRTT(5000, 4000, 0)
	if o.Offset() != -500 {
		t.Fatal("negative rtt must be ignored")
	}
}

func TestShiftAndBounds(t *testing.T) {
	tl := &Timeline{}
	tl.AddTrack("w0/main", []Event{{Start: 100, Dur: 50, Op: OpFrame}}, 0)
	tl.AddTrack("master/loop", []Event{{Start: 10, Dur: instantDur, Op: OpDispatch}}, 0)
	tl.Shift("w0", -40)
	if tl.Tracks[0].Events[0].Start != 60 {
		t.Fatalf("shift: %+v", tl.Tracks[0].Events[0])
	}
	s, e := tl.Bounds()
	if s != 10 || e != 110 {
		t.Fatalf("bounds = %d..%d", s, e)
	}
}

func TestAnalyze(t *testing.T) {
	tl := &Timeline{Meta: map[string]string{"scheme": "seq div"}}
	// Two workers over a 0..1000 wall: w0 busy 800 (frames 0,1), w1
	// busy 400 (frame 2), idle 300 before its frame and 300 at the end.
	tl.AddTrack("w0/main", []Event{
		{Start: 0, Dur: 500, Op: OpFrame, Frame: 0},
		{Start: 500, Dur: 300, Op: OpFrame, Frame: 1},
		{Start: 800, Dur: 200, Op: OpSend, Frame: 1},
	}, 0)
	tl.AddTrack("w1/main", []Event{
		{Start: 300, Dur: 400, Op: OpFrame, Frame: 2},
	}, 0)
	tl.AddTrack("master/loop", []Event{
		{Start: 0, Dur: instantDur, Op: OpDispatch, Frame: 0},
		{Start: 1000, Dur: instantDur, Op: OpResult, Frame: 1},
	}, 0)
	rep := Analyze(tl)
	if rep.Scheme != "seq div" || rep.Wall != 1000 {
		t.Fatalf("scheme/wall = %q/%d", rep.Scheme, rep.Wall)
	}
	byName := map[string]GroupStat{}
	for _, g := range rep.Groups {
		byName[g.Group] = g
	}
	if g := byName["w0"]; g.Busy != 800 || g.Frames != 2 {
		t.Fatalf("w0 = %+v", g)
	}
	if g := byName["w1"]; g.Busy != 400 || g.Utilisation != 0.4 {
		t.Fatalf("w1 = %+v", g)
	}
	// Idle-gap attribution: w1 waited 300 before its frame span.
	if got := byName["w1"].IdleGaps["frame"]; got != 300 {
		t.Fatalf("w1 frame gap = %d", got)
	}
	if got := byName["w1"].IdleGaps["run-end"]; got != 300 {
		t.Fatalf("w1 run-end gap = %d", got)
	}
	// Imbalance: max 800 / mean 600.
	if rep.Imbalance < 1.32 || rep.Imbalance > 1.34 {
		t.Fatalf("imbalance = %f", rep.Imbalance)
	}
	// Critical path: frame 1 finishes last (at 800), then frame 2 (700).
	if len(rep.CriticalFrames) != 3 || rep.CriticalFrames[0].Frame != 1 || rep.CriticalFrames[1].Frame != 2 {
		t.Fatalf("critical = %+v", rep.CriticalFrames)
	}
	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	for _, want := range []string{"seq div", "imbalance", "w0", "critical-path"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted report missing %q:\n%s", want, out)
		}
	}
}
