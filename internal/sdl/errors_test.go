package sdl

import "testing"

// Exhaustive malformed-input sweep: every statement type with a broken
// body must produce an error, never a panic or silent acceptance.
func TestParserErrorSweep(t *testing.T) {
	cases := []string{
		// global_settings
		`global_settings`,
		`global_settings { max_depth }`,
		`global_settings { frames <1,2,3> }`,
		`global_settings { ambient 1 }`,
		// background
		`background { }`,
		`background { color }`,
		`background { color rgb 1 }`,
		`background { color rgb <1,1,1>`,
		// camera
		`camera { location }`,
		`camera { zoom 2 }`,
		`camera { fov <1,2,3> }`,
		// light
		`light_source { }`,
		`light_source { <0,0,0> intensity 5 }`,
		`light_source { <0,0,0> color rgb <1,1,1> point_at <0,0,0> }`,
		`light_source { <0,0,0> spotlight radius 30 falloff 10 }`,
		`light_source { <0,0,0> fade_distance }`,
		// sphere and friends
		`sphere`,
		`sphere {`,
		`sphere { 1, <0,0,0> }`,
		`sphere { <0,0,0> 1`,
		`box { <0,0,0> }`,
		`cylinder { <0,0,0>, <0,1,0> }`,
		`cone { <0,0,0>, 1, <0,1,0> }`,
		`torus { 1 }`,
		`torus { <1,1,1>, 1 }`,
		`disc { <0,0,0>, <0,1,0> }`,
		`triangle { <0,0,0>, <1,0,0> }`,
		// modifiers
		`sphere { <0,0,0>, 1 pigment }`,
		`sphere { <0,0,0>, 1 pigment { } }`,
		`sphere { <0,0,0>, 1 pigment { color } }`,
		`sphere { <0,0,0>, 1 pigment { checker rgb <1,1,1> } }`,
		`sphere { <0,0,0>, 1 pigment { gradient <0,1,0> rgb <0,0,0> } }`,
		`sphere { <0,0,0>, 1 finish { ambient } }`,
		`sphere { <0,0,0>, 1 finish { ambient x } }`,
		`sphere { <0,0,0>, 1 animate { frame 1 <0,0,0> } }`,
		`sphere { <0,0,0>, 1 animate { keyframe <0,0,0> } }`,
		`sphere { <0,0,0>, 1 name ball }`,
		`sphere { <0,0,0>, 1 translate }`,
		`sphere { <0,0,0>, 1 rotate 90 }`,
		`sphere { <0,0,0>, 1 scale }`,
		`sphere { <0,0,0>, 1 texture { } }`,
		// declare
		`#declare`,
		`#declare X`,
		`#declare X =`,
		`#declare X = "string"`,
		`#declare 5 = 1`,
		// vectors/numbers
		`sphere { <1,2,3, 1 }`,
		`sphere { <1,2,>, 1 }`,
		// top-level garbage
		`{`,
		`>`,
		`= 5`,
		`"stray string"`,
		`sphere { <0,0,0>, 1 } trailing`,
	}
	for _, src := range cases {
		if _, err := Parse("sweep", src); err == nil {
			t.Errorf("accepted malformed input: %q", src)
		}
	}
}

// Valid inputs near the error cases must still parse.
func TestParserAcceptanceSweep(t *testing.T) {
	cases := []string{
		`sphere { <0,0,0>, 1 }`,
		`sphere { <0,0,0> 1 }`,  // commas between arguments optional
		`sphere { <1 2 3>, 1 }`, // commas inside vectors optional too
		`light_source { <0,0,0> }`,
		`light_source { <0,0,0> spotlight point_at <1,0,0> radius 10 falloff 20 }`,
		`light_source { <0,0,0> fade_distance 5 fade_power 1 }`,
		`global_settings { max_depth 3 }
		 sphere { <0,0,0>, 1 }`,
		`#declare R = 2
		 torus { R, 0.5 }`,
		`triangle { <0,0,0>, <1,0,0>, <0,1,0> }`,
	}
	for _, src := range cases {
		if _, err := Parse("accept", src); err != nil {
			t.Errorf("rejected valid input %q: %v", src, err)
		}
	}
}
