// Package objfile loads triangle meshes from the Wavefront OBJ subset
// that era-appropriate model archives used: vertices, optional vertex
// normals, and polygonal faces (triangulated fan-wise). This gives the
// renderer access to "large, complex animations" (§5) built from real
// model files rather than hand-placed primitives.
//
// Supported directives: `v x y z`, `vn x y z`, `f i j k ...` with index
// forms `v`, `v/vt`, `v//vn` and `v/vt/vn`, and negative (relative)
// indices. Unknown directives are ignored, matching common practice.
package objfile

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"nowrender/internal/geom"
	vm "nowrender/internal/vecmath"
)

// Parse reads an OBJ document into a mesh.
func Parse(r io.Reader) (*geom.Mesh, error) {
	var verts []vm.Vec3
	var normals []vm.Vec3
	var tris []*geom.Triangle

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			p, err := parseVec(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("obj line %d: %w", lineNo, err)
			}
			verts = append(verts, p)
		case "vn":
			n, err := parseVec(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("obj line %d: %w", lineNo, err)
			}
			normals = append(normals, n)
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("obj line %d: face needs at least 3 vertices", lineNo)
			}
			type corner struct {
				p vm.Vec3
				n *vm.Vec3
			}
			corners := make([]corner, 0, len(fields)-1)
			for _, f := range fields[1:] {
				vi, ni, err := parseFaceIndex(f, len(verts), len(normals))
				if err != nil {
					return nil, fmt.Errorf("obj line %d: %w", lineNo, err)
				}
				c := corner{p: verts[vi]}
				if ni >= 0 {
					n := normals[ni]
					c.n = &n
				}
				corners = append(corners, c)
			}
			// Fan triangulation.
			for i := 1; i+1 < len(corners); i++ {
				a, b, c := corners[0], corners[i], corners[i+1]
				if a.n != nil && b.n != nil && c.n != nil {
					tris = append(tris, geom.NewSmoothTriangle(a.p, b.p, c.p, *a.n, *b.n, *c.n))
				} else {
					tris = append(tris, geom.NewTriangle(a.p, b.p, c.p))
				}
			}
		default:
			// vt, g, o, s, usemtl, mtllib... intentionally ignored.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obj: %w", err)
	}
	if len(tris) == 0 {
		return nil, fmt.Errorf("obj: no faces found (%d vertices)", len(verts))
	}
	return geom.NewMesh(tris), nil
}

// Write emits a mesh as an OBJ document (vertices, optional vertex
// normals, triangular faces) that Parse round-trips. Vertices are not
// deduplicated: three per triangle, in triangle order, so the output is
// a deterministic function of the mesh.
func Write(w io.Writer, m *geom.Mesh) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nowrender mesh: %d triangles\n", len(m.Tris))
	smooth := 0
	for _, tr := range m.Tris {
		if tr.N0 != nil {
			smooth++
		}
	}
	for _, tr := range m.Tris {
		for _, p := range [3]vm.Vec3{tr.P0, tr.P1, tr.P2} {
			fmt.Fprintf(bw, "v %.17g %.17g %.17g\n", p.X, p.Y, p.Z)
		}
	}
	for _, tr := range m.Tris {
		if tr.N0 == nil {
			continue
		}
		for _, n := range [3]*vm.Vec3{tr.N0, tr.N1, tr.N2} {
			fmt.Fprintf(bw, "vn %.17g %.17g %.17g\n", n.X, n.Y, n.Z)
		}
	}
	ni := 0
	for i, tr := range m.Tris {
		v := 3*i + 1
		if tr.N0 != nil && smooth == len(m.Tris) {
			fmt.Fprintf(bw, "f %d//%d %d//%d %d//%d\n", v, ni+1, v+1, ni+2, v+2, ni+3)
			ni += 3
		} else {
			fmt.Fprintf(bw, "f %d %d %d\n", v, v+1, v+2)
		}
	}
	return bw.Flush()
}

// WriteFile emits a mesh as an OBJ file on disk.
func WriteFile(path string, m *geom.Mesh) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads an OBJ file from disk.
func Load(path string) (*geom.Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func parseVec(fields []string) (vm.Vec3, error) {
	if len(fields) < 3 {
		return vm.Vec3{}, fmt.Errorf("need 3 coordinates, got %d", len(fields))
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return vm.Vec3{}, fmt.Errorf("bad coordinate %q", fields[i])
		}
		// strconv accepts "NaN" and "Inf"; a single such vertex would
		// poison every bounding box and grid insertion downstream, so
		// reject the file here with a useful message.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return vm.Vec3{}, fmt.Errorf("non-finite coordinate %q", fields[i])
		}
		out[i] = v
	}
	return vm.V(out[0], out[1], out[2]), nil
}

// parseFaceIndex resolves one face corner ("7", "7/2", "7//3", "7/2/3",
// "-1") to zero-based vertex and normal indices; ni is -1 when absent.
func parseFaceIndex(s string, nVerts, nNormals int) (vi, ni int, err error) {
	parts := strings.Split(s, "/")
	vi, err = resolveIndex(parts[0], nVerts)
	if err != nil {
		return 0, 0, fmt.Errorf("vertex index %q: %w", s, err)
	}
	ni = -1
	if len(parts) == 3 && parts[2] != "" {
		ni, err = resolveIndex(parts[2], nNormals)
		if err != nil {
			return 0, 0, fmt.Errorf("normal index %q: %w", s, err)
		}
	}
	return vi, ni, nil
}

func resolveIndex(s string, n int) (int, error) {
	raw, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("not an integer")
	}
	switch {
	case raw > 0:
		if raw > n {
			return 0, fmt.Errorf("index %d exceeds count %d", raw, n)
		}
		return raw - 1, nil
	case raw < 0:
		idx := n + raw
		if idx < 0 {
			return 0, fmt.Errorf("relative index %d out of range", raw)
		}
		return idx, nil
	default:
		return 0, fmt.Errorf("index 0 is invalid")
	}
}
