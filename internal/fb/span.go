package fb

import "fmt"

// Span is a horizontal run of pixels [X0, X1) on row Y — the unit of
// the farm's delta frames. A worker whose coherence engine re-rendered
// 2% of a region ships just those pixels as spans instead of the whole
// rectangle.
type Span struct {
	Y, X0, X1 int
}

// Area returns the span's pixel count.
func (s Span) Area() int { return s.X1 - s.X0 }

// SpanArea sums the pixel counts of a span set.
func SpanArea(spans []Span) int {
	n := 0
	for _, s := range spans {
		n += s.Area()
	}
	return n
}

// AppendSpans packs the spans' pixels (3 bytes each, span order) onto
// out and returns the extended slice — the encode side of ApplySpans.
// Spans must lie inside the framebuffer.
func (f *Framebuffer) AppendSpans(out []byte, spans []Span) []byte {
	for _, s := range spans {
		o := f.offset(s.X0, s.Y)
		out = append(out, f.Pix[o:o+s.Area()*3]...)
	}
	return out
}

// ApplySpans writes packed RGB pixels into the spans, consuming
// 3*(X1-X0) bytes per span in order. Spans and pixel data arrive off
// the wire, so violations are errors, not panics: a span outside the
// framebuffer or a pixel count that does not match len(pix)/3 leaves f
// partially written and returns a description of the offence.
func (f *Framebuffer) ApplySpans(spans []Span, pix []byte) error {
	pos := 0
	for _, s := range spans {
		if s.X0 < 0 || s.X0 >= s.X1 || s.X1 > f.W || s.Y < 0 || s.Y >= f.H {
			return fmt.Errorf("fb: span y=%d [%d,%d) outside %dx%d framebuffer", s.Y, s.X0, s.X1, f.W, f.H)
		}
		n := s.Area() * 3
		if pos+n > len(pix) {
			return fmt.Errorf("fb: span pixels exhausted at %d of %d bytes", pos, len(pix))
		}
		o := f.offset(s.X0, s.Y)
		copy(f.Pix[o:o+n], pix[pos:pos+n])
		pos += n
	}
	if pos != len(pix) {
		return fmt.Errorf("fb: %d span pixel bytes left over", len(pix)-pos)
	}
	return nil
}
