package geom

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

func TestConeLateralHit(t *testing.T) {
	// Frustum from radius 1 at y=0 to radius 0 at y=2 (a true cone).
	c := NewCone(vm.V(0, 0, 0), 1, vm.V(0, 2, 0), 0)
	// At height y=1 the radius is 0.5; a horizontal ray at y=1 grazes
	// the surface at x=-0.5.
	r := vm.Ray{Origin: vm.V(-5, 1, 0), Dir: vm.V(1, 0, 0)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed cone side")
	}
	if math.Abs(h.T-4.5) > 1e-9 {
		t.Errorf("T = %v, want 4.5", h.T)
	}
	// The lateral normal tilts upward for a narrowing cone (k<0 so
	// outward = radial - k*axis has positive Y component).
	if h.Normal.X >= 0 || h.Normal.Y <= 0 {
		t.Errorf("normal = %v, want -x and +y components", h.Normal)
	}
	if math.Abs(h.Normal.Len()-1) > 1e-12 {
		t.Error("normal not unit")
	}
}

func TestConeApexMiss(t *testing.T) {
	c := NewCone(vm.V(0, 0, 0), 1, vm.V(0, 2, 0), 0)
	// Above the apex: no surface.
	r := vm.Ray{Origin: vm.V(-5, 2.5, 0), Dir: vm.V(1, 0, 0)}
	if _, ok := c.Intersect(r, 0, inf); ok {
		t.Error("hit above apex")
	}
}

func TestConeBaseCapHit(t *testing.T) {
	c := NewCone(vm.V(0, 0, 0), 1, vm.V(0, 2, 0), 0.25)
	// Downward ray inside the cap radius hits the top disc at y=2.
	r := vm.Ray{Origin: vm.V(0.1, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed cap")
	}
	if math.Abs(h.T-3) > 1e-9 {
		t.Errorf("T = %v, want 3", h.T)
	}
	if !h.Normal.ApproxEq(vm.V(0, 1, 0), 1e-12) {
		t.Errorf("cap normal = %v", h.Normal)
	}
	// Ray down outside cap radius but inside base radius: hits the
	// slanted side below.
	r = vm.Ray{Origin: vm.V(0.6, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok = c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed side from above")
	}
	// r(h) = 1 - 0.375h = 0.6 => h = 1.0667, so T = 5 - 1.0667.
	wantH := (1 - 0.6) / 0.375
	if math.Abs(h.Point.Y-wantH) > 1e-9 {
		t.Errorf("side hit at y=%v, want %v", h.Point.Y, wantH)
	}
}

func TestOpenConeNoCapHit(t *testing.T) {
	c := NewOpenCone(vm.V(0, 0, 0), 1, vm.V(0, 2, 0), 0.25)
	r := vm.Ray{Origin: vm.V(0, 5, 0), Dir: vm.V(0, -1, 0)}
	if _, ok := c.Intersect(r, 0, inf); ok {
		t.Error("open cone reported axis hit")
	}
}

func TestConeZeroBaseRadiusCapOnly(t *testing.T) {
	// Inverted cone: apex at base.
	c := NewCone(vm.V(0, 0, 0), 0, vm.V(0, 2, 0), 1)
	r := vm.Ray{Origin: vm.V(0.2, 5, 0), Dir: vm.V(0, -1, 0)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed inverted cone cap")
	}
	if math.Abs(h.T-3) > 1e-9 {
		t.Errorf("T = %v", h.T)
	}
}

func TestConeDegeneratesToCylinder(t *testing.T) {
	// Equal radii: behaves exactly like a cylinder.
	cone := NewCone(vm.V(0, 0, 0), 0.5, vm.V(0, 2, 0), 0.5)
	cyl := NewCylinder(vm.V(0, 0, 0), vm.V(0, 2, 0), 0.5)
	rng := vm.NewRNG(77)
	for i := 0; i < 500; i++ {
		o := vm.V(rng.InRange(-3, 3), rng.InRange(-1, 3), rng.InRange(-3, 3))
		d := vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1))
		if d.Len() < 0.1 {
			continue
		}
		r := vm.Ray{Origin: o, Dir: d.Norm()}
		h1, ok1 := cone.Intersect(r, 1e-9, inf)
		h2, ok2 := cyl.Intersect(r, 1e-9, inf)
		if ok1 != ok2 {
			t.Fatalf("trial %d: cone hit=%v cylinder hit=%v for %+v", i, ok1, ok2, r)
		}
		if ok1 && math.Abs(h1.T-h2.T) > 1e-9 {
			t.Fatalf("trial %d: T cone=%v cylinder=%v", i, h1.T, h2.T)
		}
	}
}

func TestConeBoundsContainSurface(t *testing.T) {
	c := NewCone(vm.V(1, 0, -1), 0.8, vm.V(-1, 2, 1), 0.2)
	b := c.Bounds()
	onb := vm.NewONB(c.Cap.Sub(c.Base))
	for i := 0; i < 24; i++ {
		ang := float64(i) / 24 * 2 * math.Pi
		for _, s := range []float64{0, 0.5, 1} {
			rad := c.BaseRadius + (c.CapRadius-c.BaseRadius)*s
			axisPt := c.Base.Lerp(c.Cap, s)
			p := axisPt.Add(onb.Local(math.Cos(ang)*rad, math.Sin(ang)*rad, 0))
			if !b.Pad(1e-9).Contains(p) {
				t.Fatalf("surface point %v outside bounds %v", p, b)
			}
		}
	}
}

func TestConeOverlapsBox(t *testing.T) {
	c := NewCone(vm.V(0, 0, 0), 1, vm.V(0, 2, 0), 0)
	if !c.OverlapsBox(vm.NewAABB(vm.V(-0.1, 0.9, -0.1), vm.V(0.1, 1.1, 0.1))) {
		t.Error("box on axis not overlapping")
	}
	if c.OverlapsBox(vm.NewAABB(vm.V(5, 5, 5), vm.V(6, 6, 6))) {
		t.Error("distant box overlapping")
	}
}

func TestConeInsideHit(t *testing.T) {
	c := NewCone(vm.V(0, 0, 0), 1, vm.V(0, 2, 0), 1)
	r := vm.Ray{Origin: vm.V(0, 1, 0), Dir: vm.V(1, 0, 0)}
	h, ok := c.Intersect(r, 0, inf)
	if !ok {
		t.Fatal("missed from inside")
	}
	if !h.Inside {
		t.Error("inside hit not flagged")
	}
	if !h.Normal.ApproxEq(vm.V(-1, 0, 0), 1e-9) {
		t.Errorf("normal = %v", h.Normal)
	}
}
