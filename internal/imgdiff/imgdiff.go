// Package imgdiff compares frames pixel-by-pixel and renders difference
// masks, reproducing Figure 2 of the paper: (a) the actual pixel
// differences between consecutive frames and (b) the differences as
// predicted by the frame-coherence algorithm.
package imgdiff

import (
	"fmt"
	"math"

	"nowrender/internal/fb"
	vm "nowrender/internal/vecmath"
)

// Mask is a per-pixel boolean image.
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask returns an all-false mask.
func NewMask(w, h int) *Mask {
	return &Mask{W: w, H: h, Bits: make([]bool, w*h)}
}

// At reports the mask at (x, y).
func (m *Mask) At(x, y int) bool { return m.Bits[y*m.W+x] }

// Set sets the mask at (x, y).
func (m *Mask) Set(x, y int, v bool) { m.Bits[y*m.W+x] = v }

// Count returns the number of set pixels.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return n
}

// Fraction returns the set fraction in [0,1].
func (m *Mask) Fraction() float64 {
	if len(m.Bits) == 0 {
		return 0
	}
	return float64(m.Count()) / float64(len(m.Bits))
}

// Covers reports whether m is a superset of o (every set pixel of o is
// set in m). Panics if dimensions differ.
func (m *Mask) Covers(o *Mask) bool {
	if m.W != o.W || m.H != o.H {
		panic("imgdiff: mask dimensions differ")
	}
	for i, b := range o.Bits {
		if b && !m.Bits[i] {
			return false
		}
	}
	return true
}

// Image renders the mask as a black/white framebuffer (white = set),
// matching the presentation of Figure 2.
func (m *Mask) Image() *fb.Framebuffer {
	img := fb.New(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.At(x, y) {
				img.SetRGB(x, y, 255, 255, 255)
			}
		}
	}
	return img
}

// Diff returns the actual pixel-difference mask between two frames
// (Figure 2(a)). Frames must have equal dimensions.
func Diff(a, b *fb.Framebuffer) (*Mask, error) {
	if a.W != b.W || a.H != b.H {
		return nil, fmt.Errorf("imgdiff: dimensions differ: %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	m := NewMask(a.W, a.H)
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			ar, ag, ab := a.At(x, y)
			br, bg, bb := b.At(x, y)
			if ar != br || ag != bg || ab != bb {
				m.Set(x, y, true)
			}
		}
	}
	return m, nil
}

// MaskFromDirty converts a coherence engine dirty slice (region-local,
// row-major) into a full-frame mask (Figure 2(b)).
func MaskFromDirty(dirty []bool, region fb.Rect, w, h int) (*Mask, error) {
	if len(dirty) != region.Area() {
		return nil, fmt.Errorf("imgdiff: dirty slice has %d entries for region area %d", len(dirty), region.Area())
	}
	m := NewMask(w, h)
	for i, d := range dirty {
		if !d {
			continue
		}
		x := region.X0 + i%region.W()
		y := region.Y0 + i/region.W()
		m.Set(x, y, true)
	}
	return m, nil
}

// Stats summarises a comparison between two frames.
type Stats struct {
	// Differing is the number of pixels with any channel difference.
	Differing int
	// MaxChannelDelta is the largest per-channel absolute difference.
	MaxChannelDelta int
	// MSE is the mean squared error over all channels (0-255 scale).
	MSE float64
	// PSNR in dB; +Inf for identical images.
	PSNR float64
}

// Compare computes summary statistics for two equal-size frames.
func Compare(a, b *fb.Framebuffer) (Stats, error) {
	if a.W != b.W || a.H != b.H {
		return Stats{}, fmt.Errorf("imgdiff: dimensions differ")
	}
	var st Stats
	var sq float64
	for i := 0; i+2 < len(a.Pix); i += 3 {
		diff := false
		for c := 0; c < 3; c++ {
			d := int(a.Pix[i+c]) - int(b.Pix[i+c])
			if d < 0 {
				d = -d
			}
			if d > 0 {
				diff = true
			}
			if d > st.MaxChannelDelta {
				st.MaxChannelDelta = d
			}
			sq += float64(d) * float64(d)
		}
		if diff {
			st.Differing++
		}
	}
	n := float64(len(a.Pix))
	if n > 0 {
		st.MSE = sq / n
	}
	if st.MSE == 0 {
		st.PSNR = math.Inf(1)
	} else {
		st.PSNR = 10 * math.Log10(255*255/st.MSE)
	}
	return st, nil
}

// Overlay renders frame a with differing pixels vs b highlighted in the
// given colour — useful for eyeballing coherence mispredictions.
func Overlay(a, b *fb.Framebuffer, highlight vm.Vec3) (*fb.Framebuffer, error) {
	m, err := Diff(a, b)
	if err != nil {
		return nil, err
	}
	out := a.Clone()
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			if m.At(x, y) {
				out.Set(x, y, highlight)
			}
		}
	}
	return out, nil
}
