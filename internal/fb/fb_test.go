package fb

import (
	"testing"
	"testing/quick"

	vm "nowrender/internal/vecmath"
)

func TestSetAtRoundTrip(t *testing.T) {
	f := New(4, 3)
	f.Set(2, 1, vm.V(1, 0.5, 0))
	r, g, b := f.At(2, 1)
	if r != 255 || g != 128 || b != 0 {
		t.Errorf("At = %d,%d,%d", r, g, b)
	}
}

func TestSetClamps(t *testing.T) {
	f := New(1, 1)
	f.Set(0, 0, vm.V(2, -1, 0.5))
	r, g, b := f.At(0, 0)
	if r != 255 || g != 0 || b != 128 {
		t.Errorf("clamped = %d,%d,%d", r, g, b)
	}
}

func TestAtColor(t *testing.T) {
	f := New(1, 1)
	f.SetRGB(0, 0, 255, 0, 51)
	c := f.AtColor(0, 0)
	if !c.ApproxEq(vm.V(1, 0, 0.2), 1e-9) {
		t.Errorf("AtColor = %v", c)
	}
}

func TestCloneIndependent(t *testing.T) {
	f := New(2, 2)
	f.SetRGB(0, 0, 10, 20, 30)
	c := f.Clone()
	c.SetRGB(0, 0, 99, 99, 99)
	if r, _, _ := f.At(0, 0); r != 10 {
		t.Error("clone mutation leaked into original")
	}
	if !f.Equal(f.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestEqualAndDiffCount(t *testing.T) {
	a := New(3, 3)
	b := New(3, 3)
	if !a.Equal(b) {
		t.Error("fresh buffers differ")
	}
	b.SetRGB(1, 1, 1, 2, 3)
	b.SetRGB(2, 2, 4, 5, 6)
	if a.Equal(b) {
		t.Error("differing buffers equal")
	}
	if got := a.DiffCount(b); got != 2 {
		t.Errorf("DiffCount = %d, want 2", got)
	}
	if a.Equal(New(2, 2)) {
		t.Error("different dimensions reported equal")
	}
}

func TestCopyPixelAndRect(t *testing.T) {
	src := New(4, 4)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			src.SetRGB(x, y, byte(x*10), byte(y*10), 7)
		}
	}
	dst := New(4, 4)
	dst.CopyPixel(src, 2, 3)
	if r, g, _ := dst.At(2, 3); r != 20 || g != 30 {
		t.Error("CopyPixel wrong")
	}
	dst2 := New(4, 4)
	dst2.CopyRect(src, NewRect(1, 1, 3, 3))
	if got := dst2.DiffCount(src); got != 16-4 {
		t.Errorf("after CopyRect, %d pixels differ, want 12", got)
	}
	if r, _, _ := dst2.At(0, 0); r != 0 {
		t.Error("CopyRect touched pixels outside the rect")
	}
}

func TestFill(t *testing.T) {
	f := New(3, 2)
	f.Fill(vm.V(0, 1, 0))
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if _, g, _ := f.At(x, y); g != 255 {
				t.Fatalf("Fill missed (%d,%d)", x, y)
			}
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(2, 3, 10, 7)
	if r.W() != 8 || r.H() != 4 || r.Area() != 32 {
		t.Errorf("W/H/Area = %d/%d/%d", r.W(), r.H(), r.Area())
	}
	if !r.Contains(2, 3) || r.Contains(10, 3) || r.Contains(2, 7) {
		t.Error("half-open containment broken")
	}
	if r.Empty() || !NewRect(5, 5, 5, 9).Empty() {
		t.Error("Empty broken")
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	got := a.Intersect(b)
	if got != NewRect(5, 5, 10, 10) {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Overlaps(b) {
		t.Error("overlap not detected")
	}
	c := NewRect(20, 20, 30, 30)
	if !a.Intersect(c).Empty() || a.Overlaps(c) {
		t.Error("disjoint intersect not empty")
	}
}

func TestRectSplit(t *testing.T) {
	r := NewRect(0, 0, 10, 4)
	a, b := r.Split()
	if a != NewRect(0, 0, 5, 4) || b != NewRect(5, 0, 10, 4) {
		t.Errorf("wide split = %v, %v", a, b)
	}
	tall := NewRect(0, 0, 2, 10)
	a, b = tall.Split()
	if a != NewRect(0, 0, 2, 5) || b != NewRect(0, 5, 2, 10) {
		t.Errorf("tall split = %v, %v", a, b)
	}
	// Area conservation.
	if a.Area()+b.Area() != tall.Area() {
		t.Error("split lost pixels")
	}
	// Single pixel cannot split.
	one := NewRect(3, 3, 4, 4)
	a, b = one.Split()
	if a != one || !b.Empty() {
		t.Errorf("unit split = %v, %v", a, b)
	}
}

func TestRectBlocks(t *testing.T) {
	// The paper's case: 240x320 frame tiled with 80x80 blocks = 12.
	frame := NewRect(0, 0, 240, 320)
	blocks := frame.Blocks(80, 80)
	if len(blocks) != 12 {
		t.Fatalf("blocks = %d, want 12", len(blocks))
	}
	total := 0
	for _, b := range blocks {
		total += b.Area()
	}
	if total != frame.Area() {
		t.Errorf("blocks cover %d pixels, frame has %d", total, frame.Area())
	}
	// Uneven tiling keeps remainder blocks.
	blocks = NewRect(0, 0, 100, 90).Blocks(80, 80)
	if len(blocks) != 4 {
		t.Fatalf("uneven blocks = %d, want 4", len(blocks))
	}
	total = 0
	for _, b := range blocks {
		total += b.Area()
	}
	if total != 9000 {
		t.Errorf("uneven blocks cover %d", total)
	}
}

func TestRectBlocksPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Blocks(0,0) did not panic")
		}
	}()
	NewRect(0, 0, 10, 10).Blocks(0, 0)
}

// Property: Split never loses or duplicates pixels.
func TestQuickSplitConserves(t *testing.T) {
	f := func(x0, y0 uint8, w, h uint8) bool {
		r := NewRect(int(x0), int(y0), int(x0)+int(w), int(y0)+int(h))
		if r.Empty() {
			return true
		}
		a, b := r.Split()
		if b.Empty() {
			return a == r
		}
		return a.Area()+b.Area() == r.Area() && !a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Blocks tile exactly: disjoint and covering.
func TestQuickBlocksTile(t *testing.T) {
	f := func(w, h, bw, bh uint8) bool {
		if w == 0 || h == 0 || bw == 0 || bh == 0 {
			return true
		}
		r := NewRect(0, 0, int(w), int(h))
		blocks := r.Blocks(int(bw), int(bh))
		area := 0
		for i, b := range blocks {
			area += b.Area()
			for j := i + 1; j < len(blocks); j++ {
				if b.Overlaps(blocks[j]) {
					return false
				}
			}
		}
		return area == r.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
