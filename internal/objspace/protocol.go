package objspace

import (
	"fmt"
	"math"

	"nowrender/internal/geom"
	"nowrender/internal/msg"
	"nowrender/internal/stats"
	vm "nowrender/internal/vecmath"
)

// Message tags for the remote ray-forwarding protocol, numbered far above
// the farm's task tags so a misrouted message fails loudly.
const (
	// TagOSRay carries a ForwardState from the client (or a previous
	// shard owner) to a shard owner.
	TagOSRay = 301
	// TagOSResult carries the settled ForwardState back to the client.
	TagOSResult = 302
)

// maxForwardDepth bounds the recursion depth accepted off the wire; the
// tracer's own maximum is far below this.
const maxForwardDepth = 64

// ForwardState is the complete state of a ray in flight between shard
// owners: enough to resume the front-to-back sweep on another machine and
// to route the final result home. It is exactly what the issue's protocol
// names: origin, direction, t-range, pixel id, depth, accumulated
// throughput — plus the running best hit, which is what makes the sweep
// resumable mid-flight.
type ForwardState struct {
	// Seq matches asynchronous results to requests on a remote link.
	Seq uint64
	// Pixel identifies the requesting pixel for attribution (-1 for
	// in-process forwards, which need no routing).
	Pixel int32
	// Shard is the destination shard index.
	Shard int32
	Ray   vm.Ray
	TMin  float64
	TMax  float64
	// Throughput is the accumulated path weight at the time the ray was
	// spawned (carried for attribution; shading happens on the owner).
	Throughput vm.Vec3
	// Found/BestObj/Best carry the nearest hit settled so far; BestObj is
	// a global object id, -1 when Found is false.
	Found   bool
	BestObj int32
	Best    geom.Hit
}

// EncodeForward serializes a ForwardState. Floats travel as IEEE-754
// bits, so every value round-trips bit-exactly — the property the
// byte-identity invariant leans on.
func EncodeForward(fs *ForwardState) []byte {
	b := msg.NewBuffer()
	b.PackInt(int64(fs.Seq))
	b.PackInt(int64(fs.Pixel))
	b.PackInt(int64(fs.Shard))
	b.PackInt(int64(fs.Ray.Kind))
	b.PackInt(int64(fs.Ray.Depth))
	packVec(b, fs.Ray.Origin)
	packVec(b, fs.Ray.Dir)
	b.PackFloat(fs.TMin)
	b.PackFloat(fs.TMax)
	packVec(b, fs.Throughput)
	b.PackBool(fs.Found)
	b.PackInt(int64(fs.BestObj))
	b.PackFloat(fs.Best.T)
	packVec(b, fs.Best.Point)
	packVec(b, fs.Best.Normal)
	b.PackBool(fs.Best.Inside)
	b.PackFloat(fs.Best.U)
	b.PackFloat(fs.Best.V)
	return b.Bytes()
}

// DecodeForward parses and validates a ForwardState. It never panics on
// hostile input (fuzzed); every structural and numeric violation returns
// an error instead.
func DecodeForward(data []byte) (ForwardState, error) {
	var fs ForwardState
	b := msg.FromBytes(data)
	fs.Seq = uint64(b.UnpackInt())
	fs.Pixel = int32(b.UnpackInt())
	fs.Shard = int32(b.UnpackInt())
	kind := b.UnpackInt()
	depth := b.UnpackInt()
	fs.Ray.Origin = unpackVec(b)
	fs.Ray.Dir = unpackVec(b)
	fs.TMin = b.UnpackFloat()
	fs.TMax = b.UnpackFloat()
	fs.Throughput = unpackVec(b)
	fs.Found = b.UnpackBool()
	fs.BestObj = int32(b.UnpackInt())
	fs.Best.T = b.UnpackFloat()
	fs.Best.Point = unpackVec(b)
	fs.Best.Normal = unpackVec(b)
	fs.Best.Inside = b.UnpackBool()
	fs.Best.U = b.UnpackFloat()
	fs.Best.V = b.UnpackFloat()
	if err := b.Err(); err != nil {
		return fs, err
	}
	if b.Len() != 0 {
		return fs, fmt.Errorf("objspace: %d trailing bytes after forward state", b.Len())
	}
	if kind < 0 || kind >= int64(vm.NumRayKinds) {
		return fs, fmt.Errorf("objspace: ray kind %d out of range", kind)
	}
	fs.Ray.Kind = vm.RayKind(kind)
	if depth < 0 || depth > maxForwardDepth {
		return fs, fmt.Errorf("objspace: ray depth %d out of range", depth)
	}
	fs.Ray.Depth = int(depth)
	if fs.Pixel < -1 {
		return fs, fmt.Errorf("objspace: pixel id %d out of range", fs.Pixel)
	}
	if fs.Shard < 0 || fs.Shard >= MaxShards {
		return fs, fmt.Errorf("objspace: shard %d out of range", fs.Shard)
	}
	if !finiteVec(fs.Ray.Origin) || !finiteVec(fs.Ray.Dir) || !finiteVec(fs.Throughput) {
		return fs, fmt.Errorf("objspace: non-finite vector in forward state")
	}
	if fs.Ray.Dir == (vm.Vec3{}) {
		return fs, fmt.Errorf("objspace: zero ray direction")
	}
	// t-range: TMin must be finite, TMax may be +Inf (open ray); NaN and
	// inverted ranges are rejected.
	if math.IsNaN(fs.TMin) || math.IsInf(fs.TMin, 0) {
		return fs, fmt.Errorf("objspace: non-finite tMin")
	}
	if math.IsNaN(fs.TMax) || math.IsInf(fs.TMax, -1) || fs.TMax < fs.TMin {
		return fs, fmt.Errorf("objspace: bad t-range [%g,%g]", fs.TMin, fs.TMax)
	}
	if fs.Found {
		if fs.BestObj < 0 {
			return fs, fmt.Errorf("objspace: found hit with object id %d", fs.BestObj)
		}
		if math.IsNaN(fs.Best.T) || math.IsInf(fs.Best.T, 0) ||
			!finiteVec(fs.Best.Point) || !finiteVec(fs.Best.Normal) {
			return fs, fmt.Errorf("objspace: non-finite hit in forward state")
		}
	} else if fs.BestObj != -1 {
		return fs, fmt.Errorf("objspace: no hit but object id %d", fs.BestObj)
	}
	return fs, nil
}

func packVec(b *msg.Buffer, v vm.Vec3) {
	b.PackFloat(v.X)
	b.PackFloat(v.Y)
	b.PackFloat(v.Z)
}

func unpackVec(b *msg.Buffer) vm.Vec3 {
	return vm.Vec3{X: b.UnpackFloat(), Y: b.UnpackFloat(), Z: b.UnpackFloat()}
}

func finiteVec(v vm.Vec3) bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// EncodeStats serializes an ObjSpaceStats report (the farm ships one per
// task just before TagTaskDone).
func EncodeStats(s stats.ObjSpaceStats) []byte {
	b := msg.NewBuffer()
	b.PackInt(int64(s.Shards))
	b.PackInt(int64(len(s.PerShard)))
	for _, sh := range s.PerShard {
		b.PackInt(int64(sh.RaysForwarded))
		b.PackInt(int64(sh.ForwardBytes))
		b.PackInt(int64(sh.Objects))
		b.PackInt(int64(sh.Tris))
		b.PackInt(int64(sh.ResidentBytes))
	}
	return b.Bytes()
}

// DecodeStats parses an ObjSpaceStats report, rejecting malformed input.
// Totals are recomputed from the per-shard rows rather than trusted.
func DecodeStats(data []byte) (stats.ObjSpaceStats, error) {
	var out stats.ObjSpaceStats
	b := msg.FromBytes(data)
	shards := b.UnpackInt()
	n := b.UnpackInt()
	if b.Err() != nil {
		return out, b.Err()
	}
	if shards < 0 || shards > MaxShards || n < 0 || n > MaxShards {
		return out, fmt.Errorf("objspace: stats shard count %d/%d out of range", shards, n)
	}
	out.Shards = int(shards)
	for i := int64(0); i < n; i++ {
		sh := stats.ObjSpaceShard{
			RaysForwarded: uint64(b.UnpackInt()),
			ForwardBytes:  uint64(b.UnpackInt()),
			Objects:       int(b.UnpackInt()),
			Tris:          int(b.UnpackInt()),
			ResidentBytes: uint64(b.UnpackInt()),
		}
		if sh.Objects < 0 || sh.Tris < 0 {
			return out, fmt.Errorf("objspace: negative counts in stats shard %d", i)
		}
		out.PerShard = append(out.PerShard, sh)
		out.RaysForwarded += sh.RaysForwarded
		out.ForwardBytes += sh.ForwardBytes
		if sh.ResidentBytes > out.PeakResidentBytes {
			out.PeakResidentBytes = sh.ResidentBytes
		}
	}
	if err := b.Err(); err != nil {
		return out, err
	}
	if b.Len() != 0 {
		return out, fmt.Errorf("objspace: %d trailing bytes after stats", b.Len())
	}
	return out, nil
}
