package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nowrender/internal/timeline"
)

// TestJobTimelineEndpoint: with Config.Timeline on, a finished job
// serves a Chrome trace on GET /jobs/{id}/timeline that parses back
// into a timeline with events; with it off, the endpoint is a 404.
func TestJobTimelineEndpoint(t *testing.T) {
	s := New(Config{Timeline: true})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st, err := s.Submit(JobSpec{Scene: "newton:3", W: 60, H: 80})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, s, st.ID); st.State != StateDone {
		t.Fatalf("job state = %s (err %q)", st.State, st.Error)
	}

	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("content type = %q", ct)
	}
	tl, err := timeline.ReadChromeTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Events() == 0 {
		t.Error("served timeline has no events")
	}

	if resp, err := http.Get(srv.URL + "/jobs/nope/timeline"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job timeline status = %d, want 404", resp.StatusCode)
		}
	}
}

// TestJobTimelineOffByDefault: without Config.Timeline the endpoint
// 404s even for a finished job — recording must be opt-in.
func TestJobTimelineOffByDefault(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	st, err := s.Submit(JobSpec{Scene: "newton:3", W: 60, H: 80})
	if err != nil {
		t.Fatal(err)
	}
	if st = waitDone(t, s, st.ID); st.State != StateDone {
		t.Fatalf("job state = %s (err %q)", st.State, st.Error)
	}
	resp, err := http.Get(srv.URL + "/jobs/" + st.ID + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("timeline status with recording off = %d, want 404", resp.StatusCode)
	}
}
