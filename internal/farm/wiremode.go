package farm

import "fmt"

// WireCompressMode is the daemon-facing view of the two compression
// config bits: -wire-compress historically was a boolean (off/flate),
// and grew span and adaptive modes with the span codec.
type WireCompressMode struct {
	Flate, Span bool
}

// ParseWireCompressMode maps a -wire-compress flag value onto the
// config bits. The historical boolean spellings stay valid: "true" (and
// the bare flag) means flate, "false" means off.
func ParseWireCompressMode(s string) (WireCompressMode, error) {
	switch s {
	case "off", "none", "false", "0":
		return WireCompressMode{}, nil
	case "flate", "true", "1", "":
		return WireCompressMode{Flate: true}, nil
	case "span":
		return WireCompressMode{Span: true}, nil
	case "adaptive":
		return WireCompressMode{Flate: true, Span: true}, nil
	}
	return WireCompressMode{}, fmt.Errorf("bad wire-compress mode %q (want off, flate, span, or adaptive)", s)
}

func (m WireCompressMode) String() string {
	switch {
	case m.Flate && m.Span:
		return "adaptive"
	case m.Span:
		return "span"
	case m.Flate:
		return "flate"
	}
	return "off"
}

// WireCompressFlag adapts WireCompressMode to the flag package.
// IsBoolFlag keeps the historical `-wire-compress` (no value) spelling
// working: the flag package then passes "true", which parses as flate.
type WireCompressFlag struct{ Mode WireCompressMode }

func (f *WireCompressFlag) String() string { return f.Mode.String() }

func (f *WireCompressFlag) Set(s string) error {
	m, err := ParseWireCompressMode(s)
	if err != nil {
		return err
	}
	f.Mode = m
	return nil
}

func (f *WireCompressFlag) IsBoolFlag() bool { return true }
