package scene

import (
	"math"
	"testing"

	vm "nowrender/internal/vecmath"
)

func TestSpotlightCone(t *testing.T) {
	l := &Light{
		Pos: vm.V(0, 10, 0),
		Spot: &Spotlight{
			PointAt: vm.V(0, 0, 0), Radius: 10, Falloff: 20,
		},
	}
	// Directly below: full intensity.
	if got := l.Attenuation(l.Pos, vm.V(0, 0, 0)); got != 1 {
		t.Errorf("on-axis attenuation = %v", got)
	}
	// Inside the inner cone (about 5.7 degrees off axis).
	if got := l.Attenuation(l.Pos, vm.V(1, 0, 0)); got != 1 {
		t.Errorf("inner-cone attenuation = %v", got)
	}
	// Between radius and falloff (about 15 degrees): partial.
	mid := l.Attenuation(l.Pos, vm.V(math.Tan(vm.Radians(15))*10, 0, 0))
	if mid <= 0 || mid >= 1 {
		t.Errorf("penumbra attenuation = %v, want in (0,1)", mid)
	}
	// Far outside: zero.
	if got := l.Attenuation(l.Pos, vm.V(10, 0, 0)); got != 0 {
		t.Errorf("outside-cone attenuation = %v", got)
	}
}

func TestSpotlightPenumbraMonotone(t *testing.T) {
	l := &Light{
		Pos:  vm.V(0, 10, 0),
		Spot: &Spotlight{PointAt: vm.V(0, 0, 0), Radius: 5, Falloff: 30},
	}
	prev := 1.1
	for deg := 0.0; deg <= 35; deg += 2.5 {
		x := math.Tan(vm.Radians(deg)) * 10
		a := l.Attenuation(l.Pos, vm.V(x, 0, 0))
		if a > prev+1e-12 {
			t.Fatalf("attenuation increased at %v degrees: %v -> %v", deg, prev, a)
		}
		prev = a
	}
}

func TestFadeDistance(t *testing.T) {
	l := &Light{Pos: vm.V(0, 0, 0), FadeDistance: 5, FadePower: 2}
	// At the fade distance: 2/(1+1) = 1.
	if got := l.Attenuation(l.Pos, vm.V(5, 0, 0)); math.Abs(got-1) > 1e-12 {
		t.Errorf("attenuation at fade distance = %v, want 1", got)
	}
	// Nearer: clamped to 1.
	if got := l.Attenuation(l.Pos, vm.V(1, 0, 0)); got != 1 {
		t.Errorf("near attenuation = %v, want 1 (clamped)", got)
	}
	// At 2x the fade distance: 2/(1+4) = 0.4.
	if got := l.Attenuation(l.Pos, vm.V(10, 0, 0)); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("far attenuation = %v, want 0.4", got)
	}
}

func TestFadeDefaultPower(t *testing.T) {
	l := &Light{Pos: vm.V(0, 0, 0), FadeDistance: 5}
	if got := l.Attenuation(l.Pos, vm.V(10, 0, 0)); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("default power attenuation = %v, want 0.4 (power 2)", got)
	}
}

func TestPlainLightNoAttenuation(t *testing.T) {
	l := &Light{Pos: vm.V(0, 0, 0)}
	if got := l.Attenuation(l.Pos, vm.V(100, 0, 0)); got != 1 {
		t.Errorf("plain light attenuation = %v", got)
	}
}

func TestSpotAndFadeCompose(t *testing.T) {
	l := &Light{
		Pos:          vm.V(0, 10, 0),
		Spot:         &Spotlight{PointAt: vm.V(0, 0, 0), Radius: 45, Falloff: 60},
		FadeDistance: 5, FadePower: 2,
	}
	// On axis at distance 10: spot full, fade = 0.4.
	if got := l.Attenuation(l.Pos, vm.V(0, 0, 0)); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("composed attenuation = %v, want 0.4", got)
	}
}
