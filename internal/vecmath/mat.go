package vecmath

import (
	"fmt"
	"math"
)

// Mat4 is a 4x4 matrix in row-major order representing an affine
// transform. Only the top three rows are meaningful for the transforms the
// renderer uses (rotation, scale, translation); the bottom row is kept so
// the type remains a general 4x4 for tests.
type Mat4 struct {
	M [4][4]float64
}

// Identity returns the identity transform.
func Identity() Mat4 {
	var m Mat4
	for i := 0; i < 4; i++ {
		m.M[i][i] = 1
	}
	return m
}

// Translate returns a translation by (x,y,z).
func Translate(x, y, z float64) Mat4 {
	m := Identity()
	m.M[0][3] = x
	m.M[1][3] = y
	m.M[2][3] = z
	return m
}

// TranslateV returns a translation by vector v.
func TranslateV(v Vec3) Mat4 { return Translate(v.X, v.Y, v.Z) }

// Scaling returns a non-uniform scale by (x,y,z).
func Scaling(x, y, z float64) Mat4 {
	m := Identity()
	m.M[0][0] = x
	m.M[1][1] = y
	m.M[2][2] = z
	return m
}

// RotateX returns a rotation about the X axis by angle radians.
func RotateX(angle float64) Mat4 {
	s, c := math.Sin(angle), math.Cos(angle)
	m := Identity()
	m.M[1][1], m.M[1][2] = c, -s
	m.M[2][1], m.M[2][2] = s, c
	return m
}

// RotateY returns a rotation about the Y axis by angle radians.
func RotateY(angle float64) Mat4 {
	s, c := math.Sin(angle), math.Cos(angle)
	m := Identity()
	m.M[0][0], m.M[0][2] = c, s
	m.M[2][0], m.M[2][2] = -s, c
	return m
}

// RotateZ returns a rotation about the Z axis by angle radians.
func RotateZ(angle float64) Mat4 {
	s, c := math.Sin(angle), math.Cos(angle)
	m := Identity()
	m.M[0][0], m.M[0][1] = c, -s
	m.M[1][0], m.M[1][1] = s, c
	return m
}

// RotateAxis returns a rotation of angle radians about an arbitrary unit
// axis (Rodrigues' formula).
func RotateAxis(axis Vec3, angle float64) Mat4 {
	a := axis.Norm()
	s, c := math.Sin(angle), math.Cos(angle)
	t := 1 - c
	m := Identity()
	m.M[0][0] = t*a.X*a.X + c
	m.M[0][1] = t*a.X*a.Y - s*a.Z
	m.M[0][2] = t*a.X*a.Z + s*a.Y
	m.M[1][0] = t*a.X*a.Y + s*a.Z
	m.M[1][1] = t*a.Y*a.Y + c
	m.M[1][2] = t*a.Y*a.Z - s*a.X
	m.M[2][0] = t*a.X*a.Z - s*a.Y
	m.M[2][1] = t*a.Y*a.Z + s*a.X
	m.M[2][2] = t*a.Z*a.Z + c
	return m
}

// MulM returns the matrix product a * b (apply b first, then a).
func (a Mat4) MulM(b Mat4) Mat4 {
	var out Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += a.M[i][k] * b.M[k][j]
			}
			out.M[i][j] = s
		}
	}
	return out
}

// MulPoint applies the affine transform to a point (w = 1).
func (a Mat4) MulPoint(p Vec3) Vec3 {
	return Vec3{
		a.M[0][0]*p.X + a.M[0][1]*p.Y + a.M[0][2]*p.Z + a.M[0][3],
		a.M[1][0]*p.X + a.M[1][1]*p.Y + a.M[1][2]*p.Z + a.M[1][3],
		a.M[2][0]*p.X + a.M[2][1]*p.Y + a.M[2][2]*p.Z + a.M[2][3],
	}
}

// MulDir applies the transform to a direction (w = 0, no translation).
func (a Mat4) MulDir(d Vec3) Vec3 {
	return Vec3{
		a.M[0][0]*d.X + a.M[0][1]*d.Y + a.M[0][2]*d.Z,
		a.M[1][0]*d.X + a.M[1][1]*d.Y + a.M[1][2]*d.Z,
		a.M[2][0]*d.X + a.M[2][1]*d.Y + a.M[2][2]*d.Z,
	}
}

// MulNormal transforms a surface normal by the inverse-transpose of the
// matrix. The caller supplies the inverse; this applies its transpose.
func (inv Mat4) MulNormal(n Vec3) Vec3 {
	return Vec3{
		inv.M[0][0]*n.X + inv.M[1][0]*n.Y + inv.M[2][0]*n.Z,
		inv.M[0][1]*n.X + inv.M[1][1]*n.Y + inv.M[2][1]*n.Z,
		inv.M[0][2]*n.X + inv.M[1][2]*n.Y + inv.M[2][2]*n.Z,
	}
}

// Transpose returns the transpose of the matrix.
func (a Mat4) Transpose() Mat4 {
	var out Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out.M[i][j] = a.M[j][i]
		}
	}
	return out
}

// Inverse returns the inverse of the matrix and true, or the identity and
// false if the matrix is singular. General Gauss-Jordan with partial
// pivoting; transforms are built once per frame so this is not hot.
func (a Mat4) Inverse() (Mat4, bool) {
	aug := [4][8]float64{}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			aug[i][j] = a.M[i][j]
		}
		aug[i][4+i] = 1
	}
	for col := 0; col < 4; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-12 {
			return Identity(), false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		pv := aug[col][col]
		for j := 0; j < 8; j++ {
			aug[col][j] /= pv
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 8; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var out Mat4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out.M[i][j] = aug[i][4+j]
		}
	}
	return out, true
}

// ApproxEq reports whether two matrices agree element-wise within tol.
func (a Mat4) ApproxEq(b Mat4, tol float64) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(a.M[i][j]-b.M[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// String implements fmt.Stringer.
func (a Mat4) String() string {
	return fmt.Sprintf("[%v %v %v %v]", a.M[0], a.M[1], a.M[2], a.M[3])
}

// Transform pairs a matrix with its precomputed inverse so objects can map
// rays into object space and normals back out without re-inverting.
type Transform struct {
	Fwd, Inv Mat4
}

// NewTransform builds a Transform from a forward matrix. It panics if the
// matrix is singular, which indicates a malformed scene (zero scale).
func NewTransform(fwd Mat4) Transform {
	inv, ok := fwd.Inverse()
	if !ok {
		panic("vecmath: singular transform")
	}
	return Transform{Fwd: fwd, Inv: inv}
}

// IdentityTransform returns the identity Transform.
func IdentityTransform() Transform {
	return Transform{Fwd: Identity(), Inv: Identity()}
}

// Compose returns the transform that applies t first, then u.
func (t Transform) Compose(u Transform) Transform {
	return Transform{Fwd: u.Fwd.MulM(t.Fwd), Inv: t.Inv.MulM(u.Inv)}
}
