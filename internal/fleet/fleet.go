// Package fleet is the worker-pool abstraction between the scheduler
// and the farm drivers. The pre-split service called
// farm.RenderLocal/RenderVirtual directly, so the worker fleet was
// implicitly owned by the one service instance; the Pool makes worker
// capacity an explicit, leasable resource — schedulers lease slots
// before a farm run and return them after — so several schedulers (the
// multi-master control plane of ROADMAP item 1) can share one elastic
// pool, and members can join or leave while runs are in flight.
//
// A lease is capacity accounting, not worker pinning: the farm drivers
// still spin up their own workers per run; the pool bounds how many run
// at once across everyone leasing from it.
package fleet

import (
	"context"
	"fmt"
	"sync"

	"nowrender/internal/farm"
)

// Driver renders one farm run. Implementations wrap the farm backends.
type Driver interface {
	Name() string
	Render(cfg farm.Config) (*farm.Result, error)
}

// LocalDriver runs goroutine workers over the PVM-like protocol.
type LocalDriver struct{}

func (LocalDriver) Name() string { return "local" }
func (LocalDriver) Render(cfg farm.Config) (*farm.Result, error) {
	return farm.RenderLocal(cfg)
}

// VirtualDriver runs the deterministic virtual NOW.
type VirtualDriver struct{}

func (VirtualDriver) Name() string { return "virtual" }
func (VirtualDriver) Render(cfg farm.Config) (*farm.Result, error) {
	return farm.RenderVirtual(cfg)
}

// Stats snapshots a pool.
type Stats struct {
	// Capacity is the current worker-slot capacity (< 0 = unlimited).
	// While leases outlive a departed member, the member's in-use slots
	// stay counted here until they return (the lame-duck drain), so
	// Leased never exceeds Capacity.
	Capacity int
	// Leased is the number of slots currently out on leases.
	Leased int
	// Members maps live member names to the capacity they contribute
	// (the base capacity passed to NewPool is anonymous).
	Members map[string]int
	// Leases counts leases ever granted; Waits counts Lease calls that
	// had to block for capacity.
	Leases, Waits uint64
	// Renews and Expired count lease renewals and expiries. A local
	// Pool's leases have no term, so both stay zero; the brokered
	// multi-master pool (internal/fleetd) reports the cluster totals.
	Renews, Expired uint64
}

// Grant is worker capacity granted to one farm run: the common surface
// of a local Pool's *Lease and the broker-backed remote lease.
type Grant interface {
	// Granted is the slot count the run must size itself to.
	Granted() int
	// Return gives the capacity back exactly once; further calls are
	// no-ops.
	Return()
}

// Leaser is a source of worker-capacity grants. The service renders
// through this interface so a single replica's private Pool and the
// multi-master broker client are interchangeable.
type Leaser interface {
	// Acquire blocks until up to n slots are granted (n <= 0 asks for
	// the whole pool) or ctx ends.
	Acquire(ctx context.Context, n int) (Grant, error)
	// Stats snapshots the capacity this leaser draws from.
	Stats() Stats
}

// Pool is a shared, elastic pot of worker slots with lease/return
// semantics. The zero value is unusable; construct with NewPool.
type Pool struct {
	mu      sync.Mutex
	base    int // capacity from NewPool (unlimited when <= 0 and no members)
	bounded bool
	members map[string]int
	leased  int
	// draining is departed-member capacity still out on leases: Leave
	// defers the decrement for slots in use, so accounting never shows
	// leased > capacity. Returns burn it down (reclaimLocked).
	draining int
	leases   uint64
	waits    uint64
	// freed is closed and replaced whenever capacity frees up, waking
	// blocked Lease calls.
	freed   chan struct{}
	drivers map[string]Driver
}

// NewPool returns a pool with the given base slot capacity; capacity
// <= 0 means unlimited (every lease is granted in full, immediately)
// until members with finite capacity join.
func NewPool(capacity int) *Pool {
	p := &Pool{
		base:    capacity,
		bounded: capacity > 0,
		members: make(map[string]int),
		freed:   make(chan struct{}),
		drivers: make(map[string]Driver),
	}
	p.Register(LocalDriver{})
	p.Register(VirtualDriver{})
	return p
}

// Register adds (or replaces) a driver under its name.
func (p *Pool) Register(d Driver) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drivers[d.Name()] = d
}

// Driver returns the named driver.
func (p *Pool) Driver(name string) (Driver, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	d, ok := p.drivers[name]
	if !ok {
		return nil, fmt.Errorf("fleet: unknown driver %q", name)
	}
	return d, nil
}

// hardCapLocked is the registered slot capacity (base + members), or
// -1 for unlimited — excluding any draining departed-member slots.
func (p *Pool) hardCapLocked() int {
	total := 0
	if p.bounded {
		total = p.base
	}
	for _, c := range p.members {
		total += c
	}
	if !p.bounded && len(p.members) == 0 {
		return -1
	}
	return total
}

// capacityLocked is the current total slot capacity, or -1 for
// unlimited. Draining slots — a departed member's capacity still out on
// leases — stay counted until returned, so leased never exceeds it.
func (p *Pool) capacityLocked() int {
	hard := p.hardCapLocked()
	if hard < 0 {
		return -1
	}
	return hard + p.draining
}

// overLocked is how far leased overshoots the registered capacity —
// the slots that must keep draining (0 when unlimited).
func (p *Pool) overLocked() int {
	hard := p.hardCapLocked()
	if hard < 0 {
		return 0
	}
	if over := p.leased - hard; over > 0 {
		return over
	}
	return 0
}

// reclaimLocked shrinks the draining bucket as leases come home: it
// never exceeds the overshoot of leased beyond the registered capacity,
// and never grows here (only membership changes grow it).
func (p *Pool) reclaimLocked() {
	if over := p.overLocked(); over < p.draining {
		p.draining = over
	}
}

// Join adds (or resizes) a named member contributing slots of
// capacity, waking waiters if capacity grew. Joining a member makes an
// unlimited pool bounded: capacity is then base + members. Shrinking a
// member below its leased share defers the decrement exactly like
// Leave (the draining bucket).
func (p *Pool) Join(member string, slots int) {
	if slots < 0 {
		slots = 0
	}
	p.mu.Lock()
	p.members[member] = slots
	p.draining = p.overLocked()
	p.wakeLocked()
	p.mu.Unlock()
}

// Leave removes a member. Its idle slots vanish from capacity
// immediately; slots out on leases keep backing the accounting
// (the draining bucket) until their leases return, which is how a
// departing workstation's in-flight run drains. Leased therefore never
// exceeds capacity, and no lease is revoked. A base-unlimited pool
// whose last member leaves reverts to unlimited.
func (p *Pool) Leave(member string) {
	p.mu.Lock()
	delete(p.members, member)
	p.draining = p.overLocked()
	p.mu.Unlock()
}

// wakeLocked signals blocked Lease calls that capacity changed.
func (p *Pool) wakeLocked() {
	close(p.freed)
	p.freed = make(chan struct{})
}

// Lease is granted worker capacity. Return it exactly once.
type Lease struct {
	pool *Pool
	// Slots is the granted capacity: min(requested, pool capacity) for
	// a bounded pool, the full request for an unlimited one.
	Slots int
	once  sync.Once
}

// Granted implements Grant.
func (l *Lease) Granted() int { return l.Slots }

// Return gives the lease's slots back, waking waiters. Idempotent.
func (l *Lease) Return() {
	l.once.Do(func() {
		l.pool.mu.Lock()
		l.pool.leased -= l.Slots
		l.pool.reclaimLocked()
		l.pool.wakeLocked()
		l.pool.mu.Unlock()
	})
}

// Lease blocks until n slots are available (or ctx is done) and grants
// them. A request larger than the pool's whole capacity is clamped to
// it — the caller sizes its run to Lease.Slots — so an over-ask waits
// for an idle pool, not forever. n <= 0 asks for the whole pool.
func (p *Pool) Lease(ctx context.Context, n int) (*Lease, error) {
	p.mu.Lock()
	first := true
	for {
		cap := p.capacityLocked()
		grant := n
		if cap >= 0 {
			// Draining slots never back new grants: a pool whose whole
			// registered capacity is gone refuses rather than queueing
			// behind leases that will not be replaced.
			if p.hardCapLocked() == 0 {
				p.mu.Unlock()
				return nil, fmt.Errorf("fleet: pool has no capacity")
			}
			if n <= 0 || grant > cap {
				grant = cap
			}
			if p.leased+grant > cap {
				if first {
					p.waits++
					first = false
				}
				ch := p.freed
				p.mu.Unlock()
				select {
				case <-ch:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				p.mu.Lock()
				continue
			}
		} else if grant <= 0 {
			grant = 1
		}
		p.leased += grant
		p.leases++
		p.mu.Unlock()
		return &Lease{pool: p, Slots: grant}, nil
	}
}

// Acquire implements Leaser over Lease, so a Pool plugs in anywhere a
// broker-backed pool does.
func (p *Pool) Acquire(ctx context.Context, n int) (Grant, error) {
	l, err := p.Lease(ctx, n)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	members := make(map[string]int, len(p.members))
	for m, c := range p.members {
		members[m] = c
	}
	return Stats{
		Capacity: p.capacityLocked(),
		Leased:   p.leased,
		Members:  members,
		Leases:   p.leases,
		Waits:    p.waits,
	}
}
