package trace

import (
	"math"
	"testing"

	"nowrender/internal/fb"
	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// testScene builds a small scene: red matte sphere on a white floor with
// one light behind the camera.
func testScene() *scene.Scene {
	s := scene.New("test")
	s.Camera = scene.Camera{Pos: vm.V(0, 1, 6), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 60}
	s.Background = material.RGB(0.1, 0.1, 0.3)
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), material.Matte(material.Red), nil)
	s.AddLight("key", vm.V(5, 8, 6), material.White)
	return s
}

func newTracer(t *testing.T, s *scene.Scene, opts Options) *FrameTracer {
	t.Helper()
	ft, err := New(s, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestNewValidates(t *testing.T) {
	s := testScene()
	if _, err := New(s, 5, Options{}); err == nil {
		t.Error("out-of-range frame accepted")
	}
	if _, err := New(s, -1, Options{}); err == nil {
		t.Error("negative frame accepted")
	}
	s.Frames = 0
	if _, err := New(s, 0, Options{}); err == nil {
		t.Error("invalid scene accepted")
	}
}

func TestBackgroundForEscapingRay(t *testing.T) {
	s := testScene()
	ft := newTracer(t, s, Options{})
	// Ray pointing up into the sky.
	c := ft.traceRay(vm.Ray{Origin: vm.V(0, 2, 6), Dir: vm.V(0, 1, 0), Kind: vm.CameraRay})
	if !c.ApproxEq(s.Background, 1e-12) {
		t.Errorf("sky colour = %v, want background", c)
	}
}

func TestSphereVisibleInCenter(t *testing.T) {
	ft := newTracer(t, testScene(), Options{})
	c := ft.TracePixel(120, 100, 240, 200) // centre pixel: the sphere
	// The red sphere must dominate: red channel well above blue.
	if c.X <= c.Z || c.X < 0.05 {
		t.Errorf("centre pixel = %v, expected red-dominated", c)
	}
}

func TestDiffuseFalloff(t *testing.T) {
	// A sphere lit from +X: the +X side must be brighter than the
	// terminator region.
	s := scene.New("falloff")
	s.Camera = scene.Camera{Pos: vm.V(0, 0, 6), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	s.Add("ball", geom.NewSphere(vm.V(0, 0, 0), 1), material.Matte(material.White), nil)
	s.AddLight("side", vm.V(20, 0, 0), material.White)
	ft := newTracer(t, s, Options{})

	lit := ft.traceRay(vm.Ray{Origin: vm.V(3, 0, 1), Dir: vm.V(0.8, 0, 0).Sub(vm.V(3, 0, 1)).Norm(), Kind: vm.CameraRay})
	grazing := ft.traceRay(vm.Ray{Origin: vm.V(0, 3, 1), Dir: vm.V(0, 0.95, 0).Sub(vm.V(0, 3, 1)).Norm(), Kind: vm.CameraRay})
	if lit.X <= grazing.X {
		t.Errorf("lit side %v not brighter than grazing %v", lit, grazing)
	}
}

func TestShadow(t *testing.T) {
	// Light directly above; a small sphere floats above the floor point
	// under test, so that point must be in shadow.
	s := scene.New("shadow")
	s.Camera = scene.Camera{Pos: vm.V(0, 3, 8), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	s.Add("blocker", geom.NewSphere(vm.V(0, 2, 0), 0.5), material.Matte(material.Red), nil)
	s.AddLight("top", vm.V(0, 10, 0), material.White)
	ft := newTracer(t, s, Options{})

	shadowed := ft.traceRay(aimAt(vm.V(0, 3, 8), vm.V(0, 0, 0)))
	open := ft.traceRay(aimAt(vm.V(0, 3, 8), vm.V(3, 0, 0)))
	if shadowed.X >= open.X {
		t.Errorf("shadowed point %v not darker than open point %v", shadowed, open)
	}
	// Shadowed point still receives ambient light, not pure black.
	if shadowed.MaxComponent() <= 0 {
		t.Error("shadow is pitch black; ambient term missing")
	}
}

func aimAt(from, to vm.Vec3) vm.Ray {
	return vm.Ray{Origin: from, Dir: to.Sub(from).Norm(), Kind: vm.CameraRay}
}

func TestMirrorReflection(t *testing.T) {
	// A perfect mirror floor under a red sphere: looking at the floor in
	// front of the sphere must pick up red via reflection.
	s := scene.New("mirror")
	s.Camera = scene.Camera{Pos: vm.V(0, 2, 8), LookAt: vm.V(0, 0, 2), Up: vm.V(0, 1, 0), FOV: 60}
	mirror := material.NewMaterial(material.Solid{C: material.Black},
		material.Finish{Reflect: 1.0, IOR: 1})
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), mirror, nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1.2, 0), 1), material.Matte(material.Red), nil)
	s.AddLight("key", vm.V(4, 8, 8), material.White)
	ft := newTracer(t, s, Options{})

	// Aim at the floor point whose mirror image is the sphere: the
	// reflected camera sees the sphere from below.
	c := ft.traceRay(aimAt(s.Camera.Pos, vm.V(0, 0, 2.2)))
	if c.X <= 0.02 || c.X <= c.Z {
		t.Errorf("mirror floor shows %v, expected red reflection", c)
	}
	if ft.Counters.ByKind[vm.ReflectedRay] == 0 {
		t.Error("no reflected rays counted")
	}
}

func TestRefractionThroughGlass(t *testing.T) {
	// Glass sphere between camera and a green wall: the pixel through the
	// sphere centre must still be green-dominated (light passes through).
	s := scene.New("glass")
	s.Camera = scene.Camera{Pos: vm.V(0, 0, 8), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 40}
	s.Background = material.Black
	glass := material.NewMaterial(material.Solid{C: material.White}, material.GlassFinish())
	s.Add("lens", geom.NewSphere(vm.V(0, 0, 0), 1), glass, nil)
	s.Add("wall", geom.NewPlane(vm.V(0, 0, 1), -4), material.Matte(material.Green), nil)
	s.AddLight("key", vm.V(0, 2, 8), material.White)
	ft := newTracer(t, s, Options{})

	c := ft.traceRay(aimAt(s.Camera.Pos, vm.V(0, 0, 0)))
	if c.Y <= 0.02 {
		t.Errorf("through-glass pixel %v has no green; refraction broken", c)
	}
	if ft.Counters.ByKind[vm.RefractedRay] == 0 {
		t.Error("no refracted rays counted")
	}
}

func TestMaxDepthTerminates(t *testing.T) {
	// Two parallel mirrors would recurse forever without a depth bound.
	s := scene.New("mirrors")
	s.Camera = scene.Camera{Pos: vm.V(0, 0, 0.5), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	mirror := material.NewMaterial(material.Solid{C: material.Black},
		material.Finish{Reflect: 1, IOR: 1})
	s.Add("m1", geom.NewPlane(vm.V(0, 0, 1), -2), mirror, nil)
	s.Add("m2", geom.NewPlane(vm.V(0, 0, 1), 2), mirror, nil)
	s.MaxDepth = 5
	ft := newTracer(t, s, Options{})
	ft.traceRay(vm.Ray{Origin: vm.V(0, 0, 0.5), Dir: vm.V(0, 0, -1), Kind: vm.CameraRay})
	total := ft.Counters.ByKind[vm.CameraRay] + ft.Counters.ByKind[vm.ReflectedRay]
	if total > 5 {
		t.Errorf("depth bound ignored: %d rays cast", total)
	}
	if ft.Counters.ByKind[vm.ReflectedRay] != 4 {
		t.Errorf("reflected rays = %d, want 4 (depth 5)", ft.Counters.ByKind[vm.ReflectedRay])
	}
}

func TestMaxDepthOverride(t *testing.T) {
	s := scene.New("mirrors")
	s.Camera = scene.Camera{Pos: vm.V(0, 0, 0.5), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	mirror := material.NewMaterial(material.Solid{C: material.Black}, material.Finish{Reflect: 1, IOR: 1})
	s.Add("m1", geom.NewPlane(vm.V(0, 0, 1), -2), mirror, nil)
	s.Add("m2", geom.NewPlane(vm.V(0, 0, 1), 2), mirror, nil)
	ft := newTracer(t, s, Options{MaxDepth: 2})
	ft.traceRay(vm.Ray{Origin: vm.V(0, 0, 0.5), Dir: vm.V(0, 0, -1), Kind: vm.CameraRay})
	if got := ft.Counters.ByKind[vm.ReflectedRay]; got != 1 {
		t.Errorf("reflected rays = %d, want 1 with MaxDepth=2", got)
	}
}

func TestShadowRaysCounted(t *testing.T) {
	ft := newTracer(t, testScene(), Options{})
	ft.TracePixel(120, 100, 240, 200)
	if ft.Counters.ByKind[vm.ShadowRay] == 0 {
		t.Error("no shadow rays counted for a lit hit")
	}
	if ft.Counters.ByKind[vm.CameraRay] != 1 {
		t.Errorf("camera rays = %d, want 1", ft.Counters.ByKind[vm.CameraRay])
	}
}

func TestGridIntersectMatchesBruteForce(t *testing.T) {
	s := scene.New("brute")
	s.Camera = scene.Camera{Pos: vm.V(0, 2, 10), LookAt: vm.V(0, 0, 0), Up: vm.V(0, 1, 0), FOV: 60}
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), -2), material.Matte(material.White), nil)
	rng := vm.NewRNG(7)
	for i := 0; i < 25; i++ {
		c := vm.V(rng.InRange(-4, 4), rng.InRange(-2, 4), rng.InRange(-4, 4))
		s.Add("s", geom.NewSphere(c, rng.InRange(0.2, 0.8)), material.Matte(material.Red), nil)
	}
	s.AddLight("l", vm.V(0, 10, 0), material.White)
	ft := newTracer(t, s, Options{})
	objs := ft.Objects()

	brute := func(r vm.Ray) (float64, int) {
		bestT := math.Inf(1)
		bestI := -1
		for i, ro := range objs {
			if h, ok := ro.Shape.Intersect(r, vm.ShadowEps, bestT); ok {
				bestT, bestI = h.T, i
			}
		}
		return bestT, bestI
	}

	for trial := 0; trial < 3000; trial++ {
		o := vm.V(rng.InRange(-8, 8), rng.InRange(-3, 8), rng.InRange(-8, 12))
		d := vm.V(rng.InRange(-1, 1), rng.InRange(-1, 1), rng.InRange(-1, 1))
		if d.Len() < 0.05 {
			continue
		}
		r := vm.Ray{Origin: o, Dir: d.Norm()}
		wantT, wantI := brute(r)
		h, obj, ok := ft.Intersect(r, vm.ShadowEps, math.Inf(1))
		if (wantI >= 0) != ok {
			t.Fatalf("trial %d: hit mismatch: brute=%v grid=%v ray=%+v", trial, wantI >= 0, ok, r)
		}
		if !ok {
			continue
		}
		if math.Abs(h.T-wantT) > 1e-9 {
			t.Fatalf("trial %d: T mismatch: brute=%v grid=%v", trial, wantT, h.T)
		}
		gotI := -1
		for i := range objs {
			if &objs[i] == obj {
				gotI = i
			}
		}
		if gotI != wantI && math.Abs(h.T-wantT) > 1e-12 {
			t.Fatalf("trial %d: object mismatch: brute=%d grid=%d", trial, wantI, gotI)
		}
	}
}

func TestRenderRegionMatchesPerPixel(t *testing.T) {
	s := testScene()
	ft := newTracer(t, s, Options{})
	img := fb.New(32, 24)
	ft.RenderFull(img)
	ft2 := newTracer(t, s, Options{})
	for y := 0; y < 24; y++ {
		for x := 0; x < 32; x++ {
			want := fb.New(1, 1)
			want.Set(0, 0, ft2.TracePixel(x, y, 32, 24))
			wr, wg, wb := want.At(0, 0)
			gr, gg, gb := img.At(x, y)
			if wr != gr || wg != gg || wb != gb {
				t.Fatalf("pixel (%d,%d): region render %v vs per-pixel %v",
					x, y, [3]byte{gr, gg, gb}, [3]byte{wr, wg, wb})
			}
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	s := testScene()
	a := fb.New(48, 40)
	b := fb.New(48, 40)
	newTracer(t, s, Options{}).RenderFull(a)
	newTracer(t, s, Options{}).RenderFull(b)
	if !a.Equal(b) {
		t.Error("two renders of the same frame differ")
	}
}

func TestSupersamplingDeterministic(t *testing.T) {
	s := testScene()
	a := fb.New(16, 16)
	b := fb.New(16, 16)
	newTracer(t, s, Options{SamplesPerPixel: 4}).RenderFull(a)
	newTracer(t, s, Options{SamplesPerPixel: 4}).RenderFull(b)
	if !a.Equal(b) {
		t.Error("supersampled renders differ; jitter is not seeded per pixel")
	}
}

type recordObserver struct {
	rays []vm.Ray
	tds  []float64
}

func (ro *recordObserver) ObserveRay(r vm.Ray, tHit float64) {
	ro.rays = append(ro.rays, r)
	ro.tds = append(ro.tds, tHit)
}

func TestObserverSeesAllRayKinds(t *testing.T) {
	s := scene.New("obs")
	s.Camera = scene.Camera{Pos: vm.V(0, 1, 6), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 60}
	glass := material.NewMaterial(material.Solid{C: material.White}, material.GlassFinish())
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), material.Matte(material.White), nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), glass, nil)
	s.AddLight("key", vm.V(5, 8, 6), material.White)
	obs := &recordObserver{}
	ft := newTracer(t, s, Options{Observer: obs})
	ft.TracePixel(120, 100, 240, 200)

	kinds := map[vm.RayKind]bool{}
	for _, r := range obs.rays {
		kinds[r.Kind] = true
	}
	for _, k := range []vm.RayKind{vm.CameraRay, vm.ShadowRay, vm.RefractedRay} {
		if !kinds[k] {
			t.Errorf("observer missed %v rays (saw %v)", k, kinds)
		}
	}
}

func TestObserverHitDistances(t *testing.T) {
	s := testScene()
	obs := &recordObserver{}
	ft := newTracer(t, s, Options{Observer: obs})
	// A ray guaranteed to hit the sphere at distance 4 (camera at z=6,
	// sphere front at z=1... aimed dead centre).
	ft.traceRay(aimAt(vm.V(0, 1, 6), vm.V(0, 1, 0)))
	if len(obs.rays) == 0 {
		t.Fatal("observer saw nothing")
	}
	if obs.rays[0].Kind != vm.CameraRay {
		t.Fatalf("first observed ray kind = %v", obs.rays[0].Kind)
	}
	if math.Abs(obs.tds[0]-5) > 1e-6 {
		t.Errorf("camera ray hit distance = %v, want 5 (sphere front)", obs.tds[0])
	}
}

func TestGridResOption(t *testing.T) {
	s := testScene()
	ft := newTracer(t, s, Options{GridRes: 8})
	nx, ny, nz := ft.Grid().Dims()
	if nx != 8 || ny != 8 || nz != 8 {
		t.Errorf("grid dims = %d,%d,%d, want 8s", nx, ny, nz)
	}
	// Rendering still correct vs auto grid.
	a := fb.New(24, 20)
	b := fb.New(24, 20)
	ft.RenderFull(a)
	newTracer(t, s, Options{}).RenderFull(b)
	if !a.Equal(b) {
		t.Error("grid resolution changed the image")
	}
}
