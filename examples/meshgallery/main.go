// Meshgallery renders the large-mesh object-space stress scene: nine
// baked instances of a procedural heightfield tile on pedestals. The
// tile is loaded from scenes/gallery-tile.obj when present (falling back
// to the builtin generator, which produces identical geometry), so this
// example doubles as the OBJ-pipeline demo. With -shards it renders
// through the object-space partition and reports forwarding traffic;
// -emit-obj regenerates the committed OBJ file.
//
//	go run ./examples/meshgallery -out meshgallery-out/
//	go run ./examples/meshgallery -shards 4
//	go run ./examples/meshgallery -emit-obj scenes/gallery-tile.obj
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nowrender"
	"nowrender/internal/objfile"
	"nowrender/internal/objspace"
	"nowrender/internal/scenes"
	"nowrender/internal/trace"
)

func main() {
	var (
		frames  = flag.Int("frames", 8, "animation length")
		width   = flag.Int("w", 160, "width")
		height  = flag.Int("h", 120, "height")
		shards  = flag.Int("shards", 0, "object-space shard count (0 = replicated)")
		objPath = flag.String("obj", "scenes/gallery-tile.obj", "tile mesh OBJ (missing = builtin generator)")
		emitOBJ = flag.String("emit-obj", "", "write the procedural tile mesh to this OBJ path and exit")
		outDir  = flag.String("out", "", "output directory for frame TGAs (empty = stats only)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "meshgallery: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *emitOBJ != "" {
		if err := objfile.WriteFile(*emitOBJ, scenes.MeshGalleryTile()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *emitOBJ)
		return
	}
	if err := run(*frames, *width, *height, *shards, *objPath, *outDir); err != nil {
		log.Fatal(err)
	}
}

func run(frames, w, h, shards int, objPath, outDir string) error {
	tile := scenes.MeshGalleryTile()
	source := "builtin generator"
	if m, err := objfile.Load(objPath); err == nil {
		tile, source = m, objPath
	}
	sc := scenes.MeshGalleryFrom(tile, frames)
	fmt.Printf("meshgallery: %d frames at %dx%d, tile from %s (%d tris, %d instances baked)\n",
		frames, w, h, source, len(tile.Tris), 9)

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	start := time.Now()
	var stats objspace.Stats
	for f := 0; f < sc.Frames; f++ {
		img := nowrender.NewFramebuffer(w, h)
		if shards >= 2 {
			cl, err := objspace.Build(sc, f, trace.Options{}, objspace.Options{Shards: shards, Stats: &stats})
			if err != nil {
				return err
			}
			cl.NewWorker(nil).RenderFull(img)
		} else {
			frame, err := nowrender.RenderFrame(sc, f, w, h)
			if err != nil {
				return err
			}
			img = frame
		}
		if outDir != "" {
			if err := nowrender.WriteTGA(filepath.Join(outDir, fmt.Sprintf("frame%04d.tga", f)), img); err != nil {
				return err
			}
		}
	}
	fmt.Printf("rendered %d frames in %v\n", sc.Frames, time.Since(start).Round(time.Millisecond))
	if shards >= 2 {
		snap := stats.Snapshot()
		fmt.Printf("object space: %s\n", snap.String())
		for i, sh := range snap.PerShard {
			fmt.Printf("  shard %d: %d objs, %d tris, %d resident bytes, %d rays forwarded (%d bytes)\n",
				i, sh.Objects, sh.Tris, sh.ResidentBytes, sh.RaysForwarded, sh.ForwardBytes)
		}
	}
	if outDir != "" {
		fmt.Printf("frames written to %s\n", outDir)
	}
	return nil
}
