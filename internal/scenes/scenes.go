// Package scenes procedurally builds the paper's test animations:
//
//   - Newton (§4, Figure 5): a Newton's cradle of five suspended chrome
//     marbles illustrating conservation of energy. Matching the paper's
//     inventory exactly, the scene contains one plane, five spheres and
//     sixteen cylinders, runs 45 frames by default, and keeps the camera
//     stationary.
//   - Bouncing (Figures 1-2): a glass ball bouncing around a brick room,
//     the animation whose consecutive frames and pixel-difference masks
//     the paper shows.
//
// Both scenes have the property the coherence algorithm exploits: only a
// small region changes per frame while expensive static regions
// (reflective marbles, brick walls seen through glass) are reused.
package scenes

import (
	"math"

	"nowrender/internal/geom"
	"nowrender/internal/material"
	"nowrender/internal/scene"
	vm "nowrender/internal/vecmath"
)

// Newton cradle layout constants.
const (
	marbleRadius = 0.4
	marbleY      = 1.0
	anchorY      = 3.2
	swingMax     = 0.9 // radians
)

// NewtonFrames is the paper's frame count for the Newton run.
const NewtonFrames = 45

// Newton builds the Newton's-cradle animation. frames <= 0 selects the
// paper's 45.
func Newton(frames int) *scene.Scene {
	if frames <= 0 {
		frames = NewtonFrames
	}
	s := scene.New("newton")
	s.Frames = frames
	s.Camera = scene.Camera{
		Pos: vm.V(0, 2.2, 8.5), LookAt: vm.V(0, 1.8, 0), Up: vm.V(0, 1, 0), FOV: 50,
	}
	s.Background = material.RGB(0.05, 0.05, 0.12)
	s.MaxDepth = 5
	s.AddLight("key", vm.V(6, 9, 8), material.RGB(1, 1, 0.96))
	s.AddLight("fill", vm.V(-7, 6, 5), material.RGB(0.25, 0.25, 0.3))

	// The one plane: a checkered floor.
	floorMat := material.NewMaterial(
		material.Checker{A: material.RGB(0.85, 0.85, 0.8), B: material.RGB(0.25, 0.22, 0.2), Size: 1.2},
		material.Finish{Ambient: 0.1, Diffuse: 0.75, Specular: 0.1, Shininess: 20, Reflect: 0.08, IOR: 1},
	)
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), floorMat, nil)

	wood := material.NewMaterial(material.Solid{C: material.RGB(0.45, 0.26, 0.12)},
		material.Finish{Ambient: 0.12, Diffuse: 0.7, Specular: 0.25, Shininess: 30, IOR: 1})
	steel := material.NewMaterial(material.Solid{C: material.RGB(0.65, 0.65, 0.7)},
		material.Finish{Ambient: 0.08, Diffuse: 0.4, Specular: 0.5, Shininess: 60, Reflect: 0.15, IOR: 1})
	chrome := material.NewMaterial(material.Solid{C: material.RGB(0.92, 0.93, 0.95)},
		material.ChromeFinish())

	// Frame: 4 legs, 2 top side rails, 2 top end bars, 2 base rails and
	// 1 central crossbar the strings hang from — 11 cylinders.
	leg := func(name string, x, z float64) {
		s.Add(name, geom.NewCylinder(vm.V(x, 0, z), vm.V(x, anchorY, z), 0.09), wood, nil)
	}
	leg("leg-fl", -2.4, 0.8)
	leg("leg-fr", 2.4, 0.8)
	leg("leg-bl", -2.4, -0.8)
	leg("leg-br", 2.4, -0.8)
	s.Add("rail-top-front", geom.NewCylinder(vm.V(-2.4, anchorY, 0.8), vm.V(2.4, anchorY, 0.8), 0.07), wood, nil)
	s.Add("rail-top-back", geom.NewCylinder(vm.V(-2.4, anchorY, -0.8), vm.V(2.4, anchorY, -0.8), 0.07), wood, nil)
	s.Add("bar-top-left", geom.NewCylinder(vm.V(-2.4, anchorY, -0.8), vm.V(-2.4, anchorY, 0.8), 0.07), wood, nil)
	s.Add("bar-top-right", geom.NewCylinder(vm.V(2.4, anchorY, -0.8), vm.V(2.4, anchorY, 0.8), 0.07), wood, nil)
	s.Add("rail-base-front", geom.NewCylinder(vm.V(-2.4, 0.05, 0.8), vm.V(2.4, 0.05, 0.8), 0.06), wood, nil)
	s.Add("rail-base-back", geom.NewCylinder(vm.V(-2.4, 0.05, -0.8), vm.V(2.4, 0.05, -0.8), 0.06), wood, nil)
	s.Add("crossbar", geom.NewCylinder(vm.V(-2.4, anchorY, 0), vm.V(2.4, anchorY, 0), 0.05), steel, nil)

	// Five marbles with their strings — 5 spheres + 5 cylinders = the
	// remaining inventory (16 cylinders total).
	for i := 0; i < 5; i++ {
		x := (float64(i) - 2) * 2 * marbleRadius
		restCenter := vm.V(x, marbleY, 0)
		anchor := vm.V(x, anchorY, 0)
		track := cradleTrack(i, frames, anchor)
		s.Add(marbleName(i), geom.NewSphere(restCenter, marbleRadius), chrome, track)
		s.Add(stringName(i),
			geom.NewCylinder(vm.V(x, marbleY+marbleRadius, 0), anchor, 0.015), steel, track)
	}
	return s
}

func marbleName(i int) string { return "marble" + string(rune('A'+i)) }
func stringName(i int) string { return "string" + string(rune('A'+i)) }

// CradleAngle returns the pendulum angles (radians from vertical) of
// the leftmost and rightmost marbles at a frame. Positive angles swing
// outward. The model is the canonical cradle visualisation: the energy
// alternates between the end marbles each half period while the middle
// three stay still.
func CradleAngle(frame, frames int) (left, right float64) {
	halfPeriod := 15.0
	if frames < 30 {
		halfPeriod = float64(frames) / 3.0
	}
	a := swingMax * math.Cos(math.Pi*float64(frame)/halfPeriod)
	if a > 0 {
		return a, 0
	}
	return 0, -a
}

// cradleTrack returns the swing transform of marble/string i about its
// anchor point. Middle marbles (1..3) are static.
func cradleTrack(i, frames int, anchor vm.Vec3) scene.Track {
	if i >= 1 && i <= 3 {
		return nil
	}
	return scene.FuncTrack{F: func(frame int) vm.Transform {
		left, right := CradleAngle(frame, frames)
		var angle float64
		if i == 0 {
			angle = left // swing out to -x: positive rotation about +z
		} else {
			angle = -right
		}
		if angle == 0 {
			return vm.IdentityTransform()
		}
		m := vm.TranslateV(anchor).
			MulM(vm.RotateZ(angle)).
			MulM(vm.TranslateV(anchor.Neg()))
		return vm.NewTransform(m)
	}}
}

// BouncingFrames is the default frame count for the bouncing-ball scene.
const BouncingFrames = 30

// Bouncing builds the glass-ball-in-a-brick-room animation of Figure 1.
func Bouncing(frames int) *scene.Scene {
	if frames <= 0 {
		frames = BouncingFrames
	}
	s := scene.New("bouncing")
	s.Frames = frames
	s.Camera = scene.Camera{
		Pos: vm.V(0, 2.5, 9), LookAt: vm.V(0, 1.5, 0), Up: vm.V(0, 1, 0), FOV: 60,
	}
	s.Background = material.RGB(0.02, 0.02, 0.05)
	s.MaxDepth = 5
	s.AddLight("ceiling", vm.V(0, 7.5, 4), material.RGB(1, 1, 0.95))
	s.AddLight("corner", vm.V(-4, 5, 7), material.RGB(0.3, 0.3, 0.35))

	brick := material.NewMaterial(
		material.Brick{
			Mortar: material.RGB(0.75, 0.73, 0.7), Body: material.RGB(0.55, 0.2, 0.13),
			BrickSize: vm.V(1.0, 0.33, 0.55), MortarWidth: 0.06,
		},
		material.Finish{Ambient: 0.12, Diffuse: 0.8, Specular: 0.05, Shininess: 10, IOR: 1},
	)
	floor := material.NewMaterial(material.Solid{C: material.RGB(0.5, 0.47, 0.42)},
		material.Finish{Ambient: 0.1, Diffuse: 0.7, Specular: 0.15, Shininess: 25, Reflect: 0.1, IOR: 1})

	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), floor, nil)
	s.Add("ceiling", geom.NewPlane(vm.V(0, -1, 0), -8), floor, nil)
	s.Add("wall-back", geom.NewPlane(vm.V(0, 0, 1), -4), brick, nil)
	s.Add("wall-left", geom.NewPlane(vm.V(1, 0, 0), -6), brick, nil)
	s.Add("wall-right", geom.NewPlane(vm.V(-1, 0, 0), -6), brick, nil)

	glass := material.NewMaterial(material.Solid{C: material.RGB(0.98, 0.98, 1)},
		material.GlassFinish())
	s.Add("ball", geom.NewSphere(vm.V(0, 0, 0), 0.8), glass,
		scene.FuncTrack{F: func(frame int) vm.Transform {
			return vm.NewTransform(vm.TranslateV(BouncePosition(frame, frames)))
		}})
	return s
}

// BouncePosition returns the glass ball's centre at a frame: a damped
// parabolic bounce drifting across the room.
func BouncePosition(frame, frames int) vm.Vec3 {
	t := float64(frame) / float64(max(frames-1, 1))
	// Three bounces across the animation, each losing height.
	const bounces = 3
	phase := t * bounces
	n := math.Floor(phase)
	u := phase - n // position within this bounce, 0..1
	height := 3.0 * math.Pow(0.62, n)
	y := 0.8 + height*4*u*(1-u) // parabola through the bounce
	x := -3.5 + 7*t
	z := 1.5 - 2.5*t
	return vm.V(x, y, z)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Quickstart is a tiny single-frame scene for the quickstart example and
// smoke tests: one matte sphere on a checkered floor.
func Quickstart() *scene.Scene {
	s := scene.New("quickstart")
	s.Frames = 1
	s.Camera = scene.Camera{Pos: vm.V(0, 1.5, 6), LookAt: vm.V(0, 1, 0), Up: vm.V(0, 1, 0), FOV: 55}
	s.Background = material.RGB(0.2, 0.3, 0.5)
	floor := material.NewMaterial(material.Checker{A: material.White, B: material.RGB(0.1, 0.1, 0.1)},
		material.DefaultFinish())
	s.Add("floor", geom.NewPlane(vm.V(0, 1, 0), 0), floor, nil)
	s.Add("ball", geom.NewSphere(vm.V(0, 1, 0), 1), material.Matte(material.RGB(0.9, 0.2, 0.15)), nil)
	s.AddLight("key", vm.V(4, 7, 6), material.White)
	return s
}
