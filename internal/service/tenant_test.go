package service

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nowrender/internal/framecache"
	"nowrender/internal/timeline"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// collectEvents drains a subscription until its terminal close,
// returning every event seen.
func collectEvents(t *testing.T, ch <-chan Event) []Event {
	t.Helper()
	var evs []Event
	deadline := time.After(60 * time.Second)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-deadline:
			t.Fatalf("event stream did not terminate (saw %d events)", len(evs))
		}
	}
}

// TestCoalescingAcrossTenants: two tenants submit the identical job
// while the fleet pool is held by a blocker, so the second job finds
// every frame in flight and follows the first job's render — one farm
// run feeds two complete event streams with byte-identical frames. A
// third tenant arriving afterwards is served entirely from the cache.
func TestCoalescingAcrossTenants(t *testing.T) {
	s := New(Config{MaxConcurrent: 3, FleetCapacity: 3, Timeline: true})
	defer s.Close()

	// The blocker leases the whole pool, pinning the lead job between
	// its flight registration (phase 1) and its farm run (phase 2).
	blocker, err := s.Submit(JobSpec{Scene: "bouncing:8", W: 160, H: 120, Tenant: "ops"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker to lease the pool", func() bool {
		return s.Pool().Stats().Leased == 3
	})

	const scene = "newton:4"
	spec := JobSpec{Scene: scene, W: 48, H: 48}
	k := framecache.NewSeqKey(scene, 48, 48, 1)

	specA := spec
	specA.Tenant = "alice"
	stA, err := s.Submit(specA)
	if err != nil {
		t.Fatal(err)
	}
	evA, _, err := s.subscribe(stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Alice's job registers all four flights, then blocks on the lease.
	waitFor(t, "lead job's flights", func() bool {
		for f := 0; f < 4; f++ {
			if !s.cache.InFlight(framecache.Key{Seq: k, Frame: f}) {
				return false
			}
		}
		return true
	})
	waitFor(t, "lead job to wait on the pool", func() bool {
		return s.Pool().Stats().Waits >= 1
	})

	specB := spec
	specB.Tenant = "bob"
	stB, err := s.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	evB, _, err := s.subscribe(stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Bob's job joins all four in-flight frames before any render runs.
	waitFor(t, "follower to coalesce", func() bool {
		return s.CacheStats().Coalesced >= 4
	})

	for _, id := range []string{blocker.ID, stA.ID, stB.ID} {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}

	a, _ := s.JobStatus(stA.ID)
	b, _ := s.JobStatus(stB.ID)
	if a.RaysTraced == 0 {
		t.Error("lead job traced no rays")
	}
	if b.RaysTraced != 0 {
		t.Errorf("follower traced %d rays, want 0 (one farm run for both)", b.RaysTraced)
	}
	if b.CoalescedFrames != 4 {
		t.Errorf("follower coalesced %d frames, want 4", b.CoalescedFrames)
	}
	if b.FramesDone != 4 || a.FramesDone != 4 {
		t.Fatalf("frames done = %d/%d, want 4/4", a.FramesDone, b.FramesDone)
	}

	// Both event streams are complete: every frame announced, then done.
	for name, evs := range map[string][]Event{"lead": collectEvents(t, evA), "follower": collectEvents(t, evB)} {
		frames := 0
		for _, ev := range evs {
			if ev.Type == "frame" {
				frames++
				if name == "follower" && !ev.Coalesced {
					t.Errorf("follower frame %d event not marked coalesced", ev.Frame)
				}
			}
		}
		if frames != 4 {
			t.Errorf("%s stream carried %d frame events, want 4", name, frames)
		}
		if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
			t.Errorf("%s stream did not end with done: %+v", name, evs)
		}
	}

	// Byte-identical output on both jobs, equal to a clean render.
	clean := New(Config{})
	defer clean.Close()
	ref, err := clean.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ref = waitDone(t, clean, ref.ID); ref.State != StateDone {
		t.Fatalf("reference: %s (%s)", ref.State, ref.Error)
	}
	for f := 0; f < 4; f++ {
		want, _ := clean.Frame(ref.ID, f)
		for _, id := range []string{stA.ID, stB.ID} {
			got, err := s.Frame(id, f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Pix, want.Pix) {
				t.Fatalf("job %s frame %d differs from clean render", id, f)
			}
		}
	}

	// A third tenant arriving after completion is a pure cache hit.
	specC := spec
	specC.Tenant = "carol"
	stC, err := s.Submit(specC)
	if err != nil {
		t.Fatal(err)
	}
	if stC = waitDone(t, s, stC.ID); stC.State != StateDone {
		t.Fatalf("third tenant: %s (%s)", stC.State, stC.Error)
	}
	if stC.CacheHits != 4 || stC.RaysTraced != 0 {
		t.Errorf("third tenant hits=%d rays=%d, want 4 hits / 0 rays", stC.CacheHits, stC.RaysTraced)
	}

	// The coalescing surfaces in the follower's timeline and /metrics.
	tl, err := s.JobTimeline(stB.ID)
	if err != nil || tl == nil {
		t.Fatalf("follower timeline: %v", err)
	}
	if rep := timeline.Analyze(tl); rep.Coalesced != 4 {
		t.Errorf("timeline reports %d coalesced frames, want 4", rep.Coalesced)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"nowrender_coalesced_frames_total 4",
		"nowrender_coalesced_jobs_total 1",
		"nowrender_fleet_capacity 3",
		"nowrender_fleet_lease_waits_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAdmissionControl: the tenant allow list, per-tenant quotas and
// the global cap each reject with their own counted reason, visible in
// /metrics alongside per-tenant queue depths.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{
		MaxConcurrent:      1,
		QueueCap:           2,
		MaxQueuedPerTenant: 1,
		Tenants:            map[string]float64{"alice": 1, "bob": 1},
	})
	defer s.Close()

	blocker, err := s.Submit(JobSpec{Scene: "newton:6", W: 120, H: 160, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker to run", func() bool {
		st, _ := s.JobStatus(blocker.ID)
		return st.State == StateRunning
	})

	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32, Tenant: "alice"}); err != nil {
		t.Fatalf("first queued alice job rejected: %v", err)
	}
	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 40, H: 40, Tenant: "alice"}); err == nil {
		t.Error("second queued alice job accepted past MaxQueuedPerTenant")
	}
	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32, Tenant: "mallory"}); err == nil {
		t.Error("unknown tenant accepted despite allow list")
	}
	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32, Tenant: "bob"}); err != nil {
		t.Fatalf("bob's job rejected with queue headroom: %v", err)
	}
	// Queue now holds 2 (the global cap): bob's next is stopped by the
	// cap, not his quota.
	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 40, H: 40, Tenant: "bob"}); err == nil {
		t.Error("submission accepted past QueueCap")
	}

	if got := s.QueueDepth(); got != 2 {
		t.Errorf("queue depth = %d, want 2", got)
	}
	depths := s.QueueDepths()
	if depths["alice"] != 1 || depths["bob"] != 1 {
		t.Errorf("tenant depths = %v, want alice:1 bob:1", depths)
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"nowrender_queue_depth 2",
		`nowrender_queue_depth{tenant="alice"} 1`,
		`nowrender_queue_depth{tenant="bob"} 1`,
		`nowrender_jobs_rejected_total{reason="queue_full"} 1`,
		`nowrender_jobs_rejected_total{reason="tenant_quota"} 1`,
		`nowrender_jobs_rejected_total{reason="unknown_tenant"} 1`,
		`nowrender_jobs_rejected_total{reason="draining"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestWeightedFairPreventsStarvation: with the fair policy and one run
// slot, a lone job from a second tenant submitted behind a flood from
// the first is admitted ahead of the flood — its tenant's virtual time
// lags the heavy tenant's.
func TestWeightedFairPreventsStarvation(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Policy: "fair"})
	defer s.Close()

	blocker, err := s.Submit(JobSpec{Scene: "newton:6", W: 120, H: 160, Tenant: "heavy"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "blocker to run", func() bool {
		st, _ := s.JobStatus(blocker.ID)
		return st.State == StateRunning
	})

	// Flood from the heavy tenant, then one job from the light one.
	// Distinct resolutions keep the cache out of the picture.
	var flood []string
	for i := 0; i < 3; i++ {
		st, err := s.Submit(JobSpec{Scene: "newton:2", W: 40 + 8*i, H: 30 + 6*i, Tenant: "heavy"})
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, st.ID)
	}
	light, err := s.Submit(JobSpec{Scene: "newton:2", W: 64, H: 48, Tenant: "light"})
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range append(append([]string{blocker.ID}, flood...), light.ID) {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}

	lightSt, _ := s.JobStatus(light.ID)
	for _, id := range flood {
		st, _ := s.JobStatus(id)
		if !lightSt.Started.Before(st.Started) {
			t.Errorf("light tenant started %v, after heavy job %s at %v — starved",
				lightSt.Started, id, st.Started)
		}
	}
}

// TestSchedTimelineAttributesQueueWait: a job queued behind another
// carries enqueue/admit/queue-wait/lease events on its sched track, and
// the analyzer splits its latency into queue wait versus render time.
func TestSchedTimelineAttributesQueueWait(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Timeline: true})
	defer s.Close()

	first, err := s.Submit(JobSpec{Scene: "newton:4", W: 80, H: 60})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(JobSpec{Scene: "newton:2", W: 48, H: 36})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{first.ID, second.ID} {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}

	tl, err := s.JobTimeline(second.ID)
	if err != nil || tl == nil {
		t.Fatalf("timeline: %v", err)
	}
	ops := map[timeline.Op]int{}
	sawSchedTrack := false
	for _, td := range tl.Tracks {
		if strings.HasPrefix(td.Name, "sched/") {
			sawSchedTrack = true
		}
		for _, e := range td.Events {
			ops[e.Op]++
		}
	}
	if !sawSchedTrack {
		t.Fatal("no sched/ track in the job timeline")
	}
	for _, op := range []timeline.Op{timeline.OpEnqueue, timeline.OpAdmit, timeline.OpQueueWait, timeline.OpLease} {
		if ops[op] == 0 {
			t.Errorf("timeline missing %s event", op)
		}
	}
	rep := timeline.Analyze(tl)
	if rep.QueueWait <= 0 {
		t.Errorf("queue wait = %d ns, want > 0 (job sat behind another)", rep.QueueWait)
	}
	if rep.RenderBusy <= 0 {
		t.Errorf("render busy = %d ns, want > 0", rep.RenderBusy)
	}
}

// TestDrainFinishesInFlightJobs: SIGTERM semantics — Drain stops
// admission (rejections are counted), lets the running job finish, and
// flushes its event stream before returning.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()

	st, err := s.Submit(JobSpec{Scene: "newton:6", W: 120, H: 160})
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := s.subscribe(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to run", func() bool {
		got, _ := s.JobStatus(st.ID)
		return got.State == StateRunning
	})

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(context.Background()) }()
	waitFor(t, "drain to start", func() bool { return s.Draining() })

	if _, err := s.Submit(JobSpec{Scene: "quickstart", W: 32, H: 32}); err == nil {
		t.Error("submission accepted while draining")
	}
	if got := s.Rejected()[RejectDraining]; got != 1 {
		t.Errorf("draining rejections = %d, want 1", got)
	}

	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("drain did not complete")
	}

	got, _ := s.JobStatus(st.ID)
	if got.State != StateDone || got.FramesDone != 6 {
		t.Fatalf("after drain: state=%s frames=%d, want done/6", got.State, got.FramesDone)
	}
	// The stream already carries its terminal event: drain waited.
	evs := collectEvents(t, events)
	if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("drained job's stream = %+v, want done terminal", evs)
	}
}

// TestDrainDeadlineCancels: a drain whose context expires cancels the
// leftover jobs instead of hanging.
func TestDrainDeadlineCancels(t *testing.T) {
	s := New(Config{MaxConcurrent: 1})
	defer s.Close()
	st, err := s.Submit(JobSpec{Scene: "newton:30", W: 240, H: 320})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to run", func() bool {
		got, _ := s.JobStatus(st.ID)
		return got.State == StateRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	got, _ := s.JobStatus(st.ID)
	if got.State != StateCancelled {
		t.Fatalf("job state after expired drain = %s, want cancelled", got.State)
	}
}
