// Package farm is the master/worker render farm of §3-4: a master
// decomposes the animation with a partitioning scheme, distributes tasks
// to workers, collects rendered pixels, assembles frames and writes them
// out. The only communication is master<->worker (the paper: "the slaves
// themselves do not need to communicate with each other").
//
// Two drivers share the task-management logic:
//
//   - RenderVirtual executes on the deterministic virtual NOW
//     (internal/cluster): the real rendering computation runs inline and
//     virtual time is charged per work quantity and message. This is the
//     driver the Table 1 benchmarks use.
//   - RenderLocal spawns goroutine workers joined by msg.Pipe and runs
//     the full wire protocol in wall-clock time, with the same adaptive
//     subdivision. The identical worker loop serves TCP workers
//     (cmd/nowworker) for a physical NOW.
package farm

import (
	"context"
	"fmt"
	"time"

	"nowrender/internal/cluster"
	"nowrender/internal/coherence"
	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/objspace"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
	"nowrender/internal/wire"
)

// Config describes a render-farm run.
type Config struct {
	Scene *scene.Scene
	// W, H is the output resolution (the paper uses 240x320).
	W, H int
	// Scheme decomposes the animation. Nil defaults to adaptive
	// sequence division.
	Scheme partition.Scheme
	// StartFrame and EndFrame select a sub-range [StartFrame, EndFrame)
	// of the animation; both zero means the whole animation. RenderAuto
	// uses this to render camera-stationary sequences independently.
	StartFrame, EndFrame int
	// Coherence enables the frame-coherence algorithm inside each task.
	Coherence bool
	// CoherenceOpts tune the engine when Coherence is set.
	CoherenceOpts coherence.Options
	// Samples is the supersampling factor (0/1 = one ray per pixel).
	Samples int
	// Threads bounds each worker's intra-frame tile pool. 0 lets every
	// worker use all its cores (runtime.NumCPU()); 1 forces the serial
	// path. Output is byte-identical for every value — Threads changes
	// wall-clock speed only, and has no effect on virtual-NOW makespans
	// (the cost model charges per ray, not per core).
	Threads int

	// Machines populate the virtual NOW (RenderVirtual). Defaults to
	// the paper's 3-machine testbed.
	Machines []cluster.Machine
	// Net is the virtual interconnect. Zero value = 10 Mb/s Ethernet.
	Net cluster.Ethernet
	// Cost converts work to virtual time. Zero value = defaults.
	Cost cluster.CostModel

	// Workers is the goroutine count for RenderLocal. Defaults to the
	// machine count, or 3.
	Workers int

	// Emit, when non-nil, receives each assembled frame in frame order
	// after the run completes.
	Emit func(frame int, img *fb.Framebuffer) error

	// Ctx, when non-nil, cancels the run: the drivers check it between
	// events (virtual) or messages (local/TCP) and return Ctx.Err()
	// promptly once it is done. A nil Ctx never cancels.
	Ctx context.Context

	// OnFrame, when non-nil, observes each frame the moment it completes
	// assembly — in completion order, which under frame division may
	// differ from frame order — rather than only after the whole run.
	// The framebuffer is fully assembled and is retained by the farm in
	// Result.Frames, so observers must not modify it. A non-nil error
	// aborts the run.
	OnFrame func(frame int, img *fb.Framebuffer) error

	// Heartbeat, when > 0, makes the master ping each worker at this
	// interval (local/TCP drivers; the virtual driver has no messages to
	// lose). Workers answer between frames, so pongs prove the render
	// loop is alive.
	Heartbeat time.Duration
	// Liveness is how long a worker may stay completely silent before
	// the master retires it like a TagDown. 0 defaults to 4x Heartbeat;
	// it must comfortably exceed the slowest frame's render time, since
	// workers only answer pings between frames.
	Liveness time.Duration
	// StallTimeout, when > 0, retires a worker that holds a task without
	// delivering any progress (frame results, task completion, acks) for
	// this long — the hung-worker and lost-task-message case heartbeats
	// alone cannot see, because a dropped assignment leaves both sides
	// waiting politely forever.
	StallTimeout time.Duration
	// FrameRetries is the per-frame retry budget: a frame rendering that
	// has been requeued this many times is quarantined — the master
	// renders the region locally instead of feeding it to a fourth
	// doomed worker. 0 defaults to 3; negative disables quarantine.
	FrameRetries int
	// Speculate re-issues the slowest in-flight task's remaining frames
	// to idle workers near the end of the run; whichever copy delivers a
	// (frame, region) first wins and the duplicate is dropped.
	Speculate bool
	// WrapConn, when non-nil, wraps each worker connection before use —
	// the fault-injection hook (see internal/faulty). RenderLocal wraps
	// the worker-side end, so both directions of that worker's traffic
	// pass through it. It also relaxes worker-exit handling: with faults
	// injected, a worker dying is expected, not a run failure.
	WrapConn func(name string, c msg.Conn) msg.Conn

	// WorkerOpts, when non-nil, supplies per-worker tuning for
	// RenderLocal's in-process workers — most usefully the NoWire*
	// fields, which simulate a mixed fleet of old and new binaries.
	WorkerOpts func(i int) WorkerOptions

	// WireDelta lets capable workers ship dirty-span delta frames after
	// each task's key-frame instead of full regions (coherence tasks
	// only; a size guard falls back to full frames when too much
	// changed). WireCompress lets frame payloads be flate-compressed.
	// Both are negotiated per worker via TagHello capability bits, so
	// mixed fleets interoperate; pixels are byte-identical either way.
	WireDelta, WireCompress bool
	// WireSpanCodec lets capable workers use the span codec
	// (msg.SpanCompress) for frame payloads. Together with WireCompress
	// it grants both codecs and each worker chooses per frame (adaptive
	// mode, see wire.Encoder); alone it is the static span-codec mode.
	// Negotiated like the other bits, so legacy workers are unaffected.
	WireSpanCodec bool

	// ObjSpaceShards, when >= 2, grants capable workers object-space data
	// parallelism (internal/objspace): each frame's scene is partitioned
	// into that many spatial shards and rays are forwarded between shard
	// owners instead of every worker holding a replicated grid, shrinking
	// per-worker resident scene size. Negotiated via TagHello capability
	// bits like the wire codecs: legacy workers keep rendering the
	// replicated path and pixels are byte-identical either way. Workers
	// ship their forwarding counters (TagOSStats) at task end, merged
	// into Result.ObjSpace.
	ObjSpaceShards int

	// DFB, when non-nil, enables the distributed framebuffer: frames are
	// sharded across compositor sinks (internal/compositor), workers
	// that advertise capWireDFB ship pixels straight to their frame's
	// sink and send the master only small control acks, and legacy
	// workers' master-routed results are relayed to the owning sink so
	// assembly happens in exactly one place. Final frames are
	// byte-identical to the master-routed path.
	DFB *DFBConfig

	// Timeline, when non-nil, records the run into this recorder: the
	// master's scheduling events land in it directly, and workers that
	// advertise capWireTimeline are granted it and ship their phase/tile
	// spans piggybacked on results. The merged, clock-offset-corrected
	// cluster timeline is returned in Result.Timeline. Nil (the default)
	// disables all recording — the instrumentation then costs one nil
	// check per site.
	Timeline *timeline.Recorder
}

// DFBConfig configures the distributed framebuffer (compositor sinks).
type DFBConfig struct {
	// Addrs are the sink addresses, one frame shard per sink in
	// partition.ShardMap order. cmd/nowrender passes nowcompose
	// listen addresses here. Leave empty and set Sinks for in-process
	// sinks (RenderLocal).
	Addrs []string
	// Sinks > 0 makes RenderLocal spin up this many in-process sinks.
	Sinks int
	// Dial connects to a sink address; nil defaults to msg.Dial (TCP).
	// RenderLocal injects the in-process registry's dialer.
	Dial func(addr string) (msg.Conn, error)
	// Redials is how many times the master re-dials a lost sink before
	// failing the run. 0 defaults to 3; negative disables re-dialing.
	Redials int
	// collect fetches an assembled frame at run end (in-process mode,
	// where the master holds no pixels; set by RenderLocal).
	collect func(frame int) *fb.Framebuffer
}

// enabled reports whether the config actually routes pixels to sinks.
func (d *DFBConfig) enabled() bool { return d != nil && len(d.Addrs) > 0 }

func (d *DFBConfig) dialer() func(string) (msg.Conn, error) {
	if d.Dial != nil {
		return d.Dial
	}
	return msg.Dial
}

func (d *DFBConfig) redials() int {
	switch {
	case d.Redials == 0:
		return 3
	case d.Redials < 0:
		return 0
	}
	return d.Redials
}

// cancelled returns the context error if the run was cancelled.
func (c *Config) cancelled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

func (c *Config) defaults() error {
	if c.Scene == nil {
		return fmt.Errorf("farm: nil scene")
	}
	if err := c.Scene.Validate(); err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	if c.W <= 0 || c.H <= 0 {
		return fmt.Errorf("farm: bad resolution %dx%d", c.W, c.H)
	}
	if c.StartFrame == 0 && c.EndFrame == 0 {
		c.EndFrame = c.Scene.Frames
	}
	if c.StartFrame < 0 || c.EndFrame > c.Scene.Frames || c.StartFrame >= c.EndFrame {
		return fmt.Errorf("farm: bad frame range [%d,%d) for %d frames",
			c.StartFrame, c.EndFrame, c.Scene.Frames)
	}
	if c.Scheme == nil {
		c.Scheme = partition.SequenceDivision{Adaptive: true}
	}
	if len(c.Machines) == 0 {
		c.Machines = cluster.PaperTestbed()
	}
	if c.Net == (cluster.Ethernet{}) {
		c.Net = cluster.TenBaseT()
	}
	if c.Cost == (cluster.CostModel{}) {
		c.Cost = cluster.DefaultCostModel()
	}
	if c.Workers <= 0 {
		c.Workers = len(c.Machines)
	}
	if c.Samples < 1 {
		c.Samples = 1
	}
	if c.ObjSpaceShards != 0 && (c.ObjSpaceShards < 2 || c.ObjSpaceShards > objspace.MaxShards) {
		return fmt.Errorf("farm: object-space shard count %d outside [2,%d]", c.ObjSpaceShards, objspace.MaxShards)
	}
	return nil
}

// Result summarises a farm run.
type Result struct {
	// Frames holds the assembled animation.
	Frames []*fb.Framebuffer
	// Run carries per-frame statistics; in virtual mode Elapsed values
	// are virtual durations.
	Run stats.RunStats
	// Makespan is the end-to-end time (virtual or wall).
	Makespan time.Duration
	// Workers reports per-worker contribution.
	Workers []stats.WorkerStats
	// TasksExecuted counts task assignments (including stolen ranges).
	TasksExecuted int
	// Subdivisions counts adaptive splits performed.
	Subdivisions int
	// BytesTransferred totals message payload bytes master<->workers.
	BytesTransferred int64
	// Faults tallies failure-handling events: workers retired, frames
	// requeued/quarantined, duplicates and malformed messages absorbed.
	// All-zero on a healthy run with heartbeats off.
	Faults stats.FaultCounters
	// Wire tallies the frame-result data path: key-frames vs dirty-span
	// deltas, compressed payloads, and raw-vs-wire byte totals.
	Wire stats.WireStats
	// ObjSpace tallies object-space sharding when Config.ObjSpaceShards
	// was granted: rays forwarded between shards, forwarding bytes, and
	// per-shard resident scene sizes. Zero when the mode was off or no
	// worker advertised the capability.
	ObjSpace stats.ObjSpaceStats
	// Timeline is the merged cluster timeline when Config.Timeline was
	// set: the master's own events plus every shipped worker event,
	// shifted onto the master's clock by the per-worker offset estimates.
	// Nil when recording was off.
	Timeline *timeline.Timeline
}

// Speedup returns baseline.Makespan / r.Makespan.
func (r *Result) Speedup(baseline *Result) float64 {
	return cluster.Speedup(baseline.Makespan, r.Makespan)
}

// mergeTimeline folds one sequence run's timeline into the combined
// result — the RenderAuto/RenderLocalAuto path, which drives one farm
// run per camera-stationary sequence, each with its own recorder epoch.
func (r *Result) mergeTimeline(tl *timeline.Timeline) {
	if tl == nil {
		return
	}
	if r.Timeline == nil {
		r.Timeline = &timeline.Timeline{Meta: map[string]string{}}
	}
	for k, v := range tl.Meta {
		r.Timeline.Meta[k] = v
	}
	for i := range tl.Tracks {
		td := &tl.Tracks[i]
		r.Timeline.AddTrack(td.Name, td.Events, td.Dropped)
	}
	r.Timeline.Sort()
}

// assembly is the shared frame assembly, extracted to internal/wire so
// the compositor can reuse it; the farm-side aliases keep the original
// call sites unchanged.
type assembly = wire.Assembly

func newAssembly(w, h, frames int) *assembly { return wire.NewAssembly(w, h, frames) }

func newAssemblyRange(w, h, start, end int) *assembly {
	return wire.NewAssemblyRange(w, h, start, end)
}

// errDeltaBase aliases the shared codec's delta-base-miss sentinel.
var errDeltaBase = wire.ErrDeltaBase

// appendRegion packs a region of img into RGB bytes (the wire format of
// full frame results), appending to out so hot paths can reuse scratch.
func appendRegion(out []byte, img *fb.Framebuffer, region fb.Rect) []byte {
	return wire.AppendRegion(out, img, region)
}

// extractRegion packs a region of img into a fresh RGB byte slice.
func extractRegion(img *fb.Framebuffer, region fb.Rect) []byte {
	return wire.ExtractRegion(img, region)
}
