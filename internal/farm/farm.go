// Package farm is the master/worker render farm of §3-4: a master
// decomposes the animation with a partitioning scheme, distributes tasks
// to workers, collects rendered pixels, assembles frames and writes them
// out. The only communication is master<->worker (the paper: "the slaves
// themselves do not need to communicate with each other").
//
// Two drivers share the task-management logic:
//
//   - RenderVirtual executes on the deterministic virtual NOW
//     (internal/cluster): the real rendering computation runs inline and
//     virtual time is charged per work quantity and message. This is the
//     driver the Table 1 benchmarks use.
//   - RenderLocal spawns goroutine workers joined by msg.Pipe and runs
//     the full wire protocol in wall-clock time, with the same adaptive
//     subdivision. The identical worker loop serves TCP workers
//     (cmd/nowworker) for a physical NOW.
package farm

import (
	"context"
	"fmt"
	"time"

	"nowrender/internal/cluster"
	"nowrender/internal/coherence"
	"nowrender/internal/fb"
	"nowrender/internal/msg"
	"nowrender/internal/partition"
	"nowrender/internal/scene"
	"nowrender/internal/stats"
	"nowrender/internal/timeline"
)

// Config describes a render-farm run.
type Config struct {
	Scene *scene.Scene
	// W, H is the output resolution (the paper uses 240x320).
	W, H int
	// Scheme decomposes the animation. Nil defaults to adaptive
	// sequence division.
	Scheme partition.Scheme
	// StartFrame and EndFrame select a sub-range [StartFrame, EndFrame)
	// of the animation; both zero means the whole animation. RenderAuto
	// uses this to render camera-stationary sequences independently.
	StartFrame, EndFrame int
	// Coherence enables the frame-coherence algorithm inside each task.
	Coherence bool
	// CoherenceOpts tune the engine when Coherence is set.
	CoherenceOpts coherence.Options
	// Samples is the supersampling factor (0/1 = one ray per pixel).
	Samples int
	// Threads bounds each worker's intra-frame tile pool. 0 lets every
	// worker use all its cores (runtime.NumCPU()); 1 forces the serial
	// path. Output is byte-identical for every value — Threads changes
	// wall-clock speed only, and has no effect on virtual-NOW makespans
	// (the cost model charges per ray, not per core).
	Threads int

	// Machines populate the virtual NOW (RenderVirtual). Defaults to
	// the paper's 3-machine testbed.
	Machines []cluster.Machine
	// Net is the virtual interconnect. Zero value = 10 Mb/s Ethernet.
	Net cluster.Ethernet
	// Cost converts work to virtual time. Zero value = defaults.
	Cost cluster.CostModel

	// Workers is the goroutine count for RenderLocal. Defaults to the
	// machine count, or 3.
	Workers int

	// Emit, when non-nil, receives each assembled frame in frame order
	// after the run completes.
	Emit func(frame int, img *fb.Framebuffer) error

	// Ctx, when non-nil, cancels the run: the drivers check it between
	// events (virtual) or messages (local/TCP) and return Ctx.Err()
	// promptly once it is done. A nil Ctx never cancels.
	Ctx context.Context

	// OnFrame, when non-nil, observes each frame the moment it completes
	// assembly — in completion order, which under frame division may
	// differ from frame order — rather than only after the whole run.
	// The framebuffer is fully assembled and is retained by the farm in
	// Result.Frames, so observers must not modify it. A non-nil error
	// aborts the run.
	OnFrame func(frame int, img *fb.Framebuffer) error

	// Heartbeat, when > 0, makes the master ping each worker at this
	// interval (local/TCP drivers; the virtual driver has no messages to
	// lose). Workers answer between frames, so pongs prove the render
	// loop is alive.
	Heartbeat time.Duration
	// Liveness is how long a worker may stay completely silent before
	// the master retires it like a TagDown. 0 defaults to 4x Heartbeat;
	// it must comfortably exceed the slowest frame's render time, since
	// workers only answer pings between frames.
	Liveness time.Duration
	// StallTimeout, when > 0, retires a worker that holds a task without
	// delivering any progress (frame results, task completion, acks) for
	// this long — the hung-worker and lost-task-message case heartbeats
	// alone cannot see, because a dropped assignment leaves both sides
	// waiting politely forever.
	StallTimeout time.Duration
	// FrameRetries is the per-frame retry budget: a frame rendering that
	// has been requeued this many times is quarantined — the master
	// renders the region locally instead of feeding it to a fourth
	// doomed worker. 0 defaults to 3; negative disables quarantine.
	FrameRetries int
	// Speculate re-issues the slowest in-flight task's remaining frames
	// to idle workers near the end of the run; whichever copy delivers a
	// (frame, region) first wins and the duplicate is dropped.
	Speculate bool
	// WrapConn, when non-nil, wraps each worker connection before use —
	// the fault-injection hook (see internal/faulty). RenderLocal wraps
	// the worker-side end, so both directions of that worker's traffic
	// pass through it. It also relaxes worker-exit handling: with faults
	// injected, a worker dying is expected, not a run failure.
	WrapConn func(name string, c msg.Conn) msg.Conn

	// WorkerOpts, when non-nil, supplies per-worker tuning for
	// RenderLocal's in-process workers — most usefully the NoWire*
	// fields, which simulate a mixed fleet of old and new binaries.
	WorkerOpts func(i int) WorkerOptions

	// WireDelta lets capable workers ship dirty-span delta frames after
	// each task's key-frame instead of full regions (coherence tasks
	// only; a size guard falls back to full frames when too much
	// changed). WireCompress lets frame payloads be flate-compressed.
	// Both are negotiated per worker via TagHello capability bits, so
	// mixed fleets interoperate; pixels are byte-identical either way.
	WireDelta, WireCompress bool

	// Timeline, when non-nil, records the run into this recorder: the
	// master's scheduling events land in it directly, and workers that
	// advertise capWireTimeline are granted it and ship their phase/tile
	// spans piggybacked on results. The merged, clock-offset-corrected
	// cluster timeline is returned in Result.Timeline. Nil (the default)
	// disables all recording — the instrumentation then costs one nil
	// check per site.
	Timeline *timeline.Recorder
}

// cancelled returns the context error if the run was cancelled.
func (c *Config) cancelled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

func (c *Config) defaults() error {
	if c.Scene == nil {
		return fmt.Errorf("farm: nil scene")
	}
	if err := c.Scene.Validate(); err != nil {
		return fmt.Errorf("farm: %w", err)
	}
	if c.W <= 0 || c.H <= 0 {
		return fmt.Errorf("farm: bad resolution %dx%d", c.W, c.H)
	}
	if c.StartFrame == 0 && c.EndFrame == 0 {
		c.EndFrame = c.Scene.Frames
	}
	if c.StartFrame < 0 || c.EndFrame > c.Scene.Frames || c.StartFrame >= c.EndFrame {
		return fmt.Errorf("farm: bad frame range [%d,%d) for %d frames",
			c.StartFrame, c.EndFrame, c.Scene.Frames)
	}
	if c.Scheme == nil {
		c.Scheme = partition.SequenceDivision{Adaptive: true}
	}
	if len(c.Machines) == 0 {
		c.Machines = cluster.PaperTestbed()
	}
	if c.Net == (cluster.Ethernet{}) {
		c.Net = cluster.TenBaseT()
	}
	if c.Cost == (cluster.CostModel{}) {
		c.Cost = cluster.DefaultCostModel()
	}
	if c.Workers <= 0 {
		c.Workers = len(c.Machines)
	}
	if c.Samples < 1 {
		c.Samples = 1
	}
	return nil
}

// Result summarises a farm run.
type Result struct {
	// Frames holds the assembled animation.
	Frames []*fb.Framebuffer
	// Run carries per-frame statistics; in virtual mode Elapsed values
	// are virtual durations.
	Run stats.RunStats
	// Makespan is the end-to-end time (virtual or wall).
	Makespan time.Duration
	// Workers reports per-worker contribution.
	Workers []stats.WorkerStats
	// TasksExecuted counts task assignments (including stolen ranges).
	TasksExecuted int
	// Subdivisions counts adaptive splits performed.
	Subdivisions int
	// BytesTransferred totals message payload bytes master<->workers.
	BytesTransferred int64
	// Faults tallies failure-handling events: workers retired, frames
	// requeued/quarantined, duplicates and malformed messages absorbed.
	// All-zero on a healthy run with heartbeats off.
	Faults stats.FaultCounters
	// Wire tallies the frame-result data path: key-frames vs dirty-span
	// deltas, compressed payloads, and raw-vs-wire byte totals.
	Wire stats.WireStats
	// Timeline is the merged cluster timeline when Config.Timeline was
	// set: the master's own events plus every shipped worker event,
	// shifted onto the master's clock by the per-worker offset estimates.
	// Nil when recording was off.
	Timeline *timeline.Timeline
}

// Speedup returns baseline.Makespan / r.Makespan.
func (r *Result) Speedup(baseline *Result) float64 {
	return cluster.Speedup(baseline.Makespan, r.Makespan)
}

// mergeTimeline folds one sequence run's timeline into the combined
// result — the RenderAuto/RenderLocalAuto path, which drives one farm
// run per camera-stationary sequence, each with its own recorder epoch.
func (r *Result) mergeTimeline(tl *timeline.Timeline) {
	if tl == nil {
		return
	}
	if r.Timeline == nil {
		r.Timeline = &timeline.Timeline{Meta: map[string]string{}}
	}
	for k, v := range tl.Meta {
		r.Timeline.Meta[k] = v
	}
	for i := range tl.Tracks {
		td := &tl.Tracks[i]
		r.Timeline.AddTrack(td.Name, td.Events, td.Dropped)
	}
	r.Timeline.Sort()
}

// assembly tracks partially delivered frames over an absolute frame
// range [start, start+len(frames)).
type assembly struct {
	w, h    int
	start   int
	frames  []*fb.Framebuffer
	missing []int // pixels still undelivered per frame
	done    []time.Duration
	// seen records exactly which (frame, region) results have landed, so
	// speculative re-issue and post-failure retries can deliver the same
	// region twice: the duplicate is dropped instead of erroring. The
	// pixels are deterministic, so first-wins loses nothing.
	seen map[regionKey]bool
}

// regionKey identifies one delivered result.
type regionKey struct {
	frame int
	rect  fb.Rect
}

func newAssembly(w, h, frames int) *assembly { return newAssemblyRange(w, h, 0, frames) }

func newAssemblyRange(w, h, start, end int) *assembly {
	n := end - start
	a := &assembly{
		w: w, h: h, start: start,
		frames:  make([]*fb.Framebuffer, n),
		missing: make([]int, n),
		done:    make([]time.Duration, n),
		seen:    make(map[regionKey]bool),
	}
	for i := range a.missing {
		a.missing[i] = w * h
	}
	return a
}

// delivered reports whether this exact (frame, region) result already
// landed.
func (a *assembly) delivered(absFrame int, region fb.Rect) bool {
	return a.seen[regionKey{absFrame, region}]
}

// deliver merges region pixels (packed RGB rows of the region) into the
// absolute frame. It returns complete=true when the frame finished
// assembly at time t, and dup=true (with nothing merged) when this exact
// (frame, region) was already delivered by another worker.
func (a *assembly) deliver(absFrame int, region fb.Rect, pix []byte, t time.Duration) (complete, dup bool, err error) {
	frame := absFrame - a.start
	if frame < 0 || frame >= len(a.frames) {
		return false, false, fmt.Errorf("farm: frame %d out of range", absFrame)
	}
	if region.X0 < 0 || region.Y0 < 0 || region.X1 > a.w || region.Y1 > a.h ||
		region.X0 >= region.X1 || region.Y0 >= region.Y1 {
		return false, false, fmt.Errorf("farm: frame %d: region %v outside %dx%d", absFrame, region, a.w, a.h)
	}
	if len(pix) != region.Area()*3 {
		return false, false, fmt.Errorf("farm: frame %d region %v: got %d bytes, want %d",
			frame, region, len(pix), region.Area()*3)
	}
	if a.seen[regionKey{absFrame, region}] {
		return false, true, nil
	}
	a.seen[regionKey{absFrame, region}] = true
	if a.frames[frame] == nil {
		a.frames[frame] = fb.New(a.w, a.h)
	}
	img := a.frames[frame]
	i := 0
	for y := region.Y0; y < region.Y1; y++ {
		for x := region.X0; x < region.X1; x++ {
			img.SetRGB(x, y, pix[i], pix[i+1], pix[i+2])
			i += 3
		}
	}
	a.missing[frame] -= region.Area()
	if a.missing[frame] < 0 {
		return false, false, fmt.Errorf("farm: frame %d over-delivered", frame)
	}
	if a.missing[frame] == 0 {
		if t > a.done[frame] {
			a.done[frame] = t
		}
		return true, false, nil
	}
	return false, false, nil
}

// errDeltaBase marks a delta whose base result never landed: the
// previous frame's (frame, region) was lost in transit, so the delta
// cannot be applied. This is the one delivery failure that is NOT a
// protocol violation — the sender is honest, the network ate the base —
// so the master discards the delta (counting it) instead of retiring
// the worker, and the frame is re-rendered by the usual requeue path.
var errDeltaBase = fmt.Errorf("farm: delta base frame not delivered")

// deliverSpans merges a dirty-span delta into the absolute frame: the
// region is copied from the previous frame's assembled pixels, then the
// span pixels (packed RGB, span order) are applied on top. The previous
// frame's same (frame-1, region) result must have been delivered —
// otherwise errDeltaBase. Completion and duplicate semantics match
// deliver.
func (a *assembly) deliverSpans(absFrame int, region fb.Rect, spans []fb.Span, pix []byte, t time.Duration) (complete, dup bool, err error) {
	frame := absFrame - a.start
	if frame < 0 || frame >= len(a.frames) {
		return false, false, fmt.Errorf("farm: frame %d out of range", absFrame)
	}
	if region.X0 < 0 || region.Y0 < 0 || region.X1 > a.w || region.Y1 > a.h ||
		region.X0 >= region.X1 || region.Y0 >= region.Y1 {
		return false, false, fmt.Errorf("farm: frame %d: region %v outside %dx%d", absFrame, region, a.w, a.h)
	}
	if len(pix) != fb.SpanArea(spans)*3 {
		return false, false, fmt.Errorf("farm: frame %d region %v: got %d span bytes, want %d",
			frame, region, len(pix), fb.SpanArea(spans)*3)
	}
	for _, s := range spans {
		if s.Y < region.Y0 || s.Y >= region.Y1 || s.X0 < region.X0 || s.X0 >= s.X1 || s.X1 > region.X1 {
			return false, false, fmt.Errorf("farm: frame %d: span y=%d [%d,%d) outside region %v",
				absFrame, s.Y, s.X0, s.X1, region)
		}
	}
	if a.seen[regionKey{absFrame, region}] {
		return false, true, nil
	}
	if frame == 0 || !a.seen[regionKey{absFrame - 1, region}] {
		return false, false, errDeltaBase
	}
	a.seen[regionKey{absFrame, region}] = true
	if a.frames[frame] == nil {
		a.frames[frame] = fb.New(a.w, a.h)
	}
	img := a.frames[frame]
	img.CopyRect(a.frames[frame-1], region)
	if err := img.ApplySpans(spans, pix); err != nil {
		return false, false, err
	}
	a.missing[frame] -= region.Area()
	if a.missing[frame] < 0 {
		return false, false, fmt.Errorf("farm: frame %d over-delivered", frame)
	}
	if a.missing[frame] == 0 {
		if t > a.done[frame] {
			a.done[frame] = t
		}
		return true, false, nil
	}
	return false, false, nil
}

// frame returns the (possibly partial) framebuffer of an absolute frame.
func (a *assembly) frame(absFrame int) *fb.Framebuffer {
	return a.frames[absFrame-a.start]
}

func (a *assembly) complete() error {
	for f, m := range a.missing {
		if m != 0 {
			return fmt.Errorf("farm: frame %d missing %d pixels", f, m)
		}
	}
	return nil
}

// appendRegion packs a region of img into RGB bytes (the wire format of
// full frame results), appending to out so hot paths can reuse scratch.
func appendRegion(out []byte, img *fb.Framebuffer, region fb.Rect) []byte {
	n := region.W() * 3
	for y := region.Y0; y < region.Y1; y++ {
		o := (y*img.W + region.X0) * 3
		out = append(out, img.Pix[o:o+n]...)
	}
	return out
}

// extractRegion packs a region of img into a fresh RGB byte slice.
func extractRegion(img *fb.Framebuffer, region fb.Rect) []byte {
	return appendRegion(make([]byte, 0, region.Area()*3), img, region)
}
